package tspsz_test

import (
	"context"
	"errors"
	"testing"

	"tspsz"
)

// tamperTail flips the last inner-stream payload byte of a container
// archive (just before the inner and container trailers) on a copy —
// deterministically a raw-section byte for streams with lossless vertices.
func tamperTail(data []byte) []byte {
	b := append([]byte(nil), data...)
	b[len(b)-25] ^= 0xff
	return b
}

// TestRootSalvage exercises the public Salvage entry point end to end:
// clean archives salvage bit-exactly, damaged ones degrade gracefully with
// a report, and cancellation still wins.
func TestRootSalvage(t *testing.T) {
	f := demoField()
	res, err := tspsz.Compress(f, tspsz.Options{Variant: tspsz.TspSZ1, Mode: tspsz.ModeAbsolute, ErrBound: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := tspsz.Decompress(res.Bytes, 0)
	if err != nil {
		t.Fatal(err)
	}

	got, rep, err := tspsz.Salvage(res.Bytes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Stream == nil {
		t.Fatalf("clean archive: %+v", rep)
	}
	for idx := 0; idx < clean.NumVertices(); idx++ {
		if got.U[idx] != clean.U[idx] || got.V[idx] != clean.V[idx] {
			t.Fatalf("clean salvage differs at vertex %d", idx)
		}
	}

	// Damage the archive tail: strict decode refuses, salvage recovers.
	mut := tamperTail(res.Bytes)
	if _, err := tspsz.Decompress(mut, 0); err == nil {
		t.Fatal("strict decode accepted damaged archive")
	}
	got, rep, err = tspsz.Salvage(mut, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("damaged archive reported clean")
	}
	if !rep.ContainerSealBroken {
		t.Fatal("container seal breakage not reported")
	}
	s := rep.Stream
	if s == nil || !s.Sections[2].Damaged() {
		t.Fatalf("raw damage not reported: %+v", s)
	}
	for idx := 0; idx < clean.NumVertices(); idx++ {
		if s.Damaged.Get(idx) {
			continue
		}
		if got.U[idx] != clean.U[idx] || got.V[idx] != clean.V[idx] {
			t.Fatalf("undamaged vertex %d not exact", idx)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := tspsz.SalvageCtx(ctx, mut, 0); err == nil {
		t.Fatal("SalvageCtx succeeded on a dead context")
	} else {
		wantCancelled(t, err, context.Canceled)
	}
}

// TestRootVerifyAll checks the exhaustive verify reports everything the
// tamper broke — container trailer, inner trailer, and the chunk itself —
// where strict Verify stops at the first failure.
func TestRootVerifyAll(t *testing.T) {
	f := demoField()
	res, err := tspsz.Compress(f, tspsz.Options{Variant: tspsz.TspSZ1, Mode: tspsz.ModeAbsolute, ErrBound: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if fails := tspsz.VerifyAll(res.Bytes); len(fails) != 0 {
		t.Fatalf("clean archive: %v", fails)
	}
	fails := tspsz.VerifyAll(tamperTail(res.Bytes))
	if len(fails) < 2 {
		t.Fatalf("tail tamper breaks several layers, got %v", fails)
	}
	sawChunk := false
	for _, fe := range fails {
		if !errors.Is(fe, tspsz.ErrCorrupt) && !errors.Is(fe, tspsz.ErrTruncated) {
			t.Fatalf("unexpected failure kind: %v", fe)
		}
		if fe.Section == "raw" && fe.Chunk >= 0 {
			sawChunk = true
		}
	}
	if !sawChunk {
		t.Fatalf("damaged raw chunk not localized: %v", fails)
	}

	// Bare cpSZ streams dispatch to the stream-level scan.
	cp, err := tspsz.CompressCP(f, tspsz.ModeAbsolute, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fails := tspsz.VerifyAll(cp.Bytes); len(fails) != 0 {
		t.Fatalf("clean bare stream: %v", fails)
	}
	mut := append([]byte(nil), cp.Bytes...)
	mut[len(mut)-13] ^= 0xff
	if fails := tspsz.VerifyAll(mut); len(fails) == 0 {
		t.Fatal("tampered bare stream verified")
	}
}
