package tspsz_test

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"tspsz"
)

// bigField is large enough that compress and decompress take several
// milliseconds even on fast machines, giving mid-flight cancellation a real
// window to land in.
func bigField() *tspsz.Field {
	f := tspsz.NewField2D(192, 192)
	l := 23.5
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		x, y := math.Pi*p[0]/l, math.Pi*p[1]/l
		f.U[idx] = float32(-math.Sin(x)*math.Cos(y) - 0.1*math.Cos(x)*math.Sin(y))
		f.V[idx] = float32(math.Cos(x)*math.Sin(y) - 0.1*math.Sin(x)*math.Cos(y))
	}
	return f
}

// wantCancelled asserts err carries the full cancellation contract: typed
// *StreamError, matches ErrCancelled, still matches the underlying context
// error, and is not conflated with any stream-fault class.
func wantCancelled(t *testing.T, err error, ctxErr error) {
	t.Helper()
	if err == nil {
		t.Fatal("cancelled operation returned nil error")
	}
	if !errors.Is(err, tspsz.ErrCancelled) {
		t.Fatalf("cancelled operation returned %v, want ErrCancelled", err)
	}
	if !errors.Is(err, ctxErr) {
		t.Fatalf("%v hides the underlying %v", err, ctxErr)
	}
	var se *tspsz.StreamError
	if !errors.As(err, &se) {
		t.Fatalf("cancellation not carried by *StreamError: %T %v", err, err)
	}
	for _, wrong := range []error{tspsz.ErrCorrupt, tspsz.ErrTruncated, tspsz.ErrVersion, tspsz.ErrHeader} {
		if errors.Is(err, wrong) {
			t.Fatalf("cancellation classified as stream fault %v", wrong)
		}
	}
}

func TestPreCancelledContext(t *testing.T) {
	f := demoField()
	opts := tspsz.Options{Variant: tspsz.TspSZ1, Mode: tspsz.ModeAbsolute, ErrBound: 0.05}
	res, err := tspsz.Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := tspsz.CompressCtx(ctx, f, opts); err == nil {
		t.Fatal("CompressCtx succeeded on a dead context")
	} else {
		wantCancelled(t, err, context.Canceled)
	}
	if _, err := tspsz.DecompressCtx(ctx, res.Bytes, 4); err == nil {
		t.Fatal("DecompressCtx succeeded on a dead context")
	} else {
		wantCancelled(t, err, context.Canceled)
	}
	if _, err := tspsz.CompressSequenceCtx(ctx, []*tspsz.Field{f, f}, opts); err == nil {
		t.Fatal("CompressSequenceCtx succeeded on a dead context")
	} else {
		wantCancelled(t, err, context.Canceled)
	}
	if _, err := tspsz.CompressCPCtx(ctx, f, tspsz.ModeAbsolute, 0.05, 2); err == nil {
		t.Fatal("CompressCPCtx succeeded on a dead context")
	} else {
		wantCancelled(t, err, context.Canceled)
	}
	if _, err := tspsz.DecompressCPCtx(ctx, res.Bytes, 2); err == nil {
		// res.Bytes is a container, not a bare CPSZ stream, but the dead
		// context must win before any parsing happens.
		t.Fatal("DecompressCPCtx succeeded on a dead context")
	} else {
		wantCancelled(t, err, context.Canceled)
	}
}

func TestExpiredDeadline(t *testing.T) {
	f := demoField()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Minute))
	defer cancel()
	_, err := tspsz.CompressCtx(ctx, f, tspsz.Options{Variant: tspsz.TspSZ1, Mode: tspsz.ModeAbsolute, ErrBound: 0.05})
	wantCancelled(t, err, context.DeadlineExceeded)
}

// TestMidDecodeCancellation cancels decompression at staggered points in
// its lifetime under -race. Every run must either finish cleanly (the
// cancel landed too late) or return the full ErrCancelled contract — and
// no run may leak a goroutine or leave a worker touching shared state
// after return (the race detector watches the latter).
func TestMidDecodeCancellation(t *testing.T) {
	f := bigField()
	opts := tspsz.Options{Variant: tspsz.TspSZ1, Mode: tspsz.ModeAbsolute, ErrBound: 0.01}
	res, err := tspsz.Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	cancelledRuns := 0
	delays := []time.Duration{0, 50 * time.Microsecond, 200 * time.Microsecond,
		500 * time.Microsecond, time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond}
	rounds := 3
	if testing.Short() {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		for _, d := range delays {
			ctx, cancel := context.WithCancel(context.Background())
			go func(d time.Duration) {
				if d > 0 {
					time.Sleep(d)
				}
				cancel()
			}(d)
			dec, err := tspsz.DecompressCtx(ctx, res.Bytes, 4)
			if err != nil {
				cancelledRuns++
				wantCancelled(t, err, context.Canceled)
			} else if dec == nil || dec.NumVertices() != f.NumVertices() {
				t.Fatalf("delay %v: clean decode returned a malformed field", d)
			}
			cancel()
		}
	}
	if cancelledRuns == 0 {
		t.Log("no run was actually cancelled mid-flight; timings too fast to prove anything this run")
	}
	waitNoGoroutineLeak(t, before)
}

// TestMidCompressCancellation does the same on the encode side, where
// cancellation additionally must return every pooled chunk buffer (the
// poolguard lint proves the return paths statically; -race proves no
// worker outlives the call).
func TestMidCompressCancellation(t *testing.T) {
	f := bigField()
	opts := tspsz.Options{Variant: tspsz.TspSZ1, Mode: tspsz.ModeAbsolute, ErrBound: 0.01}

	before := runtime.NumGoroutine()
	delays := []time.Duration{0, 200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond}
	for _, d := range delays {
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			if d > 0 {
				time.Sleep(d)
			}
			cancel()
		}(d)
		res, err := tspsz.CompressCtx(ctx, f, opts)
		if err != nil {
			wantCancelled(t, err, context.Canceled)
		} else if res == nil || len(res.Bytes) == 0 {
			t.Fatalf("delay %v: clean compress returned an empty result", d)
		}
		cancel()
	}
	waitNoGoroutineLeak(t, before)
}

// TestMidSequenceCancellation cancels between and inside frames of a
// sequence decode; the frame loop must stop without wrapping the
// cancellation in frame-scoped context.
func TestMidSequenceCancellation(t *testing.T) {
	f := demoField()
	opts := tspsz.Options{Variant: tspsz.TspSZ1, Mode: tspsz.ModeAbsolute, ErrBound: 0.05}
	seq, err := tspsz.CompressSequence([]*tspsz.Field{f, f, f}, opts)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	for _, d := range []time.Duration{0, 100 * time.Microsecond, time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			if d > 0 {
				time.Sleep(d)
			}
			cancel()
		}(d)
		frames, err := tspsz.DecompressSequenceCtx(ctx, seq.Bytes, 4)
		if err != nil {
			wantCancelled(t, err, context.Canceled)
		} else if len(frames) != 3 {
			t.Fatalf("delay %v: clean decode returned %d frames, want 3", d, len(frames))
		}
		cancel()
	}
	waitNoGoroutineLeak(t, before)
}

// TestCancellationIsRetryable proves the core promise of the taxonomy: the
// same bytes that failed under a dead context decode cleanly under a live
// one.
func TestCancellationIsRetryable(t *testing.T) {
	f := demoField()
	res, err := tspsz.Compress(f, tspsz.Options{Variant: tspsz.TspSZ1, Mode: tspsz.ModeAbsolute, ErrBound: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tspsz.DecompressCtx(ctx, res.Bytes, 2); !errors.Is(err, tspsz.ErrCancelled) {
		t.Fatalf("dead context: %v", err)
	}
	dec, err := tspsz.DecompressCtx(context.Background(), res.Bytes, 2)
	if err != nil {
		t.Fatalf("retry with live context failed: %v", err)
	}
	if dec.NumVertices() != f.NumVertices() {
		t.Fatal("retry produced a malformed field")
	}
}

// TestNilCtxIdentical pins the compatibility contract: the ctx-free API and
// a nil/background context produce byte-identical streams and fields.
func TestNilCtxIdentical(t *testing.T) {
	f := demoField()
	opts := tspsz.Options{Variant: tspsz.TspSZ1, Mode: tspsz.ModeAbsolute, ErrBound: 0.05}
	plain, err := tspsz.Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := tspsz.CompressCtx(context.Background(), f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if string(plain.Bytes) != string(ctxed.Bytes) {
		t.Fatal("CompressCtx(background) and Compress produced different streams")
	}
	a, err := tspsz.Decompress(plain.Bytes, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tspsz.DecompressCtx(context.Background(), plain.Bytes, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.U {
		if a.U[i] != b.U[i] || a.V[i] != b.V[i] {
			t.Fatalf("vertex %d differs between ctx-free and ctx decode", i)
		}
	}
}
