# Convenience targets for the TspSZ repository.

GO ?= go

.PHONY: all build vet lint test bench bench-smoke bench-diff bench-full race fuzz-smoke fault-sweep profile-smoke stream-suite cover experiments figures clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific invariants (robust float comparisons, centralized
# concurrency, deterministic kernels, checked codec I/O, no lossy
# narrowing, taint-tracked stream values: no allocation size or slice
# index from the compressed stream without a dominating bound check,
# panic-safe parallel dispatch, provably disjoint worker writes, and
# resource lifetimes: pooled buffers released exactly once with no
# use-after-put or escape, Closers/tickers/profiles released on all
# paths, no goroutine whose only exit is a bare channel op). See
# `go run ./cmd/tsplint -help` for the full 11-check list and the
# //lint:allow suppression syntax.
lint:
	$(GO) run ./cmd/tsplint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# 10-second native-fuzzing smoke per decoder entry point. Crashing inputs
# land in <pkg>/testdata/fuzz/<Target>/ — CI uploads them as artifacts.
fuzz-smoke:
	$(GO) test -fuzz='^FuzzDecode$$' -fuzztime=10s -run='^$$' ./internal/huffman
	$(GO) test -fuzz='^FuzzDecode$$' -fuzztime=10s -run='^$$' ./internal/flatedec
	$(GO) test -fuzz='^FuzzDecompress$$' -fuzztime=10s -run='^$$' ./internal/core
	$(GO) test -fuzz='^FuzzDecompressSequence$$' -fuzztime=10s -run='^$$' ./internal/core
	$(GO) test -fuzz='^FuzzDecompressTruncated$$' -fuzztime=10s -run='^$$' ./internal/cpsz
	$(GO) test -fuzz='^FuzzSalvage$$' -fuzztime=10s -run='^$$' ./internal/cpsz

# Byte-level fault-injection sweeps under the race detector: every byte
# flipped, every offset truncated, seeded random corruption — decoded with
# parallel workers through both the cpSZ layer and the public API. -short
# strides the byte sweep for CI; run without it for the exhaustive pass.
# The salvage sweep corrupts every single chunk of a multi-chunk v4
# archive and requires every other chunk back bit-exactly; the
# cancellation sweep fires mid-flight cancels under -race to prove no
# goroutine or pooled buffer leaks on the abandon path.
fault-sweep:
	$(GO) test -race -short -run='^TestFaultSweep$$' ./internal/cpsz
	$(GO) test -race -short -run='^(TestSalvage|TestVerifyAll)' ./internal/cpsz
	$(GO) test -race -short -run='^(TestCoreSalvage|TestCoreVerifyAll)' ./internal/core
	$(GO) test -race -short -run='^(TestMid(Decode|Compress|Sequence)Cancellation|TestCancellationIsRetryable|TestRootSalvage)$$' .
	$(GO) test -race -short -run='^(TestFaultSweepPublicAPI|TestReadFieldFaultyReader)$$' .

# Observability smoke: run a small compress + decompress through the real
# CLI with -stats and -cpuprofile, then assert the stats JSON parses (jq),
# names every expected pipeline stage, and that the byte-partition counters
# sum exactly to the archive size. CI uploads the JSON as an artifact.
PROFILE_SMOKE_STAGES = cp-extract trace predict-quantize histogram entropy-encode correction container
profile-smoke:
	$(GO) run ./cmd/tspsz gen -dataset cba -scale 1 -out profile_smoke.tspf
	$(GO) run ./cmd/tspsz compress -in profile_smoke.tspf -out profile_smoke.tsz -variant i -eb 5e-4 \
		-stats=profile_smoke_stats.json -cpuprofile=profile_smoke.pprof
	$(GO) run ./cmd/tspsz decompress -in profile_smoke.tsz -out profile_smoke_dec.tspf \
		-stats=profile_smoke_decode_stats.json
	for s in $(PROFILE_SMOKE_STAGES); do \
		jq -e --arg s $$s '[.spans[].stage] | index($$s) != null' profile_smoke_stats.json >/dev/null \
			|| { echo "profile-smoke: stage $$s missing from stats JSON" >&2; exit 1; }; \
	done
	jq -e '.counters | (.bytes_stream_header + .bytes_section_eb + .bytes_section_quant + .bytes_section_raw + .bytes_stream_trailer + .bytes_container) == .bytes_out' \
		profile_smoke_stats.json >/dev/null \
		|| { echo "profile-smoke: byte partition does not sum to bytes_out" >&2; exit 1; }
	jq -e '[.spans[].stage] | (index("entropy-decode") != null) and (index("reconstruct") != null)' \
		profile_smoke_decode_stats.json >/dev/null \
		|| { echo "profile-smoke: decode stages missing from stats JSON" >&2; exit 1; }
	test -s profile_smoke.pprof
	@echo "profile-smoke: OK"

# Streaming acceptance: the byte-identity differentials (streamed archive
# equal to the in-memory one at several worker counts, from in-memory and
# file-backed fetchers) and the cancellation-leak check under the race
# detector, then the out-of-core memory gate — peak heap must stay under
# the size of a 192 MiB procedural field that is never resident. The
# memory gate runs without -race (the race runtime owns its own heap
# accounting) and not -short (the gate is the point).
stream-suite:
	$(GO) test -race -run='^TestStream' ./internal/cpsz
	$(GO) test -race -run='^(TestCompressStream|TestCompressSequenceStream|TestSequenceRejectsTransposedFrame)' ./internal/core
	$(GO) test -race -run='^(TestStreamDifferential|TestStreamCancellationNoLeak)$$' .
	$(GO) test -run='^TestStreamMemoryBounded$$' -v .

# Perf-trajectory harness: run the key hot-path benchmarks BENCH_COUNT
# times each and record the mean ns/op, B/op, and allocs/op per benchmark
# in $(BENCH_JSON). The JSON is committed so later PRs diff their run
# against this baseline instead of guessing.
BENCH_JSON ?= BENCH_pr10.json
BENCH_COUNT ?= 3
BENCH_TIME ?= 1s
BENCH_BASELINE ?= BENCH_pr6.json

bench:
	$(GO) test -run='^$$' -bench='^(BenchmarkCompressAbs2D|BenchmarkDecompressAbs2D|BenchmarkSerialize|BenchmarkParse)$$' \
		-benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) ./internal/cpsz | tee bench_raw.txt
	$(GO) test -run='^$$' -bench='^(BenchmarkEncode|BenchmarkDecode)$$' \
		-benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) ./internal/huffman | tee -a bench_raw.txt
	$(GO) test -run='^$$' -bench='^(BenchmarkFig8Scalability|BenchmarkCompress(Stream|InMemory|StreamEb))$$' \
		-benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) . | tee -a bench_raw.txt
	$(GO) run ./cmd/benchjson -in bench_raw.txt -out $(BENCH_JSON)

# CI smoke: a single iteration of each key benchmark, so the harness and
# the JSON conversion cannot rot between perf-focused PRs.
bench-smoke:
	$(MAKE) bench BENCH_COUNT=1 BENCH_TIME=1x BENCH_JSON=bench_smoke.json
	rm -f bench_smoke.json bench_raw.txt

# Regression gate: rerun the trajectory benchmarks and diff against the
# committed baseline. Fails when a hot-path benchmark (Parse, Serialize,
# Encode, Decode) regresses ns/op by more than 20% or allocs/op at all.
# Benchmark noise varies across hosts, so CI runs this non-blocking; run
# it locally before committing a new BENCH_pr*.json.
bench-diff:
	$(GO) test -run='^$$' -bench='^(BenchmarkSerialize|BenchmarkParse)$$' \
		-benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) ./internal/cpsz | tee bench_raw.txt
	$(GO) test -run='^$$' -bench='^(BenchmarkEncode|BenchmarkDecode)$$' \
		-benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) ./internal/huffman | tee -a bench_raw.txt
	$(GO) test -run='^$$' -bench='^BenchmarkCompressStreamEb$$' \
		-benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) . | tee -a bench_raw.txt
	$(GO) run ./cmd/benchjson -in bench_raw.txt -baseline $(BENCH_BASELINE)

# The full sweep over every package (slow; reproduces the paper tables).
bench-full:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/tspbench -exp all -csv results | tee experiments_output.txt

# Render the qualitative figures as PNGs.
figures:
	$(GO) run ./cmd/topoviz -mode skeleton -dataset ocean -lic -out fig_skeleton_ocean.png
	$(GO) run ./cmd/topoviz -mode error -dataset ocean -out fig_errmap_ocean.png
	$(GO) run ./cmd/topoviz -mode lossless -dataset ocean -out fig_lossless_ocean.png
	$(GO) run ./cmd/topoviz -mode lic -dataset cba -out fig_lic_cba.png

clean:
	rm -f cover.out experiments_output.txt fig_*.png bench_raw.txt bench_smoke.json profile_smoke*
