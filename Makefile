# Convenience targets for the TspSZ repository.

GO ?= go

.PHONY: all build vet test bench race cover experiments figures clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/cpsz ./internal/core ./internal/skeleton ./internal/parallel

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/tspbench -exp all -csv results | tee experiments_output.txt

# Render the qualitative figures as PNGs.
figures:
	$(GO) run ./cmd/topoviz -mode skeleton -dataset ocean -lic -out fig_skeleton_ocean.png
	$(GO) run ./cmd/topoviz -mode error -dataset ocean -out fig_errmap_ocean.png
	$(GO) run ./cmd/topoviz -mode lossless -dataset ocean -out fig_lossless_ocean.png
	$(GO) run ./cmd/topoviz -mode lic -dataset cba -out fig_lic_cba.png

clean:
	rm -f cover.out experiments_output.txt fig_*.png
