# Convenience targets for the TspSZ repository.

GO ?= go

.PHONY: all build vet lint test bench race fuzz-smoke cover experiments figures clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific invariants (robust float comparisons, centralized
# concurrency, deterministic kernels, checked codec I/O, no lossy
# narrowing). See `go run ./cmd/tsplint -help` for the check list and the
# //lint:allow suppression syntax.
lint:
	$(GO) run ./cmd/tsplint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# 10-second native-fuzzing smoke per decoder entry point; each package has
# exactly one Fuzz target so -fuzz=Fuzz is unambiguous.
fuzz-smoke:
	$(GO) test -fuzz=Fuzz -fuzztime=10s -run='^$$' ./internal/huffman
	$(GO) test -fuzz=Fuzz -fuzztime=10s -run='^$$' ./internal/core
	$(GO) test -fuzz=Fuzz -fuzztime=10s -run='^$$' ./internal/cpsz

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/tspbench -exp all -csv results | tee experiments_output.txt

# Render the qualitative figures as PNGs.
figures:
	$(GO) run ./cmd/topoviz -mode skeleton -dataset ocean -lic -out fig_skeleton_ocean.png
	$(GO) run ./cmd/topoviz -mode error -dataset ocean -out fig_errmap_ocean.png
	$(GO) run ./cmd/topoviz -mode lossless -dataset ocean -out fig_lossless_ocean.png
	$(GO) run ./cmd/topoviz -mode lic -dataset cba -out fig_lic_cba.png

clean:
	rm -f cover.out experiments_output.txt fig_*.png
