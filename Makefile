# Convenience targets for the TspSZ repository.

GO ?= go

.PHONY: all build vet lint test bench bench-smoke bench-full race fuzz-smoke fault-sweep cover experiments figures clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific invariants (robust float comparisons, centralized
# concurrency, deterministic kernels, checked codec I/O, no lossy
# narrowing, and taint-tracked stream values: no allocation size or slice
# index from the compressed stream without a dominating bound check). See
# `go run ./cmd/tsplint -help` for the check list and the //lint:allow
# suppression syntax.
lint:
	$(GO) run ./cmd/tsplint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# 10-second native-fuzzing smoke per decoder entry point. Crashing inputs
# land in <pkg>/testdata/fuzz/<Target>/ — CI uploads them as artifacts.
fuzz-smoke:
	$(GO) test -fuzz='^FuzzDecode$$' -fuzztime=10s -run='^$$' ./internal/huffman
	$(GO) test -fuzz='^FuzzDecompress$$' -fuzztime=10s -run='^$$' ./internal/core
	$(GO) test -fuzz='^FuzzDecompressSequence$$' -fuzztime=10s -run='^$$' ./internal/core
	$(GO) test -fuzz='^FuzzDecompressTruncated$$' -fuzztime=10s -run='^$$' ./internal/cpsz

# Byte-level fault-injection sweeps under the race detector: every byte
# flipped, every offset truncated, seeded random corruption — decoded with
# parallel workers through both the cpSZ layer and the public API. -short
# strides the byte sweep for CI; run without it for the exhaustive pass.
fault-sweep:
	$(GO) test -race -short -run='^TestFaultSweep$$' ./internal/cpsz
	$(GO) test -race -short -run='^(TestFaultSweepPublicAPI|TestReadFieldFaultyReader)$$' .

# Perf-trajectory harness: run the key hot-path benchmarks BENCH_COUNT
# times each and record the mean ns/op, B/op, and allocs/op per benchmark
# in $(BENCH_JSON). The JSON is committed so later PRs diff their run
# against this baseline instead of guessing.
BENCH_JSON ?= BENCH_pr2.json
BENCH_COUNT ?= 3
BENCH_TIME ?= 1s

bench:
	$(GO) test -run='^$$' -bench='^(BenchmarkCompressAbs2D|BenchmarkDecompressAbs2D|BenchmarkSerialize|BenchmarkParse)$$' \
		-benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) ./internal/cpsz | tee bench_raw.txt
	$(GO) test -run='^$$' -bench='^(BenchmarkEncode|BenchmarkDecode)$$' \
		-benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) ./internal/huffman | tee -a bench_raw.txt
	$(GO) test -run='^$$' -bench='^BenchmarkFig8Scalability$$' \
		-benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) . | tee -a bench_raw.txt
	$(GO) run ./cmd/benchjson -in bench_raw.txt -out $(BENCH_JSON)

# CI smoke: a single iteration of each key benchmark, so the harness and
# the JSON conversion cannot rot between perf-focused PRs.
bench-smoke:
	$(MAKE) bench BENCH_COUNT=1 BENCH_TIME=1x BENCH_JSON=bench_smoke.json
	rm -f bench_smoke.json bench_raw.txt

# The full sweep over every package (slow; reproduces the paper tables).
bench-full:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/tspbench -exp all -csv results | tee experiments_output.txt

# Render the qualitative figures as PNGs.
figures:
	$(GO) run ./cmd/topoviz -mode skeleton -dataset ocean -lic -out fig_skeleton_ocean.png
	$(GO) run ./cmd/topoviz -mode error -dataset ocean -out fig_errmap_ocean.png
	$(GO) run ./cmd/topoviz -mode lossless -dataset ocean -out fig_lossless_ocean.png
	$(GO) run ./cmd/topoviz -mode lic -dataset cba -out fig_lic_cba.png

clean:
	rm -f cover.out experiments_output.txt fig_*.png bench_raw.txt bench_smoke.json
