package tspsz_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles one of the repository's commands into dir and returns
// the binary path.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// The full CLI pipeline: generate → compress → decompress → compare →
// export → render, end to end through the real binaries.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline in short mode")
	}
	dir := t.TempDir()
	tspszBin := buildCmd(t, dir, "tspsz")
	topovizBin := buildCmd(t, dir, "topoviz")

	field := filepath.Join(dir, "f.tspf")
	stream := filepath.Join(dir, "f.tsz")
	decoded := filepath.Join(dir, "f.dec.tspf")
	vtk := filepath.Join(dir, "f.vtk")
	png := filepath.Join(dir, "f.png")

	out := run(t, tspszBin, "gen", "-dataset", "cba", "-scale", "0.3", "-out", field)
	if !strings.Contains(out, "wrote "+field) {
		t.Fatalf("gen output: %s", out)
	}
	out = run(t, tspszBin, "compress", "-in", field, "-out", stream,
		"-variant", "i", "-mode", "abs", "-eb", "1e-3", "-t", "300", "-h", "1")
	if !strings.Contains(out, "CR ") {
		t.Fatalf("compress output: %s", out)
	}
	run(t, tspszBin, "decompress", "-in", stream, "-out", decoded)
	out = run(t, tspszBin, "compare", "-orig", field, "-dec", decoded, "-t", "300", "-h", "1")
	if !strings.Contains(out, "0 incorrect") {
		t.Fatalf("compare output: %s", out)
	}
	out = run(t, tspszBin, "inspect", "-in", field, "-t", "100", "-h", "1")
	if !strings.Contains(out, "critical points:") {
		t.Fatalf("inspect output: %s", out)
	}
	run(t, tspszBin, "export", "-in", field, "-out", vtk, "-t", "100", "-h", "1")
	if fi, err := os.Stat(vtk); err != nil || fi.Size() == 0 {
		t.Fatalf("vtk export missing: %v", err)
	}
	run(t, topovizBin, "-mode", "skeleton", "-in", field, "-t", "100", "-h", "1", "-out", png)
	if fi, err := os.Stat(png); err != nil || fi.Size() == 0 {
		t.Fatalf("png render missing: %v", err)
	}
	out = run(t, tspszBin, "stats", "-in", field, "-dec", decoded)
	if !strings.Contains(out, "PSNR") || !strings.Contains(out, "vorticity") {
		t.Fatalf("stats output: %s", out)
	}

	// Sequence pipeline over two frames.
	seq := filepath.Join(dir, "f.tsq")
	out = run(t, tspszBin, "compress-seq", "-out", seq, "-eb", "1e-3", "-t", "100", "-h", "1", field, field)
	if !strings.Contains(out, "2 frames") {
		t.Fatalf("compress-seq output: %s", out)
	}
	run(t, tspszBin, "decompress-seq", "-in", seq, "-outprefix", filepath.Join(dir, "seq_"))
	if _, err := os.Stat(filepath.Join(dir, "seq_001.tspf")); err != nil {
		t.Fatalf("sequence frame missing: %v", err)
	}
}

// tspbench must run a small real experiment and emit a scorecard.
func TestCLITspbench(t *testing.T) {
	if testing.Short() {
		t.Skip("tspbench in short mode")
	}
	dir := t.TempDir()
	bin := buildCmd(t, dir, "tspbench")
	cmd := exec.Command(bin, "-exp", "errmap", "-dataset", "cba", "-scale", "0.25", "-csv", dir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("tspbench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Fig. 3") || !strings.Contains(string(out), "PASS") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig3_errmap_cba.csv")); err != nil {
		t.Fatalf("csv missing: %v", err)
	}
}
