package zfp

import (
	"encoding/binary"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"tspsz/internal/datagen"
	"tspsz/internal/field"
)

func TestTransformRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{2, 3} {
		n := blockEdge * blockEdge
		if dim == 3 {
			n *= blockEdge
		}
		for trial := 0; trial < 500; trial++ {
			v := make([]int64, n)
			w := make([]int64, n)
			for i := range v {
				v[i] = int64(rng.Intn(1<<22) - 1<<21)
				w[i] = v[i]
			}
			forwardTransform(w, dim)
			inverseTransform(w, dim)
			for i := range v {
				if v[i] != w[i] {
					t.Fatalf("dim %d trial %d: transform not invertible at %d: %d != %d",
						dim, trial, i, w[i], v[i])
				}
			}
		}
	}
}

func TestTransformDecorrelatesSmoothBlock(t *testing.T) {
	// A linear ramp should concentrate energy in few coefficients.
	v := make([]int64, 16)
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			v[j*4+i] = int64(1000 * (i + j))
		}
	}
	forwardTransform(v, 2)
	nonzeroLarge := 0
	for _, c := range v {
		if c > 800 || c < -800 {
			nonzeroLarge++
		}
	}
	if nonzeroLarge > 8 {
		t.Errorf("smooth block left %d large coefficients", nonzeroLarge)
	}
}

func roundTripBound(t *testing.T, f *field.Field, tol float64) *field.Field {
	t.Helper()
	data, err := Compress(f, tol)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(data)
	if err != nil {
		t.Fatal(err)
	}
	for c, comp := range dec.Components() {
		orig := f.Components()[c]
		for i := range comp {
			if d := math.Abs(float64(comp[i]) - float64(orig[i])); d > tol {
				t.Fatalf("component %d vertex %d: error %v exceeds tol %v", c, i, d, tol)
			}
		}
	}
	return dec
}

func TestCompressRespectsBound2D(t *testing.T) {
	f := datagen.Ocean(70, 54) // deliberately not multiples of 4
	for _, tol := range []float64{1e-1, 1e-2, 1e-4} {
		roundTripBound(t, f, tol)
	}
}

func TestCompressRespectsBound3D(t *testing.T) {
	f := datagen.Nek5000(18)
	roundTripBound(t, f, 1e-2)
}

func TestCompressesSmoothData(t *testing.T) {
	f := datagen.CBA(120, 44)
	data, err := Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= f.SizeBytes()/2 {
		t.Errorf("ZFP-style codec achieved only %d of %d bytes", len(data), f.SizeBytes())
	}
}

func TestLooserToleranceCompressesBetter(t *testing.T) {
	f := datagen.Ocean(96, 64)
	sizes := []int{}
	for _, tol := range []float64{1e-4, 1e-3, 1e-2} {
		data, err := Compress(f, tol)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(data))
	}
	if !(sizes[0] > sizes[1] && sizes[1] > sizes[2]) {
		t.Errorf("sizes not monotone in tolerance: %v", sizes)
	}
}

func TestQuickRandomFields(t *testing.T) {
	cfgCheck := func(seed int64, nxRaw, nyRaw uint8, tolExp uint8) bool {
		nx := int(nxRaw%30) + 2
		ny := int(nyRaw%30) + 2
		tol := math.Ldexp(1, -int(tolExp%16)-2)
		rng := rand.New(rand.NewSource(seed))
		f := field.New2D(nx, ny)
		for i := range f.U {
			f.U[i] = float32(rng.NormFloat64())
			f.V[i] = float32(rng.NormFloat64())
		}
		data, err := Compress(f, tol)
		if err != nil {
			return false
		}
		dec, err := Decompress(data)
		if err != nil {
			return false
		}
		for c, comp := range dec.Components() {
			orig := f.Components()[c]
			for i := range comp {
				if math.Abs(float64(comp[i])-float64(orig[i])) > tol {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(cfgCheck, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRejectsBadInput(t *testing.T) {
	f := datagen.CBA(20, 12)
	if _, err := Compress(f, 0); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := Decompress([]byte("NOPE")); err == nil {
		t.Error("bad magic accepted")
	}
	data, err := Compress(f, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(data[:len(data)/2]); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestDecompressNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, rng.Intn(400))
		rng.Read(data)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on garbage: %v", r)
				}
			}()
			_, _ = Decompress(data)
		}()
	}
}

func BenchmarkCompress2D(b *testing.B) {
	f := datagen.Ocean(256, 160)
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(f, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDecompressRejectsFabricatedDims(t *testing.T) {
	f := datagen.CBA(20, 12)
	stream, err := Compress(f, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	// Header layout: magic(4) version(1) dim(1) pad(2) nx(4) ny(4) nz(4).
	for _, tc := range []struct {
		name string
		nx   uint32
	}{
		{"beyond axis cap", 1 << 30},
		{"beyond stream capacity", 1 << 20},
	} {
		forged := append([]byte(nil), stream...)
		binary.LittleEndian.PutUint32(forged[8:], tc.nx)
		if _, err := Decompress(forged); err == nil {
			t.Errorf("%s: forged nx=%d accepted", tc.name, tc.nx)
		}
	}
}

func TestDecompressDefersFieldAllocation(t *testing.T) {
	// A forged header can claim dims that pass the stream-capacity screen
	// (the zero padding makes ~8.4M vertices look encodable), but the
	// decoder must not commit the ~100 MB field before the sections
	// actually inflate and decode — it used to allocate all components
	// up front, straight off the header.
	buf := []byte(magic)
	buf = append(buf, 1, 3, 0, 0)
	for _, v := range []uint32{2048, 2048, 2} {
		buf = binary.LittleEndian.AppendUint32(buf, v)
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(1e-3))
	buf = append(buf, make([]byte, 10240)...)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := Decompress(buf); err == nil {
		t.Fatal("forged stream accepted")
	}
	runtime.ReadMemStats(&after)
	if delta := after.TotalAlloc - before.TotalAlloc; delta > 16<<20 {
		t.Fatalf("decoder allocated %d bytes before validating a forged header's payload", delta)
	}
}
