package zfp

// Integer lifting transform: a two-level Haar decomposition along each
// dimension of the 4-wide block. Each butterfly stores the difference and
// the floor-midpoint, which inverts exactly in integer arithmetic:
//
//	d = a − b; s = b + (d >> 1)   ⇒   b = s − (d >> 1); a = d + b
//
// Level 1 pairs (0,1) and (2,3); level 2 pairs the two sums. Layout after
// the forward pass: [ss, sd, d0, d1] where ss is the block average scale.

// fwd4 transforms 4 samples in place given their stride.
func fwd4(v []int64, base, stride int) {
	i0, i1, i2, i3 := base, base+stride, base+2*stride, base+3*stride
	d0 := v[i0] - v[i1]
	s0 := v[i1] + (d0 >> 1)
	d1 := v[i2] - v[i3]
	s1 := v[i3] + (d1 >> 1)
	dd := s0 - s1
	ss := s1 + (dd >> 1)
	v[i0] = ss
	v[i1] = dd
	v[i2] = d0
	v[i3] = d1
}

// inv4 inverts fwd4 exactly.
func inv4(v []int64, base, stride int) {
	i0, i1, i2, i3 := base, base+stride, base+2*stride, base+3*stride
	ss, dd, d0, d1 := v[i0], v[i1], v[i2], v[i3]
	s1 := ss - (dd >> 1)
	s0 := dd + s1
	b0 := s0 - (d0 >> 1)
	a0 := d0 + b0
	b1 := s1 - (d1 >> 1)
	a1 := d1 + b1
	v[i0] = a0
	v[i1] = b0
	v[i2] = a1
	v[i3] = b1
}

// forwardTransform decorrelates a 4^dim block in place, dimension by
// dimension.
func forwardTransform(v []int64, dim int) {
	// Along x.
	rows := len(v) / blockEdge
	for r := 0; r < rows; r++ {
		fwd4(v, r*blockEdge, 1)
	}
	// Along y.
	planes := 1
	if dim == 3 {
		planes = blockEdge
	}
	for p := 0; p < planes; p++ {
		for i := 0; i < blockEdge; i++ {
			fwd4(v, p*blockEdge*blockEdge+i, blockEdge)
		}
	}
	if dim == 3 {
		// Along z.
		for j := 0; j < blockEdge; j++ {
			for i := 0; i < blockEdge; i++ {
				fwd4(v, j*blockEdge+i, blockEdge*blockEdge)
			}
		}
	}
}

// inverseTransform inverts forwardTransform exactly (reverse order).
func inverseTransform(v []int64, dim int) {
	if dim == 3 {
		for j := 0; j < blockEdge; j++ {
			for i := 0; i < blockEdge; i++ {
				inv4(v, j*blockEdge+i, blockEdge*blockEdge)
			}
		}
	}
	planes := 1
	if dim == 3 {
		planes = blockEdge
	}
	for p := 0; p < planes; p++ {
		for i := 0; i < blockEdge; i++ {
			inv4(v, p*blockEdge*blockEdge+i, blockEdge)
		}
	}
	rows := len(v) / blockEdge
	for r := 0; r < rows; r++ {
		inv4(v, r*blockEdge, 1)
	}
}
