// Package zfp implements a ZFP-style transform-based error-bounded lossy
// compressor, the other major family of scientific compressors the paper
// reviews in §II ("ZFP is a typical transform-based compressor"): data is
// processed in 4×4(×4) blocks, aligned to a per-block common exponent,
// converted to fixed point, decorrelated with an integer lifting transform,
// and entropy coded.
//
// Differences from the reference C implementation, chosen for clarity and
// provable correctness (documented substitution, DESIGN.md §2): the
// decorrelation is a two-level Haar lifting (exactly invertible in integer
// arithmetic) instead of ZFP's near-orthogonal transform, and the embedded
// bit-plane coder is replaced by per-block low-bit truncation followed by
// the repository's Huffman+DEFLATE backend. The error bound is enforced
// *by construction*: each encoder block verifies its own reconstruction
// and lowers the truncation until the tolerance holds.
package zfp

import (
	"bytes"
	"compress/flate"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"tspsz/internal/field"
	"tspsz/internal/grid"
	"tspsz/internal/huffman"
	"tspsz/internal/parallel"
	"tspsz/internal/streamerr"
)

const (
	blockEdge = 4
	// fixedBits is the fixed-point precision within a block: values are
	// scaled to q = x·2^(fixedBits−e) with e the block's common exponent.
	fixedBits = 21
	magic     = "ZFPG"
	// maxAxis caps each header axis before the vertex-count check; far
	// beyond any real dataset, small enough that three axes multiplied
	// cannot overflow uint64.
	maxAxis = 1 << 21
	// maxInflateRatio is DEFLATE's worst-case expansion (~1032:1 for a
	// run of zeros); anything claiming more is a fabricated stream.
	maxInflateRatio = 1032
)

// Compress encodes every component of f independently under the absolute
// per-sample tolerance tol.
func Compress(f *field.Field, tol float64) ([]byte, error) {
	return CompressCtx(nil, f, tol)
}

// CompressCtx is Compress with cancellation, checked between components. A
// nil ctx never cancels.
func CompressCtx(ctx context.Context, f *field.Field, tol float64) (out []byte, err error) {
	defer streamerr.CancelGuard("zfp", &err)
	if !(tol > 0) {
		return nil, fmt.Errorf("zfp: tolerance must be positive, got %v", tol)
	}
	nx, ny, nz := f.Grid.Dims()
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.WriteByte(1) // version
	buf.WriteByte(byte(f.Dim()))
	buf.WriteByte(0)
	buf.WriteByte(0)
	for _, v := range []uint32{uint32(nx), uint32(ny), uint32(nz)} {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	if err := binary.Write(&buf, binary.LittleEndian, tol); err != nil {
		return nil, err
	}

	for _, comp := range f.Components() {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		syms, side, err := encodeComponent(comp, nx, ny, nz, f.Dim(), tol)
		if err != nil {
			return nil, err
		}
		encSyms, err := huffman.Encode(syms)
		if err != nil {
			return nil, err
		}
		packedSyms, err := deflatePack(encSyms)
		if err != nil {
			return nil, err
		}
		packedSide, err := deflatePack(side)
		if err != nil {
			return nil, err
		}
		if err := binary.Write(&buf, binary.LittleEndian, uint64(len(packedSyms))); err != nil {
			return nil, err
		}
		buf.Write(packedSyms)
		if err := binary.Write(&buf, binary.LittleEndian, uint64(len(packedSide))); err != nil {
			return nil, err
		}
		buf.Write(packedSide)
	}
	return buf.Bytes(), nil
}

// Decompress reconstructs a field from a Compress stream. Failures are
// streamerr-typed, a panic anywhere in the decode is contained and
// returned as an error, and the per-component sections decode in parallel.
func Decompress(data []byte) (f *field.Field, err error) {
	return DecompressCtx(nil, data)
}

// DecompressCtx is Decompress with cancellation, checked at the
// per-component decode boundaries; an abandoned decode returns a
// streamerr.ErrCancelled-typed error. A nil ctx never cancels.
func DecompressCtx(ctx context.Context, data []byte) (f *field.Field, err error) {
	defer streamerr.Guard("zfp", &err)
	if len(data) >= 4 && string(data[:4]) != magic {
		return nil, streamerr.Header("zfp header", "bad magic, not a zfp stream")
	}
	if len(data) < 28 {
		return nil, streamerr.Truncated("zfp header", "%d of 28 header bytes", len(data))
	}
	if data[4] != 1 {
		return nil, streamerr.Version("zfp header", data[4])
	}
	dim := int(data[5])
	off := 8
	nx := int(binary.LittleEndian.Uint32(data[off:]))
	ny := int(binary.LittleEndian.Uint32(data[off+4:]))
	nz := int(binary.LittleEndian.Uint32(data[off+8:]))
	off += 12 + 8 // skip tol
	if dim != 2 && dim != 3 {
		return nil, streamerr.Header("zfp header", "invalid dimension %d", dim)
	}
	if dim == 2 {
		nz = 1 // a 2D header cannot smuggle a third axis into the product
	}
	if nx < 2 || ny < 2 || (dim == 3 && nz < 2) {
		return nil, streamerr.Header("zfp header", "invalid dims %dx%dx%d", nx, ny, nz)
	}
	// The dims come straight from the stream: bound each axis, then
	// fast-reject vertex counts the stream could not possibly encode
	// (every vertex costs at least one Huffman bit, and DEFLATE expands
	// at most maxInflateRatio:1). The division form cannot overflow. This
	// is only a cheap screen — the component allocations below happen
	// after each section's payload has actually inflated and decoded, so
	// committed memory tracks delivered bytes, not header claims.
	if nx > maxAxis || ny > maxAxis || nz > maxAxis {
		return nil, streamerr.Header("zfp header", "implausible dims %dx%dx%d", nx, ny, nz)
	}
	nv := uint64(nx) * uint64(ny) * uint64(nz) // axes ≤ 2^21: no overflow
	if nv/(8*maxInflateRatio) > uint64(len(data)) {
		return nil, streamerr.Corrupt("zfp header", "dims %dx%dx%d exceed stream capacity", nx, ny, nz)
	}
	ncomp := 2
	if dim == 3 {
		ncomp = 3
	}
	// Serial scan: slice out each component's two length-prefixed payloads.
	// Consumption is determined by the prefixes alone, so the scan is cheap
	// and unlocks parallel inflate+decode below.
	type sections struct{ syms, side []byte }
	secs := make([]sections, ncomp)
	for c := 0; c < ncomp; c++ {
		for s, name := range []string{"zfp symbols", "zfp side"} {
			if off+8 > len(data) {
				return nil, streamerr.Truncated(name, "section length cut off").WithChunk(c).WithOffset(int64(off))
			}
			n := binary.LittleEndian.Uint64(data[off:])
			off += 8
			if n > uint64(len(data)-off) {
				return nil, streamerr.Truncated(name, "section claims %d bytes, %d remain", n, len(data)-off).WithChunk(c).WithOffset(int64(off))
			}
			if s == 0 {
				secs[c].syms = data[off : off+int(n)]
			} else {
				secs[c].side = data[off : off+int(n)]
			}
			off += int(n)
		}
	}
	if off != len(data) {
		return nil, streamerr.Corrupt("zfp stream", "%d trailing bytes after final component", len(data)-off).WithOffset(int64(off))
	}
	comps := make([][]float32, ncomp)
	if err := parallel.CtxForErr(ctx, ncomp, 0, 1, func(c int) error {
		rawSyms, err := inflateUnpack(secs[c].syms)
		if err != nil {
			return streamerr.Wrap(streamerr.ErrCorrupt, "zfp symbols", err).WithChunk(c)
		}
		syms, err := huffman.Decode(rawSyms)
		if err != nil {
			return streamerr.Wrap(streamerr.ErrCorrupt, "zfp symbols", err).WithChunk(c)
		}
		side, err := inflateUnpack(secs[c].side)
		if err != nil {
			return streamerr.Wrap(streamerr.ErrCorrupt, "zfp side", err).WithChunk(c)
		}
		vals, err := decodeComponent(int(nv), nx, ny, nz, dim, syms, side)
		if err != nil {
			return streamerr.Wrap(streamerr.ErrCorrupt, "zfp component", err).WithChunk(c)
		}
		comps[c] = vals
		return nil
	}); err != nil {
		return nil, err
	}
	f = &field.Field{U: comps[0], V: comps[1]}
	if dim == 2 {
		f.Grid = grid.New2D(nx, ny)
	} else {
		f.Grid = grid.New3D(nx, ny, nz)
		f.W = comps[2]
	}
	return f, nil
}

func deflatePack(data []byte) ([]byte, error) {
	var out bytes.Buffer
	w, err := flate.NewWriter(&out, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

func inflateUnpack(data []byte) ([]byte, error) {
	// DEFLATE cannot expand beyond ~maxInflateRatio:1, so a valid payload
	// is bounded by its packed size; cap the read so a crafted section
	// cannot allocate without bound.
	capacity := maxInflateRatio*uint64(len(data)) + 64
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, int64(capacity)+1))
	if err != nil {
		return nil, err
	}
	if uint64(len(out)) > capacity {
		return nil, streamerr.Corrupt("zfp inflate", "section inflates beyond plausible ratio")
	}
	return out, nil
}

// blockCount returns ceil(n / blockEdge).
func blockCount(n int) int { return (n + blockEdge - 1) / blockEdge }

// encodeComponent splits the component into blocks and encodes each:
// symbols carry the zigzagged truncated coefficients, side carries two
// bytes per block (common exponent + 128, truncation drop).
func encodeComponent(vals []float32, nx, ny, nz, dim int, tol float64) (syms []uint32, side []byte, err error) {
	bz := 1
	if dim == 3 {
		bz = blockCount(nz)
	}
	bx, by := blockCount(nx), blockCount(ny)
	blockLen := blockEdge * blockEdge
	if dim == 3 {
		blockLen *= blockEdge
	}
	block := make([]float64, blockLen)
	coefs := make([]int64, blockLen)
	recon := make([]float64, blockLen)

	for kb := 0; kb < bz; kb++ {
		for jb := 0; jb < by; jb++ {
			for ib := 0; ib < bx; ib++ {
				gatherBlock(vals, block, nx, ny, nz, dim, ib, jb, kb)
				e, drop := encodeBlock(block, coefs, recon, dim, tol)
				side = append(side, byte(e+128), byte(drop))
				for _, c := range coefs {
					syms = append(syms, zigzag64(c))
				}
			}
		}
	}
	return syms, side, nil
}

// decodeComponent validates the decoded sections against the block geometry
// and only then allocates the component, so the field-sized allocation is
// always backed by an equal volume of symbols the stream really delivered.
func decodeComponent(nv, nx, ny, nz, dim int, syms []uint32, side []byte) ([]float32, error) {
	bz := 1
	if dim == 3 {
		bz = blockCount(nz)
	}
	bx, by := blockCount(nx), blockCount(ny)
	blockLen := blockEdge * blockEdge
	if dim == 3 {
		blockLen *= blockEdge
	}
	nBlocks := bx * by * bz
	if len(side) != 2*nBlocks || len(syms) != nBlocks*blockLen {
		return nil, fmt.Errorf("zfp: stream carries %d blocks/%d syms, want %d/%d",
			len(side)/2, len(syms), nBlocks, nBlocks*blockLen)
	}
	vals := make([]float32, nv)
	coefs := make([]int64, blockLen)
	block := make([]float64, blockLen)
	bi := 0
	for kb := 0; kb < bz; kb++ {
		for jb := 0; jb < by; jb++ {
			for ib := 0; ib < bx; ib++ {
				e := int(side[2*bi]) - 128
				drop := int(side[2*bi+1])
				if drop > 62 {
					return nil, fmt.Errorf("zfp: invalid drop %d", drop)
				}
				for i := 0; i < blockLen; i++ {
					coefs[i] = unzigzag64(syms[bi*blockLen+i]) << uint(drop)
				}
				reconstructBlock(block, coefs, dim, e)
				scatterBlock(vals, block, nx, ny, nz, dim, ib, jb, kb)
				bi++
			}
		}
	}
	return vals, nil
}

// gatherBlock copies one block, clamping reads to the domain (edge
// padding) so partial blocks stay smooth.
func gatherBlock(vals []float32, block []float64, nx, ny, nz, dim, ib, jb, kb int) {
	ke := 1
	if dim == 3 {
		ke = blockEdge
	}
	idx := 0
	for dk := 0; dk < ke; dk++ {
		k := clampIdx(kb*blockEdge+dk, nz)
		for dj := 0; dj < blockEdge; dj++ {
			j := clampIdx(jb*blockEdge+dj, ny)
			for di := 0; di < blockEdge; di++ {
				i := clampIdx(ib*blockEdge+di, nx)
				block[idx] = float64(vals[i+j*nx+k*nx*ny])
				idx++
			}
		}
	}
}

func scatterBlock(vals []float32, block []float64, nx, ny, nz, dim, ib, jb, kb int) {
	ke := 1
	if dim == 3 {
		ke = blockEdge
	}
	idx := 0
	for dk := 0; dk < ke; dk++ {
		k := kb*blockEdge + dk
		for dj := 0; dj < blockEdge; dj++ {
			j := jb*blockEdge + dj
			for di := 0; di < blockEdge; di++ {
				i := ib*blockEdge + di
				if i < nx && j < ny && (dim == 2 || k < nz) {
					vals[i+j*nx+k*nx*ny] = float32(block[idx])
				}
				idx++
			}
		}
	}
}

func clampIdx(i, n int) int {
	if i >= n {
		return n - 1
	}
	return i
}

// encodeBlock converts a block to fixed point under a common exponent,
// decorrelates it, and finds the largest truncation whose verified
// reconstruction error stays within tol. It leaves the truncated
// coefficients in coefs and returns the exponent and drop.
func encodeBlock(block []float64, coefs []int64, recon []float64, dim int, tol float64) (e, drop int) {
	maxAbs := 0.0
	for _, v := range block {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	//lint:allow floatcmp a max of absolute values is exactly zero iff the block is all ±0, the dedicated all-zero encoding
	if maxAbs == 0 {
		for i := range coefs {
			coefs[i] = 0
		}
		return 0, 0
	}
	e = math.Ilogb(maxAbs) + 1 // 2^e > maxAbs ≥ 2^(e-1)
	// Clamp to the signed-byte range of the side channel; float32 data
	// cannot exceed it except via denormals, which any positive tolerance
	// dominates anyway.
	if e < -127 {
		e = -127
	}
	if e > 127 {
		e = 127
	}
	scale := math.Ldexp(1, fixedBits-e)
	raw := make([]int64, len(block))
	for i, v := range block {
		raw[i] = int64(math.Round(v * scale))
	}
	forwardTransform(raw, dim)

	// Binary search the largest drop that still verifies.
	lo, hi := 0, fixedBits+1
	best := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		if blockErr(raw, recon, block, dim, e, mid) <= tol {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	drop = best
	for i, c := range raw {
		coefs[i] = roundShift(c, drop)
	}
	return e, drop
}

// blockErr measures the max reconstruction error for a candidate drop.
func blockErr(raw []int64, recon, orig []float64, dim, e, drop int) float64 {
	tmp := make([]int64, len(raw))
	for i, c := range raw {
		tmp[i] = roundShift(c, drop) << uint(drop)
	}
	reconstructInto(recon, tmp, dim, e)
	maxE := 0.0
	for i := range orig {
		// The decoder stores float32; include that rounding.
		r := float64(float32(recon[i]))
		if d := math.Abs(r - orig[i]); d > maxE {
			maxE = d
		}
	}
	return maxE
}

// roundShift truncates the low bits with rounding toward nearest.
func roundShift(v int64, drop int) int64 {
	if drop == 0 {
		return v
	}
	half := int64(1) << uint(drop-1)
	if v >= 0 {
		return (v + half) >> uint(drop)
	}
	return -((-v + half) >> uint(drop))
}

func reconstructBlock(block []float64, coefs []int64, dim, e int) {
	reconstructInto(block, coefs, dim, e)
}

func reconstructInto(dst []float64, coefs []int64, dim, e int) {
	tmp := make([]int64, len(coefs))
	copy(tmp, coefs)
	inverseTransform(tmp, dim)
	inv := math.Ldexp(1, e-fixedBits)
	for i, q := range tmp {
		dst[i] = float64(q) * inv
	}
}

func zigzag64(v int64) uint32 {
	u := uint64(v<<1) ^ uint64(v>>63)
	if u > math.MaxUint32 {
		// Coefficients are bounded by 2^(fixedBits+d) and cannot reach
		// this; clamp defensively rather than corrupt.
		u = math.MaxUint32
	}
	return uint32(u)
}

func unzigzag64(u uint32) int64 {
	x := uint64(u)
	return int64(x>>1) ^ -int64(x&1)
}
