// Package datagen generates the deterministic synthetic stand-ins for the
// paper's four evaluation datasets (Table III). The real Ocean, CBA,
// Hurricane-ISABEL, and Nek5000 data are not redistributable, so each
// generator reproduces the *structural character* that drives every
// reported metric: smoothness (compressibility), critical point and saddle
// density, and whether separatrices span the domain. The substitutions are
// documented in DESIGN.md §2.
//
// All generators are pure functions of their arguments (seeded PRNG), so
// every experiment is reproducible bit-for-bit.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"tspsz/internal/field"
)

// CBA mimics the heated-cylinder Boussinesq flow (2D, smooth, few critical
// points): a uniform base flow past a cylinder with a staggered von
// Kármán-style vortex street in its wake.
func CBA(nx, ny int) *field.Field {
	f := field.New2D(nx, ny)
	w := float64(nx - 1)
	h := float64(ny - 1)
	cx, cy := 0.22*w, 0.5*h // cylinder center
	rad := 0.06 * h
	type vortex struct {
		x, y, s, strength float64
	}
	var vs []vortex
	// Staggered counter-rotating vortices downstream of the cylinder.
	for i := 0; i < 6; i++ {
		off := 0.12 * h
		if i%2 == 1 {
			off = -off
		}
		vs = append(vs, vortex{
			x:        cx + (0.10+0.14*float64(i))*w,
			y:        cy + off,
			s:        0.08 * h,
			strength: 1.6 * sign(i%2 == 0),
		})
	}
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		x, y := p[0], p[1]
		// Base flow with potential-flow blockage around the cylinder.
		dx, dy := x-cx, y-cy
		r2 := dx*dx + dy*dy + 1e-9
		k := rad * rad / r2
		u := 1 - k*(dx*dx-dy*dy)/r2
		v := -k * 2 * dx * dy / r2
		// Superposed Gaussian vortices (divergence-free each).
		for _, vo := range vs {
			gx, gy := x-vo.x, y-vo.y
			g := vo.strength * math.Exp(-(gx*gx+gy*gy)/(2*vo.s*vo.s))
			u += -g * gy / vo.s
			v += g * gx / vo.s
		}
		f.U[idx] = float32(u)
		f.V[idx] = float32(v)
	}
	return f
}

func sign(pos bool) float64 {
	if pos {
		return 1
	}
	return -1
}

// Ocean mimics simulated ocean currents (2D, turbulent, thousands of
// eddies at full scale): a basin-scale double gyre overlaid with a dense
// deterministic field of random mesoscale eddies, built from a
// streamfunction so the flow is divergence-free.
func Ocean(nx, ny int) *field.Field {
	f := field.New2D(nx, ny)
	w := float64(nx - 1)
	h := float64(ny - 1)
	rng := rand.New(rand.NewSource(20250704))
	// Eddy count scales with area so cp density is resolution independent.
	nEddies := nx * ny / 400
	if nEddies < 12 {
		nEddies = 12
	}
	type eddy struct{ x, y, s, a float64 }
	eddies := make([]eddy, nEddies)
	for i := range eddies {
		a := 2.0 + 3.0*rng.Float64()
		if rng.Intn(2) == 0 {
			a = -a
		}
		eddies[i] = eddy{
			x: rng.Float64() * w,
			y: rng.Float64() * h,
			s: (0.7 + 1.3*rng.Float64()) * math.Sqrt(w*h) / 32,
			a: a,
		}
	}
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		x, y := p[0], p[1]
		// Double gyre streamfunction derivative (analytic).
		u := -math.Pi * math.Sin(math.Pi*x/(w/2)) * math.Cos(math.Pi*y/h) * 0.6
		v := math.Pi * math.Cos(math.Pi*x/(w/2)) * math.Sin(math.Pi*y/h) * 0.6
		for _, e := range eddies {
			gx, gy := x-e.x, y-e.y
			g := e.a * math.Exp(-(gx*gx+gy*gy)/(2*e.s*e.s))
			u += -g * gy / e.s
			v += g * gx / e.s
		}
		f.U[idx] = float32(u)
		f.V[idx] = float32(v)
	}
	return f
}

// Hurricane mimics the Hurricane-ISABEL wind field (3D, smooth, organized):
// a vertically sheared vortex around an eye with low-level inflow,
// high-level outflow, and an eyewall updraft ring.
func Hurricane(nx, ny, nz int) *field.Field {
	f := field.New3D(nx, ny, nz)
	w := float64(nx - 1)
	d := float64(ny - 1)
	hgt := float64(nz - 1)
	cx, cy := 0.5*w+0.13, 0.5*d-0.21 // off-lattice eye
	rEye := 0.08 * math.Min(w, d)
	rMax := 0.35 * math.Min(w, d)
	// Weak environmental turbulence: without it the organized vortex has
	// no joint zeros of (u, v, w). Real hurricane data carries the same
	// kind of weak-flow stagnation points away from the core.
	rng := rand.New(rand.NewSource(1503))
	const nModes = 12
	type mode struct {
		k, a [3]float64
		phi  float64
	}
	modes := make([]mode, nModes)
	for i := range modes {
		// Draw integer wavenumbers so the all-zero mode is rejected in
		// exact integer arithmetic.
		ki := [3]int{rng.Intn(9) - 4, rng.Intn(9) - 4, rng.Intn(5) - 2}
		if ki[0] == 0 && ki[1] == 0 && ki[2] == 0 {
			ki[0] = 1
		}
		var k [3]float64
		k[0] = float64(ki[0]) * 2 * math.Pi / (w + 1)
		k[1] = float64(ki[1]) * 2 * math.Pi / (d + 1)
		k[2] = float64(ki[2]) * 2 * math.Pi / (hgt + 1)
		var a [3]float64
		for dd := 0; dd < 3; dd++ {
			a[dd] = rng.NormFloat64() * 0.4
		}
		kk := k[0]*k[0] + k[1]*k[1] + k[2]*k[2]
		dot := (a[0]*k[0] + a[1]*k[1] + a[2]*k[2]) / kk
		for dd := 0; dd < 3; dd++ {
			a[dd] -= dot * k[dd]
		}
		modes[i] = mode{k: k, a: a, phi: rng.Float64() * 2 * math.Pi}
	}
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		x, y, z := p[0], p[1], p[2]
		zn := z / hgt // 0 bottom, 1 top
		dx, dy := x-cx, y-cy
		r := math.Hypot(dx, dy) + 1e-9
		// Tangential wind: Rankine-like profile, weakening with height.
		var vt float64
		if r < rEye {
			vt = r / rEye
		} else {
			vt = math.Exp(-(r - rEye) / rMax)
		}
		vt *= 2.2 * (1 - 0.6*zn)
		// Radial wind: inflow near the surface, outflow aloft.
		vr := 0.9 * (zn - 0.35) * math.Exp(-r/(1.3*rMax))
		u := -vt*dy/r + vr*dx/r
		v := vt*dx/r + vr*dy/r
		// Eyewall updraft ring plus gentle subsidence in the eye.
		ring := math.Exp(-(r - 1.4*rEye) * (r - 1.4*rEye) / (rEye * rEye))
		wv := 1.1*ring*math.Sin(math.Pi*zn) - 0.25*math.Cos(math.Pi*zn)*math.Exp(-r*r/(rEye*rEye))
		for _, m := range modes {
			s := math.Sin(m.k[0]*x + m.k[1]*y + m.k[2]*z + m.phi)
			u += m.a[0] * s
			v += m.a[1] * s
			wv += m.a[2] * s
		}
		f.U[idx] = float32(u)
		f.V[idx] = float32(v)
		f.W[idx] = float32(wv)
	}
	return f
}

// Nek5000 mimics spectral-element turbulence (3D, hard to compress, dense
// critical points): a superposition of random solenoidal Fourier modes
// (each mode's amplitude vector is orthogonal to its wavevector, so the
// field is divergence-free).
func Nek5000(n int) *field.Field {
	f := field.New3D(n, n, n)
	rng := rand.New(rand.NewSource(5000))
	const nModes = 64
	type mode struct {
		k   [3]float64
		a   [3]float64
		phi float64
	}
	modes := make([]mode, nModes)
	scale := 2 * math.Pi / float64(n-1)
	for i := range modes {
		// Integer wavenumbers: the all-zero mode is rejected exactly.
		var ki [3]int
		for d := 0; d < 3; d++ {
			ki[d] = rng.Intn(13) - 6
		}
		if ki[0] == 0 && ki[1] == 0 && ki[2] == 0 {
			ki[0] = 1
		}
		var k [3]float64
		for d := 0; d < 3; d++ {
			k[d] = float64(ki[d]) * scale
		}
		// Random amplitude orthogonal to k (project out the parallel part).
		var a [3]float64
		for d := 0; d < 3; d++ {
			a[d] = rng.NormFloat64()
		}
		kk := k[0]*k[0] + k[1]*k[1] + k[2]*k[2]
		dot := (a[0]*k[0] + a[1]*k[1] + a[2]*k[2]) / kk
		for d := 0; d < 3; d++ {
			a[d] -= dot * k[d]
		}
		// Energy decays with wavenumber, vaguely Kolmogorov-like.
		amp := 1.0 / math.Pow(math.Sqrt(kk/scale/scale)+0.5, 1.2)
		for d := 0; d < 3; d++ {
			a[d] *= amp
		}
		modes[i] = mode{k: k, a: a, phi: rng.Float64() * 2 * math.Pi}
	}
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		var u, v, w float64
		for _, m := range modes {
			s := math.Sin(m.k[0]*p[0] + m.k[1]*p[1] + m.k[2]*p[2] + m.phi)
			u += m.a[0] * s
			v += m.a[1] * s
			w += m.a[2] * s
		}
		f.U[idx] = float32(u)
		f.V[idx] = float32(v)
		f.W[idx] = float32(w)
	}
	return f
}

// OceanSequence generates nt consecutive time steps of the ocean analogue:
// the gyres and eddies drift slowly, mimicking consecutive snapshots of an
// unsteady simulation. Frame 0 equals Ocean(nx, ny) in structure (same
// seed) but every frame shares the eddy population, so temporal coherence
// is high — the regime where sequence compression pays off.
func OceanSequence(nx, ny, nt int) []*field.Field {
	frames := make([]*field.Field, nt)
	w := float64(nx - 1)
	h := float64(ny - 1)
	rng := rand.New(rand.NewSource(20250704))
	nEddies := nx * ny / 400
	if nEddies < 12 {
		nEddies = 12
	}
	type eddy struct{ x, y, s, a, vx, vy float64 }
	eddies := make([]eddy, nEddies)
	for i := range eddies {
		a := 2.0 + 3.0*rng.Float64()
		if rng.Intn(2) == 0 {
			a = -a
		}
		eddies[i] = eddy{
			x: rng.Float64() * w,
			y: rng.Float64() * h,
			s: (0.7 + 1.3*rng.Float64()) * math.Sqrt(w*h) / 32,
			a: a,
			// Slow drift, a fraction of an eddy radius per frame.
			vx: (rng.Float64() - 0.5) * 0.4,
			vy: (rng.Float64() - 0.5) * 0.4,
		}
	}
	for t := 0; t < nt; t++ {
		f := field.New2D(nx, ny)
		ft := float64(t)
		for idx := 0; idx < f.NumVertices(); idx++ {
			p := f.Grid.VertexPosition(idx)
			x, y := p[0], p[1]
			u := -math.Pi * math.Sin(math.Pi*x/(w/2)) * math.Cos(math.Pi*y/h) * 0.6
			v := math.Pi * math.Cos(math.Pi*x/(w/2)) * math.Sin(math.Pi*y/h) * 0.6
			for _, e := range eddies {
				gx := x - (e.x + e.vx*ft)
				gy := y - (e.y + e.vy*ft)
				g := e.a * math.Exp(-(gx*gx+gy*gy)/(2*e.s*e.s))
				u += -g * gy / e.s
				v += g * gx / e.s
			}
			f.U[idx] = float32(u)
			f.V[idx] = float32(v)
		}
		frames[t] = f
	}
	return frames
}

// Names lists the generator names ByName accepts, in the paper's order.
func Names() []string { return []string{"cba", "ocean", "hurricane", "nek5000"} }

// ByName builds a dataset by its paper name at the given fraction of the
// paper's full resolution (scale 1 reproduces Table III's grid sizes;
// the experiment harness defaults to smaller scales so the suite runs on a
// laptop — see EXPERIMENTS.md).
func ByName(name string, scale float64) (*field.Field, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("datagen: scale must be in (0, 1], got %v", scale)
	}
	dim := func(full int) int {
		d := int(math.Round(float64(full) * scale))
		if d < 8 {
			d = 8
		}
		return d
	}
	switch name {
	case "cba":
		return CBA(dim(450), dim(150)), nil
	case "ocean":
		return Ocean(dim(3600), dim(2400)), nil
	case "hurricane":
		return Hurricane(dim(500), dim(500), dim(100)), nil
	case "nek5000":
		return Nek5000(dim(512)), nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q (want one of %v)", name, Names())
	}
}
