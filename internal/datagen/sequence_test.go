package datagen

import (
	"testing"

	"tspsz/internal/critical"
)

func TestOceanSequenceShapeAndDrift(t *testing.T) {
	frames := OceanSequence(60, 40, 4)
	if len(frames) != 4 {
		t.Fatalf("%d frames, want 4", len(frames))
	}
	for i, f := range frames {
		if f.NumVertices() != 60*40 {
			t.Fatalf("frame %d: %d vertices", i, f.NumVertices())
		}
		finite(t, f, "ocean-seq")
	}
	// Consecutive frames must differ (drift) but only mildly (coherence).
	var diff, mag float64
	for i := range frames[0].U {
		d := float64(frames[1].U[i] - frames[0].U[i])
		diff += d * d
		m := float64(frames[0].U[i])
		mag += m * m
	}
	if diff == 0 {
		t.Fatal("frames identical; no drift")
	}
	if diff > mag {
		t.Fatalf("frames differ too much for temporal coherence: %v vs %v", diff, mag)
	}
	// Topology persists across frames.
	for i, f := range frames {
		if cps := critical.Extract(f); len(cps) < 10 {
			t.Fatalf("frame %d: only %d critical points", i, len(cps))
		}
	}
}

func TestOceanSequenceDeterministic(t *testing.T) {
	a := OceanSequence(30, 20, 2)
	b := OceanSequence(30, 20, 2)
	for fi := range a {
		for i := range a[fi].U {
			if a[fi].U[i] != b[fi].U[i] {
				t.Fatal("sequence generator not deterministic")
			}
		}
	}
}
