package datagen

import (
	"math"
	"testing"

	"tspsz/internal/critical"
	"tspsz/internal/field"
)

func finite(t *testing.T, f *field.Field, name string) {
	t.Helper()
	for c, comp := range f.Components() {
		for i, v := range comp {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: component %d vertex %d is %v", name, c, i, v)
			}
		}
	}
}

func TestGeneratorsProduceTopology(t *testing.T) {
	cases := []struct {
		name       string
		f          *field.Field
		minCPs     int
		minSaddles int
	}{
		{"cba", CBA(150, 50), 2, 1},
		{"ocean", Ocean(120, 80), 10, 3},
		{"hurricane", Hurricane(40, 40, 12), 5, 1},
		{"nek5000", Nek5000(24), 10, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			finite(t, tc.f, tc.name)
			cps := critical.Extract(tc.f)
			if len(cps) < tc.minCPs {
				t.Errorf("%s: %d critical points, want >= %d", tc.name, len(cps), tc.minCPs)
			}
			if s := critical.CountSaddles(cps); s < tc.minSaddles {
				t.Errorf("%s: %d saddles, want >= %d", tc.name, s, tc.minSaddles)
			}
		})
	}
}

func TestDeterministic(t *testing.T) {
	a := Ocean(60, 40)
	b := Ocean(60, 40)
	for i := range a.U {
		if a.U[i] != b.U[i] || a.V[i] != b.V[i] {
			t.Fatal("Ocean generator not deterministic")
		}
	}
	c := Nek5000(12)
	d := Nek5000(12)
	for i := range c.U {
		if c.U[i] != d.U[i] || c.W[i] != d.W[i] {
			t.Fatal("Nek5000 generator not deterministic")
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		f, err := ByName(name, 0.05)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if f.NumVertices() == 0 {
			t.Fatalf("ByName(%q): empty field", name)
		}
	}
	if _, err := ByName("nope", 0.5); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := ByName("cba", 0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := ByName("cba", 1.5); err == nil {
		t.Error("scale > 1 accepted")
	}
}

func TestByNameFullScaleDims(t *testing.T) {
	f, err := ByName("cba", 1)
	if err != nil {
		t.Fatal(err)
	}
	nx, ny, _ := f.Grid.Dims()
	if nx != 450 || ny != 150 {
		t.Errorf("cba full scale = %dx%d, want 450x150 (Table III)", nx, ny)
	}
}

// Ocean and Nek5000 stand in for the turbulent datasets: they must have a
// markedly higher saddle density than the smooth CBA/Hurricane analogues.
func TestTurbulentDatasetsDenserTopology(t *testing.T) {
	smooth := CBA(150, 50)
	turb := Ocean(150, 50)
	ds := float64(len(critical.Extract(smooth))) / float64(smooth.NumVertices())
	dt := float64(len(critical.Extract(turb))) / float64(turb.NumVertices())
	if dt <= ds {
		t.Errorf("ocean cp density %v not above cba %v", dt, ds)
	}
}
