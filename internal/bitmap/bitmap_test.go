package bitmap

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		b.Clear(i)
		if b.Get(i) {
			t.Fatalf("bit %d still set after Clear", i)
		}
	}
}

func TestCount(t *testing.T) {
	b := New(200)
	want := 0
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		if rng.Intn(3) == 0 {
			if !b.Get(i) {
				want++
			}
			b.Set(i)
		}
	}
	if got := b.Count(); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
}

func TestOr(t *testing.T) {
	a, b := New(100), New(100)
	a.Set(3)
	b.Set(70)
	b.Set(3)
	a.Or(b)
	if !a.Get(3) || !a.Get(70) {
		t.Error("Or missing bits")
	}
	if a.Count() != 2 {
		t.Errorf("Count after Or = %d, want 2", a.Count())
	}
}

func TestOrLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	New(10).Or(New(11))
}

func TestCloneIndependent(t *testing.T) {
	a := New(64)
	a.Set(5)
	c := a.Clone()
	c.Set(6)
	if a.Get(6) {
		t.Error("clone shares storage")
	}
	if !c.Get(5) {
		t.Error("clone lost bit")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		b := New(n)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		data, err := b.MarshalBinary()
		if err != nil {
			return false
		}
		var r Bitmap
		if err := r.UnmarshalBinary(data); err != nil {
			return false
		}
		if r.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if r.Get(i) != b.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsBadSizes(t *testing.T) {
	var b Bitmap
	if err := b.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Error("expected error for truncated header")
	}
	good, _ := New(70).MarshalBinary()
	if err := b.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Error("expected error for truncated payload")
	}
}

func TestUnmarshalRejectsNegativeBitCount(t *testing.T) {
	// A length with the top bit set wraps to a negative int; (n+63)/64 is
	// then 0, so an 8-byte payload used to pass the size check and leave
	// the bitmap with a negative length.
	var b Bitmap
	data := make([]byte, 8)
	binary.LittleEndian.PutUint64(data, ^uint64(0)) // n = -1 as int64
	if err := b.UnmarshalBinary(data); err == nil {
		t.Error("expected error for negative bit count")
	}
}
