// Package bitmap implements the dense bitset used by TspSZ to mark vertices
// that must be encoded losslessly (Algorithms 2 and 3 in the paper).
package bitmap

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Bitmap is a fixed-length dense bitset.
type Bitmap struct {
	n     int
	words []uint64
}

// New returns an all-zero bitmap of n bits.
func New(n int) *Bitmap {
	if n < 0 {
		panic(fmt.Sprintf("bitmap: negative length %d", n))
	}
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len reports the number of bits.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i to 1.
func (b *Bitmap) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear sets bit i to 0.
func (b *Bitmap) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Or merges other into b (bitwise union). Both bitmaps must have the same
// length.
func (b *Bitmap) Or(other *Bitmap) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitmap: length mismatch %d vs %d", b.n, other.n))
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{n: b.n, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// MarshalBinary serializes the bitmap: uint64 length followed by the words
// in little-endian order.
func (b *Bitmap) MarshalBinary() ([]byte, error) {
	out := make([]byte, 8+8*len(b.words))
	binary.LittleEndian.PutUint64(out, uint64(b.n))
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(out[8+8*i:], w)
	}
	return out, nil
}

// UnmarshalBinary restores a bitmap serialized by MarshalBinary.
func (b *Bitmap) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("bitmap: truncated header (%d bytes)", len(data))
	}
	n := int(binary.LittleEndian.Uint64(data))
	if n < 0 {
		// A bit count with the top bit set wraps negative on 64-bit int;
		// (n+63)/64 would then be ≤ 0 and a crafted 8-byte payload could
		// pass the size check below with a nonsense n.
		return fmt.Errorf("bitmap: invalid bit count %d", n)
	}
	nw := (n + 63) / 64
	if len(data) != 8+8*nw {
		return fmt.Errorf("bitmap: payload size %d does not match %d bits", len(data)-8, n)
	}
	b.n = n
	b.words = make([]uint64, nw)
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(data[8+8*i:])
	}
	return nil
}
