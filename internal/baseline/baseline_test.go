package baseline

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"tspsz/internal/datagen"
)

func TestGzipRoundTrip(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog, twice: the quick brown fox")
	packed, err := Gzip(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Gunzip(packed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("gzip round trip mismatch")
	}
}

func TestLZRoundTripQuick(t *testing.T) {
	f := func(seed int64, nRaw uint16, repRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 4096)
		rep := int(repRaw%16) + 1
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Intn(rep * 8)) // tunable redundancy
		}
		got, err := UnLZ(LZ(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestLZRoundTripEdges(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},
		{1, 2, 3},
		bytes.Repeat([]byte{7}, 10000),
		bytes.Repeat([]byte("abcd"), 2500),
		[]byte("abc"),
	}
	for i, data := range cases {
		got, err := UnLZ(LZ(data))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("case %d: round trip mismatch", i)
		}
	}
}

func TestLZCompressesRedundancy(t *testing.T) {
	data := bytes.Repeat([]byte("scientific data compression "), 1000)
	packed := LZ(data)
	if len(packed) > len(data)/10 {
		t.Errorf("highly redundant input: %d -> %d bytes", len(data), len(packed))
	}
}

func TestLZRejectsCorruption(t *testing.T) {
	if _, err := UnLZ([]byte("NOPE")); err == nil {
		t.Error("bad magic accepted")
	}
	packed := LZ(bytes.Repeat([]byte("hello world "), 100))
	if _, err := UnLZ(packed[:len(packed)/2]); err == nil {
		t.Error("truncated stream accepted")
	}
}

// The paper's motivation: lossless baselines land well under 2× on float
// scientific data.
func TestLosslessRatiosOnScientificData(t *testing.T) {
	f := datagen.Ocean(120, 80)
	raw := FieldBytes(f)
	gz, err := Gzip(raw)
	if err != nil {
		t.Fatal(err)
	}
	lz := LZ(raw)
	for name, packed := range map[string][]byte{"gzip": gz, "lz": lz} {
		cr := float64(len(raw)) / float64(len(packed))
		if cr < 0.9 || cr > 3 {
			t.Errorf("%s ratio %.2f outside the plausible lossless band", name, cr)
		}
	}
	// And the LZ stream must still round trip on real-looking data.
	got, err := UnLZ(lz)
	if err != nil || !bytes.Equal(got, raw) {
		t.Fatal("LZ round trip failed on field data")
	}
}

func TestFieldBytesRoundTrip(t *testing.T) {
	f := datagen.Hurricane(12, 10, 8)
	raw := FieldBytes(f)
	if len(raw) != f.SizeBytes() {
		t.Fatalf("FieldBytes length %d, want %d", len(raw), f.SizeBytes())
	}
	g, err := FieldFromBytes(raw, 3, 12, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	for c, comp := range f.Components() {
		for i := range comp {
			if g.Components()[c][i] != comp[i] {
				t.Fatalf("component %d vertex %d mismatch", c, i)
			}
		}
	}
	if _, err := FieldFromBytes(raw[:10], 3, 12, 10, 8); err == nil {
		t.Error("short payload accepted")
	}
}

func BenchmarkLZCompressField(b *testing.B) {
	raw := FieldBytes(datagen.Ocean(240, 160))
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LZ(raw)
	}
}
