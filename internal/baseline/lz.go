package baseline

import (
	"encoding/binary"
	"errors"
	"fmt"

	"tspsz/internal/huffman"
)

// ZSTD-style LZ77 + entropy coding. The format mirrors zstd's sequence
// model in miniature: a token stream of (literal-run length, match length,
// match distance) triples plus a literal byte pool, each entropy coded with
// the canonical Huffman backend. It is not wire compatible with zstd — it
// is a stand-in with the same algorithmic family and a comparable ~1.1-1.6×
// ratio on float32 scientific data (see DESIGN.md §2).

const (
	lzMagic     = "ZSTL"
	lzMinMatch  = 4
	lzWindow    = 1 << 16
	lzHashBits  = 17
	lzMaxMatch  = 1 << 16
	lzTableSize = 1 << lzHashBits
)

func lzHash(data []byte, pos int) uint32 {
	v := binary.LittleEndian.Uint32(data[pos:])
	return (v * 2654435761) >> (32 - lzHashBits)
}

// LZ compresses data with the greedy single-candidate LZ77 matcher and
// Huffman-codes the resulting streams.
func LZ(data []byte) []byte {
	var litLens, matchLens, dists []uint32
	var literals []byte
	head := make([]int32, lzTableSize)
	for i := range head {
		head[i] = -1
	}
	pos, litStart := 0, 0
	emit := func(matchLen, dist int) {
		litLens = append(litLens, uint32(pos-litStart))
		literals = append(literals, data[litStart:pos]...)
		matchLens = append(matchLens, uint32(matchLen))
		dists = append(dists, uint32(dist))
	}
	for pos+lzMinMatch <= len(data) {
		h := lzHash(data, pos)
		//lint:allow indexguard lzHash shifts down to lzHashBits bits, so h < lzTableSize == len(head) by construction
		cand := int(head[h])
		//lint:allow indexguard same structural bound: lzHash output is lzHashBits wide
		head[h] = int32(pos)
		if cand >= 0 && pos-cand < lzWindow &&
			binary.LittleEndian.Uint32(data[cand:]) == binary.LittleEndian.Uint32(data[pos:]) {
			l := lzMinMatch
			for pos+l < len(data) && l < lzMaxMatch && data[cand+l] == data[pos+l] {
				l++
			}
			emit(l, pos-cand)
			// Insert a few hash entries inside the match for future hits.
			end := pos + l
			for p := pos + 1; p < end-lzMinMatch && p < pos+16; p++ {
				//lint:allow indexguard lzHash output is lzHashBits wide, within len(head)
				head[lzHash(data, p)] = int32(p)
			}
			pos = end
			litStart = pos
			continue
		}
		pos++
	}
	// Trailing literal run with a zero-length match sentinel.
	pos = len(data)
	litLens = append(litLens, uint32(pos-litStart))
	literals = append(literals, data[litStart:pos]...)
	matchLens = append(matchLens, 0)
	dists = append(dists, 0)

	litSyms := make([]uint32, len(literals))
	for i, b := range literals {
		litSyms[i] = uint32(b)
	}
	var out []byte
	out = append(out, lzMagic...)
	out = binary.AppendUvarint(out, uint64(len(data)))
	for _, section := range [][]uint32{litLens, matchLens, dists, litSyms} {
		// The sections are generated locally just above, so an encode
		// failure is an internal invariant violation, not an input error.
		enc, err := huffman.Encode(section)
		if err != nil {
			panic(err)
		}
		out = binary.AppendUvarint(out, uint64(len(enc)))
		out = append(out, enc...)
	}
	return out
}

// UnLZ decompresses an LZ stream.
func UnLZ(data []byte) ([]byte, error) {
	if len(data) < 4 || string(data[:4]) != lzMagic {
		return nil, errors.New("baseline: bad LZ magic")
	}
	data = data[4:]
	rawLen, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, errors.New("baseline: truncated LZ header")
	}
	data = data[n:]
	sections := make([][]uint32, 4)
	for i := range sections {
		sz, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < sz {
			return nil, fmt.Errorf("baseline: truncated LZ section %d", i)
		}
		data = data[n:]
		dec, err := huffman.Decode(data[:sz])
		if err != nil {
			return nil, fmt.Errorf("baseline: LZ section %d: %w", i, err)
		}
		sections[i] = dec
		data = data[sz:]
	}
	litLens, matchLens, dists, litSyms := sections[0], sections[1], sections[2], sections[3]
	if len(litLens) != len(matchLens) || len(litLens) != len(dists) {
		return nil, errors.New("baseline: inconsistent LZ token streams")
	}
	// Validate the claimed output size against the token streams before
	// allocating anything proportional to it (decompression-bomb guard).
	var total uint64
	for i := range litLens {
		total += uint64(litLens[i]) + uint64(matchLens[i])
	}
	if total != rawLen {
		return nil, fmt.Errorf("baseline: token streams produce %d bytes, header claims %d", total, rawLen)
	}
	out := make([]byte, 0, rawLen)
	litPos := 0
	for t := range litLens {
		ll := int(litLens[t])
		if litPos+ll > len(litSyms) {
			return nil, errors.New("baseline: literal overrun")
		}
		for i := 0; i < ll; i++ {
			out = append(out, byte(litSyms[litPos+i]))
		}
		litPos += ll
		ml, d := int(matchLens[t]), int(dists[t])
		if ml == 0 {
			continue
		}
		if d <= 0 || d > len(out) {
			return nil, errors.New("baseline: invalid match distance")
		}
		for i := 0; i < ml; i++ {
			out = append(out, out[len(out)-d])
		}
	}
	if uint64(len(out)) != rawLen {
		return nil, fmt.Errorf("baseline: decoded %d bytes, want %d", len(out), rawLen)
	}
	return out, nil
}
