// Package baseline provides the lossless comparators of §VIII: GZIP (via
// the standard library's DEFLATE, the algorithm gzip wraps) and a
// from-scratch ZSTD-style LZ77+Huffman compressor standing in for zstd
// (documented substitution, DESIGN.md §2). It also exposes the raw byte
// layout baselines compress.
package baseline

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"io"
	"math"

	"tspsz/internal/field"
)

// FieldBytes serializes a field's payload exactly as the paper's baselines
// see it: each component as consecutive little-endian float32 values.
func FieldBytes(f *field.Field) []byte {
	out := make([]byte, 0, f.SizeBytes())
	for _, comp := range f.Components() {
		for _, v := range comp {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
		}
	}
	return out
}

// FieldFromBytes rebuilds a field of the given shape from FieldBytes output.
func FieldFromBytes(data []byte, dim, nx, ny, nz int) (*field.Field, error) {
	var f *field.Field
	if dim == 2 {
		f = field.New2D(nx, ny)
	} else {
		f = field.New3D(nx, ny, nz)
	}
	if len(data) != f.SizeBytes() {
		return nil, io.ErrUnexpectedEOF
	}
	for _, comp := range f.Components() {
		for i := range comp {
			comp[i] = math.Float32frombits(binary.LittleEndian.Uint32(data))
			data = data[4:]
		}
	}
	return f, nil
}

// Gzip compresses data with the standard gzip container at the default
// level, the paper's GZIP baseline.
func Gzip(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	w := gzip.NewWriter(&buf)
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Gunzip decompresses a Gzip stream. gzip wraps DEFLATE, whose worst-case
// expansion is ~1032:1, so the read is capped at that ratio: a hostile
// stream cannot allocate without bound, and no valid stream is affected.
func Gunzip(data []byte) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	capacity := 1032*uint64(len(data)) + 64
	out, err := io.ReadAll(io.LimitReader(r, int64(capacity)+1))
	if err != nil {
		return nil, err
	}
	if uint64(len(out)) > capacity {
		return nil, errors.New("baseline: gzip stream inflates beyond plausible ratio")
	}
	return out, nil
}
