package mat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDet2(t *testing.T) {
	if got := Det2(1, 2, 3, 4); got != -2 {
		t.Errorf("Det2 = %v, want -2", got)
	}
}

func TestDet3(t *testing.T) {
	if got := Det3([9]float64{1, 0, 0, 0, 1, 0, 0, 0, 1}); got != 1 {
		t.Errorf("Det3(I) = %v, want 1", got)
	}
	if got := Det3([9]float64{2, 1, 0, 1, 3, 1, 0, 1, 2}); math.Abs(got-8) > 1e-12 {
		t.Errorf("Det3 = %v, want 8", got)
	}
}

func TestSolve2(t *testing.T) {
	x, y, ok := Solve2(2, 1, 1, 3, 5, 10)
	if !ok {
		t.Fatal("Solve2 reported singular")
	}
	if math.Abs(2*x+y-5) > 1e-12 || math.Abs(x+3*y-10) > 1e-12 {
		t.Errorf("Solve2 residual too large: x=%v y=%v", x, y)
	}
	if _, _, ok := Solve2(1, 2, 2, 4, 1, 1); ok {
		t.Error("Solve2 should report singular for rank-1 matrix")
	}
}

func TestSolve3RandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var m [9]float64
		for i := range m {
			m[i] = rng.NormFloat64()
		}
		if math.Abs(Det3(m)) < 1e-3 {
			continue
		}
		want := [3]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		var b [3]float64
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				b[r] += m[r*3+c] * want[c]
			}
		}
		got, ok := Solve3(m, b)
		if !ok {
			t.Fatalf("Solve3 singular on det=%v", Det3(m))
		}
		for i := 0; i < 3; i++ {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("Solve3 trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

func TestEigen2Known(t *testing.T) {
	// [[3,0],[0,-2]] has eigenvalues 3 and -2.
	ev := Eigen2(3, 0, 0, -2)
	got := []float64{ev[0].Re, ev[1].Re}
	sort.Float64s(got)
	if math.Abs(got[0]+2) > 1e-12 || math.Abs(got[1]-3) > 1e-12 {
		t.Errorf("eigenvalues %v, want [-2 3]", got)
	}
	// Rotation-like [[0,-1],[1,0]] has ±i.
	ev = Eigen2(0, -1, 1, 0)
	if ev[0].Im == 0 || math.Abs(ev[0].Re) > 1e-12 || math.Abs(math.Abs(ev[0].Im)-1) > 1e-12 {
		t.Errorf("rotation eigenvalues %v, want ±i", ev)
	}
}

// Eigenvalues must satisfy trace and determinant identities.
func TestEigen2Invariants(t *testing.T) {
	f := func(a, b, c, d int8) bool {
		af, bf, cf, df := float64(a), float64(b), float64(c), float64(d)
		ev := Eigen2(af, bf, cf, df)
		sumRe := ev[0].Re + ev[1].Re
		sumIm := ev[0].Im + ev[1].Im
		// product of (possibly complex) eigenvalues
		prodRe := ev[0].Re*ev[1].Re - ev[0].Im*ev[1].Im
		return math.Abs(sumRe-(af+df)) < 1e-9 &&
			math.Abs(sumIm) < 1e-9 &&
			math.Abs(prodRe-Det2(af, bf, cf, df)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestEigenVector2(t *testing.T) {
	// [[2,1],[0,3]]: eigenvector for λ=2 is (1,0); for λ=3 is (1,1)/√2.
	v, ok := EigenVector2(2, 1, 0, 3, 2)
	if !ok {
		t.Fatal("no eigenvector for λ=2")
	}
	checkEigvec2(t, 2, 1, 0, 3, 2, v)
	v, ok = EigenVector2(2, 1, 0, 3, 3)
	if !ok {
		t.Fatal("no eigenvector for λ=3")
	}
	checkEigvec2(t, 2, 1, 0, 3, 3, v)
}

func checkEigvec2(t *testing.T, a, b, c, d, lambda float64, v [2]float64) {
	t.Helper()
	rx := a*v[0] + b*v[1] - lambda*v[0]
	ry := c*v[0] + d*v[1] - lambda*v[1]
	if math.Abs(rx) > 1e-9 || math.Abs(ry) > 1e-9 {
		t.Errorf("A v != λ v for λ=%v: residual (%v,%v)", lambda, rx, ry)
	}
	if math.Abs(math.Hypot(v[0], v[1])-1) > 1e-9 {
		t.Errorf("eigenvector not unit: %v", v)
	}
}

func TestEigenVector2Identity(t *testing.T) {
	if _, ok := EigenVector2(1, 0, 0, 1, 1); ok {
		t.Error("identity matrix should report ok=false (any direction works)")
	}
}

func TestEigen3Diagonal(t *testing.T) {
	ev := Eigen3([9]float64{5, 0, 0, 0, -1, 0, 0, 0, 2})
	got := []float64{ev[0].Re, ev[1].Re, ev[2].Re}
	sort.Float64s(got)
	want := []float64{-1, 2, 5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("eigenvalues %v, want %v", got, want)
		}
		if ev[i].Im != 0 {
			t.Fatalf("diagonal matrix should have real eigenvalues, got %v", ev)
		}
	}
}

func TestEigen3ComplexPair(t *testing.T) {
	// Block diag(rotation, 2): eigenvalues ±i and 2.
	m := [9]float64{0, -1, 0, 1, 0, 0, 0, 0, 2}
	ev := Eigen3(m)
	nComplex := 0
	var realEv float64
	for _, e := range ev {
		if e.Im != 0 {
			nComplex++
			if math.Abs(e.Re) > 1e-9 || math.Abs(math.Abs(e.Im)-1) > 1e-9 {
				t.Fatalf("complex eigenvalue %v, want ±i", e)
			}
		} else {
			realEv = e.Re
		}
	}
	if nComplex != 2 || math.Abs(realEv-2) > 1e-9 {
		t.Fatalf("eigenvalues %v, want {2, ±i}", ev)
	}
}

// Trace and determinant identities for random 3×3 matrices.
func TestEigen3Invariants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		var m [9]float64
		for i := range m {
			m[i] = rng.NormFloat64() * 3
		}
		ev := Eigen3(m)
		sumRe := ev[0].Re + ev[1].Re + ev[2].Re
		sumIm := ev[0].Im + ev[1].Im + ev[2].Im
		tr := m[0] + m[4] + m[8]
		scale := 1 + math.Abs(tr)
		if math.Abs(sumRe-tr) > 1e-6*scale || math.Abs(sumIm) > 1e-6*scale {
			t.Fatalf("trial %d: eigen sum %v+%vi, trace %v (m=%v)", trial, sumRe, sumIm, tr, m)
		}
		// Product of eigenvalues = det. Compute complex product.
		pr, pi := 1.0, 0.0
		for _, e := range ev {
			pr, pi = pr*e.Re-pi*e.Im, pr*e.Im+pi*e.Re
		}
		det := Det3(m)
		dscale := 1 + math.Abs(det)
		if math.Abs(pr-det) > 1e-5*dscale || math.Abs(pi) > 1e-5*dscale {
			t.Fatalf("trial %d: eigen product %v+%vi, det %v", trial, pr, pi, det)
		}
	}
}

func TestEigenVector3(t *testing.T) {
	m := [9]float64{2, 1, 0, 0, 3, 1, 0, 0, -1}
	for _, lambda := range []float64{2, 3, -1} {
		v, ok := EigenVector3(m, lambda)
		if !ok {
			t.Fatalf("no eigenvector for λ=%v", lambda)
		}
		var r [3]float64
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				r[i] += m[i*3+j] * v[j]
			}
			r[i] -= lambda * v[i]
		}
		if math.Abs(r[0]) > 1e-8 || math.Abs(r[1]) > 1e-8 || math.Abs(r[2]) > 1e-8 {
			t.Errorf("λ=%v: residual %v for v=%v", lambda, r, v)
		}
	}
}

func TestSolveCubicTripleRoot(t *testing.T) {
	// (x-2)³ = x³ - 6x² + 12x - 8
	ev := solveCubic(1, -6, 12, -8)
	for _, e := range ev {
		if math.Abs(e.Re-2) > 1e-6 || e.Im != 0 {
			t.Fatalf("triple root: got %v, want 2,2,2", ev)
		}
	}
}
