// Package mat provides the small dense linear algebra primitives TspSZ
// needs: 2×2 and 3×3 determinants and solves, eigenvalue decomposition of
// 2×2 and 3×3 matrices (for Jacobian-based critical point classification),
// and eigenvectors for real eigenvalues (for separatrix seeding).
package mat

import "math"

// Det2 returns the determinant of [[a, b], [c, d]].
func Det2(a, b, c, d float64) float64 { return a*d - b*c }

// Det3 returns the determinant of the 3×3 matrix given in row-major order.
func Det3(m [9]float64) float64 {
	return m[0]*(m[4]*m[8]-m[5]*m[7]) -
		m[1]*(m[3]*m[8]-m[5]*m[6]) +
		m[2]*(m[3]*m[7]-m[4]*m[6])
}

// Solve2 solves the 2×2 system [[a,b],[c,d]] x = (e,f) by Cramer's rule.
// ok is false when the matrix is singular (determinant below 1e-300).
func Solve2(a, b, c, d, e, f float64) (x, y float64, ok bool) {
	det := Det2(a, b, c, d)
	if math.Abs(det) < 1e-300 {
		return 0, 0, false
	}
	return (e*d - b*f) / det, (a*f - e*c) / det, true
}

// Solve3 solves the 3×3 system m x = b by Cramer's rule; m is row-major.
func Solve3(m [9]float64, b [3]float64) (x [3]float64, ok bool) {
	det := Det3(m)
	if math.Abs(det) < 1e-300 {
		return x, false
	}
	for col := 0; col < 3; col++ {
		t := m
		for row := 0; row < 3; row++ {
			t[row*3+col] = b[row]
		}
		x[col] = Det3(t) / det
	}
	return x, true
}

// Eigen holds one eigenvalue of a real matrix: Re ± i·Im. Complex
// eigenvalues come in conjugate pairs and carry Im > 0 on one entry.
type Eigen struct {
	Re, Im float64
}

// Eigen2 returns the two eigenvalues of [[a,b],[c,d]].
func Eigen2(a, b, c, d float64) [2]Eigen {
	tr := a + d
	det := Det2(a, b, c, d)
	disc := tr*tr/4 - det
	if disc >= 0 {
		s := math.Sqrt(disc)
		return [2]Eigen{{Re: tr/2 + s}, {Re: tr/2 - s}}
	}
	s := math.Sqrt(-disc)
	return [2]Eigen{{Re: tr / 2, Im: s}, {Re: tr / 2, Im: -s}}
}

// EigenVector2 returns a unit eigenvector of [[a,b],[c,d]] for the real
// eigenvalue lambda. ok is false if the matrix is (numerically) a multiple
// of the identity, in which case any direction is an eigenvector.
func EigenVector2(a, b, c, d, lambda float64) (v [2]float64, ok bool) {
	// (A - λI) v = 0. Pick the row with the larger norm for stability.
	r1 := [2]float64{a - lambda, b}
	r2 := [2]float64{c, d - lambda}
	n1 := r1[0]*r1[0] + r1[1]*r1[1]
	n2 := r2[0]*r2[0] + r2[1]*r2[1]
	r := r1
	if n2 > n1 {
		r = r2
	}
	nr := math.Hypot(r[0], r[1])
	if nr < 1e-14 {
		return [2]float64{1, 0}, false
	}
	// v orthogonal to the chosen row.
	v = [2]float64{-r[1] / nr, r[0] / nr}
	return v, true
}

// Eigen3 returns the three eigenvalues of the row-major 3×3 matrix m,
// computed from the characteristic cubic with Cardano's method. A real
// matrix has either three real eigenvalues or one real plus a conjugate
// complex pair.
func Eigen3(m [9]float64) [3]Eigen {
	// Characteristic polynomial: λ³ - tr·λ² + c1·λ - det = 0.
	tr := m[0] + m[4] + m[8]
	c1 := Det2(m[4], m[5], m[7], m[8]) + Det2(m[0], m[1], m[3], m[4]) + Det2(m[0], m[2], m[6], m[8])
	det := Det3(m)
	return solveCubic(1, -tr, c1, -det)
}

// solveCubic returns the roots of a·x³ + b·x² + c·x + d with a != 0.
func solveCubic(a, b, c, d float64) [3]Eigen {
	b, c, d = b/a, c/a, d/a
	// Depressed cubic t³ + p t + q with x = t - b/3.
	p := c - b*b/3
	q := 2*b*b*b/27 - b*c/3 + d
	shift := -b / 3
	disc := q*q/4 + p*p*p/27
	switch {
	case disc > 1e-14*(1+q*q+p*p): // one real root, complex pair
		s := math.Sqrt(disc)
		u := math.Cbrt(-q/2 + s)
		v := math.Cbrt(-q/2 - s)
		realRoot := u + v + shift
		re := -(u+v)/2 + shift
		im := math.Sqrt(3) / 2 * math.Abs(u-v)
		return [3]Eigen{{Re: realRoot}, {Re: re, Im: im}, {Re: re, Im: -im}}
	case disc < -1e-14*(1+q*q+p*p): // three distinct real roots
		r := math.Sqrt(-p * p * p / 27)
		phi := math.Acos(clamp(-q/(2*r), -1, 1))
		t := 2 * math.Cbrt(r)
		return [3]Eigen{
			{Re: t*math.Cos(phi/3) + shift},
			{Re: t*math.Cos((phi+2*math.Pi)/3) + shift},
			{Re: t*math.Cos((phi+4*math.Pi)/3) + shift},
		}
	default: // repeated real roots
		if math.Abs(q) < 1e-300 && math.Abs(p) < 1e-300 {
			return [3]Eigen{{Re: shift}, {Re: shift}, {Re: shift}}
		}
		u := math.Cbrt(-q / 2)
		return [3]Eigen{{Re: 2*u + shift}, {Re: -u + shift}, {Re: -u + shift}}
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// EigenVector3 returns a unit eigenvector of the row-major 3×3 matrix m for
// the real eigenvalue lambda, computed as the largest cross product of two
// rows of (m - λI). ok is false when no stable direction exists (defective
// or near-identity cases).
func EigenVector3(m [9]float64, lambda float64) (v [3]float64, ok bool) {
	a := m
	a[0] -= lambda
	a[4] -= lambda
	a[8] -= lambda
	rows := [3][3]float64{
		{a[0], a[1], a[2]},
		{a[3], a[4], a[5]},
		{a[6], a[7], a[8]},
	}
	best := [3]float64{}
	bestN := 0.0
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			c := cross(rows[i], rows[j])
			n := c[0]*c[0] + c[1]*c[1] + c[2]*c[2]
			if n > bestN {
				bestN = n
				best = c
			}
		}
	}
	if bestN < 1e-24 {
		return [3]float64{1, 0, 0}, false
	}
	n := math.Sqrt(bestN)
	return [3]float64{best[0] / n, best[1] / n, best[2] / n}, true
}

func cross(a, b [3]float64) [3]float64 {
	return [3]float64{
		a[1]*b[2] - a[2]*b[1],
		a[2]*b[0] - a[0]*b[2],
		a[0]*b[1] - a[1]*b[0],
	}
}
