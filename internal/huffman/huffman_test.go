package huffman

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, symbols []uint32) {
	t.Helper()
	data, err := Encode(symbols)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(symbols) {
		t.Fatalf("decoded %d symbols, want %d", len(got), len(symbols))
	}
	for i := range symbols {
		if got[i] != symbols[i] {
			t.Fatalf("symbol %d: got %d, want %d", i, got[i], symbols[i])
		}
	}
}

func TestEmpty(t *testing.T)        { roundTrip(t, nil) }
func TestSingleSymbol(t *testing.T) { roundTrip(t, []uint32{7}) }
func TestAllSame(t *testing.T)      { roundTrip(t, []uint32{3, 3, 3, 3, 3, 3}) }
func TestTwoSymbols(t *testing.T)   { roundTrip(t, []uint32{0, 1, 0, 0, 1, 0}) }
func TestLargeSymbols(t *testing.T) { roundTrip(t, []uint32{1 << 31, 0, 1<<31 + 5, 42}) }
func TestSequential(t *testing.T) {
	s := make([]uint32, 300)
	for i := range s {
		s[i] = uint32(i)
	}
	roundTrip(t, s)
}

func TestSkewedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := make([]uint32, 10000)
	for i := range s {
		// Geometric-ish: mostly 0, occasional large codes — the shape of
		// SZ quantization residuals.
		v := uint32(0)
		for rng.Intn(3) == 0 {
			v++
		}
		s[i] = v
	}
	roundTrip(t, s)
	// Compression sanity: skewed stream must shrink well below 4 bytes/symbol.
	if enc, err := Encode(s); err != nil || len(enc) > len(s)*2 {
		t.Errorf("encoded %d symbols into %d bytes; expected entropy gain", len(s), len(enc))
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16, spread uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 2000)
		s := make([]uint32, n)
		mod := uint32(spread)%512 + 1
		for i := range s {
			s[i] = uint32(rng.Intn(int(mod)))
		}
		data, err := Encode(s)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		if len(got) != len(s) {
			return false
		}
		for i := range s {
			if got[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	s := []uint32{1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4}
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(data); cut += 3 {
		if got, err := Decode(data[:len(data)-cut]); err == nil && len(got) == len(s) {
			eq := true
			for i := range s {
				if got[i] != s[i] {
					eq = false
				}
			}
			if eq {
				t.Fatalf("truncation by %d bytes decoded fully and correctly", cut)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte{}); err == nil {
		t.Error("empty input should error")
	}
	// count says 5 symbols but no table follows
	if _, err := Decode([]byte{5}); err == nil {
		t.Error("missing table should error")
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := make([]uint32, 500)
	for i := range s {
		s[i] = uint32(rng.Intn(40))
	}
	a, errA := Encode(s)
	b, errB := Encode(s)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !bytes.Equal(a, b) {
		t.Error("Encode is not deterministic")
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := make([]uint32, 1<<16)
	for i := range s {
		s[i] = uint32(rng.Intn(64))
	}
	b.SetBytes(int64(4 * len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := make([]uint32, 1<<16)
	for i := range s {
		s[i] = uint32(rng.Intn(64))
	}
	data, err := Encode(s)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
