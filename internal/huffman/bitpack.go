package huffman

import "fmt"

// Fixed-width bit packing: the v4 fast path for chunks whose symbol range
// fits k bits and whose Huffman coding would gain less than ~5% over raw
// packing. Both directions are branch-light memory-bandwidth loops — no
// codebook walk, no DEFLATE — which is what makes low-entropy quantizer
// output decode at memcpy-like speed.

// MaxPackBits bounds the per-symbol field width: symbols are uint32, so a
// range never needs more than 32 bits.
const MaxPackBits = 32

// PackedLen returns the payload byte length of count symbols packed at k
// bits each.
func PackedLen(count int, k uint8) int {
	return (count*int(k) + 7) / 8
}

// AppendPacked appends (s - base) for each symbol as a k-bit MSB-first
// field and returns the extended slice, zero-padding the final byte like
// EncodeChunk. The caller guarantees base <= s and s-base < 1<<k for every
// symbol; k == 0 appends nothing (a constant chunk is fully described by
// its base).
func AppendPacked(dst []byte, symbols []uint32, base uint32, k uint8) []byte {
	if k == 0 {
		return dst
	}
	w := bitWriter{buf: dst}
	for _, s := range symbols {
		w.writeBits(uint64(s-base), k)
	}
	w.flush()
	return w.buf
}

// UnpackChunk decodes exactly len(out) symbols from a payload written by
// AppendPacked. The payload length must match PackedLen exactly, so a
// corrupt directory cannot drive reads past the chunk.
func UnpackChunk(data []byte, base uint32, k uint8, out []uint32) error {
	if k > MaxPackBits {
		return fmt.Errorf("huffman: packed width %d exceeds %d bits", k, MaxPackBits)
	}
	if k == 0 {
		for i := range out {
			out[i] = base
		}
		if len(data) != 0 {
			return fmt.Errorf("huffman: %d trailing bytes after zero-width chunk", len(data))
		}
		return nil
	}
	if want := PackedLen(len(out), k); len(data) != want {
		return fmt.Errorf("huffman: packed chunk is %d bytes, want %d", len(data), want)
	}
	kk := uint(k)
	mask := uint64(1)<<kk - 1
	var acc uint64
	var nacc uint
	pos := 0
	for i := range out {
		for nacc < kk {
			acc = acc<<8 | uint64(data[pos])
			pos++
			nacc += 8
		}
		nacc -= kk
		out[i] = base + uint32(acc>>nacc&mask)
	}
	return nil
}

// ChunkBits reports, for one chunk of a section coded against t, the
// minimum and maximum symbol value and the exact number of bits
// EncodeChunk would emit. The encoder compares that against the fixed-width
// alternative to pick the per-chunk mode; the decision depends only on the
// chunk contents and the shared table, never on the worker count, so
// archives stay byte-identical for any parallelism. Symbols absent from
// the codebook panic, matching the EncodeChunk contract.
func (t *Table) ChunkBits(symbols []uint32) (lo, hi uint32, bits uint64) {
	if len(symbols) == 0 {
		return 0, 0, 0
	}
	lo, hi = symbols[0], symbols[0]
	dense := t.dense
	for _, s := range symbols {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
		var i int
		if int64(s) < int64(len(dense)) {
			i = int(dense[s])
			if i < 0 {
				panic(fmt.Sprintf("huffman: symbol %d not in codebook", s))
			}
		} else {
			var ok bool
			i, ok = t.lookup[s]
			if !ok {
				panic(fmt.Sprintf("huffman: symbol %d not in codebook", s))
			}
		}
		bits += uint64(t.lens[i])
	}
	return lo, hi, bits
}
