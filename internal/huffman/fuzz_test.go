package huffman

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Decode must never panic on arbitrary input bytes — it either round-trips
// or returns an error.
func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, nRaw%512)
		rng.Read(data)
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %d bytes: %v", len(data), r)
			}
		}()
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Flipping any single byte of a valid stream must not panic (errors and
// mis-decodes are acceptable; memory safety is not negotiable).
func TestDecodeBitflippedStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	syms := make([]uint32, 300)
	for i := range syms {
		syms[i] = uint32(rng.Intn(50))
	}
	data, err := Encode(syms)
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0xA5
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked with byte %d flipped: %v", pos, r)
				}
			}()
			_, _ = Decode(mut)
		}()
	}
}
