package huffman

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestHistogramTableEquivalence pins the streaming contract: a table built
// from incremental Observe calls over arbitrary splits of a stream is
// bit-identical (wire form and encoded chunks) to BuildTable over the
// whole stream.
func TestHistogramTableEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	syms := make([]uint32, 50000)
	for i := range syms {
		switch rng.Intn(10) {
		case 0:
			syms[i] = ^uint32(0) // overflow-map outlier
		case 1:
			syms[i] = uint32(denseSyms + rng.Intn(5))
		default:
			syms[i] = uint32(rng.Intn(300))
		}
	}
	want, err := BuildTable(syms, 4)
	if err != nil {
		t.Fatal(err)
	}

	var h Histogram
	for lo := 0; lo < len(syms); {
		hi := lo + 1 + rng.Intn(4096)
		if hi > len(syms) {
			hi = len(syms)
		}
		h.Observe(syms[lo:hi])
		lo = hi
	}
	if h.Total() != uint64(len(syms)) {
		t.Fatalf("Total() = %d, want %d", h.Total(), len(syms))
	}
	got := TableFromHistogram(&h)

	if !bytes.Equal(want.AppendTable(nil), got.AppendTable(nil)) {
		t.Fatal("histogram-built table differs from BuildTable wire form")
	}
	chunk := syms[:4096]
	if !bytes.Equal(want.EncodeChunk(nil, chunk), got.EncodeChunk(nil, chunk)) {
		t.Fatal("histogram-built table encodes chunks differently")
	}
}

// TestHistogramEmpty pins that a zero-observation histogram yields the
// valid empty table, matching BuildTable(nil).
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	got := TableFromHistogram(&h)
	if got.Len() != 0 {
		t.Fatalf("empty histogram produced %d symbols", got.Len())
	}
	if !bytes.Equal(got.AppendTable(nil), (&Table{}).AppendTable(nil)) {
		t.Fatal("empty table wire forms differ")
	}
}
