package huffman

import (
	"testing"
)

// FuzzDecode drives the canonical Huffman decoder with arbitrary bytes.
// The invariant is memory safety and termination: Decode either returns
// symbols or an error, and a successful decode must re-encode/decode to
// the same symbol sequence.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	valid, err := Encode([]uint32{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 1, 1, 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	for _, cut := range []int{1, len(valid) / 2, len(valid) - 1} {
		if cut >= 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		syms, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := Encode(syms)
		if err != nil {
			t.Fatalf("re-encode of decoded symbols failed: %v", err)
		}
		again, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded symbols failed: %v", err)
		}
		if len(again) != len(syms) {
			t.Fatalf("round-trip length %d, want %d", len(again), len(syms))
		}
		for i := range syms {
			if again[i] != syms[i] {
				t.Fatalf("round-trip symbol %d: %d != %d", i, again[i], syms[i])
			}
		}
	})
}
