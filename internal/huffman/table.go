package huffman

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"tspsz/internal/parallel"
)

// Table is a canonical Huffman codebook shared by every chunk of a symbol
// section. The parallel entropy back-end builds one Table per section from
// a global histogram, serializes it once, and then encodes or decodes
// fixed-extent symbol chunks independently — and therefore concurrently —
// against it. The wire form written by AppendTable is identical to the
// inline table of the v1 Encode stream.
type Table struct {
	// Canonical order: entries sorted by (code length, symbol value).
	syms []uint32
	lens []uint8
	code []uint64

	lookup map[uint32]int // encoder: symbol -> canonical index
	dense  []int32        // encoder fast path: symbol -> index, -1 if absent

	// Decoder state, built by finishDecoder.
	maxLen     uint8
	firstCode  []uint64
	firstIndex []int
	countAt    []int
	dtable     []tentry
	tb         int
}

// tentry is one primary-lookup slot of the decoder: any code of length
// <= tb bits resolves with a single peek.
type tentry struct {
	sym uint32
	len uint8
}

// Len reports the number of distinct symbols in the codebook.
func (t *Table) Len() int { return len(t.syms) }

// histogramParts bounds the number of partial frequency tables built by
// BuildTable; symbols below this count are histogrammed serially.
const histogramParts = 1 << 15

// denseSyms bounds the symbol range counted with array indexing instead of
// map operations. It covers both production alphabets — quantization codes
// zigzag to at most 2*radius = 1<<16 and error-bound exponents stay tiny —
// while reserved sentinels such as quantizer.UnpredictableSym (^uint32(0))
// spill into a small overflow map.
const denseSyms = 1 << 17

// partialHist is one range's frequency table: array counts for symbols
// below denseSyms, a map for the rare large outliers.
type partialHist struct {
	dense []uint64
	rest  map[uint32]uint64
}

// BuildTable constructs the canonical codebook for a symbol stream using a
// parallel histogram reduction: per-range frequency tables are computed
// concurrently and merged once. The merged totals are sums, so the
// resulting table — and every byte encoded against it — is independent of
// the worker count. A nil-alphabet table (len(symbols) == 0) is valid and
// encodes only empty chunks. A panic in the reduction workers is contained
// and returned as an error rather than crashing the process.
func BuildTable(symbols []uint32, workers int) (*Table, error) {
	return BuildTableCtx(nil, symbols, workers)
}

// BuildTableCtx is BuildTable with cancellation: the histogram reduction
// checks ctx at range boundaries and returns the context's error (verbatim)
// if the build is abandoned. A nil ctx never cancels.
func BuildTableCtx(ctx context.Context, symbols []uint32, workers int) (*Table, error) {
	if len(symbols) == 0 {
		return &Table{}, nil
	}
	parts := parallel.Workers(workers)
	if len(symbols) < histogramParts {
		parts = 1
	}
	partial, err := parallel.CtxReduceRangesErr(ctx, len(symbols), parts, workers, func(lo, hi int) (partialHist, error) {
		seg := symbols[lo:hi]
		// Size the count array to the largest dense symbol actually present
		// so sparse alphabets (relative mode tops out near 400) do not pay
		// for the full denseSyms range.
		var top uint32
		for _, s := range seg {
			if s < denseSyms && s > top {
				top = s
			}
		}
		h := partialHist{dense: make([]uint64, int(top)+1)}
		for _, s := range seg {
			if s < denseSyms {
				h.dense[s]++
			} else {
				if h.rest == nil {
					h.rest = make(map[uint32]uint64)
				}
				h.rest[s]++
			}
		}
		return h, nil
	})
	if err != nil {
		return nil, err
	}
	merged := partial[0]
	for _, h := range partial[1:] {
		if len(h.dense) > len(merged.dense) {
			merged.dense, h.dense = h.dense, merged.dense
		}
		for s, c := range h.dense {
			merged.dense[s] += c
		}
		//lint:allow determinism summing commutes; the merged totals are range-independent and keys are sorted below
		for s, c := range h.rest {
			if merged.rest == nil {
				merged.rest = make(map[uint32]uint64)
			}
			merged.rest[s] += c
		}
	}
	return tableFromMerged(merged.dense, merged.rest), nil
}

// tableFromMerged builds the canonical codebook from final frequency
// totals: array counts for dense symbols plus an overflow map. Both
// BuildTableCtx (parallel reduction) and TableFromHistogram (incremental
// streaming accumulation) funnel through here, so the resulting table —
// and every chunk encoded against it — depends only on the totals, not on
// how they were gathered.
func tableFromMerged(dense []uint64, rest map[uint32]uint64) *Table {
	var syms []uint32
	var freqs []uint64
	for s, c := range dense {
		if c > 0 {
			syms = append(syms, uint32(s))
			freqs = append(freqs, c)
		}
	}
	// Outlier symbols are all >= denseSyms, so appending them in sorted
	// order keeps the whole alphabet sorted.
	restKeys := make([]uint32, 0, len(rest))
	//lint:allow determinism iteration only collects the key set; it is sorted on the next line before anything reaches the stream
	for s := range rest {
		restKeys = append(restKeys, s)
	}
	sort.Slice(restKeys, func(i, j int) bool { return restKeys[i] < restKeys[j] })
	for _, s := range restKeys {
		syms = append(syms, s)
		freqs = append(freqs, rest[s])
	}
	lens := codeLengths(syms, freqs)
	c := buildCanonical(syms, lens)
	t := &Table{syms: c.syms, lens: c.lens, code: c.code}
	t.lookup = make(map[uint32]int, len(c.syms))
	var top uint32
	for i, s := range c.syms {
		t.lookup[s] = i
		if s < denseSyms && s > top {
			top = s
		}
	}
	t.dense = make([]int32, int(top)+1)
	for i := range t.dense {
		t.dense[i] = -1
	}
	for i, s := range c.syms {
		if s < denseSyms {
			t.dense[s] = int32(i)
		}
	}
	return t
}

// AppendTable appends the wire form of the codebook to dst: a uvarint
// distinct-symbol count followed by (zigzag symbol delta, length byte)
// pairs in canonical order.
func (t *Table) AppendTable(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t.syms)))
	prev := uint32(0)
	for i := range t.syms {
		dst = binary.AppendUvarint(dst, zigzag(int64(t.syms[i])-int64(prev)))
		prev = t.syms[i]
		dst = append(dst, t.lens[i])
	}
	return dst
}

// EncodeChunk appends the packed code bits for symbols to dst, flushed to
// a byte boundary so chunks decode independently, and returns the extended
// slice. Symbols absent from the codebook panic; the caller must build the
// table from a superset of every chunk.
func (t *Table) EncodeChunk(dst []byte, symbols []uint32) []byte {
	w := bitWriter{buf: dst}
	dense := t.dense
	for _, s := range symbols {
		var i int
		if int64(s) < int64(len(dense)) {
			i = int(dense[s])
			if i < 0 {
				panic(fmt.Sprintf("huffman: symbol %d not in codebook", s))
			}
		} else {
			var ok bool
			i, ok = t.lookup[s]
			if !ok {
				panic(fmt.Sprintf("huffman: symbol %d not in codebook", s))
			}
		}
		w.writeBits(t.code[i], t.lens[i])
	}
	w.flush()
	return w.buf
}

// ParseTable reads a codebook written by AppendTable, returning the table
// and the number of bytes consumed. count is the total symbol count the
// table will serve; it bounds the plausible alphabet size so corrupt
// streams cannot drive large allocations.
func ParseTable(data []byte, count uint64) (*Table, int, error) {
	distinct, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, fmt.Errorf("huffman: truncated table size")
	}
	consumed := n
	data = data[n:]
	if distinct == 0 || distinct > count {
		return nil, 0, fmt.Errorf("huffman: invalid table size %d for %d symbols", distinct, count)
	}
	// Every table entry takes at least 2 bytes; reject sizes the stream
	// cannot back before allocating anything proportional to them.
	if distinct > uint64(len(data))/2+1 {
		return nil, 0, fmt.Errorf("huffman: table size %d exceeds stream capacity", distinct)
	}
	syms := make([]uint32, distinct)
	lens := make([]uint8, distinct)
	prev := int64(0)
	maxLen := uint8(0)
	for i := range syms {
		d, n := binary.Uvarint(data)
		if n <= 0 || len(data) < n+1 {
			return nil, 0, fmt.Errorf("huffman: truncated table entry %d", i)
		}
		prev += unzigzag(d)
		syms[i] = uint32(prev)
		data = data[n:]
		lens[i] = data[0]
		data = data[1:]
		consumed += n + 1
		if lens[i] == 0 || lens[i] > MaxCodeLen {
			return nil, 0, fmt.Errorf("huffman: invalid code length %d", lens[i])
		}
		if lens[i] > maxLen {
			maxLen = lens[i]
		}
	}
	// Entries must already be in canonical (length-monotone) order.
	for i := 1; i < len(lens); i++ {
		if lens[i] < lens[i-1] {
			return nil, 0, fmt.Errorf("huffman: non-canonical table order")
		}
	}
	t := &Table{syms: syms, lens: lens, maxLen: maxLen}
	if err := t.finishDecoder(); err != nil {
		return nil, 0, err
	}
	return t, consumed, nil
}

// finishDecoder validates the code lengths (Kraft inequality) and builds
// the canonical per-length tables plus the primary lookup table.
func (t *Table) finishDecoder() error {
	maxLen := t.maxLen
	// ParseTable rejects lengths above MaxCodeLen before setting maxLen,
	// but finishDecoder sizes allocations from it, so enforce the bound
	// locally rather than trusting every (future) caller.
	if maxLen > MaxCodeLen {
		return fmt.Errorf("huffman: invalid max code length %d", maxLen)
	}
	t.firstCode = make([]uint64, maxLen+2)
	t.countAt = make([]int, maxLen+2)
	for _, l := range t.lens {
		// The per-length arrays are sized by maxLen, so a length above it
		// (a lens/maxLen mismatch no caller should produce) must fail
		// here rather than index out of range.
		if l > maxLen {
			return fmt.Errorf("huffman: code length %d exceeds declared max %d", l, maxLen)
		}
		t.countAt[l]++
	}
	var code uint64
	t.firstIndex = make([]int, maxLen+2)
	idx := 0
	for l := uint8(1); l <= maxLen; l++ {
		t.firstCode[l] = code
		t.firstIndex[l] = idx
		// Kraft validity: the canonical codes of length l must fit in l
		// bits. An over-subscribed corrupt table would otherwise overflow
		// into neighbouring lookup-table slots (index out of range).
		if t.firstCode[l]+uint64(t.countAt[l]) > 1<<l {
			return fmt.Errorf("huffman: over-subscribed code lengths at %d bits", l)
		}
		code = (code + uint64(t.countAt[l])) << 1
		idx += t.countAt[l]
	}
	// Primary lookup table: any code of length <= tb resolves in a single
	// peek; longer codes fall back to the canonical per-length walk.
	const tableBits = 11
	t.tb = int(maxLen)
	if t.tb > tableBits {
		t.tb = tableBits
	}
	if t.tb < 1 {
		return fmt.Errorf("huffman: empty code table")
	}
	t.dtable = make([]tentry, 1<<t.tb)
	for i := range t.syms {
		l := t.lens[i]
		if int(l) > t.tb {
			continue
		}
		// Reconstruct this symbol's canonical code.
		code := t.firstCode[l] + uint64(i-t.firstIndex[l])
		base := code << (uint(t.tb) - uint(l))
		span := uint64(1) << (uint(t.tb) - uint(l))
		// The Kraft check above guarantees the expansion fits; re-check
		// against the actual table so a corrupt length distribution that
		// slips past it becomes a clean error, not an out-of-range write
		// (the PR1 over-subscribed-table class).
		if base+span > uint64(len(t.dtable)) {
			return fmt.Errorf("huffman: code expansion overflows lookup table at length %d", l)
		}
		for e := uint64(0); e < span; e++ {
			t.dtable[base+e] = tentry{sym: t.syms[i], len: l}
		}
	}
	return nil
}

// DecodeChunk decodes exactly len(out) symbols from a chunk produced by
// EncodeChunk. It never reads past data and never allocates proportionally
// to corrupt inputs: the caller sizes out from a validated directory.
func (t *Table) DecodeChunk(data []byte, out []uint32) error {
	if len(out) == 0 {
		return nil
	}
	if t.dtable == nil {
		return fmt.Errorf("huffman: table has no decoder state")
	}
	// Every symbol consumes at least one bit.
	if uint64(len(out)) > 8*uint64(len(data)) {
		return fmt.Errorf("huffman: %d symbols exceed %d-byte chunk capacity", len(out), len(data))
	}
	return t.decodeBits(data, out)
}

// decodeBits is the shared bit-level decode loop: a bit accumulator
// refilled bytewise, primary-table peeks with a canonical per-length walk
// for long codes.
func (t *Table) decodeBits(data []byte, out []uint32) error {
	count := len(out)
	tb := t.tb
	var acc uint64
	var nacc uint // bits available in acc (MSB-aligned in low bits)
	bitPos := 0
	total := uint64(len(data)) * 8
	consumed := uint64(0)
	for n := 0; n < count; n++ {
		for nacc <= 56 && bitPos < len(data) {
			acc = acc<<8 | uint64(data[bitPos])
			bitPos++
			nacc += 8
		}
		if nacc == 0 {
			return fmt.Errorf("huffman: bitstream exhausted after %d of %d symbols", n, count)
		}
		// Peek up to tb bits (zero-padded at stream end).
		var peek uint64
		if nacc >= uint(tb) {
			peek = (acc >> (nacc - uint(tb))) & ((1 << uint(tb)) - 1)
		} else {
			peek = (acc << (uint(tb) - nacc)) & ((1 << uint(tb)) - 1)
		}
		// The mask bounds peek below 1<<tb and finishDecoder sizes dtable
		// to exactly 1<<tb entries; enforce the invariant locally so a
		// table with inconsistent decoder state fails cleanly instead of
		// reading out of range.
		if peek >= uint64(len(t.dtable)) {
			return fmt.Errorf("huffman: inconsistent decoder table (peek %d, %d slots)", peek, len(t.dtable))
		}
		e := t.dtable[peek]
		if e.len != 0 && uint(e.len) <= nacc && consumed+uint64(e.len) <= total {
			out[n] = e.sym
			nacc -= uint(e.len)
			consumed += uint64(e.len)
			continue
		}
		// Fallback: canonical walk for long codes, bit by bit.
		var code uint64
		var l uint8
		matched := false
		for !matched {
			if nacc == 0 {
				if bitPos >= len(data) {
					return fmt.Errorf("huffman: bitstream exhausted after %d of %d symbols", n, count)
				}
				acc = acc<<8 | uint64(data[bitPos])
				bitPos++
				nacc += 8
			}
			bit := (acc >> (nacc - 1)) & 1
			nacc--
			consumed++
			code = code<<1 | bit
			l++
			if l > t.maxLen {
				return fmt.Errorf("huffman: invalid code (length > %d)", t.maxLen)
			}
			if t.countAt[l] == 0 {
				continue
			}
			offset := code - t.firstCode[l]
			if code >= t.firstCode[l] && offset < uint64(t.countAt[l]) {
				// Kraft validity (finishDecoder) guarantees the canonical
				// index fits; bound it locally so a table whose per-length
				// counts disagree with syms fails cleanly.
				idx := t.firstIndex[l] + int(offset)
				if idx < 0 || idx >= len(t.syms) {
					return fmt.Errorf("huffman: inconsistent canonical index %d for %d symbols", idx, len(t.syms))
				}
				out[n] = t.syms[idx]
				matched = true
			}
		}
	}
	return nil
}
