// Package huffman implements a canonical Huffman coder over uint32 symbol
// streams. It is the entropy-coding backend of the SZ-style pipeline in
// TspSZ: quantization codes and error-bound exponents are Huffman-coded
// before the final DEFLATE pass (cf. SZ's Huffman+ZSTD stage).
package huffman

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"
)

// node is a Huffman tree node used only during code-length construction.
type node struct {
	freq        uint64
	symbol      uint32
	left, right int // child indices; -1 for leaves
	order       int // tie-break to keep construction deterministic
}

type nodeHeap struct {
	nodes []node
	idx   []int
}

func (h *nodeHeap) Len() int { return len(h.idx) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.nodes[h.idx[i]], h.nodes[h.idx[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.order < b.order
}
func (h *nodeHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *nodeHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// codeLengths computes per-symbol Huffman code lengths for the given
// frequency table (parallel slices sym/freq). A single distinct symbol gets
// length 1.
func codeLengths(sym []uint32, freq []uint64) []uint8 {
	n := len(sym)
	if n == 1 {
		return []uint8{1}
	}
	nodes := make([]node, 0, 2*n)
	h := &nodeHeap{nodes: nil}
	for i := 0; i < n; i++ {
		nodes = append(nodes, node{freq: freq[i], symbol: sym[i], left: -1, right: -1, order: i})
	}
	h.nodes = nodes
	h.idx = make([]int, n)
	for i := range h.idx {
		h.idx[i] = i
	}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(int)
		b := heap.Pop(h).(int)
		h.nodes = append(h.nodes, node{
			freq:  h.nodes[a].freq + h.nodes[b].freq,
			left:  a,
			right: b,
			order: len(h.nodes),
		})
		heap.Push(h, len(h.nodes)-1)
	}
	root := h.idx[0]
	lengths := make([]uint8, n)
	// Iterative DFS assigning depths to leaves.
	type frame struct {
		n     int
		depth uint8
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := h.nodes[f.n]
		if nd.left == -1 {
			// Leaf: nd.order is its index in sym (leaves were added first).
			lengths[f.n] = f.depth
			continue
		}
		stack = append(stack, frame{nd.left, f.depth + 1}, frame{nd.right, f.depth + 1})
	}
	return lengths
}

// canonical assigns canonical codes given symbols and code lengths. Symbols
// are reordered by (length, symbol value); codes fill in increasing order.
type canonical struct {
	syms []uint32
	lens []uint8
	code []uint64
}

func buildCanonical(sym []uint32, lens []uint8) canonical {
	n := len(sym)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if lens[ia] != lens[ib] {
			return lens[ia] < lens[ib]
		}
		return sym[ia] < sym[ib]
	})
	c := canonical{
		syms: make([]uint32, n),
		lens: make([]uint8, n),
		code: make([]uint64, n),
	}
	var next uint64
	var prevLen uint8
	for i, oi := range order {
		l := lens[oi]
		next <<= (l - prevLen)
		prevLen = l
		c.syms[i] = sym[oi]
		c.lens[i] = l
		c.code[i] = next
		next++
	}
	return c
}

// bitWriter packs MSB-first bits.
type bitWriter struct {
	buf  []byte
	acc  uint64
	nacc uint
}

func (w *bitWriter) writeBits(code uint64, n uint8) {
	w.acc = w.acc<<n | code
	w.nacc += uint(n)
	for w.nacc >= 8 {
		w.nacc -= 8
		w.buf = append(w.buf, byte(w.acc>>w.nacc))
	}
}

func (w *bitWriter) flush() {
	if w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc<<(8-w.nacc)))
		w.nacc = 0
	}
}

// Encode Huffman-codes the symbol stream into a self-contained byte slice
// including the canonical code table. The layout is: varint count, the
// AppendTable codebook (canonical order sorts primarily by length, so
// symbols are stored as zigzag deltas in (length, symbol) order), then the
// packed code bits — i.e. a single-chunk stream over a one-shot Table.
func Encode(symbols []uint32) ([]byte, error) {
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(symbols)))
	if len(symbols) == 0 {
		return out, nil
	}
	t, err := BuildTable(symbols, 1)
	if err != nil {
		return nil, err
	}
	out = t.AppendTable(out)
	return t.EncodeChunk(out, symbols), nil
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Decode restores the symbol stream produced by Encode.
func Decode(data []byte) ([]uint32, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("huffman: truncated count")
	}
	data = data[n:]
	if count == 0 {
		return nil, nil
	}
	// Every symbol takes at least a fraction of a bit; reject counts a
	// corrupted stream cannot back, before allocating anything
	// proportional to them.
	if count > 8*uint64(len(data))+64 {
		return nil, fmt.Errorf("huffman: symbol count %d exceeds stream capacity", count)
	}
	t, consumed, err := ParseTable(data, count)
	if err != nil {
		return nil, err
	}
	out := make([]uint32, count)
	if err := t.decodeBits(data[consumed:], out); err != nil {
		return nil, err
	}
	return out, nil
}

// MaxCodeLen is a sanity bound on code lengths; streams with more than 2^58
// symbols of a pathological distribution are outside the supported range.
const MaxCodeLen = 58
