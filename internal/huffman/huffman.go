// Package huffman implements a canonical Huffman coder over uint32 symbol
// streams. It is the entropy-coding backend of the SZ-style pipeline in
// TspSZ: quantization codes and error-bound exponents are Huffman-coded
// before the final DEFLATE pass (cf. SZ's Huffman+ZSTD stage).
package huffman

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"
)

// node is a Huffman tree node used only during code-length construction.
type node struct {
	freq        uint64
	symbol      uint32
	left, right int // child indices; -1 for leaves
	order       int // tie-break to keep construction deterministic
}

type nodeHeap struct {
	nodes []node
	idx   []int
}

func (h *nodeHeap) Len() int { return len(h.idx) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.nodes[h.idx[i]], h.nodes[h.idx[j]]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.order < b.order
}
func (h *nodeHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *nodeHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// codeLengths computes per-symbol Huffman code lengths for the given
// frequency table (parallel slices sym/freq). A single distinct symbol gets
// length 1.
func codeLengths(sym []uint32, freq []uint64) []uint8 {
	n := len(sym)
	if n == 1 {
		return []uint8{1}
	}
	nodes := make([]node, 0, 2*n)
	h := &nodeHeap{nodes: nil}
	for i := 0; i < n; i++ {
		nodes = append(nodes, node{freq: freq[i], symbol: sym[i], left: -1, right: -1, order: i})
	}
	h.nodes = nodes
	h.idx = make([]int, n)
	for i := range h.idx {
		h.idx[i] = i
	}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(int)
		b := heap.Pop(h).(int)
		h.nodes = append(h.nodes, node{
			freq:  h.nodes[a].freq + h.nodes[b].freq,
			left:  a,
			right: b,
			order: len(h.nodes),
		})
		heap.Push(h, len(h.nodes)-1)
	}
	root := h.idx[0]
	lengths := make([]uint8, n)
	// Iterative DFS assigning depths to leaves.
	type frame struct {
		n     int
		depth uint8
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := h.nodes[f.n]
		if nd.left == -1 {
			// Leaf: nd.order is its index in sym (leaves were added first).
			lengths[f.n] = f.depth
			continue
		}
		stack = append(stack, frame{nd.left, f.depth + 1}, frame{nd.right, f.depth + 1})
	}
	return lengths
}

// canonical assigns canonical codes given symbols and code lengths. Symbols
// are reordered by (length, symbol value); codes fill in increasing order.
type canonical struct {
	syms []uint32
	lens []uint8
	code []uint64
}

func buildCanonical(sym []uint32, lens []uint8) canonical {
	n := len(sym)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if lens[ia] != lens[ib] {
			return lens[ia] < lens[ib]
		}
		return sym[ia] < sym[ib]
	})
	c := canonical{
		syms: make([]uint32, n),
		lens: make([]uint8, n),
		code: make([]uint64, n),
	}
	var next uint64
	var prevLen uint8
	for i, oi := range order {
		l := lens[oi]
		next <<= (l - prevLen)
		prevLen = l
		c.syms[i] = sym[oi]
		c.lens[i] = l
		c.code[i] = next
		next++
	}
	return c
}

// bitWriter packs MSB-first bits.
type bitWriter struct {
	buf  []byte
	acc  uint64
	nacc uint
}

func (w *bitWriter) writeBits(code uint64, n uint8) {
	w.acc = w.acc<<n | code
	w.nacc += uint(n)
	for w.nacc >= 8 {
		w.nacc -= 8
		w.buf = append(w.buf, byte(w.acc>>w.nacc))
	}
}

func (w *bitWriter) flush() {
	if w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc<<(8-w.nacc)))
		w.nacc = 0
	}
}

// Encode Huffman-codes the symbol stream into a self-contained byte slice
// including the canonical code table.
func Encode(symbols []uint32) []byte {
	// Header: varint count; varint distinct; per distinct symbol:
	// varint symbol delta (sorted), then packed 6-bit lengths? Keep it
	// simple and robust: varint symbol, single byte length.
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(symbols)))
	if len(symbols) == 0 {
		return out
	}
	freqMap := make(map[uint32]uint64)
	for _, s := range symbols {
		freqMap[s]++
	}
	syms := make([]uint32, 0, len(freqMap))
	//lint:allow determinism iteration only collects the key set; it is sorted on the next line before anything reaches the stream
	for s := range freqMap {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	freqs := make([]uint64, len(syms))
	for i, s := range syms {
		freqs[i] = freqMap[s]
	}
	lens := codeLengths(syms, freqs)
	c := buildCanonical(syms, lens)

	out = binary.AppendUvarint(out, uint64(len(c.syms)))
	prev := uint32(0)
	for i := range c.syms {
		// Canonical order sorts primarily by length, so symbol deltas may
		// be negative; store raw symbols in (length, symbol) order with a
		// zigzag delta to stay compact for dense alphabets.
		out = binary.AppendUvarint(out, zigzag(int64(c.syms[i])-int64(prev)))
		prev = c.syms[i]
		out = append(out, c.lens[i])
	}

	lookup := make(map[uint32]int, len(c.syms))
	for i, s := range c.syms {
		lookup[s] = i
	}
	w := bitWriter{buf: out}
	for _, s := range symbols {
		i := lookup[s]
		w.writeBits(c.code[i], c.lens[i])
	}
	w.flush()
	return w.buf
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Decode restores the symbol stream produced by Encode.
func Decode(data []byte) ([]uint32, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("huffman: truncated count")
	}
	data = data[n:]
	if count == 0 {
		return nil, nil
	}
	distinct, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("huffman: truncated table size")
	}
	data = data[n:]
	if distinct == 0 || distinct > count {
		return nil, fmt.Errorf("huffman: invalid table size %d for %d symbols", distinct, count)
	}
	// Every table entry takes at least 2 bytes and every symbol at least a
	// fraction of a bit; reject counts a corrupted stream cannot back,
	// before allocating anything proportional to them.
	if distinct > uint64(len(data))/2+1 {
		return nil, fmt.Errorf("huffman: table size %d exceeds stream capacity", distinct)
	}
	if count > 8*uint64(len(data))+64 {
		return nil, fmt.Errorf("huffman: symbol count %d exceeds stream capacity", count)
	}
	syms := make([]uint32, distinct)
	lens := make([]uint8, distinct)
	prev := int64(0)
	maxLen := uint8(0)
	for i := range syms {
		d, n := binary.Uvarint(data)
		if n <= 0 || len(data) < n+1 {
			return nil, fmt.Errorf("huffman: truncated table entry %d", i)
		}
		prev += unzigzag(d)
		syms[i] = uint32(prev)
		data = data[n:]
		lens[i] = data[0]
		data = data[1:]
		if lens[i] == 0 || lens[i] > 58 {
			return nil, fmt.Errorf("huffman: invalid code length %d", lens[i])
		}
		if lens[i] > maxLen {
			maxLen = lens[i]
		}
	}
	// Rebuild canonical codes: entries already stored in canonical order.
	// firstCode[l], firstIndex[l]: canonical decoding tables.
	firstCode := make([]uint64, maxLen+2)
	countAt := make([]int, maxLen+2)
	for _, l := range lens {
		countAt[l]++
	}
	var code uint64
	firstIndex := make([]int, maxLen+2)
	idx := 0
	for l := uint8(1); l <= maxLen; l++ {
		firstCode[l] = code
		firstIndex[l] = idx
		// Kraft validity: the canonical codes of length l must fit in l
		// bits. An over-subscribed corrupt table would otherwise overflow
		// into neighbouring lookup-table slots (index out of range).
		if firstCode[l]+uint64(countAt[l]) > 1<<l {
			return nil, fmt.Errorf("huffman: over-subscribed code lengths at %d bits", l)
		}
		code = (code + uint64(countAt[l])) << 1
		idx += countAt[l]
	}
	// Validate monotone lengths (canonical order).
	for i := 1; i < len(lens); i++ {
		if lens[i] < lens[i-1] {
			return nil, fmt.Errorf("huffman: non-canonical table order")
		}
	}

	// Primary lookup table: any code of length <= tableBits resolves in a
	// single peek; longer codes fall back to the canonical per-length walk.
	const tableBits = 11
	type tentry struct {
		sym uint32
		len uint8
	}
	var table []tentry
	if maxLen >= 1 {
		tb := int(maxLen)
		if tb > tableBits {
			tb = tableBits
		}
		table = make([]tentry, 1<<tb)
		for i := range syms {
			l := lens[i]
			if int(l) > tb {
				continue
			}
			// Reconstruct this symbol's canonical code.
			code := firstCode[l] + uint64(i-firstIndex[l])
			base := code << (uint(tb) - uint(l))
			span := uint64(1) << (uint(tb) - uint(l))
			for e := uint64(0); e < span; e++ {
				table[base+e] = tentry{sym: syms[i], len: l}
			}
		}
		// Decode with a bit accumulator refilled bytewise.
		out := make([]uint32, 0, count)
		var acc uint64
		var nacc uint // bits available in acc (MSB-aligned in low bits)
		bitPos := 0
		total := uint64(len(data)) * 8
		consumed := uint64(0)
		for uint64(len(out)) < count {
			for nacc <= 56 && bitPos < len(data) {
				acc = acc<<8 | uint64(data[bitPos])
				bitPos++
				nacc += 8
			}
			if nacc == 0 {
				return nil, fmt.Errorf("huffman: bitstream exhausted after %d of %d symbols", len(out), count)
			}
			// Peek up to tb bits (zero-padded at stream end).
			var peek uint64
			if nacc >= uint(tb) {
				peek = (acc >> (nacc - uint(tb))) & ((1 << uint(tb)) - 1)
			} else {
				peek = (acc << (uint(tb) - nacc)) & ((1 << uint(tb)) - 1)
			}
			e := table[peek]
			if e.len != 0 && uint(e.len) <= nacc && consumed+uint64(e.len) <= total {
				out = append(out, e.sym)
				nacc -= uint(e.len)
				consumed += uint64(e.len)
				continue
			}
			// Fallback: canonical walk for long codes, bit by bit.
			var code uint64
			var l uint8
			matched := false
			for !matched {
				if nacc == 0 {
					if bitPos >= len(data) {
						return nil, fmt.Errorf("huffman: bitstream exhausted after %d of %d symbols", len(out), count)
					}
					acc = acc<<8 | uint64(data[bitPos])
					bitPos++
					nacc += 8
				}
				bit := (acc >> (nacc - 1)) & 1
				nacc--
				consumed++
				code = code<<1 | bit
				l++
				if l > maxLen {
					return nil, fmt.Errorf("huffman: invalid code (length > %d)", maxLen)
				}
				if countAt[l] == 0 {
					continue
				}
				offset := code - firstCode[l]
				if code >= firstCode[l] && offset < uint64(countAt[l]) {
					out = append(out, syms[firstIndex[l]+int(offset)])
					matched = true
				}
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("huffman: empty code table")
}

// MaxCodeLen is a sanity bound on code lengths; streams with more than 2^58
// symbols of a pathological distribution are outside the supported range.
const MaxCodeLen = 58
