package huffman

import (
	"math/rand"
	"testing"
)

// Round-trip across every field width, including k=0 (constant chunks) and
// k=32 (full-range symbols).
func TestPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for k := uint8(0); k <= MaxPackBits; k++ {
		for _, n := range []int{1, 2, 7, 8, 9, 255, 1000} {
			base := rng.Uint32() >> 1
			syms := make([]uint32, n)
			var span uint64 = 1
			if k > 0 {
				span = uint64(1) << k
			}
			for i := range syms {
				d := uint32(rng.Uint64() % span)
				if uint64(base)+uint64(d) > 0xffffffff {
					d = 0
				}
				syms[i] = base + d
			}
			packed := AppendPacked(nil, syms, base, k)
			if got, want := len(packed), PackedLen(n, k); got != want {
				t.Fatalf("k=%d n=%d: packed %d bytes, want %d", k, n, got, want)
			}
			out := make([]uint32, n)
			if err := UnpackChunk(packed, base, k, out); err != nil {
				t.Fatalf("k=%d n=%d: unpack: %v", k, n, err)
			}
			for i := range out {
				if out[i] != syms[i] {
					t.Fatalf("k=%d n=%d: symbol %d: got %d want %d", k, n, i, out[i], syms[i])
				}
			}
		}
	}
}

// A payload whose length disagrees with the directory must be rejected, in
// both directions, as must widths beyond 32 bits.
func TestUnpackChunkRejectsBadSizes(t *testing.T) {
	out := make([]uint32, 9)
	if err := UnpackChunk(make([]byte, PackedLen(9, 5)-1), 0, 5, out); err == nil {
		t.Fatal("short payload accepted")
	}
	if err := UnpackChunk(make([]byte, PackedLen(9, 5)+1), 0, 5, out); err == nil {
		t.Fatal("long payload accepted")
	}
	if err := UnpackChunk(make([]byte, 1), 0, 0, out); err == nil {
		t.Fatal("trailing bytes after zero-width chunk accepted")
	}
	if err := UnpackChunk(make([]byte, 40), 0, 33, out); err == nil {
		t.Fatal("33-bit width accepted")
	}
}

// ChunkBits must agree exactly with what EncodeChunk emits (bits, rounded
// up to the flush byte) and report the true symbol range.
func TestChunkBitsMatchesEncodeChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	syms := make([]uint32, 4096)
	for i := range syms {
		syms[i] = uint32(rng.Intn(97)) + 300
	}
	table, err := BuildTable(syms, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range [][]uint32{syms[:1], syms[:37], syms[100:2100], syms} {
		lo, hi, bits := table.ChunkBits(chunk)
		wlo, whi := chunk[0], chunk[0]
		for _, s := range chunk {
			if s < wlo {
				wlo = s
			}
			if s > whi {
				whi = s
			}
		}
		if lo != wlo || hi != whi {
			t.Fatalf("range [%d,%d], want [%d,%d]", lo, hi, wlo, whi)
		}
		enc := table.EncodeChunk(nil, chunk)
		if want := int(bits+7) / 8; len(enc) != want {
			t.Fatalf("ChunkBits says %d bits (%d bytes), EncodeChunk wrote %d bytes", bits, want, len(enc))
		}
	}
	if lo, hi, bits := table.ChunkBits(nil); lo != 0 || hi != 0 || bits != 0 {
		t.Fatalf("empty chunk reported (%d,%d,%d)", lo, hi, bits)
	}
}
