package huffman

import (
	"bytes"
	"math/rand"
	"testing"
)

// skewedSymbols generates an SZ-residual-shaped stream: mostly small
// codes, occasional large ones.
func skewedSymbols(n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	s := make([]uint32, n)
	for i := range s {
		v := uint32(0)
		for rng.Intn(3) == 0 {
			v++
		}
		s[i] = v * uint32(1+rng.Intn(3))
	}
	return s
}

func mustBuild(t testing.TB, syms []uint32, workers int) *Table {
	t.Helper()
	table, err := BuildTable(syms, workers)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func TestTableChunkedRoundTrip(t *testing.T) {
	syms := skewedSymbols(50000, 11)
	table := mustBuild(t, syms, 4)
	wire := table.AppendTable(nil)
	parsed, consumed, err := ParseTable(wire, uint64(len(syms)))
	if err != nil {
		t.Fatalf("ParseTable: %v", err)
	}
	if consumed != len(wire) {
		t.Fatalf("ParseTable consumed %d of %d bytes", consumed, len(wire))
	}
	if parsed.Len() != table.Len() {
		t.Fatalf("parsed table has %d symbols, want %d", parsed.Len(), table.Len())
	}
	// Encode in uneven chunks, decode each independently against the
	// parsed table, and compare with the input.
	cuts := []int{0, 1, 9, 4096, 17000, 32768, 49999, 50000}
	got := make([]uint32, 0, len(syms))
	for i := 0; i+1 < len(cuts); i++ {
		chunk := table.EncodeChunk(nil, syms[cuts[i]:cuts[i+1]])
		out := make([]uint32, cuts[i+1]-cuts[i])
		if err := parsed.DecodeChunk(chunk, out); err != nil {
			t.Fatalf("DecodeChunk [%d,%d): %v", cuts[i], cuts[i+1], err)
		}
		got = append(got, out...)
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: got %d, want %d", i, got[i], syms[i])
		}
	}
}

// TestBuildTableWorkerIndependent is the codebook half of the archive
// determinism guarantee: the histogram reduction must merge to the same
// table (and therefore the same wire bytes) for every worker count.
func TestBuildTableWorkerIndependent(t *testing.T) {
	syms := skewedSymbols(1<<16, 3)
	ref := mustBuild(t, syms, 1).AppendTable(nil)
	for _, workers := range []int{2, 3, 4, 8, 13} {
		got := mustBuild(t, syms, workers).AppendTable(nil)
		if !bytes.Equal(ref, got) {
			t.Fatalf("table bytes differ between workers=1 and workers=%d", workers)
		}
	}
}

func TestDecodeChunkRejectsBadCounts(t *testing.T) {
	syms := skewedSymbols(1000, 7)
	table := mustBuild(t, syms, 1)
	chunk := table.EncodeChunk(nil, syms)
	parsed, _, err := ParseTable(table.AppendTable(nil), uint64(len(syms)))
	if err != nil {
		t.Fatal(err)
	}
	// A count beyond the chunk's bit capacity is rejected before decoding.
	big := make([]uint32, 8*len(chunk)+1)
	if err := parsed.DecodeChunk(chunk, big); err == nil {
		t.Error("count beyond chunk bit capacity accepted")
	}
	// Zero symbols from any payload is trivially fine.
	if err := parsed.DecodeChunk(nil, nil); err != nil {
		t.Errorf("empty decode errored: %v", err)
	}
}

func TestDecodeChunkTruncatedPayload(t *testing.T) {
	syms := skewedSymbols(5000, 9)
	table := mustBuild(t, syms, 2)
	chunk := table.EncodeChunk(nil, syms)
	parsed, _, err := ParseTable(table.AppendTable(nil), uint64(len(syms)))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, len(syms))
	for cut := 1; cut < len(chunk); cut += 97 {
		if err := parsed.DecodeChunk(chunk[:cut], out); err == nil {
			t.Fatalf("chunk truncated to %d of %d bytes decoded fully", cut, len(chunk))
		}
	}
}

func TestBuildTableEmptyAndSingle(t *testing.T) {
	if got := mustBuild(t, nil, 4).Len(); got != 0 {
		t.Fatalf("empty table has %d symbols", got)
	}
	table := mustBuild(t, []uint32{42, 42, 42}, 4)
	chunk := table.EncodeChunk(nil, []uint32{42, 42, 42})
	parsed, _, err := ParseTable(table.AppendTable(nil), 3)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint32, 3)
	if err := parsed.DecodeChunk(chunk, out); err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 42 {
			t.Fatalf("single-symbol chunk decoded to %v", out)
		}
	}
}
