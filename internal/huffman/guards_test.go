package huffman

import (
	"strings"
	"testing"
)

// These tests pin the defensive guards that finishDecoder and decodeBits
// apply to their own table state. The interprocedural lint pass (PR 6)
// showed that both functions trusted invariants maintained in other
// functions (ParseTable's length validation, Kraft validity); the guards
// make each function safe against any caller, and these tests construct
// the inconsistent tables no well-behaved caller produces.

func expectErr(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected error containing %q, got nil", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("expected error containing %q, got %v", substr, err)
	}
}

func TestFinishDecoderRejectsMaxLenAboveLimit(t *testing.T) {
	tb := &Table{syms: []uint32{1, 2}, lens: []uint8{1, 1}, maxLen: MaxCodeLen + 1}
	expectErr(t, tb.finishDecoder(), "invalid max code length")
}

func TestFinishDecoderRejectsLenAboveDeclaredMax(t *testing.T) {
	tb := &Table{syms: []uint32{1, 2}, lens: []uint8{1, 5}, maxLen: 1}
	expectErr(t, tb.finishDecoder(), "exceeds declared max")
}

func TestFinishDecoderRejectsOversubscribedLengths(t *testing.T) {
	// Three 1-bit codes cannot exist: the Kraft sum exceeds 1.
	tb := &Table{syms: []uint32{1, 2, 3}, lens: []uint8{1, 1, 1}, maxLen: 1}
	expectErr(t, tb.finishDecoder(), "over-subscribed")
}

func TestDecodeBitsRejectsTruncatedDtable(t *testing.T) {
	tb := &Table{syms: []uint32{1, 2}, lens: []uint8{1, 1}, maxLen: 1}
	if err := tb.finishDecoder(); err != nil {
		t.Fatal(err)
	}
	// Sever the dtable/tb invariant the way a hypothetical buggy caller
	// could: the peek mask now exceeds the table.
	tb.dtable = tb.dtable[:1]
	out := make([]uint32, 1)
	expectErr(t, tb.DecodeChunk([]byte{0xff}, out), "inconsistent decoder table")
}

func TestDecodeBitsRejectsInconsistentCanonicalIndex(t *testing.T) {
	// Two 12-bit codes: deeper than the primary table (tb caps at 11),
	// so every symbol resolves through the canonical walk.
	tb := &Table{syms: []uint32{7, 9}, lens: []uint8{12, 12}, maxLen: 12}
	if err := tb.finishDecoder(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the per-length index base so the walk computes an index
	// outside syms.
	tb.firstIndex[12] = 99
	out := make([]uint32, 1)
	expectErr(t, tb.DecodeChunk([]byte{0x00, 0x00}, out), "inconsistent canonical index")
}
