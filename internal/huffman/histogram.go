package huffman

// Histogram accumulates symbol frequencies incrementally. The streaming
// compression path cannot hold a whole section's symbol stream in memory,
// so instead of handing BuildTable one giant slice it Observes each
// region's symbols as they are produced and builds the table once at the
// end. Totals are plain sums, so a Histogram fed the same multiset of
// symbols in any observation order yields — via TableFromHistogram — a
// table bit-identical to BuildTable over the concatenated stream.
//
// A Histogram is not safe for concurrent use; the streaming pipeline
// observes from its serial emit stage only.
type Histogram struct {
	dense []uint64
	rest  map[uint32]uint64
	total uint64
}

// Observe adds one occurrence of every symbol in syms.
func (h *Histogram) Observe(syms []uint32) {
	for _, s := range syms {
		if s < denseSyms {
			if int(s) >= len(h.dense) {
				grown := make([]uint64, int(s)+1)
				copy(grown, h.dense)
				h.dense = grown
			}
			h.dense[s]++
		} else {
			if h.rest == nil {
				h.rest = make(map[uint32]uint64)
			}
			h.rest[s]++
		}
	}
	h.total += uint64(len(syms))
}

// Total reports the number of symbols observed so far.
func (h *Histogram) Total() uint64 { return h.total }

// TableFromHistogram builds the canonical codebook for the observed
// frequencies. The construction tail is shared with BuildTableCtx, so the
// result is bit-identical to BuildTable over any stream with the same
// per-symbol totals. An empty histogram yields the valid empty table.
func TableFromHistogram(h *Histogram) *Table {
	if h.total == 0 {
		return &Table{}
	}
	return tableFromMerged(h.dense, h.rest)
}
