package critical

import (
	"tspsz/internal/field"
	"tspsz/internal/robust"
)

// ExtractSoS2D extracts critical points of a 2D field with the
// sign-of-determinant predicate under Simulation of Simplicity [46], the
// detection scheme cpSZ-sos preserves. A cell contains a critical point
// exactly when the three barycentric determinant signs agree; SoS
// perturbation makes every sign decision nonzero and globally consistent,
// so a critical point lying exactly on a shared face is claimed by exactly
// one of the adjacent cells — unlike the numerical extractor, which
// reports it in both.
func ExtractSoS2D(f *field.Field) []Point {
	if f.Dim() != 2 {
		panic("critical: ExtractSoS2D requires a 2D field")
	}
	var pts []Point
	nc := f.Grid.NumCells()
	var vbuf [4]int
	for c := 0; c < nc; c++ {
		vs := f.Grid.CellVertices(c, vbuf[:0])
		if !cellHasCPSoS(f, vs) {
			continue
		}
		pts = append(pts, memberPoint(f, c, 2))
	}
	return pts
}

// memberPoint recovers position and classification for a cell whose SoS
// membership already holds — the numerical solver when it converges, else
// the cell centroid. For face-degenerate points the numerical μ may sit
// exactly on the boundary, which is fine for positions; membership is the
// SoS predicate's decision alone. Shared by the float- and fixed-point SoS
// extractors.
func memberPoint(f *field.Field, c, dim int) Point {
	if pt, ok := ExtractCell(f, c); ok {
		return pt
	}
	// Membership held under SoS but the numerical test rejected it
	// (boundary rounding): synthesize the point at the cell centroid.
	var pbuf [4][3]float64
	ps := f.Grid.CellVerticesPositions(c, pbuf[:0])
	var pos [3]float64
	for _, p := range ps {
		for d := 0; d < 3; d++ {
			pos[d] += p[d] / float64(len(ps))
		}
	}
	pt := Point{Cell: c, Pos: pos}
	if J, ok := CellJacobian(f, c); ok {
		pt.Jacobian = J
		classify(&pt, dim)
	} else {
		pt.Type = Degenerate
	}
	return pt
}

// cellHasCPSoS evaluates the three SoS determinant signs of Eq. 2.
func cellHasCPSoS(f *field.Field, vs []int) bool {
	u := [3]float64{float64(f.U[vs[0]]), float64(f.U[vs[1]]), float64(f.U[vs[2]])}
	v := [3]float64{float64(f.V[vs[0]]), float64(f.V[vs[1]]), float64(f.V[vs[2]])}
	// m0 = det(V1, V2), m1 = det(V2, V0), m2 = det(V0, V1), all with the
	// global vertex indices driving the SoS perturbation order.
	s0 := robust.SoSDetSign2(u[1], v[1], vs[1], u[2], v[2], vs[2])
	s1 := robust.SoSDetSign2(u[2], v[2], vs[2], u[0], v[0], vs[0])
	s2 := robust.SoSDetSign2(u[0], v[0], vs[0], u[1], v[1], vs[1])
	return s0 == s1 && s1 == s2
}
