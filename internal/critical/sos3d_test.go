package critical

import (
	"testing"

	"tspsz/internal/field"
)

// A 3D critical point exactly on the main diagonal of a cube is shared by
// all six Kuhn tetrahedra: the numerical extractor reports it many times,
// SoS exactly once.
func TestExtractSoS3DDeduplicatesDiagonalCP(t *testing.T) {
	f := field.New3D(7, 7, 7)
	fill3D(f, func(x, y, z float64) (float64, float64, float64) {
		return x - 3.25, y - 3.25, z - 3.25 // exactly on the cube diagonal
	})
	numeric := Extract(f)
	sos := ExtractSoS3D(f)
	if len(numeric) < 2 {
		t.Skipf("numerical extractor found %d; diagonal placement did not collide", len(numeric))
	}
	if len(sos) != 1 {
		t.Fatalf("SoS found %d critical points, want 1 (numeric found %d)", len(sos), len(numeric))
	}
	if sos[0].Type != Source {
		t.Errorf("type %v, want source", sos[0].Type)
	}
}

func TestExtractSoS3DMatchesNumericGeneric(t *testing.T) {
	f := field.New3D(10, 9, 8)
	fill3D(f, func(x, y, z float64) (float64, float64, float64) {
		return x - 4.31, 1.4 * (y - 3.94), -0.7 * (z - 3.57)
	})
	numeric := Extract(f)
	sos := ExtractSoS3D(f)
	if len(numeric) != len(sos) {
		t.Fatalf("numeric %d vs SoS %d", len(numeric), len(sos))
	}
	for i := range numeric {
		if numeric[i].Cell != sos[i].Cell {
			t.Fatalf("cp %d cell differs", i)
		}
	}
}

func TestExtractSoS3DUniformNoCP(t *testing.T) {
	f := field.New3D(6, 6, 6)
	fill3D(f, func(x, y, z float64) (float64, float64, float64) { return 1, 0.5, -0.2 })
	if pts := ExtractSoS3D(f); len(pts) != 0 {
		t.Fatalf("uniform 3D flow: SoS found %d", len(pts))
	}
}

func TestExtractSoS3DPanicsOn2D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 2D input")
		}
	}()
	ExtractSoS3D(field.New2D(4, 4))
}
