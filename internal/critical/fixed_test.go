package critical

import (
	"testing"

	"tspsz/internal/datagen"
	"tspsz/internal/field"
)

// samePoints asserts two extractions found the same cells with the same
// classifications, in the same deterministic order.
func samePoints(t *testing.T, name string, want, got []Point) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d critical points", name, len(want), len(got))
	}
	for i := range want {
		if want[i].Cell != got[i].Cell {
			t.Fatalf("%s point %d: cell %d vs %d", name, i, want[i].Cell, got[i].Cell)
		}
		if want[i].Type != got[i].Type {
			t.Fatalf("%s point %d (cell %d): type %v vs %v", name, i, want[i].Cell, want[i].Type, got[i].Type)
		}
	}
}

// TestFixedSoSMatchesFloatSoSOnDatagen is the exhaustive equivalence run:
// on every datagen suite, every cell's fixed-point SoS membership decision
// must agree with the float SoS path — same cells, same classifications.
func TestFixedSoSMatchesFloatSoSOnDatagen(t *testing.T) {
	for _, name := range datagen.Names() {
		t.Run(name, func(t *testing.T) {
			f, err := datagen.ByName(name, 0.125)
			if err != nil {
				t.Fatal(err)
			}
			var float []Point
			if f.Dim() == 2 {
				float = ExtractSoS2D(f)
			} else {
				float = ExtractSoS3D(f)
			}
			fixed := ExtractSoSFixed(f)
			samePoints(t, name, float, fixed)
			if len(fixed) == 0 {
				t.Fatalf("%s: no critical points extracted — vacuous equivalence", name)
			}
			// Membership must also agree cell by cell, not just on the
			// members: sweep every cell through both predicates.
			fx := NewFixedField(f)
			nc := f.Grid.NumCells()
			var vbuf [4]int
			for c := 0; c < nc; c++ {
				vs := f.Grid.CellVertices(c, vbuf[:0])
				var fl bool
				if f.Dim() == 2 {
					fl = cellHasCPSoS(f, vs)
				} else {
					fl = cellHasCPSoS3D(f, vs)
				}
				if fi := fx.CellHasCP(vs); fi != fl {
					t.Fatalf("%s cell %d: fixed membership %v, float %v", name, c, fi, fl)
				}
			}
		})
	}
}

// A critical point exactly on the diagonal shared by two triangles is
// claimed by exactly one cell under fixed-point SoS, matching the float
// SoS behavior (and unlike the numerical extractor, which reports both).
func TestFixedSoSDeduplicatesFaceCP(t *testing.T) {
	f := field.New2D(9, 9)
	fill2D(f, func(x, y float64) (float64, float64) { return x - 4.25, y - 4.25 })
	float := ExtractSoS2D(f)
	fixed := ExtractSoSFixed(f)
	samePoints(t, "face-degenerate", float, fixed)
	if len(fixed) != 1 {
		t.Fatalf("fixed SoS found %d critical points, want exactly 1", len(fixed))
	}
	if fixed[0].Type != Source {
		t.Errorf("fixed SoS cp type %v, want source", fixed[0].Type)
	}
}

// Quantization must be exact for power-of-two data (float32 in, power-of-
// two scale): the FixedField round-trips values bit-for-bit.
func TestFixedFieldExactForDyadicData(t *testing.T) {
	f := field.New2D(4, 4)
	for i := range f.U {
		f.U[i] = float32(i) - 7.5 // dyadic values
		f.V[i] = float32(i)*0.25 - 1
	}
	fx := NewFixedField(f)
	for i := range f.U {
		if got, want := float64(fx.U[i])/fx.Scale, float64(f.U[i]); got != want {
			t.Fatalf("U[%d]: quantized %v, want %v (scale %v)", i, got, want, fx.Scale)
		}
		if got, want := float64(fx.V[i])/fx.Scale, float64(f.V[i]); got != want {
			t.Fatalf("V[%d]: quantized %v, want %v (scale %v)", i, got, want, fx.Scale)
		}
	}
}
