package critical

import (
	"math"
	"math/rand"
	"testing"

	"tspsz/internal/field"
)

// fill2D samples an analytic vector field onto f, with the field evaluated
// at lattice positions shifted so features land at chosen spots.
func fill2D(f *field.Field, fn func(x, y float64) (float64, float64)) {
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		u, v := fn(p[0], p[1])
		f.U[idx] = float32(u)
		f.V[idx] = float32(v)
	}
}

func fill3D(f *field.Field, fn func(x, y, z float64) (float64, float64, float64)) {
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		u, v, w := fn(p[0], p[1], p[2])
		f.U[idx] = float32(u)
		f.V[idx] = float32(v)
		f.W[idx] = float32(w)
	}
}

// A pure source field V = (x-c, y-c) has exactly one critical point at c.
func TestExtractSource2D(t *testing.T) {
	f := field.New2D(9, 9)
	const cx, cy = 4.3, 4.2
	fill2D(f, func(x, y float64) (float64, float64) { return x - cx, y - cy })
	pts := Extract(f)
	if len(pts) != 1 {
		t.Fatalf("found %d critical points, want 1", len(pts))
	}
	p := pts[0]
	if p.Type != Source {
		t.Errorf("type = %v, want source", p.Type)
	}
	if math.Abs(p.Pos[0]-cx) > 1e-5 || math.Abs(p.Pos[1]-cy) > 1e-5 {
		t.Errorf("position %v, want (%v,%v)", p.Pos, cx, cy)
	}
	if p.Spiral {
		t.Error("radial source misclassified as spiral")
	}
}

func TestExtractSink2D(t *testing.T) {
	f := field.New2D(9, 9)
	fill2D(f, func(x, y float64) (float64, float64) { return -(x - 4), -(y - 4) })
	pts := Extract(f)
	if len(pts) == 0 || pts[0].Type != Sink {
		t.Fatalf("want one sink, got %v", pts)
	}
}

func TestExtractSpiralSink2D(t *testing.T) {
	f := field.New2D(9, 9)
	// V = ((-0.2(x-4) - (y-4)), (x-4) - 0.2(y-4)): spiral sink.
	fill2D(f, func(x, y float64) (float64, float64) {
		return -0.2*(x-4.3) - (y - 4.2), (x - 4.3) - 0.2*(y-4.2)
	})
	pts := Extract(f)
	if len(pts) != 1 {
		t.Fatalf("found %d critical points, want 1", len(pts))
	}
	if pts[0].Type != Sink || !pts[0].Spiral {
		t.Errorf("got %v spiral=%v, want spiral sink", pts[0].Type, pts[0].Spiral)
	}
}

func TestExtractSaddle2D(t *testing.T) {
	f := field.New2D(9, 9)
	fill2D(f, func(x, y float64) (float64, float64) { return x - 4.5, -(y - 4.5) })
	pts := Extract(f)
	// The saddle sits on a cell edge crossing; extraction may find it in
	// one or two adjacent cells. At least one must be a saddle.
	var saddle *Point
	for i := range pts {
		if pts[i].Type == Saddle {
			saddle = &pts[i]
		}
	}
	if saddle == nil {
		t.Fatalf("no saddle found in %v", pts)
	}
	if math.Abs(saddle.Pos[0]-4.5) > 1e-5 || math.Abs(saddle.Pos[1]-4.5) > 1e-5 {
		t.Errorf("saddle at %v, want (4.5,4.5)", saddle.Pos)
	}
	if len(saddle.SeedDirs) != 2 || len(saddle.SeedSigns) != 2 {
		t.Fatalf("saddle has %d seed dirs, want 2", len(saddle.SeedDirs))
	}
	// For this diagonal field the unstable direction is x, stable is y.
	for i, d := range saddle.SeedDirs {
		sign := saddle.SeedSigns[i]
		if sign == 1 && math.Abs(math.Abs(d[0])-1) > 1e-9 {
			t.Errorf("unstable dir %v, want ±x", d)
		}
		if sign == -1 && math.Abs(math.Abs(d[1])-1) > 1e-9 {
			t.Errorf("stable dir %v, want ±y", d)
		}
	}
}

func TestExtractNoCP(t *testing.T) {
	f := field.New2D(8, 8)
	fill2D(f, func(x, y float64) (float64, float64) { return 1, 0.5 }) // uniform flow
	if pts := Extract(f); len(pts) != 0 {
		t.Fatalf("uniform flow has %d critical points, want 0", len(pts))
	}
}

func TestExtractSource3D(t *testing.T) {
	f := field.New3D(7, 7, 7)
	fill3D(f, func(x, y, z float64) (float64, float64, float64) {
		return x - 3.2, y - 3.4, z - 3.6
	})
	pts := Extract(f)
	if len(pts) != 1 {
		t.Fatalf("found %d critical points, want 1", len(pts))
	}
	p := pts[0]
	if p.Type != Source {
		t.Errorf("type %v, want source", p.Type)
	}
	want := [3]float64{3.2, 3.4, 3.6}
	for d := 0; d < 3; d++ {
		if math.Abs(p.Pos[d]-want[d]) > 1e-5 {
			t.Errorf("position %v, want %v", p.Pos, want)
		}
	}
}

func TestExtractSaddle3D(t *testing.T) {
	f := field.New3D(7, 7, 7)
	fill3D(f, func(x, y, z float64) (float64, float64, float64) {
		return x - 3.3, 1.5 * (y - 3.45), -2 * (z - 3.6)
	})
	pts := Extract(f)
	if len(pts) != 1 {
		t.Fatalf("found %d critical points, want 1", len(pts))
	}
	p := pts[0]
	if p.Type != Saddle {
		t.Fatalf("type %v, want saddle", p.Type)
	}
	if len(p.SeedDirs) != 3 {
		t.Fatalf("3D saddle has %d seed dirs, want 3", len(p.SeedDirs))
	}
	fwd, bwd := 0, 0
	for _, s := range p.SeedSigns {
		if s == 1 {
			fwd++
		} else {
			bwd++
		}
	}
	if fwd != 2 || bwd != 1 {
		t.Errorf("seed signs %v, want two forward one backward", p.SeedSigns)
	}
}

func TestExtractSpiralSaddle3DSeedsPlane(t *testing.T) {
	f := field.New3D(7, 7, 7)
	// Spiral in xy (unstable), contracting in z: eigenvalues 0.3±i, -1.
	fill3D(f, func(x, y, z float64) (float64, float64, float64) {
		dx, dy, dz := x-3.3, y-3.45, z-3.6
		return 0.3*dx - dy, dx + 0.3*dy, -dz
	})
	pts := Extract(f)
	if len(pts) != 1 {
		t.Fatalf("found %d, want 1", len(pts))
	}
	p := pts[0]
	if p.Type != Saddle || !p.Spiral {
		t.Fatalf("got %v spiral=%v, want spiral saddle", p.Type, p.Spiral)
	}
	if len(p.SeedDirs) != 3 {
		t.Fatalf("spiral saddle has %d seeds, want 3 (1 real + plane pair)", len(p.SeedDirs))
	}
}

// Barycentric3D must agree with direct linear solution of the zero-crossing
// system.
func TestBarycentric3DAgainstSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		var v [4][3]float64
		for i := range v {
			for d := 0; d < 3; d++ {
				v[i][d] = rng.NormFloat64()
			}
		}
		d4, M := Barycentric3D(v)
		if math.Abs(M) < 1e-6 {
			continue
		}
		// Verify Σ_k (d_k/M)·v_k == 0 and Σ_k d_k/M == 1.
		var r [3]float64
		sum := 0.0
		for k := 0; k < 4; k++ {
			mu := d4[k] / M
			sum += mu
			for c := 0; c < 3; c++ {
				r[c] += mu * v[k][c]
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("barycentric sum %v != 1", sum)
		}
		for c := 0; c < 3; c++ {
			if math.Abs(r[c]) > 1e-8*(1+math.Abs(M)) {
				t.Fatalf("trial %d: residual %v for v=%v", trial, r, v)
			}
		}
	}
}

func TestBarycentric2DZeroReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 300; trial++ {
		var v [3][2]float64
		for i := range v {
			v[i][0] = rng.NormFloat64()
			v[i][1] = rng.NormFloat64()
		}
		m, M := Barycentric2D(v)
		if math.Abs(M) < 1e-6 {
			continue
		}
		var ru, rv float64
		for k := 0; k < 3; k++ {
			mu := m[k] / M
			ru += mu * v[k][0]
			rv += mu * v[k][1]
		}
		if math.Abs(ru) > 1e-9 || math.Abs(rv) > 1e-9 {
			t.Fatalf("trial %d: residual (%v,%v)", trial, ru, rv)
		}
	}
}

// The Jacobian of a linear field must be recovered exactly in every cell.
func TestCellJacobianLinearField(t *testing.T) {
	f := field.New3D(4, 4, 4)
	J := [9]float64{1, 2, -1, 0.5, -3, 2, 4, 0, 1}
	fill3D(f, func(x, y, z float64) (float64, float64, float64) {
		return J[0]*x + J[1]*y + J[2]*z, J[3]*x + J[4]*y + J[5]*z, J[6]*x + J[7]*y + J[8]*z
	})
	for c := 0; c < f.Grid.NumCells(); c++ {
		got, ok := CellJacobian(f, c)
		if !ok {
			t.Fatalf("cell %d: Jacobian failed", c)
		}
		for i := range J {
			if math.Abs(got[i]-J[i]) > 1e-4 {
				t.Fatalf("cell %d: J[%d] = %v, want %v", c, i, got[i], J[i])
			}
		}
	}
}

// Extraction must be stable: ExtractRange over a partition equals Extract.
func TestExtractRangePartition(t *testing.T) {
	f := field.New2D(16, 16)
	rng := rand.New(rand.NewSource(12))
	for i := range f.U {
		f.U[i] = rng.Float32()*2 - 1
		f.V[i] = rng.Float32()*2 - 1
	}
	all := Extract(f)
	nc := f.Grid.NumCells()
	var parts []Point
	for lo := 0; lo < nc; lo += 37 {
		hi := lo + 37
		if hi > nc {
			hi = nc
		}
		parts = append(parts, ExtractRange(f, lo, hi)...)
	}
	if len(all) != len(parts) {
		t.Fatalf("partitioned extraction found %d points, serial %d", len(parts), len(all))
	}
	for i := range all {
		if all[i].Cell != parts[i].Cell || all[i].Type != parts[i].Type {
			t.Fatalf("mismatch at %d: %+v vs %+v", i, all[i], parts[i])
		}
	}
}

func TestCountSaddles(t *testing.T) {
	pts := []Point{{Type: Saddle}, {Type: Source}, {Type: Saddle}, {Type: Sink}}
	if got := CountSaddles(pts); got != 2 {
		t.Errorf("CountSaddles = %d, want 2", got)
	}
}

func TestTypeString(t *testing.T) {
	for ty, want := range map[Type]string{Source: "source", Sink: "sink", Saddle: "saddle", Degenerate: "degenerate"} {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
}

// Seed directions must actually be eigen-directions of the Jacobian.
func TestSaddleSeedDirsAreEigenvectors(t *testing.T) {
	f := field.New2D(9, 9)
	fill2D(f, func(x, y float64) (float64, float64) {
		return 2*(x-4.3) + (y - 4.3), (x - 4.3) - 1.5*(y-4.3)
	})
	pts := Extract(f)
	var saddle *Point
	for i := range pts {
		if pts[i].Type == Saddle {
			saddle = &pts[i]
		}
	}
	if saddle == nil {
		t.Fatal("no saddle")
	}
	for i, d := range saddle.SeedDirs {
		// J d must be parallel to d.
		jx := saddle.Jacobian[0]*d[0] + saddle.Jacobian[1]*d[1]
		jy := saddle.Jacobian[3]*d[0] + saddle.Jacobian[4]*d[1]
		crossZ := jx*d[1] - jy*d[0]
		if math.Abs(crossZ) > 1e-8 {
			t.Errorf("seed %d: J d not parallel to d (cross=%v)", i, crossZ)
		}
	}
}
