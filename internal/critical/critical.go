// Package critical extracts and classifies the critical points of
// piecewise-linear vector fields (§III-B of the paper). A critical point is
// a location where the interpolated field vanishes; inside a simplex this
// reduces to a barycentric linear solve (Eq. 2). Points are classified by
// the eigenvalues of the per-cell Jacobian (sources, sinks, saddles, and
// their spiraling variants), and saddles carry the eigen-directions used to
// seed separatrices.
package critical

import (
	"math"

	"tspsz/internal/field"
	"tspsz/internal/mat"
)

// Type categorizes a critical point by the local flow behaviour.
type Type int

const (
	// Degenerate marks a numerically singular Jacobian or a center
	// (purely imaginary eigenvalues); no separatrices are seeded.
	Degenerate Type = iota
	// Source repels in all directions (all eigenvalue real parts > 0).
	Source
	// Sink attracts in all directions (all eigenvalue real parts < 0).
	Sink
	// Saddle has mixed-sign eigenvalues. In 3D this covers both 1:2 and
	// 2:1 sign splits; SaddleKind distinguishes them.
	Saddle
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Source:
		return "source"
	case Sink:
		return "sink"
	case Saddle:
		return "saddle"
	default:
		return "degenerate"
	}
}

// Point is one extracted critical point.
type Point struct {
	Cell int        // simplex containing the point
	Pos  [3]float64 // spatial position (z = 0 in 2D)
	Type Type
	// Spiral is set when the Jacobian has a complex eigenvalue pair
	// (rotating local behaviour).
	Spiral bool
	// Jacobian is the row-major per-cell Jacobian; 2D fields use the
	// top-left 2×2 block.
	Jacobian [9]float64
	// Eigs holds the Jacobian eigenvalues (2 entries in 2D, 3 in 3D).
	Eigs []mat.Eigen
	// SeedDirs are the unit directions along which separatrices are
	// seeded (saddles only): 2 directions in 2D (unstable, stable), 3 in
	// 3D. SeedSigns[i] is +1 to integrate forward along SeedDirs[i]
	// (unstable direction), -1 for backward (stable direction).
	SeedDirs  [][3]float64
	SeedSigns []int
}

// Barycentric2D returns the barycentric numerators (m0, m1, m2) and their
// sum M for a triangle with vertex vectors v0, v1, v2 (Eq. 2). The
// barycentric coordinate of vertex k is m[k]/M. The cyclic convention is
// m0 = det(v1, v2), m1 = det(v2, v0), m2 = det(v0, v1).
func Barycentric2D(v [3][2]float64) (m [3]float64, M float64) {
	m[0] = mat.Det2(v[1][0], v[2][0], v[1][1], v[2][1])
	m[1] = mat.Det2(v[2][0], v[0][0], v[2][1], v[0][1])
	m[2] = mat.Det2(v[0][0], v[1][0], v[0][1], v[1][1])
	return m, m[0] + m[1] + m[2]
}

// Barycentric3D returns the barycentric numerators (d0..d3) and their sum M
// for a tetrahedron with vertex vectors v0..v3. The barycentric coordinate
// of vertex k is d[k]/M, with d_k = (-1)^(k+1) · det3 of the remaining
// vertex vectors as columns in index order.
func Barycentric3D(v [4][3]float64) (d [4]float64, M float64) {
	det := func(a, b, c [3]float64) float64 {
		return mat.Det3([9]float64{
			a[0], b[0], c[0],
			a[1], b[1], c[1],
			a[2], b[2], c[2],
		})
	}
	d[0] = -det(v[1], v[2], v[3])
	d[1] = det(v[0], v[2], v[3])
	d[2] = -det(v[0], v[1], v[3])
	d[3] = det(v[0], v[1], v[2])
	return d, d[0] + d[1] + d[2] + d[3]
}

// CellHasCP reports whether cell c of f contains a critical point,
// i.e. whether all barycentric coordinates of the zero of the linear
// interpolant lie in [0, 1].
func CellHasCP(f *field.Field, c int) bool {
	_, ok := solveCell(f, c)
	return ok
}

// solveCell solves Eq. 2 for cell c, returning the barycentric coordinates
// of the critical point. ok is false when there is no critical point in the
// cell or the cell is degenerate (M == 0).
func solveCell(f *field.Field, c int) (bc [4]float64, ok bool) {
	var vbuf [4]int
	vs := f.Grid.CellVertices(c, vbuf[:0])
	if f.Dim() == 2 {
		var v [3][2]float64
		for i, vi := range vs {
			v[i][0] = float64(f.U[vi])
			v[i][1] = float64(f.V[vi])
		}
		m, M := Barycentric2D(v)
		//lint:allow floatcmp exact-zero division guard: a near-zero M yields barycentric coords outside [0,1], rejected below
		if M == 0 {
			return bc, false
		}
		for k := 0; k < 3; k++ {
			bc[k] = m[k] / M
			if bc[k] < 0 || bc[k] > 1 {
				return bc, false
			}
		}
		return bc, true
	}
	var v [4][3]float64
	for i, vi := range vs {
		v[i][0] = float64(f.U[vi])
		v[i][1] = float64(f.V[vi])
		v[i][2] = float64(f.W[vi])
	}
	d, M := Barycentric3D(v)
	//lint:allow floatcmp exact-zero division guard: a near-zero M yields barycentric coords outside [0,1], rejected below
	if M == 0 {
		return bc, false
	}
	for k := 0; k < 4; k++ {
		bc[k] = d[k] / M
		if bc[k] < 0 || bc[k] > 1 {
			return bc, false
		}
	}
	return bc, true
}

// CellJacobian computes the (constant) Jacobian of the linear interpolant
// on cell c, row-major. ok is false for degenerate cell geometry, which
// cannot happen for the regular simplicial grids in this package but is
// reported defensively.
func CellJacobian(f *field.Field, c int) (J [9]float64, ok bool) {
	var vbuf [4]int
	vs := f.Grid.CellVertices(c, vbuf[:0])
	var pos [4][3]float64
	ps := f.Grid.CellVerticesPositions(c, pos[:0])
	if f.Dim() == 2 {
		// Field is linear: comp(x) = a + g·x. Solve the 2×2 edge system
		// for each component's gradient g.
		e1 := [2]float64{ps[1][0] - ps[0][0], ps[1][1] - ps[0][1]}
		e2 := [2]float64{ps[2][0] - ps[0][0], ps[2][1] - ps[0][1]}
		for comp, vals := range [][]float32{f.U, f.V} {
			d1 := float64(vals[vs[1]] - vals[vs[0]])
			d2 := float64(vals[vs[2]] - vals[vs[0]])
			gx, gy, sOK := mat.Solve2(e1[0], e1[1], e2[0], e2[1], d1, d2)
			if !sOK {
				return J, false
			}
			J[comp*3] = gx
			J[comp*3+1] = gy
		}
		J[8] = 0
		return J, true
	}
	var em [9]float64
	for r := 0; r < 3; r++ {
		for cc := 0; cc < 3; cc++ {
			em[r*3+cc] = ps[r+1][cc] - ps[0][cc]
		}
	}
	for comp, vals := range [][]float32{f.U, f.V, f.W} {
		var b [3]float64
		for r := 0; r < 3; r++ {
			b[r] = float64(vals[vs[r+1]] - vals[vs[0]])
		}
		g, sOK := mat.Solve3(em, b)
		if !sOK {
			return J, false
		}
		J[comp*3] = g[0]
		J[comp*3+1] = g[1]
		J[comp*3+2] = g[2]
	}
	return J, true
}

// ExtractCell extracts the critical point of cell c if one exists.
func ExtractCell(f *field.Field, c int) (Point, bool) {
	bc, ok := solveCell(f, c)
	if !ok {
		return Point{}, false
	}
	var pbuf [4][3]float64
	ps := f.Grid.CellVerticesPositions(c, pbuf[:0])
	var pos [3]float64
	for i, p := range ps {
		for d := 0; d < 3; d++ {
			pos[d] += bc[i] * p[d]
		}
	}
	pt := Point{Cell: c, Pos: pos}
	J, jok := CellJacobian(f, c)
	if !jok {
		pt.Type = Degenerate
		return pt, true
	}
	pt.Jacobian = J
	classify(&pt, f.Dim())
	return pt, true
}

// classify fills Type, Spiral, Eigs, and saddle seed directions from the
// Jacobian.
func classify(pt *Point, dim int) {
	const eps = 1e-12
	if dim == 2 {
		ev := mat.Eigen2(pt.Jacobian[0], pt.Jacobian[1], pt.Jacobian[3], pt.Jacobian[4])
		pt.Eigs = []mat.Eigen{ev[0], ev[1]}
	} else {
		ev := mat.Eigen3(pt.Jacobian)
		pt.Eigs = []mat.Eigen{ev[0], ev[1], ev[2]}
	}
	npos, nneg := 0, 0
	for _, e := range pt.Eigs {
		//lint:allow floatcmp mat.Eigen sets Im to exactly 0 on the real-root branch; this reads that tag back
		if e.Im != 0 {
			pt.Spiral = true
		}
		switch {
		case e.Re > eps:
			npos++
		case e.Re < -eps:
			nneg++
		}
	}
	switch {
	case npos+nneg < len(pt.Eigs):
		pt.Type = Degenerate // zero real part: center or line singularity
	case nneg == 0:
		pt.Type = Source
	case npos == 0:
		pt.Type = Sink
	default:
		pt.Type = Saddle
		pt.computeSeeds(dim)
	}
}

// computeSeeds derives the separatrix seed directions of a saddle: the
// eigen-directions of the Jacobian, integrated forward for positive
// eigenvalues (unstable manifold) and backward for negative ones (stable
// manifold). Complex pairs in 3D contribute their invariant plane via two
// orthonormal in-plane directions (a pragmatic substitution documented in
// DESIGN.md that keeps the paper's 6-separatrices-per-3D-saddle count).
func (pt *Point) computeSeeds(dim int) {
	if dim == 2 {
		a, b, c, d := pt.Jacobian[0], pt.Jacobian[1], pt.Jacobian[3], pt.Jacobian[4]
		for _, e := range pt.Eigs {
			v, ok := mat.EigenVector2(a, b, c, d, e.Re)
			if !ok {
				continue
			}
			sign := 1
			if e.Re < 0 {
				sign = -1
			}
			pt.SeedDirs = append(pt.SeedDirs, [3]float64{v[0], v[1], 0})
			pt.SeedSigns = append(pt.SeedSigns, sign)
		}
		return
	}
	var realDir [3]float64
	haveComplex := false
	var complexSign int
	for _, e := range pt.Eigs {
		//lint:allow floatcmp mat.Eigen sets Im to exactly 0 on the real-root branch; this reads that tag back
		if e.Im != 0 {
			if e.Im > 0 { // one entry per conjugate pair
				haveComplex = true
				complexSign = 1
				if e.Re < 0 {
					complexSign = -1
				}
			}
			continue
		}
		v, ok := mat.EigenVector3(pt.Jacobian, e.Re)
		if !ok {
			continue
		}
		sign := 1
		if e.Re < 0 {
			sign = -1
		}
		pt.SeedDirs = append(pt.SeedDirs, v)
		pt.SeedSigns = append(pt.SeedSigns, sign)
		realDir = v
	}
	if haveComplex {
		// Span the invariant plane with two directions orthogonal to the
		// real eigen-direction.
		u1, u2 := orthonormalComplement(realDir)
		pt.SeedDirs = append(pt.SeedDirs, u1, u2)
		pt.SeedSigns = append(pt.SeedSigns, complexSign, complexSign)
	}
}

// orthonormalComplement returns two unit vectors orthogonal to v and to
// each other.
func orthonormalComplement(v [3]float64) (a, b [3]float64) {
	n := math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
	if n < 1e-14 {
		return [3]float64{1, 0, 0}, [3]float64{0, 1, 0}
	}
	w := [3]float64{v[0] / n, v[1] / n, v[2] / n}
	ref := [3]float64{1, 0, 0}
	if math.Abs(w[0]) > 0.9 {
		ref = [3]float64{0, 1, 0}
	}
	a = [3]float64{
		w[1]*ref[2] - w[2]*ref[1],
		w[2]*ref[0] - w[0]*ref[2],
		w[0]*ref[1] - w[1]*ref[0],
	}
	an := math.Sqrt(a[0]*a[0] + a[1]*a[1] + a[2]*a[2])
	a = [3]float64{a[0] / an, a[1] / an, a[2] / an}
	b = [3]float64{
		w[1]*a[2] - w[2]*a[1],
		w[2]*a[0] - w[0]*a[2],
		w[0]*a[1] - w[1]*a[0],
	}
	return a, b
}

// Extract returns all critical points of f in cell-index order.
func Extract(f *field.Field) []Point {
	var pts []Point
	nc := f.Grid.NumCells()
	for c := 0; c < nc; c++ {
		if pt, ok := ExtractCell(f, c); ok {
			pts = append(pts, pt)
		}
	}
	return pts
}

// ExtractRange returns the critical points of cells [lo, hi), used by the
// parallel extraction driver.
func ExtractRange(f *field.Field, lo, hi int) []Point {
	var pts []Point
	for c := lo; c < hi; c++ {
		if pt, ok := ExtractCell(f, c); ok {
			pts = append(pts, pt)
		}
	}
	return pts
}

// CountSaddles returns the number of saddles in pts.
func CountSaddles(pts []Point) int {
	n := 0
	for _, p := range pts {
		if p.Type == Saddle {
			n++
		}
	}
	return n
}
