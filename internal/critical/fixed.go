package critical

import (
	"math"

	"tspsz/internal/field"
	"tspsz/internal/robust"
)

// FixedField is a vector field quantized to integers with a shared
// power-of-two scale, the representation cpSZ-sos runs its robust
// critical-point test on. Quantizing once up front makes every membership
// decision exact integer arithmetic — no per-cell error certificates and
// no rational fallback — and the struct is read-only after construction,
// so extraction workers share it freely.
type FixedField struct {
	U, V, W []int64 // W nil in 2D
	Scale   float64
}

// NewFixedField quantizes f with the largest power-of-two scale that keeps
// every component inside the fixed predicates' magnitude bound.
func NewFixedField(f *field.Field) *FixedField {
	maxAbs := 0.0
	for _, comp := range f.Components() {
		for _, v := range comp {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
	}
	scale := robust.FixedScale(maxAbs)
	quant := func(src []float32) []int64 {
		out := make([]int64, len(src))
		for i, v := range src {
			out[i] = robust.ToFixed(float64(v), scale)
		}
		return out
	}
	fx := &FixedField{U: quant(f.U), V: quant(f.V), Scale: scale}
	if f.W != nil {
		fx.W = quant(f.W)
	}
	return fx
}

// CellHasCP reports SoS critical-point membership for the cell with global
// vertex indices vs, decided by the fixed-point predicates.
func (fx *FixedField) CellHasCP(vs []int) bool {
	if fx.W == nil {
		return fx.cellHasCP2D(vs)
	}
	return fx.cellHasCP3D(vs)
}

func (fx *FixedField) cellHasCP2D(vs []int) bool {
	s0 := robust.SoSDetSign2Fixed(fx.U[vs[1]], fx.V[vs[1]], vs[1], fx.U[vs[2]], fx.V[vs[2]], vs[2])
	s1 := robust.SoSDetSign2Fixed(fx.U[vs[2]], fx.V[vs[2]], vs[2], fx.U[vs[0]], fx.V[vs[0]], vs[0])
	s2 := robust.SoSDetSign2Fixed(fx.U[vs[0]], fx.V[vs[0]], vs[0], fx.U[vs[1]], fx.V[vs[1]], vs[1])
	return s0 == s1 && s1 == s2
}

func (fx *FixedField) cellHasCP3D(vs []int) bool {
	col := func(slot int) robust.Vec3Fixed {
		vi := vs[slot]
		return robust.Vec3Fixed{U: fx.U[vi], V: fx.V[vi], W: fx.W[vi], Idx: vi}
	}
	var ref int
	for k := 0; k < 4; k++ {
		var cols [3]robust.Vec3Fixed
		ci := 0
		for s := 0; s < 4; s++ {
			if s == k {
				continue
			}
			cols[ci] = col(s)
			ci++
		}
		s := robust.SoSDetSign3Fixed(cols[0], cols[1], cols[2])
		if k%2 == 0 {
			s = -s // the (−1)^(k+1) factor
		}
		if k == 0 {
			ref = s
			continue
		}
		if s != ref {
			return false
		}
	}
	return true
}

// ExtractSoSFixedRange extracts critical points of cells [lo, hi) with
// membership decided by the fixed-point SoS predicates; position and
// classification reuse the numerical solver exactly like the float SoS
// extractors. fx must be NewFixedField(f).
func ExtractSoSFixedRange(f *field.Field, fx *FixedField, lo, hi int) []Point {
	var pts []Point
	var vbuf [4]int
	dim := f.Dim()
	for c := lo; c < hi; c++ {
		vs := f.Grid.CellVertices(c, vbuf[:0])
		if !fx.CellHasCP(vs) {
			continue
		}
		pts = append(pts, memberPoint(f, c, dim))
	}
	return pts
}

// ExtractSoSFixed extracts the critical points of a 2D or 3D field under
// fixed-point Simulation of Simplicity.
func ExtractSoSFixed(f *field.Field) []Point {
	return ExtractSoSFixedRange(f, NewFixedField(f), 0, f.Grid.NumCells())
}
