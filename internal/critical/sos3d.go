package critical

import (
	"tspsz/internal/field"
	"tspsz/internal/robust"
)

// ExtractSoS3D is the tetrahedral analogue of ExtractSoS2D: critical point
// membership decided by the four barycentric determinant signs under
// Simulation of Simplicity, so face- and edge-degenerate points are
// claimed by exactly one tetrahedron.
func ExtractSoS3D(f *field.Field) []Point {
	if f.Dim() != 3 {
		panic("critical: ExtractSoS3D requires a 3D field")
	}
	var pts []Point
	nc := f.Grid.NumCells()
	var vbuf [4]int
	for c := 0; c < nc; c++ {
		vs := f.Grid.CellVertices(c, vbuf[:0])
		if !cellHasCPSoS3D(f, vs) {
			continue
		}
		pts = append(pts, memberPoint(f, c, 3))
	}
	return pts
}

// cellHasCPSoS3D checks that all four signed barycentric determinants
// d_k = (−1)^(k+1)·det3(columns ≠ k) share a sign under SoS.
func cellHasCPSoS3D(f *field.Field, vs []int) bool {
	col := func(slot int) robust.Vec3 {
		vi := vs[slot]
		return robust.Vec3{
			U:   float64(f.U[vi]),
			V:   float64(f.V[vi]),
			W:   float64(f.W[vi]),
			Idx: vi,
		}
	}
	var ref int
	for k := 0; k < 4; k++ {
		var cols [3]robust.Vec3
		ci := 0
		for s := 0; s < 4; s++ {
			if s == k {
				continue
			}
			cols[ci] = col(s)
			ci++
		}
		s := robust.SoSDetSign3(cols[0], cols[1], cols[2])
		if k%2 == 0 {
			s = -s // the (−1)^(k+1) factor
		}
		if k == 0 {
			ref = s
			continue
		}
		if s != ref {
			return false
		}
	}
	return true
}
