package critical

import (
	"testing"

	"tspsz/internal/field"
)

// A critical point placed exactly on the diagonal shared by two triangles
// is reported twice by the numerical extractor but exactly once under SoS.
func TestExtractSoS2DDeduplicatesFaceCP(t *testing.T) {
	f := field.New2D(9, 9)
	// Source exactly at (4.25, 4.25): float32-exact coordinates on the
	// cell diagonal (local coords (0.25, 0.25)... actually on the lower
	// triangle's edge when lx == ly).
	fill2D(f, func(x, y float64) (float64, float64) { return x - 4.25, y - 4.25 })
	numeric := Extract(f)
	sos := ExtractSoS2D(f)
	if len(numeric) < 2 {
		t.Skipf("numerical extractor found %d (placement not on a face on this grid)", len(numeric))
	}
	if len(sos) != 1 {
		t.Fatalf("SoS extractor found %d critical points, want exactly 1 (numeric found %d)",
			len(sos), len(numeric))
	}
	if sos[0].Type != Source {
		t.Errorf("SoS cp type %v, want source", sos[0].Type)
	}
}

// On generic data the two extractors must agree exactly.
func TestExtractSoS2DMatchesNumericGeneric(t *testing.T) {
	f := field.New2D(24, 20)
	fill2D(f, func(x, y float64) (float64, float64) {
		return x - 11.3 + 0.3*(y-9.2), (y - 9.2) - 0.2*(x-11.3)
	})
	numeric := Extract(f)
	sos := ExtractSoS2D(f)
	if len(numeric) != len(sos) {
		t.Fatalf("numeric %d vs SoS %d critical points", len(numeric), len(sos))
	}
	for i := range numeric {
		if numeric[i].Cell != sos[i].Cell || numeric[i].Type != sos[i].Type {
			t.Fatalf("cp %d differs: %+v vs %+v", i, numeric[i], sos[i])
		}
	}
}

func TestExtractSoS2DUniformNoCP(t *testing.T) {
	f := field.New2D(10, 10)
	fill2D(f, func(x, y float64) (float64, float64) { return 1, 0.5 })
	if pts := ExtractSoS2D(f); len(pts) != 0 {
		t.Fatalf("uniform flow: SoS found %d critical points", len(pts))
	}
}

func TestExtractSoS2DPanicsOn3D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 3D input")
		}
	}()
	ExtractSoS2D(field.New3D(4, 4, 4))
}

// Zero-velocity walls (common in ocean data): SoS must not explode the cp
// count in the constant-zero region.
func TestExtractSoS2DZeroWall(t *testing.T) {
	f := field.New2D(16, 16)
	fill2D(f, func(x, y float64) (float64, float64) {
		if x < 4 {
			return 0, 0 // land mask
		}
		return x - 10.3, y - 8.2
	})
	sos := ExtractSoS2D(f)
	// The genuine source must be found; the wall may contribute a bounded
	// number of SoS-perturbed cells along its boundary, not the whole area.
	found := false
	for _, p := range sos {
		if p.Type == Source {
			found = true
		}
	}
	if !found {
		t.Error("genuine source missing under SoS")
	}
	if len(sos) > 80 {
		t.Errorf("zero wall produced %d SoS critical points; tie-breaking looks inconsistent", len(sos))
	}
}
