package skeleton

import (
	"testing"

	"tspsz/internal/integrate"
)

// TestParallelTracingRace exercises the parallel skeleton-tracing path
// with many workers so `go test -race` can observe the dispatcher's memory
// accesses: critical point extraction, saddle tracing, and the parallel
// comparison all run concurrently against shared read-only state.
// It simultaneously pins down determinism: every worker count must
// reproduce the serial skeleton exactly, point for point.
func TestParallelTracingRace(t *testing.T) {
	f := gyreField(21)
	par := integrate.DefaultParams()
	serial := Extract(f, par)

	for _, workers := range []int{2, 3, 8} {
		sk := ExtractParallel(f, par, workers)
		if len(sk.CPs) != len(serial.CPs) {
			t.Fatalf("workers=%d: %d critical points, serial found %d", workers, len(sk.CPs), len(serial.CPs))
		}
		for i := range sk.CPs {
			a, b := &sk.CPs[i], &serial.CPs[i]
			if a.Cell != b.Cell || a.Pos != b.Pos || a.Type != b.Type || a.Spiral != b.Spiral {
				t.Fatalf("workers=%d: critical point %d differs: %+v != %+v", workers, i, a, b)
			}
		}
		if len(sk.Seps) != len(serial.Seps) {
			t.Fatalf("workers=%d: %d separatrices, serial traced %d", workers, len(sk.Seps), len(serial.Seps))
		}
		for i := range sk.Seps {
			a, b := &sk.Seps[i], &serial.Seps[i]
			if a.Saddle != b.Saddle || a.Term != b.Term || len(a.Points) != len(b.Points) {
				t.Fatalf("workers=%d: separatrix %d differs (saddle %d/%d, term %v/%v, %d/%d points)",
					workers, i, a.Saddle, b.Saddle, a.Term, b.Term, len(a.Points), len(b.Points))
			}
			for j := range a.Points {
				if a.Points[j] != b.Points[j] {
					t.Fatalf("workers=%d: separatrix %d point %d differs", workers, i, j)
				}
			}
		}
		// The parallel comparison path must agree with itself under
		// concurrent Fréchet evaluation.
		st := CompareParallel(serial, sk, 1.0, workers)
		if st.Incorrect != 0 || st.MaxF != 0 { //lint:allow floatcmp identical trajectories have exactly zero Fréchet distance
			t.Fatalf("workers=%d: self-comparison reports %d incorrect, maxF %g", workers, st.Incorrect, st.MaxF)
		}
	}
}
