package skeleton

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"

	"tspsz/internal/integrate"
)

func TestWriteVTKStructure(t *testing.T) {
	f := gyreField(17)
	sk := Extract(f, integrate.Params{EpsP: 1e-2, MaxSteps: 60, H: 0.05})
	if len(sk.CPs) == 0 || len(sk.Seps) == 0 {
		t.Fatal("setup: empty skeleton")
	}
	var buf bytes.Buffer
	if err := WriteVTK(&buf, sk); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# vtk DataFile", "DATASET POLYDATA", "POINTS", "VERTICES", "LINES", "POINT_DATA", "SCALARS cp_type"} {
		if !strings.Contains(out, want) {
			t.Fatalf("VTK output missing %q", want)
		}
	}

	// Structural validation: declared point count matches emitted points,
	// and every line index is in range.
	sc := bufio.NewScanner(&buf)
	_ = sc
	lines := strings.Split(out, "\n")
	nPts := -1
	for li, l := range lines {
		if strings.HasPrefix(l, "POINTS ") {
			fields := strings.Fields(l)
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				t.Fatal(err)
			}
			nPts = n
			// The next n lines are coordinates with 3 fields each.
			for p := 1; p <= n; p++ {
				if len(strings.Fields(lines[li+p])) != 3 {
					t.Fatalf("point line %d malformed: %q", p, lines[li+p])
				}
			}
		}
		if strings.HasPrefix(l, "LINES ") {
			fields := strings.Fields(l)
			nLines, _ := strconv.Atoi(fields[1])
			for p := 1; p <= nLines; p++ {
				idx := strings.Fields(lines[li+p])
				cnt, _ := strconv.Atoi(idx[0])
				if cnt != len(idx)-1 {
					t.Fatalf("polyline %d count %d != %d indices", p, cnt, len(idx)-1)
				}
				for _, s := range idx[1:] {
					v, _ := strconv.Atoi(s)
					if v < 0 || v >= nPts {
						t.Fatalf("polyline %d index %d out of range [0,%d)", p, v, nPts)
					}
				}
			}
		}
	}
	if nPts < 0 {
		t.Fatal("no POINTS section")
	}
	want := len(sk.CPs)
	for _, s := range sk.Seps {
		want += len(s.Points)
	}
	if nPts != want {
		t.Fatalf("POINTS %d, want %d", nPts, want)
	}
}

func TestWriteVTKEmptySkeleton(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVTK(&buf, &Skeleton{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "POINTS 0 float") {
		t.Error("empty skeleton should declare zero points")
	}
}
