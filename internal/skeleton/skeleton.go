// Package skeleton ties critical point extraction and separatrix tracing
// together into the topological skeleton of a vector field (§III-B), and
// implements the skeleton comparison metrics of §VIII-B: the number of
// incorrect separatrices and Fréchet distance statistics.
package skeleton

import (
	"context"
	"math"

	"tspsz/internal/critical"
	"tspsz/internal/field"
	"tspsz/internal/frechet"
	"tspsz/internal/integrate"
	"tspsz/internal/parallel"
)

// Skeleton is the topological skeleton: all critical points plus the
// separatrices seeded at saddles.
type Skeleton struct {
	CPs  []critical.Point
	Seps []integrate.Trajectory
}

// NumSaddles reports the number of saddle critical points.
func (s *Skeleton) NumSaddles() int { return critical.CountSaddles(s.CPs) }

// Extract computes the full topological skeleton of f serially.
func Extract(f *field.Field, par integrate.Params) *Skeleton {
	cps := critical.Extract(f)
	return &Skeleton{CPs: cps, Seps: integrate.TraceSeparatrices(f, cps, par, nil)}
}

// ExtractWith traces the separatrices of f using an externally supplied
// critical point set (typically the one extracted from the original data,
// so that separatrices of original and decompressed fields correspond
// index-by-index, "traced from the same location" as in Fig. 1).
func ExtractWith(f *field.Field, cps []critical.Point, par integrate.Params) *Skeleton {
	return &Skeleton{CPs: cps, Seps: integrate.TraceSeparatrices(f, cps, par, nil)}
}

// ExtractParallel computes the skeleton with the embarrassingly parallel
// strategy of §VII: cells are partitioned across workers for critical point
// extraction and saddles are dynamically scheduled for tracing.
func ExtractParallel(f *field.Field, par integrate.Params, workers int) *Skeleton {
	cps := extractCPsParallel(f, workers)
	return &Skeleton{CPs: cps, Seps: traceParallel(f, cps, par, workers)}
}

// ExtractWithParallel is ExtractWith with parallel tracing.
func ExtractWithParallel(f *field.Field, cps []critical.Point, par integrate.Params, workers int) *Skeleton {
	return &Skeleton{CPs: cps, Seps: traceParallel(f, cps, par, workers)}
}

// ExtractParallelCtx is ExtractParallel with cancellation: both the cell
// partition and the saddle tracing check ctx at grain boundaries and the
// extraction is abandoned with the context's error once ctx is done. A nil
// ctx never cancels.
func ExtractParallelCtx(ctx context.Context, f *field.Field, par integrate.Params, workers int) (*Skeleton, error) {
	cps, err := ExtractCPsParallelCtx(ctx, f, workers)
	if err != nil {
		return nil, err
	}
	return ExtractWithParallelCtx(ctx, f, cps, par, workers)
}

// ExtractWithParallelCtx is ExtractWithParallel with cancellation.
func ExtractWithParallelCtx(ctx context.Context, f *field.Field, cps []critical.Point, par integrate.Params, workers int) (*Skeleton, error) {
	seps, err := traceParallelCtx(ctx, f, cps, par, workers)
	if err != nil {
		return nil, err
	}
	return &Skeleton{CPs: cps, Seps: seps}, nil
}

// ExtractCPsParallel extracts only the critical points, cells partitioned
// across workers, in the same deterministic order as critical.Extract.
func ExtractCPsParallel(f *field.Field, workers int) []critical.Point {
	return extractCPsParallel(f, workers)
}

// ExtractCPsParallelRobust is ExtractCPsParallel with cell membership
// decided by the fixed-point Simulation-of-Simplicity predicates: the
// field is quantized once, then the read-only FixedField is shared by all
// extraction workers. Results are deterministic and worker-count
// independent, like the numerical path.
func ExtractCPsParallelRobust(f *field.Field, workers int) []critical.Point {
	fx := critical.NewFixedField(f)
	return gatherCPs(f, workers, func(lo, hi int) []critical.Point {
		return critical.ExtractSoSFixedRange(f, fx, lo, hi)
	})
}

// ExtractCPsParallelCtx is ExtractCPsParallel with cancellation.
func ExtractCPsParallelCtx(ctx context.Context, f *field.Field, workers int) ([]critical.Point, error) {
	return gatherCPsCtx(ctx, f, workers, func(lo, hi int) []critical.Point {
		return critical.ExtractRange(f, lo, hi)
	})
}

// ExtractCPsParallelRobustCtx is ExtractCPsParallelRobust with
// cancellation.
func ExtractCPsParallelRobustCtx(ctx context.Context, f *field.Field, workers int) ([]critical.Point, error) {
	fx := critical.NewFixedField(f)
	return gatherCPsCtx(ctx, f, workers, func(lo, hi int) []critical.Point {
		return critical.ExtractSoSFixedRange(f, fx, lo, hi)
	})
}

func extractCPsParallel(f *field.Field, workers int) []critical.Point {
	return gatherCPs(f, workers, func(lo, hi int) []critical.Point {
		return critical.ExtractRange(f, lo, hi)
	})
}

func gatherCPs(f *field.Field, workers int, extract func(lo, hi int) []critical.Point) []critical.Point {
	nc := f.Grid.NumCells()
	ranges := parallel.Ranges(nc, workers)
	results := make([][]critical.Point, len(ranges))
	// One dispatcher task per deterministic cell range; results are
	// concatenated in range order, matching critical.Extract exactly.
	parallel.For(len(ranges), workers, 1, func(i int) {
		results[i] = extract(ranges[i][0], ranges[i][1])
	})
	var out []critical.Point
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// gatherCPsCtx is gatherCPs under a cancellable dispatcher; the ctx-free
// path stays on parallel.For so its panic behavior is unchanged.
func gatherCPsCtx(ctx context.Context, f *field.Field, workers int, extract func(lo, hi int) []critical.Point) ([]critical.Point, error) {
	nc := f.Grid.NumCells()
	ranges := parallel.Ranges(nc, workers)
	results := make([][]critical.Point, len(ranges))
	if err := parallel.CtxForErr(ctx, len(ranges), workers, 1, func(i int) error {
		results[i] = extract(ranges[i][0], ranges[i][1])
		return nil
	}); err != nil {
		return nil, err
	}
	var out []critical.Point
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}

func traceParallel(f *field.Field, cps []critical.Point, par integrate.Params, workers int) []integrate.Trajectory {
	saddles := make([]int, 0)
	for i, cp := range cps {
		if cp.Type == critical.Saddle {
			saddles = append(saddles, i)
		}
	}
	perSaddle := make([][]integrate.Trajectory, len(saddles))
	loc := integrate.NewCPLocator(cps) // shared, read-only after construction
	parallel.For(len(saddles), workers, 1, func(i int) {
		cp := cps[saddles[i]]
		seeds, dirs, seedIdx := integrate.SeparatrixSeeds(cp, par.EpsP)
		for si := range seeds {
			tr := integrate.Streamline(f, seeds[si], dirs[si], par, loc, nil)
			tr.Saddle = saddles[i]
			tr.SeedIdx = seedIdx[si]
			perSaddle[i] = append(perSaddle[i], tr)
		}
	})
	var out []integrate.Trajectory
	for _, trs := range perSaddle {
		out = append(out, trs...)
	}
	return out
}

// traceParallelCtx is traceParallel under a cancellable dispatcher.
func traceParallelCtx(ctx context.Context, f *field.Field, cps []critical.Point, par integrate.Params, workers int) ([]integrate.Trajectory, error) {
	saddles := make([]int, 0)
	for i, cp := range cps {
		if cp.Type == critical.Saddle {
			saddles = append(saddles, i)
		}
	}
	perSaddle := make([][]integrate.Trajectory, len(saddles))
	loc := integrate.NewCPLocator(cps) // shared, read-only after construction
	if err := parallel.CtxForErr(ctx, len(saddles), workers, 1, func(i int) error {
		cp := cps[saddles[i]]
		seeds, dirs, seedIdx := integrate.SeparatrixSeeds(cp, par.EpsP)
		for si := range seeds {
			tr := integrate.Streamline(f, seeds[si], dirs[si], par, loc, nil)
			tr.Saddle = saddles[i]
			tr.SeedIdx = seedIdx[si]
			perSaddle[i] = append(perSaddle[i], tr)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	var out []integrate.Trajectory
	for _, trs := range perSaddle {
		out = append(out, trs...)
	}
	return out, nil
}

// CheckTraj implements check_traj from Algorithms 3 and 4: trajectories
// match when they terminate compatibly (both absorbed within tau of each
// other's endpoint, or the same non-absorbed termination class) and their
// discrete Fréchet distance is at most tau.
func CheckTraj(a, b *integrate.Trajectory, tau float64) bool {
	aAbs := a.Term == integrate.AbsorbedAtCP
	bAbs := b.Term == integrate.AbsorbedAtCP
	if aAbs != bAbs {
		return false
	}
	if aAbs && a.EndCP != b.EndCP {
		// Ending at a different critical point is a different topological
		// structure even if the curves stay close.
		return false
	}
	return frechet.WithinTol(a.Points, b.Points, tau)
}

// Stats summarizes a skeleton comparison (Tables IV–VII).
type Stats struct {
	// Total is the number of separatrix pairs compared.
	Total int
	// Incorrect is the #IS metric: pairs failing CheckTraj.
	Incorrect int
	// MinF/MaxF/MeanF/StdF aggregate the discrete Fréchet distances of
	// all pairs.
	MinF, MaxF, MeanF, StdF float64
}

// Compare evaluates the separatrices of a decompressed skeleton dec against
// the original orig. Both must have been traced from the same critical
// point set so that separatrices correspond by index (use ExtractWith for
// dec). tau is the Fréchet tolerance τ_t.
func Compare(orig, dec *Skeleton, tau float64) Stats {
	n := len(orig.Seps)
	if len(dec.Seps) < n {
		n = len(dec.Seps)
	}
	st := Stats{Total: n, MinF: math.Inf(1)}
	if n == 0 {
		st.MinF = 0
		return st
	}
	sum, sumSq := 0.0, 0.0
	mismatch := len(orig.Seps) != len(dec.Seps)
	for i := 0; i < n; i++ {
		a, b := &orig.Seps[i], &dec.Seps[i]
		d := frechet.Distance(a.Points, b.Points)
		if !CheckTraj(a, b, tau) {
			st.Incorrect++
		}
		if d < st.MinF {
			st.MinF = d
		}
		if d > st.MaxF {
			st.MaxF = d
		}
		sum += d
		sumSq += d * d
	}
	if mismatch {
		st.Incorrect += abs(len(orig.Seps) - len(dec.Seps))
	}
	st.MeanF = sum / float64(n)
	variance := sumSq/float64(n) - st.MeanF*st.MeanF
	if variance > 0 {
		st.StdF = math.Sqrt(variance)
	}
	return st
}

// CompareParallel is Compare with the per-pair Fréchet computations spread
// across workers.
func CompareParallel(orig, dec *Skeleton, tau float64, workers int) Stats {
	n := len(orig.Seps)
	if len(dec.Seps) < n {
		n = len(dec.Seps)
	}
	st := Stats{Total: n, MinF: math.Inf(1)}
	if n == 0 {
		st.MinF = 0
		return st
	}
	dists := make([]float64, n)
	bad := make([]bool, n)
	parallel.For(n, workers, 4, func(i int) {
		a, b := &orig.Seps[i], &dec.Seps[i]
		dists[i] = frechet.Distance(a.Points, b.Points)
		bad[i] = !CheckTraj(a, b, tau)
	})
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		if bad[i] {
			st.Incorrect++
		}
		d := dists[i]
		if d < st.MinF {
			st.MinF = d
		}
		if d > st.MaxF {
			st.MaxF = d
		}
		sum += d
		sumSq += d * d
	}
	if len(orig.Seps) != len(dec.Seps) {
		st.Incorrect += abs(len(orig.Seps) - len(dec.Seps))
	}
	st.MeanF = sum / float64(n)
	variance := sumSq/float64(n) - st.MeanF*st.MeanF
	if variance > 0 {
		st.StdF = math.Sqrt(variance)
	}
	return st
}

// CompareParallelCtx is CompareParallel with cancellation; the per-pair
// Fréchet computations check ctx at grain boundaries.
func CompareParallelCtx(ctx context.Context, orig, dec *Skeleton, tau float64, workers int) (Stats, error) {
	n := len(orig.Seps)
	if len(dec.Seps) < n {
		n = len(dec.Seps)
	}
	st := Stats{Total: n, MinF: math.Inf(1)}
	if n == 0 {
		st.MinF = 0
		return st, nil
	}
	dists := make([]float64, n)
	bad := make([]bool, n)
	if err := parallel.CtxForErr(ctx, n, workers, 4, func(i int) error {
		a, b := &orig.Seps[i], &dec.Seps[i]
		dists[i] = frechet.Distance(a.Points, b.Points)
		bad[i] = !CheckTraj(a, b, tau)
		return nil
	}); err != nil {
		return Stats{}, err
	}
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		if bad[i] {
			st.Incorrect++
		}
		d := dists[i]
		if d < st.MinF {
			st.MinF = d
		}
		if d > st.MaxF {
			st.MaxF = d
		}
		sum += d
		sumSq += d * d
	}
	if len(orig.Seps) != len(dec.Seps) {
		st.Incorrect += abs(len(orig.Seps) - len(dec.Seps))
	}
	st.MeanF = sum / float64(n)
	variance := sumSq/float64(n) - st.MeanF*st.MeanF
	if variance > 0 {
		st.StdF = math.Sqrt(variance)
	}
	return st, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
