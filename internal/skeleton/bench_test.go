package skeleton

import (
	"testing"

	"tspsz/internal/integrate"
)

func BenchmarkExtract(b *testing.B) {
	f := gyreField(64)
	par := integrate.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(f, par)
	}
}

func BenchmarkExtractParallel(b *testing.B) {
	f := gyreField(64)
	par := integrate.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractParallel(f, par, 0)
	}
}

func BenchmarkCompare(b *testing.B) {
	f := gyreField(48)
	par := integrate.DefaultParams()
	orig := Extract(f, par)
	g := f.Clone()
	for i := range g.U {
		g.U[i] += 0.01
	}
	dec := ExtractWith(g, orig.CPs, par)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compare(orig, dec, 1.4142)
	}
}
