package skeleton

import (
	"bufio"
	"fmt"
	"io"

	"tspsz/internal/critical"
)

// WriteVTK serializes a topological skeleton as legacy-format VTK polydata
// (ASCII), loadable by ParaView/VisIt for external 3D inspection:
// separatrices become polylines, critical points become labeled vertices
// with a per-point scalar encoding the type (0 degenerate, 1 source,
// 2 sink, 3 saddle).
func WriteVTK(w io.Writer, sk *Skeleton) error {
	bw := bufio.NewWriter(w)
	nPts := len(sk.CPs)
	for _, s := range sk.Seps {
		nPts += len(s.Points)
	}
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	fmt.Fprintln(bw, "TspSZ topological skeleton")
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET POLYDATA")
	fmt.Fprintf(bw, "POINTS %d float\n", nPts)
	for _, cp := range sk.CPs {
		fmt.Fprintf(bw, "%g %g %g\n", cp.Pos[0], cp.Pos[1], cp.Pos[2])
	}
	for _, s := range sk.Seps {
		for _, p := range s.Points {
			fmt.Fprintf(bw, "%g %g %g\n", p[0], p[1], p[2])
		}
	}

	// Critical points as VERTICES.
	if len(sk.CPs) > 0 {
		fmt.Fprintf(bw, "VERTICES %d %d\n", len(sk.CPs), 2*len(sk.CPs))
		for i := range sk.CPs {
			fmt.Fprintf(bw, "1 %d\n", i)
		}
	}

	// Separatrices as polylines.
	if len(sk.Seps) > 0 {
		total := 0
		for _, s := range sk.Seps {
			total += len(s.Points) + 1
		}
		fmt.Fprintf(bw, "LINES %d %d\n", len(sk.Seps), total)
		off := len(sk.CPs)
		for _, s := range sk.Seps {
			fmt.Fprintf(bw, "%d", len(s.Points))
			for i := range s.Points {
				fmt.Fprintf(bw, " %d", off+i)
			}
			fmt.Fprintln(bw)
			off += len(s.Points)
		}
	}

	// Point scalars: critical point type; separatrix samples carry -1.
	fmt.Fprintf(bw, "POINT_DATA %d\n", nPts)
	fmt.Fprintln(bw, "SCALARS cp_type int 1")
	fmt.Fprintln(bw, "LOOKUP_TABLE default")
	for _, cp := range sk.CPs {
		fmt.Fprintln(bw, vtkTypeCode(cp.Type))
	}
	for _, s := range sk.Seps {
		for range s.Points {
			fmt.Fprintln(bw, -1)
		}
	}
	return bw.Flush()
}

func vtkTypeCode(t critical.Type) int {
	switch t {
	case critical.Source:
		return 1
	case critical.Sink:
		return 2
	case critical.Saddle:
		return 3
	default:
		return 0
	}
}
