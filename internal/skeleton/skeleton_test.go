package skeleton

import (
	"math"
	"math/rand"
	"testing"

	"tspsz/internal/field"
	"tspsz/internal/integrate"
)

// gyreField builds a double-gyre-like field with several critical points:
// u = -π sin(πx/L) cos(πy/L), v = π cos(πx/L) sin(πy/L) on a (2L+1)² grid.
func gyreField(n int) *field.Field {
	f := field.New2D(n, n)
	l := float64(n-1) / 2
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		f.U[idx] = float32(-math.Pi * math.Sin(math.Pi*p[0]/l) * math.Cos(math.Pi*p[1]/l))
		f.V[idx] = float32(math.Pi * math.Cos(math.Pi*p[0]/l) * math.Sin(math.Pi*p[1]/l))
	}
	return f
}

func TestExtractFindsSkeleton(t *testing.T) {
	f := gyreField(21)
	sk := Extract(f, integrate.DefaultParams())
	if len(sk.CPs) == 0 {
		t.Fatal("no critical points found in gyre field")
	}
	if sk.NumSaddles() == 0 {
		t.Fatal("no saddles found in gyre field")
	}
	if want := 4 * sk.NumSaddles(); len(sk.Seps) != want {
		t.Fatalf("%d separatrices, want %d (4 per saddle)", len(sk.Seps), want)
	}
}

func TestExtractParallelMatchesSerial(t *testing.T) {
	f := gyreField(21)
	par := integrate.DefaultParams()
	serial := Extract(f, par)
	for _, workers := range []int{1, 2, 3, 7} {
		p := ExtractParallel(f, par, workers)
		if len(p.CPs) != len(serial.CPs) {
			t.Fatalf("workers=%d: %d cps, want %d", workers, len(p.CPs), len(serial.CPs))
		}
		for i := range p.CPs {
			if p.CPs[i].Cell != serial.CPs[i].Cell || p.CPs[i].Type != serial.CPs[i].Type {
				t.Fatalf("workers=%d: cp %d differs", workers, i)
			}
		}
		if len(p.Seps) != len(serial.Seps) {
			t.Fatalf("workers=%d: %d seps, want %d", workers, len(p.Seps), len(serial.Seps))
		}
		for i := range p.Seps {
			if len(p.Seps[i].Points) != len(serial.Seps[i].Points) {
				t.Fatalf("workers=%d: sep %d length differs", workers, i)
			}
			for j := range p.Seps[i].Points {
				if p.Seps[i].Points[j] != serial.Seps[i].Points[j] {
					t.Fatalf("workers=%d: sep %d point %d differs", workers, i, j)
				}
			}
		}
	}
}

func TestCompareIdenticalIsPerfect(t *testing.T) {
	f := gyreField(17)
	par := integrate.DefaultParams()
	sk := Extract(f, par)
	st := Compare(sk, sk, math.Sqrt2)
	if st.Incorrect != 0 {
		t.Errorf("Incorrect = %d, want 0", st.Incorrect)
	}
	if st.MaxF != 0 || st.MeanF != 0 || st.StdF != 0 || st.MinF != 0 {
		t.Errorf("stats %+v, want all zero", st)
	}
	if st.Total != len(sk.Seps) {
		t.Errorf("Total = %d, want %d", st.Total, len(sk.Seps))
	}
}

func TestCompareDetectsDistortion(t *testing.T) {
	f := gyreField(17)
	par := integrate.DefaultParams()
	orig := Extract(f, par)
	g := f.Clone()
	rng := rand.New(rand.NewSource(3))
	for i := range g.U {
		g.U[i] += (rng.Float32() - 0.5) * 2
		g.V[i] += (rng.Float32() - 0.5) * 2
	}
	dec := ExtractWith(g, orig.CPs, par)
	st := Compare(orig, dec, 0.25)
	if st.Incorrect == 0 {
		t.Error("massive distortion produced zero incorrect separatrices")
	}
	if !(st.MaxF > 0) {
		t.Error("MaxF should be positive under distortion")
	}
	if st.MeanF <= 0 || st.StdF < 0 {
		t.Errorf("suspicious stats %+v", st)
	}
}

func TestCompareParallelMatchesSerial(t *testing.T) {
	f := gyreField(17)
	par := integrate.DefaultParams()
	orig := Extract(f, par)
	g := f.Clone()
	rng := rand.New(rand.NewSource(4))
	for i := range g.U {
		g.U[i] += (rng.Float32() - 0.5) * 0.3
	}
	dec := ExtractWith(g, orig.CPs, par)
	a := Compare(orig, dec, 1.0)
	b := CompareParallel(orig, dec, 1.0, 4)
	if a.Incorrect != b.Incorrect || a.Total != b.Total {
		t.Fatalf("parallel mismatch: %+v vs %+v", a, b)
	}
	for _, pair := range [][2]float64{{a.MaxF, b.MaxF}, {a.MeanF, b.MeanF}, {a.StdF, b.StdF}, {a.MinF, b.MinF}} {
		if math.Abs(pair[0]-pair[1]) > 1e-12 {
			t.Fatalf("parallel stats mismatch: %+v vs %+v", a, b)
		}
	}
}

func TestCheckTrajEndpointMismatch(t *testing.T) {
	mk := func(term integrate.Termination, end int) integrate.Trajectory {
		return integrate.Trajectory{
			Points: []([3]float64){{0, 0, 0}, {1, 0, 0}},
			Term:   term,
			EndCP:  end,
		}
	}
	a := mk(integrate.AbsorbedAtCP, 0)
	b := mk(integrate.AbsorbedAtCP, 1)
	if CheckTraj(&a, &b, 10) {
		t.Error("different absorbing cps must be incorrect")
	}
	c := mk(integrate.LeftDomain, -1)
	if CheckTraj(&a, &c, 10) {
		t.Error("absorbed vs left-domain must be incorrect")
	}
	d := mk(integrate.AbsorbedAtCP, 0)
	if !CheckTraj(&a, &d, 10) {
		t.Error("identical trajectories must be correct")
	}
}

func TestCheckTrajFrechetTolerance(t *testing.T) {
	a := integrate.Trajectory{Points: []([3]float64){{0, 0, 0}, {1, 0, 0}}, Term: integrate.MaxSteps, EndCP: -1}
	b := integrate.Trajectory{Points: []([3]float64){{0, 2, 0}, {1, 2, 0}}, Term: integrate.MaxSteps, EndCP: -1}
	if CheckTraj(&a, &b, 1.5) {
		t.Error("distance 2 must fail tau 1.5")
	}
	if !CheckTraj(&a, &b, 2.5) {
		t.Error("distance 2 must pass tau 2.5")
	}
}

func TestCompareEmpty(t *testing.T) {
	st := Compare(&Skeleton{}, &Skeleton{}, 1)
	if st.Incorrect != 0 || st.Total != 0 || st.MinF != 0 {
		t.Errorf("empty compare: %+v", st)
	}
}

func TestCompareLengthMismatchCountsMissing(t *testing.T) {
	tr := integrate.Trajectory{Points: []([3]float64){{0, 0, 0}}, Term: integrate.MaxSteps, EndCP: -1}
	a := &Skeleton{Seps: []integrate.Trajectory{tr, tr, tr}}
	b := &Skeleton{Seps: []integrate.Trajectory{tr}}
	st := Compare(a, b, 1)
	if st.Incorrect != 2 {
		t.Errorf("Incorrect = %d, want 2 for two missing separatrices", st.Incorrect)
	}
}
