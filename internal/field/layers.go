package field

import (
	"io"
	"math"

	"tspsz/internal/streamerr"
)

// LayerFetcher feeds a 3D field into the streaming compressor one z-layer
// at a time, so the raw data never needs to be resident as a whole. The
// contract mirrors the fff exemplar's layer callbacks:
//
//   - Layer(k) returns the component planes of z-layer k: result[c] holds
//     the nx*ny row-major float32 samples of component c.
//   - The returned slices are views, valid only until the next Layer call;
//     implementations may reuse their buffers and callers copy what they
//     keep.
//   - Within one compression pass k is non-decreasing; a layer may be
//     requested more than once in a row (a cut plane is the neighbor of
//     the slabs on both of its sides).
//   - The compressor makes two passes (histogram, then encode), so the
//     fetcher is re-invoked from k = 0 a second time and must be
//     restartable.
type LayerFetcher interface {
	Layer(k int) ([][]float32, error)
}

// LayerFetcherFunc adapts a function to the LayerFetcher interface.
type LayerFetcherFunc func(k int) ([][]float32, error)

// Layer implements LayerFetcher.
func (fn LayerFetcherFunc) Layer(k int) ([][]float32, error) { return fn(k) }

// EbFetcher optionally supplies precomputed per-vertex error bounds to the
// streaming compressor (the analogue of the exemplar's EbFetcher): the
// effective bound of a vertex is min(user bound, fetched bound), and a
// negative fetched bound forces the vertex lossless. Validity and ordering
// rules match LayerFetcher.Layer, including the two-pass restart.
type EbFetcher interface {
	LayerBounds(k int) ([]float64, error)
}

// EbFetcherFunc adapts a function to the EbFetcher interface.
type EbFetcherFunc func(k int) ([]float64, error)

// LayerBounds implements EbFetcher.
func (fn EbFetcherFunc) LayerBounds(k int) ([]float64, error) { return fn(k) }

// FrameFetcher feeds a time-varying sequence into the streaming sequence
// compressor one frame at a time. Frame(t) is called exactly once per
// frame, in ascending order; the returned field is read (never mutated)
// only until the next Frame call, so implementations may reuse a buffer.
type FrameFetcher interface {
	Frame(t int) (*Field, error)
}

// FrameFetcherFunc adapts a function to the FrameFetcher interface.
type FrameFetcherFunc func(t int) (*Field, error)

// Frame implements FrameFetcher.
func (fn FrameFetcherFunc) Frame(t int) (*Field, error) { return fn(t) }

// LayerView returns the component planes of z-layer k without copying:
// each returned slice aliases the field's component storage. k must be in
// [0, nz).
func (f *Field) LayerView(k int) [][]float32 {
	nx, ny, _ := f.Grid.Dims()
	plane := nx * ny
	comps := f.Components()
	out := make([][]float32, len(comps))
	for c, vals := range comps {
		out[c] = vals[k*plane : (k+1)*plane]
	}
	return out
}

// memLayers adapts an in-memory field to the LayerFetcher contract with
// zero copying.
type memLayers struct {
	f *Field
}

func (m memLayers) Layer(k int) ([][]float32, error) {
	_, _, nz := m.f.Grid.Dims()
	if k < 0 || k >= nz {
		return nil, streamerr.Header("layer fetch", "layer %d outside [0, %d)", k, nz)
	}
	return m.f.LayerView(k), nil
}

// Layers adapts an in-memory field to a zero-copy LayerFetcher; every
// Layer call returns views into the field's own storage. Useful for
// differential testing and for callers that have the field resident but
// want the streaming writer.
func Layers(f *Field) LayerFetcher { return memLayers{f: f} }

// FileLayers is a LayerFetcher over a TSPF file (the WriteTo layout: 4-byte
// magic, 4 little-endian uint32 header words, then each component as
// little-endian float32). It reads one layer per component per call
// through an io.ReaderAt, so peak memory is one layer regardless of field
// size.
type FileLayers struct {
	r          io.ReaderAt
	nx, ny, nz int
	ncomp      int
	raw        []byte
	comps      [][]float32
}

// fileHeaderBytes is the TSPF preamble: magic plus dim, nx, ny, nz words.
const fileHeaderBytes = 4 + 4*4

// NewFileLayers validates the TSPF header of r and returns a layer fetcher
// over its payload. Only 3D fields can be streamed by layer; 2D files are
// rejected with a typed header error.
func NewFileLayers(r io.ReaderAt) (*FileLayers, error) {
	var hdr [fileHeaderBytes]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, readErr("field header", err)
	}
	if string(hdr[:4]) != fileMagic {
		return nil, streamerr.Header("field", "bad magic, not a TSPF file")
	}
	le := func(i int) int {
		off := 4 + 4*i
		return int(uint32(hdr[off]) | uint32(hdr[off+1])<<8 | uint32(hdr[off+2])<<16 | uint32(hdr[off+3])<<24)
	}
	dim, nx, ny, nz := le(0), le(1), le(2), le(3)
	if dim != 3 {
		return nil, streamerr.Header("field", "layer streaming requires a 3D field, got dimension %d", dim)
	}
	if nx < 2 || nx > maxAxis || ny < 2 || ny > maxAxis || nz < 2 || nz > maxAxis {
		return nil, streamerr.Header("field", "implausible dims %dx%dx%d", nx, ny, nz)
	}
	fl := &FileLayers{r: r, nx: nx, ny: ny, nz: nz, ncomp: 3}
	plane := nx * ny
	fl.raw = make([]byte, 4*plane)
	fl.comps = make([][]float32, fl.ncomp)
	for c := range fl.comps {
		fl.comps[c] = make([]float32, plane)
	}
	return fl, nil
}

// Dims returns the axis extents declared by the file header.
func (fl *FileLayers) Dims() (nx, ny, nz int) { return fl.nx, fl.ny, fl.nz }

// Components reports the component count (3 for the only streamable
// dimension).
func (fl *FileLayers) Components() int { return fl.ncomp }

// Layer implements LayerFetcher. The returned planes are reused across
// calls, per the fetcher contract.
func (fl *FileLayers) Layer(k int) ([][]float32, error) {
	if k < 0 || k >= fl.nz {
		return nil, streamerr.Header("layer fetch", "layer %d outside [0, %d)", k, fl.nz)
	}
	plane := fl.nx * fl.ny
	nv := plane * fl.nz
	out := make([][]float32, fl.ncomp)
	for c := 0; c < fl.ncomp; c++ {
		off := int64(fileHeaderBytes) + 4*int64(c*nv+k*plane)
		if _, err := fl.r.ReadAt(fl.raw, off); err != nil {
			return nil, readErr("field component", err)
		}
		dst := fl.comps[c]
		for i := range dst {
			b := fl.raw[4*i:]
			dst[i] = math.Float32frombits(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
		}
		out[c] = dst
	}
	return out, nil
}
