package field

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func randomField2D(nx, ny int, seed int64) *Field {
	f := New2D(nx, ny)
	rng := rand.New(rand.NewSource(seed))
	for i := range f.U {
		f.U[i] = rng.Float32()*2 - 1
		f.V[i] = rng.Float32()*2 - 1
	}
	return f
}

func TestCloneIndependent(t *testing.T) {
	f := randomField2D(8, 6, 1)
	c := f.Clone()
	c.U[0] = 42
	if f.U[0] == 42 {
		t.Fatal("clone shares U storage")
	}
	if c.Grid != f.Grid {
		t.Fatal("clone should share grid")
	}
}

func TestComponents(t *testing.T) {
	if got := len(New2D(3, 3).Components()); got != 2 {
		t.Errorf("2D components = %d, want 2", got)
	}
	if got := len(New3D(3, 3, 3).Components()); got != 3 {
		t.Errorf("3D components = %d, want 3", got)
	}
}

// Sampling at a vertex must return exactly the stored vector.
func TestSampleAtVertices(t *testing.T) {
	f := randomField2D(6, 5, 2)
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		vec, _, ok := f.Sample(p, nil)
		if !ok {
			t.Fatalf("vertex %d outside domain", idx)
		}
		want := f.VecAt(idx)
		for d := 0; d < 2; d++ {
			if math.Abs(vec[d]-want[d]) > 1e-9 {
				t.Fatalf("vertex %d: sample %v, want %v", idx, vec, want)
			}
		}
	}
}

// A linear field must be reproduced exactly by PL interpolation.
func TestSampleReproducesLinearField(t *testing.T) {
	f := New3D(4, 5, 3)
	lin := func(x, y, z float64) (float32, float32, float32) {
		return float32(1 + 2*x - y + 0.5*z), float32(-3 + x + 4*y - z), float32(0.25*x - 0.5*y + z)
	}
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		f.U[idx], f.V[idx], f.W[idx] = lin(p[0], p[1], p[2])
	}
	rng := rand.New(rand.NewSource(3))
	for n := 0; n < 300; n++ {
		p := [3]float64{rng.Float64() * 3, rng.Float64() * 4, rng.Float64() * 2}
		vec, _, ok := f.Sample(p, nil)
		if !ok {
			t.Fatalf("point %v outside", p)
		}
		wu, wv, ww := lin(p[0], p[1], p[2])
		if math.Abs(vec[0]-float64(wu)) > 1e-5 || math.Abs(vec[1]-float64(wv)) > 1e-5 || math.Abs(vec[2]-float64(ww)) > 1e-5 {
			t.Fatalf("sample at %v = %v, want (%v,%v,%v)", p, vec, wu, wv, ww)
		}
	}
}

func TestSampleTracksVertices(t *testing.T) {
	f := randomField2D(5, 5, 4)
	var verts []int
	_, cell, ok := f.Sample([3]float64{1.3, 2.6, 0}, &verts)
	if !ok {
		t.Fatal("sample failed")
	}
	want := f.Grid.CellVertices(cell, nil)
	if len(verts) != len(want) {
		t.Fatalf("tracked %d vertices, want %d", len(verts), len(want))
	}
	for i := range verts {
		if verts[i] != want[i] {
			t.Fatalf("tracked %v, want %v", verts, want)
		}
	}
}

func TestSampleOutside(t *testing.T) {
	f := randomField2D(4, 4, 5)
	if _, _, ok := f.Sample([3]float64{-1, 0, 0}, nil); ok {
		t.Error("expected outside")
	}
}

func TestRange(t *testing.T) {
	f := New2D(2, 2)
	f.U = []float32{-3, 0, 1, 2}
	f.V = []float32{5, -1, 0, 0}
	lo, hi := f.Range()
	if lo != -3 || hi != 5 {
		t.Errorf("Range = (%v,%v), want (-3,5)", lo, hi)
	}
}

func TestSizeBytes(t *testing.T) {
	if got, want := New2D(3, 3).SizeBytes(), 3*3*2*4; got != want {
		t.Errorf("2D SizeBytes = %d, want %d", got, want)
	}
	if got, want := New3D(2, 2, 2).SizeBytes(), 8*3*4; got != want {
		t.Errorf("3D SizeBytes = %d, want %d", got, want)
	}
}

func TestWriteReadRoundTrip2D(t *testing.T) {
	f := randomField2D(9, 7, 6)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dim() != 2 || g.NumVertices() != f.NumVertices() {
		t.Fatalf("shape mismatch after round trip")
	}
	for i := range f.U {
		if f.U[i] != g.U[i] || f.V[i] != g.V[i] {
			t.Fatalf("data mismatch at %d", i)
		}
	}
}

func TestWriteReadRoundTrip3D(t *testing.T) {
	f := New3D(3, 4, 5)
	rng := rand.New(rand.NewSource(7))
	for i := range f.U {
		f.U[i], f.V[i], f.W[i] = rng.Float32(), rng.Float32(), rng.Float32()
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.U {
		if f.U[i] != g.U[i] || f.V[i] != g.V[i] || f.W[i] != g.W[i] {
			t.Fatalf("data mismatch at %d", i)
		}
	}
}

func TestReadFromRejectsBadMagic(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("NOPE00000000000000000000"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestReadFromRejectsTruncated(t *testing.T) {
	f := randomField2D(4, 4, 8)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrom(bytes.NewReader(buf.Bytes()[:buf.Len()-5])); err == nil {
		t.Fatal("expected error for truncated stream")
	}
}

// forgeHeader builds a TSPF header with the given dims and an optional
// payload tail, bypassing WriteTo's validity.
func forgeHeader(dim, nx, ny, nz uint32, tail int) []byte {
	buf := []byte(fileMagic)
	for _, h := range []uint32{dim, nx, ny, nz} {
		buf = binary.LittleEndian.AppendUint32(buf, h)
	}
	return append(buf, make([]byte, tail)...)
}

func TestReadFromRejectsFabricatedDims(t *testing.T) {
	for _, tc := range []struct {
		name string
		hdr  []byte
	}{
		{"2D nx beyond axis cap", forgeHeader(2, 1<<30, 4, 0, 0)},
		{"3D nz beyond axis cap", forgeHeader(3, 4, 4, 1<<30, 0)},
		{"2D degenerate axis", forgeHeader(2, 1, 4, 0, 0)}, // used to panic in New2D
		{"bad dimensionality", forgeHeader(7, 4, 4, 4, 0)},
		{"unbacked vertex claim", forgeHeader(2, 1<<20, 1<<20, 0, 64)},
		// Every axis at the cap: each check passes but the product is
		// 2^63, which wraps a signed int — this used to panic in make.
		{"all-max axes product overflow", forgeHeader(3, 1<<21, 1<<21, 1<<21, 0)},
	} {
		if _, err := ReadFrom(bytes.NewReader(tc.hdr)); err == nil {
			t.Errorf("%s: fabricated header accepted", tc.name)
		}
	}
}
