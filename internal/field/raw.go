package field

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Raw component I/O. Public scientific data repositories (e.g. SDRBench,
// where the paper's Hurricane-ISABEL and ocean datasets originate)
// distribute vector fields as one bare little-endian float32 file per
// component with the grid size documented out of band. These helpers load
// and store that layout so real datasets can be fed to the compressor
// directly.

// ReadRawComponent fills dst with little-endian float32 values from r,
// requiring exactly len(dst) values.
func ReadRawComponent(r io.Reader, dst []float32) error {
	br := bufio.NewReaderSize(r, 1<<16)
	if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
		return fmt.Errorf("field: reading raw component: %w", err)
	}
	// Detect trailing data, which almost always means wrong dimensions.
	var extra [1]byte
	if n, _ := br.Read(extra[:]); n != 0 {
		return fmt.Errorf("field: raw component longer than %d values; wrong grid size?", len(dst))
	}
	return nil
}

// ReadRaw2D assembles a 2D field from one raw float32 reader per component
// (u, v), each holding nx·ny row-major values.
func ReadRaw2D(nx, ny int, u, v io.Reader) (*Field, error) {
	f := New2D(nx, ny)
	if err := ReadRawComponent(u, f.U); err != nil {
		return nil, fmt.Errorf("component u: %w", err)
	}
	if err := ReadRawComponent(v, f.V); err != nil {
		return nil, fmt.Errorf("component v: %w", err)
	}
	return f, nil
}

// ReadRaw3D assembles a 3D field from one raw float32 reader per component
// (u, v, w), each holding nx·ny·nz row-major values.
func ReadRaw3D(nx, ny, nz int, u, v, w io.Reader) (*Field, error) {
	f := New3D(nx, ny, nz)
	if err := ReadRawComponent(u, f.U); err != nil {
		return nil, fmt.Errorf("component u: %w", err)
	}
	if err := ReadRawComponent(v, f.V); err != nil {
		return nil, fmt.Errorf("component v: %w", err)
	}
	if err := ReadRawComponent(w, f.W); err != nil {
		return nil, fmt.Errorf("component w: %w", err)
	}
	return f, nil
}

// WriteRawComponent writes one component as bare little-endian float32.
func WriteRawComponent(w io.Writer, src []float32) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := binary.Write(bw, binary.LittleEndian, src); err != nil {
		return fmt.Errorf("field: writing raw component: %w", err)
	}
	return bw.Flush()
}

// WriteRaw writes every component of f to the corresponding writer; the
// number of writers must equal the component count (2 in 2D, 3 in 3D).
func (f *Field) WriteRaw(ws ...io.Writer) error {
	comps := f.Components()
	if len(ws) != len(comps) {
		return fmt.Errorf("field: %d writers for %d components", len(ws), len(comps))
	}
	for i, comp := range comps {
		if err := WriteRawComponent(ws[i], comp); err != nil {
			return err
		}
	}
	return nil
}
