package field

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestRawRoundTrip2D(t *testing.T) {
	f := New2D(7, 5)
	rng := rand.New(rand.NewSource(1))
	for i := range f.U {
		f.U[i], f.V[i] = rng.Float32(), rng.Float32()
	}
	var u, v bytes.Buffer
	if err := f.WriteRaw(&u, &v); err != nil {
		t.Fatal(err)
	}
	if u.Len() != 4*35 {
		t.Fatalf("u payload %d bytes, want 140", u.Len())
	}
	g, err := ReadRaw2D(7, 5, &u, &v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.U {
		if g.U[i] != f.U[i] || g.V[i] != f.V[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestRawRoundTrip3D(t *testing.T) {
	f := New3D(4, 3, 5)
	rng := rand.New(rand.NewSource(2))
	for i := range f.U {
		f.U[i], f.V[i], f.W[i] = rng.Float32(), rng.Float32(), rng.Float32()
	}
	var u, v, w bytes.Buffer
	if err := f.WriteRaw(&u, &v, &w); err != nil {
		t.Fatal(err)
	}
	g, err := ReadRaw3D(4, 3, 5, &u, &v, &w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.U {
		if g.U[i] != f.U[i] || g.W[i] != f.W[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestRawRejectsShortInput(t *testing.T) {
	short := bytes.NewReader(make([]byte, 10))
	ok := bytes.NewReader(make([]byte, 4*35))
	if _, err := ReadRaw2D(7, 5, short, ok); err == nil {
		t.Error("short component accepted")
	}
}

func TestRawRejectsLongInput(t *testing.T) {
	long := bytes.NewReader(make([]byte, 4*35+4))
	ok := bytes.NewReader(make([]byte, 4*35))
	if _, err := ReadRaw2D(7, 5, long, ok); err == nil {
		t.Error("oversized component accepted (wrong dims should be caught)")
	}
}

func TestWriteRawWrongWriterCount(t *testing.T) {
	f := New2D(3, 3)
	var one bytes.Buffer
	if err := f.WriteRaw(&one); err == nil {
		t.Error("writer count mismatch accepted")
	}
}
