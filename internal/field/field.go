// Package field holds the vector field container used by TspSZ: a structure
// of arrays of float32 component samples over a regular simplicial grid,
// with piecewise-linear sampling and raw binary I/O.
package field

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"tspsz/internal/grid"
	"tspsz/internal/streamerr"
)

// Field is a 2D or 3D vector field sampled at the vertices of a regular
// grid. Components are stored as separate float32 slices (U, V, and W for 3D
// fields; W is nil for 2D fields), matching the storage layout of the
// datasets in the paper.
type Field struct {
	Grid *grid.Grid
	U, V []float32
	W    []float32 // nil in 2D
}

// New2D allocates a zero-valued 2D field over an nx×ny grid.
func New2D(nx, ny int) *Field {
	g := grid.New2D(nx, ny)
	n := g.NumVertices()
	return &Field{Grid: g, U: make([]float32, n), V: make([]float32, n)}
}

// New3D allocates a zero-valued 3D field over an nx×ny×nz grid.
func New3D(nx, ny, nz int) *Field {
	g := grid.New3D(nx, ny, nz)
	n := g.NumVertices()
	return &Field{Grid: g, U: make([]float32, n), V: make([]float32, n), W: make([]float32, n)}
}

// Dim reports the spatial dimension (2 or 3).
func (f *Field) Dim() int { return f.Grid.Dim() }

// NumVertices reports the number of sample points.
func (f *Field) NumVertices() int { return f.Grid.NumVertices() }

// Components returns the component slices in order (u, v[, w]).
func (f *Field) Components() [][]float32 {
	if f.W == nil {
		return [][]float32{f.U, f.V}
	}
	return [][]float32{f.U, f.V, f.W}
}

// Clone returns a deep copy sharing the (immutable) grid.
func (f *Field) Clone() *Field {
	c := &Field{Grid: f.Grid}
	c.U = append([]float32(nil), f.U...)
	c.V = append([]float32(nil), f.V...)
	if f.W != nil {
		c.W = append([]float32(nil), f.W...)
	}
	return c
}

// VecAt returns the vector at vertex idx. In 2D the third component is 0.
func (f *Field) VecAt(idx int) [3]float64 {
	v := [3]float64{float64(f.U[idx]), float64(f.V[idx]), 0}
	if f.W != nil {
		v[2] = float64(f.W[idx])
	}
	return v
}

// Sample evaluates the piecewise-linear interpolant at point p. It returns
// the interpolated vector, the cell used, and ok == false when p is outside
// the domain. If verts is non-nil, the indices of the vertices participating
// in the interpolation are appended to *verts — this is the involved-vertex
// tracking TspSZ-I relies on (Algorithm 2, line 16).
func (f *Field) Sample(p [3]float64, verts *[]int) (vec [3]float64, cell int, ok bool) {
	cell, bc, ok := f.Grid.Locate(p)
	if !ok {
		return vec, 0, false
	}
	var vbuf [4]int
	vs := f.Grid.CellVertices(cell, vbuf[:0])
	for i, v := range vs {
		w := bc[i]
		vec[0] += w * float64(f.U[v])
		vec[1] += w * float64(f.V[v])
		if f.W != nil {
			vec[2] += w * float64(f.W[v])
		}
	}
	if verts != nil {
		*verts = append(*verts, vs...)
	}
	return vec, cell, true
}

// Range returns the global min and max over all components, as used by the
// PSNR definition in §VIII-B.
func (f *Field) Range() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, comp := range f.Components() {
		for _, x := range comp {
			v := float64(x)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

// SizeBytes reports the uncompressed payload size (float32 per sample per
// component), the numerator of the compression ratio.
func (f *Field) SizeBytes() int {
	return 4 * f.NumVertices() * len(f.Components())
}

const fileMagic = "TSPF"

// WriteTo serializes the field with a small self-describing header:
// magic, dim, nx, ny, nz, then each component as little-endian float32.
func (f *Field) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	if _, err := bw.WriteString(fileMagic); err != nil {
		return n, err
	}
	n += 4
	nx, ny, nz := f.Grid.Dims()
	hdr := []uint32{uint32(f.Dim()), uint32(nx), uint32(ny), uint32(nz)}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return n, err
		}
		n += 4
	}
	for _, comp := range f.Components() {
		if err := binary.Write(bw, binary.LittleEndian, comp); err != nil {
			return n, err
		}
		n += int64(4 * len(comp))
	}
	return n, bw.Flush()
}

// maxAxis caps each header axis. 2^21 samples per axis is far beyond any
// dataset in the paper and keeps a fabricated header from sizing a giant
// allocation before the stream proves it carries the bytes.
const maxAxis = 1 << 21

// ReadFrom deserializes a field written by WriteTo. The header is
// untrusted input: each axis is validated before any size computation
// (the old path let a 20-byte header claim arbitrary dimensions, driving
// an enormous allocation — or a panic for axes below the grid minimum),
// and component data is read in bounded chunks so committed memory grows
// only as fast as the stream actually delivers samples.
func ReadFrom(r io.Reader) (*Field, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, readErr("field magic", err)
	}
	if string(magic) != fileMagic {
		return nil, streamerr.Header("field", "bad magic, not a TSPF file")
	}
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, readErr("field header", err)
		}
	}
	dim, nx, ny, nz := int(hdr[0]), int(hdr[1]), int(hdr[2]), int(hdr[3])
	ncomp := 2
	switch dim {
	case 2:
		nz = 1 // a 2D header cannot smuggle a third axis into the product
	case 3:
		ncomp = 3
		if nz < 2 || nz > maxAxis {
			return nil, streamerr.Header("field", "implausible dims %dx%dx%d", nx, ny, nz)
		}
	default:
		return nil, streamerr.Header("field", "unsupported dimension %d", dim)
	}
	if nx < 2 || nx > maxAxis || ny < 2 || ny > maxAxis {
		return nil, streamerr.Header("field", "implausible dims %dx%dx%d", nx, ny, nz)
	}
	// Each axis is ≤ 2^21, so the three-axis product is ≤ 2^63 — which
	// fits uint64 but not int: at the all-max boundary it wraps negative
	// and make would panic. Compute in uint64 and reject anything that
	// cannot index a slice.
	nv64 := uint64(nx) * uint64(ny) * uint64(nz)
	if nv64 > math.MaxInt {
		return nil, streamerr.Header("field", "implausible dims %dx%dx%d", nx, ny, nz)
	}
	nv := int(nv64)
	comps := make([][]float32, ncomp)
	for c := range comps {
		vals, err := readComponent(br, nv)
		if err != nil {
			return nil, err
		}
		comps[c] = vals
	}
	f := &Field{U: comps[0], V: comps[1]}
	if dim == 2 {
		f.Grid = grid.New2D(nx, ny)
	} else {
		f.Grid = grid.New3D(nx, ny, nz)
		f.W = comps[2]
	}
	return f, nil
}

// readComponent reads n little-endian float32 samples in bounded chunks,
// growing the result as bytes arrive, so n may come from an untrusted
// (axis-validated) header without pre-committing the full allocation.
func readComponent(br *bufio.Reader, n int) ([]float32, error) {
	const chunk = 1 << 18 // 1 MiB of float32 samples per read
	tmp := make([]float32, min(chunk, n))
	out := make([]float32, 0, min(chunk, n))
	for len(out) < n {
		t := tmp[:min(chunk, n-len(out))]
		if err := binary.Read(br, binary.LittleEndian, t); err != nil {
			return nil, readErr("field component", err)
		}
		out = append(out, t...)
	}
	return out, nil
}

// readErr classifies a read failure: hitting end of stream mid-section
// means the file is truncated; any other error is a genuine I/O failure
// and is passed through untyped.
func readErr(section string, err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return streamerr.Wrap(streamerr.ErrTruncated, section, err)
	}
	return fmt.Errorf("field: reading %s: %w", section, err)
}
