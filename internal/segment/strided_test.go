package segment

import (
	"testing"

	"tspsz/internal/integrate"
)

func TestBasinsStridedSeedsOnlySublattice(t *testing.T) {
	f, cps := twoSinkField()
	par := integrate.Params{EpsP: 5e-2, MaxSteps: 500, H: 0.1}
	labels, seeds := BasinsStrided(f, cps, 1, par, 2, 2)
	nx, ny, _ := f.Grid.Dims()
	wantSeeds := ((nx + 1) / 2) * ((ny + 1) / 2)
	if len(seeds) != wantSeeds {
		t.Fatalf("%d seeds, want %d", len(seeds), wantSeeds)
	}
	seedSet := map[int]bool{}
	for _, s := range seeds {
		seedSet[s] = true
	}
	for i, l := range labels {
		if !seedSet[i] && l != Unassigned {
			t.Fatalf("unseeded vertex %d carries label %d", i, l)
		}
	}
	// Full-stride equals Basins.
	full := Basins(f, cps, 1, par, 2)
	strided1, seeds1 := BasinsStrided(f, cps, 1, par, 2, 1)
	if len(seeds1) != f.NumVertices() {
		t.Fatalf("stride 1 seeded %d of %d", len(seeds1), f.NumVertices())
	}
	for i := range full {
		if full[i] != strided1[i] {
			t.Fatalf("stride-1 differs from Basins at %d", i)
		}
	}
}

func TestAgreementAt(t *testing.T) {
	a := []int{0, 1, 2, 3}
	b := []int{0, 9, 2, 9}
	if got := AgreementAt(a, b, []int{0, 2}); got != 1 {
		t.Errorf("agreement over matching positions = %v", got)
	}
	if got := AgreementAt(a, b, []int{1, 3}); got != 0 {
		t.Errorf("agreement over differing positions = %v", got)
	}
	if got := AgreementAt(a, b, nil); got != 1 {
		t.Errorf("empty position list = %v", got)
	}
}
