// Package segment decomposes a vector field's domain into attraction
// basins: every vertex is labeled by the sink (or source, for backward
// integration) that absorbs the streamline seeded there. Basin agreement
// between original and decompressed data quantifies topology preservation
// at the domain level — the vector-field analogue of the Morse-Smale
// segmentation preservation studied by MSz [40], which the paper cites as
// the scalar-field counterpart of this work.
package segment

import (
	"tspsz/internal/critical"
	"tspsz/internal/field"
	"tspsz/internal/integrate"
	"tspsz/internal/parallel"
)

// Unassigned labels vertices whose streamline reaches no sink/source
// (domain exit, orbit, or step budget).
const Unassigned = -1

// Basins traces a streamline from every vertex of f (forward when dir > 0,
// backward otherwise) and returns, per vertex, the index into cps of the
// absorbing critical point, or Unassigned. cps should come from the
// original data so labels are comparable across reconstructions.
func Basins(f *field.Field, cps []critical.Point, dir int, par integrate.Params, workers int) []int {
	labels, _ := BasinsStrided(f, cps, dir, par, workers, 1)
	return labels
}

// BasinsStrided traces only every stride-th vertex along each axis (other
// entries stay Unassigned), trading resolution for speed on large grids.
// It returns the labels plus the seeded vertex indices; compare label sets
// over the same seed list with AgreementAt.
func BasinsStrided(f *field.Field, cps []critical.Point, dir int, par integrate.Params, workers, stride int) ([]int, []int) {
	return BasinsCapture(f, cps, dir, par, workers, stride, 0)
}

// BasinsCapture generalizes BasinsStrided for fields without genuine
// attractors (divergence-free flows have no sinks, so absorption never
// fires): a trajectory that exhausts its budget is labeled by the nearest
// critical point within capture of its final position. capture == 0
// disables the fallback, reproducing strict absorption labeling.
func BasinsCapture(f *field.Field, cps []critical.Point, dir int, par integrate.Params, workers, stride int, capture float64) ([]int, []int) {
	if stride < 1 {
		stride = 1
	}
	labels := make([]int, f.NumVertices())
	for i := range labels {
		labels[i] = Unassigned
	}
	nx, ny, nz := f.Grid.Dims()
	if f.Dim() == 2 {
		nz = 1
	}
	var seeds []int
	for k := 0; k < nz; k += stride {
		for j := 0; j < ny; j += stride {
			for i := 0; i < nx; i += stride {
				seeds = append(seeds, f.Grid.VertexIndex(i, j, k))
			}
		}
	}
	loc := integrate.NewCPLocator(cps)
	parallel.For(len(seeds), workers, 64, func(si int) {
		idx := seeds[si]
		seed := f.Grid.VertexPosition(idx)
		tr := integrate.Streamline(f, seed, dir, par, loc, nil)
		switch {
		case tr.Term == integrate.AbsorbedAtCP:
			labels[idx] = tr.EndCP
		case capture > 0 && len(tr.Points) > 0:
			labels[idx] = nearestCP(cps, tr.Points[len(tr.Points)-1], capture)
		}
	})
	return labels, seeds
}

// nearestCP returns the index of the critical point closest to p within
// radius capture, or Unassigned.
func nearestCP(cps []critical.Point, p [3]float64, capture float64) int {
	best := Unassigned
	bestD := capture * capture
	for i := range cps {
		dx := cps[i].Pos[0] - p[0]
		dy := cps[i].Pos[1] - p[1]
		dz := cps[i].Pos[2] - p[2]
		if d := dx*dx + dy*dy + dz*dz; d <= bestD {
			bestD = d
			best = i
		}
	}
	return best
}

// AgreementAt returns the fraction of the given positions whose labels
// agree in a and b.
func AgreementAt(a, b []int, idxs []int) float64 {
	if len(a) != len(b) {
		panic("segment: label slices differ in length")
	}
	if len(idxs) == 0 {
		return 1
	}
	same := 0
	for _, i := range idxs {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(idxs))
}

// Agreement returns the fraction of positions with identical labels. It
// panics on length mismatch.
func Agreement(a, b []int) float64 {
	if len(a) != len(b) {
		panic("segment: label slices differ in length")
	}
	if len(a) == 0 {
		return 1
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(a))
}

// Sizes returns the vertex count per label (Unassigned under key -1).
func Sizes(labels []int) map[int]int {
	out := make(map[int]int)
	for _, l := range labels {
		out[l]++
	}
	return out
}
