package segment

import (
	"tspsz/internal/core"
	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/integrate"
)

// compressForTest runs a TspSZ-i round trip and returns the decompressed
// field.
func compressForTest(f *field.Field) (*field.Field, error) {
	res, err := core.Compress(f, core.Options{
		Variant: core.TspSZi, Mode: ebound.Absolute, ErrBound: 0.02,
		Params: integrate.Params{EpsP: 5e-2, MaxSteps: 1000, H: 0.1},
		Tau:    0.5, Workers: 2,
	})
	if err != nil {
		return nil, err
	}
	return core.Decompress(res.Bytes, 2)
}
