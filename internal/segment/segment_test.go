package segment

import (
	"math"
	"testing"

	"tspsz/internal/critical"
	"tspsz/internal/field"
	"tspsz/internal/integrate"
)

// twoSinkField has sinks at x≈1/4 and x≈3/4 separated by a vertical
// separatrix at the middle: u = -(x-a)(x-b)(x-m)-ish via piecewise linear
// attraction to the nearer sink.
func twoSinkField() (*field.Field, []critical.Point) {
	f := field.New2D(33, 17)
	s1, s2 := 8.3, 24.7
	mid := (s1 + s2) / 2
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		x, y := p[0], p[1]
		var u float64
		if x < mid {
			u = -(x - s1)
		} else {
			u = -(x - s2)
		}
		f.U[idx] = float32(u * 0.5)
		f.V[idx] = float32(-(y - 8.2) * 0.5)
	}
	return f, critical.Extract(f)
}

func TestBasinsSplitAtSeparatrix(t *testing.T) {
	f, cps := twoSinkField()
	sinks := []int{}
	for i, cp := range cps {
		if cp.Type == critical.Sink {
			sinks = append(sinks, i)
		}
	}
	if len(sinks) < 2 {
		t.Fatalf("setup: %d sinks, want 2 (cps=%v)", len(sinks), cps)
	}
	par := integrate.Params{EpsP: 5e-2, MaxSteps: 3000, H: 0.1}
	labels := Basins(f, cps, 1, par, 2)
	// Vertices well left of the middle go to the left sink; right to right.
	left := labels[f.Grid.VertexIndex(4, 8, 0)]
	right := labels[f.Grid.VertexIndex(28, 8, 0)]
	if left == Unassigned || right == Unassigned {
		t.Fatalf("interior vertices unassigned: left=%d right=%d", left, right)
	}
	if left == right {
		t.Fatal("both sides attracted to the same sink")
	}
	if math.Abs(cps[left].Pos[0]-8.3) > 1 || math.Abs(cps[right].Pos[0]-24.7) > 1 {
		t.Errorf("labels resolve to wrong sinks: %v, %v", cps[left].Pos, cps[right].Pos)
	}
	assigned := 0
	for _, l := range labels {
		if l != Unassigned {
			assigned++
		}
	}
	if frac := float64(assigned) / float64(len(labels)); frac < 0.6 {
		t.Errorf("only %.0f%% of vertices assigned", 100*frac)
	}
}

func TestBasinsDeterministicAcrossWorkers(t *testing.T) {
	f, cps := twoSinkField()
	par := integrate.Params{EpsP: 5e-2, MaxSteps: 1000, H: 0.1}
	a := Basins(f, cps, 1, par, 1)
	b := Basins(f, cps, 1, par, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("labels differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestAgreement(t *testing.T) {
	if got := Agreement([]int{1, 2, 3}, []int{1, 2, 3}); got != 1 {
		t.Errorf("identical agreement = %v", got)
	}
	if got := Agreement([]int{1, 2, 3, 4}, []int{1, 2, 0, 0}); got != 0.5 {
		t.Errorf("half agreement = %v", got)
	}
	if got := Agreement(nil, nil); got != 1 {
		t.Errorf("empty agreement = %v", got)
	}
}

func TestAgreementPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Agreement([]int{1}, []int{1, 2})
}

func TestSizes(t *testing.T) {
	sz := Sizes([]int{0, 0, 1, Unassigned, 1, 1})
	if sz[0] != 2 || sz[1] != 3 || sz[Unassigned] != 1 {
		t.Errorf("sizes %v", sz)
	}
}

// Basin agreement after TspSZ compression should be near-perfect, since
// both the absorbing critical points and the dividing separatrices are
// preserved.
func TestBasinAgreementSurvivesTspSZ(t *testing.T) {
	f, cps := twoSinkField()
	par := integrate.Params{EpsP: 5e-2, MaxSteps: 1000, H: 0.1}
	orig := Basins(f, cps, 1, par, 2)

	// Use internal/core via a local import cycle-free path: compress with
	// cpsz directly exercises the same property (critical cells lossless).
	res, err := compressForTest(f)
	if err != nil {
		t.Fatal(err)
	}
	dec := Basins(res, cps, 1, par, 2)
	if ag := Agreement(orig, dec); ag < 0.95 {
		t.Errorf("basin agreement %.3f after compression, want >= 0.95", ag)
	}
}
