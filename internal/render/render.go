// Package render rasterizes 2D vector field topology for the qualitative
// figures of the paper: line integral convolution backgrounds (the context
// texture of Figs. 5 and 7), magnitude and error heatmaps, skeleton
// overlays with wrong-separatrix highlighting, and lossless-vertex maps.
// cmd/topoviz is a thin flag wrapper around this package.
package render

import (
	"fmt"
	"image"
	"image/color"
	"math"

	"tspsz/internal/field"
)

// Canvas maps continuous grid coordinates onto an RGBA image, with the
// vertical axis flipped so the grid origin is bottom-left as in the
// paper's figures.
type Canvas struct {
	Img  *image.RGBA
	Zoom int
	ny   int
}

// NewCanvas allocates a canvas for an nx×ny vertex grid at zoom pixels per
// grid unit.
func NewCanvas(nx, ny, zoom int) *Canvas {
	if zoom < 1 {
		zoom = 1
	}
	return &Canvas{Img: image.NewRGBA(image.Rect(0, 0, nx*zoom, ny*zoom)), Zoom: zoom, ny: ny}
}

// Set paints the pixel covering grid position (x, y); out-of-domain
// positions are ignored.
func (c *Canvas) Set(x, y float64, col color.RGBA) {
	px := int(x * float64(c.Zoom))
	py := int((float64(c.ny-1) - y) * float64(c.Zoom))
	if px < 0 || py < 0 || px >= c.Img.Bounds().Dx() || py >= c.Img.Bounds().Dy() {
		return
	}
	c.Img.SetRGBA(px, py, col)
}

// Dot paints a filled disc of radius r pixels at grid position (x, y).
func (c *Canvas) Dot(x, y float64, r int, col color.RGBA) {
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx*dx+dy*dy <= r*r {
				c.Set(x+float64(dx)/float64(c.Zoom), y+float64(dy)/float64(c.Zoom), col)
			}
		}
	}
}

// Polyline draws the piecewise-linear curve through pts.
func (c *Canvas) Polyline(pts [][3]float64, col color.RGBA) {
	for i := 1; i < len(pts); i++ {
		x0, y0 := pts[i-1][0], pts[i-1][1]
		x1, y1 := pts[i][0], pts[i][1]
		n := int(math.Hypot(x1-x0, y1-y0)*float64(c.Zoom)) + 1
		for s := 0; s <= n; s++ {
			t := float64(s) / float64(n)
			c.Set(x0+t*(x1-x0), y0+t*(y1-y0), col)
		}
	}
}

// GridPos converts a pixel to its grid position (the inverse of Set's
// mapping, at pixel centers).
func (c *Canvas) GridPos(px, py int) (x, y float64) {
	x = (float64(px) + 0.5) / float64(c.Zoom)
	y = float64(c.ny-1) - (float64(py)+0.5)/float64(c.Zoom)
	return
}

// Heatmap fills the canvas from a scalar per-pixel function using the
// given colormap over [lo, hi].
func (c *Canvas) Heatmap(val func(x, y float64) float64, lo, hi float64, cm Colormap) {
	b := c.Img.Bounds()
	for py := 0; py < b.Dy(); py++ {
		for px := 0; px < b.Dx(); px++ {
			x, y := c.GridPos(px, py)
			c.Img.SetRGBA(px, py, cm(normalize(val(x, y), lo, hi)))
		}
	}
}

func normalize(v, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	t := (v - lo) / (hi - lo)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return t
}

// Colormap maps t ∈ [0, 1] to a color.
type Colormap func(t float64) color.RGBA

// Viridis-like perceptually ordered map (piecewise-linear approximation).
func Viridis(t float64) color.RGBA {
	stops := [][4]float64{
		{0.0, 68, 1, 84},
		{0.25, 59, 82, 139},
		{0.5, 33, 145, 140},
		{0.75, 94, 201, 98},
		{1.0, 253, 231, 37},
	}
	return lerpStops(stops, t)
}

// Grayscale maps t to a linear gray ramp (clamped to [0, 1]).
func Grayscale(t float64) color.RGBA {
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	g := uint8(255 * t)
	return color.RGBA{g, g, g, 255}
}

// Hot is a black-red-yellow-white map for error magnitudes (Fig. 3).
func Hot(t float64) color.RGBA {
	stops := [][4]float64{
		{0.0, 10, 10, 40},
		{0.4, 180, 30, 30},
		{0.75, 255, 170, 30},
		{1.0, 255, 255, 255},
	}
	return lerpStops(stops, t)
}

func lerpStops(stops [][4]float64, t float64) color.RGBA {
	if t <= stops[0][0] {
		return color.RGBA{uint8(stops[0][1]), uint8(stops[0][2]), uint8(stops[0][3]), 255}
	}
	for i := 1; i < len(stops); i++ {
		if t <= stops[i][0] {
			f := (t - stops[i-1][0]) / (stops[i][0] - stops[i-1][0])
			l := func(a, b float64) uint8 { return uint8(a + f*(b-a)) }
			return color.RGBA{
				l(stops[i-1][1], stops[i][1]),
				l(stops[i-1][2], stops[i][2]),
				l(stops[i-1][3], stops[i][3]),
				255,
			}
		}
	}
	last := stops[len(stops)-1]
	return color.RGBA{uint8(last[1]), uint8(last[2]), uint8(last[3]), 255}
}

// SliceXY extracts the k-th z-plane of a 3D field as a 2D field, so the 2D
// renderers apply to 3D data (the paper's Fig. 7 shows planar context of
// Nek5000).
func SliceXY(f *field.Field, k int) (*field.Field, error) {
	if f.Dim() != 3 {
		return nil, fmt.Errorf("render: SliceXY needs a 3D field")
	}
	nx, ny, nz := f.Grid.Dims()
	if k < 0 || k >= nz {
		return nil, fmt.Errorf("render: slice %d out of range [0,%d)", k, nz)
	}
	out := field.New2D(nx, ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			src := f.Grid.VertexIndex(i, j, k)
			dst := out.Grid.VertexIndex(i, j, 0)
			out.U[dst] = f.U[src]
			out.V[dst] = f.V[src]
		}
	}
	return out, nil
}
