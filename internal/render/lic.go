package render

import (
	"image"
	"image/color"
	"math"
	"math/rand"

	"tspsz/internal/field"
)

// LICOptions configures line integral convolution.
type LICOptions struct {
	// Zoom is pixels per grid unit (>= 1).
	Zoom int
	// Length is the half-length of the convolution streamline in pixels
	// (default 12).
	Length int
	// Seed drives the white-noise texture; fixed default for
	// reproducibility.
	Seed int64
	// Contrast stretches the output around 0.5 (default 2.2).
	Contrast float64
}

func (o *LICOptions) defaults() {
	if o.Zoom < 1 {
		o.Zoom = 2
	}
	if o.Length <= 0 {
		o.Length = 12
	}
	if o.Contrast == 0 { //lint:allow floatcmp zero is the documented "unset option" sentinel, never a computed value
		o.Contrast = 2.2
	}
}

// LIC renders a line integral convolution of a 2D field: white noise
// smeared along streamlines, the standard dense flow visualization used as
// context in the paper's Figs. 5 and 7. The result is a grayscale RGBA
// image of size (nx·zoom)×(ny·zoom).
func LIC(f *field.Field, opts LICOptions) *image.RGBA {
	opts.defaults()
	nx, ny, _ := f.Grid.Dims()
	w, h := nx*opts.Zoom, ny*opts.Zoom
	noise := make([]float64, w*h)
	rng := rand.New(rand.NewSource(opts.Seed + 7))
	for i := range noise {
		noise[i] = rng.Float64()
	}
	c := NewCanvas(nx, ny, opts.Zoom)
	out := c.Img
	step := 0.5 / float64(opts.Zoom) // half-pixel steps in grid units

	sampleNoise := func(x, y float64) (float64, bool) {
		px := int(x * float64(opts.Zoom))
		py := int((float64(ny-1) - y) * float64(opts.Zoom))
		if px < 0 || py < 0 || px >= w || py >= h {
			return 0, false
		}
		return noise[py*w+px], true
	}

	for py := 0; py < h; py++ {
		for px := 0; px < w; px++ {
			x, y := c.GridPos(px, py)
			sum, n := 0.0, 0
			if v, ok := sampleNoise(x, y); ok {
				sum += v
				n++
			}
			// March both directions along the (normalized) flow.
			for _, dir := range []float64{1, -1} {
				cx, cy := x, y
				for s := 0; s < opts.Length; s++ {
					vec, _, ok := f.Sample([3]float64{cx, cy, 0}, nil)
					if !ok {
						break
					}
					mag := math.Hypot(vec[0], vec[1])
					if mag < 1e-12 {
						break
					}
					cx += dir * step * vec[0] / mag
					cy += dir * step * vec[1] / mag
					v, ok := sampleNoise(cx, cy)
					if !ok {
						break
					}
					sum += v
					n++
				}
			}
			t := 0.5
			if n > 0 {
				t = sum / float64(n)
			}
			// Contrast stretch around the mean.
			t = 0.5 + (t-0.5)*opts.Contrast
			if t < 0 {
				t = 0
			}
			if t > 1 {
				t = 1
			}
			g := uint8(40 + 190*t)
			out.SetRGBA(px, py, color.RGBA{g, g, g, 255})
		}
	}
	return out
}
