package render

import (
	"image/color"
	"math"
	"testing"

	"tspsz/internal/field"
	"tspsz/internal/integrate"
)

func gyre(nx, ny int) *field.Field {
	f := field.New2D(nx, ny)
	lx := float64(nx-1) / 2
	ly := float64(ny-1) / 2
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		f.U[idx] = float32(-math.Sin(math.Pi*p[0]/lx)*math.Cos(math.Pi*p[1]/ly) - 0.1)
		f.V[idx] = float32(math.Cos(math.Pi*p[0]/lx) * math.Sin(math.Pi*p[1]/ly))
	}
	return f
}

func TestCanvasSetRespectsBounds(t *testing.T) {
	c := NewCanvas(10, 8, 3)
	if c.Img.Bounds().Dx() != 30 || c.Img.Bounds().Dy() != 24 {
		t.Fatalf("canvas size %v", c.Img.Bounds())
	}
	// Out-of-domain writes are silently ignored.
	c.Set(-5, 3, color.RGBA{255, 0, 0, 255})
	c.Set(100, 3, color.RGBA{255, 0, 0, 255})
	c.Set(3, -2, color.RGBA{255, 0, 0, 255})
	// In-domain write lands somewhere.
	c.Set(3, 3, color.RGBA{255, 0, 0, 255})
	found := false
	b := c.Img.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			if r, _, _, _ := c.Img.At(x, y).RGBA(); r > 0 {
				found = true
			}
		}
	}
	if !found {
		t.Error("Set(3,3) painted nothing")
	}
}

func TestGridPosRoundTrip(t *testing.T) {
	c := NewCanvas(16, 12, 4)
	for py := 0; py < 48; py += 7 {
		for px := 0; px < 64; px += 7 {
			x, y := c.GridPos(px, py)
			// Setting at (x,y) must hit exactly pixel (px,py).
			before := c.Img.RGBAAt(px, py)
			c.Set(x, y, color.RGBA{1, 2, 3, 255})
			after := c.Img.RGBAAt(px, py)
			if after == before {
				t.Fatalf("GridPos(%d,%d) -> (%v,%v) did not map back", px, py, x, y)
			}
		}
	}
}

func TestColormapsEndpoints(t *testing.T) {
	for name, cm := range map[string]Colormap{"viridis": Viridis, "gray": Grayscale, "hot": Hot} {
		lo := cm(0)
		hi := cm(1)
		if lo == hi {
			t.Errorf("%s: endpoints identical", name)
		}
		if a := cm(0.5); a.A != 255 {
			t.Errorf("%s: not opaque", name)
		}
		// Clamping outside [0,1].
		if cm(-1) != cm(0) || cm(2) != cm(1) {
			t.Errorf("%s: no clamping", name)
		}
	}
}

func TestLICProducesStructure(t *testing.T) {
	f := gyre(24, 24)
	img := LIC(f, LICOptions{Zoom: 2, Length: 8})
	if img.Bounds().Dx() != 48 || img.Bounds().Dy() != 48 {
		t.Fatalf("LIC size %v", img.Bounds())
	}
	// LIC output must not be constant, and smearing must reduce variance
	// versus raw noise (neighbors along flow correlate).
	var sum, sumSq float64
	n := 0
	for y := 0; y < 48; y++ {
		for x := 0; x < 48; x++ {
			v := float64(img.RGBAAt(x, y).R)
			sum += v
			sumSq += v * v
			n++
		}
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance == 0 {
		t.Fatal("LIC output constant")
	}
	if variance > 128*128 {
		t.Fatalf("LIC variance %v implausibly high", variance)
	}
}

func TestLICDeterministic(t *testing.T) {
	f := gyre(16, 16)
	a := LIC(f, LICOptions{Zoom: 1})
	b := LIC(f, LICOptions{Zoom: 1})
	if len(a.Pix) != len(b.Pix) {
		t.Fatal("size mismatch")
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("LIC not deterministic")
		}
	}
}

func TestSkeletonFigure(t *testing.T) {
	f := gyre(24, 24)
	par := integrate.Params{EpsP: 1e-2, MaxSteps: 100, H: 0.05}
	img, err := Skeleton(f, nil, SkeletonOptions{Zoom: 2, Params: par})
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 48 {
		t.Fatalf("unexpected size %v", img.Bounds())
	}
	// With a distorted decompressed field, red/green highlights appear.
	dec := f.Clone()
	for i := range dec.U {
		dec.U[i] += 0.8
	}
	img2, err := Skeleton(f, dec, SkeletonOptions{Zoom: 2, Params: par, Tau: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	foundHighlight := false
	b := img2.Bounds()
	for y := b.Min.Y; y < b.Max.Y && !foundHighlight; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			px := img2.RGBAAt(x, y)
			if px == ColWrong || px == ColTruth {
				foundHighlight = true
				break
			}
		}
	}
	if !foundHighlight {
		t.Error("no wrong/truth highlighting despite heavy distortion")
	}
}

func TestSkeletonRejects3D(t *testing.T) {
	f3 := field.New3D(4, 4, 4)
	if _, err := Skeleton(f3, nil, SkeletonOptions{}); err == nil {
		t.Error("3D field accepted")
	}
}

func TestErrorMap(t *testing.T) {
	f := gyre(16, 16)
	dec := f.Clone()
	dec.U[50] += 1
	img, err := ErrorMap(f, dec, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The error pixel region must differ from the background.
	bgCol := img.RGBAAt(0, 0)
	diff := false
	b := img.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			if img.RGBAAt(x, y) != bgCol {
				diff = true
			}
		}
	}
	if !diff {
		t.Error("error map is uniform despite an injected error")
	}
	if _, err := ErrorMap(f, field.New2D(4, 4), 1); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestLosslessMap(t *testing.T) {
	f := gyre(10, 10)
	img, err := LosslessMap(f, func(idx int) bool { return idx%7 == 0 }, 2)
	if err != nil {
		t.Fatal(err)
	}
	greens, pinks := 0, 0
	b := img.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			switch img.RGBAAt(x, y) {
			case ColLossless:
				greens++
			case ColLossy:
				pinks++
			}
		}
	}
	if greens == 0 || pinks == 0 {
		t.Errorf("expected both colors, got %d green %d pink", greens, pinks)
	}
}

func TestSliceXY(t *testing.T) {
	f := field.New3D(5, 4, 3)
	for idx := 0; idx < f.NumVertices(); idx++ {
		f.U[idx] = float32(idx)
		f.V[idx] = float32(-idx)
	}
	s, err := SliceXY(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		for i := 0; i < 5; i++ {
			src := f.Grid.VertexIndex(i, j, 1)
			dst := s.Grid.VertexIndex(i, j, 0)
			if s.U[dst] != f.U[src] || s.V[dst] != f.V[src] {
				t.Fatalf("slice mismatch at (%d,%d)", i, j)
			}
		}
	}
	if _, err := SliceXY(f, 9); err == nil {
		t.Error("out-of-range slice accepted")
	}
	if _, err := SliceXY(field.New2D(4, 4), 0); err == nil {
		t.Error("2D field accepted")
	}
}
