package render

import (
	"fmt"
	"image"
	"image/color"
	"math"

	"tspsz/internal/field"
	"tspsz/internal/integrate"
	"tspsz/internal/skeleton"
)

// Palette used across the paper-style figures.
var (
	ColSeparatrix = color.RGBA{150, 220, 255, 255} // light blue (Figs. 1/5/7)
	ColWrong      = color.RGBA{230, 40, 40, 255}   // red: incorrect separatrix
	ColTruth      = color.RGBA{40, 200, 80, 255}   // green: its ground truth
	ColSaddle     = color.RGBA{255, 220, 0, 255}
	ColSource     = color.RGBA{255, 80, 200, 255}
	ColSink       = color.RGBA{90, 60, 220, 255}
	ColLossless   = color.RGBA{40, 170, 60, 255}   // green (Fig. 6)
	ColLossy      = color.RGBA{245, 180, 200, 255} // pink (Fig. 6)
)

// SkeletonOptions configures Skeleton figure rendering.
type SkeletonOptions struct {
	Zoom int
	// LICBackground draws an LIC context texture instead of a magnitude
	// heatmap, as in Figs. 5 and 7.
	LICBackground bool
	// Tau is the Fréchet tolerance for wrong-separatrix highlighting when
	// a decompressed field is supplied.
	Tau float64
	// Params are the tracing parameters.
	Params integrate.Params
}

// Skeleton renders the topological skeleton of f. When dec is non-nil, the
// decompressed field's separatrices are drawn instead, with incorrect ones
// in red over their green ground truth — the exact presentation of Figs. 1
// and 5.
func Skeleton(f, dec *field.Field, opts SkeletonOptions) (*image.RGBA, error) {
	if f.Dim() != 2 {
		return nil, fmt.Errorf("render: Skeleton needs a 2D field (use SliceXY for 3D)")
	}
	if opts.Zoom < 1 {
		opts.Zoom = 2
	}
	if opts.Tau == 0 { //lint:allow floatcmp zero is the documented "unset option" sentinel, never a computed value
		opts.Tau = math.Sqrt2
	}
	nx, ny, _ := f.Grid.Dims()
	c := NewCanvas(nx, ny, opts.Zoom)
	if opts.LICBackground {
		c.Img = LIC(f, LICOptions{Zoom: opts.Zoom})
	} else {
		maxM := 0.0
		for i := 0; i < f.NumVertices(); i++ {
			if m := math.Hypot(float64(f.U[i]), float64(f.V[i])); m > maxM {
				maxM = m
			}
		}
		c.Heatmap(func(x, y float64) float64 {
			vec, _, ok := f.Sample([3]float64{x, y, 0}, nil)
			if !ok {
				return 0
			}
			return math.Hypot(vec[0], vec[1])
		}, 0, maxM, Viridis)
	}

	orig := skeleton.Extract(f, opts.Params)
	if dec == nil {
		for _, s := range orig.Seps {
			c.Polyline(s.Points, ColSeparatrix)
		}
	} else {
		got := skeleton.ExtractWith(dec, orig.CPs, opts.Params)
		for i := range orig.Seps {
			if i < len(got.Seps) && skeleton.CheckTraj(&orig.Seps[i], &got.Seps[i], opts.Tau) {
				c.Polyline(got.Seps[i].Points, ColSeparatrix)
				continue
			}
			if i < len(got.Seps) {
				c.Polyline(got.Seps[i].Points, ColWrong)
			}
			c.Polyline(orig.Seps[i].Points, ColTruth)
		}
	}
	for _, cp := range orig.CPs {
		col := ColSaddle
		switch cp.Type.String() {
		case "source":
			col = ColSource
		case "sink":
			col = ColSink
		}
		c.Dot(cp.Pos[0], cp.Pos[1], opts.Zoom, col)
	}
	return c.Img, nil
}

// ErrorMap renders the per-vertex error magnitude between orig and dec
// with the Hot colormap (Fig. 3).
func ErrorMap(orig, dec *field.Field, zoom int) (*image.RGBA, error) {
	if orig.Dim() != 2 {
		return nil, fmt.Errorf("render: ErrorMap needs 2D fields")
	}
	if orig.NumVertices() != dec.NumVertices() {
		return nil, fmt.Errorf("render: field shapes differ")
	}
	if zoom < 1 {
		zoom = 2
	}
	nx, ny, _ := orig.Grid.Dims()
	c := NewCanvas(nx, ny, zoom)
	errAt := func(idx int) float64 {
		du := math.Abs(float64(orig.U[idx]) - float64(dec.U[idx]))
		dv := math.Abs(float64(orig.V[idx]) - float64(dec.V[idx]))
		return math.Max(du, dv)
	}
	maxE := 0.0
	for i := 0; i < orig.NumVertices(); i++ {
		if e := errAt(i); e > maxE {
			maxE = e
		}
	}
	c.Heatmap(func(x, y float64) float64 {
		i := int(x + 0.5)
		j := int(y + 0.5)
		if i < 0 || j < 0 || i >= nx || j >= ny {
			return 0
		}
		return errAt(orig.Grid.VertexIndex(i, j, 0))
	}, 0, maxE, Hot)
	return c.Img, nil
}

// LosslessMap renders which vertices a compressor stored verbatim (green)
// versus lossily (pink) — Fig. 6.
func LosslessMap(f *field.Field, isLossless func(idx int) bool, zoom int) (*image.RGBA, error) {
	if f.Dim() != 2 {
		return nil, fmt.Errorf("render: LosslessMap needs a 2D field")
	}
	if zoom < 1 {
		zoom = 2
	}
	nx, ny, _ := f.Grid.Dims()
	c := NewCanvas(nx, ny, zoom)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			col := ColLossy
			if isLossless(f.Grid.VertexIndex(i, j, 0)) {
				col = ColLossless
			}
			for dy := 0; dy < zoom; dy++ {
				for dx := 0; dx < zoom; dx++ {
					c.Img.SetRGBA(i*zoom+dx, (ny-1-j)*zoom+dy, col)
				}
			}
		}
	}
	return c.Img, nil
}

// BasinMap colors every vertex by its attraction-basin label (palette
// cycled deterministically); Unassigned (-1) renders dark gray. It
// visualizes the segment package's domain decomposition.
func BasinMap(f *field.Field, labels []int, zoom int) (*image.RGBA, error) {
	if f.Dim() != 2 {
		return nil, fmt.Errorf("render: BasinMap needs a 2D field")
	}
	if len(labels) != f.NumVertices() {
		return nil, fmt.Errorf("render: %d labels for %d vertices", len(labels), f.NumVertices())
	}
	if zoom < 1 {
		zoom = 2
	}
	palette := []color.RGBA{
		{230, 120, 60, 255}, {70, 160, 220, 255}, {120, 200, 90, 255},
		{200, 90, 180, 255}, {240, 200, 70, 255}, {90, 200, 200, 255},
		{160, 110, 220, 255}, {220, 150, 150, 255},
	}
	dark := color.RGBA{50, 50, 55, 255}
	nx, ny, _ := f.Grid.Dims()
	c := NewCanvas(nx, ny, zoom)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			l := labels[f.Grid.VertexIndex(i, j, 0)]
			col := dark
			if l >= 0 {
				col = palette[l%len(palette)]
			}
			for dy := 0; dy < zoom; dy++ {
				for dx := 0; dx < zoom; dx++ {
					c.Img.SetRGBA(i*zoom+dx, (ny-1-j)*zoom+dy, col)
				}
			}
		}
	}
	return c.Img, nil
}
