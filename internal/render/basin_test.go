package render

import (
	"testing"

	"tspsz/internal/field"
)

func TestBasinMap(t *testing.T) {
	f := gyre(12, 10)
	labels := make([]int, f.NumVertices())
	for i := range labels {
		switch {
		case i%5 == 0:
			labels[i] = -1
		case i%2 == 0:
			labels[i] = 3
		default:
			labels[i] = 7
		}
	}
	img, err := BasinMap(f, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 24 || img.Bounds().Dy() != 20 {
		t.Fatalf("size %v", img.Bounds())
	}
	// At least three distinct colors must appear (two basins + unassigned).
	colors := map[[4]uint8]bool{}
	b := img.Bounds()
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			c := img.RGBAAt(x, y)
			colors[[4]uint8{c.R, c.G, c.B, c.A}] = true
		}
	}
	if len(colors) < 3 {
		t.Errorf("only %d distinct colors", len(colors))
	}
}

func TestBasinMapRejectsBadInput(t *testing.T) {
	f := gyre(8, 8)
	if _, err := BasinMap(f, make([]int, 3), 1); err == nil {
		t.Error("label length mismatch accepted")
	}
	if _, err := BasinMap(field.New3D(4, 4, 4), make([]int, 64), 1); err == nil {
		t.Error("3D field accepted")
	}
}
