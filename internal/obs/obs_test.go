package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"
)

// Every method must be a no-op (or a plain passthrough) on a nil Collector.
func TestNilCollector(t *testing.T) {
	var c *Collector
	c.Add(CtrBytesOut, 42)
	ran := false
	if err := c.Do(StageTrace, 4, 100, func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("Do on nil collector did not run fn")
	}
	wantErr := errors.New("boom")
	if err := c.Do(StageTrace, 1, 0, func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("Do error = %v, want %v", err, wantErr)
	}
	if done := c.Dispatch("For", 10, 2); done != nil {
		t.Fatal("Dispatch on nil collector returned a callback")
	}
	if c.Snapshot() != nil {
		t.Fatal("Snapshot on nil collector is not nil")
	}
}

func TestCountersAndSpans(t *testing.T) {
	c := New()
	c.Add(CtrBytesOut, 100)
	c.Add(CtrBytesOut, 23)
	if err := c.Do(StageEntropyEncode, 8, 1000, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if done := c.Dispatch("ForErr", 50, 4); done != nil {
		done()
	}
	s := c.Snapshot()
	if s.Counters["bytes_out"] != 123 {
		t.Fatalf("bytes_out = %d, want 123", s.Counters["bytes_out"])
	}
	if s.Counters["parallel_dispatches"] != 1 || s.Counters["parallel_goroutines"] != 4 {
		t.Fatalf("dispatch counters = %d/%d, want 1/4",
			s.Counters["parallel_dispatches"], s.Counters["parallel_goroutines"])
	}
	if len(s.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(s.Spans))
	}
	sp := s.Spans[0]
	if sp.Stage != "entropy-encode" || sp.Workers != 8 || sp.Items != 1000 {
		t.Fatalf("span = %+v", sp)
	}
	if sp.DurationNs < 0 || sp.StartNs < 0 {
		t.Fatalf("span has negative timing: %+v", sp)
	}
	// Every known counter key is present even when zero.
	if len(s.Counters) != int(numCounters) {
		t.Fatalf("snapshot has %d counter keys, want %d", len(s.Counters), numCounters)
	}
	if _, ok := s.Counters["correction_iterations"]; !ok {
		t.Fatal("zero counter correction_iterations missing from snapshot")
	}
}

// Do must return fn's error after recording the span.
func TestDoPropagatesError(t *testing.T) {
	c := New()
	wantErr := errors.New("stage failed")
	if err := c.Do(StageReconstruct, 1, 0, func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("Do error = %v, want %v", err, wantErr)
	}
	if got := len(c.Snapshot().Spans); got != 1 {
		t.Fatalf("failed stage recorded %d spans, want 1", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Add(CtrChunksEncoded, 1)
				_ = c.Do(StageHistogram, 1, 1, func() error { return nil })
				if done := c.Dispatch("For", 1, 1); done != nil {
					done()
				}
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Counters["chunks_encoded"] != 800 {
		t.Fatalf("chunks_encoded = %d, want 800", s.Counters["chunks_encoded"])
	}
	if len(s.Spans) != 800 {
		t.Fatalf("got %d spans, want 800", len(s.Spans))
	}
}

func TestSnapshotHelpers(t *testing.T) {
	c := New()
	_ = c.Do(StageCPExtract, 1, 10, func() error { return nil })
	_ = c.Do(StageTrace, 2, 20, func() error { return nil })
	_ = c.Do(StageTrace, 2, 5, func() error { return nil })
	c.Add(CtrBytesStreamHeader, 32)
	c.Add(CtrBytesSectionEb, 100)
	c.Add(CtrBytesSectionQuant, 200)
	c.Add(CtrBytesSectionRaw, 50)
	c.Add(CtrBytesStreamTrailer, 12)
	c.Add(CtrBytesContainer, 40)
	c.Add(CtrBytesPatch, 999) // sub-measure, must NOT join the partition
	s := c.Snapshot()
	if got := s.Stages(); len(got) != 2 || got[0] != "cp-extract" || got[1] != "trace" {
		t.Fatalf("Stages() = %v", got)
	}
	if !s.HasStage("trace") || s.HasStage("correction") {
		t.Fatal("HasStage misreports")
	}
	if got := s.SectionSum(); got != 434 {
		t.Fatalf("SectionSum = %d, want 434", got)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if round.Counters["bytes_section_quant"] != 200 || len(round.Spans) != 3 {
		t.Fatalf("roundtrip lost data: %+v", round)
	}
}

// Spans sort by (start, stage, duration) so snapshots of deterministic
// timings serialize deterministically.
func TestSnapshotSpanOrder(t *testing.T) {
	c := New()
	c.record(StageTrace, 100, 5, 1, 0)
	c.record(StageCPExtract, 100, 5, 1, 0)
	c.record(StageCPExtract, 50, 9, 1, 0)
	s := c.Snapshot()
	want := []string{"cp-extract", "cp-extract", "trace"}
	for i, sp := range s.Spans {
		if sp.Stage != want[i] {
			t.Fatalf("span %d = %s, want %s (order %v)", i, sp.Stage, want[i], s.Spans)
		}
	}
	if s.Spans[0].StartNs != 50 {
		t.Fatalf("earliest span first: got start %d", s.Spans[0].StartNs)
	}
}

func TestStageAndCounterNames(t *testing.T) {
	for st := Stage(0); st < numStages; st++ {
		if st.String() == "unknown" || st.String() == "" {
			t.Fatalf("stage %d has no name", st)
		}
	}
	if Stage(numStages).String() != "unknown" {
		t.Fatal("out-of-range stage must stringify as unknown")
	}
	for ctr := Counter(0); ctr < numCounters; ctr++ {
		if ctr.String() == "unknown" || ctr.String() == "" {
			t.Fatalf("counter %d has no name", ctr)
		}
	}
	if Counter(numCounters).String() != "unknown" {
		t.Fatal("out-of-range counter must stringify as unknown")
	}
}
