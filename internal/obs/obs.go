// Package obs is the pipeline observability layer: monotonic stage spans,
// atomic counters, and pprof CPU-profile attribution for the
// cp-extraction → tracing → prediction/quantization → entropy → correction
// pipeline.
//
// The design contract, relied on by the archive-determinism guarantee:
//
//   - Zero cost by default. Every method is valid on a nil *Collector and
//     reduces to calling the wrapped function (or to nothing); no atomics,
//     clock reads, or allocations happen on the nil path.
//   - Race free. Counters are atomic; spans append under a mutex. Any
//     worker count may record concurrently.
//   - Non-perturbing. Nothing a Collector measures ever feeds back into
//     kernel behavior: spans are monotonic deltas from a per-collector
//     epoch and wall-clock values never reach encoder output, so archives
//     are byte-identical with observability on or off (enforced by
//     TestObservedArchivesByteIdentical and compatible with the tsplint
//     determinism check — no time.Now lives in a kernel package).
//
// Stage work runs under a pprof label ("stage"=<name>), so a CPU profile
// captured around an observed compression attributes samples to pipeline
// phases; pprof labels are inherited by goroutines the stage spawns, which
// covers the internal/parallel worker pools.
package obs

import (
	"context"
	"encoding/json"
	"io"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline phase. The String names are the stable
// identifiers used in snapshots and pprof labels.
type Stage uint8

const (
	// StageCPExtract is critical-point extraction over the input field.
	StageCPExtract Stage = iota
	// StageTrace is separatrix tracing (original and decompressed data).
	StageTrace
	// StagePredictQuant is the region-parallel bound derivation,
	// prediction, and quantization pass.
	StagePredictQuant
	// StageHistogram is the parallel symbol-histogram reduction feeding
	// the shared canonical Huffman codebook.
	StageHistogram
	// StageEntropyEncode is chunked Huffman+DEFLATE serialization.
	StageEntropyEncode
	// StageEntropyDecode is chunk-parallel inflate + Huffman decode.
	StageEntropyDecode
	// StageReconstruct is the region-parallel value reconstruction.
	StageReconstruct
	// StageCorrection is the TspSZ-i iterative correction loop, including
	// its re-verification rounds.
	StageCorrection
	// StageContainer is TspSZ container assembly (patch packing included).
	StageContainer
	// StagePatchApply is the decode-side TspSZ-i patch application.
	StagePatchApply
	// StageFrame wraps one frame of a temporal sequence.
	StageFrame
	numStages
)

var stageNames = [numStages]string{
	"cp-extract",
	"trace",
	"predict-quantize",
	"histogram",
	"entropy-encode",
	"entropy-decode",
	"reconstruct",
	"correction",
	"container",
	"patch-apply",
	"frame",
}

// String returns the stable stage identifier.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Counter identifies one atomic counter. Byte counters marked "partition"
// split the archive exactly: their sum equals CtrBytesOut for any archive
// produced with a collector attached end to end (see Snapshot.SectionSum).
type Counter uint8

const (
	// CtrBytesIn is the uncompressed input payload size.
	CtrBytesIn Counter = iota
	// CtrBytesOut is the total archive size.
	CtrBytesOut
	// CtrBytesStreamHeader is the cpSZ fixed header + CRC (partition).
	CtrBytesStreamHeader
	// CtrBytesSectionEb is the encoded error-bound symbol section (partition).
	CtrBytesSectionEb
	// CtrBytesSectionQuant is the encoded quantization-code section (partition).
	CtrBytesSectionQuant
	// CtrBytesSectionRaw is the packed verbatim-float section (partition).
	CtrBytesSectionRaw
	// CtrBytesStreamTrailer is the cpSZ whole-stream trailer (partition).
	CtrBytesStreamTrailer
	// CtrBytesContainer is the TspSZ container framing around the inner
	// stream: header, CRCs, lengths, packed patch, trailer (partition).
	CtrBytesContainer
	// CtrBytesPatch is the packed TspSZ-i correction patch alone (a
	// sub-measure of CtrBytesContainer, not part of the partition).
	CtrBytesPatch
	// CtrChunksEncoded counts entropy chunks Huffman+DEFLATE packed.
	CtrChunksEncoded
	// CtrChunksDecoded counts entropy chunks verified + inflated.
	CtrChunksDecoded
	// CtrLosslessVertices counts vertices stored verbatim.
	CtrLosslessVertices
	// CtrCorrectionIters counts TspSZ-i outer correction rounds.
	CtrCorrectionIters
	// CtrCorrectionTraj counts trajectory fixes attempted across rounds.
	CtrCorrectionTraj
	// CtrPatchedVertices is the size of the TspSZ-i correction set V.
	CtrPatchedVertices
	// CtrDispatches counts internal/parallel loop dispatches.
	CtrDispatches
	// CtrDispatchGoroutines counts worker goroutines those dispatches
	// launched (after pool clamping).
	CtrDispatchGoroutines
	// CtrDispatchBusyNs is cumulative wall time spent inside parallel
	// dispatches (overlapping dispatches count independently).
	CtrDispatchBusyNs
	numCounters
)

var counterNames = [numCounters]string{
	"bytes_in",
	"bytes_out",
	"bytes_stream_header",
	"bytes_section_eb",
	"bytes_section_quant",
	"bytes_section_raw",
	"bytes_stream_trailer",
	"bytes_container",
	"bytes_patch",
	"chunks_encoded",
	"chunks_decoded",
	"lossless_vertices",
	"correction_iterations",
	"correction_trajectories",
	"patched_vertices",
	"parallel_dispatches",
	"parallel_goroutines",
	"parallel_busy_ns",
}

// partitionCounters are the byte counters that split an archive exactly.
var partitionCounters = []Counter{
	CtrBytesStreamHeader,
	CtrBytesSectionEb,
	CtrBytesSectionQuant,
	CtrBytesSectionRaw,
	CtrBytesStreamTrailer,
	CtrBytesContainer,
}

// String returns the stable counter identifier.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "unknown"
}

// span is one completed stage interval, timed as monotonic deltas from the
// collector epoch.
type span struct {
	stage   Stage
	start   time.Duration
	dur     time.Duration
	workers int
	items   int64
}

// Collector gathers spans and counters for one compression or
// decompression. A nil *Collector is valid everywhere and costs nothing.
// A Collector must not be shared by concurrent *independent* operations
// (their spans would interleave), but any number of goroutines within one
// operation may record into it.
type Collector struct {
	epoch time.Time

	mu    sync.Mutex
	spans []span

	counters [numCounters]atomic.Int64
}

// New returns a Collector whose span timestamps are monotonic offsets from
// this call.
func New() *Collector {
	return &Collector{epoch: time.Now()}
}

// Add increments a counter; no-op on a nil Collector.
func (c *Collector) Add(ctr Counter, n int64) {
	if c == nil {
		return
	}
	c.counters[ctr].Add(n)
}

// Do runs fn as one stage span: the interval is recorded with the given
// worker count and item count, and fn executes under a pprof
// "stage"=<name> label so CPU profiles attribute its samples (including
// goroutines it spawns) to the stage. On a nil Collector fn runs directly
// with no label and no clock reads.
func (c *Collector) Do(stage Stage, workers int, items int64, fn func() error) error {
	if c == nil {
		return fn()
	}
	start := time.Since(c.epoch)
	var err error
	pprof.Do(context.Background(), pprof.Labels("stage", stage.String()), func(context.Context) {
		err = fn()
	})
	c.record(stage, start, time.Since(c.epoch)-start, workers, items)
	return err
}

func (c *Collector) record(stage Stage, start, dur time.Duration, workers int, items int64) {
	c.mu.Lock()
	c.spans = append(c.spans, span{stage: stage, start: start, dur: dur, workers: workers, items: items})
	c.mu.Unlock()
}

// Dispatch is a per-dispatch hook for internal/parallel (wire it with
// parallel.SetHook(c.Dispatch)): it counts dispatches, the goroutines they
// launch (after pool clamping), and cumulative in-dispatch wall time. The
// returned func is invoked when the dispatch completes; a nil return means
// no completion callback. Safe on a nil Collector.
func (c *Collector) Dispatch(op string, n, workers int) func() {
	if c == nil {
		return nil
	}
	c.counters[CtrDispatches].Add(1)
	c.counters[CtrDispatchGoroutines].Add(int64(workers))
	start := time.Since(c.epoch)
	return func() {
		c.counters[CtrDispatchBusyNs].Add(int64(time.Since(c.epoch) - start))
	}
}

// SpanSnapshot is one completed stage interval in exportable form.
type SpanSnapshot struct {
	// Stage is the stable stage name.
	Stage string `json:"stage"`
	// StartNs is the monotonic offset from collector creation.
	StartNs int64 `json:"start_ns"`
	// DurationNs is the span length.
	DurationNs int64 `json:"duration_ns"`
	// Workers is the worker bound the stage ran with.
	Workers int `json:"workers"`
	// Items is the stage's unit-of-work count (vertices, chunks,
	// trajectories — see the stage taxonomy in DESIGN.md §9).
	Items int64 `json:"items"`
}

// Snapshot is a stable, self-describing document of everything a Collector
// gathered. Counters always carry every known key (zeros included) so the
// schema does not depend on the workload, and spans are ordered by
// (start, stage name, duration) so concurrent recordings serialize
// deterministically given deterministic timings.
type Snapshot struct {
	Spans    []SpanSnapshot   `json:"spans"`
	Counters map[string]int64 `json:"counters"`
}

// Snapshot captures the collector's current state. Returns nil on a nil
// Collector. Safe to call concurrently with recording (it observes a
// consistent prefix).
func (c *Collector) Snapshot() *Snapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	spans := make([]span, len(c.spans))
	copy(spans, c.spans)
	c.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		if spans[i].stage != spans[j].stage {
			return spans[i].stage < spans[j].stage
		}
		return spans[i].dur < spans[j].dur
	})
	s := &Snapshot{
		Spans:    make([]SpanSnapshot, len(spans)),
		Counters: make(map[string]int64, numCounters),
	}
	for i, sp := range spans {
		s.Spans[i] = SpanSnapshot{
			Stage:      sp.stage.String(),
			StartNs:    sp.start.Nanoseconds(),
			DurationNs: sp.dur.Nanoseconds(),
			Workers:    sp.workers,
			Items:      sp.items,
		}
	}
	for ctr := Counter(0); ctr < numCounters; ctr++ {
		s.Counters[ctr.String()] = c.counters[ctr].Load()
	}
	return s
}

// Stages returns the distinct stage names present, in first-start order.
func (s *Snapshot) Stages() []string {
	seen := make(map[string]bool)
	var out []string
	for _, sp := range s.Spans {
		if !seen[sp.Stage] {
			seen[sp.Stage] = true
			out = append(out, sp.Stage)
		}
	}
	return out
}

// HasStage reports whether at least one span of the named stage exists.
func (s *Snapshot) HasStage(name string) bool {
	for _, sp := range s.Spans {
		if sp.Stage == name {
			return true
		}
	}
	return false
}

// SectionSum sums the byte-partition counters (stream header, the three
// entropy sections, stream trailer, container framing). For an archive
// produced with the collector attached end to end it equals
// Counters["bytes_out"].
func (s *Snapshot) SectionSum() int64 {
	var sum int64
	for _, ctr := range partitionCounters {
		sum += s.Counters[ctr.String()]
	}
	return sum
}

// WriteJSON writes the snapshot as indented JSON. encoding/json sorts map
// keys, so the output is byte-stable for identical snapshot contents.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
