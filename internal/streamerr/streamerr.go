// Package streamerr defines the typed error taxonomy every decoder in the
// repository reports through. Archives reaching a decoder are untrusted
// input: a production service decoding streams from millions of users needs
// to tell apart "the stream ended early" (retryable transfer fault), "the
// stream is damaged" (integrity fault, includes the section/chunk/offset of
// the first violation), "the stream is from a different format generation"
// (compatibility fault), and "the stream never was an archive" (caller
// fault), and — orthogonally — "the caller gave up" (cancelled context,
// implicating the request, not the stream). Callers branch on the sentinels
// with errors.Is; the *Error
// type carries the location detail for diagnostics via errors.As.
//
// The sentinels are re-exported from the root tspsz package, and cmd/tspsz
// maps them to distinct process exit codes.
package streamerr

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// The failure classes of untrusted-stream decoding, plus one caller-side
// class (ErrCancelled) that implicates the request, not the stream.
var (
	// ErrTruncated marks a stream that ends before a section, directory
	// entry, or payload it declares; retrying with the complete stream may
	// succeed.
	ErrTruncated = errors.New("truncated stream")
	// ErrCorrupt marks a stream whose content contradicts itself: failed
	// checksums, impossible directory entries, symbol streams that decode
	// past their bounds, or a panic contained while decoding.
	ErrCorrupt = errors.New("corrupt stream")
	// ErrVersion marks a structurally sound stream written by a format
	// generation this build does not support.
	ErrVersion = errors.New("unsupported stream version")
	// ErrHeader marks input that is not an archive at all, or whose fixed
	// header carries invalid field parameters (magic, dimension, mode).
	ErrHeader = errors.New("invalid stream header")
	// ErrCancelled marks work abandoned because the caller's context was
	// cancelled or its deadline expired. Unlike the other classes it says
	// nothing about the stream: retrying the same bytes with a live context
	// may succeed, so it must never be conflated with corruption.
	ErrCancelled = errors.New("operation cancelled")
)

// IsContextErr reports whether err is (or wraps) context.Canceled or
// context.DeadlineExceeded — the two errors the Ctx* dispatchers return
// verbatim when a pipeline stops early.
func IsContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Error is the concrete error every constructor in this package returns:
// one failure class plus the location of the first violation. Chunk and
// Offset are -1 when the fault is not chunk- or offset-scoped.
type Error struct {
	Kind    error  // one of the package sentinels
	Section string // e.g. "container", "eb-symbols", "chunk directory"
	Chunk   int    // chunk index within the section, -1 if not chunk-scoped
	Offset  int64  // byte offset within the stream, -1 if unknown
	msg     string // human-readable detail
	cause   error  // wrapped cause, may be nil
}

// Error implements the error interface.
func (e *Error) Error() string {
	s := e.Section + ": " + e.Kind.Error()
	if e.Chunk >= 0 {
		s += fmt.Sprintf(" (chunk %d)", e.Chunk)
	}
	if e.Offset >= 0 {
		s += fmt.Sprintf(" (offset %d)", e.Offset)
	}
	if e.msg != "" {
		s += ": " + e.msg
	}
	if e.cause != nil {
		s += ": " + e.cause.Error()
	}
	return s
}

// Unwrap exposes both the failure-class sentinel and the wrapped cause, so
// errors.Is matches the sentinel and errors.As reaches the cause.
func (e *Error) Unwrap() []error {
	if e.cause != nil {
		return []error{e.Kind, e.cause}
	}
	return []error{e.Kind}
}

// WithChunk returns a copy of e scoped to chunk index i.
func (e *Error) WithChunk(i int) *Error {
	c := *e
	c.Chunk = i
	return &c
}

// WithOffset returns a copy of e scoped to stream byte offset off.
func (e *Error) WithOffset(off int64) *Error {
	c := *e
	c.Offset = off
	return &c
}

func newError(kind error, section, format string, args ...any) *Error {
	return &Error{Kind: kind, Section: section, Chunk: -1, Offset: -1, msg: fmt.Sprintf(format, args...)}
}

// Truncated reports that section ends before the bytes it declares.
func Truncated(section, format string, args ...any) *Error {
	return newError(ErrTruncated, section, format, args...)
}

// Corrupt reports self-contradicting content in section.
func Corrupt(section, format string, args ...any) *Error {
	return newError(ErrCorrupt, section, format, args...)
}

// Version reports an unsupported format generation.
func Version(section string, got uint8) *Error {
	return newError(ErrVersion, section, "version %d", got)
}

// Header reports input that is not a valid archive header.
func Header(section, format string, args ...any) *Error {
	return newError(ErrHeader, section, format, args...)
}

// Cancelled reports that processing of section was abandoned on a cancelled
// or expired context; cause should be the context's error so errors.Is
// still matches context.Canceled / context.DeadlineExceeded through the
// wrapper.
func Cancelled(section string, cause error) *Error {
	return &Error{Kind: ErrCancelled, Section: section, Chunk: -1, Offset: -1, cause: cause}
}

// Wrap attaches a failure class and section to an underlying non-nil
// cause. A cause that already carries a *Error keeps its original
// classification — the innermost decoder saw the violation first and knows
// it best — and a bare context error is classified ErrCancelled regardless
// of the kind the caller proposed, because cancellation implicates the
// request rather than the bytes.
func Wrap(kind error, section string, cause error) *Error {
	var se *Error
	if errors.As(cause, &se) {
		kind = se.Kind
	} else if IsContextErr(cause) {
		kind = ErrCancelled
	}
	return &Error{Kind: kind, Section: section, Chunk: -1, Offset: -1, cause: cause}
}

// Guard makes a decode entry point crash-proof: deferred at the top of a
// public Decompress/Verify function it converts a panic on the calling
// goroutine into an ErrCorrupt-typed error carrying the panic value and
// stack, and it re-classifies a *parallel.PanicError propagated up from a
// worker (which a deferred recover cannot see) the same way. A decoder
// that panics on untrusted bytes has been driven outside its parsing
// invariants, which is corruption by definition — but the panic detail is
// preserved so the underlying bug stays visible and fixable.
//
//	func Decompress(data []byte) (f *Field, err error) {
//		defer streamerr.Guard("mycodec", &err)
//		...
func Guard(section string, errp *error) {
	if v := recover(); v != nil {
		*errp = &Error{
			Kind: ErrCorrupt, Section: section, Chunk: -1, Offset: -1,
			msg:   "panic during decode",
			cause: fmt.Errorf("panic: %v\n%s", v, debug.Stack()),
		}
		return
	}
	if *errp == nil {
		return
	}
	if isPanicError(*errp) && !errors.Is(*errp, ErrCorrupt) {
		*errp = &Error{
			Kind: ErrCorrupt, Section: section, Chunk: -1, Offset: -1,
			msg: "worker panic during decode", cause: *errp,
		}
		return
	}
	// A bare context error escaping a Ctx* dispatcher is the caller's
	// cancellation, never stream damage: type it ErrCancelled. Errors a
	// decoder already typed (including ones that merely wrap a context
	// error) pass through untouched.
	var se *Error
	if !errors.As(*errp, &se) && IsContextErr(*errp) {
		*errp = Cancelled(section, *errp)
	}
}

// CancelGuard types a bare context error as ErrCancelled without the panic
// containment of Guard. Encode paths use it: their inputs are trusted
// fields rather than untrusted streams, so a panic there must stay a panic
// report instead of being relabeled corruption, but cancellation
// classification is the same on both sides.
//
//	func Compress(f *Field) (out []byte, err error) {
//		defer streamerr.CancelGuard("mycodec", &err)
//		...
func CancelGuard(section string, errp *error) {
	var se *Error
	if *errp != nil && !errors.As(*errp, &se) && IsContextErr(*errp) {
		*errp = Cancelled(section, *errp)
	}
}

// panicCarrier matches parallel.PanicError without importing the parallel
// package (which must stay import-free so it can be used anywhere).
type panicCarrier interface {
	error
	PanicValue() any
}

func isPanicError(err error) bool {
	var pc panicCarrier
	return errors.As(err, &pc)
}
