package streamerr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSentinelMatching(t *testing.T) {
	cases := []struct {
		err  error
		kind error
	}{
		{Truncated("dir", "cut at %d", 7), ErrTruncated},
		{Corrupt("chunk", "bad CRC"), ErrCorrupt},
		{Version("header", 9), ErrVersion},
		{Header("magic", "not an archive"), ErrHeader},
	}
	for _, tc := range cases {
		if !errors.Is(tc.err, tc.kind) {
			t.Errorf("%v does not match its own kind", tc.err)
		}
		for _, other := range []error{ErrTruncated, ErrCorrupt, ErrVersion, ErrHeader} {
			if other != tc.kind && errors.Is(tc.err, other) {
				t.Errorf("%v also matches %v", tc.err, other)
			}
		}
	}
}

func TestWithChunkAndOffsetCopy(t *testing.T) {
	base := Corrupt("payload", "bad byte")
	scoped := base.WithChunk(3).WithOffset(128)
	if base.Chunk != -1 || base.Offset != -1 {
		t.Fatal("WithChunk/WithOffset mutated the original")
	}
	if scoped.Chunk != 3 || scoped.Offset != 128 {
		t.Fatalf("scoped = chunk %d offset %d", scoped.Chunk, scoped.Offset)
	}
	msg := scoped.Error()
	if !strings.Contains(msg, "chunk 3") || !strings.Contains(msg, "offset 128") {
		t.Fatalf("message lacks location: %q", msg)
	}
}

func TestWrapKeepsInnerClassification(t *testing.T) {
	inner := Truncated("inner section", "short")
	outer := Wrap(ErrCorrupt, "outer", fmt.Errorf("context: %w", inner))
	if !errors.Is(outer, ErrTruncated) {
		t.Fatal("wrap lost the inner Truncated class")
	}
	if errors.Is(outer, ErrCorrupt) {
		t.Fatal("wrap overrode the inner classification with the fallback kind")
	}
	plain := Wrap(ErrCorrupt, "outer", errors.New("flate: bad data"))
	if !errors.Is(plain, ErrCorrupt) {
		t.Fatal("wrap of an untyped cause did not apply the fallback kind")
	}
}

func TestGuardContainsPanics(t *testing.T) {
	decode := func() (err error) {
		defer Guard("codec", &err)
		panic("index out of range")
	}
	err := decode()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("panic classified as %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "index out of range") {
		t.Fatalf("panic value lost: %q", err.Error())
	}
}

func TestCancelledWrapsContextErrors(t *testing.T) {
	for _, cause := range []error{context.Canceled, context.DeadlineExceeded} {
		err := Cancelled("pipeline", cause)
		if !errors.Is(err, ErrCancelled) {
			t.Errorf("Cancelled(%v) does not match ErrCancelled", cause)
		}
		// errors.Is must see the original context error through the wrapper,
		// so callers holding the ctx can still branch on ctx.Err().
		if !errors.Is(err, cause) {
			t.Errorf("Cancelled(%v) hides the context error", cause)
		}
		for _, other := range []error{ErrTruncated, ErrCorrupt, ErrVersion, ErrHeader} {
			if errors.Is(err, other) {
				t.Errorf("Cancelled(%v) also matches %v", cause, other)
			}
		}
		var se *Error
		if !errors.As(err, &se) || se.Section != "pipeline" {
			t.Errorf("Cancelled(%v) lost the section", cause)
		}
	}
}

func TestWrapClassifiesContextErrors(t *testing.T) {
	// A bare (or fmt-wrapped) context error must land in ErrCancelled no
	// matter what kind the caller proposed: cancellation implicates the
	// request, not the bytes.
	err := Wrap(ErrCorrupt, "outer", fmt.Errorf("stage: %w", context.Canceled))
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("context error wrapped as %v, want ErrCancelled", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("cancellation classified as corruption")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("context.Canceled not visible through the wrapper")
	}
	// But an error a decoder already typed keeps its class even when a
	// context error lurks underneath.
	inner := Truncated("inner", "short")
	err = Wrap(ErrCorrupt, "outer", fmt.Errorf("%w after %w", inner, context.Canceled))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("typed cause lost its class: %v", err)
	}
}

func TestGuardDoesNotReclassifyCancellation(t *testing.T) {
	for _, cause := range []error{context.Canceled, context.DeadlineExceeded} {
		decode := func() (err error) {
			defer Guard("codec", &err)
			return cause // what a Ctx* dispatcher returns verbatim
		}
		err := decode()
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("Guard left %v untyped: %v", cause, err)
		}
		if errors.Is(err, ErrCorrupt) {
			t.Fatalf("Guard reclassified %v as corruption", cause)
		}
		if !errors.Is(err, cause) {
			t.Fatalf("Guard hid the underlying %v", cause)
		}
	}
	// An error already carrying a *Error passes through Guard untouched,
	// even when it wraps a context error.
	pre := Cancelled("inner", context.Canceled)
	decode := func() (err error) {
		defer Guard("codec", &err)
		return pre
	}
	if err := decode(); err != error(pre) {
		t.Fatalf("Guard rewrapped an already-typed cancellation: %v", err)
	}
}

func TestCancelGuard(t *testing.T) {
	encode := func(ret error) (err error) {
		defer CancelGuard("encoder", &err)
		return ret
	}
	if err := encode(context.Canceled); !errors.Is(err, ErrCancelled) {
		t.Fatalf("CancelGuard left context.Canceled untyped: %v", err)
	}
	if err := encode(nil); err != nil {
		t.Fatalf("CancelGuard fabricated an error: %v", err)
	}
	plain := errors.New("disk full")
	if err := encode(plain); err != plain {
		t.Fatalf("CancelGuard rewrote a non-context error: %v", err)
	}
	// Unlike Guard, CancelGuard must NOT contain panics: an encode-side
	// panic is a bug report, not stream corruption.
	panicked := func() (err error) {
		defer func() {
			if recover() == nil {
				t.Error("CancelGuard swallowed an encode-side panic")
			}
		}()
		defer CancelGuard("encoder", &err)
		panic("encoder bug")
	}
	_ = panicked()
}

func TestIsContextErr(t *testing.T) {
	if !IsContextErr(context.Canceled) || !IsContextErr(context.DeadlineExceeded) {
		t.Fatal("IsContextErr misses the raw context errors")
	}
	if !IsContextErr(fmt.Errorf("x: %w", context.Canceled)) {
		t.Fatal("IsContextErr misses a wrapped context error")
	}
	if IsContextErr(errors.New("nope")) || IsContextErr(nil) {
		t.Fatal("IsContextErr matches non-context errors")
	}
}

type fakePanicError struct{ v any }

func (e *fakePanicError) Error() string   { return "worker panic" }
func (e *fakePanicError) PanicValue() any { return e.v }

func TestGuardReclassifiesWorkerPanics(t *testing.T) {
	decode := func() (err error) {
		defer Guard("codec", &err)
		return &fakePanicError{v: "boom"}
	}
	err := decode()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("worker panic classified as %v, want ErrCorrupt", err)
	}
	var pc interface{ PanicValue() any }
	if !errors.As(err, &pc) {
		t.Fatal("the panic carrier is no longer reachable via errors.As")
	}
	clean := func() (err error) {
		defer Guard("codec", &err)
		return nil
	}
	if err := clean(); err != nil {
		t.Fatalf("Guard fabricated an error: %v", err)
	}
	typed := func() (err error) {
		defer Guard("codec", &err)
		return Truncated("inner", "short")
	}
	if err := typed(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Guard rewrote an already-typed error: %v", err)
	}
}
