package streamerr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSentinelMatching(t *testing.T) {
	cases := []struct {
		err  error
		kind error
	}{
		{Truncated("dir", "cut at %d", 7), ErrTruncated},
		{Corrupt("chunk", "bad CRC"), ErrCorrupt},
		{Version("header", 9), ErrVersion},
		{Header("magic", "not an archive"), ErrHeader},
	}
	for _, tc := range cases {
		if !errors.Is(tc.err, tc.kind) {
			t.Errorf("%v does not match its own kind", tc.err)
		}
		for _, other := range []error{ErrTruncated, ErrCorrupt, ErrVersion, ErrHeader} {
			if other != tc.kind && errors.Is(tc.err, other) {
				t.Errorf("%v also matches %v", tc.err, other)
			}
		}
	}
}

func TestWithChunkAndOffsetCopy(t *testing.T) {
	base := Corrupt("payload", "bad byte")
	scoped := base.WithChunk(3).WithOffset(128)
	if base.Chunk != -1 || base.Offset != -1 {
		t.Fatal("WithChunk/WithOffset mutated the original")
	}
	if scoped.Chunk != 3 || scoped.Offset != 128 {
		t.Fatalf("scoped = chunk %d offset %d", scoped.Chunk, scoped.Offset)
	}
	msg := scoped.Error()
	if !strings.Contains(msg, "chunk 3") || !strings.Contains(msg, "offset 128") {
		t.Fatalf("message lacks location: %q", msg)
	}
}

func TestWrapKeepsInnerClassification(t *testing.T) {
	inner := Truncated("inner section", "short")
	outer := Wrap(ErrCorrupt, "outer", fmt.Errorf("context: %w", inner))
	if !errors.Is(outer, ErrTruncated) {
		t.Fatal("wrap lost the inner Truncated class")
	}
	if errors.Is(outer, ErrCorrupt) {
		t.Fatal("wrap overrode the inner classification with the fallback kind")
	}
	plain := Wrap(ErrCorrupt, "outer", errors.New("flate: bad data"))
	if !errors.Is(plain, ErrCorrupt) {
		t.Fatal("wrap of an untyped cause did not apply the fallback kind")
	}
}

func TestGuardContainsPanics(t *testing.T) {
	decode := func() (err error) {
		defer Guard("codec", &err)
		panic("index out of range")
	}
	err := decode()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("panic classified as %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "index out of range") {
		t.Fatalf("panic value lost: %q", err.Error())
	}
}

type fakePanicError struct{ v any }

func (e *fakePanicError) Error() string   { return "worker panic" }
func (e *fakePanicError) PanicValue() any { return e.v }

func TestGuardReclassifiesWorkerPanics(t *testing.T) {
	decode := func() (err error) {
		defer Guard("codec", &err)
		return &fakePanicError{v: "boom"}
	}
	err := decode()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("worker panic classified as %v, want ErrCorrupt", err)
	}
	var pc interface{ PanicValue() any }
	if !errors.As(err, &pc) {
		t.Fatal("the panic carrier is no longer reachable via errors.As")
	}
	clean := func() (err error) {
		defer Guard("codec", &err)
		return nil
	}
	if err := clean(); err != nil {
		t.Fatalf("Guard fabricated an error: %v", err)
	}
	typed := func() (err error) {
		defer Guard("codec", &err)
		return Truncated("inner", "short")
	}
	if err := typed(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Guard rewrote an already-typed error: %v", err)
	}
}
