// Package robust provides exact-sign geometric predicates for critical
// point detection: adaptive determinant signs (fast float path with a
// rounding-error certificate, exact big.Rat fallback) and the Simulation
// of Simplicity tie-breaking of Edelsbrunner & Mücke [46] that cpSZ-sos
// builds on. With SoS, a critical point that falls exactly on a cell face
// is claimed by exactly one of the adjacent cells, eliminating the
// duplicate detections a purely numerical extractor produces.
package robust

import (
	"math"
	"math/big"
)

// floatEps is the double-precision unit roundoff.
const floatEps = 2.220446049250313e-16

// DetSign2 returns the exact sign (-1, 0, +1) of the determinant
// | a b |
// | c d |
// computed over float64 inputs. The fast path certifies the floating-point
// result against a forward error bound; ties fall back to exact rational
// arithmetic (float64 values are exactly representable in big.Rat).
func DetSign2(a, b, c, d float64) int {
	ad := a * d
	bc := b * c
	det := ad - bc
	// Forward error of the 3-op evaluation is below 4·eps·(|ad|+|bc|).
	bound := 4 * floatEps * (math.Abs(ad) + math.Abs(bc))
	if det > bound {
		return 1
	}
	if det < -bound {
		return -1
	}
	return detSign2Exact(a, b, c, d)
}

func detSign2Exact(a, b, c, d float64) int {
	ra := new(big.Rat).SetFloat64(a)
	rb := new(big.Rat).SetFloat64(b)
	rc := new(big.Rat).SetFloat64(c)
	rd := new(big.Rat).SetFloat64(d)
	ad := new(big.Rat).Mul(ra, rd)
	bc := new(big.Rat).Mul(rb, rc)
	return ad.Cmp(bc)
}

// DetSign3 returns the exact sign of a 3×3 determinant (row major),
// with a certified float fast path and exact fallback.
func DetSign3(m [9]float64) int {
	t0 := m[4]*m[8] - m[5]*m[7]
	t1 := m[3]*m[8] - m[5]*m[6]
	t2 := m[3]*m[7] - m[4]*m[6]
	det := m[0]*t0 - m[1]*t1 + m[2]*t2
	// Coarse but safe forward bound over the 14-op evaluation.
	mag := math.Abs(m[0])*(math.Abs(m[4]*m[8])+math.Abs(m[5]*m[7])) +
		math.Abs(m[1])*(math.Abs(m[3]*m[8])+math.Abs(m[5]*m[6])) +
		math.Abs(m[2])*(math.Abs(m[3]*m[7])+math.Abs(m[4]*m[6]))
	bound := 16 * floatEps * mag
	if det > bound {
		return 1
	}
	if det < -bound {
		return -1
	}
	return detSign3Exact(m)
}

func detSign3Exact(m [9]float64) int {
	r := make([]*big.Rat, 9)
	for i, v := range m {
		r[i] = new(big.Rat).SetFloat64(v)
	}
	mul := func(a, b *big.Rat) *big.Rat { return new(big.Rat).Mul(a, b) }
	sub := func(a, b *big.Rat) *big.Rat { return new(big.Rat).Sub(a, b) }
	t0 := sub(mul(r[4], r[8]), mul(r[5], r[7]))
	t1 := sub(mul(r[3], r[8]), mul(r[5], r[6]))
	t2 := sub(mul(r[3], r[7]), mul(r[4], r[6]))
	det := sub(sub(mul(r[0], t0), mul(r[1], t1)), new(big.Rat).Neg(mul(r[2], t2)))
	return det.Sign()
}

// SoSDetSign2 returns the sign of the 2×2 determinant
//
//	| u_a  u_b |
//	| v_a  v_b |
//
// of vector values at global vertex indices a and b, under the Simulation
// of Simplicity perturbation u_i → u_i + δ^(4i+1), v_i → v_i + δ^(4i+3)
// for an infinitesimal δ > 0. The perturbed determinant expands to
//
//	det + u_a·δ^(4b+3) + v_b·δ^(4a+1) − u_b·δ^(4a+3) − v_a·δ^(4b+1)
//	    + δ^(4a+1+4b+3) − δ^(4b+1+4a+3)
//
// whose sign is decided by the lowest-order term with nonzero coefficient;
// the pure-δ terms cancel at equal order only when a == b (excluded). The
// decision is therefore never zero and is globally consistent, because all
// cells perturb the same underlying data.
func SoSDetSign2(ua, va float64, a int, ub, vb float64, b int) int {
	if s := DetSign2(ua, ub, va, vb); s != 0 {
		return s
	}
	// Terms in increasing δ-order. For a < b the order is
	// δ^(4a+1): +v_b, δ^(4a+3): −u_b, δ^(4b+1): −v_a, δ^(4b+3): +u_a,
	// then the quadratic terms δ^(4a+4b+4) vs δ^(4a+4b+4) — these two
	// share an exponent only if 4a+1+4b+3 == 4b+1+4a+3, which is always
	// true, so they cancel; the tie-break below handles that by ordering
	// a and b (a != b for distinct vertices of a cell).
	type term struct {
		order int
		coef  float64
		sign  int // sign applied to coef
	}
	terms := []term{
		{4*a + 1, vb, 1},
		{4*a + 3, ub, -1},
		{4*b + 1, va, -1},
		{4*b + 3, ua, 1},
	}
	// Sort by order (4 entries, insertion-style).
	for i := 1; i < len(terms); i++ {
		for j := i; j > 0 && terms[j].order < terms[j-1].order; j-- {
			terms[j], terms[j-1] = terms[j-1], terms[j]
		}
	}
	for _, t := range terms {
		if t.coef != 0 {
			if t.coef > 0 {
				return t.sign
			}
			return -t.sign
		}
	}
	// All four values are exactly zero: the quadratic δ terms cancel
	// pairwise, and the determinant of the perturbation alone is
	// δ^(4a+1)·δ^(4b+3) − δ^(4b+1)·δ^(4a+3) = 0 … in which case the next
	// perturbation order decides; we fall back to index order, which is
	// still consistent across cells sharing the pair (a, b).
	if a < b {
		return 1
	}
	return -1
}
