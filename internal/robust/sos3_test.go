package robust

import (
	"math/rand"
	"testing"
)

func randVec3(rng *rand.Rand, idx int) Vec3 {
	return Vec3{U: rng.NormFloat64(), V: rng.NormFloat64(), W: rng.NormFloat64(), Idx: idx}
}

func TestSoSDetSign3NeverZero(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		a := randVec3(rng, 2)
		b := randVec3(rng, 5)
		var c Vec3
		switch trial % 3 {
		case 0:
			c = randVec3(rng, 9)
		case 1: // linearly dependent: c = a + b (det == 0 exactly)
			c = Vec3{U: a.U + b.U, V: a.V + b.V, W: a.W + b.W, Idx: 9}
		default: // c parallel to a
			c = Vec3{U: 2 * a.U, V: 2 * a.V, W: 2 * a.W, Idx: 9}
		}
		if SoSDetSign3(a, b, c) == 0 {
			t.Fatalf("trial %d: SoS 3D sign returned 0", trial)
		}
	}
}

// Swapping any two columns must negate the decision, including degenerate
// configurations: that is what makes face claims consistent between the
// tetrahedra sharing the face.
func TestSoSDetSign3Antisymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 2000; trial++ {
		a := randVec3(rng, 1)
		b := randVec3(rng, 4)
		var c Vec3
		switch trial % 4 {
		case 0:
			c = randVec3(rng, 7)
		case 1:
			c = Vec3{U: a.U + b.U, V: a.V + b.V, W: a.W + b.W, Idx: 7}
		case 2:
			c = Vec3{Idx: 7} // zero column
		default:
			b = Vec3{U: 3 * a.U, V: 3 * a.V, W: 3 * a.W, Idx: 4}
			c = randVec3(rng, 7)
		}
		s := SoSDetSign3(a, b, c)
		if SoSDetSign3(b, a, c) != -s {
			t.Fatalf("trial %d: swap(a,b) not antisymmetric", trial)
		}
		if SoSDetSign3(a, c, b) != -s {
			t.Fatalf("trial %d: swap(b,c) not antisymmetric", trial)
		}
		if SoSDetSign3(c, b, a) != -s {
			t.Fatalf("trial %d: swap(a,c) not antisymmetric", trial)
		}
		// Cyclic permutations are even: sign preserved.
		if SoSDetSign3(b, c, a) != s || SoSDetSign3(c, a, b) != s {
			t.Fatalf("trial %d: cyclic permutation changed sign", trial)
		}
	}
}

func TestSoSDetSign3AgreesWithExactWhenNonzero(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 1000; trial++ {
		a := randVec3(rng, 1)
		b := randVec3(rng, 2)
		c := randVec3(rng, 3)
		m := [9]float64{a.U, b.U, c.U, a.V, b.V, c.V, a.W, b.W, c.W}
		want := DetSign3(m)
		if want == 0 {
			continue
		}
		if got := SoSDetSign3(a, b, c); got != want {
			t.Fatalf("trial %d: SoS %d vs exact %d", trial, got, want)
		}
	}
}

func TestLexParity(t *testing.T) {
	if lexParity(1, 2, 3) != 1 {
		t.Error("sorted order should be even")
	}
	if lexParity(2, 1, 3) != -1 {
		t.Error("one swap should be odd")
	}
	if lexParity(3, 1, 2) != 1 {
		t.Error("cyclic shift should be even")
	}
}

func TestSoSDetSign3AllZeroColumns(t *testing.T) {
	a := Vec3{Idx: 1}
	b := Vec3{Idx: 2}
	c := Vec3{Idx: 3}
	s := SoSDetSign3(a, b, c)
	if s == 0 {
		t.Fatal("degenerate fallback returned 0")
	}
	if SoSDetSign3(b, a, c) != -s {
		t.Fatal("degenerate fallback not antisymmetric")
	}
}
