package robust

// 3D Simulation of Simplicity. The membership determinants of a
// tetrahedral cell are 3×3 determinants of vector values at three global
// vertex indices. Components are perturbed as
//
//	u_i → u_i + δ^(6i+1),  v_i → v_i + δ^(6i+3),  w_i → w_i + δ^(6i+5)
//
// with an infinitesimal δ > 0. When the unperturbed determinant vanishes,
// the lowest-order δ term decides: the first-order terms are
// cofactor(entry)·δ^(order(entry)), visited in increasing entry order.
// If every first-order cofactor at a vanishing determinant is itself zero
// (a doubly degenerate configuration), the implementation falls back to a
// lexicographic index comparison — still antisymmetric and globally
// consistent, though no longer the exact second-order SoS expansion
// (documented approximation; such configurations require two exact rank
// deficiencies at once).

// Vec3 is one perturbed column: a vector value and its global vertex index.
type Vec3 struct {
	U, V, W float64
	Idx     int
}

// SoSDetSign3 returns the never-zero sign of det[colA colB colC] under the
// SoS perturbation.
func SoSDetSign3(a, b, c Vec3) int {
	m := [9]float64{
		a.U, b.U, c.U,
		a.V, b.V, c.V,
		a.W, b.W, c.W,
	}
	if s := DetSign3(m); s != 0 {
		return s
	}
	// First-order terms: entry (r, col) has δ-order 6·idx(col)+(2r+1) and
	// coefficient equal to its signed cofactor.
	cols := [3]Vec3{a, b, c}
	type term struct {
		order int
		cof   float64
	}
	var terms []term
	for ci := 0; ci < 3; ci++ {
		for r := 0; r < 3; r++ {
			cof := cofactor(m, r, ci)
			terms = append(terms, term{order: 6*cols[ci].Idx + 2*r + 1, cof: cof})
		}
	}
	for i := 1; i < len(terms); i++ {
		for j := i; j > 0 && terms[j].order < terms[j-1].order; j-- {
			terms[j], terms[j-1] = terms[j-1], terms[j]
		}
	}
	for _, t := range terms {
		if s := sign(t.cof); s != 0 {
			return s
		}
	}
	// Doubly degenerate: lexicographic fallback on (idxA, idxB, idxC) with
	// permutation parity, so column swaps still negate the result.
	return lexParity(a.Idx, b.Idx, c.Idx)
}

func cofactor(m [9]float64, r, c int) float64 {
	var sub [4]float64
	k := 0
	for i := 0; i < 3; i++ {
		if i == r {
			continue
		}
		for j := 0; j < 3; j++ {
			if j == c {
				continue
			}
			sub[k] = m[i*3+j]
			k++
		}
	}
	det := sub[0]*sub[3] - sub[1]*sub[2]
	if (r+c)%2 == 1 {
		det = -det
	}
	return det
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// lexParity returns +1 when (a, b, c) is an even permutation of its sorted
// order, -1 when odd. Distinct indices are guaranteed for cell vertices.
func lexParity(a, b, c int) int {
	swaps := 0
	if a > b {
		a, b = b, a
		swaps++
	}
	if b > c {
		b, c = c, b
		swaps++
	}
	if a > b {
		a, b = b, a
		swaps++
	}
	if swaps%2 == 0 {
		return 1
	}
	return -1
}
