package robust

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// The fixed-point predicates must agree with the float SoS predicates on
// every input both evaluate exactly — small integers, including the
// degenerate configurations (zero dets, zero cofactors, duplicate values)
// SoS exists to break.
func TestSoSDetSign2FixedMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vals := []int64{-3, -2, -1, 0, 1, 2, 3}
	for iter := 0; iter < 20000; iter++ {
		ua := vals[rng.Intn(len(vals))]
		va := vals[rng.Intn(len(vals))]
		ub := vals[rng.Intn(len(vals))]
		vb := vals[rng.Intn(len(vals))]
		a := rng.Intn(16)
		b := rng.Intn(16)
		if a == b {
			b = a + 1
		}
		got := SoSDetSign2Fixed(ua, va, a, ub, vb, b)
		want := SoSDetSign2(float64(ua), float64(va), a, float64(ub), float64(vb), b)
		if got != want {
			t.Fatalf("SoSDetSign2Fixed(%d,%d,%d, %d,%d,%d) = %d, float path says %d",
				ua, va, a, ub, vb, b, got, want)
		}
		if got == 0 {
			t.Fatal("SoS sign must never be zero")
		}
		// Antisymmetry: swapping columns negates.
		if SoSDetSign2Fixed(ub, vb, b, ua, va, a) != -got {
			t.Fatalf("column swap did not negate for (%d,%d,%d | %d,%d,%d)", ua, va, a, ub, vb, b)
		}
	}
}

func TestSoSDetSign3FixedMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	vals := []int64{-2, -1, 0, 1, 2}
	col := func(idx int) (Vec3Fixed, Vec3) {
		u := vals[rng.Intn(len(vals))]
		v := vals[rng.Intn(len(vals))]
		w := vals[rng.Intn(len(vals))]
		return Vec3Fixed{U: u, V: v, W: w, Idx: idx},
			Vec3{U: float64(u), V: float64(v), W: float64(w), Idx: idx}
	}
	for iter := 0; iter < 20000; iter++ {
		ia := rng.Intn(20)
		ib := ia + 1 + rng.Intn(3)
		ic := ib + 1 + rng.Intn(3)
		fa, ga := col(ia)
		fb, gb := col(ib)
		fc, gc := col(ic)
		got := SoSDetSign3Fixed(fa, fb, fc)
		want := SoSDetSign3(ga, gb, gc)
		if got != want {
			t.Fatalf("SoSDetSign3Fixed(%+v, %+v, %+v) = %d, float path says %d", fa, fb, fc, got, want)
		}
		if got == 0 {
			t.Fatal("SoS sign must never be zero")
		}
		if SoSDetSign3Fixed(fb, fa, fc) != -got {
			t.Fatalf("column swap did not negate for (%+v, %+v, %+v)", fa, fb, fc)
		}
	}
}

// Large-magnitude 3D determinants exercise the 128-bit accumulator; the
// sign must match an arbitrary-precision evaluation.
func TestSoSDetSign3FixedWideMagnitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	lim := int64(1) << fixedMagBits
	for iter := 0; iter < 5000; iter++ {
		var m [9]int64
		for i := range m {
			m[i] = rng.Int63n(2*lim) - lim
		}
		a := Vec3Fixed{U: m[0], V: m[3], W: m[6], Idx: 0}
		b := Vec3Fixed{U: m[1], V: m[4], W: m[7], Idx: 1}
		c := Vec3Fixed{U: m[2], V: m[5], W: m[8], Idx: 2}
		got := SoSDetSign3Fixed(a, b, c)
		want := detSign3Big(m)
		if want == 0 {
			continue // SoS breaks the tie; big.Int has no opinion
		}
		if got != want {
			t.Fatalf("det sign of %v: fixed %d, exact %d", m, got, want)
		}
	}
}

func detSign3Big(m [9]int64) int {
	bi := func(v int64) *big.Int { return big.NewInt(v) }
	mul := func(a, b *big.Int) *big.Int { return new(big.Int).Mul(a, b) }
	sub := func(a, b *big.Int) *big.Int { return new(big.Int).Sub(a, b) }
	t0 := sub(mul(bi(m[4]), bi(m[8])), mul(bi(m[5]), bi(m[7])))
	t1 := sub(mul(bi(m[3]), bi(m[8])), mul(bi(m[5]), bi(m[6])))
	t2 := sub(mul(bi(m[3]), bi(m[7])), mul(bi(m[4]), bi(m[6])))
	det := mul(bi(m[0]), t0)
	det.Sub(det, mul(bi(m[1]), t1))
	det.Add(det, mul(bi(m[2]), t2))
	return det.Sign()
}

// int128 arithmetic against big.Int over sign and carry boundaries.
func TestInt128Arithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	cases := []int64{0, 1, -1, 1 << 30, -(1 << 30), (1 << 62) - 1, -(1 << 62)}
	for iter := 0; iter < 10000; iter++ {
		var a, b, c, d int64
		if iter < len(cases)*len(cases) {
			a, b = cases[iter%len(cases)], cases[(iter/len(cases))%len(cases)]
			c, d = cases[(iter+1)%len(cases)], cases[(iter+3)%len(cases)]
		} else {
			a, b = rng.Int63()-rng.Int63(), rng.Int63()-rng.Int63()
			c, d = rng.Int63()-rng.Int63(), rng.Int63()-rng.Int63()
		}
		got := mul128(a, b).add(mul128(c, d))
		want := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
		want.Add(want, new(big.Int).Mul(big.NewInt(c), big.NewInt(d)))
		if got.sign() != want.Sign() {
			t.Fatalf("sign(%d*%d + %d*%d): int128 %d, big %d", a, b, c, d, got.sign(), want.Sign())
		}
	}
}

// FixedScale must produce a power of two with the documented magnitude
// bound, and quantization with it must keep every value in range.
func TestFixedScale(t *testing.T) {
	for _, maxAbs := range []float64{1e-30, 0.001, 0.5, 1, 3.7, 1024, 1e9, 1e30} {
		s := FixedScale(maxAbs)
		if f, e := math.Frexp(s); f != 0.5 {
			t.Fatalf("FixedScale(%g) = %g (frexp %g, %d): not a power of two", maxAbs, s, f, e)
		}
		if q := ToFixed(maxAbs, s); q < 0 || q >= 1<<fixedMagBits {
			t.Fatalf("FixedScale(%g): quantized max %d outside [0, 2^%d)", maxAbs, q, fixedMagBits)
		}
		if q := ToFixed(maxAbs/2, s); q < 1<<(fixedMagBits-2) {
			t.Fatalf("FixedScale(%g) wastes range: mid-value quantizes to %d", maxAbs, q)
		}
	}
	if FixedScale(0) != 1 || FixedScale(-1) != 1 {
		t.Fatal("degenerate maxAbs must map to scale 1")
	}
}
