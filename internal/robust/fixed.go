package robust

import (
	"math"
	"math/bits"
)

// Fixed-point Simulation of Simplicity, after cpSZ-sos: vector components
// are quantized to integers with a shared power-of-two scale, so every
// determinant sign is decided by exact integer arithmetic — no float fast
// path, no error-bound certificate, no big.Rat fallback. 2D determinants
// of quantized values fit int64 outright; 3D triple products are
// accumulated in 128 bits via math/bits.
//
// fixedMagBits bounds quantized magnitudes: |ToFixed(v)| < 2^29 whenever
// |v| ≤ the maxAbs given to FixedScale. Then 2D products stay below 2^58,
// 2×2 cofactors below 2^59, and 3D triple products below 2^88 — all
// comfortably inside their accumulators.
const fixedMagBits = 29

// FixedScale returns the largest power-of-two scale s such that
// maxAbs·s < 2^29. Quantizing with a power of two keeps float32 inputs
// near the magnitude ceiling exactly representable. maxAbs ≤ 0 returns 1.
func FixedScale(maxAbs float64) float64 {
	if !(maxAbs > 0) {
		return 1
	}
	_, e := math.Frexp(maxAbs) // maxAbs = f·2^e, f ∈ [0.5, 1)
	return math.Ldexp(1, fixedMagBits-e)
}

// ToFixed quantizes v with the shared scale, truncating toward zero the
// way cpSZ's convert_to_fixed_point does.
func ToFixed(v, scale float64) int64 {
	return int64(v * scale)
}

// SoSDetSign2Fixed is SoSDetSign2 over quantized values: the sign of
//
//	| u_a  u_b |
//	| v_a  v_b |
//
// under the perturbation u_i → u_i + δ^(4i+1), v_i → v_i + δ^(4i+3),
// decided entirely in int64 (inputs bounded by FixedScale keep the
// cross products below 2^58).
func SoSDetSign2Fixed(ua, va int64, a int, ub, vb int64, b int) int {
	if det := ua*vb - ub*va; det != 0 {
		if det > 0 {
			return 1
		}
		return -1
	}
	// Lowest-order δ term with a nonzero coefficient decides, exactly as
	// in the float path — but the coefficients here are integers, so
	// "nonzero" needs no certificate.
	type term struct {
		order int
		coef  int64
		sign  int
	}
	terms := [4]term{
		{4*a + 1, vb, 1},
		{4*a + 3, ub, -1},
		{4*b + 1, va, -1},
		{4*b + 3, ua, 1},
	}
	for i := 1; i < len(terms); i++ {
		for j := i; j > 0 && terms[j].order < terms[j-1].order; j-- {
			terms[j], terms[j-1] = terms[j-1], terms[j]
		}
	}
	for _, t := range terms {
		if t.coef > 0 {
			return t.sign
		}
		if t.coef < 0 {
			return -t.sign
		}
	}
	if a < b {
		return 1
	}
	return -1
}

// Vec3Fixed is one quantized column of a 3D membership determinant: a
// vector value and its global vertex index.
type Vec3Fixed struct {
	U, V, W int64
	Idx     int
}

// SoSDetSign3Fixed is SoSDetSign3 over quantized values: never zero,
// decided by exact integer arithmetic. The unperturbed determinant is
// accumulated in 128 bits; the first-order δ coefficients are 2×2
// cofactors that fit int64.
func SoSDetSign3Fixed(a, b, c Vec3Fixed) int {
	m := [9]int64{
		a.U, b.U, c.U,
		a.V, b.V, c.V,
		a.W, b.W, c.W,
	}
	t0 := m[4]*m[8] - m[5]*m[7]
	t1 := m[3]*m[8] - m[5]*m[6]
	t2 := m[3]*m[7] - m[4]*m[6]
	det := mul128(m[0], t0).add(mul128(m[1], t1).neg()).add(mul128(m[2], t2))
	if s := det.sign(); s != 0 {
		return s
	}
	// First-order terms: entry (r, col) has δ-order 6·idx(col)+2r+1 and
	// coefficient equal to its signed cofactor.
	cols := [3]Vec3Fixed{a, b, c}
	type term struct {
		order int
		cof   int64
	}
	var terms [9]term
	k := 0
	for ci := 0; ci < 3; ci++ {
		for r := 0; r < 3; r++ {
			terms[k] = term{order: 6*cols[ci].Idx + 2*r + 1, cof: cofactorFixed(m, r, ci)}
			k++
		}
	}
	for i := 1; i < len(terms); i++ {
		for j := i; j > 0 && terms[j].order < terms[j-1].order; j-- {
			terms[j], terms[j-1] = terms[j-1], terms[j]
		}
	}
	for _, t := range terms {
		if t.cof > 0 {
			return 1
		}
		if t.cof < 0 {
			return -1
		}
	}
	// Doubly degenerate: same lexicographic-parity fallback as the float
	// path, so the two predicates agree wherever both apply.
	return lexParity(a.Idx, b.Idx, c.Idx)
}

func cofactorFixed(m [9]int64, r, c int) int64 {
	var sub [4]int64
	k := 0
	for i := 0; i < 3; i++ {
		if i == r {
			continue
		}
		for j := 0; j < 3; j++ {
			if j == c {
				continue
			}
			sub[k] = m[i*3+j]
			k++
		}
	}
	det := sub[0]*sub[3] - sub[1]*sub[2]
	if (r+c)%2 == 1 {
		det = -det
	}
	return det
}

// int128 is a signed 128-bit accumulator (two's complement).
type int128 struct {
	hi int64
	lo uint64
}

// mul128 returns the full 128-bit product of two int64 values whose
// magnitudes stay below 2^63 (guaranteed by the fixedMagBits bound).
func mul128(a, b int64) int128 {
	neg := false
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua = uint64(-a)
		neg = !neg
	}
	if b < 0 {
		ub = uint64(-b)
		neg = !neg
	}
	hi, lo := bits.Mul64(ua, ub)
	x := int128{hi: int64(hi), lo: lo}
	if neg {
		return x.neg()
	}
	return x
}

func (x int128) neg() int128 {
	lo := -x.lo
	hi := ^x.hi
	if lo == 0 {
		hi++
	}
	return int128{hi: hi, lo: lo}
}

func (x int128) add(y int128) int128 {
	lo, carry := bits.Add64(x.lo, y.lo, 0)
	return int128{hi: x.hi + y.hi + int64(carry), lo: lo}
}

func (x int128) sign() int {
	if x.hi < 0 {
		return -1
	}
	if x.hi > 0 || x.lo != 0 {
		return 1
	}
	return 0
}
