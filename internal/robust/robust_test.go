package robust

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDetSign2Basic(t *testing.T) {
	if DetSign2(1, 0, 0, 1) != 1 {
		t.Error("identity det should be +")
	}
	if DetSign2(0, 1, 1, 0) != -1 {
		t.Error("antidiagonal det should be -")
	}
	if DetSign2(1, 2, 2, 4) != 0 {
		t.Error("rank-1 det should be 0")
	}
}

// The adaptive path must agree with exact rational arithmetic always.
func TestDetSign2MatchesExact(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(d) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) || math.IsInf(d, 0) {
			return true
		}
		return DetSign2(a, b, c, d) == detSign2Exact(a, b, c, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Near-degenerate cases where the float path is uncertain: construct dets
// that cancel catastrophically.
func TestDetSign2Cancellation(t *testing.T) {
	// a·d and b·c equal to the last ulp: build d = b·c/a exactly when
	// possible by using powers of two.
	a, b, c := 3.0, 1.5, 2.0
	d := b * c / a // exact: 1.0
	if got := DetSign2(a, b, c, d); got != 0 {
		t.Errorf("exact zero det classified as %d", got)
	}
	// One-ulp perturbations must resolve.
	if got := DetSign2(a, b, c, math.Nextafter(d, 2)); got != 1 {
		t.Errorf("d+ulp should give +1, got %d", got)
	}
	if got := DetSign2(a, b, c, math.Nextafter(d, 0)); got != -1 {
		t.Errorf("d-ulp should give -1, got %d", got)
	}
}

func TestDetSign3MatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 1000; trial++ {
		var m [9]float64
		for i := range m {
			m[i] = rng.NormFloat64()
		}
		if trial%3 == 0 {
			// Force near-singularity: row2 = row0 + row1.
			for c := 0; c < 3; c++ {
				m[6+c] = m[c] + m[3+c]
			}
		}
		if DetSign3(m) != detSign3Exact(m) {
			t.Fatalf("trial %d: adaptive disagrees with exact on %v", trial, m)
		}
	}
}

func TestSoSDetSign2NeverZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		ua, va := rng.NormFloat64(), rng.NormFloat64()
		ub, vb := ua*2, va*2 // exactly parallel: det == 0
		if trial%2 == 0 {
			ub, vb = rng.NormFloat64(), rng.NormFloat64()
		}
		s := SoSDetSign2(ua, va, 3, ub, vb, 8)
		if s == 0 {
			t.Fatalf("SoS sign returned 0 for (%v,%v),(%v,%v)", ua, va, ub, vb)
		}
	}
}

// Antisymmetry: swapping the two columns (and their indices) must negate
// the decision, which is what makes face claims consistent across the two
// adjacent cells.
func TestSoSDetSign2Antisymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 2000; trial++ {
		ua, va := rng.NormFloat64(), rng.NormFloat64()
		var ub, vb float64
		switch trial % 3 {
		case 0:
			ub, vb = rng.NormFloat64(), rng.NormFloat64()
		case 1:
			ub, vb = ua*3, va*3 // parallel
		default:
			ub, vb = 0, 0 // degenerate partner
		}
		a, b := rng.Intn(100), rng.Intn(100)
		if a == b {
			b = a + 1
		}
		s1 := SoSDetSign2(ua, va, a, ub, vb, b)
		s2 := SoSDetSign2(ub, vb, b, ua, va, a)
		if s1 != -s2 {
			t.Fatalf("trial %d: not antisymmetric: %d vs %d", trial, s1, s2)
		}
	}
}

func TestSoSDetSign2AllZeroFallback(t *testing.T) {
	if SoSDetSign2(0, 0, 2, 0, 0, 5) != 1 {
		t.Error("all-zero with a<b should be +1")
	}
	if SoSDetSign2(0, 0, 5, 0, 0, 2) != -1 {
		t.Error("all-zero with a>b should be -1")
	}
}

func TestSoSDetSign2AgreesWithExactWhenNonzero(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 1000; trial++ {
		ua, va := rng.NormFloat64(), rng.NormFloat64()
		ub, vb := rng.NormFloat64(), rng.NormFloat64()
		want := DetSign2(ua, ub, va, vb)
		if want == 0 {
			continue
		}
		if got := SoSDetSign2(ua, va, 1, ub, vb, 2); got != want {
			t.Fatalf("SoS disagrees with nonzero det: %d vs %d", got, want)
		}
	}
}
