package resilient

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tspsz/internal/faultinject"
)

// testPolicy sleeps into a recorder instead of the clock, so backoff
// schedules are assertable and tests finish instantly.
func testPolicy(delays *[]time.Duration) Policy {
	return Policy{
		MaxAttempts: 5,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    80 * time.Millisecond,
		Seed:        42,
		Sleep: func(d time.Duration) {
			if delays != nil {
				*delays = append(*delays, d)
			}
		},
	}
}

func TestIsTransient(t *testing.T) {
	if !IsTransient(faultinject.Transient("read")) {
		t.Fatal("injected transient fault not classified transient")
	}
	for _, err := range []error{nil, io.EOF, io.ErrUnexpectedEOF, errors.New("disk full")} {
		if IsTransient(err) {
			t.Fatalf("%v classified transient", err)
		}
	}
}

func TestDoRetriesTransientOnly(t *testing.T) {
	var delays []time.Duration
	calls := 0
	err := Do(testPolicy(&delays), func() error {
		calls++
		if calls < 3 {
			return faultinject.Transient("op")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want success on call 3", err, calls)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(delays))
	}

	perm := errors.New("permission denied")
	calls = 0
	if err := Do(testPolicy(nil), func() error { calls++; return perm }); err != perm || calls != 1 {
		t.Fatalf("non-transient error retried: %v after %d calls", err, calls)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	var delays []time.Duration
	calls := 0
	fault := faultinject.Transient("op")
	err := Do(testPolicy(&delays), func() error { calls++; return fault })
	if err == nil || calls != 5 {
		t.Fatalf("Do = %v after %d calls, want the fault after 5", err, calls)
	}
	if !IsTransient(err) {
		t.Fatal("the final error lost its transient classification")
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	var delays []time.Duration
	_ = Do(testPolicy(&delays), func() error { return faultinject.Transient("op") })
	// Nominal schedule 10,20,40,80ms; jitter keeps each in [d/2, d].
	want := []time.Duration{10, 20, 40, 80}
	if len(delays) != len(want) {
		t.Fatalf("%d delays, want %d", len(delays), len(want))
	}
	for i, d := range delays {
		nominal := want[i] * time.Millisecond
		if d < nominal/2 || d > nominal {
			t.Fatalf("delay %d = %v, want within [%v, %v]", i, d, nominal/2, nominal)
		}
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		var delays []time.Duration
		p := testPolicy(&delays)
		p.Seed = seed
		_ = Do(p, func() error { return faultinject.Transient("op") })
		return delays
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d diverged for equal seeds: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestReaderSurvivesFlakySource(t *testing.T) {
	data := bytes.Repeat([]byte("resilient stream "), 64)
	fr := faultinject.NewFlakyReader(bytes.NewReader(data), 0xD00D, 1, 2)
	got, err := io.ReadAll(NewReader(fr, testPolicy(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("reconstructed %d bytes, want %d", len(got), len(data))
	}
	if fr.Failures() == 0 {
		t.Fatal("flaky source injected no faults; the test proved nothing")
	}
}

func TestReaderPassesThroughHardErrors(t *testing.T) {
	boom := errors.New("device gone")
	r := NewReader(faultinject.ErrReader([]byte{1, 2, 3}, 2, boom), testPolicy(nil))
	got, err := io.ReadAll(r)
	if !errors.Is(err, boom) {
		t.Fatalf("hard error = %v, want pass-through", err)
	}
	if !bytes.Equal(got, []byte{1, 2}) {
		t.Fatalf("delivered %v before the hard error", got)
	}
}

func TestWriterSurvivesFlakySink(t *testing.T) {
	data := bytes.Repeat([]byte("durable bytes "), 64)
	var sink bytes.Buffer
	fw := faultinject.NewFlakyWriter(&sink, 0xFEED, 1, 2)
	w := NewWriter(fw, testPolicy(nil))
	for off := 0; off < len(data); off += 16 {
		end := off + 16
		if end > len(data) {
			end = len(data)
		}
		n, err := w.Write(data[off:end])
		if err != nil || n != end-off {
			t.Fatalf("Write chunk at %d = (%d, %v), want full success", off, n, err)
		}
	}
	if !bytes.Equal(sink.Bytes(), data) {
		t.Fatal("committed bytes differ from input — a retry duplicated or dropped a range")
	}
	if fw.Failures() == 0 {
		t.Fatal("flaky sink injected no faults; the test proved nothing")
	}
}

func TestWriterGivesUpOnPersistentFault(t *testing.T) {
	w := NewWriter(failingWriter{}, testPolicy(nil))
	n, err := w.Write([]byte("doomed"))
	if err == nil {
		t.Fatal("persistent fault reported success")
	}
	if !IsTransient(err) {
		t.Fatalf("final error lost its classification: %v", err)
	}
	if n != 0 {
		t.Fatalf("reported %d bytes written, sink accepted none", n)
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, faultinject.Transient("write") }

func TestReadWriteFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/blob.bin"
	data := []byte{1, 2, 3, 4, 5}
	if err := WriteFile(path, data, 0o644, testPolicy(nil)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, testPolicy(nil))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip = %v, %v", got, err)
	}
	if _, err := ReadFile(path+".missing", testPolicy(nil)); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.tsz")
	if err := WriteFileAtomic(path, []byte("first"), 0o600, testPolicy(nil)); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("read back %q", got)
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != 0o600 {
		t.Fatalf("mode %v, err %v", fi.Mode(), err)
	}
	// Overwrite replaces wholesale.
	if err := WriteFileAtomic(path, []byte("second"), 0o644, testPolicy(nil)); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("after overwrite read back %q", got)
	}
	assertNoTempFiles(t, dir)
}

func TestAtomicWriteSurvivesFlakySink(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.tsz")
	payload := bytes.Repeat([]byte("tspsz-stream-"), 4096)
	err := AtomicWrite(path, 0o644, testPolicy(nil), func(w io.Writer) error {
		rw := NewWriter(faultinject.NewFlakyWriter(w, 0xBADD15C, 1, 2), testPolicy(nil))
		for off := 0; off < len(payload); off += 1024 {
			if _, err := rw.Write(payload[off : off+1024]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("flaky-sink output corrupt (%d vs %d bytes, err %v)", len(got), len(payload), err)
	}
	assertNoTempFiles(t, dir)
}

// TestAtomicWriteNoPartialOnFailure is the truncated-output regression: a
// write failing partway through must leave the previous file untouched and
// no temp debris, instead of a truncated archive at the destination.
func TestAtomicWriteNoPartialOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.tsz")
	if err := os.WriteFile(path, []byte("previous good archive"), 0o644); err != nil {
		t.Fatal(err)
	}
	once := testPolicy(nil)
	once.MaxAttempts = 1 // first injected fault is fatal
	var flaky *faultinject.FlakyWriter
	err := AtomicWrite(path, 0o644, testPolicy(nil), func(w io.Writer) error {
		flaky = faultinject.NewFlakyWriter(w, 0xDEADBEEF, 1, 2)
		rw := NewWriter(flaky, once)
		for i := 0; i < 64; i++ {
			if _, err := rw.Write(bytes.Repeat([]byte{byte(i)}, 512)); err != nil {
				return err
			}
		}
		return nil
	})
	if err == nil {
		t.Fatal("injected persistent fault did not surface")
	}
	if flaky.Failures() == 0 {
		t.Fatal("seeded FlakyWriter never fired; test asserts nothing")
	}
	if got, rerr := os.ReadFile(path); rerr != nil || string(got) != "previous good archive" {
		t.Fatalf("destination disturbed by failed write: %q, %v", got, rerr)
	}
	assertNoTempFiles(t, dir)

	// With no previous file, a failed write must leave nothing at all.
	fresh := filepath.Join(dir, "fresh.tsz")
	err = AtomicWrite(fresh, 0o644, testPolicy(nil), func(w io.Writer) error {
		if _, werr := w.Write([]byte("half an archi")); werr != nil {
			return werr
		}
		return errors.New("encoder died mid-stream")
	})
	if err == nil {
		t.Fatal("mid-stream failure did not surface")
	}
	if _, serr := os.Stat(fresh); !errors.Is(serr, os.ErrNotExist) {
		t.Fatalf("failed fresh write left a file behind: %v", serr)
	}
	assertNoTempFiles(t, dir)
}

// assertNoTempFiles fails if dir holds anything besides completed outputs —
// a leftover .tmp-* means a failure path leaked its scratch file.
func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}
