// Package resilient retries transient I/O faults with capped, seeded-jitter
// exponential backoff. Storage and network stacks surface short-lived
// failures — a congested NFS mount, a device resetting, EINTR — that a
// batch pipeline should absorb rather than die on; this package wraps the
// retry loop once so every file touch in cmd/tspsz shares the same policy.
//
// Only errors that declare themselves retryable via the net.Error-style
// Temporary()/Timeout() convention are retried by default; everything else
// (corruption, permission, ENOSPC) fails fast on the first attempt.
package resilient

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Policy bounds a retry loop. The zero value of any field selects the
// package default, so Policy{} is a usable production policy.
type Policy struct {
	// MaxAttempts is the total number of tries, including the first.
	// Values < 1 mean 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry. Values <= 0 mean 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the doubling. Values <= 0 mean 1s.
	MaxDelay time.Duration
	// Seed drives the deterministic jitter (each delay is uniformly drawn
	// from [delay/2, delay]). Equal seeds give equal retry schedules, so a
	// failure reproduces from its log line.
	Seed uint64
	// Sleep is the delay function, injectable so tests run in microseconds.
	// Nil means time.Sleep.
	Sleep func(time.Duration)
	// Retryable classifies errors worth retrying. Nil means IsTransient.
	Retryable func(error) bool
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	if p.Retryable == nil {
		p.Retryable = IsTransient
	}
	return p
}

// IsTransient reports whether err declares itself short-lived via the
// net.Error-style Temporary() or Timeout() methods anywhere in its chain.
// io.EOF and io.ErrUnexpectedEOF are never transient: they describe stream
// shape, not device health.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return false
	}
	var te interface{ Temporary() bool }
	if errors.As(err, &te) && te.Temporary() {
		return true
	}
	var to interface{ Timeout() bool }
	return errors.As(err, &to) && to.Timeout()
}

// backoff is the per-loop retry schedule: splitmix64 jitter over doubling
// delays, isolated per Do/Reader/Writer so concurrent loops never share
// state.
type backoff struct {
	p       Policy
	state   uint64
	attempt int
}

func newBackoff(p Policy) *backoff { return &backoff{p: p, state: p.Seed} }

func (b *backoff) next() uint64 {
	b.state += 0x9e3779b97f4a7c15
	z := b.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// retry reports whether the loop should try again after err, sleeping the
// jittered backoff when it does.
func (b *backoff) retry(err error) bool {
	b.attempt++
	if b.attempt >= b.p.MaxAttempts || !b.p.Retryable(err) {
		return false
	}
	d := b.p.BaseDelay << (b.attempt - 1)
	if d > b.p.MaxDelay || d <= 0 {
		d = b.p.MaxDelay
	}
	// Uniform jitter in [d/2, d] de-synchronizes loops that fail together.
	half := uint64(d / 2)
	if half > 0 {
		d = time.Duration(half + b.next()%(half+1))
	}
	b.p.Sleep(d)
	return true
}

// Do runs op until it succeeds, exhausts the attempt budget, or fails
// non-transiently; the last error is returned.
func Do(p Policy, op func() error) error {
	p = p.withDefaults()
	b := newBackoff(p)
	for {
		err := op()
		if err == nil || !b.retry(err) {
			return err
		}
	}
}

// Reader wraps r so transient read faults are retried in place. The
// attempt budget applies per fault run, not per stream, so a long stream
// with scattered faults still completes. Reads that delivered bytes are
// never retried — the bytes are handed up and the fault, if persistent,
// surfaces on the next call.
type Reader struct {
	r io.Reader
	p Policy
}

// NewReader builds a retrying reader over r.
func NewReader(r io.Reader, p Policy) *Reader {
	return &Reader{r: r, p: p.withDefaults()}
}

func (rr *Reader) Read(p []byte) (int, error) {
	b := newBackoff(rr.p)
	for {
		n, err := rr.r.Read(p)
		if n > 0 || err == nil || !b.retry(err) {
			return n, err
		}
	}
}

// Writer wraps w so transient write faults are retried, resuming after any
// partially committed prefix; a successful Write has delivered every byte
// exactly once. The attempt budget applies per fault run: progress resets
// the counter.
type Writer struct {
	w io.Writer
	p Policy
}

// NewWriter builds a retrying writer over w.
func NewWriter(w io.Writer, p Policy) *Writer {
	return &Writer{w: w, p: p.withDefaults()}
}

func (rw *Writer) Write(p []byte) (int, error) {
	b := newBackoff(rw.p)
	written := 0
	for written < len(p) {
		n, err := rw.w.Write(p[written:])
		written += n
		if err == nil {
			continue
		}
		if n > 0 {
			// Progress: restart the backoff schedule for the next fault run.
			b = newBackoff(rw.p)
		}
		if !b.retry(err) {
			return written, err
		}
	}
	return written, nil
}

// ReadFile is os.ReadFile under the retry policy: transient open or read
// faults are retried from scratch, preserving whole-file semantics.
func ReadFile(path string, p Policy) (data []byte, err error) {
	err = Do(p, func() error {
		data, err = os.ReadFile(path)
		return err
	})
	return data, err
}

// WriteFile is os.WriteFile under the retry policy. Each retry rewrites
// from offset zero, so a short transient window cannot interleave two
// attempts' bytes.
func WriteFile(path string, data []byte, perm os.FileMode, p Policy) error {
	return Do(p, func() error {
		return os.WriteFile(path, data, perm)
	})
}

// AtomicWrite streams output into a temporary file beside path and renames
// it into place only after fn and the close both succeed. A failure at any
// point leaves the previous file (or nothing) at path — never a truncated
// output — and removes the temporary. The writer handed to fn retries
// transient faults under p; the temp file lives in path's directory so the
// final rename never crosses a filesystem boundary.
func AtomicWrite(path string, perm os.FileMode, p Policy, fn func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	var f *os.File
	if err = Do(p, func() error {
		var e error
		f, e = os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
		return e
	}); err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = fn(NewWriter(f, p)); err != nil {
		return err
	}
	if err = f.Chmod(perm); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return Do(p, func() error { return os.Rename(tmp, path) })
}

// WriteFileAtomic is WriteFile with all-or-nothing visibility: the data
// lands at path via AtomicWrite, so readers never observe a partial file
// and a mid-write failure cannot truncate an existing one.
func WriteFileAtomic(path string, data []byte, perm os.FileMode, p Policy) error {
	return AtomicWrite(path, perm, p, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
