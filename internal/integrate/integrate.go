// Package integrate implements streamline tracing over piecewise-linear
// vector fields with the classical fourth-order Runge–Kutta scheme (Eq. 1 of
// the paper), and separatrix construction from saddle points (§III-B, §V).
// Trajectories optionally record every vertex whose value participated in
// any RK4 interpolation — the "involved vertices" that TspSZ-I encodes
// losslessly.
package integrate

import (
	"math"

	"tspsz/internal/critical"
	"tspsz/internal/field"
	"tspsz/internal/frechet"
)

// Params are the user-facing integration parameters of Table II.
type Params struct {
	// EpsP is the absorption threshold: a streamline terminates when it
	// comes within EpsP of a sink or source. The same value scales the
	// seed offset from a saddle.
	EpsP float64
	// MaxSteps bounds the number of RK4 steps (t in the paper).
	MaxSteps int
	// H is the RK4 step size.
	H float64
	// DetectOrbits enables closed-orbit detection: trajectories that
	// return within OrbitEps of a position visited at least OrbitMinSep
	// steps earlier terminate with ClosedOrbit instead of running to the
	// step budget (extension; the paper handles orbits by capping t).
	DetectOrbits bool
	// OrbitEps is the revisit radius (defaults to EpsP when zero).
	OrbitEps float64
	// OrbitMinSep is the minimum step separation for a revisit to count
	// as a loop (defaults to 20 when zero).
	OrbitMinSep int
}

// DefaultParams returns the paper's defaults (Table II): ε_p = 1e-3,
// t = 1000, h = 0.05.
func DefaultParams() Params {
	return Params{EpsP: 1e-3, MaxSteps: 1000, H: 0.05}
}

// Termination describes why a trajectory ended.
type Termination int

const (
	// MaxSteps: the step budget was exhausted (closed orbits etc.).
	MaxSteps Termination = iota
	// AbsorbedAtCP: the trajectory came within EpsP of a sink/source.
	AbsorbedAtCP
	// LeftDomain: an RK4 stage sampled outside the grid.
	LeftDomain
	// ZeroVelocity: the velocity magnitude vanished away from any
	// recorded critical point (e.g. re-entering a saddle).
	ZeroVelocity
	// ClosedOrbit: the trajectory revisited its own path (only reported
	// when Params.DetectOrbits is set).
	ClosedOrbit
)

// String implements fmt.Stringer.
func (t Termination) String() string {
	switch t {
	case AbsorbedAtCP:
		return "absorbed"
	case LeftDomain:
		return "left-domain"
	case ZeroVelocity:
		return "zero-velocity"
	case ClosedOrbit:
		return "closed-orbit"
	default:
		return "max-steps"
	}
}

// Trajectory is one traced streamline.
type Trajectory struct {
	Points []frechet.Point
	Term   Termination
	// EndCP is the index (into the critical point slice passed to the
	// tracer) of the absorbing critical point, or -1.
	EndCP int
	// Saddle is the index of the originating saddle for separatrices
	// (-1 for plain streamlines), SeedIdx the seed slot within it.
	Saddle, SeedIdx int
	// Dir is +1 for forward integration, -1 for backward.
	Dir int
}

// cpLocator answers nearest sink/source queries via a dense unit-cell
// bucket grid in CSR layout (an array lookup per probe — map hashing was
// the hot spot of RK4 tracing). Only sinks and sources absorb
// trajectories; the grid spans their bounding box plus one cell of apron.
type cpLocator struct {
	cps        []critical.Point
	lo         [3]int
	dim        [3]int
	start      []int32 // CSR offsets, len dim[0]*dim[1]*dim[2]+1
	entries    []int32 // cp indices grouped by bucket
	hasTargets bool
}

func newCPLocator(cps []critical.Point) *cpLocator {
	l := &cpLocator{cps: cps}
	lo := [3]int{math.MaxInt32, math.MaxInt32, math.MaxInt32}
	hi := [3]int{math.MinInt32, math.MinInt32, math.MinInt32}
	n := 0
	for _, cp := range cps {
		if cp.Type != critical.Sink && cp.Type != critical.Source {
			continue
		}
		n++
		for d := 0; d < 3; d++ {
			c := int(math.Floor(cp.Pos[d]))
			if c < lo[d] {
				lo[d] = c
			}
			if c > hi[d] {
				hi[d] = c
			}
		}
	}
	if n == 0 {
		return l
	}
	l.hasTargets = true
	for d := 0; d < 3; d++ {
		l.lo[d] = lo[d] - 1 // apron so neighbour probes stay in range
		l.dim[d] = hi[d] - lo[d] + 3
	}
	nb := l.dim[0] * l.dim[1] * l.dim[2]
	counts := make([]int32, nb+1)
	bucketOf := func(cp *critical.Point) int {
		i := int(math.Floor(cp.Pos[0])) - l.lo[0]
		j := int(math.Floor(cp.Pos[1])) - l.lo[1]
		k := int(math.Floor(cp.Pos[2])) - l.lo[2]
		return i + l.dim[0]*(j+l.dim[1]*k)
	}
	for i := range cps {
		cp := &cps[i]
		if cp.Type != critical.Sink && cp.Type != critical.Source {
			continue
		}
		counts[bucketOf(cp)+1]++
	}
	for b := 1; b <= nb; b++ {
		counts[b] += counts[b-1]
	}
	l.start = counts
	l.entries = make([]int32, n)
	fill := make([]int32, nb)
	for i := range cps {
		cp := &cps[i]
		if cp.Type != critical.Sink && cp.Type != critical.Source {
			continue
		}
		b := bucketOf(cp)
		l.entries[l.start[b]+fill[b]] = int32(i)
		fill[b]++
	}
	return l
}

// near returns the index of a sink/source within eps of p, or -1. eps must
// be < 1 for the 27-bucket neighbourhood to be sufficient.
func (l *cpLocator) near(p [3]float64, eps float64) int {
	if !l.hasTargets {
		return -1
	}
	bx := int(math.Floor(p[0])) - l.lo[0]
	by := int(math.Floor(p[1])) - l.lo[1]
	bz := int(math.Floor(p[2])) - l.lo[2]
	e2 := eps * eps
	for dz := -1; dz <= 1; dz++ {
		z := bz + dz
		if z < 0 || z >= l.dim[2] {
			continue
		}
		for dy := -1; dy <= 1; dy++ {
			y := by + dy
			if y < 0 || y >= l.dim[1] {
				continue
			}
			for dx := -1; dx <= 1; dx++ {
				x := bx + dx
				if x < 0 || x >= l.dim[0] {
					continue
				}
				b := x + l.dim[0]*(y+l.dim[1]*z)
				for _, ei := range l.entries[l.start[b]:l.start[b+1]] {
					cp := &l.cps[ei]
					ddx := cp.Pos[0] - p[0]
					ddy := cp.Pos[1] - p[1]
					ddz := cp.Pos[2] - p[2]
					if ddx*ddx+ddy*ddy+ddz*ddz <= e2 {
						return int(ei)
					}
				}
			}
		}
	}
	return -1
}

// rk4Step advances p by one RK4 step of size h·dir. ok is false when any of
// the four stage samples falls outside the domain. Visited vertices are
// appended to verts when non-nil.
func rk4Step(f *field.Field, p [3]float64, h, dir float64, verts *[]int) (np [3]float64, ok bool) {
	sample := func(q [3]float64) ([3]float64, bool) {
		v, _, sOK := f.Sample(q, verts)
		if !sOK {
			return v, false
		}
		v[0] *= dir
		v[1] *= dir
		v[2] *= dir
		return v, true
	}
	k1, ok := sample(p)
	if !ok {
		return p, false
	}
	k2, ok := sample(add(p, scale(k1, h/2)))
	if !ok {
		return p, false
	}
	k3, ok := sample(add(p, scale(k2, h/2)))
	if !ok {
		return p, false
	}
	k4, ok := sample(add(p, scale(k3, h)))
	if !ok {
		return p, false
	}
	for d := 0; d < 3; d++ {
		np[d] = p[d] + h/6*(k1[d]+2*k2[d]+2*k3[d]+k4[d])
	}
	return np, true
}

func add(a, b [3]float64) [3]float64 { return [3]float64{a[0] + b[0], a[1] + b[1], a[2] + b[2]} }
func scale(a [3]float64, s float64) [3]float64 {
	return [3]float64{a[0] * s, a[1] * s, a[2] * s}
}

// Streamline traces a streamline from seed in direction dir (+1 forward,
// -1 backward) until absorption, domain exit, vanishing velocity, or the
// step budget. cps provides the absorption targets (its sinks/sources).
// Visited vertices are appended to verts when non-nil.
func Streamline(f *field.Field, seed [3]float64, dir int, par Params, loc *CPLocator, verts *[]int) Trajectory {
	return streamline(f, seed, dir, par, (*cpLocator)(loc), verts)
}

func streamline(f *field.Field, seed [3]float64, dir int, par Params, loc *cpLocator, verts *[]int) Trajectory {
	tr := Trajectory{EndCP: -1, Saddle: -1, SeedIdx: -1, Dir: dir, Term: MaxSteps}
	tr.Points = append(tr.Points, seed)
	p := seed
	const vEps = 1e-12
	var orbits *orbitDetector
	if par.DetectOrbits {
		eps := par.OrbitEps
		if eps <= 0 {
			eps = par.EpsP
		}
		minSep := par.OrbitMinSep
		if minSep <= 0 {
			minSep = 20
		}
		orbits = newOrbitDetector(eps, minSep)
		orbits.visit(seed, 0)
	}
	for step := 0; step < par.MaxSteps; step++ {
		np, ok := rk4Step(f, p, par.H, float64(dir), verts)
		if !ok {
			tr.Term = LeftDomain
			return tr
		}
		tr.Points = append(tr.Points, np)
		if cp := loc.near(np, par.EpsP); cp >= 0 {
			tr.Term = AbsorbedAtCP
			tr.EndCP = cp
			return tr
		}
		dx := np[0] - p[0]
		dy := np[1] - p[1]
		dz := np[2] - p[2]
		if dx*dx+dy*dy+dz*dz < vEps*vEps {
			tr.Term = ZeroVelocity
			return tr
		}
		if orbits != nil && orbits.visit(np, step+1) {
			tr.Term = ClosedOrbit
			return tr
		}
		p = np
	}
	return tr
}

// TraceStreamline is the public entry for a single streamline; it builds
// the critical point locator internally.
func TraceStreamline(f *field.Field, seed [3]float64, dir int, par Params, cps []critical.Point, verts *[]int) Trajectory {
	return streamline(f, seed, dir, par, newCPLocator(cps), verts)
}

// SeparatrixSeeds enumerates the separatrix seeds of a saddle: positions
// s ± ε_p·j for each seed direction j, with the integration direction given
// by the eigenvalue sign. A 2D saddle yields 4 seeds, a 3D saddle 6.
func SeparatrixSeeds(cp critical.Point, epsP float64) (seeds [][3]float64, dirs []int, seedIdx []int) {
	for i, d := range cp.SeedDirs {
		plus := add(cp.Pos, scale(d, epsP))
		minus := add(cp.Pos, scale(d, -epsP))
		seeds = append(seeds, plus, minus)
		dirs = append(dirs, cp.SeedSigns[i], cp.SeedSigns[i])
		seedIdx = append(seedIdx, 2*i, 2*i+1)
	}
	return seeds, dirs, seedIdx
}

// TraceSeparatrices traces every separatrix of every saddle in cps over f,
// in deterministic (saddle, seed) order. If verts is non-nil, all involved
// vertices across all separatrices are appended to it (Algorithm 2,
// lines 12-18).
func TraceSeparatrices(f *field.Field, cps []critical.Point, par Params, verts *[]int) []Trajectory {
	loc := newCPLocator(cps)
	var out []Trajectory
	for ci, cp := range cps {
		if cp.Type != critical.Saddle {
			continue
		}
		seeds, dirs, seedIdx := SeparatrixSeeds(cp, par.EpsP)
		for si := range seeds {
			tr := streamline(f, seeds[si], dirs[si], par, loc, verts)
			tr.Saddle = ci
			tr.SeedIdx = seedIdx[si]
			out = append(out, tr)
		}
	}
	return out
}

// TraceSeparatricesOf traces only the separatrices of the saddle at index
// ci in cps, used by the parallel drivers and the iterative corrector.
func TraceSeparatricesOf(f *field.Field, cps []critical.Point, ci int, par Params, verts *[]int) []Trajectory {
	loc := newCPLocator(cps)
	cp := cps[ci]
	if cp.Type != critical.Saddle {
		return nil
	}
	seeds, dirs, seedIdx := SeparatrixSeeds(cp, par.EpsP)
	out := make([]Trajectory, 0, len(seeds))
	for si := range seeds {
		tr := streamline(f, seeds[si], dirs[si], par, loc, verts)
		tr.Saddle = ci
		tr.SeedIdx = seedIdx[si]
		out = append(out, tr)
	}
	return out
}

// Retrace re-traces a single separatrix identified by its originating
// trajectory (saddle and seed slot) on field f, reusing a prebuilt locator.
func Retrace(f *field.Field, cps []critical.Point, loc *CPLocator, t *Trajectory, par Params, verts *[]int) Trajectory {
	cp := cps[t.Saddle]
	dirIdx := t.SeedIdx / 2
	sign := 1.0
	if t.SeedIdx%2 == 1 {
		sign = -1
	}
	seed := add(cp.Pos, scale(cp.SeedDirs[dirIdx], sign*par.EpsP))
	tr := streamline(f, seed, cp.SeedSigns[dirIdx], par, (*cpLocator)(loc), verts)
	tr.Saddle = t.Saddle
	tr.SeedIdx = t.SeedIdx
	return tr
}

// CPLocator is the exported handle for the spatial critical point index,
// so callers can amortize its construction across many Retrace calls.
type CPLocator cpLocator

// NewCPLocator builds a locator over the sinks and sources of cps.
func NewCPLocator(cps []critical.Point) *CPLocator {
	return (*CPLocator)(newCPLocator(cps))
}
