package integrate

import (
	"testing"

	"tspsz/internal/critical"
	"tspsz/internal/field"
)

// dummySink builds a single synthetic sink for absorption checks.
func dummySink(x, y float64) []critical.Point {
	return []critical.Point{{Type: critical.Sink, Pos: [3]float64{x, y, 0}}}
}

// A pure rotation field has closed circular streamlines: with detection on
// the tracer must report ClosedOrbit well before the step budget.
func TestClosedOrbitDetected(t *testing.T) {
	f := field.New2D(17, 17)
	fill2D(f, func(x, y float64) (float64, float64) { return -(y - 8), x - 8 })
	par := Params{EpsP: 1e-2, MaxSteps: 10000, H: 0.05, DetectOrbits: true}
	tr := TraceStreamline(f, [3]float64{11, 8, 0}, 1, par, nil, nil)
	if tr.Term != ClosedOrbit {
		t.Fatalf("termination %v, want closed-orbit", tr.Term)
	}
	// One revolution of radius 3 is 2π·3 ≈ 18.85 arc length; with |v| ≈ 3
	// and h = 0.05 that is ≈ 126 steps. Detection must fire around there,
	// well short of the 10000-step budget.
	if len(tr.Points) > 400 {
		t.Errorf("orbit detected only after %d steps", len(tr.Points))
	}
	if len(tr.Points) < 50 {
		t.Errorf("orbit detected suspiciously early (%d steps)", len(tr.Points))
	}
}

// Detection off: the same trajectory runs to the budget.
func TestClosedOrbitIgnoredWhenDisabled(t *testing.T) {
	f := field.New2D(17, 17)
	fill2D(f, func(x, y float64) (float64, float64) { return -(y - 8), x - 8 })
	par := Params{EpsP: 1e-2, MaxSteps: 500, H: 0.05}
	tr := TraceStreamline(f, [3]float64{11, 8, 0}, 1, par, nil, nil)
	if tr.Term != MaxSteps {
		t.Fatalf("termination %v, want max-steps", tr.Term)
	}
}

// Straight streamlines must never be misclassified as orbits.
func TestNoFalseOrbitOnStraightFlow(t *testing.T) {
	f := field.New2D(32, 8)
	fill2D(f, func(x, y float64) (float64, float64) { return 1, 0 })
	par := Params{EpsP: 1e-2, MaxSteps: 5000, H: 0.05, DetectOrbits: true}
	tr := TraceStreamline(f, [3]float64{1, 3.5, 0}, 1, par, nil, nil)
	if tr.Term != LeftDomain {
		t.Fatalf("termination %v, want left-domain", tr.Term)
	}
}

// A trajectory absorbed by a sink must report absorption, not an orbit,
// even while spiraling in.
func TestSpiralSinkAbsorbedNotOrbit(t *testing.T) {
	f := field.New2D(17, 17)
	fill2D(f, func(x, y float64) (float64, float64) {
		dx, dy := x-8.3, y-8.2
		return -0.3*dx - dy, dx - 0.3*dy
	})
	cps := dummySink(8.3, 8.2)
	par := Params{EpsP: 5e-2, MaxSteps: 20000, H: 0.05, DetectOrbits: true, OrbitEps: 1e-3}
	tr := TraceStreamline(f, [3]float64{11, 8.2, 0}, 1, par, cps, nil)
	if tr.Term != AbsorbedAtCP {
		t.Fatalf("termination %v, want absorbed (points=%d)", tr.Term, len(tr.Points))
	}
}

func TestOrbitDetectorMinSep(t *testing.T) {
	d := newOrbitDetector(0.1, 10)
	p := [3]float64{1, 1, 0}
	if d.visit(p, 0) {
		t.Fatal("first visit reported as orbit")
	}
	// Revisit too soon: not an orbit.
	if d.visit(p, 5) {
		t.Fatal("revisit below minSep reported as orbit")
	}
	// Revisit after the separation: orbit.
	if !d.visit(p, 20) {
		t.Fatal("revisit after minSep not reported")
	}
}
