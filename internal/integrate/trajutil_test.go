package integrate

import (
	"math"
	"math/rand"
	"testing"
)

func circle(n int, r float64) [][3]float64 {
	pts := make([][3]float64, n)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / float64(n-1)
		pts[i] = [3]float64{r * math.Cos(a), r * math.Sin(a), 0}
	}
	return pts
}

func TestArcLength(t *testing.T) {
	line := [][3]float64{{0, 0, 0}, {3, 0, 0}, {3, 4, 0}}
	if got := ArcLength(line); math.Abs(got-7) > 1e-12 {
		t.Errorf("ArcLength = %v, want 7", got)
	}
	if ArcLength(nil) != 0 || ArcLength(line[:1]) != 0 {
		t.Error("degenerate arc lengths should be 0")
	}
}

func TestResampleUniformSpacing(t *testing.T) {
	pts := circle(200, 5)
	rs := Resample(pts, 50)
	if len(rs) != 50 {
		t.Fatalf("resampled to %d points, want 50", len(rs))
	}
	if rs[0] != pts[0] || dist3(rs[len(rs)-1], pts[len(pts)-1]) > 1e-9 {
		t.Error("endpoints not preserved")
	}
	// Spacing must be near-uniform.
	want := ArcLength(pts) / 49
	for i := 1; i < len(rs); i++ {
		d := dist3(rs[i-1], rs[i])
		if math.Abs(d-want) > want*0.1 {
			t.Fatalf("segment %d: spacing %v, want ≈ %v", i, d, want)
		}
	}
}

func TestResampleDegenerate(t *testing.T) {
	if got := Resample(nil, 5); len(got) != 0 {
		t.Errorf("resampling empty: %v", got)
	}
	single := [][3]float64{{1, 2, 3}}
	got := Resample(single, 4)
	if len(got) != 4 {
		t.Fatalf("padded to %d, want 4", len(got))
	}
	for _, p := range got {
		if p != single[0] {
			t.Fatal("padding should repeat the single point")
		}
	}
	// All-identical points (zero arc length).
	same := [][3]float64{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}}
	got = Resample(same, 3)
	for _, p := range got {
		if p != same[0] {
			t.Fatal("zero-length resample should repeat the point")
		}
	}
}

func TestSimplifyWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		// Wiggly curve.
		n := 100 + rng.Intn(200)
		pts := make([][3]float64, n)
		for i := range pts {
			x := float64(i) * 0.1
			pts[i] = [3]float64{x, math.Sin(x) + 0.05*rng.Float64(), 0.3 * math.Cos(x/2)}
		}
		tol := 0.05 + rng.Float64()*0.2
		simp := Simplify(pts, tol)
		if len(simp) < 2 || len(simp) > len(pts) {
			t.Fatalf("simplified to %d points from %d", len(simp), len(pts))
		}
		if simp[0] != pts[0] || simp[len(simp)-1] != pts[n-1] {
			t.Fatal("endpoints not preserved")
		}
		// Every original point must be within tol of the simplified curve.
		for _, p := range pts {
			best := math.Inf(1)
			for s := 1; s < len(simp); s++ {
				if d := pointSegmentDist(p, simp[s-1], simp[s]); d < best {
					best = d
				}
			}
			if best > tol+1e-9 {
				t.Fatalf("point %v is %v from simplified curve (tol %v)", p, best, tol)
			}
		}
	}
}

func TestSimplifyReducesPoints(t *testing.T) {
	// A nearly straight line collapses to its endpoints.
	pts := make([][3]float64, 500)
	for i := range pts {
		pts[i] = [3]float64{float64(i), 1e-6 * float64(i%2), 0}
	}
	simp := Simplify(pts, 0.01)
	if len(simp) != 2 {
		t.Errorf("straight line simplified to %d points, want 2", len(simp))
	}
}

func TestSimplifyShortInputs(t *testing.T) {
	if got := Simplify(nil, 1); len(got) != 0 {
		t.Error("nil input")
	}
	two := [][3]float64{{0, 0, 0}, {1, 1, 1}}
	if got := Simplify(two, 1); len(got) != 2 {
		t.Error("two-point input must be preserved")
	}
}

func TestPointSegmentDist(t *testing.T) {
	a, b := [3]float64{0, 0, 0}, [3]float64{10, 0, 0}
	if d := pointSegmentDist([3]float64{5, 3, 0}, a, b); math.Abs(d-3) > 1e-12 {
		t.Errorf("mid distance %v, want 3", d)
	}
	if d := pointSegmentDist([3]float64{-4, 3, 0}, a, b); math.Abs(d-5) > 1e-12 {
		t.Errorf("before-start distance %v, want 5", d)
	}
	// Degenerate segment.
	if d := pointSegmentDist([3]float64{1, 0, 0}, a, a); math.Abs(d-1) > 1e-12 {
		t.Errorf("point-segment with a==b: %v, want 1", d)
	}
}
