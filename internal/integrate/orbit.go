package integrate

import "math"

// Closed-orbit detection. The paper caps trajectories at t steps because
// "closed streamlines [50] and orbits [51] may never reach a destination"
// (§IV-A); detecting them explicitly lets a tracer terminate early with a
// meaningful label instead of exhausting the budget. The detector follows
// the spirit of Wischgoll & Scheuermann: it watches for returns to a
// previously visited neighbourhood after a minimum arc separation, using a
// spatial hash of sampled positions.

// orbitDetector indexes visited positions in buckets of size cellSize and
// reports a revisit when the trajectory comes within eps of a position at
// least minSep steps older.
type orbitDetector struct {
	cellSize float64
	eps2     float64
	minSep   int
	buckets  map[[3]int][]orbitSample
}

type orbitSample struct {
	pos  [3]float64
	step int
}

func newOrbitDetector(eps float64, minSep int) *orbitDetector {
	cs := eps * 2
	if cs <= 0 {
		cs = 1e-6
	}
	return &orbitDetector{
		cellSize: cs,
		eps2:     eps * eps,
		minSep:   minSep,
		buckets:  make(map[[3]int][]orbitSample),
	}
}

func (d *orbitDetector) key(p [3]float64) [3]int {
	return [3]int{
		int(math.Floor(p[0] / d.cellSize)),
		int(math.Floor(p[1] / d.cellSize)),
		int(math.Floor(p[2] / d.cellSize)),
	}
}

// visit records p at the given step and reports whether a sufficiently old
// neighbour exists within eps — i.e. whether the trajectory closed a loop.
func (d *orbitDetector) visit(p [3]float64, step int) bool {
	k := d.key(p)
	closed := false
	for dz := -1; dz <= 1 && !closed; dz++ {
		for dy := -1; dy <= 1 && !closed; dy++ {
			for dx := -1; dx <= 1; dx++ {
				for _, s := range d.buckets[[3]int{k[0] + dx, k[1] + dy, k[2] + dz}] {
					if step-s.step < d.minSep {
						continue
					}
					ddx := p[0] - s.pos[0]
					ddy := p[1] - s.pos[1]
					ddz := p[2] - s.pos[2]
					if ddx*ddx+ddy*ddy+ddz*ddz <= d.eps2 {
						closed = true
						break
					}
				}
			}
		}
	}
	d.buckets[k] = append(d.buckets[k], orbitSample{pos: p, step: step})
	return closed
}
