package integrate

import "math"

// Trajectory post-processing utilities: uniform arc-length resampling (for
// rendering and fair curve comparisons) and Douglas–Peucker simplification
// (to thin dense RK4 output before storage or expensive O(n·m) Fréchet
// evaluations — simplifying at tolerance δ changes the discrete Fréchet
// distance by at most δ per curve).

// ArcLength returns the polyline length of pts.
func ArcLength(pts [][3]float64) float64 {
	total := 0.0
	for i := 1; i < len(pts); i++ {
		total += dist3(pts[i-1], pts[i])
	}
	return total
}

func dist3(a, b [3]float64) float64 {
	dx, dy, dz := a[0]-b[0], a[1]-b[1], a[2]-b[2]
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Resample returns n points spaced uniformly in arc length along pts
// (including both endpoints). n must be >= 2; short inputs are padded by
// repeating the single available point.
func Resample(pts [][3]float64, n int) [][3]float64 {
	if n < 2 {
		n = 2
	}
	out := make([][3]float64, 0, n)
	if len(pts) == 0 {
		return out
	}
	if len(pts) == 1 {
		for i := 0; i < n; i++ {
			out = append(out, pts[0])
		}
		return out
	}
	total := ArcLength(pts)
	//lint:allow floatcmp a sum of segment norms is exactly zero iff every point coincides; guard before dividing by total
	if total == 0 {
		for i := 0; i < n; i++ {
			out = append(out, pts[0])
		}
		return out
	}
	seg := 0
	segStart := 0.0
	segLen := dist3(pts[0], pts[1])
	for i := 0; i < n; i++ {
		target := total * float64(i) / float64(n-1)
		for target > segStart+segLen && seg < len(pts)-2 {
			segStart += segLen
			seg++
			segLen = dist3(pts[seg], pts[seg+1])
		}
		t := 0.0
		if segLen > 0 {
			t = (target - segStart) / segLen
			if t > 1 {
				t = 1
			}
			if t < 0 {
				t = 0
			}
		}
		a, b := pts[seg], pts[seg+1]
		out = append(out, [3]float64{
			a[0] + t*(b[0]-a[0]),
			a[1] + t*(b[1]-a[1]),
			a[2] + t*(b[2]-a[2]),
		})
	}
	return out
}

// Simplify returns the Douglas–Peucker simplification of pts at tolerance
// tol: every removed point lies within tol of the simplified polyline.
func Simplify(pts [][3]float64, tol float64) [][3]float64 {
	if len(pts) <= 2 {
		return append([][3]float64(nil), pts...)
	}
	keep := make([]bool, len(pts))
	keep[0] = true
	keep[len(pts)-1] = true
	type span struct{ lo, hi int }
	stack := []span{{0, len(pts) - 1}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.hi-s.lo < 2 {
			continue
		}
		maxD, maxI := -1.0, -1
		for i := s.lo + 1; i < s.hi; i++ {
			d := pointSegmentDist(pts[i], pts[s.lo], pts[s.hi])
			if d > maxD {
				maxD, maxI = d, i
			}
		}
		if maxD > tol {
			keep[maxI] = true
			stack = append(stack, span{s.lo, maxI}, span{maxI, s.hi})
		}
	}
	out := make([][3]float64, 0, len(pts)/4+2)
	for i, k := range keep {
		if k {
			out = append(out, pts[i])
		}
	}
	return out
}

// pointSegmentDist returns the distance from p to segment [a, b].
func pointSegmentDist(p, a, b [3]float64) float64 {
	ab := [3]float64{b[0] - a[0], b[1] - a[1], b[2] - a[2]}
	ap := [3]float64{p[0] - a[0], p[1] - a[1], p[2] - a[2]}
	denom := ab[0]*ab[0] + ab[1]*ab[1] + ab[2]*ab[2]
	t := 0.0
	if denom > 0 {
		t = (ap[0]*ab[0] + ap[1]*ab[1] + ap[2]*ab[2]) / denom
		if t < 0 {
			t = 0
		}
		if t > 1 {
			t = 1
		}
	}
	q := [3]float64{a[0] + t*ab[0], a[1] + t*ab[1], a[2] + t*ab[2]}
	return dist3(p, q)
}
