package integrate

import (
	"math"
	"math/rand"
	"testing"

	"tspsz/internal/critical"
	"tspsz/internal/field"
)

func fill2D(f *field.Field, fn func(x, y float64) (float64, float64)) {
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		u, v := fn(p[0], p[1])
		f.U[idx] = float32(u)
		f.V[idx] = float32(v)
	}
}

func TestUniformFlowLeavesDomain(t *testing.T) {
	f := field.New2D(8, 8)
	fill2D(f, func(x, y float64) (float64, float64) { return 1, 0 })
	tr := TraceStreamline(f, [3]float64{1, 3.5, 0}, 1, DefaultParams(), nil, nil)
	if tr.Term != LeftDomain {
		t.Fatalf("termination %v, want left-domain", tr.Term)
	}
	last := tr.Points[len(tr.Points)-1]
	if last[0] < 6 {
		t.Errorf("trajectory stopped early at %v", last)
	}
}

func TestStreamlineAbsorbedAtSink(t *testing.T) {
	f := field.New2D(11, 11)
	fill2D(f, func(x, y float64) (float64, float64) { return -(x - 5.3), -(y - 5.2) })
	cps := critical.Extract(f)
	if len(cps) != 1 || cps[0].Type != critical.Sink {
		t.Fatalf("setup: want one sink, got %v", cps)
	}
	par := DefaultParams()
	par.H = 0.1
	par.MaxSteps = 5000
	tr := TraceStreamline(f, [3]float64{2, 2, 0}, 1, par, cps, nil)
	if tr.Term != AbsorbedAtCP || tr.EndCP != 0 {
		t.Fatalf("termination %v endCP %d, want absorbed at 0", tr.Term, tr.EndCP)
	}
}

func TestBackwardTracingFromSinkActsAsSource(t *testing.T) {
	f := field.New2D(11, 11)
	fill2D(f, func(x, y float64) (float64, float64) { return -(x - 5.3), -(y - 5.2) })
	// Backward integration of a sink field repels: must leave the domain.
	tr := TraceStreamline(f, [3]float64{4, 4, 0}, -1, DefaultParams(), nil, nil)
	if tr.Term != LeftDomain {
		t.Fatalf("termination %v, want left-domain", tr.Term)
	}
}

// RK4 on an exactly-linear rotation field must conserve the radius to high
// order.
func TestRK4RotationAccuracy(t *testing.T) {
	f := field.New2D(17, 17)
	fill2D(f, func(x, y float64) (float64, float64) { return -(y - 8), x - 8 })
	par := Params{EpsP: 1e-3, MaxSteps: 126, H: 0.05} // ≈ one revolution
	start := [3]float64{11, 8, 0}                     // radius 3 around center (8,8)
	tr := TraceStreamline(f, start, 1, par, nil, nil)
	if tr.Term != MaxSteps {
		t.Fatalf("termination %v, want max-steps", tr.Term)
	}
	for i, p := range tr.Points {
		r := math.Hypot(p[0]-8, p[1]-8)
		if math.Abs(r-3) > 1e-3 {
			t.Fatalf("point %d: radius %v drifted from 3", i, r)
		}
	}
}

func saddleField(t *testing.T) (*field.Field, []critical.Point) {
	t.Helper()
	// u = -(x-2)(x-6)/2 has a saddle at x=2 and a sink at x=6 (with
	// v = -(y-4)): classic saddle-sink connection along y=4.
	f := field.New2D(9, 9)
	fill2D(f, func(x, y float64) (float64, float64) {
		return -(x - 2) * (x - 6) / 2, -(y - 4.2)
	})
	cps := critical.Extract(f)
	return f, cps
}

func TestSeparatrixSeedsCount2D(t *testing.T) {
	_, cps := saddleField(t)
	var saddle *critical.Point
	for i := range cps {
		if cps[i].Type == critical.Saddle {
			saddle = &cps[i]
		}
	}
	if saddle == nil {
		t.Fatalf("no saddle in %v", cps)
	}
	seeds, dirs, idx := SeparatrixSeeds(*saddle, 1e-3)
	if len(seeds) != 4 || len(dirs) != 4 || len(idx) != 4 {
		t.Fatalf("2D saddle has %d seeds, want 4", len(seeds))
	}
}

func TestSeparatrixConnectsSaddleToSink(t *testing.T) {
	f, cps := saddleField(t)
	sinks := map[int]bool{}
	for i := range cps {
		if cps[i].Type == critical.Sink {
			sinks[i] = true
		}
	}
	if len(sinks) == 0 {
		t.Fatalf("no sink in %v", cps)
	}
	par := Params{EpsP: 1e-2, MaxSteps: 4000, H: 0.05}
	trs := TraceSeparatrices(f, cps, par, nil)
	if len(trs) != 4*critical.CountSaddles(cps) {
		t.Fatalf("traced %d separatrices, want %d", len(trs), 4*critical.CountSaddles(cps))
	}
	absorbed := 0
	for _, tr := range trs {
		if tr.Term == AbsorbedAtCP && sinks[tr.EndCP] {
			absorbed++
		}
	}
	if absorbed == 0 {
		t.Error("no separatrix reached the sink")
	}
}

// The involved-vertex guarantee behind TspSZ-I: perturbing vertices that a
// trace never touched must leave the trajectory bitwise identical.
func TestInvolvedVerticesSufficientForExactRetrace(t *testing.T) {
	f, cps := saddleField(t)
	par := Params{EpsP: 1e-2, MaxSteps: 2000, H: 0.05}
	var involved []int
	orig := TraceSeparatrices(f, cps, par, &involved)
	mark := make([]bool, f.NumVertices())
	for _, v := range involved {
		mark[v] = true
	}
	touched := 0
	g := f.Clone()
	rng := rand.New(rand.NewSource(99))
	for i := range mark {
		if !mark[i] {
			g.U[i] += rng.Float32() * 10
			g.V[i] += rng.Float32() * 10
			touched++
		}
	}
	if touched == 0 {
		t.Skip("every vertex involved; perturbation impossible on this grid")
	}
	re := TraceSeparatrices(g, cps, par, nil)
	if len(re) != len(orig) {
		t.Fatalf("retrace produced %d trajectories, want %d", len(re), len(orig))
	}
	for i := range orig {
		if len(orig[i].Points) != len(re[i].Points) {
			t.Fatalf("separatrix %d: %d vs %d points", i, len(orig[i].Points), len(re[i].Points))
		}
		for j := range orig[i].Points {
			if orig[i].Points[j] != re[i].Points[j] {
				t.Fatalf("separatrix %d diverges at point %d: %v vs %v",
					i, j, orig[i].Points[j], re[i].Points[j])
			}
		}
		if orig[i].Term != re[i].Term || orig[i].EndCP != re[i].EndCP {
			t.Fatalf("separatrix %d: termination changed", i)
		}
	}
}

func TestTraceDeterministic(t *testing.T) {
	f, cps := saddleField(t)
	par := DefaultParams()
	a := TraceSeparatrices(f, cps, par, nil)
	b := TraceSeparatrices(f, cps, par, nil)
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if len(a[i].Points) != len(b[i].Points) {
			t.Fatalf("separatrix %d nondeterministic length", i)
		}
		for j := range a[i].Points {
			if a[i].Points[j] != b[i].Points[j] {
				t.Fatalf("separatrix %d nondeterministic at %d", i, j)
			}
		}
	}
}

func TestRetraceMatchesOriginal(t *testing.T) {
	f, cps := saddleField(t)
	par := Params{EpsP: 1e-2, MaxSteps: 1000, H: 0.05}
	trs := TraceSeparatrices(f, cps, par, nil)
	loc := NewCPLocator(cps)
	for i := range trs {
		re := Retrace(f, cps, loc, &trs[i], par, nil)
		if len(re.Points) != len(trs[i].Points) {
			t.Fatalf("retrace %d: %d vs %d points", i, len(re.Points), len(trs[i].Points))
		}
		for j := range re.Points {
			if re.Points[j] != trs[i].Points[j] {
				t.Fatalf("retrace %d diverges at %d", i, j)
			}
		}
	}
}

func TestZeroVelocityTermination(t *testing.T) {
	f := field.New2D(6, 6)
	fill2D(f, func(x, y float64) (float64, float64) { return 0, 0 })
	tr := TraceStreamline(f, [3]float64{2.5, 2.5, 0}, 1, DefaultParams(), nil, nil)
	if tr.Term != ZeroVelocity {
		t.Fatalf("termination %v, want zero-velocity", tr.Term)
	}
}

func TestTerminationString(t *testing.T) {
	cases := map[Termination]string{
		MaxSteps: "max-steps", AbsorbedAtCP: "absorbed",
		LeftDomain: "left-domain", ZeroVelocity: "zero-velocity",
	}
	for k, v := range cases {
		if k.String() != v {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), v)
		}
	}
}

func BenchmarkTraceSeparatrices(b *testing.B) {
	f := field.New2D(64, 64)
	fill2D(f, func(x, y float64) (float64, float64) {
		return math.Sin(x/5) * math.Cos(y/5), -math.Cos(x/5) * math.Sin(y/5)
	})
	cps := critical.Extract(f)
	par := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TraceSeparatrices(f, cps, par, nil)
	}
}
