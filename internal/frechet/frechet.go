// Package frechet implements the discrete Fréchet distance between
// polygonal curves (Eiter & Mannila), the trajectory-similarity metric TspSZ
// uses to decide whether a separatrix survived compression (§IV-A, §VIII-B).
package frechet

import "math"

// Point is a point on a trajectory; 2D trajectories set the third coordinate
// to zero.
type Point = [3]float64

func sqDist(a, b Point) float64 {
	dx := a[0] - b[0]
	dy := a[1] - b[1]
	dz := a[2] - b[2]
	return dx*dx + dy*dy + dz*dz
}

// Distance returns the discrete Fréchet distance between curves p and q
// using the standard O(|p|·|q|) coupled dynamic program with a rolling row.
// Distance of an empty curve against anything is +Inf except for two empty
// curves, which have distance 0.
func Distance(p, q []Point) float64 {
	if len(p) == 0 && len(q) == 0 {
		return 0
	}
	if len(p) == 0 || len(q) == 0 {
		return math.Inf(1)
	}
	// Fast path: identical curves (bit-exact separatrices after TspSZ-1
	// are the common case in the evaluation harness) need no DP.
	if len(p) == len(q) {
		same := true
		for i := range p {
			if p[i] != q[i] {
				same = false
				break
			}
		}
		if same {
			return 0
		}
	}
	// prev[j] = c(i-1, j); cur[j] = c(i, j), with
	// c(i,j) = max(d(p_i,q_j), min(c(i-1,j), c(i-1,j-1), c(i,j-1))).
	prev := make([]float64, len(q))
	cur := make([]float64, len(q))
	prev[0] = sqDist(p[0], q[0])
	for j := 1; j < len(q); j++ {
		prev[j] = math.Max(prev[j-1], sqDist(p[0], q[j]))
	}
	for i := 1; i < len(p); i++ {
		cur[0] = math.Max(prev[0], sqDist(p[i], q[0]))
		for j := 1; j < len(q); j++ {
			m := math.Min(prev[j], math.Min(prev[j-1], cur[j-1]))
			cur[j] = math.Max(m, sqDist(p[i], q[j]))
		}
		prev, cur = cur, prev
	}
	return math.Sqrt(prev[len(q)-1])
}

// WithinTol reports whether the discrete Fréchet distance between p and q is
// at most tol. It runs the boolean reachability variant of the DP, which is
// cheaper than Distance and can exit early when a full row becomes
// unreachable.
func WithinTol(p, q []Point, tol float64) bool {
	if len(p) == 0 && len(q) == 0 {
		return true
	}
	if len(p) == 0 || len(q) == 0 {
		return false
	}
	t2 := tol * tol
	close := func(i, j int) bool { return sqDist(p[i], q[j]) <= t2 }
	prev := make([]bool, len(q))
	cur := make([]bool, len(q))
	prev[0] = close(0, 0)
	if !prev[0] {
		return false
	}
	for j := 1; j < len(q); j++ {
		prev[j] = prev[j-1] && close(0, j)
	}
	for i := 1; i < len(p); i++ {
		cur[0] = prev[0] && close(i, 0)
		any := cur[0]
		for j := 1; j < len(q); j++ {
			cur[j] = (prev[j] || prev[j-1] || cur[j-1]) && close(i, j)
			any = any || cur[j]
		}
		if !any {
			return false
		}
		prev, cur = cur, prev
	}
	return prev[len(q)-1]
}
