package frechet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func line(n int, y float64) []Point {
	p := make([]Point, n)
	for i := range p {
		p[i] = Point{float64(i), y, 0}
	}
	return p
}

func TestIdenticalCurvesZero(t *testing.T) {
	p := line(10, 0)
	if d := Distance(p, p); d != 0 {
		t.Errorf("Distance(p,p) = %v, want 0", d)
	}
	if !WithinTol(p, p, 0) {
		t.Error("WithinTol(p,p,0) = false")
	}
}

func TestParallelLines(t *testing.T) {
	p := line(20, 0)
	q := line(20, 3)
	if d := Distance(p, q); math.Abs(d-3) > 1e-12 {
		t.Errorf("parallel lines distance = %v, want 3", d)
	}
	if WithinTol(p, q, 2.9) {
		t.Error("WithinTol should fail at 2.9")
	}
	if !WithinTol(p, q, 3.0) {
		t.Error("WithinTol should pass at 3.0")
	}
}

func TestDifferentLengths(t *testing.T) {
	p := line(5, 0)
	q := line(17, 1)
	d := Distance(p, q)
	if d < 1 {
		t.Errorf("distance %v below pointwise lower bound 1", d)
	}
	if !WithinTol(p, q, d+1e-9) {
		t.Error("WithinTol disagrees with Distance (pass case)")
	}
	if WithinTol(p, q, d-1e-6) {
		t.Error("WithinTol disagrees with Distance (fail case)")
	}
}

func TestEmptyCurves(t *testing.T) {
	if d := Distance(nil, nil); d != 0 {
		t.Errorf("Distance(nil,nil) = %v, want 0", d)
	}
	if !math.IsInf(Distance(line(3, 0), nil), 1) {
		t.Error("Distance(p,nil) should be +Inf")
	}
	if !WithinTol(nil, nil, 0) {
		t.Error("WithinTol(nil,nil) should hold")
	}
	if WithinTol(line(3, 0), nil, 100) {
		t.Error("WithinTol(p,nil) should fail")
	}
}

func TestSinglePoints(t *testing.T) {
	p := []Point{{0, 0, 0}}
	q := []Point{{3, 4, 0}}
	if d := Distance(p, q); math.Abs(d-5) > 1e-12 {
		t.Errorf("single point distance = %v, want 5", d)
	}
}

func randCurve(rng *rand.Rand, n int) []Point {
	p := make([]Point, n)
	x, y, z := 0.0, 0.0, 0.0
	for i := range p {
		x += rng.NormFloat64()
		y += rng.NormFloat64()
		z += rng.NormFloat64()
		p[i] = Point{x, y, z}
	}
	return p
}

// Property: symmetry, non-negativity, endpoint lower bound, and agreement
// between Distance and WithinTol.
func TestProperties(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 1
		m := int(mRaw%30) + 1
		p := randCurve(rng, n)
		q := randCurve(rng, m)
		d := Distance(p, q)
		if d < 0 {
			return false
		}
		if math.Abs(Distance(q, p)-d) > 1e-9 {
			return false
		}
		// Lower bound: max of endpoint distances.
		lb := math.Max(math.Sqrt(sqDist(p[0], q[0])), math.Sqrt(sqDist(p[n-1], q[m-1])))
		if d < lb-1e-9 {
			return false
		}
		return WithinTol(p, q, d+1e-9) && (d == 0 || !WithinTol(p, q, d*(1-1e-9)-1e-12))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Inserting a point on the segment between two existing points cannot
// increase the discrete Fréchet distance beyond the original plus segment
// slack; at minimum it must stay finite and close. We check the weaker, exact
// property that duplicating a point leaves the distance unchanged.
func TestDuplicatePointInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		p := randCurve(rng, 12)
		q := randCurve(rng, 9)
		d := Distance(p, q)
		k := rng.Intn(len(p))
		pp := append(append(append([]Point{}, p[:k+1]...), p[k]), p[k+1:]...)
		if math.Abs(Distance(pp, q)-d) > 1e-9 {
			t.Fatalf("duplicating point changed distance: %v vs %v", Distance(pp, q), d)
		}
	}
}

func BenchmarkDistance1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randCurve(rng, 1000)
	q := randCurve(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(p, q)
	}
}

func BenchmarkWithinTol1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := randCurve(rng, 1000)
	q := randCurve(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WithinTol(p, q, 1.5)
	}
}
