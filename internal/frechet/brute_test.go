package frechet

import (
	"math"
	"math/rand"
	"testing"
)

// bruteDistance is the textbook exponential-memoization reference
// implementation, used to validate the rolling-row DP on small inputs.
func bruteDistance(p, q []Point) float64 {
	memo := make(map[[2]int]float64)
	var c func(i, j int) float64
	c = func(i, j int) float64 {
		if v, ok := memo[[2]int{i, j}]; ok {
			return v
		}
		d := math.Sqrt(sqDist(p[i], q[j]))
		var v float64
		switch {
		case i == 0 && j == 0:
			v = d
		case i == 0:
			v = math.Max(c(0, j-1), d)
		case j == 0:
			v = math.Max(c(i-1, 0), d)
		default:
			v = math.Max(math.Min(c(i-1, j), math.Min(c(i-1, j-1), c(i, j-1))), d)
		}
		memo[[2]int{i, j}] = v
		return v
	}
	return c(len(p)-1, len(q)-1)
}

func TestDistanceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(12) + 1
		m := rng.Intn(12) + 1
		p := randCurve(rng, n)
		q := randCurve(rng, m)
		got := Distance(p, q)
		want := bruteDistance(p, q)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: Distance %v, brute force %v", trial, got, want)
		}
	}
}
