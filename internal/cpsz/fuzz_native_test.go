package cpsz

import (
	"testing"

	"tspsz/internal/ebound"
)

// FuzzDecompressTruncated feeds the decompressor arbitrary mutations of a
// valid stream AND every reachable byte prefix of it: truncation anywhere
// in the header, section table, or packed payload must surface as an
// error — never a panic, hang, or silent success with a nil field.
func FuzzDecompressTruncated(f *testing.F) {
	valid, err := Compress(gyre2D(16, 12), Options{Mode: ebound.Absolute, ErrBound: 0.05, Workers: 1})
	if err != nil {
		f.Fatal(err)
	}
	stream := valid.Bytes
	f.Add([]byte{}, uint16(0))
	f.Add(stream, uint16(len(stream)))
	for _, cut := range []int{1, 4, 8, 27, 28, len(stream) / 2, len(stream) - 1} {
		if cut >= 0 && cut < len(stream) {
			f.Add(stream[:cut], uint16(cut))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, n uint16) {
		// Arbitrary (mutated) bytes.
		if fld, err := Decompress(data, 1); err == nil && fld == nil {
			t.Fatal("nil field with nil error on mutated input")
		}
		// Exact prefix of the known-valid stream, length chosen by the
		// fuzzer: only the full stream may decode successfully.
		prefix := stream[:int(n)%(len(stream)+1)]
		fld, err := Decompress(prefix, 1)
		if len(prefix) < len(stream) && err == nil {
			t.Fatalf("truncated stream (%d of %d bytes) decoded without error", len(prefix), len(stream))
		}
		if err == nil && fld == nil {
			t.Fatal("nil field with nil error on full stream")
		}
	})
}
