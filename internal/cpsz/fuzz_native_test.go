package cpsz

import (
	"testing"

	"tspsz/internal/ebound"
)

// FuzzDecompressTruncated feeds the decompressor arbitrary mutations of
// valid v1 and v2 streams AND every reachable byte prefix of them:
// truncation anywhere in the header, codebook, chunk directory, or packed
// payload must surface as an error — never a panic, hang, unbounded
// allocation, or silent success with a nil field.
func FuzzDecompressTruncated(f *testing.F) {
	field2d := gyre2D(16, 12)
	opts := Options{Mode: ebound.Absolute, ErrBound: 0.05, Workers: 1}
	valid, err := Compress(field2d, opts)
	if err != nil {
		f.Fatal(err)
	}
	stream := valid.Bytes
	f.Add([]byte{}, uint16(0))
	f.Add(stream, uint16(len(stream)))
	for _, cut := range []int{1, 4, 8, 27, 28, len(stream) / 2, len(stream) - 1} {
		if cut >= 0 && cut < len(stream) {
			f.Add(stream[:cut], uint16(cut))
		}
	}
	// Legacy-layout seed: the v1 reader must stay as robust as the v2 one.
	_, ebSyms, quantSyms, raw, err := parse(stream, 1)
	if err != nil {
		f.Fatal(err)
	}
	v1, err := serializeV1(field2d, opts, ebSyms, quantSyms, raw)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v1, uint16(len(v1)))
	f.Add(v1[:len(v1)/2], uint16(0))
	// Regression seed for the unbounded-inflate crasher: a chunk directory
	// claiming a huge uncompressed size from a tiny payload must be
	// rejected by the size cap, not materialized by io.ReadAll.
	bomb := buildSymbolSection(f, manySyms(chunkSymbols+10),
		func(_ *uint64, usizes, _ []uint64) { usizes[0] = 1 << 40 })
	f.Add(append(append([]byte{}, stream[:headerBytes]...), bomb...), uint16(0))

	f.Fuzz(func(t *testing.T, data []byte, n uint16) {
		// Arbitrary (mutated) bytes.
		if fld, err := Decompress(data, 1); err == nil && fld == nil {
			t.Fatal("nil field with nil error on mutated input")
		}
		// Exact prefix of the known-valid stream, length chosen by the
		// fuzzer: only the full stream may decode successfully.
		prefix := stream[:int(n)%(len(stream)+1)]
		fld, err := Decompress(prefix, 1)
		if len(prefix) < len(stream) && err == nil {
			t.Fatalf("truncated stream (%d of %d bytes) decoded without error", len(prefix), len(stream))
		}
		if err == nil && fld == nil {
			t.Fatal("nil field with nil error on full stream")
		}
	})
}
