package cpsz

import (
	"encoding/binary"
	"errors"
	"testing"

	"tspsz/internal/ebound"
	"tspsz/internal/streamerr"
)

// streamErrTyped reports whether err carries one of the four streamerr
// failure classes.
func streamErrTyped(err error) bool {
	return errors.Is(err, streamerr.ErrTruncated) || errors.Is(err, streamerr.ErrCorrupt) ||
		errors.Is(err, streamerr.ErrVersion) || errors.Is(err, streamerr.ErrHeader)
}

// FuzzDecompressTruncated feeds the decompressor arbitrary mutations of
// valid v1 through v4 streams AND every reachable byte prefix of them:
// truncation anywhere in the header, codebook, chunk directory, packed
// payload, or trailer must surface as a streamerr-typed error — never a
// panic, hang, unbounded allocation, or silent success with a nil field.
func FuzzDecompressTruncated(f *testing.F) {
	field2d := gyre2D(16, 12)
	opts := Options{Mode: ebound.Absolute, ErrBound: 0.05, Workers: 1}
	valid, err := Compress(field2d, opts)
	if err != nil {
		f.Fatal(err)
	}
	stream := valid.Bytes
	f.Add([]byte{}, uint16(0))
	f.Add(stream, uint16(len(stream)))
	for _, cut := range []int{1, 4, 8, 27, 28, 31, 32, len(stream) / 2, len(stream) - trailerBytes, len(stream) - 1} {
		if cut >= 0 && cut < len(stream) {
			f.Add(stream[:cut], uint16(cut))
		}
	}
	// Legacy-layout seeds: the v1, v2, and v3 readers must stay as robust
	// as the v4 one.
	_, ebSyms, quantSyms, raw, err := parse(nil, stream, 1, nil)
	if err != nil {
		f.Fatal(err)
	}
	v1, err := serializeV1(field2d, opts, ebSyms, quantSyms, raw)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v1, uint16(len(v1)))
	f.Add(v1[:len(v1)/2], uint16(0))
	v2 := serializeV2(f, field2d, opts, ebSyms, quantSyms, raw)
	f.Add(v2, uint16(len(v2)))
	f.Add(v2[:len(v2)/2], uint16(0))
	v3 := serializeV3(f, field2d, opts, ebSyms, quantSyms, raw)
	f.Add(v3, uint16(len(v3)))
	f.Add(v3[:len(v3)/2], uint16(0))
	// Regression seed for the unbounded-inflate crasher: a chunk directory
	// claiming a huge uncompressed size from a tiny payload must be
	// rejected by the size cap, not materialized by io.ReadAll.
	bomb := buildSymbolSection(f, manySyms(chunkSymbols+10), formatV2,
		func(_ *uint64, usizes, _ []uint64, _ []uint32, _ []byte) { usizes[0] = 1 << 40 })
	f.Add(append(append([]byte{}, stream[:headerBytes]...), bomb...), uint16(0))
	// v4 bit-packed seeds: a section whose chunks all take the packed fast
	// path, and a directory whose mode column lies about it.
	uniform := make([]uint32, chunkSymbols+100)
	for i := range uniform {
		uniform[i] = uint32(i % 64)
	}
	packedSec, err := appendSymbolSection(nil, nil, uniform, 1, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(append([]byte{}, stream[:headerBytesV3]...), packedSec...), uint16(0))
	modeLie := buildSymbolSection(f, manySyms(chunkSymbols+10), formatV4,
		func(_ *uint64, _, _ []uint64, _ []uint32, modes []byte) { modes[0] = symChunkPacked })
	f.Add(append(append([]byte{}, stream[:headerBytesV3]...), modeLie...), uint16(0))
	// Packed base/width lies sealed behind a valid per-chunk CRC: the
	// structural checks, not the checksums, must reject these.
	for _, pl := range [][]byte{
		append(binary.AppendUvarint(nil, 1<<33), 0),   // base past the u32 symbol range
		append([]byte{0x00, 33}, make([]byte, 64)...), // width beyond 32 bits
		{0x80, 0x01}, // base uvarint swallows the width byte
	} {
		sec := packedSection(f, uniform[:500], pl, len(pl), len(pl))
		f.Add(append(append([]byte{}, stream[:headerBytesV3]...), sec...), uint16(0))
	}
	// A chunk mode byte flipped in a real archive with the stream trailer
	// resealed, so every CRC passes and only per-mode validation objects.
	flipped := append([]byte{}, stream...)
	flipped[walkV4(f, stream)[0].modeOff] ^= 1
	f.Add(resealTrailer(flipped), uint16(0))
	// Checksum-tamper regression seeds: a flipped per-chunk CRC in the v3
	// directory, and a trailer lying about the payload length.
	crcFlip := append([]byte{}, stream...)
	crcFlip[headerBytesV3+10] ^= 0x01
	f.Add(crcFlip, uint16(0))
	lyingTrailer := append([]byte{}, stream...)
	binary.LittleEndian.PutUint64(lyingTrailer[len(lyingTrailer)-trailerBytes:], 1<<40)
	f.Add(lyingTrailer, uint16(0))

	f.Fuzz(func(t *testing.T, data []byte, n uint16) {
		// Arbitrary (mutated) bytes: decode must fail typed or succeed.
		fld, err := Decompress(data, 1)
		if err == nil && fld == nil {
			t.Fatal("nil field with nil error on mutated input")
		}
		if err != nil && !streamErrTyped(err) {
			t.Fatalf("untyped decode error: %v", err)
		}
		// The checksum scan obeys the same contract.
		if err := Verify(data); err != nil && !streamErrTyped(err) {
			t.Fatalf("untyped verify error: %v", err)
		}
		// Exact prefix of the known-valid stream, length chosen by the
		// fuzzer: only the full stream may decode successfully.
		prefix := stream[:int(n)%(len(stream)+1)]
		fld, err = Decompress(prefix, 1)
		if len(prefix) < len(stream) && err == nil {
			t.Fatalf("truncated stream (%d of %d bytes) decoded without error", len(prefix), len(stream))
		}
		if err == nil && fld == nil {
			t.Fatal("nil field with nil error on full stream")
		}
	})
}

// FuzzSalvage feeds the salvage decoder the strict decoder's hostile
// corpus plus resealed per-chunk corruptions of a real archive. Salvage
// must never panic, every error must be streamerr-typed, every report must
// be self-consistent — and on any stream the strict decoder accepts,
// salvage must agree bit-exactly with an all-clean report. The exhaustive
// verify scan obeys the same typing contract.
func FuzzSalvage(f *testing.F) {
	field2d := gyre2D(16, 12)
	opts := Options{Mode: ebound.Absolute, ErrBound: 0.05, Workers: 1}
	valid, err := Compress(field2d, opts)
	if err != nil {
		f.Fatal(err)
	}
	stream := valid.Bytes
	f.Add([]byte{})
	f.Add(stream)
	for _, cut := range []int{4, headerBytes, headerBytesV3, len(stream) / 2, len(stream) - trailerBytes, len(stream) - 1} {
		f.Add(append([]byte{}, stream[:cut]...))
	}
	// Every chunk of the archive corrupted one at a time, trailer resealed:
	// the salvage sweep's own seed corpus.
	for _, r := range walkV4(f, stream) {
		if r.csize == 0 {
			continue
		}
		mut := append([]byte{}, stream...)
		mut[r.payOff+r.csize/2] ^= 0xff
		f.Add(resealTrailer(mut))
		// And with the seal left broken.
		mut2 := append([]byte{}, stream...)
		mut2[r.payOff] ^= 0xff
		f.Add(mut2)
	}
	// Directory CRC column and trailer tampers.
	crcFlip := append([]byte{}, stream...)
	crcFlip[headerBytesV3+10] ^= 0x01
	f.Add(crcFlip)
	lyingTrailer := append([]byte{}, stream...)
	binary.LittleEndian.PutUint64(lyingTrailer[len(lyingTrailer)-trailerBytes:], 1<<40)
	f.Add(lyingTrailer)

	f.Fuzz(func(t *testing.T, data []byte) {
		fld, rep, err := Salvage(data, 1)
		if err != nil && !streamErrTyped(err) {
			t.Fatalf("untyped salvage error: %v", err)
		}
		if err == nil {
			if fld == nil || rep == nil {
				t.Fatal("salvage returned nil field or report without error")
			}
			if rep.Damaged == nil || rep.DamagedVertices != rep.Damaged.Count() {
				t.Fatalf("inconsistent damage accounting: %d vs bitmap", rep.DamagedVertices)
			}
			if rep.TotalVertices != fld.NumVertices() {
				t.Fatalf("TotalVertices %d, field has %d", rep.TotalVertices, fld.NumVertices())
			}
		}
		for _, fe := range VerifyAll(data) {
			if !streamErrTyped(fe) {
				t.Fatalf("untyped verify-all failure: %v", fe)
			}
		}
		// Differential contract: anything the strict decoder accepts,
		// salvage must reproduce exactly and report clean.
		strict, serr := Decompress(data, 1)
		if serr != nil {
			return
		}
		if err != nil {
			t.Fatalf("strict decode succeeded but salvage failed: %v", err)
		}
		if !rep.Clean() {
			t.Fatalf("strict-valid stream reported damage: %+v", rep)
		}
		sc, fc := strict.Components(), fld.Components()
		for c := range sc {
			for i := range sc[c] {
				if sc[c][i] != fc[c][i] {
					t.Fatalf("salvage differs from strict decode at vertex %d comp %d", i, c)
				}
			}
		}
	})
}
