package cpsz

import (
	"bytes"
	"encoding/binary"
	"strconv"
	"testing"

	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/huffman"
	"tspsz/internal/parallel"
)

// serializeV1 writes the legacy single-stream layout: whole-section
// Huffman passes wrapped in length-prefixed DEFLATE payloads. The
// production writer emits v2 only; this copy exists so cross-version
// tests and fuzz seeds can mint fresh v1 archives.
func serializeV1(f *field.Field, opts Options, ebSyms, quantSyms []uint32, raw []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(streamMagic)
	buf.WriteByte(formatV1)
	buf.WriteByte(byte(f.Dim()))
	buf.WriteByte(byte(opts.Mode))
	pb := byte(opts.Predictor)
	if opts.Reference != nil {
		pb |= temporalFlag
	}
	buf.WriteByte(pb)
	nx, ny, nz := f.Grid.Dims()
	for _, v := range []uint32{uint32(nx), uint32(ny), uint32(nz)} {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	if err := binary.Write(&buf, binary.LittleEndian, opts.ErrBound); err != nil {
		return nil, err
	}
	for _, section := range [][]byte{huffman.Encode(ebSyms), huffman.Encode(quantSyms), raw} {
		packed, err := deflate(section)
		if err != nil {
			return nil, err
		}
		if err := binary.Write(&buf, binary.LittleEndian, uint64(len(packed))); err != nil {
			return nil, err
		}
		buf.Write(packed)
	}
	return buf.Bytes(), nil
}

// rewriteAsV1 converts a v2 archive into the equivalent v1 archive by
// re-serializing its parsed sections through the legacy writer.
func rewriteAsV1(t *testing.T, f *field.Field, opts Options, v2 []byte) []byte {
	t.Helper()
	_, ebSyms, quantSyms, raw, err := parse(v2, 1)
	if err != nil {
		t.Fatalf("parse v2: %v", err)
	}
	v1, err := serializeV1(f, opts, ebSyms, quantSyms, raw)
	if err != nil {
		t.Fatalf("serializeV1: %v", err)
	}
	return v1
}

func fieldsEqual(t *testing.T, a, b *field.Field) {
	t.Helper()
	if a.Dim() != b.Dim() || a.NumVertices() != b.NumVertices() {
		t.Fatal("field shapes differ")
	}
	for c, comp := range a.Components() {
		other := b.Components()[c]
		for i := range comp {
			if comp[i] != other[i] {
				t.Fatalf("component %d vertex %d: %v != %v", c, i, comp[i], other[i])
			}
		}
	}
}

// TestV1CrossVersionDecode guards the compatibility promise: a v1 archive
// of the same sections must decode to the exact field the v2 archive
// produces, at every worker count.
func TestV1CrossVersionDecode(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    *field.Field
		opts Options
	}{
		{"2D-abs", gyre2D(48, 40), Options{Mode: ebound.Absolute, ErrBound: 0.01, Workers: 2}},
		{"2D-rel", gyre2D(40, 32), Options{Mode: ebound.Relative, ErrBound: 0.05, Workers: 2}},
		{"3D-abs", turb3D(16), Options{Mode: ebound.Absolute, ErrBound: 0.02, Workers: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Compress(tc.f, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Bytes[4] != formatV2 {
				t.Fatalf("writer emitted version %d, want %d", res.Bytes[4], formatV2)
			}
			v1 := rewriteAsV1(t, tc.f, tc.opts, res.Bytes)
			if v1[4] != formatV1 {
				t.Fatalf("legacy writer emitted version %d", v1[4])
			}
			want, err := Decompress(res.Bytes, 2)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				got, err := Decompress(v1, workers)
				if err != nil {
					t.Fatalf("v1 decode (workers=%d): %v", workers, err)
				}
				fieldsEqual(t, want, got)
			}
		})
	}
}

// TestV2DeterministicAcrossWorkerCounts pins the headline invariant of the
// chunked entropy back-end: archive bytes are identical for every worker
// count, and every worker count decodes every archive identically. The
// field is large enough that each symbol section spans multiple chunks.
func TestV2DeterministicAcrossWorkerCounts(t *testing.T) {
	f := gyre2D(256, 192) // 49152 vertices -> quant section > 2 chunks
	var ref []byte
	var want *field.Field
	for _, workers := range []int{1, 2, 4, 8} {
		opts := Options{Mode: ebound.Absolute, ErrBound: 0.005, Workers: workers}
		res, err := Compress(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decompress(res.Bytes, workers)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, want = res.Bytes, dec
			continue
		}
		if !bytes.Equal(ref, res.Bytes) {
			t.Fatalf("archive bytes differ between workers=1 and workers=%d", workers)
		}
		fieldsEqual(t, want, dec)
	}
}

// buildSymbolSection mirrors appendSymbolSection but lets the test tamper
// with the chunk directory before it is written, to model corrupt or
// adversarial archives.
func buildSymbolSection(t testing.TB, syms []uint32, tamper func(cc *uint64, usizes, csizes []uint64)) []byte {
	t.Helper()
	table := huffman.BuildTable(syms, 1)
	bounds := parallel.Ranges(len(syms), chunkCount(len(syms), chunkSymbols))
	usizes := make([]uint64, len(bounds))
	csizes := make([]uint64, len(bounds))
	var payload []byte
	for i, b := range bounds {
		bits := table.EncodeChunk(nil, syms[b[0]:b[1]])
		packed, err := deflate(bits)
		if err != nil {
			t.Fatal(err)
		}
		usizes[i] = uint64(len(bits))
		csizes[i] = uint64(len(packed))
		payload = append(payload, packed...)
	}
	cc := uint64(len(bounds))
	if tamper != nil {
		tamper(&cc, usizes, csizes)
	}
	out := binary.AppendUvarint(nil, uint64(len(syms)))
	out = table.AppendTable(out)
	out = binary.AppendUvarint(out, cc)
	for i := range usizes {
		out = binary.AppendUvarint(out, usizes[i])
		out = binary.AppendUvarint(out, csizes[i])
	}
	return append(out, payload...)
}

func manySyms(n int) []uint32 {
	syms := make([]uint32, n)
	for i := range syms {
		syms[i] = uint32(i*2654435761) % 97 // deterministic, multi-chunk alphabet
	}
	return syms
}

// TestV2ChunkDirectoryLies drives parseSymbolSection with directories that
// lie about chunk counts and sizes: every lie must surface as an error —
// never a panic, hang, or silent mis-decode.
func TestV2ChunkDirectoryLies(t *testing.T) {
	syms := manySyms(3*chunkSymbols + 1000) // 4 chunks
	lies := []struct {
		name   string
		tamper func(cc *uint64, usizes, csizes []uint64)
	}{
		{"chunk-count-zero", func(cc *uint64, _, _ []uint64) { *cc = 0 }},
		{"chunk-count-low", func(cc *uint64, _, _ []uint64) { *cc = 1 }},
		{"chunk-count-high", func(cc *uint64, _, _ []uint64) { *cc = 9 }},
		{"chunk-count-huge", func(cc *uint64, _, _ []uint64) { *cc = 1 << 40 }},
		{"usize-zero", func(_ *uint64, usizes, _ []uint64) { usizes[0] = 0 }},
		{"usize-short", func(_ *uint64, usizes, _ []uint64) { usizes[1]-- }},
		{"usize-long", func(_ *uint64, usizes, _ []uint64) { usizes[1]++ }},
		{"usize-bomb", func(_ *uint64, usizes, _ []uint64) { usizes[2] = 1 << 40 }},
		{"csize-overlap", func(_ *uint64, _, csizes []uint64) { csizes[0]++ }}, // chunk 1 starts inside chunk 0
		{"csize-short", func(_ *uint64, _, csizes []uint64) { csizes[2]-- }},
		{"csize-huge", func(_ *uint64, _, csizes []uint64) { csizes[3] = 1 << 40 }},
	}
	for _, lie := range lies {
		t.Run(lie.name, func(t *testing.T) {
			sec := buildSymbolSection(t, syms, lie.tamper)
			if _, _, err := parseSymbolSection(sec, 0, 2); err == nil {
				t.Fatal("lying directory parsed without error")
			}
		})
	}
	// Control: the untampered section round-trips.
	sec := buildSymbolSection(t, syms, nil)
	got, off, err := parseSymbolSection(sec, 0, 2)
	if err != nil {
		t.Fatalf("untampered section: %v", err)
	}
	if off != len(sec) {
		t.Fatalf("consumed %d of %d bytes", off, len(sec))
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: got %d, want %d", i, got[i], syms[i])
		}
	}
}

// TestV2TruncatedDirectory cuts a multi-chunk section at every byte
// boundary inside its directory; every prefix must error.
func TestV2TruncatedDirectory(t *testing.T) {
	syms := manySyms(2*chunkSymbols + 10)
	sec := buildSymbolSection(t, syms, nil)
	// The directory sits between the codebook and the payload; cutting
	// anywhere before the payload end must fail.
	for cut := 0; cut < len(sec); cut += 7 {
		if _, _, err := parseSymbolSection(sec[:cut], 0, 1); err == nil {
			t.Fatalf("section truncated to %d of %d bytes parsed", cut, len(sec))
		}
	}
}

// TestV1InflateCapRejectsOversize guards the v1 reader's allocation cap: a
// section whose DEFLATE payload inflates beyond any size a valid archive
// could back is rejected instead of materialized.
func TestV1InflateCapRejectsOversize(t *testing.T) {
	// A payload of highly compressible bytes inflates ~1000x; with the cap
	// forced low the reader must reject it rather than allocate.
	big := make([]byte, 1<<20)
	packed, err := deflate(big)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inflateCap(packed, 1<<10); err == nil {
		t.Fatal("payload inflating past the cap was accepted")
	}
	if got, err := inflateCap(packed, 1<<20); err != nil || len(got) != len(big) {
		t.Fatalf("payload within cap rejected: %v", err)
	}
}

// TestV2RejectsTrailingBytes: v2 archives are exact — trailing junk after
// the final section is corruption, not padding.
func TestV2RejectsTrailingBytes(t *testing.T) {
	res, err := Compress(gyre2D(16, 12), Options{Mode: ebound.Absolute, ErrBound: 0.05, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(append(append([]byte{}, res.Bytes...), 0xAB), 1); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// entropyFixture compresses a field large enough that every section spans
// many chunks, and returns the pieces serialize/parse operate on.
func entropyFixture(b *testing.B) (*field.Field, Options, []uint32, []uint32, []byte, []byte) {
	b.Helper()
	f := gyre2D(512, 512)
	opts := Options{Mode: ebound.Absolute, ErrBound: 0.001}
	res, err := Compress(f, opts)
	if err != nil {
		b.Fatal(err)
	}
	_, ebSyms, quantSyms, raw, err := parse(res.Bytes, 0)
	if err != nil {
		b.Fatal(err)
	}
	return f, opts, ebSyms, quantSyms, raw, res.Bytes
}

// BenchmarkSerialize measures the entropy-coding stage of compression
// (shared-codebook build, chunked Huffman, chunked DEFLATE) in isolation
// across worker counts.
func BenchmarkSerialize(b *testing.B) {
	f, opts, ebSyms, quantSyms, raw, _ := entropyFixture(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			o := opts
			o.Workers = workers
			b.SetBytes(int64(f.SizeBytes()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := serialize(f, o, ebSyms, quantSyms, raw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParse measures the entropy-decoding stage of decompression
// (chunked inflate + chunked Huffman decode) in isolation across worker
// counts.
func BenchmarkParse(b *testing.B) {
	f, _, _, _, _, stream := entropyFixture(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			b.SetBytes(int64(f.SizeBytes()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, _, err := parse(stream, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
