package cpsz

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strconv"
	"testing"

	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/huffman"
	"tspsz/internal/parallel"
	"tspsz/internal/streamerr"
)

// appendLegacyHeader writes the 28-byte fixed header shared by v1 and v2
// (no CRC seal) with the given version byte.
func appendLegacyHeader(dst []byte, version byte, f *field.Field, opts Options) []byte {
	dst = append(dst, streamMagic...)
	dst = append(dst, version, byte(f.Dim()), byte(opts.Mode))
	pb := byte(opts.Predictor)
	if opts.Reference != nil {
		pb |= temporalFlag
	}
	dst = append(dst, pb)
	nx, ny, nz := f.Grid.Dims()
	for _, v := range []uint32{uint32(nx), uint32(ny), uint32(nz)} {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	var eb bytes.Buffer
	_ = binary.Write(&eb, binary.LittleEndian, opts.ErrBound)
	return append(dst, eb.Bytes()...)
}

// serializeV1 writes the legacy single-stream layout: whole-section
// Huffman passes wrapped in length-prefixed DEFLATE payloads. The
// production writer emits v4 only; this copy exists so cross-version
// tests and fuzz seeds can mint fresh v1 archives.
func serializeV1(f *field.Field, opts Options, ebSyms, quantSyms []uint32, raw []byte) ([]byte, error) {
	out := appendLegacyHeader(nil, formatV1, f, opts)
	encEb, err := huffman.Encode(ebSyms)
	if err != nil {
		return nil, err
	}
	encQuant, err := huffman.Encode(quantSyms)
	if err != nil {
		return nil, err
	}
	for _, section := range [][]byte{encEb, encQuant, raw} {
		packed, err := deflate(section)
		if err != nil {
			return nil, err
		}
		out = binary.LittleEndian.AppendUint64(out, uint64(len(packed)))
		out = append(out, packed...)
	}
	return out, nil
}

// serializeV2 writes the chunked layout without integrity metadata: the
// 28-byte unsealed header, CRC-less chunk directories, and no trailer —
// exactly what the PR-2 writer emitted. It exists so cross-version tests
// and fuzz seeds can mint fresh v2 archives.
func serializeV2(t testing.TB, f *field.Field, opts Options, ebSyms, quantSyms []uint32, raw []byte) []byte {
	t.Helper()
	return appendLegacySections(t, appendLegacyHeader(nil, formatV2, f, opts), formatV2, ebSyms, quantSyms, raw)
}

// serializeV3 writes the CRC-sealed chunked layout without mode tags —
// exactly what the PR-4 writer emitted — so cross-version tests and fuzz
// seeds can mint fresh v3 archives.
func serializeV3(t testing.TB, f *field.Field, opts Options, ebSyms, quantSyms []uint32, raw []byte) []byte {
	t.Helper()
	out := appendLegacyHeader(nil, formatV3, f, opts)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out[:headerBytes], crcTable))
	out = appendLegacySections(t, out, formatV3, ebSyms, quantSyms, raw)
	return appendTrailer(out)
}

// appendLegacySections writes the three chunked sections in the v2 or v3
// directory layout (CRC column for v3, never a mode byte).
func appendLegacySections(t testing.TB, out []byte, version byte, ebSyms, quantSyms []uint32, raw []byte) []byte {
	t.Helper()
	withCRC := version >= formatV3
	for _, syms := range [][]uint32{ebSyms, quantSyms} {
		out = binary.AppendUvarint(out, uint64(len(syms)))
		if len(syms) == 0 {
			continue
		}
		sec := buildSymbolSection(t, syms, version, nil)
		// buildSymbolSection repeats the symbol count; skip it.
		_, n := binary.Uvarint(sec)
		out = append(out, sec[n:]...)
	}
	out = binary.AppendUvarint(out, uint64(len(raw)))
	if len(raw) > 0 {
		bounds := parallel.Ranges(len(raw), chunkCount(len(raw), chunkRawBytes))
		var payload []byte
		var dir []byte
		for _, b := range bounds {
			packed, err := deflate(raw[b[0]:b[1]])
			if err != nil {
				t.Fatal(err)
			}
			dir = binary.AppendUvarint(dir, uint64(b[1]-b[0]))
			dir = binary.AppendUvarint(dir, uint64(len(packed)))
			if withCRC {
				dir = binary.LittleEndian.AppendUint32(dir, crc32.Checksum(packed, crcTable))
			}
			payload = append(payload, packed...)
		}
		out = binary.AppendUvarint(out, uint64(len(bounds)))
		out = append(out, dir...)
		out = append(out, payload...)
	}
	return out
}

// rewriteAsV1 converts a current-format archive into the equivalent v1
// archive by re-serializing its parsed sections through the legacy writer.
func rewriteAsV1(t *testing.T, f *field.Field, opts Options, cur []byte) []byte {
	t.Helper()
	_, ebSyms, quantSyms, raw, err := parse(nil, cur, 1, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	v1, err := serializeV1(f, opts, ebSyms, quantSyms, raw)
	if err != nil {
		t.Fatalf("serializeV1: %v", err)
	}
	return v1
}

// rewriteAsV2 converts a current-format archive into the equivalent v2
// archive through the CRC-less legacy chunked writer.
func rewriteAsV2(t *testing.T, f *field.Field, opts Options, cur []byte) []byte {
	t.Helper()
	_, ebSyms, quantSyms, raw, err := parse(nil, cur, 1, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return serializeV2(t, f, opts, ebSyms, quantSyms, raw)
}

// rewriteAsV3 converts a current-format archive into the equivalent v3
// archive through the CRC-sealed, mode-less legacy chunked writer.
func rewriteAsV3(t *testing.T, f *field.Field, opts Options, cur []byte) []byte {
	t.Helper()
	_, ebSyms, quantSyms, raw, err := parse(nil, cur, 1, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return serializeV3(t, f, opts, ebSyms, quantSyms, raw)
}

func fieldsEqual(t *testing.T, a, b *field.Field) {
	t.Helper()
	if a.Dim() != b.Dim() || a.NumVertices() != b.NumVertices() {
		t.Fatal("field shapes differ")
	}
	for c, comp := range a.Components() {
		other := b.Components()[c]
		for i := range comp {
			if comp[i] != other[i] {
				t.Fatalf("component %d vertex %d: %v != %v", c, i, comp[i], other[i])
			}
		}
	}
}

// TestCrossVersionDecode guards the compatibility promise: v1, v2, and v3
// archives of the same sections must decode to the exact field the v4
// archive produces, at every worker count.
func TestCrossVersionDecode(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    *field.Field
		opts Options
	}{
		{"2D-abs", gyre2D(48, 40), Options{Mode: ebound.Absolute, ErrBound: 0.01, Workers: 2}},
		{"2D-rel", gyre2D(40, 32), Options{Mode: ebound.Relative, ErrBound: 0.05, Workers: 2}},
		{"3D-abs", turb3D(16), Options{Mode: ebound.Absolute, ErrBound: 0.02, Workers: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Compress(tc.f, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Bytes[4] != formatVersion {
				t.Fatalf("writer emitted version %d, want %d", res.Bytes[4], formatVersion)
			}
			v1 := rewriteAsV1(t, tc.f, tc.opts, res.Bytes)
			if v1[4] != formatV1 {
				t.Fatalf("legacy writer emitted version %d", v1[4])
			}
			v2 := rewriteAsV2(t, tc.f, tc.opts, res.Bytes)
			if v2[4] != formatV2 {
				t.Fatalf("legacy chunked writer emitted version %d", v2[4])
			}
			v3 := rewriteAsV3(t, tc.f, tc.opts, res.Bytes)
			if v3[4] != formatV3 {
				t.Fatalf("legacy sealed writer emitted version %d", v3[4])
			}
			want, err := Decompress(res.Bytes, 2)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				for name, legacy := range map[string][]byte{"v1": v1, "v2": v2, "v3": v3} {
					got, err := Decompress(legacy, workers)
					if err != nil {
						t.Fatalf("%s decode (workers=%d): %v", name, workers, err)
					}
					fieldsEqual(t, want, got)
				}
			}
		})
	}
}

// TestV4DeterministicAcrossWorkerCounts pins the headline invariant of the
// chunked entropy back-end: archive bytes — including every per-chunk mode
// decision — are identical for every worker count, and every worker count
// decodes every archive identically. The field is large enough that each
// symbol section spans multiple chunks.
func TestV4DeterministicAcrossWorkerCounts(t *testing.T) {
	f := gyre2D(256, 192) // 49152 vertices -> quant section > 2 chunks
	var ref []byte
	var want *field.Field
	for _, workers := range []int{1, 2, 4, 8} {
		opts := Options{Mode: ebound.Absolute, ErrBound: 0.005, Workers: workers}
		res, err := Compress(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Bytes[4] != formatV4 {
			t.Fatalf("writer emitted version %d, want %d", res.Bytes[4], formatV4)
		}
		dec, err := Decompress(res.Bytes, workers)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, want = res.Bytes, dec
			continue
		}
		if !bytes.Equal(ref, res.Bytes) {
			t.Fatalf("archive bytes differ between workers=1 and workers=%d", workers)
		}
		fieldsEqual(t, want, dec)
	}
}

// buildSymbolSection mirrors appendSymbolSection but lets the test tamper
// with the chunk directory before it is written, to model corrupt or
// adversarial archives. The version byte selects the directory layout: the
// CRC column appears for v3+, the mode column for v4. Every chunk is
// written in Huffman mode; the modes slice passed to tamper (ignored
// pre-v4) lets a lie claim otherwise.
func buildSymbolSection(t testing.TB, syms []uint32, version byte, tamper func(cc *uint64, usizes, csizes []uint64, crcs []uint32, modes []byte)) []byte {
	t.Helper()
	table, err := huffman.BuildTable(syms, 1)
	if err != nil {
		t.Fatal(err)
	}
	bounds := parallel.Ranges(len(syms), chunkCount(len(syms), chunkSymbols))
	usizes := make([]uint64, len(bounds))
	csizes := make([]uint64, len(bounds))
	crcs := make([]uint32, len(bounds))
	modes := make([]byte, len(bounds))
	var payload []byte
	for i, b := range bounds {
		bits := table.EncodeChunk(nil, syms[b[0]:b[1]])
		packed, err := deflate(bits)
		if err != nil {
			t.Fatal(err)
		}
		usizes[i] = uint64(len(bits))
		csizes[i] = uint64(len(packed))
		crcs[i] = crc32.Checksum(packed, crcTable)
		payload = append(payload, packed...)
	}
	cc := uint64(len(bounds))
	if tamper != nil {
		tamper(&cc, usizes, csizes, crcs, modes)
	}
	out := binary.AppendUvarint(nil, uint64(len(syms)))
	out = table.AppendTable(out)
	out = binary.AppendUvarint(out, cc)
	for i := range usizes {
		out = binary.AppendUvarint(out, usizes[i])
		out = binary.AppendUvarint(out, csizes[i])
		if version >= formatV4 {
			out = append(out, modes[i])
		}
		if version >= formatV3 {
			out = binary.LittleEndian.AppendUint32(out, crcs[i])
		}
	}
	return append(out, payload...)
}

func manySyms(n int) []uint32 {
	syms := make([]uint32, n)
	for i := range syms {
		syms[i] = uint32(i*2654435761) % 97 // deterministic, multi-chunk alphabet
	}
	return syms
}

// TestChunkDirectoryLies drives parseSymbolSection with directories that
// lie about chunk counts, sizes, and modes: every lie must surface as a
// streamerr-typed error — never a panic, hang, or silent mis-decode. The
// v2 (CRC-less), v3 (CRC), and v4 (CRC + mode) directory layouts are all
// exercised.
func TestChunkDirectoryLies(t *testing.T) {
	syms := manySyms(3*chunkSymbols + 1000) // 4 chunks
	lies := []struct {
		name       string
		minVersion byte
		tamper     func(cc *uint64, usizes, csizes []uint64, crcs []uint32, modes []byte)
	}{
		{"chunk-count-zero", formatV2, func(cc *uint64, _, _ []uint64, _ []uint32, _ []byte) { *cc = 0 }},
		{"chunk-count-low", formatV2, func(cc *uint64, _, _ []uint64, _ []uint32, _ []byte) { *cc = 1 }},
		{"chunk-count-high", formatV2, func(cc *uint64, _, _ []uint64, _ []uint32, _ []byte) { *cc = 9 }},
		{"chunk-count-huge", formatV2, func(cc *uint64, _, _ []uint64, _ []uint32, _ []byte) { *cc = 1 << 40 }},
		{"usize-zero", formatV2, func(_ *uint64, usizes, _ []uint64, _ []uint32, _ []byte) { usizes[0] = 0 }},
		{"usize-short", formatV2, func(_ *uint64, usizes, _ []uint64, _ []uint32, _ []byte) { usizes[1]-- }},
		{"usize-long", formatV2, func(_ *uint64, usizes, _ []uint64, _ []uint32, _ []byte) { usizes[1]++ }},
		{"usize-bomb", formatV2, func(_ *uint64, usizes, _ []uint64, _ []uint32, _ []byte) { usizes[2] = 1 << 40 }},
		{"csize-overlap", formatV2, func(_ *uint64, _, csizes []uint64, _ []uint32, _ []byte) { csizes[0]++ }}, // chunk 1 starts inside chunk 0
		{"csize-short", formatV2, func(_ *uint64, _, csizes []uint64, _ []uint32, _ []byte) { csizes[2]-- }},
		{"csize-huge", formatV2, func(_ *uint64, _, csizes []uint64, _ []uint32, _ []byte) { csizes[3] = 1 << 40 }},
		{"crc-flip", formatV3, func(_ *uint64, _, _ []uint64, crcs []uint32, _ []byte) { crcs[1] ^= 1 }},
		{"crc-zero", formatV3, func(_ *uint64, _, _ []uint64, crcs []uint32, _ []byte) { crcs[3] = 0 }},
		{"mode-unknown", formatV4, func(_ *uint64, _, _ []uint64, _ []uint32, modes []byte) { modes[1] = maxChunkMode + 1 }},
		{"mode-flip-to-packed", formatV4, func(_ *uint64, _, _ []uint64, _ []uint32, modes []byte) { modes[0] = symChunkPacked }},
	}
	for _, version := range []byte{formatV2, formatV3, formatV4} {
		layout := "v" + strconv.Itoa(int(version))
		for _, lie := range lies {
			if lie.minVersion > version {
				continue
			}
			t.Run(layout+"/"+lie.name, func(t *testing.T) {
				sec := buildSymbolSection(t, syms, version, lie.tamper)
				_, _, err := parseSymbolSection(nil, sec, 0, 2, version, "test", nil)
				if err == nil {
					t.Fatal("lying directory parsed without error")
				}
				if !errors.Is(err, streamerr.ErrCorrupt) && !errors.Is(err, streamerr.ErrTruncated) {
					t.Fatalf("lie surfaced as untyped error: %v", err)
				}
			})
		}
		// Control: the untampered section round-trips.
		sec := buildSymbolSection(t, syms, version, nil)
		got, off, err := parseSymbolSection(nil, sec, 0, 2, version, "test", nil)
		if err != nil {
			t.Fatalf("%s untampered section: %v", layout, err)
		}
		if off != len(sec) {
			t.Fatalf("consumed %d of %d bytes", off, len(sec))
		}
		for i := range syms {
			if got[i] != syms[i] {
				t.Fatalf("symbol %d: got %d, want %d", i, got[i], syms[i])
			}
		}
	}
}

// TestTruncatedDirectory cuts a multi-chunk section at every byte
// boundary inside its directory; every prefix must error.
func TestTruncatedDirectory(t *testing.T) {
	syms := manySyms(2*chunkSymbols + 10)
	for _, version := range []byte{formatV2, formatV3, formatV4} {
		sec := buildSymbolSection(t, syms, version, nil)
		// The directory sits between the codebook and the payload; cutting
		// anywhere before the payload end must fail.
		for cut := 0; cut < len(sec); cut += 7 {
			if _, _, err := parseSymbolSection(nil, sec[:cut], 0, 1, version, "test", nil); err == nil {
				t.Fatalf("section truncated to %d of %d bytes parsed (v%d)", cut, len(sec), version)
			}
		}
	}
}

// TestV1InflateCapRejectsOversize guards the v1 reader's allocation cap: a
// section whose DEFLATE payload inflates beyond any size a valid archive
// could back is rejected instead of materialized.
func TestV1InflateCapRejectsOversize(t *testing.T) {
	// A payload of highly compressible bytes inflates ~1000x; with the cap
	// forced low the reader must reject it rather than allocate.
	big := make([]byte, 1<<20)
	packed, err := deflate(big)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inflateCap(packed, 1<<10); err == nil {
		t.Fatal("payload inflating past the cap was accepted")
	}
	if got, err := inflateCap(packed, 1<<20); err != nil || len(got) != len(big) {
		t.Fatalf("payload within cap rejected: %v", err)
	}
}

// TestV2RejectsTrailingBytes: v2 archives are exact — trailing junk after
// the final section is corruption, not padding.
func TestV2RejectsTrailingBytes(t *testing.T) {
	res, err := Compress(gyre2D(16, 12), Options{Mode: ebound.Absolute, ErrBound: 0.05, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(append(append([]byte{}, res.Bytes...), 0xAB), 1); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestV3HeaderCRC: any damage to the fixed header or its stored CRC is
// reported as corruption, not decoded on faith.
func TestV3HeaderCRC(t *testing.T) {
	res, err := Compress(gyre2D(24, 20), Options{Mode: ebound.Absolute, ErrBound: 0.01, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, flip := range []int{5, 6, 7, 8, 20, headerBytes, headerBytes + 3} {
		bad := append([]byte{}, res.Bytes...)
		bad[flip] ^= 0x10
		_, err := Decompress(bad, 1)
		if err == nil {
			t.Fatalf("header byte %d flipped, decode succeeded", flip)
		}
		// Flipping the version byte surfaces as ErrVersion; everything else
		// under the seal must be ErrCorrupt.
		if !errors.Is(err, streamerr.ErrCorrupt) && !errors.Is(err, streamerr.ErrVersion) {
			t.Fatalf("header byte %d: untyped error %v", flip, err)
		}
	}
}

// TestV3TrailerLies: the trailer's declared payload length and stream CRC
// are both load-bearing.
func TestV3TrailerLies(t *testing.T) {
	res, err := Compress(gyre2D(24, 20), Options{Mode: ebound.Absolute, ErrBound: 0.01, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	plenOff := len(res.Bytes) - trailerBytes

	over := append([]byte{}, res.Bytes...)
	binary.LittleEndian.PutUint64(over[plenOff:], uint64(plenOff+1))
	if _, err := Decompress(over, 1); !errors.Is(err, streamerr.ErrTruncated) {
		t.Fatalf("over-declaring trailer: got %v, want ErrTruncated", err)
	}

	under := append([]byte{}, res.Bytes...)
	binary.LittleEndian.PutUint64(under[plenOff:], uint64(plenOff-1))
	if _, err := Decompress(under, 1); !errors.Is(err, streamerr.ErrCorrupt) {
		t.Fatalf("under-declaring trailer: got %v, want ErrCorrupt", err)
	}

	badCRC := append([]byte{}, res.Bytes...)
	badCRC[len(badCRC)-1] ^= 0xFF
	if _, err := Decompress(badCRC, 1); !errors.Is(err, streamerr.ErrCorrupt) {
		t.Fatalf("flipped stream CRC: got %v, want ErrCorrupt", err)
	}

	if _, err := Decompress(res.Bytes[:len(res.Bytes)-5], 1); !errors.Is(err, streamerr.ErrTruncated) && !errors.Is(err, streamerr.ErrCorrupt) {
		t.Fatalf("missing trailer bytes: untyped error %v", err)
	}
}

// TestVerify: the checksum scan accepts intact v3 archives, pinpoints
// payload damage without decoding, and reports pre-v3 archives (which
// carry no checksums) as ErrVersion.
func TestVerify(t *testing.T) {
	f := gyre2D(64, 48)
	opts := Options{Mode: ebound.Absolute, ErrBound: 0.01, Workers: 2}
	res, err := Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res.Bytes); err != nil {
		t.Fatalf("intact archive failed verification: %v", err)
	}
	// Flip one payload byte past the header: either a chunk CRC or the
	// stream CRC must catch it.
	bad := append([]byte{}, res.Bytes...)
	bad[len(bad)/2] ^= 0x40
	if err := Verify(bad); !errors.Is(err, streamerr.ErrCorrupt) {
		t.Fatalf("flipped payload byte: got %v, want ErrCorrupt", err)
	}
	if err := Verify(rewriteAsV2(t, f, opts, res.Bytes)); !errors.Is(err, streamerr.ErrVersion) {
		t.Fatalf("v2 archive: got %v, want ErrVersion", err)
	}
	// v3 archives carry checksums but no mode column; the scan must still
	// accept them.
	if err := Verify(rewriteAsV3(t, f, opts, res.Bytes)); err != nil {
		t.Fatalf("intact v3 archive failed verification: %v", err)
	}
	if err := Verify(nil); !errors.Is(err, streamerr.ErrTruncated) {
		t.Fatalf("empty input: got %v, want ErrTruncated", err)
	}
}

// TestV4ChunkModes pins the writer's per-chunk mode decision and both
// decode paths: a near-uniform alphabet (where Huffman cannot beat raw
// k-bit fields by the required margin) goes bit-packed, a skewed wide-range
// alphabet stays Huffman, incompressible raw bytes are stored verbatim, and
// compressible raw bytes stay DEFLATE — and every one of them round-trips.
func TestV4ChunkModes(t *testing.T) {
	readModes := func(t *testing.T, sec []byte, count int, kind int) []byte {
		t.Helper()
		off := 0
		n, sz := binary.Uvarint(sec)
		if sz <= 0 || int(n) != count {
			t.Fatalf("section count %d (consumed %d), want %d", n, sz, count)
		}
		off += sz
		if kind == kindSymbols {
			_, consumed, err := huffman.ParseTable(sec[off:], n)
			if err != nil {
				t.Fatal(err)
			}
			off += consumed
		}
		s := getScratch()
		defer putScratch(s)
		dir, _, err := parseChunkDirectory(s, sec, off, count, formatV4, kind, "test")
		if err != nil {
			t.Fatal(err)
		}
		return append([]byte{}, dir.modes...)
	}

	// Near-uniform 64-symbol alphabet: Huffman ~6 bits/symbol vs k=6
	// packing — inside the 5% margin, so chunks pack.
	uniform := make([]uint32, chunkSymbols+1000)
	for i := range uniform {
		uniform[i] = uint32(i % 64)
	}
	// Skewed alphabet with one wide outlier per 64 symbols: Huffman ~1
	// bit/symbol against k=20 packing, so chunks stay Huffman.
	skewed := make([]uint32, chunkSymbols+1000)
	for i := range skewed {
		if i%64 == 0 {
			skewed[i] = 1 << 19
		}
	}
	for _, tc := range []struct {
		name string
		syms []uint32
		mode byte
	}{
		{"packed", uniform, symChunkPacked},
		{"huffman", skewed, symChunkHuffman},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sec, err := appendSymbolSection(nil, nil, tc.syms, 2, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i, m := range readModes(t, sec, len(tc.syms), kindSymbols) {
				if m != tc.mode {
					t.Fatalf("chunk %d wrote mode %d, want %d", i, m, tc.mode)
				}
			}
			got, off, err := parseSymbolSection(nil, sec, 0, 2, formatV4, "test", nil)
			if err != nil {
				t.Fatal(err)
			}
			if off != len(sec) {
				t.Fatalf("consumed %d of %d bytes", off, len(sec))
			}
			for i := range tc.syms {
				if got[i] != tc.syms[i] {
					t.Fatalf("symbol %d: got %d, want %d", i, got[i], tc.syms[i])
				}
			}
		})
	}

	// Raw bytes: an incompressible pattern forces stored mode, zeros stay
	// DEFLATE.
	noise := make([]byte, chunkRawBytes/4)
	seed := uint32(0x9E3779B9)
	for i := range noise {
		seed = seed*1664525 + 1013904223
		noise[i] = byte(seed >> 24)
	}
	for _, tc := range []struct {
		name string
		raw  []byte
		mode byte
	}{
		{"stored", noise, rawChunkStored},
		{"deflate", make([]byte, chunkRawBytes/4), rawChunkDeflate},
	} {
		t.Run("raw-"+tc.name, func(t *testing.T) {
			sec, err := appendRawSection(nil, nil, tc.raw, 2, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i, m := range readModes(t, sec, len(tc.raw), kindRaw) {
				if m != tc.mode {
					t.Fatalf("chunk %d wrote mode %d, want %d", i, m, tc.mode)
				}
			}
			got, off, err := parseRawSection(nil, sec, 0, 2, formatV4, nil)
			if err != nil {
				t.Fatal(err)
			}
			if off != len(sec) {
				t.Fatalf("consumed %d of %d bytes", off, len(sec))
			}
			if !bytes.Equal(got, tc.raw) {
				t.Fatal("raw section did not round-trip")
			}
		})
	}
}

// TestPackedChunkLies drives decodePackedChunk with adversarial payloads:
// every malformed header or mis-sized body must surface as ErrCorrupt,
// never a panic or silent mis-decode. These payloads pass any CRC check by
// construction (the CRC would be computed over the lying bytes), so the
// structural validation is the only defense.
func TestPackedChunkLies(t *testing.T) {
	out := make([]uint32, 8)
	hdr := func(base uint64, k byte) []byte {
		return append(binary.AppendUvarint(nil, base), k)
	}
	for _, tc := range []struct {
		name string
		pl   []byte
	}{
		{"empty", nil},
		{"cut-base-uvarint", []byte{0x80}},
		{"missing-width", binary.AppendUvarint(nil, 3)},
		{"width-over-32", append(hdr(0, 33), make([]byte, 33)...)},
		{"base-overflow", hdr(1<<33, 0)},
		{"k0-trailing-byte", append(hdr(5, 0), 0xFF)},
		{"payload-short", append(hdr(0, 8), 1, 2, 3)},
		{"payload-long", append(hdr(0, 8), make([]byte, 9)...)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := decodePackedChunk(tc.pl, out, "test", 0); !errors.Is(err, streamerr.ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
		})
	}
	// Control: a well-formed payload decodes to base+field.
	want := []uint32{7, 8, 9, 10, 14, 13, 12, 11}
	pl := huffman.AppendPacked(hdr(7, 3), want, 7, 3)
	if err := decodePackedChunk(pl, out, "test", 0); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("symbol %d: got %d, want %d", i, out[i], want[i])
		}
	}
}

// entropyFixture compresses a field large enough that every section spans
// many chunks, and returns the pieces serialize/parse operate on.
func entropyFixture(b *testing.B) (*field.Field, Options, []uint32, []uint32, []byte, []byte) {
	b.Helper()
	f := gyre2D(512, 512)
	opts := Options{Mode: ebound.Absolute, ErrBound: 0.001}
	res, err := Compress(f, opts)
	if err != nil {
		b.Fatal(err)
	}
	_, ebSyms, quantSyms, raw, err := parse(nil, res.Bytes, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	return f, opts, ebSyms, quantSyms, raw, res.Bytes
}

// BenchmarkSerialize measures the entropy-coding stage of compression
// (shared-codebook build, chunked Huffman, chunked DEFLATE) in isolation
// across worker counts.
func BenchmarkSerialize(b *testing.B) {
	f, opts, ebSyms, quantSyms, raw, _ := entropyFixture(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			o := opts
			o.Workers = workers
			b.SetBytes(int64(f.SizeBytes()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := serialize(nil, f, o, ebSyms, quantSyms, raw); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParse measures the entropy-decoding stage of decompression
// (chunked inflate + chunked Huffman decode) in isolation across worker
// counts.
func BenchmarkParse(b *testing.B) {
	f, _, _, _, _, stream := entropyFixture(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			b.SetBytes(int64(f.SizeBytes()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, _, err := parse(nil, stream, workers, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
