package cpsz

import (
	"runtime"
	"testing"
	"time"

	"tspsz/internal/ebound"
	"tspsz/internal/faultinject"
)

// TestFaultSweep is the byte-level crash-proofing proof for the cpSZ layer:
// it flips bits in EVERY byte of a v2 (checksum-less), v3 (CRC-sealed),
// and v4 (CRC + chunk modes) archive, truncates at every offset, and
// applies seeded random zero/duplicate-range mutations; every outcome must
// be either a streamerr-typed error or a structurally sound decode — never
// a panic, and (for v3+, where CRC32C detects all single-bit errors) never
// a silent success. The v4 sweep therefore also covers every chunk mode
// byte and every packed-chunk base/width byte the archive carries. Decode
// runs with workers=4 so the mutations also exercise the parallel inflate
// path, and the test asserts the sweep leaks no goroutines.
func TestFaultSweep(t *testing.T) {
	f := gyre2D(16, 12)
	opts := Options{Mode: ebound.Absolute, ErrBound: 0.05, Workers: 1}
	res, err := Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	v4 := res.Bytes
	_, ebSyms, quantSyms, raw, err := parse(nil, v4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	v3 := serializeV3(t, f, opts, ebSyms, quantSyms, raw)
	v2 := serializeV2(t, f, opts, ebSyms, quantSyms, raw)

	before := runtime.NumGoroutine()
	sweepArchive(t, "v4", v4, true)
	sweepArchive(t, "v3", v3, true)
	sweepArchive(t, "v2", v2, false)
	checkNoGoroutineLeak(t, before)
}

// sweepArchive runs the three mutation families against one archive.
// hasCRC marks a v3+ archive, where every single-bit flip must be detected.
func sweepArchive(t *testing.T, name string, stream []byte, hasCRC bool) {
	t.Helper()
	bits := []uint{0, 1, 2, 3, 4, 5, 6, 7}
	if testing.Short() {
		bits = bits[:1]
	}
	for i := range stream {
		for _, b := range bits {
			bit := (b + uint(i)) % 8 // vary the bit with position in short mode
			mut := faultinject.FlipBit(stream, i, bit)
			err := decodeMutant(t, name, "flip", i, mut)
			if hasCRC && err == nil {
				t.Fatalf("%s: single-bit flip at byte %d bit %d decoded silently", name, i, bit)
			}
		}
	}
	for cut := 0; cut < len(stream); cut++ {
		if err := decodeMutant(t, name, "truncate", cut, faultinject.Truncate(stream, cut)); err == nil {
			t.Fatalf("%s: truncation to %d of %d bytes decoded silently", name, cut, len(stream))
		}
	}
	rounds := 2000
	if testing.Short() {
		rounds = 300
	}
	rng := faultinject.NewRand(0x7359)
	for r := 0; r < rounds; r++ {
		decodeMutant(t, name, "random", r, rng.Mutate(stream))
	}
}

// decodeMutant decodes and checksum-scans one mutant, asserting the shared
// contract: typed failure or structurally sound success.
func decodeMutant(t *testing.T, name, kind string, pos int, mut []byte) error {
	t.Helper()
	fld, err := Decompress(mut, 4)
	if err != nil {
		if !streamErrTyped(err) {
			t.Fatalf("%s: %s at %d: untyped decode error: %v", name, kind, pos, err)
		}
	} else if fld == nil || fld.NumVertices() == 0 {
		t.Fatalf("%s: %s at %d: nil/empty field with nil error", name, kind, pos)
	}
	if verr := Verify(mut); verr != nil && !streamErrTyped(verr) {
		t.Fatalf("%s: %s at %d: untyped verify error: %v", name, kind, pos, verr)
	}
	return err
}

// checkNoGoroutineLeak waits briefly for worker goroutines to drain and
// fails if the count stays above the pre-sweep level.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before sweep, %d after", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
