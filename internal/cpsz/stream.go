package cpsz

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"tspsz/internal/field"
	"tspsz/internal/grid"
	"tspsz/internal/huffman"
	"tspsz/internal/obs"
	"tspsz/internal/parallel"
	"tspsz/internal/streamerr"
)

// The streaming writer produces archives byte-identical to CompressCtx +
// serialize without ever holding the whole field: layers arrive through a
// field.LayerFetcher, regions flow through a bounded parallel.Pipeline
// window, and compressed v4 chunks are sealed incrementally as each
// region's symbols complete. Two passes make that possible — chunk
// boundaries (chunkBound) and the shared Huffman tables both depend on
// whole-section totals, so pass 1 runs the predict/quantize sweep
// accumulating histograms and section lengths, and pass 2 reruns the
// identical sweep feeding incremental per-section chunk encoders. The raw
// field is never resident; what is resident is O(window) layers of input,
// O(maxSlabs) saved boundary planes, and the compressed chunks themselves
// (O(archive), typically a small fraction of the field).

// streamMaxAxis mirrors field's header cap: each axis must fit the u32
// header fields with room to spare, so the uint32 narrowing in the stream
// header can never truncate.
const streamMaxAxis = 1 << 21

// errStreamUnsupported prefixes the option-validation failures of the
// streaming entry point; the in-memory path keeps supporting everything.
func errStreamUnsupported(what string) error {
	return fmt.Errorf("cpsz: streaming compression does not support %s", what)
}

// preparedRegion is the serial dispatcher's output for one region: a local
// contiguous sub-field holding the region's layers plus its neighbor
// planes (original values), the region box translated into local
// coordinates, and the optional EbFetcher bound slab for the region's own
// vertices.
type preparedRegion struct {
	local  *field.Field
	r      region
	bounds []float64 // nil without an EbFetcher
	// Global z of the cut planes this region neighbors (-1 if none);
	// the worker saves the reconstructed planes the boundary pass needs.
	cutBelow, cutAbove int
}

// compressedRegion is a worker's output: the region's symbol streams plus
// the reconstructed planes adjacent to its cuts. rs comes from the sweep's
// stream pool; the emitter returns it after the consume callback, which must
// not retain its slices.
type compressedRegion struct {
	rs *regionStreams
	// reconForAbove is the reconstruction of plane cutAbove-1 (this
	// region's top plane); reconForBelow of plane cutBelow+1 (its bottom
	// plane).
	reconForAbove, reconForBelow [][]float32
}

// layerSweep runs one full region sweep (interiors ascending, then
// boundary planes ascending — the exact order the in-memory path
// concatenates region streams) against a re-invocable LayerFetcher,
// handing each region's streams to a serial consume callback. Fetching is
// serial on the calling goroutine, compressRegion runs on the worker pool,
// and consumption is serial in region order, with at most `window` regions
// in flight.
type layerSweep struct {
	nx, ny, nz int
	plane      int // nx*ny
	fetch      field.LayerFetcher
	eb         field.EbFetcher
	opts       Options
	interiors  []region
	boundaries []region
	workers    int
	window     int

	// Planes saved for the boundary pass, keyed by global cut z. orig and
	// bounds are written by the serial prepare stage, the recon maps by
	// the serial emit stage; the phases are separated by the Pipeline
	// join, so no map is ever accessed from two goroutines at once.
	orig       map[int][][]float32
	reconBelow map[int][][]float32 // reconstruction of cut-1
	reconAbove map[int][][]float32 // reconstruction of cut+1
	bounds     map[int][]float64

	// Per-sweep buffer arena: local sub-fields, work clones, interior bound
	// slabs, and region symbol streams all churn at every region, so they
	// are pooled to keep the steady-state allocation rate near zero — the
	// out-of-core guarantee is about peak heap, and an allocation rate that
	// outruns the collector inflates peak far beyond the live set.
	// Ownership: a local field passes prepare→work and is re-pooled by the
	// worker once compressRegion is done with it; a regionStreams passes
	// work→emit and is re-pooled by the serial emitter after the consume
	// callback; interior bound slabs are re-pooled by the worker (boundary
	// regions alias the saved-plane map and are never pooled). maxLocalNz
	// sizes fresh field allocations so pooled buffers always fit any region.
	fieldPool   sync.Pool
	boundsPool  sync.Pool
	streamsPool sync.Pool
	maxLocalNz  int
}

func newLayerSweep(nx, ny, nz int, fetch field.LayerFetcher, eb field.EbFetcher, opts Options) *layerSweep {
	g := grid.New3D(nx, ny, nz)
	interiors, boundaries := partition(g)
	workers := parallel.Workers(opts.Workers)
	window := workers
	if window < 2 {
		window = 2
	}
	if window > len(interiors) {
		window = len(interiors)
	}
	maxLocalNz := 3 // boundary regions are always 3 planes
	for _, r := range interiors {
		if n := r.hi[2] - r.lo[2] + 2; n > maxLocalNz {
			maxLocalNz = n
		}
	}
	return &layerSweep{
		nx: nx, ny: ny, nz: nz, plane: nx * ny,
		fetch: fetch, eb: eb, opts: opts,
		interiors: interiors, boundaries: boundaries,
		workers: workers, window: window,
		maxLocalNz: maxLocalNz,
	}
}

// getLocalField returns an nx×ny×localNz sub-field from the pool, allocated
// at the sweep's maximum local extent so any pooled buffer fits any region.
// The caller must overwrite every plane it reads (all callers copy full
// coverage), so recycled contents never leak into the output.
func (sw *layerSweep) getLocalField(localNz int) *field.Field {
	n := localNz * sw.plane
	if f, ok := sw.fieldPool.Get().(*field.Field); ok {
		f.Grid = grid.New3D(sw.nx, sw.ny, localNz)
		f.U, f.V, f.W = f.U[:n], f.V[:n], f.W[:n]
		return f
	}
	c := sw.maxLocalNz * sw.plane
	return &field.Field{
		Grid: grid.New3D(sw.nx, sw.ny, localNz),
		U:    make([]float32, n, c), V: make([]float32, n, c), W: make([]float32, n, c),
	}
}

func (sw *layerSweep) putLocalField(f *field.Field) { sw.fieldPool.Put(f) }

// getBounds returns an n-element bound slab from the pool; fresh slabs are
// sized for the largest region so pooled ones always fit.
func (sw *layerSweep) getBounds(n int) []float64 {
	if p, ok := sw.boundsPool.Get().(*[]float64); ok {
		return (*p)[:n]
	}
	return make([]float64, n, sw.maxLocalNz*sw.plane)
}

func (sw *layerSweep) putBounds(b []float64) { sw.boundsPool.Put(&b) }

// getStreams returns a length-reset regionStreams whose slices keep their
// prior capacity.
func (sw *layerSweep) getStreams() *regionStreams {
	if rs, ok := sw.streamsPool.Get().(*regionStreams); ok {
		rs.ebSyms = rs.ebSyms[:0]
		rs.quantSyms = rs.quantSyms[:0]
		rs.raw = rs.raw[:0]
		rs.marks = rs.marks[:0]
		return rs
	}
	return &regionStreams{}
}

func (sw *layerSweep) putStreams(rs *regionStreams) { sw.streamsPool.Put(rs) }

// checkLayer rejects fetcher output whose shape disagrees with the
// declared dims before anything is copied (a wrong-extent plane would
// otherwise silently shear every later read).
func (sw *layerSweep) checkLayer(k int, planes [][]float32) error {
	if len(planes) != 3 {
		return streamerr.Header("layer fetch", "layer %d: fetcher returned %d components, want 3", k, len(planes))
	}
	for c, p := range planes {
		if len(p) != sw.plane {
			return streamerr.Header("layer fetch", "layer %d component %d: %d samples, want %d (%dx%d)", k, c, len(p), sw.plane, sw.nx, sw.ny)
		}
	}
	return nil
}

func (sw *layerSweep) checkBounds(k int, b []float64) error {
	if len(b) != sw.plane {
		return streamerr.Header("bound fetch", "layer %d: %d bounds, want %d (%dx%d)", k, len(b), sw.plane, sw.nx, sw.ny)
	}
	return nil
}

// clonePlanes copies one local z-plane of every component.
func (sw *layerSweep) clonePlanes(f *field.Field, kLocal int) [][]float32 {
	comps := f.Components()
	out := make([][]float32, len(comps))
	for c, vals := range comps {
		p := make([]float32, sw.plane)
		copy(p, vals[kLocal*sw.plane:(kLocal+1)*sw.plane])
		out[c] = p
	}
	return out
}

// prepareInterior fetches interior i's layers (plus its cut-plane
// neighbors) into a local sub-field, saving original cut planes and bound
// slabs for the boundary pass. Layer fetch order is non-decreasing across
// the whole interior phase.
func (sw *layerSweep) prepareInterior(i int) (preparedRegion, error) {
	r := sw.interiors[i]
	glo, ghi := r.lo[2], r.hi[2]
	base := glo
	if glo > 0 {
		base = glo - 1
	}
	top := ghi - 1
	if ghi < sw.nz {
		top = ghi
	}
	// Ownership transfer: the local field (and the bound slab below) ride
	// in the prepared region to compressPrepared, which re-pools both; the
	// error paths re-pool here.
	//lint:allow poolguard the success return hands lf to compressPrepared, which re-pools it
	lf := sw.getLocalField(top - base + 1)
	fail := func(err error) (preparedRegion, error) {
		sw.putLocalField(lf)
		return preparedRegion{}, err
	}
	comps := lf.Components()
	for k := base; k <= top; k++ {
		planes, err := sw.fetch.Layer(k)
		if err != nil {
			return fail(err)
		}
		if err := sw.checkLayer(k, planes); err != nil {
			return fail(err)
		}
		off := (k - base) * sw.plane
		for c := range comps {
			copy(comps[c][off:off+sw.plane], planes[c])
		}
		if k == ghi && ghi < sw.nz {
			// This is the cut plane above; the boundary pass needs its
			// original values after the interiors have overwritten work.
			sw.orig[ghi] = sw.clonePlanes(lf, k-base)
		}
	}
	p := preparedRegion{
		local:    lf,
		r:        region{lo: [3]int{0, 0, glo - base}, hi: [3]int{sw.nx, sw.ny, ghi - base}},
		cutBelow: -1, cutAbove: -1,
	}
	if glo > 0 {
		p.cutBelow = glo - 1
	}
	if ghi < sw.nz {
		p.cutAbove = ghi
	}
	if sw.eb != nil {
		//lint:allow poolguard the success return hands the slab to compressPrepared, which re-pools it
		p.bounds = sw.getBounds((ghi - glo) * sw.plane)
		failEb := func(err error) (preparedRegion, error) {
			sw.putBounds(p.bounds)
			return fail(err)
		}
		for k := glo; k < ghi; k++ {
			b, err := sw.eb.LayerBounds(k)
			if err != nil {
				return failEb(err)
			}
			if err := sw.checkBounds(k, b); err != nil {
				return failEb(err)
			}
			copy(p.bounds[(k-glo)*sw.plane:(k-glo+1)*sw.plane], b)
		}
		if ghi < sw.nz {
			b, err := sw.eb.LayerBounds(ghi)
			if err != nil {
				return failEb(err)
			}
			if err := sw.checkBounds(ghi, b); err != nil {
				return failEb(err)
			}
			sw.bounds[ghi] = append([]float64(nil), b...)
		}
	}
	return p, nil
}

// prepareBoundary assembles the 3-plane local field of boundary i from the
// planes the interior phase saved: recon(c-1), orig(c), recon(c+1) —
// exactly what the in-memory work field holds at stage 2.
func (sw *layerSweep) prepareBoundary(i int) (preparedRegion, error) {
	c := sw.boundaries[i].lo[2]
	below, og, above := sw.reconBelow[c], sw.orig[c], sw.reconAbove[c]
	if below == nil || og == nil || above == nil {
		return preparedRegion{}, errors.New("cpsz: internal: boundary planes missing from interior sweep")
	}
	//lint:allow poolguard ownership transfers through the prepared region to compressPrepared, which re-pools it
	lf := sw.getLocalField(3)
	comps := lf.Components()
	for ci := range comps {
		copy(comps[ci][0:sw.plane], below[ci])
		copy(comps[ci][sw.plane:2*sw.plane], og[ci])
		copy(comps[ci][2*sw.plane:3*sw.plane], above[ci])
	}
	p := preparedRegion{
		local:    lf,
		r:        region{lo: [3]int{0, 0, 1}, hi: [3]int{sw.nx, sw.ny, 2}, boundary: true},
		cutBelow: -1, cutAbove: -1,
	}
	if sw.eb != nil {
		p.bounds = sw.bounds[c]
	}
	return p, nil
}

// compressPrepared runs compressRegion verbatim on the local sub-field.
// The region box is translated so k - lo[2] relations — which is all the
// region-confined predictor and the value-local bound derivation depend on
// — are preserved, making the emitted symbols bit-identical to the
// in-memory path's.
func (sw *layerSweep) compressPrepared(p preparedRegion) (compressedRegion, error) {
	_, _, localNz := p.local.Grid.Dims()
	work := sw.getLocalField(localNz)
	copy(work.U, p.local.U)
	copy(work.V, p.local.V)
	copy(work.W, p.local.W)
	opts := sw.opts
	if p.bounds != nil {
		off := p.r.lo[2] * sw.plane
		bounds := p.bounds
		opts.ebFor = func(idx int) (float64, bool) {
			b := bounds[idx-off]
			if b < 0 {
				return 0, true
			}
			return b, false
		}
	}
	out := compressedRegion{rs: sw.getStreams()}
	compressRegion(work, p.local, p.r, opts, out.rs)
	if p.cutAbove >= 0 {
		out.reconForAbove = sw.clonePlanes(work, p.r.hi[2]-1)
	}
	if p.cutBelow >= 0 {
		out.reconForBelow = sw.clonePlanes(work, p.r.lo[2])
	}
	// The region is fully encoded: its input and reconstruction buffers go
	// back to the arena (the recon planes the boundary pass needs were
	// cloned out above). Boundary bound slabs alias the saved-plane map and
	// stay out of the pool.
	sw.putLocalField(p.local)
	sw.putLocalField(work)
	if p.bounds != nil && !p.r.boundary {
		sw.putBounds(p.bounds)
	}
	return out, nil
}

// run performs one full sweep, invoking consume once per region in
// deterministic region order.
func (sw *layerSweep) run(ctx context.Context, consume func(rs *regionStreams) error) error {
	sw.orig = make(map[int][][]float32)
	sw.reconBelow = make(map[int][][]float32)
	sw.reconAbove = make(map[int][][]float32)
	sw.bounds = make(map[int][]float64)

	err := parallel.Pipeline(ctx, len(sw.interiors), sw.workers, sw.window,
		sw.prepareInterior,
		func(i int, p preparedRegion) (compressedRegion, error) { return sw.compressPrepared(p) },
		func(i int, out compressedRegion) error {
			r := sw.interiors[i]
			if out.reconForAbove != nil {
				sw.reconBelow[r.hi[2]] = out.reconForAbove
			}
			if out.reconForBelow != nil {
				sw.reconAbove[r.lo[2]-1] = out.reconForBelow
			}
			err := consume(out.rs)
			sw.putStreams(out.rs)
			return err
		})
	if err != nil {
		return err
	}
	return parallel.Pipeline(ctx, len(sw.boundaries), sw.workers, sw.window,
		sw.prepareBoundary,
		func(i int, p preparedRegion) (compressedRegion, error) { return sw.compressPrepared(p) },
		func(i int, out compressedRegion) error {
			err := consume(out.rs)
			sw.putStreams(out.rs)
			return err
		})
}

// symSectionEncoder seals fixed-extent symbol chunks incrementally as
// region streams arrive. Chunk boundaries are the same chunkBound
// partition the in-memory serialize uses — they depend on the pass-1
// section total, never on how symbols arrive — so the sealed chunks are
// byte-identical to the batch path's.
type symSectionEncoder struct {
	table   *huffman.Table
	n, cc   int
	ci      int
	pending []uint32
	chunks  []encChunk
}

func newSymSectionEncoder(table *huffman.Table, n int) *symSectionEncoder {
	e := &symSectionEncoder{table: table, n: n}
	if n > 0 {
		e.cc = chunkCount(n, chunkSymbols)
		e.chunks = make([]encChunk, 0, e.cc)
	}
	return e
}

func (e *symSectionEncoder) feed(syms []uint32) error {
	for len(syms) > 0 {
		if e.ci >= e.cc {
			return errors.New("cpsz: internal: section symbols exceed pass-1 total")
		}
		lo, hi := chunkBound(e.n, e.cc, e.ci)
		take := (hi - lo) - len(e.pending)
		if take > len(syms) {
			take = len(syms)
		}
		e.pending = append(e.pending, syms[:take]...)
		syms = syms[take:]
		if len(e.pending) == hi-lo {
			ec, err := encodeSymChunk(e.table, e.pending)
			if err != nil {
				return err
			}
			e.chunks = append(e.chunks, ec)
			e.pending = e.pending[:0]
			e.ci++
		}
	}
	return nil
}

func (e *symSectionEncoder) finish() error {
	if e.ci != e.cc || len(e.pending) != 0 {
		return errors.New("cpsz: internal: section symbols short of pass-1 total")
	}
	return nil
}

// rawSectionEncoder is the byte-stream counterpart for the verbatim-float
// section.
type rawSectionEncoder struct {
	n, cc   int
	ci      int
	pending []byte
	chunks  []encChunk
}

func newRawSectionEncoder(n int) *rawSectionEncoder {
	e := &rawSectionEncoder{n: n}
	if n > 0 {
		e.cc = chunkCount(n, chunkRawBytes)
		e.chunks = make([]encChunk, 0, e.cc)
	}
	return e
}

func (e *rawSectionEncoder) feed(raw []byte) error {
	for len(raw) > 0 {
		if e.ci >= e.cc {
			return errors.New("cpsz: internal: raw section exceeds pass-1 total")
		}
		lo, hi := chunkBound(e.n, e.cc, e.ci)
		take := (hi - lo) - len(e.pending)
		if take > len(raw) {
			take = len(raw)
		}
		e.pending = append(e.pending, raw[:take]...)
		raw = raw[take:]
		if len(e.pending) == hi-lo {
			ec, err := encodeRawChunk(e.pending)
			if err != nil {
				return err
			}
			e.chunks = append(e.chunks, ec)
			e.pending = e.pending[:0]
			e.ci++
		}
	}
	return nil
}

func (e *rawSectionEncoder) finish() error {
	if e.ci != e.cc || len(e.pending) != 0 {
		return errors.New("cpsz: internal: raw section short of pass-1 total")
	}
	return nil
}

// crcCountWriter forwards to w while keeping the running CRC32C and byte
// count the trailer needs; the whole stream is written exactly once, never
// buffered for a second checksum pass.
type crcCountWriter struct {
	w   io.Writer
	n   int64
	crc uint32
}

func (cw *crcCountWriter) write(p []byte) error {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crcTable, p[:n])
	cw.n += int64(n)
	if err != nil {
		return err
	}
	if n != len(p) {
		return io.ErrShortWrite
	}
	return nil
}

// writeSymSection streams one encoded symbol section: uvarint count,
// codebook, chunk directory, then the payloads (each pooled buffer is
// released as soon as it is written).
func writeSymSection(cw *crcCountWriter, e *symSectionEncoder, c *obs.Collector) error {
	head := binary.AppendUvarint(nil, uint64(e.n))
	if e.n > 0 {
		head = e.table.AppendTable(head)
		head = appendChunkDirectory(head, e.chunks)
	}
	if err := cw.write(head); err != nil {
		return err
	}
	if err := writeChunkPayloads(cw, e.chunks); err != nil {
		return err
	}
	if e.n > 0 {
		c.Add(obs.CtrChunksEncoded, int64(e.cc))
	}
	return nil
}

// writeRawSection streams the raw section (same layout minus the
// codebook).
func writeRawSection(cw *crcCountWriter, e *rawSectionEncoder, c *obs.Collector) error {
	head := binary.AppendUvarint(nil, uint64(e.n))
	if e.n > 0 {
		head = appendChunkDirectory(head, e.chunks)
	}
	if err := cw.write(head); err != nil {
		return err
	}
	if err := writeChunkPayloads(cw, e.chunks); err != nil {
		return err
	}
	if e.n > 0 {
		c.Add(obs.CtrChunksEncoded, int64(e.cc))
	}
	return nil
}

// appendChunkDirectory appends the uvarint chunk count and the v4
// directory entries, byte-identical to mergeChunks' directory.
func appendChunkDirectory(dst []byte, chunks []encChunk) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(chunks)))
	for i := range chunks {
		dst = binary.AppendUvarint(dst, uint64(chunks[i].usize))
		dst = binary.AppendUvarint(dst, uint64(len(chunks[i].payload)))
		dst = append(dst, chunks[i].mode)
		dst = binary.LittleEndian.AppendUint32(dst, chunks[i].crc)
	}
	return dst
}

// writeChunkPayloads writes every payload in order, returning each pooled
// buffer exactly once whether or not its write succeeds.
func writeChunkPayloads(cw *crcCountWriter, chunks []encChunk) error {
	for i := range chunks {
		err := cw.write(chunks[i].payload)
		putChunkBuf(chunks[i].payload)
		chunks[i].payload = nil
		if err != nil {
			return err
		}
	}
	return nil
}

// CompressStream encodes an nx×ny×nz 3-component field supplied layer by
// layer through fetch, writing a v4 stream to w that is byte-identical to
// what CompressCtx would produce for the same data and options, at every
// worker count. eb optionally supplies precomputed per-vertex bounds (the
// effective bound is min(opts.ErrBound-derived, fetched); negative forces
// lossless); a nil eb uses the same topology-derived bounds as the
// in-memory path. The fetcher is invoked in two passes (histogram, then
// encode) with non-decreasing layer order within each pass.
//
// Peak memory is O(window·slab + maxSlabs·plane + archive), never
// O(field). Unsupported on this path (use CompressCtx): 2D fields, SoS
// bounds, interpolation prediction, forced-lossless bitmaps, and temporal
// references. Returns the number of bytes written.
func CompressStream(ctx context.Context, w io.Writer, nx, ny, nz int, fetch field.LayerFetcher, eb field.EbFetcher, opts Options) (written int64, err error) {
	defer streamerr.CancelGuard("cpsz", &err)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	if w == nil {
		return 0, errors.New("cpsz: CompressStream requires a writer")
	}
	if fetch == nil {
		return 0, errors.New("cpsz: CompressStream requires a layer fetcher")
	}
	if !(opts.ErrBound > 0) {
		return 0, fmt.Errorf("cpsz: error bound must be positive, got %v", opts.ErrBound)
	}
	if nx < 2 || ny < 2 || nz < 2 || nx > streamMaxAxis || ny > streamMaxAxis || nz > streamMaxAxis {
		return 0, streamerr.Header("cpsz stream", "implausible dims %dx%dx%d", nx, ny, nz)
	}
	switch {
	case opts.SoS:
		return 0, errStreamUnsupported("SoS bounds")
	case opts.Predictor != PredictorLorenzo:
		return 0, errStreamUnsupported("the interpolation predictor")
	case opts.Lossless != nil:
		return 0, errStreamUnsupported("a forced-lossless bitmap")
	case opts.Reference != nil:
		return 0, errStreamUnsupported("temporal references")
	}
	opts.ebFor = nil
	c := opts.Collector
	nv := int64(nx) * int64(ny) * int64(nz)
	c.Add(obs.CtrBytesIn, 4*3*nv)
	workers := parallel.Workers(opts.Workers)

	sw := newLayerSweep(nx, ny, nz, fetch, eb, opts)

	// Pass 1: predict/quantize sweep accumulating per-section histograms
	// and totals; symbols are discarded as soon as they are observed.
	var ebHist, quantHist huffman.Histogram
	var nRaw, nMarks int64
	if err := c.Do(obs.StagePredictQuant, workers, nv, func() error {
		return sw.run(ctx, func(rs *regionStreams) error {
			ebHist.Observe(rs.ebSyms)
			quantHist.Observe(rs.quantSyms)
			nRaw += int64(len(rs.raw))
			nMarks += int64(len(rs.marks))
			return nil
		})
	}); err != nil {
		return 0, err
	}
	c.Add(obs.CtrLosslessVertices, nMarks)

	var ebTable, quantTable *huffman.Table
	if err := c.Do(obs.StageHistogram, 1, int64(ebHist.Total()), func() error {
		ebTable = huffman.TableFromHistogram(&ebHist)
		return nil
	}); err != nil {
		return 0, err
	}
	if err := c.Do(obs.StageHistogram, 1, int64(quantHist.Total()), func() error {
		quantTable = huffman.TableFromHistogram(&quantHist)
		return nil
	}); err != nil {
		return 0, err
	}

	// Pass 2: identical sweep feeding incremental chunk encoders, then the
	// single write-out. Encoded chunks (O(archive)) are the only state
	// buffered to the end; any failure re-pools every sealed payload.
	ebEnc := newSymSectionEncoder(ebTable, int(ebHist.Total()))
	quantEnc := newSymSectionEncoder(quantTable, int(quantHist.Total()))
	rawEnc := newRawSectionEncoder(int(nRaw))
	defer func() {
		if err != nil {
			repoolChunks(ebEnc.chunks)
			repoolChunks(quantEnc.chunks)
			repoolChunks(rawEnc.chunks)
		}
	}()
	cw := &crcCountWriter{w: w}
	if err := c.Do(obs.StageEntropyEncode, workers, int64(ebHist.Total()+quantHist.Total()), func() error {
		if err := sw.run(ctx, func(rs *regionStreams) error {
			if err := ebEnc.feed(rs.ebSyms); err != nil {
				return err
			}
			if err := quantEnc.feed(rs.quantSyms); err != nil {
				return err
			}
			return rawEnc.feed(rs.raw)
		}); err != nil {
			return err
		}
		for _, fin := range []func() error{ebEnc.finish, quantEnc.finish, rawEnc.finish} {
			if err := fin(); err != nil {
				return err
			}
		}
		return writeStream(cw, sw, opts, ebEnc, quantEnc, rawEnc, c)
	}); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// writeStream emits header, sections, and trailer through the rolling-CRC
// writer, charging the same byte-partition counters as serialize.
func writeStream(cw *crcCountWriter, sw *layerSweep, opts Options, ebEnc, quantEnc *symSectionEncoder, rawEnc *rawSectionEncoder, c *obs.Collector) error {
	hdr := make([]byte, 0, headerBytesV3)
	hdr = append(hdr, streamMagic...)
	hdr = append(hdr, formatVersion, 3, byte(opts.Mode), byte(opts.Predictor))
	for _, v := range []uint32{uint32(sw.nx), uint32(sw.ny), uint32(sw.nz)} {
		hdr = binary.LittleEndian.AppendUint32(hdr, v)
	}
	hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(opts.ErrBound))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(hdr[:headerBytes], crcTable))
	if err := cw.write(hdr); err != nil {
		return err
	}
	c.Add(obs.CtrBytesStreamHeader, int64(len(hdr)))

	mark := cw.n
	if err := writeSymSection(cw, ebEnc, c); err != nil {
		return err
	}
	c.Add(obs.CtrBytesSectionEb, cw.n-mark)
	mark = cw.n
	if err := writeSymSection(cw, quantEnc, c); err != nil {
		return err
	}
	c.Add(obs.CtrBytesSectionQuant, cw.n-mark)
	mark = cw.n
	if err := writeRawSection(cw, rawEnc, c); err != nil {
		return err
	}
	c.Add(obs.CtrBytesSectionRaw, cw.n-mark)

	var tr [8]byte
	binary.LittleEndian.PutUint64(tr[:], uint64(cw.n))
	if err := cw.write(tr[:]); err != nil {
		return err
	}
	var tc [4]byte
	binary.LittleEndian.PutUint32(tc[:], cw.crc)
	if err := cw.write(tc[:]); err != nil {
		return err
	}
	c.Add(obs.CtrBytesStreamTrailer, trailerBytes)
	c.Add(obs.CtrBytesOut, cw.n)
	return nil
}
