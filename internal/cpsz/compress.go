package cpsz

import (
	"context"
	"math"

	"tspsz/internal/bitmap"
	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/obs"
	"tspsz/internal/parallel"
	"tspsz/internal/quantizer"
)

// regionStreams accumulates the per-region output; streams are concatenated
// in region order after both stages, so the result is independent of
// scheduling.
type regionStreams struct {
	ebSyms    []uint32
	quantSyms []uint32
	raw       []byte
	marks     []int // vertices stored fully losslessly
}

func (rs *regionStreams) rawFloat(v float32) {
	bits := math.Float32bits(v)
	rs.raw = append(rs.raw, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
}

func compress(ctx context.Context, f *field.Field, opts Options) (*Result, error) {
	c := opts.Collector
	work := f.Clone()
	interiors, boundaries := partition(f.Grid)
	nRegions := len(interiors) + len(boundaries)
	streams := make([]regionStreams, nRegions)
	lossless := bitmap.New(f.NumVertices())

	if err := c.Do(obs.StagePredictQuant, parallel.Workers(opts.Workers), int64(f.NumVertices()), func() error {
		// Stage 1: slab interiors in parallel. Bound derivation may read
		// boundary-plane vertices, which still hold original values; no
		// other interior is reachable through any adjacent cell, so there
		// are no races and the result is schedule independent.
		if err := parallel.CtxForErr(ctx, len(interiors), opts.Workers, 1, func(i int) error {
			compressRegion(work, f, interiors[i], opts, &streams[i])
			return nil
		}); err != nil {
			return err
		}
		// Stage 2: boundary planes. Their adjacent cells reach only
		// finalized interiors, and distinct planes share no cells, so
		// planes are mutually independent.
		return parallel.CtxForErr(ctx, len(boundaries), opts.Workers, 1, func(i int) error {
			compressRegion(work, f, boundaries[i], opts, &streams[len(interiors)+i])
			return nil
		})
	}); err != nil {
		return nil, err
	}

	// The merged stream lengths are known from the per-region streams;
	// allocate each concatenation once and copy into place instead of
	// growing through repeated append reallocation.
	var nEb, nQ, nRaw int
	for i := range streams {
		nEb += len(streams[i].ebSyms)
		nQ += len(streams[i].quantSyms)
		nRaw += len(streams[i].raw)
	}
	ebAll := make([]uint32, 0, nEb)
	qAll := make([]uint32, 0, nQ)
	rawAll := make([]byte, 0, nRaw)
	for i := range streams {
		ebAll = append(ebAll, streams[i].ebSyms...)
		qAll = append(qAll, streams[i].quantSyms...)
		rawAll = append(rawAll, streams[i].raw...)
		for _, idx := range streams[i].marks {
			lossless.Set(idx)
		}
	}
	if c != nil {
		c.Add(obs.CtrLosslessVertices, int64(lossless.Count()))
	}
	var bytes []byte
	if err := c.Do(obs.StageEntropyEncode, parallel.Workers(opts.Workers), int64(len(ebAll)+len(qAll)), func() error {
		var err error
		bytes, err = serialize(ctx, f, opts, ebAll, qAll, rawAll)
		return err
	}); err != nil {
		return nil, err
	}
	return &Result{Bytes: bytes, Decompressed: work, LosslessVertices: lossless}, nil
}

// compressRegion processes one region's vertices in row-major order,
// deriving bounds from the current working field, quantizing residuals
// against region-confined Lorenzo predictions, and overwriting work with
// the decompressed values (Algorithm 1, line 11). Fully lossless vertices
// are recorded in out.marks; the caller merges them into the shared bitmap
// serially to avoid cross-region word races.
func compressRegion(work, orig *field.Field, r region, opts Options, out *regionStreams) {
	nx, ny, _ := orig.Grid.Dims()
	nxny := nx * ny
	comps := orig.Components()
	workComps := work.Components()
	var refComps [][]float32
	if opts.Reference != nil {
		refComps = opts.Reference.Components()
	}
	refOf := func(c int) []float32 {
		if refComps == nil {
			return nil
		}
		return refComps[c]
	}
	radius := int32(quantizer.DefaultRadius)

	for k := r.lo[2]; k < r.hi[2]; k++ {
		for j := r.lo[1]; j < r.hi[1]; j++ {
			for i := r.lo[0]; i < r.hi[0]; i++ {
				idx := i + j*nx + k*nxny
				forced := opts.Lossless != nil && opts.Lossless.Get(idx)
				storeLossless := forced
				var derived float64
				if !storeLossless {
					switch {
					case opts.ebFor != nil:
						if eb, f := opts.ebFor(idx); f {
							storeLossless = true
						} else {
							derived = eb
						}
					case opts.Plain:
						derived = math.Inf(1)
					case opts.SoS:
						derived = ebound.VertexBoundSoS(work, idx, opts.Mode)
					default:
						if eb, hasCP := ebound.VertexBound(work, idx, opts.Mode); hasCP {
							storeLossless = true
						} else {
							derived = eb
						}
					}
				}
				if opts.Mode == ebound.Absolute {
					if !storeLossless {
						target := math.Min(opts.ErrBound, derived)
						sym, aeb := absSymbol(opts.ErrBound, target)
						if sym == absLosslessSym {
							storeLossless = true
						} else {
							out.ebSyms = append(out.ebSyms, sym)
							for c, vals := range comps {
								quantizeOne(out, workComps[c], vals, refOf(c), nx, nxny, i, j, k, idx, r.lo, aeb, radius)
							}
						}
					}
					if storeLossless {
						out.ebSyms = append(out.ebSyms, absLosslessSym)
						for c, vals := range comps {
							out.rawFloat(vals[idx])
							workComps[c][idx] = vals[idx]
						}
						out.marks = append(out.marks, idx)
					}
					continue
				}
				// Relative mode: per-component symbols.
				if storeLossless {
					for c, vals := range comps {
						out.ebSyms = append(out.ebSyms, relExactSym)
						out.rawFloat(vals[idx])
						workComps[c][idx] = vals[idx]
					}
					out.marks = append(out.marks, idx)
					continue
				}
				xi := math.Min(opts.ErrBound, derived)
				allExact := true
				for c, vals := range comps {
					target := xi * math.Abs(float64(vals[idx]))
					sym, aeb := relSymbol(target)
					out.ebSyms = append(out.ebSyms, sym)
					if sym == relExactSym {
						out.rawFloat(vals[idx])
						workComps[c][idx] = vals[idx]
						continue
					}
					allExact = false
					quantizeOne(out, workComps[c], vals, refOf(c), nx, nxny, i, j, k, idx, r.lo, aeb, radius)
				}
				if allExact {
					out.marks = append(out.marks, idx)
				}
			}
		}
	}
}

// quantizeOne quantizes one component of one vertex against its Lorenzo
// prediction, appending either a code symbol or the unpredictable escape
// plus the verbatim value, and stores the reconstruction into work.
func quantizeOne(out *regionStreams, work []float32, vals []float32, ref []float32, nx, nxny, i, j, k, idx int, lo [3]int, aeb float64, radius int32) {
	var pred float64
	if ref != nil {
		pred = float64(ref[idx])
	} else {
		pred = quantizer.Predict(work, nx, nxny, i, j, k, lo)
	}
	code, recon, ok := quantizer.Quantize(float64(vals[idx]), pred, aeb, radius)
	if !ok {
		out.quantSyms = append(out.quantSyms, quantizer.UnpredictableSym)
		out.rawFloat(vals[idx])
		work[idx] = vals[idx]
		return
	}
	out.quantSyms = append(out.quantSyms, quantizer.Zigzag(code))
	work[idx] = float32(recon)
}
