package cpsz

import (
	"encoding/binary"
	"errors"
	"hash/crc32"

	"tspsz/internal/huffman"
	"tspsz/internal/streamerr"
)

// VerifyAll is the exhaustive counterpart of Verify: instead of stopping at
// the first integrity failure it scans every section and every chunk,
// returning one typed failure per violation in stream order (header, then
// trailer, then sections in order, then chunks ascending within each) — a
// deterministic, stable ordering for any given stream. Like Verify it
// checksums without inflating or decoding. A structural failure that makes
// later bytes unlocatable is the scan's final entry. An empty result means
// the stream verifies completely.
func VerifyAll(data []byte) []*streamerr.Error {
	var fails []*streamerr.Error
	add := func(err error) {
		if err != nil {
			fails = append(fails, toStreamErr(err))
		}
	}
	walkErr := func() (err error) {
		defer streamerr.Guard("cpsz", &err)
		_, off, end, sealBroken, herr := salvageHeader(data)
		if herr != nil {
			return herr
		}
		if sealBroken {
			_, terr := verifyTrailer(data)
			add(terr)
		}
		body := data[:end]
		for _, section := range []string{"eb-symbols", "quant-symbols"} {
			if off, err = scanSymbolSectionAll(body, off, data[4], section, add); err != nil {
				return err
			}
		}
		if off, err = scanRawSectionAll(body, off, data[4], add); err != nil {
			return err
		}
		if off != len(body) {
			return streamerr.Corrupt("cpsz stream", "%d trailing bytes after final section", len(body)-off).WithOffset(int64(off))
		}
		return nil
	}()
	add(walkErr)
	return fails
}

// toStreamErr coerces err into the concrete *streamerr.Error, wrapping
// anything untyped (e.g. a contained panic) as corruption.
func toStreamErr(err error) *streamerr.Error {
	var se *streamerr.Error
	if errors.As(err, &se) {
		return se
	}
	return streamerr.Wrap(streamerr.ErrCorrupt, "cpsz", err)
}

// scanSymbolSectionAll walks one symbol section like scanSymbolSection but
// reports every chunk checksum failure through add instead of stopping at
// the first; only structural failures (which end the walk) are returned.
func scanSymbolSectionAll(data []byte, off int, version byte, section string, add func(error)) (int, error) {
	if off < 0 || off > len(data) {
		return 0, streamerr.Corrupt(section, "section offset %d outside %d-byte stream", off, len(data))
	}
	count, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return 0, streamerr.Truncated(section, "symbol count cut off").WithOffset(int64(off))
	}
	off += sz
	if count == 0 {
		return off, nil
	}
	if count > 8*maxDeflateRatio*uint64(len(data)-off)+64 {
		return 0, streamerr.Corrupt(section, "symbol count %d exceeds stream capacity", count)
	}
	_, consumed, err := huffman.ParseTable(data[off:], count)
	if err != nil {
		return 0, streamerr.Wrap(streamerr.ErrCorrupt, section, err)
	}
	off += consumed
	s := getScratch()
	defer putScratch(s)
	dir, off, err := parseChunkDirectory(s, data, off, int(count), version, kindSymbols, section)
	if err != nil {
		return 0, err
	}
	if dir.total > len(data)-off {
		return 0, streamerr.Truncated(section, "chunk payloads exceed stream length").WithOffset(int64(off))
	}
	scanChunksAll(&dir, data[off:off+dir.total], int64(off), section, add)
	return off + dir.total, nil
}

// scanRawSectionAll is scanSymbolSectionAll for the raw section.
func scanRawSectionAll(data []byte, off int, version byte, add func(error)) (int, error) {
	const section = "raw"
	if off < 0 || off > len(data) {
		return 0, streamerr.Corrupt(section, "section offset %d outside %d-byte stream", off, len(data))
	}
	rawLen, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return 0, streamerr.Truncated(section, "section length cut off").WithOffset(int64(off))
	}
	off += sz
	if rawLen == 0 {
		return off, nil
	}
	if rawLen > maxDeflateRatio*uint64(len(data)-off)+64 {
		return 0, streamerr.Corrupt(section, "raw length %d exceeds stream capacity", rawLen)
	}
	s := getScratch()
	defer putScratch(s)
	dir, off, err := parseChunkDirectory(s, data, off, int(rawLen), version, kindRaw, section)
	if err != nil {
		return 0, err
	}
	if dir.total > len(data)-off {
		return 0, streamerr.Truncated(section, "chunk payloads exceed stream length").WithOffset(int64(off))
	}
	scanChunksAll(&dir, data[off:off+dir.total], int64(off), section, add)
	return off + dir.total, nil
}

// scanChunksAll checks every chunk checksum serially (ascending, so output
// order is stable) and reports each mismatch with its chunk index and the
// absolute stream offset of the offending payload.
func scanChunksAll(dir *chunkDirectory, payload []byte, payBase int64, section string, add func(error)) {
	if dir.crcs == nil {
		return
	}
	for i := 0; i < dir.cc; i++ {
		if got := crc32.Checksum(dir.payloadAt(payload, i), crcTable); got != dir.crcs[i] {
			add(streamerr.Corrupt(section, "chunk CRC32C %08x, directory says %08x", got, dir.crcs[i]).
				WithChunk(i).WithOffset(payBase + int64(dir.offsets[i])))
		}
	}
}
