package cpsz

import (
	"math"
	"testing"

	"tspsz/internal/critical"
	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/quantizer"
)

// Every vertex must be visited exactly once, in an order where predictions
// only reference already-visited vertices.
func TestInterpVisitCoversAllOnce(t *testing.T) {
	for _, dims := range [][3]int{{2, 2, 1}, {5, 4, 1}, {9, 9, 1}, {4, 4, 4}, {7, 5, 3}, {16, 16, 16}, {17, 3, 2}} {
		nx, ny, nz := dims[0], dims[1], dims[2]
		seen := make([]int, nx*ny*nz)
		order := 0
		visitOrder := make([]int, nx*ny*nz)
		interpVisit(nx, ny, nz, func(i, j, k, axis, stride int) {
			idx := i + j*nx + k*nx*ny
			seen[idx]++
			visitOrder[idx] = order
			order++
			// Prediction sources must already be visited.
			if axis >= 0 {
				coords := [3]int{i, j, k}
				n := [3]int{nx, ny, nz}[axis]
				for _, d := range []int{-3, -1, 1, 3} {
					c := coords
					c[axis] += d * stride
					if c[axis] < 0 || c[axis] >= n {
						continue
					}
					if d == -3 || d == 3 {
						// Only used when both ±1 and ±3 in range; the
						// availability rule is checked via ±1 below.
						continue
					}
					nIdx := c[0] + c[1]*nx + c[2]*nx*ny
					if seen[nIdx] == 0 {
						t.Fatalf("dims %v: vertex (%d,%d,%d) predicted from unvisited (%v)", dims, i, j, k, c)
					}
				}
			}
		})
		for idx, s := range seen {
			if s != 1 {
				t.Fatalf("dims %v: vertex %d visited %d times", dims, idx, s)
			}
		}
	}
}

func TestCubicMidExactOnCubicPolynomial(t *testing.T) {
	// f(x) = 2x³ - x² + 3x - 5 sampled at -3,-1,1,3 predicts f(0) exactly.
	f := func(x float64) float64 { return 2*x*x*x - x*x + 3*x - 5 }
	got := quantizer.CubicMid(f(-3), f(-1), f(1), f(3))
	if math.Abs(got-f(0)) > 1e-12 {
		t.Errorf("CubicMid = %v, want %v", got, f(0))
	}
}

func TestInterpRoundTripAbs2D(t *testing.T) {
	f := gyre2D(48, 40)
	opts := Options{Mode: ebound.Absolute, ErrBound: 0.01, Predictor: PredictorInterpolation}
	res, dec := roundTrip(t, f, opts)
	for c, comp := range dec.Components() {
		orig := f.Components()[c]
		for i := range comp {
			if d := math.Abs(float64(comp[i]) - float64(orig[i])); d > opts.ErrBound {
				t.Fatalf("component %d vertex %d: error %v exceeds bound", c, i, d)
			}
		}
	}
	if len(res.Bytes) >= f.SizeBytes() {
		t.Error("no compression achieved")
	}
}

func TestInterpRoundTripRel3D(t *testing.T) {
	f := turb3D(14)
	opts := Options{Mode: ebound.Relative, ErrBound: 0.02, Predictor: PredictorInterpolation}
	_, dec := roundTrip(t, f, opts)
	for c, comp := range dec.Components() {
		orig := f.Components()[c]
		for i := range comp {
			bound := opts.ErrBound * math.Abs(float64(orig[i]))
			if d := math.Abs(float64(comp[i]) - float64(orig[i])); d > bound+1e-12 {
				t.Fatalf("component %d vertex %d: error %v exceeds relative bound %v", c, i, d, bound)
			}
		}
	}
}

func TestInterpPreservesCriticalPoints(t *testing.T) {
	f := gyre2D(40, 32)
	orig := critical.Extract(f)
	if len(orig) == 0 {
		t.Fatal("setup: no critical points")
	}
	_, dec := roundTrip(t, f, Options{Mode: ebound.Absolute, ErrBound: 0.05, Predictor: PredictorInterpolation})
	sameCPs(t, orig, critical.Extract(dec))
}

func TestInterpPlainMode(t *testing.T) {
	f := turb3D(12)
	const eb = 0.02
	res, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: eb, Plain: true, Predictor: PredictorInterpolation})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(res.Bytes, 1)
	if err != nil {
		t.Fatal(err)
	}
	for c, comp := range dec.Components() {
		orig := f.Components()[c]
		for i := range comp {
			if d := math.Abs(float64(comp[i]) - float64(orig[i])); d > eb {
				t.Fatalf("bound violated: %v", d)
			}
		}
	}
}

func TestInterpOnSmoothDataBeatsLorenzo(t *testing.T) {
	// On very smooth data the cubic interpolation predictor should be at
	// least competitive with Lorenzo (this is SZ3's raison d'être).
	f := field.New2D(128, 128)
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		f.U[idx] = float32(math.Sin(p[0]/25) * math.Cos(p[1]/25))
		f.V[idx] = float32(math.Cos(p[0]/25) * math.Sin(p[1]/25))
	}
	lor, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 1e-4, Plain: true})
	if err != nil {
		t.Fatal(err)
	}
	itp, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 1e-4, Plain: true, Predictor: PredictorInterpolation})
	if err != nil {
		t.Fatal(err)
	}
	// Allow interpolation up to 20% larger — the claim is "competitive",
	// and on tiny inputs header overheads blur the comparison.
	if float64(len(itp.Bytes)) > 1.2*float64(len(lor.Bytes)) {
		t.Errorf("interpolation %d bytes vs lorenzo %d on smooth data", len(itp.Bytes), len(lor.Bytes))
	}
}

func TestRejectsUnknownPredictor(t *testing.T) {
	f := gyre2D(8, 8)
	if _, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 0.1, Predictor: Predictor(9)}); err == nil {
		t.Error("unknown predictor accepted")
	}
}

func TestPredictorString(t *testing.T) {
	if PredictorLorenzo.String() != "lorenzo" || PredictorInterpolation.String() != "interpolation" {
		t.Error("Predictor.String mismatch")
	}
}

// BenchmarkAblationPredictor compares Lorenzo against interpolation on the
// same coupled compression task.
func BenchmarkAblationPredictor(b *testing.B) {
	f := turb3D(24)
	for _, pred := range []Predictor{PredictorLorenzo, PredictorInterpolation} {
		b.Run(pred.String(), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				res, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 0.01, Predictor: pred})
				if err != nil {
					b.Fatal(err)
				}
				size = len(res.Bytes)
			}
			b.ReportMetric(float64(size), "bytes")
		})
	}
}
