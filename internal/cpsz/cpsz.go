// Package cpsz implements the critical-point-preserving error-bounded lossy
// compressor that TspSZ builds on (Algorithm 1 of the paper, revised per
// §IV-B to encode cells containing critical points losslessly). It supports
// cpSZ's original point-wise relative error control (Theorem 1) and the
// absolute error control TspSZ derives in §VI, an externally supplied set of
// forced-lossless vertices (the hook used by TspSZ-I), and the multi-stage
// shared-memory parallelization of §VII.
//
// The compressed stream stores, per vertex, a quantized error-bound
// exponent, SZ-style Lorenzo-predicted quantization codes, and verbatim
// float32 values for lossless or unpredictable samples; the symbol streams
// are Huffman coded and DEFLATE packed.
package cpsz

import (
	"context"
	"errors"
	"fmt"
	"math"

	"tspsz/internal/bitmap"
	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/obs"
	"tspsz/internal/streamerr"
)

// Options configures compression.
type Options struct {
	// Mode selects relative (cpSZ) or absolute (TspSZ, §VI) error control.
	Mode ebound.Mode
	// ErrBound is the user bound ε: an absolute bound in Absolute mode, a
	// point-wise relative factor in Relative mode. Must be positive.
	ErrBound float64
	// Lossless optionally marks vertices that must be stored verbatim
	// (Algorithm 2/3 use this for separatrix-involved vertices). May be
	// nil. Length must equal the vertex count when set.
	Lossless *bitmap.Bitmap
	// Workers bounds compression parallelism; values < 1 mean GOMAXPROCS.
	// The output stream is identical for every worker count.
	Workers int
	// SoS switches to the cpSZ-sos baseline bound [36]: the sign of every
	// barycentric determinant predicate is preserved instead of forcing
	// critical-point cells lossless. Critical point existence survives but
	// positions drift, so separatrices are not preserved. cpSZ-sos has no
	// parallel implementation in the paper; combine with Workers: 1 when
	// reproducing its timing rows.
	SoS bool
	// Plain disables all topology coupling: every vertex uses the user
	// bound directly, i.e. a vanilla SZ3-style error-bounded compressor
	// (the SZ3 baseline of Fig. 8). Mutually exclusive with SoS.
	Plain bool
	// Predictor selects Lorenzo (default, region parallel) or the
	// SZ3-style level-wise interpolation predictor (serial).
	Predictor Predictor
	// Collector optionally gathers per-stage spans and counters (see
	// internal/obs). Nil disables instrumentation at zero cost; attaching a
	// collector never changes the output stream.
	Collector *obs.Collector
	// Reference enables temporal prediction for time-varying sequences:
	// every vertex is predicted by its value in this (already
	// decompressed) previous frame instead of spatial neighbors. The
	// stream is then no longer self-contained — decode it with
	// DecompressRef supplying the same reference. Shape must match f.
	Reference *field.Field

	// ebFor, when set, supplies the derived per-vertex bound instead of
	// the topology analysis: it returns the vertex's effective bound, or
	// forced=true to store the vertex losslessly. The streaming path sets
	// a per-region closure over EbFetcher-supplied bound slabs; it is nil
	// everywhere else, so the in-memory output is unchanged by
	// construction. Indices are in the coordinate space of the field being
	// compressed (the local sub-field, on the streaming path).
	ebFor func(idx int) (eb float64, forced bool)
}

// Result is the outcome of Compress.
type Result struct {
	// Bytes is the self-contained compressed stream.
	Bytes []byte
	// Decompressed holds the reconstruction the decoder will produce,
	// computed for free during compression (TspSZ-i operates on it).
	Decompressed *field.Field
	// LosslessVertices marks every vertex stored verbatim: forced ones,
	// critical-point-adjacent ones, and bound-underflow ones (Fig. 6).
	LosslessVertices *bitmap.Bitmap
}

// Error-bound symbol encoding. Absolute mode stores one symbol per vertex:
// exponent e with realized bound ε·2^−e, or absLosslessSym. Relative mode
// stores one symbol per vertex component: 0 for exact storage, otherwise
// e+relBias+1 with realized absolute bound 2^e.
const (
	absExpCap      = 30
	absLosslessSym = absExpCap + 1
	relBias        = 200
	relExpCap      = 200
	relExactSym    = 0
)

// errBadSymbols marks a symbol stream whose content contradicts the header
// it arrived with: symbols past the valid alphabet, streams that run out
// mid-region, or leftover symbols after the last vertex.
var errBadSymbols error = streamerr.Corrupt("symbol stream", "symbol stream inconsistent with header")

// Compress encodes f under opts. The input field is not modified.
func Compress(f *field.Field, opts Options) (*Result, error) {
	return CompressCtx(nil, f, opts)
}

// CompressCtx is Compress with cancellation: the prediction/quantization
// and entropy-encode stages check ctx at grain boundaries and abandon the
// encode with a streamerr.ErrCancelled-typed error once ctx is done. A nil
// ctx never cancels, making CompressCtx(nil, f, opts) identical to
// Compress.
func CompressCtx(ctx context.Context, f *field.Field, opts Options) (r *Result, err error) {
	defer streamerr.CancelGuard("cpsz", &err)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if !(opts.ErrBound > 0) {
		return nil, fmt.Errorf("cpsz: error bound must be positive, got %v", opts.ErrBound)
	}
	if opts.Lossless != nil && opts.Lossless.Len() != f.NumVertices() {
		return nil, fmt.Errorf("cpsz: lossless bitmap has %d bits, field has %d vertices",
			opts.Lossless.Len(), f.NumVertices())
	}
	if opts.SoS && opts.Plain {
		return nil, errors.New("cpsz: SoS and Plain are mutually exclusive")
	}
	if opts.Predictor != PredictorLorenzo && opts.Predictor != PredictorInterpolation {
		return nil, fmt.Errorf("cpsz: unknown predictor %d", opts.Predictor)
	}
	if opts.Reference != nil {
		if opts.Predictor == PredictorInterpolation {
			return nil, errors.New("cpsz: temporal reference requires the Lorenzo path")
		}
		// Compare per-axis extents, not just dim and vertex count: a
		// transposed reference (4x6 against 6x4) has the same product but
		// every neighborhood read would use the wrong stride.
		rx, ry, rz := opts.Reference.Grid.Dims()
		fx, fy, fz := f.Grid.Dims()
		if opts.Reference.Dim() != f.Dim() || rx != fx || ry != fy || rz != fz {
			return nil, errors.New("cpsz: reference shape differs from input")
		}
	}
	opts.Collector.Add(obs.CtrBytesIn, int64(f.SizeBytes()))
	if opts.Predictor == PredictorInterpolation {
		return compressInterp(ctx, f, opts)
	}
	return compress(ctx, f, opts)
}

// Decompress reconstructs a field from a self-contained stream produced by
// Compress. workers bounds reconstruction parallelism (values < 1 mean
// GOMAXPROCS). Streams written with a temporal Reference must use
// DecompressRef instead. Failures are streamerr-typed and a panic anywhere
// in the decode path is contained and returned as an error.
func Decompress(data []byte, workers int) (f *field.Field, err error) {
	return DecompressCtxObserved(nil, data, workers, nil)
}

// DecompressCtx is Decompress with cancellation: entropy decode and
// reconstruction check ctx at grain boundaries, and a decode abandoned on
// a done context returns a streamerr.ErrCancelled-typed error (never
// corruption) with every worker joined and every pooled buffer returned.
// A nil ctx never cancels.
func DecompressCtx(ctx context.Context, data []byte, workers int) (f *field.Field, err error) {
	return DecompressCtxObserved(ctx, data, workers, nil)
}

// DecompressObserved is Decompress with an optional obs.Collector gathering
// entropy-decode and reconstruction spans plus chunk counters. A nil
// collector makes it identical to Decompress; the reconstruction is
// byte-identical either way.
func DecompressObserved(data []byte, workers int, c *obs.Collector) (f *field.Field, err error) {
	return DecompressCtxObserved(nil, data, workers, c)
}

// DecompressCtxObserved is DecompressCtx with an optional obs.Collector.
func DecompressCtxObserved(ctx context.Context, data []byte, workers int, c *obs.Collector) (f *field.Field, err error) {
	defer streamerr.Guard("cpsz", &err)
	return decompress(ctx, data, workers, nil, c)
}

// DecompressRef reconstructs a temporally predicted stream against the
// same reference frame the encoder used (the previous decompressed frame
// of the sequence).
func DecompressRef(data []byte, workers int, ref *field.Field) (f *field.Field, err error) {
	return DecompressRefCtxObserved(nil, data, workers, ref, nil)
}

// DecompressRefCtx is DecompressRef with cancellation (see DecompressCtx).
func DecompressRefCtx(ctx context.Context, data []byte, workers int, ref *field.Field) (f *field.Field, err error) {
	return DecompressRefCtxObserved(ctx, data, workers, ref, nil)
}

// DecompressRefObserved is DecompressRef with an optional obs.Collector.
func DecompressRefObserved(data []byte, workers int, ref *field.Field, c *obs.Collector) (f *field.Field, err error) {
	return DecompressRefCtxObserved(nil, data, workers, ref, c)
}

// DecompressRefCtxObserved is DecompressRef with both cancellation and an
// optional obs.Collector.
func DecompressRefCtxObserved(ctx context.Context, data []byte, workers int, ref *field.Field, c *obs.Collector) (f *field.Field, err error) {
	defer streamerr.Guard("cpsz", &err)
	if ref == nil {
		return nil, errors.New("cpsz: DecompressRef requires a reference frame")
	}
	return decompress(ctx, data, workers, ref, c)
}

// absSymbol quantizes a derived bound into the absolute-mode exponent
// symbol: the smallest e with ε·2^−e ≤ target, or absLosslessSym when the
// target is below the representable range. The realized bound is returned.
func absSymbol(userEB, target float64) (sym uint32, realized float64) {
	if !(target > 0) {
		return absLosslessSym, 0
	}
	if math.IsInf(target, 1) {
		return 0, userEB
	}
	e := 0
	realized = userEB
	for realized > target {
		e++
		if e > absExpCap {
			return absLosslessSym, 0
		}
		realized = userEB * math.Pow(2, -float64(e))
	}
	return uint32(e), realized
}

// absBoundOf inverts absSymbol on the decoder side.
func absBoundOf(userEB float64, sym uint32) (realized float64, lossless bool) {
	if sym == absLosslessSym {
		return 0, true
	}
	return userEB * math.Pow(2, -float64(sym)), false
}

// relSymbol quantizes a per-component absolute target bound (ξ·|x|) into
// the relative-mode symbol: floor-log2 exponent biased by relBias, or
// relExactSym for exact storage.
func relSymbol(target float64) (sym uint32, realized float64) {
	if !(target > 0) || math.IsNaN(target) {
		return relExactSym, 0
	}
	if math.IsInf(target, 1) {
		target = math.MaxFloat64
	}
	e := math.Ilogb(target)
	if e > relExpCap {
		e = relExpCap
	}
	if e < -relBias {
		return relExactSym, 0
	}
	return uint32(e + relBias + 1), math.Ldexp(1, e)
}

// relBoundOf inverts relSymbol.
func relBoundOf(sym uint32) (realized float64, exact bool) {
	if sym == relExactSym {
		return 0, true
	}
	return math.Ldexp(1, int(sym)-relBias-1), false
}
