package cpsz

import (
	"compress/flate"
	"sync"

	"tspsz/internal/flatedec"
	"tspsz/internal/streamerr"
)

// The entropy path's scratch arena. Every hot per-chunk buffer and every
// flate coder lives in a pooled scratch object instead of being allocated
// per chunk: the encode side reuses one Huffman bit-buffer and one
// flate.Writer per worker, the decode side one inflate target and one
// flatedec.Decoder (whose Huffman tables are rebuilt in place, so a warm
// scratch inflates with zero allocations — compress/flate reallocates its
// decode tables per dynamic block even through Resetter.Reset), and the
// directory walk borrows its offset/size arrays from the same arena.
//
// Ownership rules (see DESIGN.md §3, verified mechanically by tsplint's
// poolguard): a scratch is owned by exactly one goroutine between
// getScratch and putScratch, released exactly once on every exit path,
// and never touched after the put; every slice it hands out (buf, dir
// arrays, deflate output) aliases its arena and must not be returned,
// stored globally, or sent on a channel past the put. The only buffers
// that outlive a worker iteration are the per-chunk payload buffers from
// chunkBufPool: an encode worker deposits one into its captured output
// slot, and mergeChunks — summarized by the analyzer as releasing its
// parameter — re-pools every slot after copying it into its extent.
type scratch struct {
	bits []byte // Huffman bit buffer / inflate target

	// Decode side: one reusable allocation-free inflater.
	inf flatedec.Decoder

	// Encode side: one flate.Writer writing into an append sink.
	fw *flate.Writer
	aw appendWriter

	// Directory arrays, sized from the validated chunk count.
	dirU    []int
	dirOff  []int
	dirCRC  []uint32
	dirMode []byte
}

var scratchPool sync.Pool

// chunkBufPool recycles the per-chunk payload buffers whose ownership
// crosses goroutines: an encode worker fills one, the serialize merge
// copies it into its extent and returns it here.
var chunkBufPool sync.Pool

func getChunkBuf() []byte {
	if p, ok := chunkBufPool.Get().(*[]byte); ok {
		return (*p)[:0]
	}
	return make([]byte, 0, chunkSymbols)
}

func putChunkBuf(b []byte) {
	chunkBufPool.Put(&b)
}

func getScratch() *scratch {
	if s, ok := scratchPool.Get().(*scratch); ok {
		return s
	}
	return &scratch{}
}

func putScratch(s *scratch) {
	scratchPool.Put(s)
}

// buf returns a length-n byte slice backed by the arena, growing the arena
// geometrically when needed. Callers size n from a validated chunk
// directory entry, so the arena's high-water mark is bounded by the largest
// legitimate chunk.
func (s *scratch) buf(n int) []byte {
	if cap(s.bits) < n {
		s.bits = make([]byte, n)
	}
	s.bits = s.bits[:n]
	return s.bits
}

// dirArrays returns the directory's usize/offset/crc/mode arrays for cc
// chunks, all arena-backed.
func (s *scratch) dirArrays(cc int) (u, off []int, crc []uint32, mode []byte) {
	if cap(s.dirU) < cc {
		s.dirU = make([]int, cc)
		s.dirOff = make([]int, cc)
		s.dirCRC = make([]uint32, cc)
		s.dirMode = make([]byte, cc)
	}
	return s.dirU[:cc], s.dirOff[:cc], s.dirCRC[:cc], s.dirMode[:cc]
}

// inflateInto inflates data into exactly dst with the pooled decoder,
// rejecting payloads that inflate short or long.
func (s *scratch) inflateInto(data []byte, dst []byte) error {
	if err := s.inf.Decode(dst, data); err != nil {
		return streamerr.Corrupt("inflate", "chunk declaring %d bytes: %v", len(dst), err)
	}
	return nil
}

// deflate DEFLATE-compresses data, appending to dst with the pooled writer
// and returning the extended slice.
func (s *scratch) deflate(dst []byte, data []byte) ([]byte, error) {
	s.aw.buf = dst
	if s.fw == nil {
		var err error
		s.fw, err = flate.NewWriter(&s.aw, flate.DefaultCompression)
		if err != nil {
			return nil, err
		}
	} else {
		s.fw.Reset(&s.aw)
	}
	if _, err := s.fw.Write(data); err != nil {
		return nil, err
	}
	if err := s.fw.Close(); err != nil {
		return nil, err
	}
	return s.aw.buf, nil
}

// appendWriter adapts an append-grown byte slice to io.Writer for the
// pooled flate.Writer.
type appendWriter struct{ buf []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}
