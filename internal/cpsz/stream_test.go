package cpsz

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/streamerr"
)

// turbBox is turb3D over a non-cubic box, tall in z so the streaming path
// exercises many slabs and cut planes.
func turbBox(nx, ny, nz int) *field.Field {
	f := field.New3D(nx, ny, nz)
	s := float64(nx-1) / 2
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		x, y, z := math.Pi*p[0]/s, math.Pi*p[1]/s, math.Pi*p[2]/s
		f.U[idx] = float32(math.Sin(x)*math.Cos(y) + 0.3*math.Cos(2*z))
		f.V[idx] = float32(-math.Cos(x)*math.Sin(y) + 0.3*math.Sin(2*z))
		f.W[idx] = float32(math.Sin(z)*math.Cos(x) - 0.3*math.Sin(2*y))
	}
	return f
}

// TestStreamMatchesInMemory is the core acceptance differential: the
// streaming writer must produce archives byte-identical to Compress for
// the same field — with critical points, in both error modes, with and
// without Plain — at every worker count.
func TestStreamMatchesInMemory(t *testing.T) {
	f := turbBox(16, 14, 96)
	cases := []struct {
		name string
		opts Options
	}{
		{"abs", Options{Mode: ebound.Absolute, ErrBound: 0.01}},
		{"rel", Options{Mode: ebound.Relative, ErrBound: 0.05}},
		{"plain-abs", Options{Mode: ebound.Absolute, ErrBound: 0.01, Plain: true}},
	}
	for _, tc := range cases {
		ref, err := Compress(f, tc.opts)
		if err != nil {
			t.Fatalf("%s: in-memory: %v", tc.name, err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			opts := tc.opts
			opts.Workers = workers
			var buf bytes.Buffer
			n, err := CompressStream(nil, &buf, 16, 14, 96, field.Layers(f), nil, opts)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("%s workers=%d: reported %d bytes, wrote %d", tc.name, workers, n, buf.Len())
			}
			if !bytes.Equal(buf.Bytes(), ref.Bytes) {
				t.Fatalf("%s workers=%d: streaming archive differs from in-memory (%d vs %d bytes)",
					tc.name, workers, buf.Len(), len(ref.Bytes))
			}
		}
	}
}

// TestStreamDecodes proves a streamed archive round-trips through the
// standard decoder within the bound.
func TestStreamDecodes(t *testing.T) {
	f := turbBox(12, 12, 40)
	opts := Options{Mode: ebound.Absolute, ErrBound: 0.01, Workers: 4}
	var buf bytes.Buffer
	if _, err := CompressStream(nil, &buf, 12, 12, 40, field.Layers(f), nil, opts); err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(buf.Bytes(), 4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	refComps := ref.Decompressed.Components()
	for c, vals := range dec.Components() {
		for i := range vals {
			if vals[i] != refComps[c][i] {
				t.Fatalf("component %d vertex %d: streamed decode %v, in-memory recon %v", c, i, vals[i], refComps[c][i])
			}
		}
	}
}

// TestStreamEbFetcher pins the EbFetcher contract: fetched bounds replace
// the topology-derived ones (still capped by the user bound), and a
// negative bound forces the vertex lossless (bit-exact on decode).
func TestStreamEbFetcher(t *testing.T) {
	nx, ny, nz := 10, 10, 32
	f := turbBox(nx, ny, nz)
	plane := nx * ny
	forced := func(k, rem int) bool { return k == 7 && rem < 25 }
	eb := field.EbFetcherFunc(func(k int) ([]float64, error) {
		b := make([]float64, plane)
		for i := range b {
			if forced(k, i) {
				b[i] = -1
			} else {
				b[i] = 0.02
			}
		}
		return b, nil
	})
	opts := Options{Mode: ebound.Absolute, ErrBound: 0.01, Workers: 3}
	var buf bytes.Buffer
	if _, err := CompressStream(nil, &buf, nx, ny, nz, field.Layers(f), eb, opts); err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(buf.Bytes(), 3)
	if err != nil {
		t.Fatal(err)
	}
	comps, decComps := f.Components(), dec.Components()
	for idx := 0; idx < f.NumVertices(); idx++ {
		k, rem := idx/plane, idx%plane
		for c := range comps {
			got, want := decComps[c][idx], comps[c][idx]
			if forced(k, rem) {
				if got != want {
					t.Fatalf("forced-lossless vertex %d comp %d: %v != %v", idx, c, got, want)
				}
			} else if math.Abs(float64(got)-float64(want)) > 0.01+1e-12 {
				t.Fatalf("vertex %d comp %d: error %v exceeds bound", idx, c,
					math.Abs(float64(got)-float64(want)))
			}
		}
	}

	// Bounds at the user bound everywhere must reproduce the Plain stream
	// exactly: min(user, fetched) == user == the Plain derived bound.
	wide := field.EbFetcherFunc(func(k int) ([]float64, error) {
		b := make([]float64, plane)
		for i := range b {
			b[i] = math.Inf(1)
		}
		return b, nil
	})
	var wideBuf bytes.Buffer
	if _, err := CompressStream(nil, &wideBuf, nx, ny, nz, field.Layers(f), wide, opts); err != nil {
		t.Fatal(err)
	}
	plainOpts := opts
	plainOpts.Plain = true
	ref, err := Compress(f, plainOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wideBuf.Bytes(), ref.Bytes) {
		t.Fatal("infinite fetched bounds do not reproduce the Plain stream")
	}
}

// TestStreamRejectsUnsupported pins the validation surface: unsupported
// options fail fast with clear errors, implausible dims and malformed
// fetcher output are typed header errors.
func TestStreamRejectsUnsupported(t *testing.T) {
	f := turbBox(8, 8, 16)
	ok := Options{Mode: ebound.Absolute, ErrBound: 0.01}
	var buf bytes.Buffer

	bad := []Options{
		{Mode: ebound.Absolute, ErrBound: 0.01, SoS: true},
		{Mode: ebound.Absolute, ErrBound: 0.01, Predictor: PredictorInterpolation},
		{Mode: ebound.Absolute, ErrBound: 0.01, Reference: f},
		{Mode: ebound.Absolute},
	}
	for i, opts := range bad {
		if _, err := CompressStream(nil, &buf, 8, 8, 16, field.Layers(f), nil, opts); err == nil {
			t.Fatalf("bad option set %d accepted", i)
		}
	}
	if _, err := CompressStream(nil, &buf, 8, 8, 1, field.Layers(f), nil, ok); !errors.Is(err, streamerr.ErrHeader) {
		t.Fatalf("nz=1 accepted or mistyped: %v", err)
	}
	if _, err := CompressStream(nil, &buf, 1<<30, 8, 16, field.Layers(f), nil, ok); !errors.Is(err, streamerr.ErrHeader) {
		t.Fatalf("oversized axis accepted or mistyped: %v", err)
	}

	// Fetcher output disagreeing with the declared dims: wrong component
	// count and wrong plane extent must both be typed header errors.
	short := field.LayerFetcherFunc(func(k int) ([][]float32, error) {
		return [][]float32{make([]float32, 64), make([]float32, 64)}, nil
	})
	if _, err := CompressStream(nil, &buf, 8, 8, 16, short, nil, ok); !errors.Is(err, streamerr.ErrHeader) {
		t.Fatalf("2-component fetcher: %v", err)
	}
	shear := field.LayerFetcherFunc(func(k int) ([][]float32, error) {
		p := make([]float32, 63)
		return [][]float32{p, p, p}, nil
	})
	if _, err := CompressStream(nil, &buf, 8, 8, 16, shear, nil, ok); !errors.Is(err, streamerr.ErrHeader) {
		t.Fatalf("wrong-extent fetcher: %v", err)
	}
	badEb := field.EbFetcherFunc(func(k int) ([]float64, error) {
		return make([]float64, 10), nil
	})
	if _, err := CompressStream(nil, &buf, 8, 8, 16, field.Layers(f), badEb, ok); !errors.Is(err, streamerr.ErrHeader) {
		t.Fatalf("wrong-extent eb fetcher: %v", err)
	}
}

// TestStreamCancellation proves a pre-cancelled context fails before any
// fetch and a mid-stream cancel comes back as ErrCancelled.
func TestStreamCancellation(t *testing.T) {
	f := turbBox(12, 12, 48)
	opts := Options{Mode: ebound.Absolute, ErrBound: 0.01, Workers: 4}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fetches := 0
	counting := field.LayerFetcherFunc(func(k int) ([][]float32, error) {
		fetches++
		return f.LayerView(k), nil
	})
	var buf bytes.Buffer
	if _, err := CompressStream(ctx, &buf, 12, 12, 48, counting, nil, opts); !errors.Is(err, streamerr.ErrCancelled) {
		t.Fatalf("pre-cancelled: %v", err)
	}
	if fetches != 0 {
		t.Fatalf("pre-cancelled context still fetched %d layers", fetches)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	n := 0
	tripwire := field.LayerFetcherFunc(func(k int) ([][]float32, error) {
		n++
		if n == 10 {
			cancel2()
		}
		return f.LayerView(k), nil
	})
	defer cancel2()
	if _, err := CompressStream(ctx2, &buf, 12, 12, 48, tripwire, nil, opts); !errors.Is(err, streamerr.ErrCancelled) {
		t.Fatalf("mid-stream cancel: %v", err)
	}
}

// TestStreamFetchError proves a fetcher failure aborts the stream with the
// fetcher's error and no partial trailer.
func TestStreamFetchError(t *testing.T) {
	f := turbBox(10, 10, 32)
	boom := errors.New("disk gone")
	n := 0
	flaky := field.LayerFetcherFunc(func(k int) ([][]float32, error) {
		n++
		if n == 12 {
			return nil, boom
		}
		return f.LayerView(k), nil
	})
	var buf bytes.Buffer
	_, err := CompressStream(nil, &buf, 10, 10, 32, flaky, nil, Options{Mode: ebound.Absolute, ErrBound: 0.01, Workers: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the fetcher error", err)
	}
}
