package cpsz

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/huffman"
	"tspsz/internal/streamerr"
)

// chunkRef locates one chunk of a v4 archive: the absolute offsets of its
// directory mode byte and payload, plus the entry values the directory
// declares for it.
type chunkRef struct {
	section string
	modeOff int // absolute offset of the directory mode byte
	payOff  int // absolute offset of the chunk payload
	csize   int
	mode    byte
}

// walkV4 indexes every chunk of a v4 archive by re-walking the section
// framing the same way the reader does, so mode-byte and payload tampering
// can target exact offsets. It fails the test if the walk does not land
// exactly on the trailer.
func walkV4(t testing.TB, data []byte) []chunkRef {
	t.Helper()
	if len(data) < headerBytesV3+trailerBytes || data[4] != formatV4 {
		t.Fatalf("not a v4 archive (%d bytes)", len(data))
	}
	off := headerBytesV3
	var refs []chunkRef
	for _, sec := range []struct {
		name    string
		symbols bool
	}{{"eb-symbols", true}, {"quant-symbols", true}, {"raw", false}} {
		count, sz := binary.Uvarint(data[off:])
		if sz <= 0 {
			t.Fatalf("%s: count cut off at %d", sec.name, off)
		}
		off += sz
		if count == 0 {
			continue
		}
		if sec.symbols {
			_, consumed, err := huffman.ParseTable(data[off:], count)
			if err != nil {
				t.Fatalf("%s: codebook at %d: %v", sec.name, off, err)
			}
			off += consumed
		}
		cc, sz := binary.Uvarint(data[off:])
		if sz <= 0 {
			t.Fatalf("%s: chunk count cut off at %d", sec.name, off)
		}
		off += sz
		start := len(refs)
		for i := 0; i < int(cc); i++ {
			_, sz := binary.Uvarint(data[off:]) // usize
			off += sz
			csize, sz := binary.Uvarint(data[off:])
			off += sz
			refs = append(refs, chunkRef{section: sec.name, modeOff: off, csize: int(csize), mode: data[off]})
			off += 1 + 4 // mode byte + CRC32C column
		}
		for i := start; i < len(refs); i++ {
			refs[i].payOff = off
			off += refs[i].csize
		}
	}
	if off != len(data)-trailerBytes {
		t.Fatalf("walk ended at %d, trailer starts at %d", off, len(data)-trailerBytes)
	}
	return refs
}

// resealTrailer recomputes the whole-stream CRC32C after a tamper, so the
// mutation must be caught by the structural checks, not the checksum.
func resealTrailer(b []byte) []byte {
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.Checksum(b[:len(b)-4], crcTable))
	return b
}

// flat2D builds a near-constant field whose quantized symbols collapse to
// a tiny alphabet, forcing the encoder onto the bit-packed chunk mode.
func flat2D(nx, ny int) *field.Field {
	f := field.New2D(nx, ny)
	for idx := 0; idx < f.NumVertices(); idx++ {
		f.U[idx] = 0.5
		f.V[idx] = 0.25
	}
	return f
}

// TestV4ModeByteLies flips every chunk mode byte of real v4 archives to
// every other value — including the out-of-range one — reseals the stream
// trailer so the whole-archive checksum passes, and requires the decoder
// to reject each mutant on structural grounds. Without the reseal the
// trailer CRC must already catch the flip. One archive comes from a
// turbulent field (Huffman symbol chunks), one from a flat field (packed
// symbol chunks), so both directions of the symbol-mode flip and both raw
// modes are exercised.
func TestV4ModeByteLies(t *testing.T) {
	opts := Options{Mode: ebound.Absolute, ErrBound: 0.05, Workers: 1}
	seen := map[string]map[byte]bool{}
	for _, tc := range []struct {
		name string
		f    *field.Field
	}{{"gyre", gyre2D(16, 12)}, {"flat", flat2D(16, 12)}} {
		res, err := Compress(tc.f, opts)
		if err != nil {
			t.Fatal(err)
		}
		refs := walkV4(t, res.Bytes)
		for _, r := range refs {
			if seen[r.section] == nil {
				seen[r.section] = map[byte]bool{}
			}
			seen[r.section][r.mode] = true
			for lie := byte(0); lie <= maxChunkMode+1; lie++ {
				if lie == r.mode {
					continue
				}
				mut := append([]byte{}, res.Bytes...)
				mut[r.modeOff] = lie

				// Unresealed: the stream trailer CRC must catch the flip.
				if _, err := Decompress(mut, 4); !errors.Is(err, streamerr.ErrCorrupt) {
					t.Errorf("%s/%s chunk@%d mode %d->%d: unresealed flip: got %v, want ErrCorrupt",
						tc.name, r.section, r.modeOff, r.mode, lie, err)
				}

				// Resealed: every checksum passes, so the per-mode entry and
				// payload validation has to do the rejecting.
				resealTrailer(mut)
				_, err := Decompress(mut, 4)
				if err == nil {
					t.Errorf("%s/%s chunk@%d mode %d->%d decoded silently after trailer reseal",
						tc.name, r.section, r.modeOff, r.mode, lie)
				} else if !errors.Is(err, streamerr.ErrCorrupt) && !errors.Is(err, streamerr.ErrTruncated) {
					t.Errorf("%s/%s chunk@%d mode %d->%d: untyped error: %v",
						tc.name, r.section, r.modeOff, r.mode, lie, err)
				}
				if verr := Verify(mut); verr != nil && !streamErrTyped(verr) {
					t.Errorf("%s/%s chunk@%d mode %d->%d: untyped verify error: %v",
						tc.name, r.section, r.modeOff, r.mode, lie, verr)
				}
			}
		}
	}
	// The sweep is only meaningful if both symbol chunk modes really
	// appeared somewhere across the two archives.
	var modes []bool = make([]bool, 2)
	for _, sec := range []string{"eb-symbols", "quant-symbols"} {
		for m := range seen[sec] {
			modes[m] = true
		}
	}
	if !modes[symChunkHuffman] || !modes[symChunkPacked] {
		t.Fatalf("symbol chunk modes seen: huffman=%v packed=%v; both must be covered", modes[0], modes[1])
	}
}

// packedSection builds a single-chunk v4 symbol section claiming the given
// payload is a bit-packed chunk for syms, with a freshly sealed per-chunk
// CRC — so a lying payload gets past every checksum and must be rejected
// by decodePackedChunk itself. usize and csize let a lie also disagree
// about the entry sizes; pass len(payload) for an honest directory.
func packedSection(t testing.TB, syms []uint32, payload []byte, usize, csize int) []byte {
	t.Helper()
	if chunkCount(len(syms), chunkSymbols) != 1 {
		t.Fatalf("packedSection wants a single-chunk section, got %d symbols", len(syms))
	}
	table, err := huffman.BuildTable(syms, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := binary.AppendUvarint(nil, uint64(len(syms)))
	out = table.AppendTable(out)
	out = binary.AppendUvarint(out, 1) // chunk count
	out = binary.AppendUvarint(out, uint64(usize))
	out = binary.AppendUvarint(out, uint64(csize))
	out = append(out, symChunkPacked)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// goodPackedPayload encodes syms (all within [0, 2^k)) as an honest packed
// chunk payload: uvarint base 0, width byte k, packed fields.
func goodPackedPayload(syms []uint32, k uint8) []byte {
	pl := binary.AppendUvarint(nil, 0)
	pl = append(pl, k)
	return huffman.AppendPacked(pl, syms, 0, k)
}

// TestPackedSectionLies drives full sections (not bare payloads — that is
// TestPackedChunkLies' job) whose packed chunks lie about base/width:
// over-wide fields, symbol bases past the u32 range, headers that swallow
// the whole payload, payloads whose length disagrees with the declared
// width, and directory entries whose sizes disagree with the packed
// contract. The per-chunk CRC is sealed over each lying payload, so
// rejection must come from parseSymbolSection's validation, not checksums.
func TestPackedSectionLies(t *testing.T) {
	syms := make([]uint32, 500)
	for i := range syms {
		syms[i] = uint32(i % 64)
	}
	good := goodPackedPayload(syms, 6)

	// Control: the honest section round-trips through the packed path.
	sec := packedSection(t, syms, good, len(good), len(good))
	got, off, err := parseSymbolSection(nil, sec, 0, 2, formatV4, "test", nil)
	if err != nil {
		t.Fatalf("honest packed section: %v", err)
	}
	if off != len(sec) {
		t.Fatalf("consumed %d of %d bytes", off, len(sec))
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: got %d, want %d", i, got[i], syms[i])
		}
	}

	overBase := append(binary.AppendUvarint(nil, 1<<33), 0) // 5-byte base past u32, width 0
	wideK := append([]byte{0x00, 33}, make([]byte, 64)...)  // width byte beyond 32 bits
	shortBits := append([]byte{0x00, 6}, make([]byte, huffman.PackedLen(len(syms), 6)-1)...)
	longBits := append([]byte{0x00, 6}, make([]byte, huffman.PackedLen(len(syms), 6)+1)...)
	zeroTrail := []byte{0x00, 0x00, 0x00} // width 0 with a trailing byte
	lies := []struct {
		name         string
		payload      []byte
		usize, csize int
	}{
		{"base-overflow", overBase, len(overBase), len(overBase)},
		{"width-over-32", wideK, len(wideK), len(wideK)},
		{"bits-short", shortBits, len(shortBits), len(shortBits)},
		{"bits-long", longBits, len(longBits), len(longBits)},
		{"zero-width-trailing", zeroTrail, len(zeroTrail), len(zeroTrail)},
		{"header-unterminated", []byte{0x80, 0x81}, 2, 2},           // varint never ends
		{"header-swallows-payload", []byte{0x80, 0x01}, 2, 2},       // base eats the width byte
		{"sizes-disagree", good, len(good) + 1, len(good)},          // packed chunks store uncompressed
		{"undersized-entry", []byte{0x00}, 1, 1},                    // below the 2-byte packed minimum
		{"oversized-entry", good, 4*len(syms) + 7, 4*len(syms) + 7}, // beyond any legal packed chunk
	}
	for _, lie := range lies {
		t.Run(lie.name, func(t *testing.T) {
			sec := packedSection(t, syms, lie.payload, lie.usize, lie.csize)
			_, _, err := parseSymbolSection(nil, sec, 0, 2, formatV4, "test", nil)
			if err == nil {
				t.Fatal("lying packed chunk parsed without error")
			}
			if !errors.Is(err, streamerr.ErrCorrupt) && !errors.Is(err, streamerr.ErrTruncated) {
				t.Fatalf("lie surfaced as untyped error: %v", err)
			}
		})
	}
}
