package cpsz

import (
	"context"
	"encoding/binary"
	"math"

	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/obs"
	"tspsz/internal/parallel"
	"tspsz/internal/quantizer"
	"tspsz/internal/streamerr"
)

// regionOffsets locates a region's slice of each decoded stream.
type regionOffsets struct {
	eb, quant, raw int
}

func decompress(ctx context.Context, data []byte, workers int, ref *field.Field, c *obs.Collector) (*field.Field, error) {
	// A context dead on arrival wins before any parsing: the caller already
	// gave up, so no byte of the stream should be interpreted (and no
	// stream-fault class fabricated) on its behalf.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	var hdr header
	var ebSyms, quantSyms []uint32
	var raw []byte
	if err := c.Do(obs.StageEntropyDecode, parallel.Workers(workers), int64(len(data)), func() error {
		var err error
		hdr, ebSyms, quantSyms, raw, err = parse(ctx, data, workers, c)
		return err
	}); err != nil {
		return nil, err
	}
	if hdr.temporal && ref == nil {
		return nil, streamerr.Header("cpsz header", "stream is temporally predicted; use DecompressRef")
	}
	if !hdr.temporal {
		ref = nil // ignore a stray reference for self-contained streams
	}
	// Every vertex consumes at least one error-bound symbol in every
	// mode and predictor, so a header claiming more vertices than the
	// stream carries symbols is corrupt. Rejecting here keeps fabricated
	// dimensions from driving a huge field allocation.
	nv := uint64(hdr.nx) * uint64(hdr.ny) // both < 2^32: no overflow
	if hdr.dim == 3 {
		if nv > uint64(len(ebSyms)) {
			return nil, streamerr.Corrupt("cpsz header", "header dims exceed symbol stream")
		}
		nv *= uint64(hdr.nz)
	}
	if nv > uint64(len(ebSyms)) {
		return nil, streamerr.Corrupt("cpsz header", "header dims exceed symbol stream")
	}
	var f *field.Field
	if hdr.dim == 2 {
		if hdr.nx < 2 || hdr.ny < 2 {
			return nil, streamerr.Header("cpsz header", "invalid 2D dims %dx%d", hdr.nx, hdr.ny)
		}
		f = field.New2D(hdr.nx, hdr.ny)
	} else {
		if hdr.nx < 2 || hdr.ny < 2 || hdr.nz < 2 {
			return nil, streamerr.Header("cpsz header", "invalid 3D dims %dx%dx%d", hdr.nx, hdr.ny, hdr.nz)
		}
		f = field.New3D(hdr.nx, hdr.ny, hdr.nz)
	}
	if ref != nil && (ref.Dim() != f.Dim() || ref.NumVertices() != f.NumVertices()) {
		return nil, streamerr.Header("cpsz header", "reference shape differs from stream")
	}
	if hdr.predictor == PredictorInterpolation {
		if err := c.Do(obs.StageReconstruct, 1, int64(f.NumVertices()), func() error {
			return reconstructInterp(f, hdr, ebSyms, quantSyms, raw)
		}); err != nil {
			return nil, err
		}
		return f, nil
	}
	if err := c.Do(obs.StageReconstruct, parallel.Workers(workers), int64(f.NumVertices()), func() error {
		return reconstructLorenzo(ctx, f, ref, hdr, ebSyms, quantSyms, raw, workers)
	}); err != nil {
		return nil, err
	}
	return f, nil
}

// reconstructLorenzo replays the region-parallel Lorenzo encoder: a serial
// offset scan over the symbol streams followed by prediction-independent
// per-region reconstruction.
func reconstructLorenzo(ctx context.Context, f, ref *field.Field, hdr header, ebSyms, quantSyms []uint32, raw []byte, workers int) error {
	interiors, boundaries := partition(f.Grid)
	regions := append(append([]region{}, interiors...), boundaries...)

	// Serial pass: compute per-region stream offsets. Consumption per
	// vertex is fully determined by the symbols, so this is a cheap scan
	// that unlocks parallel reconstruction. Region granularity bounds the
	// cancellation latency of the scan itself.
	offsets := make([]regionOffsets, len(regions))
	nComps := len(f.Components())
	cur := regionOffsets{}
	for ri, r := range regions {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		offsets[ri] = cur
		nv := r.numVertices()
		for v := 0; v < nv; v++ {
			if hdr.mode == ebound.Absolute {
				if cur.eb >= len(ebSyms) {
					return errBadSymbols
				}
				sym := ebSyms[cur.eb]
				cur.eb++
				if sym == absLosslessSym {
					cur.raw += 4 * nComps
					continue
				}
				if sym > absLosslessSym {
					return errBadSymbols
				}
				for c := 0; c < nComps; c++ {
					if cur.quant >= len(quantSyms) {
						return errBadSymbols
					}
					if quantSyms[cur.quant] == quantizer.UnpredictableSym {
						cur.raw += 4
					}
					cur.quant++
				}
				continue
			}
			for c := 0; c < nComps; c++ {
				if cur.eb >= len(ebSyms) {
					return errBadSymbols
				}
				sym := ebSyms[cur.eb]
				cur.eb++
				if sym == relExactSym {
					cur.raw += 4
					continue
				}
				if sym > relBias+relExpCap+1 {
					return errBadSymbols
				}
				if cur.quant >= len(quantSyms) {
					return errBadSymbols
				}
				if quantSyms[cur.quant] == quantizer.UnpredictableSym {
					cur.raw += 4
				}
				cur.quant++
			}
		}
	}
	if cur.eb != len(ebSyms) || cur.quant != len(quantSyms) || cur.raw != len(raw) {
		return errBadSymbols
	}

	// Parallel reconstruction: regions are prediction-independent. The Err
	// variant contains worker panics, so a reconstruction bug driven by
	// hostile symbols surfaces as an error instead of killing the process.
	return parallel.CtxForErr(ctx, len(regions), workers, 1, func(ri int) error {
		return reconstructRegion(f, ref, regions[ri], hdr, ebSyms, quantSyms, raw, offsets[ri])
	})
}

// reconstructRegion replays one region's vertices in row-major order,
// mirroring compressRegion exactly.
func reconstructRegion(f, ref *field.Field, r region, hdr header, ebSyms, quantSyms []uint32, raw []byte, off regionOffsets) error {
	nx, ny, _ := f.Grid.Dims()
	nxny := nx * ny
	comps := f.Components()
	var refComps [][]float32
	if ref != nil {
		refComps = ref.Components()
	}
	refOf := func(c int) []float32 {
		if refComps == nil {
			return nil
		}
		return refComps[c]
	}
	for k := r.lo[2]; k < r.hi[2]; k++ {
		for j := r.lo[1]; j < r.hi[1]; j++ {
			for i := r.lo[0]; i < r.hi[0]; i++ {
				idx := i + j*nx + k*nxny
				if hdr.mode == ebound.Absolute {
					sym := ebSyms[off.eb]
					off.eb++
					aeb, lossless := absBoundOf(hdr.errBound, sym)
					for c, vals := range comps {
						if lossless {
							vals[idx] = readFloat(raw, &off.raw)
							continue
						}
						reconstructOne(vals, refOf(c), quantSyms, raw, &off, nx, nxny, i, j, k, idx, r.lo, aeb)
					}
					continue
				}
				for c, vals := range comps {
					sym := ebSyms[off.eb]
					off.eb++
					aeb, exact := relBoundOf(sym)
					if exact {
						vals[idx] = readFloat(raw, &off.raw)
						continue
					}
					reconstructOne(vals, refOf(c), quantSyms, raw, &off, nx, nxny, i, j, k, idx, r.lo, aeb)
				}
			}
		}
	}
	return nil
}

func reconstructOne(vals, ref []float32, quantSyms []uint32, raw []byte, off *regionOffsets, nx, nxny, i, j, k, idx int, lo [3]int, aeb float64) {
	qs := quantSyms[off.quant]
	off.quant++
	if qs == quantizer.UnpredictableSym {
		vals[idx] = readFloat(raw, &off.raw)
		return
	}
	var pred float64
	if ref != nil {
		pred = float64(ref[idx])
	} else {
		pred = quantizer.Predict(vals, nx, nxny, i, j, k, lo)
	}
	vals[idx] = float32(quantizer.Reconstruct(pred, aeb, quantizer.Unzigzag(qs)))
}

func readFloat(raw []byte, pos *int) float32 {
	v := math.Float32frombits(binary.LittleEndian.Uint32(raw[*pos:]))
	*pos += 4
	return v
}
