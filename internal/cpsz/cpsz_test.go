package cpsz

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"tspsz/internal/bitmap"
	"tspsz/internal/critical"
	"tspsz/internal/ebound"
	"tspsz/internal/field"
)

// gyre2D builds a smooth 2D field with a handful of critical points.
func gyre2D(nx, ny int) *field.Field {
	f := field.New2D(nx, ny)
	lx := float64(nx-1) / 2
	ly := float64(ny-1) / 2
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		f.U[idx] = float32(-math.Sin(math.Pi*p[0]/lx) * math.Cos(math.Pi*p[1]/ly))
		f.V[idx] = float32(math.Cos(math.Pi*p[0]/lx) * math.Sin(math.Pi*p[1]/ly))
	}
	return f
}

// turb3D builds a small 3D field with critical points from a few Fourier
// modes.
func turb3D(n int) *field.Field {
	f := field.New3D(n, n, n)
	s := float64(n-1) / 2
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		x, y, z := math.Pi*p[0]/s, math.Pi*p[1]/s, math.Pi*p[2]/s
		f.U[idx] = float32(math.Sin(x)*math.Cos(y) + 0.3*math.Cos(2*z))
		f.V[idx] = float32(-math.Cos(x)*math.Sin(y) + 0.3*math.Sin(2*z))
		f.W[idx] = float32(math.Sin(z)*math.Cos(x) - 0.3*math.Sin(2*y))
	}
	return f
}

func sameCPs(t *testing.T, a, b []critical.Point) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("critical point count changed: %d -> %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Cell != b[i].Cell {
			t.Fatalf("cp %d moved from cell %d to %d", i, a[i].Cell, b[i].Cell)
		}
		if a[i].Type != b[i].Type {
			t.Fatalf("cp %d changed type %v -> %v", i, a[i].Type, b[i].Type)
		}
		if a[i].Pos != b[i].Pos {
			t.Fatalf("cp %d moved %v -> %v", i, a[i].Pos, b[i].Pos)
		}
	}
}

func roundTrip(t *testing.T, f *field.Field, opts Options) (*Result, *field.Field) {
	t.Helper()
	res, err := Compress(f, opts)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	dec, err := Decompress(res.Bytes, opts.Workers)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if dec.NumVertices() != f.NumVertices() || dec.Dim() != f.Dim() {
		t.Fatal("shape mismatch after round trip")
	}
	// The decoder must reproduce exactly what the encoder predicted.
	for c, comp := range dec.Components() {
		want := res.Decompressed.Components()[c]
		for i := range comp {
			if comp[i] != want[i] {
				t.Fatalf("component %d vertex %d: decoder %v != encoder %v", c, i, comp[i], want[i])
			}
		}
	}
	return res, dec
}

func TestRoundTripAbsolute2D(t *testing.T) {
	f := gyre2D(48, 40)
	opts := Options{Mode: ebound.Absolute, ErrBound: 0.01, Workers: 2}
	res, dec := roundTrip(t, f, opts)
	if len(res.Bytes) >= f.SizeBytes() {
		t.Errorf("no compression: %d >= %d", len(res.Bytes), f.SizeBytes())
	}
	// Absolute bound must hold everywhere.
	for c, comp := range dec.Components() {
		orig := f.Components()[c]
		for i := range comp {
			if d := math.Abs(float64(comp[i]) - float64(orig[i])); d > opts.ErrBound {
				t.Fatalf("component %d vertex %d: error %v exceeds bound %v", c, i, d, opts.ErrBound)
			}
		}
	}
}

func TestRoundTripRelative2D(t *testing.T) {
	f := gyre2D(48, 40)
	opts := Options{Mode: ebound.Relative, ErrBound: 0.01, Workers: 2}
	_, dec := roundTrip(t, f, opts)
	for c, comp := range dec.Components() {
		orig := f.Components()[c]
		for i := range comp {
			bound := opts.ErrBound * math.Abs(float64(orig[i]))
			if d := math.Abs(float64(comp[i]) - float64(orig[i])); d > bound+1e-12 {
				t.Fatalf("component %d vertex %d: error %v exceeds relative bound %v", c, i, d, bound)
			}
		}
	}
}

func TestRoundTripAbsolute3D(t *testing.T) {
	f := turb3D(20)
	opts := Options{Mode: ebound.Absolute, ErrBound: 0.02, Workers: 3}
	_, dec := roundTrip(t, f, opts)
	for c, comp := range dec.Components() {
		orig := f.Components()[c]
		for i := range comp {
			if d := math.Abs(float64(comp[i]) - float64(orig[i])); d > opts.ErrBound {
				t.Fatalf("component %d vertex %d: error %v exceeds bound", c, i, d)
			}
		}
	}
}

func TestCriticalPointsPreservedExactly(t *testing.T) {
	cases := []struct {
		name string
		f    *field.Field
		mode ebound.Mode
		eb   float64
	}{
		{"2D-abs", gyre2D(40, 32), ebound.Absolute, 0.05},
		{"2D-rel", gyre2D(40, 32), ebound.Relative, 0.05},
		{"3D-abs", turb3D(16), ebound.Absolute, 0.05},
		{"3D-rel", turb3D(16), ebound.Relative, 0.05},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig := critical.Extract(tc.f)
			if len(orig) == 0 {
				t.Fatal("setup: field has no critical points")
			}
			_, dec := roundTrip(t, tc.f, Options{Mode: tc.mode, ErrBound: tc.eb, Workers: 2})
			sameCPs(t, orig, critical.Extract(dec))
		})
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	f := turb3D(18)
	var ref []byte
	for _, workers := range []int{1, 2, 5, 16} {
		res, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 0.01, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Bytes
			continue
		}
		if !bytes.Equal(ref, res.Bytes) {
			t.Fatalf("output differs between workers=1 and workers=%d", workers)
		}
	}
}

func TestForcedLosslessVerticesExact(t *testing.T) {
	f := gyre2D(32, 32)
	marks := bitmap.New(f.NumVertices())
	rng := rand.New(rand.NewSource(7))
	for n := 0; n < 200; n++ {
		marks.Set(rng.Intn(f.NumVertices()))
	}
	opts := Options{Mode: ebound.Absolute, ErrBound: 0.1, Lossless: marks, Workers: 2}
	res, dec := roundTrip(t, f, opts)
	for i := 0; i < f.NumVertices(); i++ {
		if !marks.Get(i) {
			continue
		}
		if dec.U[i] != f.U[i] || dec.V[i] != f.V[i] {
			t.Fatalf("forced-lossless vertex %d not exact", i)
		}
		if !res.LosslessVertices.Get(i) {
			t.Fatalf("forced vertex %d missing from lossless bitmap", i)
		}
	}
}

func TestCPCellsLossless(t *testing.T) {
	f := gyre2D(32, 32)
	res, dec := roundTrip(t, f, Options{Mode: ebound.Absolute, ErrBound: 0.1, Workers: 1})
	for _, cp := range critical.Extract(f) {
		for _, vi := range f.Grid.CellVertices(cp.Cell, nil) {
			if dec.U[vi] != f.U[vi] || dec.V[vi] != f.V[vi] {
				t.Fatalf("vertex %d of cp cell %d not lossless", vi, cp.Cell)
			}
			if !res.LosslessVertices.Get(vi) {
				t.Fatalf("cp-cell vertex %d not marked lossless", vi)
			}
		}
	}
}

func TestHigherBoundCompressesBetter(t *testing.T) {
	f := gyre2D(64, 64)
	sizes := make([]int, 0, 3)
	for _, eb := range []float64{1e-4, 1e-3, 1e-2} {
		res, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: eb, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(res.Bytes))
	}
	if !(sizes[0] > sizes[1] && sizes[1] > sizes[2]) {
		t.Errorf("sizes not monotone in bound: %v", sizes)
	}
}

func TestRejectsBadInput(t *testing.T) {
	f := gyre2D(8, 8)
	if _, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 0}); err == nil {
		t.Error("zero bound accepted")
	}
	if _, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: -1}); err == nil {
		t.Error("negative bound accepted")
	}
	if _, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 1, Lossless: bitmap.New(3)}); err == nil {
		t.Error("mismatched bitmap accepted")
	}
}

func TestDecompressRejectsCorruption(t *testing.T) {
	f := gyre2D(16, 16)
	res, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 0.01, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(nil, 1); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := Decompress([]byte("XXXX"), 1); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Decompress(res.Bytes[:20], 1); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := Decompress(res.Bytes[:len(res.Bytes)/2], 1); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestCompressDoesNotMutateInput(t *testing.T) {
	f := gyre2D(24, 24)
	u := append([]float32(nil), f.U...)
	v := append([]float32(nil), f.V...)
	if _, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 0.05, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	for i := range u {
		if f.U[i] != u[i] || f.V[i] != v[i] {
			t.Fatal("Compress mutated its input")
		}
	}
}

func TestAbsSymbolRoundTrip(t *testing.T) {
	userEB := 0.01
	for _, target := range []float64{0.01, 0.009, 0.005, 1e-4, 1e-8, math.Inf(1)} {
		sym, realized := absSymbol(userEB, target)
		if sym == absLosslessSym {
			if target > userEB/math.Pow(2, absExpCap) {
				t.Errorf("target %v needlessly lossless", target)
			}
			continue
		}
		if realized > target {
			t.Errorf("realized %v exceeds target %v", realized, target)
		}
		back, lossless := absBoundOf(userEB, sym)
		if lossless || back != realized {
			t.Errorf("absBoundOf(%d) = %v, want %v", sym, back, realized)
		}
	}
	if sym, _ := absSymbol(userEB, 0); sym != absLosslessSym {
		t.Error("zero target must be lossless")
	}
}

func TestRelSymbolRoundTrip(t *testing.T) {
	for _, target := range []float64{1, 0.5, 0.3, 1e-10, 1e-40} {
		sym, realized := relSymbol(target)
		if sym == relExactSym {
			t.Fatalf("target %v unexpectedly exact", target)
		}
		if realized > target || realized < target/2 {
			t.Errorf("realized %v not in (target/2, target] for %v", realized, target)
		}
		back, exact := relBoundOf(sym)
		if exact || back != realized {
			t.Errorf("relBoundOf(%d) = %v, want %v", sym, back, realized)
		}
	}
	if sym, _ := relSymbol(0); sym != relExactSym {
		t.Error("zero target must be exact")
	}
	if sym, _ := relSymbol(math.Inf(1)); sym == relExactSym {
		t.Error("infinite target must not be exact")
	}
}

func TestPartitionInvariants(t *testing.T) {
	for _, dims := range [][3]int{{16, 16, 1}, {100, 50, 1}, {10, 10, 10}, {8, 8, 64}, {4, 4, 4}} {
		var f *field.Field
		if dims[2] == 1 {
			f = field.New2D(dims[0], dims[1])
		} else {
			f = field.New3D(dims[0], dims[1], dims[2])
		}
		interiors, boundaries := partition(f.Grid)
		covered := 0
		for _, r := range interiors {
			covered += r.numVertices()
		}
		for _, r := range boundaries {
			covered += r.numVertices()
		}
		if covered != f.NumVertices() {
			t.Fatalf("dims %v: partition covers %d of %d vertices", dims, covered, f.NumVertices())
		}
		// Boundary planes must be pairwise non-adjacent (≥ 2 apart).
		axis := partitionAxis(f.Grid)
		prev := -10
		for _, b := range boundaries {
			if b.lo[axis]-prev < 2 {
				t.Fatalf("dims %v: boundary planes too close: %d then %d", dims, prev, b.lo[axis])
			}
			prev = b.lo[axis]
		}
	}
}

func BenchmarkCompressAbs2D(b *testing.B) {
	f := gyre2D(128, 128)
	opts := Options{Mode: ebound.Absolute, ErrBound: 0.01, Workers: 0}
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(f, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressAbs2D(b *testing.B) {
	f := gyre2D(128, 128)
	res, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 0.01, Workers: 0})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(res.Bytes, 0); err != nil {
			b.Fatal(err)
		}
	}
}
