package cpsz

// Ablation benchmarks for the design choices DESIGN.md calls out: the slab
// granularity of the parallel partition, the error-bound exponent cap, and
// the Huffman stage of the entropy backend. Run with
//
//	go test ./internal/cpsz -bench=Ablation -benchtime=1x
//
// and read the reported custom metrics (sizes in bytes, ratios).

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"testing"

	"tspsz/internal/ebound"
	"tspsz/internal/huffman"
)

// BenchmarkAblationSlabCount sweeps the slab thickness target: finer slabs
// mean more degraded boundary predictors (worse ratio) but a shorter
// serial stage (better parallel scaling).
func BenchmarkAblationSlabCount(b *testing.B) {
	f := turb3D(24)
	origTarget := slabTarget
	defer func() { slabTarget = origTarget }()
	for _, target := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("slabTarget=%d", target), func(b *testing.B) {
			slabTarget = target
			var size int
			for i := 0; i < b.N; i++ {
				res, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 0.01, Workers: 0})
				if err != nil {
					b.Fatal(err)
				}
				size = len(res.Bytes)
			}
			b.ReportMetric(float64(size), "bytes")
			interiors, boundaries := partition(f.Grid)
			b.ReportMetric(float64(len(interiors)+len(boundaries)), "regions")
		})
	}
}

// BenchmarkAblationEBQuantization sweeps the error-bound exponent cap: a
// lower cap forces more vertices lossless; a higher one spends more symbol
// alphabet on rarely used tight bounds.
func BenchmarkAblationEBQuantization(b *testing.B) {
	f := gyre2D(128, 128)
	// The cap is a const in production; emulate lower caps by clamping the
	// user bound ladder instead: realized bounds below ε·2^-cap go
	// lossless, which is equivalent to re-deriving with a smaller cap.
	for _, eb := range []float64{1e-1, 1e-2, 1e-3, 1e-4} {
		b.Run(fmt.Sprintf("eps=%g", eb), func(b *testing.B) {
			var size, lossless int
			for i := 0; i < b.N; i++ {
				res, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: eb, Workers: 0})
				if err != nil {
					b.Fatal(err)
				}
				size = len(res.Bytes)
				lossless = res.LosslessVertices.Count()
			}
			b.ReportMetric(float64(size), "bytes")
			b.ReportMetric(float64(lossless), "lossless-vertices")
		})
	}
}

// BenchmarkAblationHuffman compares the shipped Huffman+DEFLATE symbol
// backend against DEFLATE-only on a realistic quantization-code stream:
// the Huffman stage should win on size (that is why SZ has it).
func BenchmarkAblationHuffman(b *testing.B) {
	f := gyre2D(192, 192)
	res, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 0.01, Workers: 0})
	if err != nil {
		b.Fatal(err)
	}
	// Recover a representative symbol stream by recompressing and tapping
	// the streams before entropy coding.
	work := f.Clone()
	interiors, boundaries := partition(f.Grid)
	streams := make([]regionStreams, len(interiors)+len(boundaries))
	opts := Options{Mode: ebound.Absolute, ErrBound: 0.01}
	for i, r := range interiors {
		compressRegion(work, f, r, opts, &streams[i])
	}
	for i, r := range boundaries {
		compressRegion(work, f, r, opts, &streams[len(interiors)+i])
	}
	var quant []uint32
	for i := range streams {
		quant = append(quant, streams[i].quantSyms...)
	}
	raw := make([]byte, 4*len(quant))
	for i, q := range quant {
		binary.LittleEndian.PutUint32(raw[4*i:], q)
	}
	deflateOnly := func(data []byte) int {
		var out bytes.Buffer
		w, _ := flate.NewWriter(&out, flate.DefaultCompression)
		w.Write(data)
		w.Close()
		return out.Len()
	}

	b.Run("huffman+deflate", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			enc, err := huffman.Encode(quant)
			if err != nil {
				b.Fatal(err)
			}
			size = deflateOnly(enc)
		}
		b.ReportMetric(float64(size), "bytes")
	})
	b.Run("deflate-only", func(b *testing.B) {
		var size int
		for i := 0; i < b.N; i++ {
			size = deflateOnly(raw)
		}
		b.ReportMetric(float64(size), "bytes")
	})
	b.Run("full-stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = res
		}
		b.ReportMetric(float64(len(res.Bytes)), "bytes")
	})
}
