package cpsz

import (
	"math/rand"
	"testing"

	"tspsz/internal/ebound"
)

// Decompress must never panic: arbitrary bytes and corrupted valid streams
// either round-trip or fail with an error.
func TestDecompressNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 300; trial++ {
		data := make([]byte, rng.Intn(600))
		rng.Read(data)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %d garbage bytes: %v", len(data), r)
				}
			}()
			_, _ = Decompress(data, 1)
		}()
	}
}

func TestDecompressNeverPanicsOnBitflips(t *testing.T) {
	f := gyre2D(16, 12)
	res, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 0.05, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 400; trial++ {
		mut := append([]byte(nil), res.Bytes...)
		for flips := 0; flips <= trial%3; flips++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated stream (trial %d): %v", trial, r)
				}
			}()
			_, _ = Decompress(mut, 1)
		}()
	}
}
