package cpsz

// The interpolation codec path: an SZ3-style level-wise scheme where a
// coarse lattice predicts midpoints dimension by dimension, halving the
// stride each level (cubic stencil inside, linear/copy at boundaries).
// It is serial by construction (every level depends on the previous one)
// and composes with every error-control mode, including the coupled
// critical-point-preserving bounds — the visit order differs from the
// Lorenzo path, but the per-vertex sign-preservation invariant is order
// independent.

import (
	"context"
	"math"

	"tspsz/internal/bitmap"
	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/obs"
	"tspsz/internal/parallel"
	"tspsz/internal/quantizer"
)

// Predictor selects the prediction scheme.
type Predictor int

const (
	// PredictorLorenzo is the default region-parallel Lorenzo pipeline.
	PredictorLorenzo Predictor = iota
	// PredictorInterpolation is the SZ3-style level-wise interpolation
	// pipeline (serial).
	PredictorInterpolation
)

// String implements fmt.Stringer.
func (p Predictor) String() string {
	if p == PredictorInterpolation {
		return "interpolation"
	}
	return "lorenzo"
}

// interpVisit enumerates the interpolation order: the origin first, then
// per level (stride halving) the new lattice points dimension by
// dimension. For every vertex it reports the axis to interpolate along and
// the stride, from which both encoder and decoder derive the identical
// prediction. visit(i, j, k, axis, stride); axis == -1 marks the origin.
func interpVisit(nx, ny, nz int, visit func(i, j, k, axis, stride int)) {
	maxDim := nx
	if ny > maxDim {
		maxDim = ny
	}
	if nz > maxDim {
		maxDim = nz
	}
	stride := 1
	for stride < maxDim-1 {
		stride <<= 1
	}
	visit(0, 0, 0, -1, 0)
	for ; stride >= 1; stride >>= 1 {
		s2 := stride * 2
		// Phase X: i odd multiple of stride; j, k multiples of 2·stride.
		for k := 0; k < nz; k += s2 {
			for j := 0; j < ny; j += s2 {
				for i := stride; i < nx; i += s2 {
					visit(i, j, k, 0, stride)
				}
			}
		}
		// Phase Y: j odd multiple of stride; i multiple of stride; k of 2·stride.
		for k := 0; k < nz; k += s2 {
			for j := stride; j < ny; j += s2 {
				for i := 0; i < nx; i += stride {
					visit(i, j, k, 1, stride)
				}
			}
		}
		// Phase Z: k odd multiple of stride; i, j multiples of stride.
		for k := stride; k < nz; k += s2 {
			for j := 0; j < ny; j += stride {
				for i := 0; i < nx; i += stride {
					visit(i, j, k, 2, stride)
				}
			}
		}
	}
}

// interpPredict computes the prediction for vertex (i,j,k) along axis with
// the given stride, reading the working data.
func interpPredict(vals []float32, nx, ny, nz, i, j, k, axis, stride int) float64 {
	nxny := nx * ny
	switch axis {
	case 0:
		return quantizer.InterpPredict1D(vals, func(c int) int { return c + j*nx + k*nxny }, nx, i, stride)
	case 1:
		return quantizer.InterpPredict1D(vals, func(c int) int { return i + c*nx + k*nxny }, ny, j, stride)
	case 2:
		return quantizer.InterpPredict1D(vals, func(c int) int { return i + j*nx + c*nxny }, nz, k, stride)
	default:
		return 0
	}
}

// compressInterp is the interpolation-path encoder: identical stream
// semantics to the Lorenzo path, different visit order and predictor, one
// region.
func compressInterp(ctx context.Context, f *field.Field, opts Options) (*Result, error) {
	col := opts.Collector
	work := f.Clone()
	lossless := bitmap.New(f.NumVertices())
	var out regionStreams
	nx, ny, nz := f.Grid.Dims()
	comps := f.Components()
	workComps := work.Components()
	radius := int32(quantizer.DefaultRadius)

	quantizePass := func() {
		interpVisit(nx, ny, nz, func(i, j, k, axis, stride int) {
			idx := i + j*nx + k*nx*ny
			forced := opts.Lossless != nil && opts.Lossless.Get(idx)
			storeLossless := forced
			var derived float64
			if !storeLossless {
				switch {
				case opts.Plain:
					derived = math.Inf(1)
				case opts.SoS:
					derived = ebound.VertexBoundSoS(work, idx, opts.Mode)
				default:
					if eb, hasCP := ebound.VertexBound(work, idx, opts.Mode); hasCP {
						storeLossless = true
					} else {
						derived = eb
					}
				}
			}
			quantize := func(c int, aeb float64) {
				pred := interpPredict(workComps[c], nx, ny, nz, i, j, k, axis, stride)
				code, recon, ok := quantizer.Quantize(float64(comps[c][idx]), pred, aeb, radius)
				if !ok {
					out.quantSyms = append(out.quantSyms, quantizer.UnpredictableSym)
					out.rawFloat(comps[c][idx])
					workComps[c][idx] = comps[c][idx]
					return
				}
				out.quantSyms = append(out.quantSyms, quantizer.Zigzag(code))
				workComps[c][idx] = float32(recon)
			}
			if opts.Mode == ebound.Absolute {
				if !storeLossless {
					target := math.Min(opts.ErrBound, derived)
					sym, aeb := absSymbol(opts.ErrBound, target)
					if sym == absLosslessSym {
						storeLossless = true
					} else {
						out.ebSyms = append(out.ebSyms, sym)
						for c := range comps {
							quantize(c, aeb)
						}
					}
				}
				if storeLossless {
					out.ebSyms = append(out.ebSyms, absLosslessSym)
					for c := range comps {
						out.rawFloat(comps[c][idx])
						workComps[c][idx] = comps[c][idx]
					}
					lossless.Set(idx)
				}
				return
			}
			if storeLossless {
				for c := range comps {
					out.ebSyms = append(out.ebSyms, relExactSym)
					out.rawFloat(comps[c][idx])
					workComps[c][idx] = comps[c][idx]
				}
				lossless.Set(idx)
				return
			}
			xi := math.Min(opts.ErrBound, derived)
			allExact := true
			for c := range comps {
				target := xi * math.Abs(float64(comps[c][idx]))
				sym, aeb := relSymbol(target)
				out.ebSyms = append(out.ebSyms, sym)
				if sym == relExactSym {
					out.rawFloat(comps[c][idx])
					workComps[c][idx] = comps[c][idx]
					continue
				}
				allExact = false
				quantize(c, aeb)
			}
			if allExact {
				lossless.Set(idx)
			}
		})
	}
	// The interpolation predictor is serial by construction (each level
	// depends on the previous), so its span always reports one worker.
	if err := col.Do(obs.StagePredictQuant, 1, int64(f.NumVertices()), func() error {
		quantizePass()
		return nil
	}); err != nil {
		return nil, err
	}
	if col != nil {
		col.Add(obs.CtrLosslessVertices, int64(lossless.Count()))
	}

	var bytes []byte
	if err := col.Do(obs.StageEntropyEncode, parallel.Workers(opts.Workers), int64(len(out.ebSyms)+len(out.quantSyms)), func() error {
		var err error
		bytes, err = serialize(ctx, f, opts, out.ebSyms, out.quantSyms, out.raw)
		return err
	}); err != nil {
		return nil, err
	}
	return &Result{Bytes: bytes, Decompressed: work, LosslessVertices: lossless}, nil
}

// reconstructInterp is the serial interpolation-path decoder.
func reconstructInterp(f *field.Field, hdr header, ebSyms, quantSyms []uint32, raw []byte) error {
	nx, ny, nz := f.Grid.Dims()
	comps := f.Components()
	var off regionOffsets
	var decodeErr error
	interpVisit(nx, ny, nz, func(i, j, k, axis, stride int) {
		if decodeErr != nil {
			return
		}
		idx := i + j*nx + k*nx*ny
		reconOne := func(c int, aeb float64) {
			if off.quant >= len(quantSyms) {
				decodeErr = errBadSymbols
				return
			}
			qs := quantSyms[off.quant]
			off.quant++
			if qs == quantizer.UnpredictableSym {
				if off.raw+4 > len(raw) {
					decodeErr = errBadSymbols
					return
				}
				comps[c][idx] = readFloat(raw, &off.raw)
				return
			}
			pred := interpPredict(comps[c], nx, ny, nz, i, j, k, axis, stride)
			comps[c][idx] = float32(quantizer.Reconstruct(pred, aeb, quantizer.Unzigzag(qs)))
		}
		if hdr.mode == ebound.Absolute {
			if off.eb >= len(ebSyms) {
				decodeErr = errBadSymbols
				return
			}
			sym := ebSyms[off.eb]
			off.eb++
			if sym > absLosslessSym {
				decodeErr = errBadSymbols
				return
			}
			aeb, lossless := absBoundOf(hdr.errBound, sym)
			for c := range comps {
				if decodeErr != nil {
					return
				}
				if lossless {
					if off.raw+4 > len(raw) {
						decodeErr = errBadSymbols
						return
					}
					comps[c][idx] = readFloat(raw, &off.raw)
					continue
				}
				reconOne(c, aeb)
			}
			return
		}
		for c := range comps {
			if decodeErr != nil {
				return
			}
			if off.eb >= len(ebSyms) {
				decodeErr = errBadSymbols
				return
			}
			sym := ebSyms[off.eb]
			off.eb++
			if sym > relBias+relExpCap+1 {
				decodeErr = errBadSymbols
				return
			}
			aeb, exact := relBoundOf(sym)
			if exact {
				if off.raw+4 > len(raw) {
					decodeErr = errBadSymbols
					return
				}
				comps[c][idx] = readFloat(raw, &off.raw)
				continue
			}
			reconOne(c, aeb)
		}
	})
	if decodeErr != nil {
		return decodeErr
	}
	if off.eb != len(ebSyms) || off.quant != len(quantSyms) || off.raw != len(raw) {
		return errBadSymbols
	}
	return nil
}
