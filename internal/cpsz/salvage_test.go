package cpsz

import (
	"context"
	"errors"
	"testing"

	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/streamerr"
)

// salvageFixture compresses f and returns the archive plus the clean decode
// every salvage result is measured against.
func salvageFixture(t *testing.T, f *field.Field, opts Options) ([]byte, *field.Field) {
	t.Helper()
	res, err := Compress(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Decompress(res.Bytes, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res.Bytes, clean
}

// corruptPayload flips one byte of chunk r's payload on a copy of data,
// resealing the whole-stream trailer so only the per-chunk checksum can
// catch the damage.
func corruptPayload(data []byte, r chunkRef, reseal bool) []byte {
	b := append([]byte(nil), data...)
	b[r.payOff+r.csize/2] ^= 0xff
	if reseal {
		resealTrailer(b)
	}
	return b
}

// sectionChunkIndex maps a flat walkV4 index to the chunk's index within
// its own section.
func sectionChunkIndex(refs []chunkRef, i int) int {
	idx := 0
	for j := 0; j < i; j++ {
		if refs[j].section == refs[i].section {
			idx++
		}
	}
	return idx
}

// checkUndamagedExact asserts every vertex not marked damaged is
// bit-identical to the clean decode, and every bitmap count agrees.
func checkUndamagedExact(t *testing.T, got, clean *field.Field, rep *SalvageReport) {
	t.Helper()
	if rep.Damaged == nil {
		t.Fatal("report has no damage bitmap")
	}
	if rep.DamagedVertices != rep.Damaged.Count() {
		t.Fatalf("DamagedVertices %d != bitmap count %d", rep.DamagedVertices, rep.Damaged.Count())
	}
	if rep.TotalVertices != clean.NumVertices() {
		t.Fatalf("TotalVertices %d != %d", rep.TotalVertices, clean.NumVertices())
	}
	gc, cc := got.Components(), clean.Components()
	for idx := 0; idx < clean.NumVertices(); idx++ {
		if rep.Damaged.Get(idx) {
			continue
		}
		for c := range cc {
			if gc[c][idx] != cc[c][idx] {
				t.Fatalf("vertex %d component %d not exact: %v != %v (reported undamaged)",
					idx, c, gc[c][idx], cc[c][idx])
			}
		}
	}
}

// TestSalvageCleanStream checks salvage of an intact archive is a clean,
// bit-exact decode with an all-green report.
func TestSalvageCleanStream(t *testing.T) {
	for _, mode := range []ebound.Mode{ebound.Absolute, ebound.Relative} {
		data, clean := salvageFixture(t, gyre2D(48, 40), Options{Mode: mode, ErrBound: 1e-3})
		got, rep, err := Salvage(data, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean() {
			t.Fatalf("mode %v: clean archive reported damage: %+v", mode, rep)
		}
		if rep.DamagedVertices != 0 || rep.Damaged.Count() != 0 {
			t.Fatalf("mode %v: damaged vertices on clean archive", mode)
		}
		for si, sec := range rep.Sections {
			if sec.Name != sectionNames[si] || sec.Damaged() {
				t.Fatalf("mode %v: section %d bad report %+v", mode, si, sec)
			}
		}
		checkUndamagedExact(t, got, clean, rep)
		if rep.Damaged.Count() != 0 {
			t.Fatal("clean salvage marked vertices damaged")
		}
		for idx := 0; idx < clean.NumVertices(); idx++ {
			if got.U[idx] != clean.U[idx] || got.V[idx] != clean.V[idx] {
				t.Fatalf("mode %v: clean salvage differs at %d", mode, idx)
			}
		}
	}
}

// TestSalvageSingleChunkSweep is the acceptance sweep: corrupting any single
// chunk of a v4 archive must yield a salvage decode that recovers every
// other chunk — every vertex outside the reported damage is bit-exact — and
// a report naming exactly the damaged chunk. The field is large enough for
// multiple chunks per symbol section.
func TestSalvageSingleChunkSweep(t *testing.T) {
	f := gyre2D(260, 260) // 67600 vertices: >1 chunk in both symbol sections
	data, clean := salvageFixture(t, f, Options{Mode: ebound.Absolute, ErrBound: 1e-3, Workers: 4})
	refs := walkV4(t, data)
	if len(refs) < 4 {
		t.Fatalf("fixture too small: only %d chunks", len(refs))
	}
	sawRecovery := false
	sections := map[string]bool{}
	for i, r := range refs {
		if r.csize == 0 {
			continue
		}
		sections[r.section] = true
		mut := corruptPayload(data, r, true)
		got, rep, err := Salvage(mut, 4)
		if err != nil {
			t.Fatalf("chunk %d (%s): salvage failed: %v", i, r.section, err)
		}
		if rep.SealBroken {
			t.Fatalf("chunk %d (%s): resealed archive reported SealBroken", i, r.section)
		}
		want := sectionChunkIndex(refs, i)
		for si, sec := range rep.Sections {
			if sec.Lost {
				t.Fatalf("chunk %d: section %s lost: %s", i, sec.Name, sec.LostReason)
			}
			if sec.Name == r.section {
				if len(sec.DamagedChunks) != 1 || sec.DamagedChunks[0] != want {
					t.Fatalf("chunk %d (%s): damaged chunks %v, want [%d]", i, r.section, sec.DamagedChunks, want)
				}
				if len(sec.DamagedOffsets) != 1 || sec.DamagedOffsets[0] != int64(r.payOff) {
					t.Fatalf("chunk %d (%s): damaged offsets %v, want [%d]", i, r.section, sec.DamagedOffsets, r.payOff)
				}
			} else if sec.Damaged() {
				t.Fatalf("chunk %d (%s): undamaged section %d reported %+v", i, r.section, si, sec)
			}
		}
		if rep.DamagedVertices == 0 {
			t.Fatalf("chunk %d (%s): damage reported but no vertex marked", i, r.section)
		}
		checkUndamagedExact(t, got, clean, rep)
		if rep.DamagedVertices < rep.TotalVertices {
			sawRecovery = true
		}
	}
	for _, sec := range []string{"eb-symbols", "quant-symbols", "raw"} {
		if !sections[sec] {
			t.Fatalf("sweep never hit section %s", sec)
		}
	}
	if !sawRecovery {
		t.Fatal("no corruption case recovered any vertices")
	}
}

// TestSalvageRawDamagePrecise checks that raw-section damage — which never
// disturbs stream alignment — loses only the regions whose raw windows
// overlap the damaged extent, so later symbol chunks still decode exactly.
func TestSalvageRawDamagePrecise(t *testing.T) {
	data, clean := salvageFixture(t, gyre2D(260, 260), Options{Mode: ebound.Absolute, ErrBound: 1e-3})
	refs := walkV4(t, data)
	var raw *chunkRef
	for i := range refs {
		if refs[i].section == "raw" && refs[i].csize > 0 {
			raw = &refs[i]
			break
		}
	}
	if raw == nil {
		t.Skip("fixture has no raw chunk")
	}
	got, rep, err := Salvage(corruptPayload(data, *raw, true), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sections[0].Damaged() || rep.Sections[1].Damaged() {
		t.Fatalf("symbol sections reported damaged: %+v", rep.Sections)
	}
	if !rep.Sections[2].Damaged() {
		t.Fatal("raw section not reported damaged")
	}
	if rep.DamagedVertices == 0 || rep.DamagedVertices >= rep.TotalVertices {
		t.Fatalf("raw damage should be partial: %d of %d vertices lost",
			rep.DamagedVertices, rep.TotalVertices)
	}
	checkUndamagedExact(t, got, clean, rep)
}

// TestSalvageEbDamageTaintsSuffix checks the taint model: a damaged eb
// chunk invalidates the quant/raw cursors from its first vertex on, but
// everything before it stays exact.
func TestSalvageEbDamageTaintsSuffix(t *testing.T) {
	data, clean := salvageFixture(t, gyre2D(260, 260), Options{Mode: ebound.Absolute, ErrBound: 1e-3})
	refs := walkV4(t, data)
	var eb []chunkRef
	for _, r := range refs {
		if r.section == "eb-symbols" {
			eb = append(eb, r)
		}
	}
	if len(eb) < 2 {
		t.Fatalf("need >= 2 eb chunks, have %d", len(eb))
	}
	// Corrupt the LAST eb chunk: every vertex before its extent must
	// survive, so recovery must be substantial.
	got, rep, err := Salvage(corruptPayload(data, eb[len(eb)-1], true), 0)
	if err != nil {
		t.Fatal(err)
	}
	checkUndamagedExact(t, got, clean, rep)
	recovered := rep.TotalVertices - rep.DamagedVertices
	if recovered == 0 {
		t.Fatal("tail eb-chunk damage recovered nothing")
	}
	t.Logf("tail eb chunk damaged: recovered %d of %d vertices", recovered, rep.TotalVertices)
}

// TestSalvageBrokenSealTolerated checks a corrupt trailer (no reseal) is
// tolerated: the decode proceeds on chunk checksums alone and the report
// sets SealBroken.
func TestSalvageBrokenSealTolerated(t *testing.T) {
	data, clean := salvageFixture(t, gyre2D(48, 40), Options{Mode: ebound.Absolute, ErrBound: 1e-3})
	mut := append([]byte(nil), data...)
	mut[len(mut)-1] ^= 0xff // trailer CRC byte
	if _, err := Decompress(mut, 0); err == nil {
		t.Fatal("strict decode accepted broken trailer")
	}
	got, rep, err := Salvage(mut, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SealBroken {
		t.Fatal("SealBroken not set")
	}
	if rep.Clean() {
		t.Fatal("broken seal but Clean() true")
	}
	if rep.DamagedVertices != 0 {
		t.Fatalf("intact chunks behind a broken seal lost %d vertices", rep.DamagedVertices)
	}
	checkUndamagedExact(t, got, clean, rep)
}

// TestSalvageUnsealedChunkDamage checks a corrupt chunk without a reseal
// reports both the broken seal and the damaged chunk.
func TestSalvageUnsealedChunkDamage(t *testing.T) {
	data, clean := salvageFixture(t, gyre2D(260, 260), Options{Mode: ebound.Absolute, ErrBound: 1e-3})
	refs := walkV4(t, data)
	got, rep, err := Salvage(corruptPayload(data, refs[len(refs)-1], false), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SealBroken {
		t.Fatal("SealBroken not set")
	}
	if !rep.Sections[2].Damaged() && !rep.Sections[1].Damaged() && !rep.Sections[0].Damaged() {
		t.Fatal("damaged chunk not reported")
	}
	checkUndamagedExact(t, got, clean, rep)
}

// TestSalvageRawSectionLost checks graceful degradation when the raw
// section's framing is unreadable: the symbol sections still decode, only
// regions needing raw bytes are lost, and the report says why.
func TestSalvageRawSectionLost(t *testing.T) {
	data, clean := salvageFixture(t, gyre2D(260, 260), Options{Mode: ebound.Absolute, ErrBound: 1e-3})
	refs := walkV4(t, data)
	var firstRaw *chunkRef
	for i := range refs {
		if refs[i].section == "raw" {
			firstRaw = &refs[i]
			break
		}
	}
	if firstRaw == nil {
		t.Skip("fixture has no raw chunk")
	}
	// Truncate inside the first raw payload: the raw directory promises
	// more bytes than remain, so the section frame is unreadable.
	mut := append([]byte(nil), data[:firstRaw.payOff+1]...)
	got, rep, err := Salvage(mut, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SealBroken {
		t.Fatal("truncation must break the seal")
	}
	if rep.Sections[0].Damaged() || rep.Sections[1].Damaged() {
		t.Fatalf("symbol sections should survive: %+v", rep.Sections[:2])
	}
	if !rep.Sections[2].Lost || rep.Sections[2].LostReason == "" {
		t.Fatalf("raw section not marked lost: %+v", rep.Sections[2])
	}
	if rep.DamagedVertices == 0 {
		t.Fatal("lost raw section lost no vertices")
	}
	checkUndamagedExact(t, got, clean, rep)
	t.Logf("raw section lost: recovered %d of %d vertices", rep.TotalVertices-rep.DamagedVertices, rep.TotalVertices)
}

// TestSalvageEbSectionLostIsHard checks the one unrecoverable section: with
// the eb section unreadable nothing bounds the field allocation and no
// vertex is recoverable, so salvage reports hard corruption — with the
// report still attached for diagnostics.
func TestSalvageEbSectionLostIsHard(t *testing.T) {
	data, _ := salvageFixture(t, gyre2D(48, 40), Options{Mode: ebound.Absolute, ErrBound: 1e-3})
	refs := walkV4(t, data)
	mut := append([]byte(nil), data[:refs[0].payOff+1]...)
	_, rep, err := Salvage(mut, 0)
	if !errors.Is(err, streamerr.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if rep == nil {
		t.Fatal("report missing alongside hard error")
	}
	if !rep.Sections[0].Lost || !rep.Sections[1].Lost || !rep.Sections[2].Lost {
		t.Fatalf("lost-section cascade missing: %+v", rep.Sections)
	}
}

// TestSalvageHeaderDamageIsHard checks a damaged fixed header (CRC
// mismatch) cannot be salvaged: dims and mode are untrustable.
func TestSalvageHeaderDamageIsHard(t *testing.T) {
	data, _ := salvageFixture(t, gyre2D(48, 40), Options{Mode: ebound.Absolute, ErrBound: 1e-3})
	mut := append([]byte(nil), data...)
	mut[9] ^= 0xff // nx byte
	resealTrailer(mut)
	_, _, err := Salvage(mut, 0)
	if !errors.Is(err, streamerr.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for header damage, got %v", err)
	}
}

// TestSalvagePreV3Refused checks pre-checksum streams refuse salvage with
// ErrVersion: without per-chunk CRCs good chunks cannot be told from bad.
func TestSalvagePreV3Refused(t *testing.T) {
	data, _ := salvageFixture(t, gyre2D(48, 40), Options{Mode: ebound.Absolute, ErrBound: 1e-3})
	mut := append([]byte(nil), data...)
	mut[4] = formatV2
	_, _, err := Salvage(mut, 0)
	if !errors.Is(err, streamerr.ErrVersion) {
		t.Fatalf("want ErrVersion for pre-v3 stream, got %v", err)
	}
}

// TestSalvageNotAStream checks non-cpSZ bytes fail with ErrHeader and
// truncated headers with ErrTruncated.
func TestSalvageNotAStream(t *testing.T) {
	if _, _, err := Salvage([]byte("JUNKJUNKJUNKJUNKJUNKJUNKJUNKJUNKJUNK"), 0); !errors.Is(err, streamerr.ErrHeader) {
		t.Fatalf("want ErrHeader, got %v", err)
	}
	if _, _, err := Salvage([]byte("CPS"), 0); !errors.Is(err, streamerr.ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

// TestSalvageParseOnly checks the parse-only entry point localizes chunk
// damage without reconstructing.
func TestSalvageParseOnly(t *testing.T) {
	data, _ := salvageFixture(t, gyre2D(260, 260), Options{Mode: ebound.Absolute, ErrBound: 1e-3})
	refs := walkV4(t, data)
	var quant *chunkRef
	for i := range refs {
		if refs[i].section == "quant-symbols" {
			quant = &refs[i]
			break
		}
	}
	if quant == nil {
		t.Fatal("no quant chunk")
	}
	ebSyms, quantSyms, _, rep, err := SalvageParse(corruptPayload(data, *quant, true), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ebSyms) == 0 || len(quantSyms) == 0 {
		t.Fatal("symbol streams missing")
	}
	if len(rep.Sections[1].DamagedChunks) != 1 || rep.Sections[1].DamagedChunks[0] != 0 {
		t.Fatalf("quant damage not localized: %+v", rep.Sections[1])
	}
	if rep.TotalVertices != 0 || rep.Damaged != nil {
		t.Fatal("parse-only report must not fill vertex fields")
	}
	// The damaged chunk's extent is zero-filled.
	lo, hi := chunkBound(len(quantSyms), rep.Sections[1].Chunks, 0)
	for i := lo; i < hi; i++ {
		if quantSyms[i] != 0 {
			t.Fatalf("damaged extent not zeroed at %d", i)
		}
	}
}

// TestSalvageRelativeMode runs a corruption case through the relative-mode
// symbol accounting.
func TestSalvageRelativeMode(t *testing.T) {
	data, clean := salvageFixture(t, gyre2D(200, 170), Options{Mode: ebound.Relative, ErrBound: 1e-3})
	refs := walkV4(t, data)
	for i, r := range refs {
		if r.csize == 0 {
			continue
		}
		got, rep, err := Salvage(corruptPayload(data, r, true), 0)
		if err != nil {
			t.Fatalf("chunk %d (%s): %v", i, r.section, err)
		}
		checkUndamagedExact(t, got, clean, rep)
	}
}

// TestSalvageInterpDamageLosesFrame checks the interpolation predictor's
// documented degradation: its serial global error feedback cannot contain
// damage, so any chunk loss zeroes the whole frame — reported, not failed.
func TestSalvageInterpDamageLosesFrame(t *testing.T) {
	data, clean := salvageFixture(t, gyre2D(48, 40),
		Options{Mode: ebound.Absolute, ErrBound: 1e-3, Predictor: PredictorInterpolation})
	// Clean salvage of an interp stream is still exact.
	got, rep, err := Salvage(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean interp archive reported damage: %+v", rep)
	}
	checkUndamagedExact(t, got, clean, rep)
	refs := walkV4(t, data)
	var target *chunkRef
	for i := range refs {
		if refs[i].csize > 0 {
			target = &refs[i]
			break
		}
	}
	got, rep, err = Salvage(corruptPayload(data, *target, true), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DamagedVertices != rep.TotalVertices {
		t.Fatalf("interp damage must lose the frame: %d of %d", rep.DamagedVertices, rep.TotalVertices)
	}
	for idx := 0; idx < got.NumVertices(); idx++ {
		if got.U[idx] != 0 || got.V[idx] != 0 {
			t.Fatalf("damaged interp frame not zeroed at %d", idx)
		}
	}
}

// TestSalvageTemporalRefused checks temporally predicted streams refuse
// salvage: reconstruction needs the reference frame.
func TestSalvageTemporalRefused(t *testing.T) {
	f := gyre2D(48, 40)
	ref, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 1e-3, Reference: ref.Decompressed})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := Salvage(res.Bytes, 0)
	if !errors.Is(err, streamerr.ErrHeader) {
		t.Fatalf("want ErrHeader for temporal stream, got %v", err)
	}
	if rep == nil {
		t.Fatal("report missing for temporal refusal")
	}
}

// TestSalvageCancellation checks both the pre-cancelled fast path and that
// cancellation inside the chunk fan-out surfaces as a context error rather
// than chunk damage.
func TestSalvageCancellation(t *testing.T) {
	data, _ := salvageFixture(t, gyre2D(260, 260), Options{Mode: ebound.Absolute, ErrBound: 1e-3})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := SalvageCtx(ctx, data, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) || errors.Is(err, streamerr.ErrCorrupt) {
		t.Fatalf("cancellation misclassified: %v", err)
	}
}

// TestVerifyAllReportsEveryFailure corrupts one chunk in each section of a
// resealed archive and checks the exhaustive scan reports all three in
// stream order with chunk indexes and payload offsets — where strict Verify
// stops at the first.
func TestVerifyAllReportsEveryFailure(t *testing.T) {
	data, _ := salvageFixture(t, gyre2D(260, 260), Options{Mode: ebound.Absolute, ErrBound: 1e-3})
	if fails := VerifyAll(data); len(fails) != 0 {
		t.Fatalf("clean archive: %v", fails)
	}
	refs := walkV4(t, data)
	mut := append([]byte(nil), data...)
	var want []chunkRef
	seen := map[string]bool{}
	for _, r := range refs {
		if r.csize == 0 || seen[r.section] {
			continue
		}
		seen[r.section] = true
		mut[r.payOff+r.csize/2] ^= 0xff
		want = append(want, r)
	}
	resealTrailer(mut)
	if len(want) < 2 {
		t.Fatalf("fixture produced only %d corruptible sections", len(want))
	}
	fails := VerifyAll(mut)
	if len(fails) != len(want) {
		t.Fatalf("got %d failures, want %d: %v", len(fails), len(want), fails)
	}
	for i, fe := range fails {
		if fe.Section != want[i].section {
			t.Fatalf("failure %d section %q, want %q", i, fe.Section, want[i].section)
		}
		if fe.Chunk != sectionChunkIndex(refs, flatIndex(refs, want[i])) {
			t.Fatalf("failure %d chunk %d", i, fe.Chunk)
		}
		if fe.Offset != int64(want[i].payOff) {
			t.Fatalf("failure %d offset %d, want %d", i, fe.Offset, want[i].payOff)
		}
		if !errors.Is(fe, streamerr.ErrCorrupt) {
			t.Fatalf("failure %d kind %v", i, fe.Kind)
		}
	}
	// Without a reseal the broken trailer is reported too, first.
	mut2 := append([]byte(nil), data...)
	r := want[0]
	mut2[r.payOff+r.csize/2] ^= 0xff
	fails = VerifyAll(mut2)
	if len(fails) != 2 {
		t.Fatalf("unsealed: got %d failures, want trailer + chunk: %v", len(fails), fails)
	}
	if fails[0].Section == r.section {
		t.Fatalf("trailer failure should precede chunk failure: %v", fails)
	}
}

// flatIndex finds r's index in refs.
func flatIndex(refs []chunkRef, r chunkRef) int {
	for i := range refs {
		if refs[i].payOff == r.payOff {
			return i
		}
	}
	return -1
}

// TestVerifyAllStructural checks a structural failure ends the scan as its
// final entry.
func TestVerifyAllStructural(t *testing.T) {
	data, _ := salvageFixture(t, gyre2D(48, 40), Options{Mode: ebound.Absolute, ErrBound: 1e-3})
	refs := walkV4(t, data)
	mut := append([]byte(nil), data[:refs[0].payOff+1]...)
	fails := VerifyAll(mut)
	if len(fails) == 0 {
		t.Fatal("truncated archive verified")
	}
	last := fails[len(fails)-1]
	if !errors.Is(last, streamerr.ErrTruncated) && !errors.Is(last, streamerr.ErrCorrupt) {
		t.Fatalf("structural failure kind: %v", last)
	}
}

// TestSalvageAgreesWithDecompressOnClean cross-checks Salvage against
// Decompress over assorted shapes, modes, and predictors.
func TestSalvageAgreesWithDecompressOnClean(t *testing.T) {
	cases := []struct {
		f    *field.Field
		opts Options
	}{
		{gyre2D(48, 40), Options{Mode: ebound.Absolute, ErrBound: 1e-3}},
		{gyre2D(48, 40), Options{Mode: ebound.Relative, ErrBound: 1e-2}},
		{turb3D(14), Options{Mode: ebound.Absolute, ErrBound: 1e-2}},
		{flat2D(32, 32), Options{Mode: ebound.Absolute, ErrBound: 1e-2}},
		{gyre2D(33, 29), Options{Mode: ebound.Absolute, ErrBound: 1e-3, Predictor: PredictorInterpolation}},
	}
	for ci, tc := range cases {
		data, clean := salvageFixture(t, tc.f, tc.opts)
		got, rep, err := Salvage(data, 0)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if !rep.Clean() {
			t.Fatalf("case %d: damage on clean archive: %+v", ci, rep)
		}
		gc, cc := got.Components(), clean.Components()
		for c := range cc {
			for idx := range cc[c] {
				if gc[c][idx] != cc[c][idx] {
					t.Fatalf("case %d: differs at vertex %d comp %d", ci, idx, c)
				}
			}
		}
	}
}
