package cpsz

import (
	"errors"
	"testing"

	"tspsz/internal/streamerr"
)

// TestSectionParsersRejectBadOffset pins the entry guards added in PR 6:
// every section parser and scanner validates its cursor against the
// stream before indexing, so an offset corrupted anywhere up the call
// chain becomes a typed error, not a panic.
func TestSectionParsersRejectBadOffset(t *testing.T) {
	data := []byte{1, 2, 3, 4}
	for _, off := range []int{-1, len(data) + 1, 1 << 30} {
		if _, _, err := parseSymbolSection(nil, data, off, 1, formatV2, "test", nil); !errors.Is(err, streamerr.ErrCorrupt) {
			t.Errorf("parseSymbolSection(off=%d): got %v, want ErrCorrupt", off, err)
		}
		if _, _, err := parseRawSection(nil, data, off, 1, formatV2, nil); !errors.Is(err, streamerr.ErrCorrupt) {
			t.Errorf("parseRawSection(off=%d): got %v, want ErrCorrupt", off, err)
		}
		if _, err := scanSymbolSection(data, off, formatV4, "test"); !errors.Is(err, streamerr.ErrCorrupt) {
			t.Errorf("scanSymbolSection(off=%d): got %v, want ErrCorrupt", off, err)
		}
		if _, err := scanRawSection(data, off, formatV4); !errors.Is(err, streamerr.ErrCorrupt) {
			t.Errorf("scanRawSection(off=%d): got %v, want ErrCorrupt", off, err)
		}
	}
	// A valid offset still parses: the guard is a boundary, not a
	// behavior change (empty symbol section = count 0).
	if _, off, err := parseSymbolSection(nil, []byte{0}, 0, 1, formatV2, "test", nil); err != nil || off != 1 {
		t.Errorf("parseSymbolSection on empty section: off=%d err=%v", off, err)
	}
}
