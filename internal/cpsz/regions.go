package cpsz

import "tspsz/internal/grid"

// region is one independently predictable box of vertices: either a slab
// interior or a single boundary plane (§VII). Prediction never crosses a
// region boundary, so regions reconstruct independently; error-bound
// derivation does cross boundaries, which the two-stage schedule makes safe
// (interiors first, then boundary planes).
type region struct {
	lo, hi   [3]int // vertex box [lo, hi)
	boundary bool
}

func (r region) contains(i, j, k int) bool {
	return i >= r.lo[0] && i < r.hi[0] &&
		j >= r.lo[1] && j < r.hi[1] &&
		k >= r.lo[2] && k < r.hi[2]
}

func (r region) numVertices() int {
	return (r.hi[0] - r.lo[0]) * (r.hi[1] - r.lo[1]) * (r.hi[2] - r.lo[2])
}

// slabTarget is the nominal slab thickness along the partition axis; the
// slab count is a pure function of the grid (never of the worker count), so
// compressed output is bit-identical for any parallelism level. It is a
// variable only so the ablation benchmarks can sweep it; production code
// never mutates it.
var slabTarget = 8

// maxSlabs bounds the number of slabs; more slabs shorten the serial
// boundary stage's critical path but cost compression ratio (degraded
// predictors at more planes). Variable for the ablation benchmarks only.
var maxSlabs = 64

// partitionAxis returns the axis slabs are cut along: the slowest-varying
// one (y in 2D, z in 3D).
func partitionAxis(g *grid.Grid) int {
	if g.Dim() == 2 {
		return 1
	}
	return 2
}

// partition splits the grid into slab interiors and the single-plane
// boundary regions between them, in deterministic order: all interiors
// (ascending), then all boundary planes (ascending).
func partition(g *grid.Grid) (interiors, boundaries []region) {
	nx, ny, nz := g.Dims()
	dims := [3]int{nx, ny, nz}
	axis := partitionAxis(g)
	n := dims[axis]
	t := n / slabTarget
	if t < 1 {
		t = 1
	}
	if t > maxSlabs {
		t = maxSlabs
	}
	// Cut planes c_1 < ... < c_{t-1}; interiors are the open gaps.
	var cuts []int
	prev := -1
	for s := 1; s < t; s++ {
		c := s * n / t
		if c <= prev+1 || c >= n-1 {
			continue // keep gaps non-empty and planes ≥ 2 apart
		}
		cuts = append(cuts, c)
		prev = c
	}
	full := region{hi: dims}
	start := 0
	for _, c := range cuts {
		in := full
		in.lo[axis] = start
		in.hi[axis] = c
		interiors = append(interiors, in)
		b := full
		b.lo[axis] = c
		b.hi[axis] = c + 1
		b.boundary = true
		boundaries = append(boundaries, b)
		start = c + 1
	}
	last := full
	last.lo[axis] = start
	interiors = append(interiors, last)
	return interiors, boundaries
}
