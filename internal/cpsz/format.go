package cpsz

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/huffman"
	"tspsz/internal/obs"
	"tspsz/internal/parallel"
	"tspsz/internal/streamerr"
)

const streamMagic = "CPSZ"

// Stream format versions. v1 runs each whole symbol section through one
// Huffman pass and one DEFLATE stream, serializing the entropy stage; v2
// shards every section into fixed-extent chunks coded against a shared
// per-section codebook, so both directions run the entropy stage in
// parallel (§VII); v3 keeps the v2 layout and makes it tamper-evident: a
// CRC32C over the fixed header, a per-chunk CRC32C column in the chunk
// directory (verified inside the parallel chunk-inflate workers, so
// integrity costs no extra pass), and a whole-stream trailer carrying the
// payload length plus a CRC32C over everything before it. The writer
// always emits v3; the reader accepts all three.
const (
	formatV1      = 1
	formatV2      = 2
	formatV3      = 3
	formatVersion = formatV3
)

// crcTable selects the Castagnoli polynomial, for which hash/crc32 uses
// the hardware CRC instructions on amd64 and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// chunkSymbols is the entropy-chunk extent of the symbol sections and
// chunkRawBytes the extent of the verbatim-float section. Chunk counts
// derive from the section length alone and boundaries from
// parallel.Ranges over that count, so archives are byte-identical for
// every worker count.
const (
	chunkSymbols  = 1 << 15
	chunkRawBytes = 1 << 17
)

// maxDeflateRatio bounds plausible DEFLATE expansion (the format's
// theoretical maximum is ~1032:1). v1 sections carry no uncompressed size,
// so inflation is capped at this multiple of the compressed payload;
// anything larger is a corrupt or adversarial stream, not a valid archive.
const maxDeflateRatio = 1032

// header mirrors the on-wire stream header.
type header struct {
	dim        int
	nx, ny, nz int
	mode       ebound.Mode
	predictor  Predictor
	temporal   bool
	errBound   float64
}

// temporalFlag marks streams predicted against a previous frame.
const temporalFlag = 0x80

// headerBytes is the fixed-width header size shared by every version;
// v3 appends headerCRCBytes of CRC32C over it. trailerBytes is the v3
// whole-stream trailer: a little-endian u64 payload length (everything
// before the trailer) followed by the CRC32C of those bytes.
const (
	headerBytes    = 28
	headerCRCBytes = 4
	headerBytesV3  = headerBytes + headerCRCBytes
	trailerBytes   = 12
)

// serialize assembles the final stream: CRC-sealed header, chunked
// Huffman+DEFLATE symbol sections with per-chunk checksums, a chunked
// DEFLATE raw-float section, and the whole-stream trailer. This mirrors
// SZ's Huffman + lossless-backend pipeline with the entropy stage sharded
// across opts.Workers.
func serialize(f *field.Field, opts Options, ebSyms, quantSyms []uint32, raw []byte) ([]byte, error) {
	c := opts.Collector
	workers := parallel.Workers(opts.Workers)
	out := make([]byte, 0, headerBytesV3+len(raw)/2+(len(ebSyms)+len(quantSyms))/4)
	out = append(out, streamMagic...)
	out = append(out, formatVersion, byte(f.Dim()), byte(opts.Mode))
	pb := byte(opts.Predictor)
	if opts.Reference != nil {
		pb |= temporalFlag
	}
	out = append(out, pb)
	nx, ny, nz := f.Grid.Dims()
	for _, v := range []uint32{uint32(nx), uint32(ny), uint32(nz)} {
		out = binary.LittleEndian.AppendUint32(out, v)
	}
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(opts.ErrBound))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out[:headerBytes], crcTable))
	c.Add(obs.CtrBytesStreamHeader, int64(len(out)))
	var err error
	for si, syms := range [][]uint32{ebSyms, quantSyms} {
		mark := len(out)
		if out, err = appendSymbolSection(out, syms, workers, c); err != nil {
			return nil, err
		}
		ctr := obs.CtrBytesSectionEb
		if si == 1 {
			ctr = obs.CtrBytesSectionQuant
		}
		c.Add(ctr, int64(len(out)-mark))
	}
	mark := len(out)
	if out, err = appendRawSection(out, raw, workers, c); err != nil {
		return nil, err
	}
	c.Add(obs.CtrBytesSectionRaw, int64(len(out)-mark))
	out = appendTrailer(out)
	c.Add(obs.CtrBytesStreamTrailer, trailerBytes)
	c.Add(obs.CtrBytesOut, int64(len(out)))
	return out, nil
}

// appendTrailer seals the stream: u64 length of everything before the
// trailer, then the CRC32C of all preceding bytes (payload + length field,
// so a tampered length field fails the checksum too).
func appendTrailer(out []byte) []byte {
	out = binary.LittleEndian.AppendUint64(out, uint64(len(out)))
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
}

// chunkCount returns how many fixed-extent chunks a section of n units
// splits into; it depends only on n, never on the worker count.
func chunkCount(n, extent int) int {
	c := (n + extent - 1) / extent
	if c < 1 {
		c = 1
	}
	return c
}

// appendSymbolSection writes one v3 symbol section: uvarint symbol count,
// the shared canonical codebook, a uvarint chunk count, a directory of
// per-chunk (uncompressed size, compressed size, payload CRC32C) entries,
// then the chunk payloads. Chunks are Huffman-packed, DEFLATEd, and
// checksummed concurrently; the directory lets the reader verify, inflate,
// and decode them concurrently too.
func appendSymbolSection(dst []byte, syms []uint32, workers int, c *obs.Collector) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(syms)))
	if len(syms) == 0 {
		return dst, nil
	}
	var table *huffman.Table
	if err := c.Do(obs.StageHistogram, workers, int64(len(syms)), func() error {
		var err error
		table, err = huffman.BuildTable(syms, workers)
		return err
	}); err != nil {
		return nil, err
	}
	dst = table.AppendTable(dst)
	bounds := parallel.Ranges(len(syms), chunkCount(len(syms), chunkSymbols))
	usizes := make([]int, len(bounds))
	packed := make([][]byte, len(bounds))
	crcs := make([]uint32, len(bounds))
	err := parallel.ForErr(len(bounds), workers, 1, func(i int) error {
		bits := getChunkBuf()
		bits = table.EncodeChunk(bits[:0], syms[bounds[i][0]:bounds[i][1]])
		usizes[i] = len(bits)
		var err error
		packed[i], err = deflate(bits)
		putChunkBuf(bits)
		if err != nil {
			return err
		}
		crcs[i] = crc32.Checksum(packed[i], crcTable)
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.Add(obs.CtrChunksEncoded, int64(len(bounds)))
	dst = binary.AppendUvarint(dst, uint64(len(bounds)))
	for i := range bounds {
		dst = binary.AppendUvarint(dst, uint64(usizes[i]))
		dst = binary.AppendUvarint(dst, uint64(len(packed[i])))
		dst = binary.LittleEndian.AppendUint32(dst, crcs[i])
	}
	for i := range bounds {
		dst = append(dst, packed[i]...)
	}
	return dst, nil
}

// appendRawSection writes the verbatim-float section as concurrently
// DEFLATEd and checksummed chunks with the same directory layout as the
// symbol sections; the uncompressed entries are redundant with the section
// length but serve as a decode-side cross-check.
func appendRawSection(dst []byte, raw []byte, workers int, c *obs.Collector) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(raw)))
	if len(raw) == 0 {
		return dst, nil
	}
	bounds := parallel.Ranges(len(raw), chunkCount(len(raw), chunkRawBytes))
	packed := make([][]byte, len(bounds))
	crcs := make([]uint32, len(bounds))
	err := parallel.ForErr(len(bounds), workers, 1, func(i int) error {
		var err error
		packed[i], err = deflate(raw[bounds[i][0]:bounds[i][1]])
		if err != nil {
			return err
		}
		crcs[i] = crc32.Checksum(packed[i], crcTable)
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.Add(obs.CtrChunksEncoded, int64(len(bounds)))
	dst = binary.AppendUvarint(dst, uint64(len(bounds)))
	for i := range bounds {
		dst = binary.AppendUvarint(dst, uint64(bounds[i][1]-bounds[i][0]))
		dst = binary.AppendUvarint(dst, uint64(len(packed[i])))
		dst = binary.LittleEndian.AppendUint32(dst, crcs[i])
	}
	for i := range bounds {
		dst = append(dst, packed[i]...)
	}
	return dst, nil
}

// parse splits a stream back into its header and sections, dispatching on
// the format version byte. For v3 streams the header CRC and whole-stream
// trailer are verified up front and the per-chunk checksums inside the
// parallel section readers.
func parse(data []byte, workers int, c *obs.Collector) (hdr header, ebSyms, quantSyms []uint32, raw []byte, err error) {
	hdr, off, end, err := parseHeader(data)
	if err != nil {
		return hdr, nil, nil, nil, err
	}
	version := data[4]
	if version == formatV1 {
		ebSyms, quantSyms, raw, err = parseSectionsV1(data, off)
	} else {
		ebSyms, quantSyms, raw, err = parseSectionsV2(data[:end], off, workers, version >= formatV3, c)
	}
	if err != nil {
		return hdr, nil, nil, nil, err
	}
	return hdr, ebSyms, quantSyms, raw, nil
}

// parseHeader validates the fixed header (and, for v3, the header CRC and
// the whole-stream trailer), returning the decoded header, the offset of
// the first section, and the offset one past the last section byte.
func parseHeader(data []byte) (hdr header, off, end int, err error) {
	if len(data) < headerBytes {
		return hdr, 0, 0, streamerr.Truncated("cpsz header", "%d of %d fixed-header bytes", len(data), headerBytes)
	}
	if string(data[:4]) != streamMagic {
		return hdr, 0, 0, streamerr.Header("cpsz header", "bad magic, not a cpSZ stream")
	}
	version := data[4]
	if version < formatV1 || version > formatV3 {
		return hdr, 0, 0, streamerr.Version("cpsz header", version)
	}
	end = len(data)
	off = headerBytes
	if version >= formatV3 {
		if len(data) < headerBytesV3+trailerBytes {
			return hdr, 0, 0, streamerr.Truncated("cpsz header", "%d bytes, v3 needs at least %d", len(data), headerBytesV3+trailerBytes)
		}
		stored := binary.LittleEndian.Uint32(data[headerBytes:])
		if got := crc32.Checksum(data[:headerBytes], crcTable); got != stored {
			return hdr, 0, 0, streamerr.Corrupt("cpsz header", "header CRC32C %08x, stored %08x", got, stored)
		}
		off = headerBytesV3
		end, err = verifyTrailer(data)
		if err != nil {
			return hdr, 0, 0, err
		}
	}
	hdr.dim = int(data[5])
	hdr.mode = ebound.Mode(data[6])
	hdr.temporal = data[7]&temporalFlag != 0
	hdr.predictor = Predictor(data[7] &^ temporalFlag)
	if hdr.predictor != PredictorLorenzo && hdr.predictor != PredictorInterpolation {
		return hdr, 0, 0, streamerr.Header("cpsz header", "unknown predictor %d", hdr.predictor)
	}
	hdr.nx = int(binary.LittleEndian.Uint32(data[8:]))
	hdr.ny = int(binary.LittleEndian.Uint32(data[12:]))
	hdr.nz = int(binary.LittleEndian.Uint32(data[16:]))
	hdr.errBound = float64frombits(binary.LittleEndian.Uint64(data[20:]))
	if hdr.dim != 2 && hdr.dim != 3 {
		return hdr, 0, 0, streamerr.Header("cpsz header", "invalid dimension %d", hdr.dim)
	}
	return hdr, off, end, nil
}

// verifyTrailer checks the v3 whole-stream trailer and returns the offset
// of the trailer (one past the last section byte). The declared payload
// length must match the stream exactly — a lying trailer is corruption,
// a missing one truncation.
func verifyTrailer(data []byte) (int, error) {
	plen := binary.LittleEndian.Uint64(data[len(data)-trailerBytes:])
	if plen != uint64(len(data)-trailerBytes) {
		if plen > uint64(len(data)-trailerBytes) {
			return 0, streamerr.Truncated("cpsz trailer", "trailer declares %d payload bytes, stream carries %d", plen, len(data)-trailerBytes)
		}
		return 0, streamerr.Corrupt("cpsz trailer", "trailer declares %d payload bytes, stream carries %d", plen, len(data)-trailerBytes)
	}
	stored := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(data[:len(data)-4], crcTable); got != stored {
		return 0, streamerr.Corrupt("cpsz trailer", "stream CRC32C %08x, stored %08x", got, stored)
	}
	return len(data) - trailerBytes, nil
}

// parseSectionsV1 reads the legacy layout: three length-prefixed DEFLATE
// payloads, the first two wrapping whole-section Huffman streams. Kept so
// pre-v2 archives and the fuzz corpus still decode.
func parseSectionsV1(data []byte, off int) (ebSyms, quantSyms []uint32, raw []byte, err error) {
	sections := make([][]byte, 3)
	names := [3]string{"eb-symbols", "quant-symbols", "raw"}
	for i := range sections {
		if off+8 > len(data) {
			return nil, nil, nil, streamerr.Truncated(names[i], "section length cut off").WithOffset(int64(off))
		}
		n := binary.LittleEndian.Uint64(data[off:])
		off += 8
		if uint64(off)+n > uint64(len(data)) {
			return nil, nil, nil, streamerr.Truncated(names[i], "section claims %d bytes, %d remain", n, len(data)-off).WithOffset(int64(off))
		}
		packed := data[off : off+int(n)]
		off += int(n)
		// v1 carries no uncompressed sizes; cap the inflation at the
		// maximum a DEFLATE payload of this size can legitimately
		// produce, so a corrupt stream cannot drive an unbounded
		// allocation.
		sections[i], err = inflateCap(packed, maxDeflateRatio*uint64(len(packed))+64)
		if err != nil {
			return nil, nil, nil, streamerr.Wrap(streamerr.ErrCorrupt, names[i], err)
		}
	}
	if ebSyms, err = huffman.Decode(sections[0]); err != nil {
		return nil, nil, nil, streamerr.Wrap(streamerr.ErrCorrupt, "eb-symbols", err)
	}
	if quantSyms, err = huffman.Decode(sections[1]); err != nil {
		return nil, nil, nil, streamerr.Wrap(streamerr.ErrCorrupt, "quant-symbols", err)
	}
	return ebSyms, quantSyms, sections[2], nil
}

// parseSectionsV2 reads the chunked layout shared by v2 and v3, inflating
// and entropy-decoding the chunks of each section concurrently. withCRC
// selects the v3 directory layout, whose per-chunk checksums the workers
// verify before inflating.
func parseSectionsV2(data []byte, off, workers int, withCRC bool, c *obs.Collector) (ebSyms, quantSyms []uint32, raw []byte, err error) {
	if ebSyms, off, err = parseSymbolSection(data, off, workers, withCRC, "eb-symbols", c); err != nil {
		return nil, nil, nil, err
	}
	if quantSyms, off, err = parseSymbolSection(data, off, workers, withCRC, "quant-symbols", c); err != nil {
		return nil, nil, nil, err
	}
	if raw, off, err = parseRawSection(data, off, workers, withCRC, c); err != nil {
		return nil, nil, nil, err
	}
	if off != len(data) {
		return nil, nil, nil, streamerr.Corrupt("cpsz stream", "%d trailing bytes after final section", len(data)-off).WithOffset(int64(off))
	}
	return ebSyms, quantSyms, raw, nil
}

// chunkDirectory holds the validated per-chunk extents of one section.
type chunkDirectory struct {
	bounds  [][2]int // unit extents (symbols or raw bytes) per chunk
	usizes  []int    // uncompressed payload bytes per chunk
	crcs    []uint32 // CRC32C per compressed payload (v3 only, else nil)
	offsets []int    // payload start offsets relative to the payload base
	total   int      // total payload bytes
}

// payloadAt returns chunk i's compressed payload within the section
// payload base.
func (d *chunkDirectory) payloadAt(payload []byte, i int) []byte {
	end := d.total
	if i+1 < len(d.offsets) {
		end = d.offsets[i+1]
	}
	return payload[d.offsets[i]:end]
}

// parseChunkDirectory reads and validates a chunk directory at data[off:].
// n is the section length in units; maxUsize returns the largest plausible
// uncompressed chunk size for a given unit extent, and minUsize the
// smallest. Every violation is a hard error: chunk-count lies, extent
// overflows, and oversize claims are rejected before any allocation
// proportional to them. withCRC selects the v3 entry layout carrying a
// CRC32C of each compressed payload.
func parseChunkDirectory(data []byte, off, n int, withCRC bool, section string, maxUsize, minUsize func(extent int) int) (chunkDirectory, int, error) {
	var dir chunkDirectory
	cc, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return dir, 0, streamerr.Truncated(section, "chunk count cut off").WithOffset(int64(off))
	}
	off += sz
	if cc == 0 || cc > uint64(n) {
		return dir, 0, streamerr.Corrupt(section, "invalid chunk count %d for %d units", cc, n)
	}
	// Every directory entry takes at least 2 bytes (plus the CRC column).
	entryMin := uint64(2)
	if withCRC {
		entryMin += 4
	}
	if cc > uint64(len(data)-off)/entryMin+1 {
		return dir, 0, streamerr.Corrupt(section, "chunk count %d exceeds stream capacity", cc)
	}
	dir.bounds = parallel.Ranges(n, int(cc))
	if len(dir.bounds) != int(cc) {
		return dir, 0, streamerr.Corrupt(section, "chunk count %d does not partition %d units", cc, n)
	}
	dir.usizes = make([]int, cc)
	dir.offsets = make([]int, cc)
	if withCRC {
		dir.crcs = make([]uint32, cc)
	}
	for i := range dir.usizes {
		usize, sz := binary.Uvarint(data[off:])
		if sz <= 0 {
			return dir, 0, streamerr.Truncated(section, "directory entry cut off").WithChunk(i).WithOffset(int64(off))
		}
		off += sz
		csize, sz := binary.Uvarint(data[off:])
		if sz <= 0 {
			return dir, 0, streamerr.Truncated(section, "directory entry cut off").WithChunk(i).WithOffset(int64(off))
		}
		off += sz
		if withCRC {
			if off+4 > len(data) {
				return dir, 0, streamerr.Truncated(section, "directory CRC cut off").WithChunk(i).WithOffset(int64(off))
			}
			dir.crcs[i] = binary.LittleEndian.Uint32(data[off:])
			off += 4
		}
		extent := dir.bounds[i][1] - dir.bounds[i][0]
		if usize > uint64(maxUsize(extent)) || usize < uint64(minUsize(extent)) {
			return dir, 0, streamerr.Corrupt(section, "chunk claims %d uncompressed bytes for %d units", usize, extent).WithChunk(i)
		}
		if csize > uint64(len(data)-off) {
			return dir, 0, streamerr.Truncated(section, "chunk claims %d compressed bytes, %d remain", csize, len(data)-off).WithChunk(i)
		}
		// DEFLATE cannot legitimately expand beyond maxDeflateRatio, so an
		// uncompressed size far above the payload marks a decompression
		// bomb; rejecting it here bounds every allocation below by what
		// the stream could actually inflate to.
		if usize > maxDeflateRatio*csize+64 {
			return dir, 0, streamerr.Corrupt(section, "chunk claims %d uncompressed bytes from a %d-byte payload", usize, csize).WithChunk(i)
		}
		dir.usizes[i] = int(usize)
		dir.offsets[i] = dir.total
		dir.total += int(csize)
		if dir.total > len(data)-off {
			return dir, 0, streamerr.Truncated(section, "chunk payloads exceed stream length").WithChunk(i)
		}
	}
	return dir, off, nil
}

// verifyChunk checks a v3 per-chunk checksum; it runs inside the parallel
// section workers so integrity verification costs no extra pass over the
// stream.
func (d *chunkDirectory) verifyChunk(payload []byte, i int, section string) error {
	if d.crcs == nil {
		return nil
	}
	if got := crc32.Checksum(d.payloadAt(payload, i), crcTable); got != d.crcs[i] {
		return streamerr.Corrupt(section, "chunk CRC32C %08x, directory says %08x", got, d.crcs[i]).WithChunk(i)
	}
	return nil
}

// parseSymbolSection reads one chunked symbol section, returning the
// decoded symbols and the offset past the section.
func parseSymbolSection(data []byte, off, workers int, withCRC bool, section string, c *obs.Collector) ([]uint32, int, error) {
	// The cursor is maintained by validated returns up the call chain, but
	// it indexes the stream below, so enforce the bound locally.
	if off < 0 || off > len(data) {
		return nil, 0, streamerr.Corrupt(section, "section offset %d outside %d-byte stream", off, len(data))
	}
	count, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return nil, 0, streamerr.Truncated(section, "symbol count cut off").WithOffset(int64(off))
	}
	off += sz
	if count == 0 {
		return nil, off, nil
	}
	// Every symbol takes at least one bit of some chunk; reject counts the
	// stream cannot back before allocating the output.
	if count > 8*maxDeflateRatio*uint64(len(data)-off)+64 {
		return nil, 0, streamerr.Corrupt(section, "symbol count %d exceeds stream capacity", count)
	}
	table, consumed, err := huffman.ParseTable(data[off:], count)
	if err != nil {
		return nil, 0, streamerr.Wrap(streamerr.ErrCorrupt, section, err)
	}
	off += consumed
	dir, off, err := parseChunkDirectory(data, off, int(count), withCRC, section,
		// A chunk of n symbols packs between n and n*MaxCodeLen bits.
		func(extent int) int { return extent*huffman.MaxCodeLen/8 + 8 },
		func(extent int) int { return (extent + 7) / 8 },
	)
	if err != nil {
		return nil, 0, err
	}
	// parseChunkDirectory keeps dir.total within the remaining stream;
	// re-validate here because the slice below depends on it.
	if dir.total > len(data)-off {
		return nil, 0, streamerr.Truncated(section, "chunk payloads exceed stream length").WithOffset(int64(off))
	}
	payload := data[off : off+dir.total]
	out := make([]uint32, count)
	err = parallel.ForErr(len(dir.bounds), workers, 1, func(i int) error {
		if err := dir.verifyChunk(payload, i, section); err != nil {
			return err
		}
		lo, hi := dir.bounds[i][0], dir.bounds[i][1]
		bits, err := inflateExact(dir.payloadAt(payload, i), dir.usizes[i], getChunkBuf())
		if err != nil {
			return streamerr.Wrap(streamerr.ErrCorrupt, section, err).WithChunk(i)
		}
		if err := table.DecodeChunk(bits, out[lo:hi]); err != nil {
			return streamerr.Wrap(streamerr.ErrCorrupt, section, err).WithChunk(i)
		}
		putChunkBuf(bits)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	c.Add(obs.CtrChunksDecoded, int64(len(dir.bounds)))
	return out, off + dir.total, nil
}

// parseRawSection reads the verbatim-float section, inflating chunks
// concurrently straight into their disjoint extents of the output.
func parseRawSection(data []byte, off, workers int, withCRC bool, c *obs.Collector) ([]byte, int, error) {
	const section = "raw"
	if off < 0 || off > len(data) {
		return nil, 0, streamerr.Corrupt(section, "section offset %d outside %d-byte stream", off, len(data))
	}
	rawLen, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return nil, 0, streamerr.Truncated(section, "section length cut off").WithOffset(int64(off))
	}
	off += sz
	if rawLen == 0 {
		return nil, off, nil
	}
	if rawLen > maxDeflateRatio*uint64(len(data)-off)+64 {
		return nil, 0, streamerr.Corrupt(section, "raw length %d exceeds stream capacity", rawLen)
	}
	dir, off, err := parseChunkDirectory(data, off, int(rawLen), withCRC, section,
		// Raw chunk extents are byte counts, so the directory entry must
		// match exactly.
		func(extent int) int { return extent },
		func(extent int) int { return extent },
	)
	if err != nil {
		return nil, 0, err
	}
	if dir.total > len(data)-off {
		return nil, 0, streamerr.Truncated(section, "chunk payloads exceed stream length").WithOffset(int64(off))
	}
	payload := data[off : off+dir.total]
	raw := make([]byte, rawLen)
	err = parallel.ForErr(len(dir.bounds), workers, 1, func(i int) error {
		if err := dir.verifyChunk(payload, i, section); err != nil {
			return err
		}
		lo, hi := dir.bounds[i][0], dir.bounds[i][1]
		if err := inflateInto(dir.payloadAt(payload, i), raw[lo:hi]); err != nil {
			return streamerr.Wrap(streamerr.ErrCorrupt, section, err).WithChunk(i)
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	c.Add(obs.CtrChunksDecoded, int64(len(dir.bounds)))
	return raw, off + dir.total, nil
}

// Verify checksum-scans a stream without decoding it: the header CRC, the
// whole-stream trailer, and every per-chunk checksum are verified, but no
// chunk is inflated and no symbol decoded, so scanning costs a small
// fraction of a full decompression. Streams older than v3 carry no
// checksums and are reported as ErrVersion.
func Verify(data []byte) (err error) {
	defer streamerr.Guard("cpsz", &err)
	hdr, off, end, err := parseHeader(data)
	if err != nil {
		return err
	}
	if data[4] < formatV3 {
		return streamerr.Version("cpsz", data[4]).WithOffset(4)
	}
	_ = hdr
	data = data[:end]
	for _, section := range []string{"eb-symbols", "quant-symbols"} {
		if off, err = scanSymbolSection(data, off, section); err != nil {
			return err
		}
	}
	if off, err = scanRawSection(data, off); err != nil {
		return err
	}
	if off != len(data) {
		return streamerr.Corrupt("cpsz stream", "%d trailing bytes after final section", len(data)-off).WithOffset(int64(off))
	}
	return nil
}

// scanSymbolSection walks one symbol section verifying chunk checksums
// without inflating or decoding.
func scanSymbolSection(data []byte, off int, section string) (int, error) {
	if off < 0 || off > len(data) {
		return 0, streamerr.Corrupt(section, "section offset %d outside %d-byte stream", off, len(data))
	}
	count, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return 0, streamerr.Truncated(section, "symbol count cut off").WithOffset(int64(off))
	}
	off += sz
	if count == 0 {
		return off, nil
	}
	if count > 8*maxDeflateRatio*uint64(len(data)-off)+64 {
		return 0, streamerr.Corrupt(section, "symbol count %d exceeds stream capacity", count)
	}
	_, consumed, err := huffman.ParseTable(data[off:], count)
	if err != nil {
		return 0, streamerr.Wrap(streamerr.ErrCorrupt, section, err)
	}
	off += consumed
	dir, off, err := parseChunkDirectory(data, off, int(count), true, section,
		func(extent int) int { return extent*huffman.MaxCodeLen/8 + 8 },
		func(extent int) int { return (extent + 7) / 8 },
	)
	if err != nil {
		return 0, err
	}
	if dir.total > len(data)-off {
		return 0, streamerr.Truncated(section, "chunk payloads exceed stream length").WithOffset(int64(off))
	}
	if err := scanChunks(&dir, data[off:off+dir.total], section); err != nil {
		return 0, err
	}
	return off + dir.total, nil
}

// scanRawSection walks the raw section verifying chunk checksums without
// inflating.
func scanRawSection(data []byte, off int) (int, error) {
	const section = "raw"
	if off < 0 || off > len(data) {
		return 0, streamerr.Corrupt(section, "section offset %d outside %d-byte stream", off, len(data))
	}
	rawLen, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return 0, streamerr.Truncated(section, "section length cut off").WithOffset(int64(off))
	}
	off += sz
	if rawLen == 0 {
		return off, nil
	}
	if rawLen > maxDeflateRatio*uint64(len(data)-off)+64 {
		return 0, streamerr.Corrupt(section, "raw length %d exceeds stream capacity", rawLen)
	}
	dir, off, err := parseChunkDirectory(data, off, int(rawLen), true, section,
		func(extent int) int { return extent },
		func(extent int) int { return extent },
	)
	if err != nil {
		return 0, err
	}
	if dir.total > len(data)-off {
		return 0, streamerr.Truncated(section, "chunk payloads exceed stream length").WithOffset(int64(off))
	}
	if err := scanChunks(&dir, data[off:off+dir.total], section); err != nil {
		return 0, err
	}
	return off + dir.total, nil
}

func scanChunks(dir *chunkDirectory, payload []byte, section string) error {
	return parallel.ForErr(len(dir.bounds), 0, 1, func(i int) error {
		return dir.verifyChunk(payload, i, section)
	})
}

// flateWriterPool recycles flate.Writer instances (each owns a ~300 KiB
// dictionary/window state) across sections and chunks.
var flateWriterPool sync.Pool

// chunkBufPool recycles the per-chunk Huffman bit buffers used on both the
// encode and decode sides.
var chunkBufPool sync.Pool

func getChunkBuf() []byte {
	if p, ok := chunkBufPool.Get().(*[]byte); ok {
		return (*p)[:0]
	}
	return make([]byte, 0, chunkSymbols)
}

func putChunkBuf(b []byte) {
	chunkBufPool.Put(&b)
}

// deflate DEFLATE-compresses data with a pooled writer.
func deflate(data []byte) ([]byte, error) {
	var out bytes.Buffer
	w, _ := flateWriterPool.Get().(*flate.Writer)
	if w == nil {
		var err error
		w, err = flate.NewWriter(&out, flate.DefaultCompression)
		if err != nil {
			return nil, err
		}
	} else {
		w.Reset(&out)
	}
	defer flateWriterPool.Put(w)
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// inflateCap inflates data, failing if the output exceeds max bytes; the
// cap turns decompression bombs into errors instead of allocations.
func inflateCap(data []byte, max uint64) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, int64(max)+1))
	if err != nil {
		return nil, err
	}
	if uint64(len(out)) > max {
		return nil, streamerr.Corrupt("inflate", "payload exceeds %d-byte cap", max)
	}
	return out, nil
}

// inflateExact inflates a chunk payload into buf (grown if needed) and
// requires the output length to match the directory's uncompressed size.
func inflateExact(data []byte, usize int, buf []byte) ([]byte, error) {
	if cap(buf) < usize {
		buf = make([]byte, usize)
	}
	buf = buf[:usize]
	if err := inflateInto(data, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// inflateInto inflates data into exactly dst, rejecting payloads that
// inflate short or long.
func inflateInto(data []byte, dst []byte) error {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	if _, err := io.ReadFull(r, dst); err != nil {
		return streamerr.Corrupt("inflate", "chunk inflates short of %d bytes: %v", len(dst), err)
	}
	var probe [1]byte
	if n, _ := r.Read(probe[:]); n != 0 {
		return streamerr.Corrupt("inflate", "chunk inflates past its declared %d bytes", len(dst))
	}
	return nil
}

func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
