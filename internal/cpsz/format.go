package cpsz

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/huffman"
)

const streamMagic = "CPSZ"
const formatVersion = 1

// header mirrors the on-wire stream header.
type header struct {
	dim        int
	nx, ny, nz int
	mode       ebound.Mode
	predictor  Predictor
	temporal   bool
	errBound   float64
}

// temporalFlag marks streams predicted against a previous frame.
const temporalFlag = 0x80

// serialize assembles the final stream: header, Huffman+DEFLATE packed
// symbol sections, and a DEFLATE packed raw-float section. This mirrors
// SZ's Huffman + lossless-backend pipeline.
func serialize(f *field.Field, opts Options, ebSyms, quantSyms []uint32, raw []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(streamMagic)
	buf.WriteByte(formatVersion)
	buf.WriteByte(byte(f.Dim()))
	buf.WriteByte(byte(opts.Mode))
	pb := byte(opts.Predictor)
	if opts.Reference != nil {
		pb |= temporalFlag
	}
	buf.WriteByte(pb)
	nx, ny, nz := f.Grid.Dims()
	for _, v := range []uint32{uint32(nx), uint32(ny), uint32(nz)} {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	if err := binary.Write(&buf, binary.LittleEndian, opts.ErrBound); err != nil {
		return nil, err
	}
	for _, section := range [][]byte{huffman.Encode(ebSyms), huffman.Encode(quantSyms), raw} {
		packed, err := deflate(section)
		if err != nil {
			return nil, err
		}
		if err := binary.Write(&buf, binary.LittleEndian, uint64(len(packed))); err != nil {
			return nil, err
		}
		buf.Write(packed)
	}
	return buf.Bytes(), nil
}

// parse splits a stream back into its header and sections.
func parse(data []byte) (hdr header, ebSyms, quantSyms []uint32, raw []byte, err error) {
	if len(data) < 28 {
		return hdr, nil, nil, nil, errTruncated
	}
	if string(data[:4]) != streamMagic {
		return hdr, nil, nil, nil, errBadMagic
	}
	if data[4] != formatVersion {
		return hdr, nil, nil, nil, fmt.Errorf("cpsz: unsupported version %d", data[4])
	}
	hdr.dim = int(data[5])
	hdr.mode = ebound.Mode(data[6])
	hdr.temporal = data[7]&temporalFlag != 0
	hdr.predictor = Predictor(data[7] &^ temporalFlag)
	if hdr.predictor != PredictorLorenzo && hdr.predictor != PredictorInterpolation {
		return hdr, nil, nil, nil, fmt.Errorf("cpsz: unknown predictor %d", hdr.predictor)
	}
	off := 8
	hdr.nx = int(binary.LittleEndian.Uint32(data[off:]))
	hdr.ny = int(binary.LittleEndian.Uint32(data[off+4:]))
	hdr.nz = int(binary.LittleEndian.Uint32(data[off+8:]))
	off += 12
	hdr.errBound = float64frombits(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	if hdr.dim != 2 && hdr.dim != 3 {
		return hdr, nil, nil, nil, fmt.Errorf("cpsz: invalid dimension %d", hdr.dim)
	}
	sections := make([][]byte, 3)
	for i := range sections {
		if off+8 > len(data) {
			return hdr, nil, nil, nil, errTruncated
		}
		n := binary.LittleEndian.Uint64(data[off:])
		off += 8
		if uint64(off)+n > uint64(len(data)) {
			return hdr, nil, nil, nil, errTruncated
		}
		packed := data[off : off+int(n)]
		off += int(n)
		sections[i], err = inflate(packed)
		if err != nil {
			return hdr, nil, nil, nil, fmt.Errorf("cpsz: section %d: %w", i, err)
		}
	}
	if ebSyms, err = huffman.Decode(sections[0]); err != nil {
		return hdr, nil, nil, nil, fmt.Errorf("cpsz: eb symbols: %w", err)
	}
	if quantSyms, err = huffman.Decode(sections[1]); err != nil {
		return hdr, nil, nil, nil, fmt.Errorf("cpsz: quant symbols: %w", err)
	}
	return hdr, ebSyms, quantSyms, sections[2], nil
}

func deflate(data []byte) ([]byte, error) {
	var out bytes.Buffer
	w, err := flate.NewWriter(&out, flate.DefaultCompression)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

func inflate(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	return io.ReadAll(r)
}

func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
