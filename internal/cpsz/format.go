package cpsz

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"

	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/huffman"
	"tspsz/internal/parallel"
)

const streamMagic = "CPSZ"

// Stream format versions. v1 runs each whole symbol section through one
// Huffman pass and one DEFLATE stream, serializing the entropy stage; v2
// shards every section into fixed-extent chunks coded against a shared
// per-section codebook, so both directions run the entropy stage in
// parallel (§VII). The writer always emits v2; the reader accepts both.
const (
	formatV1      = 1
	formatV2      = 2
	formatVersion = formatV2
)

// chunkSymbols is the entropy-chunk extent of the symbol sections and
// chunkRawBytes the extent of the verbatim-float section. Chunk counts
// derive from the section length alone and boundaries from
// parallel.Ranges over that count, so archives are byte-identical for
// every worker count.
const (
	chunkSymbols  = 1 << 15
	chunkRawBytes = 1 << 17
)

// maxDeflateRatio bounds plausible DEFLATE expansion (the format's
// theoretical maximum is ~1032:1). v1 sections carry no uncompressed size,
// so inflation is capped at this multiple of the compressed payload;
// anything larger is a corrupt or adversarial stream, not a valid archive.
const maxDeflateRatio = 1032

// header mirrors the on-wire stream header.
type header struct {
	dim        int
	nx, ny, nz int
	mode       ebound.Mode
	predictor  Predictor
	temporal   bool
	errBound   float64
}

// temporalFlag marks streams predicted against a previous frame.
const temporalFlag = 0x80

// headerBytes is the fixed-width header size shared by v1 and v2.
const headerBytes = 28

// serialize assembles the final stream: header, chunked Huffman+DEFLATE
// symbol sections, and a chunked DEFLATE raw-float section. This mirrors
// SZ's Huffman + lossless-backend pipeline with the entropy stage sharded
// across opts.Workers.
func serialize(f *field.Field, opts Options, ebSyms, quantSyms []uint32, raw []byte) ([]byte, error) {
	workers := parallel.Workers(opts.Workers)
	out := make([]byte, 0, headerBytes+len(raw)/2+(len(ebSyms)+len(quantSyms))/4)
	out = append(out, streamMagic...)
	out = append(out, formatVersion, byte(f.Dim()), byte(opts.Mode))
	pb := byte(opts.Predictor)
	if opts.Reference != nil {
		pb |= temporalFlag
	}
	out = append(out, pb)
	nx, ny, nz := f.Grid.Dims()
	for _, v := range []uint32{uint32(nx), uint32(ny), uint32(nz)} {
		out = binary.LittleEndian.AppendUint32(out, v)
	}
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(opts.ErrBound))
	var err error
	for _, syms := range [][]uint32{ebSyms, quantSyms} {
		if out, err = appendSymbolSection(out, syms, workers); err != nil {
			return nil, err
		}
	}
	return appendRawSection(out, raw, workers)
}

// chunkCount returns how many fixed-extent chunks a section of n units
// splits into; it depends only on n, never on the worker count.
func chunkCount(n, extent int) int {
	c := (n + extent - 1) / extent
	if c < 1 {
		c = 1
	}
	return c
}

// appendSymbolSection writes one v2 symbol section: uvarint symbol count,
// the shared canonical codebook, a uvarint chunk count, a directory of
// per-chunk (uncompressed, compressed) byte sizes, then the chunk
// payloads. Chunks are Huffman-packed and DEFLATEd concurrently; the
// directory lets the reader inflate and decode them concurrently too.
func appendSymbolSection(dst []byte, syms []uint32, workers int) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(syms)))
	if len(syms) == 0 {
		return dst, nil
	}
	table := huffman.BuildTable(syms, workers)
	dst = table.AppendTable(dst)
	bounds := parallel.Ranges(len(syms), chunkCount(len(syms), chunkSymbols))
	usizes := make([]int, len(bounds))
	packed := make([][]byte, len(bounds))
	errs := make([]error, len(bounds))
	parallel.For(len(bounds), workers, 1, func(i int) {
		bits := getChunkBuf()
		bits = table.EncodeChunk(bits[:0], syms[bounds[i][0]:bounds[i][1]])
		usizes[i] = len(bits)
		packed[i], errs[i] = deflate(bits)
		putChunkBuf(bits)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(bounds)))
	for i := range bounds {
		dst = binary.AppendUvarint(dst, uint64(usizes[i]))
		dst = binary.AppendUvarint(dst, uint64(len(packed[i])))
	}
	for i := range bounds {
		dst = append(dst, packed[i]...)
	}
	return dst, nil
}

// appendRawSection writes the verbatim-float section as concurrently
// DEFLATEd chunks with the same (uncompressed, compressed) directory as
// the symbol sections; the uncompressed entries are redundant with the
// section length but serve as a decode-side cross-check.
func appendRawSection(dst []byte, raw []byte, workers int) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(raw)))
	if len(raw) == 0 {
		return dst, nil
	}
	bounds := parallel.Ranges(len(raw), chunkCount(len(raw), chunkRawBytes))
	packed := make([][]byte, len(bounds))
	errs := make([]error, len(bounds))
	parallel.For(len(bounds), workers, 1, func(i int) {
		packed[i], errs[i] = deflate(raw[bounds[i][0]:bounds[i][1]])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(bounds)))
	for i := range bounds {
		dst = binary.AppendUvarint(dst, uint64(bounds[i][1]-bounds[i][0]))
		dst = binary.AppendUvarint(dst, uint64(len(packed[i])))
	}
	for i := range bounds {
		dst = append(dst, packed[i]...)
	}
	return dst, nil
}

// parse splits a stream back into its header and sections, dispatching on
// the format version byte.
func parse(data []byte, workers int) (hdr header, ebSyms, quantSyms []uint32, raw []byte, err error) {
	if len(data) < headerBytes {
		return hdr, nil, nil, nil, errTruncated
	}
	if string(data[:4]) != streamMagic {
		return hdr, nil, nil, nil, errBadMagic
	}
	version := data[4]
	if version != formatV1 && version != formatV2 {
		return hdr, nil, nil, nil, fmt.Errorf("cpsz: unsupported version %d", version)
	}
	hdr.dim = int(data[5])
	hdr.mode = ebound.Mode(data[6])
	hdr.temporal = data[7]&temporalFlag != 0
	hdr.predictor = Predictor(data[7] &^ temporalFlag)
	if hdr.predictor != PredictorLorenzo && hdr.predictor != PredictorInterpolation {
		return hdr, nil, nil, nil, fmt.Errorf("cpsz: unknown predictor %d", hdr.predictor)
	}
	off := 8
	hdr.nx = int(binary.LittleEndian.Uint32(data[off:]))
	hdr.ny = int(binary.LittleEndian.Uint32(data[off+4:]))
	hdr.nz = int(binary.LittleEndian.Uint32(data[off+8:]))
	off += 12
	hdr.errBound = float64frombits(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	if hdr.dim != 2 && hdr.dim != 3 {
		return hdr, nil, nil, nil, fmt.Errorf("cpsz: invalid dimension %d", hdr.dim)
	}
	if version == formatV1 {
		ebSyms, quantSyms, raw, err = parseSectionsV1(data, off)
	} else {
		ebSyms, quantSyms, raw, err = parseSectionsV2(data, off, workers)
	}
	if err != nil {
		return hdr, nil, nil, nil, err
	}
	return hdr, ebSyms, quantSyms, raw, nil
}

// parseSectionsV1 reads the legacy layout: three length-prefixed DEFLATE
// payloads, the first two wrapping whole-section Huffman streams. Kept so
// pre-v2 archives and the fuzz corpus still decode.
func parseSectionsV1(data []byte, off int) (ebSyms, quantSyms []uint32, raw []byte, err error) {
	sections := make([][]byte, 3)
	for i := range sections {
		if off+8 > len(data) {
			return nil, nil, nil, errTruncated
		}
		n := binary.LittleEndian.Uint64(data[off:])
		off += 8
		if uint64(off)+n > uint64(len(data)) {
			return nil, nil, nil, errTruncated
		}
		packed := data[off : off+int(n)]
		off += int(n)
		// v1 carries no uncompressed sizes; cap the inflation at the
		// maximum a DEFLATE payload of this size can legitimately
		// produce, so a corrupt stream cannot drive an unbounded
		// allocation.
		sections[i], err = inflateCap(packed, maxDeflateRatio*uint64(len(packed))+64)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("cpsz: section %d: %w", i, err)
		}
	}
	if ebSyms, err = huffman.Decode(sections[0]); err != nil {
		return nil, nil, nil, fmt.Errorf("cpsz: eb symbols: %w", err)
	}
	if quantSyms, err = huffman.Decode(sections[1]); err != nil {
		return nil, nil, nil, fmt.Errorf("cpsz: quant symbols: %w", err)
	}
	return ebSyms, quantSyms, sections[2], nil
}

// parseSectionsV2 reads the chunked layout, inflating and entropy-decoding
// the chunks of each section concurrently.
func parseSectionsV2(data []byte, off, workers int) (ebSyms, quantSyms []uint32, raw []byte, err error) {
	if ebSyms, off, err = parseSymbolSection(data, off, workers); err != nil {
		return nil, nil, nil, fmt.Errorf("cpsz: eb symbols: %w", err)
	}
	if quantSyms, off, err = parseSymbolSection(data, off, workers); err != nil {
		return nil, nil, nil, fmt.Errorf("cpsz: quant symbols: %w", err)
	}
	if raw, off, err = parseRawSection(data, off, workers); err != nil {
		return nil, nil, nil, fmt.Errorf("cpsz: raw section: %w", err)
	}
	if off != len(data) {
		return nil, nil, nil, fmt.Errorf("cpsz: %d trailing bytes after final section", len(data)-off)
	}
	return ebSyms, quantSyms, raw, nil
}

// chunkDirectory holds the validated per-chunk extents of one section.
type chunkDirectory struct {
	bounds  [][2]int // unit extents (symbols or raw bytes) per chunk
	usizes  []int    // uncompressed payload bytes per chunk
	offsets []int    // payload start offsets relative to the payload base
	total   int      // total payload bytes
}

// parseChunkDirectory reads and validates a chunk directory at data[off:].
// n is the section length in units; maxUsize returns the largest plausible
// uncompressed chunk size for a given unit extent, and minUsize the
// smallest. Every violation is a hard error: chunk-count lies, extent
// overflows, and oversize claims are rejected before any allocation
// proportional to them.
func parseChunkDirectory(data []byte, off, n int, maxUsize, minUsize func(extent int) int) (chunkDirectory, int, error) {
	var dir chunkDirectory
	cc, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return dir, 0, fmt.Errorf("truncated chunk count")
	}
	off += sz
	if cc == 0 || cc > uint64(n) {
		return dir, 0, fmt.Errorf("invalid chunk count %d for %d units", cc, n)
	}
	// Every directory entry takes at least 2 bytes.
	if cc > uint64(len(data)-off)/2+1 {
		return dir, 0, fmt.Errorf("chunk count %d exceeds stream capacity", cc)
	}
	dir.bounds = parallel.Ranges(n, int(cc))
	if len(dir.bounds) != int(cc) {
		return dir, 0, fmt.Errorf("chunk count %d does not partition %d units", cc, n)
	}
	dir.usizes = make([]int, cc)
	dir.offsets = make([]int, cc)
	for i := range dir.usizes {
		usize, sz := binary.Uvarint(data[off:])
		if sz <= 0 {
			return dir, 0, fmt.Errorf("truncated directory entry %d", i)
		}
		off += sz
		csize, sz := binary.Uvarint(data[off:])
		if sz <= 0 {
			return dir, 0, fmt.Errorf("truncated directory entry %d", i)
		}
		off += sz
		extent := dir.bounds[i][1] - dir.bounds[i][0]
		if usize > uint64(maxUsize(extent)) || usize < uint64(minUsize(extent)) {
			return dir, 0, fmt.Errorf("chunk %d claims %d uncompressed bytes for %d units", i, usize, extent)
		}
		if csize > uint64(len(data)-off) {
			return dir, 0, fmt.Errorf("chunk %d claims %d compressed bytes, %d remain", i, csize, len(data)-off)
		}
		// DEFLATE cannot legitimately expand beyond maxDeflateRatio, so an
		// uncompressed size far above the payload marks a decompression
		// bomb; rejecting it here bounds every allocation below by what
		// the stream could actually inflate to.
		if usize > maxDeflateRatio*csize+64 {
			return dir, 0, fmt.Errorf("chunk %d claims %d uncompressed bytes from a %d-byte payload", i, usize, csize)
		}
		dir.usizes[i] = int(usize)
		dir.offsets[i] = dir.total
		dir.total += int(csize)
		if dir.total > len(data)-off {
			return dir, 0, fmt.Errorf("chunk payloads exceed stream length")
		}
	}
	return dir, off, nil
}

// parseSymbolSection reads one v2 symbol section, returning the decoded
// symbols and the offset past the section.
func parseSymbolSection(data []byte, off, workers int) ([]uint32, int, error) {
	count, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return nil, 0, fmt.Errorf("truncated symbol count")
	}
	off += sz
	if count == 0 {
		return nil, off, nil
	}
	// Every symbol takes at least one bit of some chunk; reject counts the
	// stream cannot back before allocating the output.
	if count > 8*maxDeflateRatio*uint64(len(data)-off)+64 {
		return nil, 0, fmt.Errorf("symbol count %d exceeds stream capacity", count)
	}
	table, consumed, err := huffman.ParseTable(data[off:], count)
	if err != nil {
		return nil, 0, err
	}
	off += consumed
	dir, off, err := parseChunkDirectory(data, off, int(count),
		// A chunk of n symbols packs between n and n*MaxCodeLen bits.
		func(extent int) int { return extent*huffman.MaxCodeLen/8 + 8 },
		func(extent int) int { return (extent + 7) / 8 },
	)
	if err != nil {
		return nil, 0, err
	}
	payload := data[off : off+dir.total]
	out := make([]uint32, count)
	errs := make([]error, len(dir.bounds))
	parallel.For(len(dir.bounds), workers, 1, func(i int) {
		lo, hi := dir.bounds[i][0], dir.bounds[i][1]
		var end int
		if i+1 < len(dir.offsets) {
			end = dir.offsets[i+1]
		} else {
			end = dir.total
		}
		bits, err := inflateExact(payload[dir.offsets[i]:end], dir.usizes[i], getChunkBuf())
		if err != nil {
			errs[i] = fmt.Errorf("chunk %d: %w", i, err)
			return
		}
		if err := table.DecodeChunk(bits, out[lo:hi]); err != nil {
			errs[i] = fmt.Errorf("chunk %d: %w", i, err)
		}
		putChunkBuf(bits)
	})
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	return out, off + dir.total, nil
}

// parseRawSection reads the v2 verbatim-float section, inflating chunks
// concurrently straight into their disjoint extents of the output.
func parseRawSection(data []byte, off, workers int) ([]byte, int, error) {
	rawLen, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return nil, 0, fmt.Errorf("truncated length")
	}
	off += sz
	if rawLen == 0 {
		return nil, off, nil
	}
	if rawLen > maxDeflateRatio*uint64(len(data)-off)+64 {
		return nil, 0, fmt.Errorf("raw length %d exceeds stream capacity", rawLen)
	}
	dir, off, err := parseChunkDirectory(data, off, int(rawLen),
		// Raw chunk extents are byte counts, so the directory entry must
		// match exactly.
		func(extent int) int { return extent },
		func(extent int) int { return extent },
	)
	if err != nil {
		return nil, 0, err
	}
	payload := data[off : off+dir.total]
	raw := make([]byte, rawLen)
	errs := make([]error, len(dir.bounds))
	parallel.For(len(dir.bounds), workers, 1, func(i int) {
		lo, hi := dir.bounds[i][0], dir.bounds[i][1]
		var end int
		if i+1 < len(dir.offsets) {
			end = dir.offsets[i+1]
		} else {
			end = dir.total
		}
		errs[i] = inflateInto(payload[dir.offsets[i]:end], raw[lo:hi])
	})
	for i, err := range errs {
		if err != nil {
			return nil, 0, fmt.Errorf("chunk %d: %w", i, err)
		}
	}
	return raw, off + dir.total, nil
}

// flateWriterPool recycles flate.Writer instances (each owns a ~300 KiB
// dictionary/window state) across sections and chunks.
var flateWriterPool sync.Pool

// chunkBufPool recycles the per-chunk Huffman bit buffers used on both the
// encode and decode sides.
var chunkBufPool sync.Pool

func getChunkBuf() []byte {
	if p, ok := chunkBufPool.Get().(*[]byte); ok {
		return (*p)[:0]
	}
	return make([]byte, 0, chunkSymbols)
}

func putChunkBuf(b []byte) {
	chunkBufPool.Put(&b)
}

// deflate DEFLATE-compresses data with a pooled writer.
func deflate(data []byte) ([]byte, error) {
	var out bytes.Buffer
	w, _ := flateWriterPool.Get().(*flate.Writer)
	if w == nil {
		var err error
		w, err = flate.NewWriter(&out, flate.DefaultCompression)
		if err != nil {
			return nil, err
		}
	} else {
		w.Reset(&out)
	}
	defer flateWriterPool.Put(w)
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// inflateCap inflates data, failing if the output exceeds max bytes; the
// cap turns decompression bombs into errors instead of allocations.
func inflateCap(data []byte, max uint64) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, int64(max)+1))
	if err != nil {
		return nil, err
	}
	if uint64(len(out)) > max {
		return nil, fmt.Errorf("inflated payload exceeds %d-byte cap", max)
	}
	return out, nil
}

// inflateExact inflates a chunk payload into buf (grown if needed) and
// requires the output length to match the directory's uncompressed size.
func inflateExact(data []byte, usize int, buf []byte) ([]byte, error) {
	if cap(buf) < usize {
		buf = make([]byte, usize)
	}
	buf = buf[:usize]
	if err := inflateInto(data, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// inflateInto inflates data into exactly dst, rejecting payloads that
// inflate short or long.
func inflateInto(data []byte, dst []byte) error {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	if _, err := io.ReadFull(r, dst); err != nil {
		return fmt.Errorf("chunk inflates short of %d bytes: %w", len(dst), err)
	}
	var probe [1]byte
	if n, _ := r.Read(probe[:]); n != 0 {
		return fmt.Errorf("chunk inflates past its declared %d bytes", len(dst))
	}
	return nil
}

func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
