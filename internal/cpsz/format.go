package cpsz

import (
	"bytes"
	"compress/flate"
	"context"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"math/bits"

	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/huffman"
	"tspsz/internal/obs"
	"tspsz/internal/parallel"
	"tspsz/internal/streamerr"
)

const streamMagic = "CPSZ"

// Stream format versions. v1 runs each whole symbol section through one
// Huffman pass and one DEFLATE stream, serializing the entropy stage; v2
// shards every section into fixed-extent chunks coded against a shared
// per-section codebook, so both directions run the entropy stage in
// parallel (§VII); v3 keeps the v2 layout and makes it tamper-evident: a
// CRC32C over the fixed header, a per-chunk CRC32C column in the chunk
// directory (verified inside the parallel chunk-inflate workers, so
// integrity costs no extra pass), and a whole-stream trailer carrying the
// payload length plus a CRC32C over everything before it. v4 adds a
// per-chunk mode byte to the directory: a chunk whose symbol range fits k
// bits, and for which Huffman coding would gain less than ~5% over raw
// k-bit packing, is stored bit-packed (mode 1) instead of
// Huffman+DEFLATE (mode 0), turning its decode into a branch-light
// fixed-width loop; raw-section chunks that DEFLATE would expand are
// stored verbatim (mode 1) rather than inflated on decode. Within mode 0,
// v4 deflates the entropy-coded bits only when that actually shrinks them
// — usize == csize marks a chunk whose payload is the bitstream itself —
// so the common decode path touches no flate state at all. The writer
// always emits v4; the reader accepts all four.
const (
	formatV1      = 1
	formatV2      = 2
	formatV3      = 3
	formatV4      = 4
	formatVersion = formatV4
)

// Per-chunk modes of the v4 directory. Symbol sections: Huffman+DEFLATE or
// fixed-width bit packing. Raw section: DEFLATE or stored verbatim. The
// zero mode is in each case the pre-v4 behaviour, so pre-v4 directories
// (which carry no mode byte) read as all-zero modes.
const (
	symChunkHuffman = 0
	symChunkPacked  = 1
	rawChunkDeflate = 0
	rawChunkStored  = 1
	maxChunkMode    = 1
)

// Directory kinds select per-mode entry validation in parseChunkDirectory.
const (
	kindSymbols = iota
	kindRaw
)

// crcTable selects the Castagnoli polynomial, for which hash/crc32 uses
// the hardware CRC instructions on amd64 and arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// chunkSymbols is the entropy-chunk extent of the symbol sections and
// chunkRawBytes the extent of the verbatim-float section. Chunk counts
// derive from the section length alone and boundaries from the same
// n-into-cc partition as parallel.Ranges, so archives are byte-identical
// for every worker count.
const (
	chunkSymbols  = 1 << 15
	chunkRawBytes = 1 << 17
)

// entropyWorkerBytes is the minimum per-worker payload (in uncompressed
// unit bytes: 4 per symbol, 1 per raw byte) an entropy-stage shard must
// carry; parallel.SizedWorkers clamps the pool below that, so tiny
// sections never spawn more flate streams than they have work for.
const entropyWorkerBytes = 64 << 10

// maxDeflateRatio bounds plausible DEFLATE expansion (the format's
// theoretical maximum is ~1032:1). v1 sections carry no uncompressed size,
// so inflation is capped at this multiple of the compressed payload;
// anything larger is a corrupt or adversarial stream, not a valid archive.
const maxDeflateRatio = 1032

// header mirrors the on-wire stream header.
type header struct {
	dim        int
	nx, ny, nz int
	mode       ebound.Mode
	predictor  Predictor
	temporal   bool
	errBound   float64
}

// temporalFlag marks streams predicted against a previous frame.
const temporalFlag = 0x80

// headerBytes is the fixed-width header size shared by every version;
// v3+ appends headerCRCBytes of CRC32C over it. trailerBytes is the
// whole-stream trailer: a little-endian u64 payload length (everything
// before the trailer) followed by the CRC32C of those bytes.
const (
	headerBytes    = 28
	headerCRCBytes = 4
	headerBytesV3  = headerBytes + headerCRCBytes
	trailerBytes   = 12
)

// serialize assembles the final stream: CRC-sealed header, chunked
// mode-tagged symbol sections with per-chunk checksums, a chunked raw-float
// section, and the whole-stream trailer. This mirrors SZ's Huffman +
// lossless-backend pipeline with the entropy stage sharded across
// opts.Workers.
func serialize(ctx context.Context, f *field.Field, opts Options, ebSyms, quantSyms []uint32, raw []byte) ([]byte, error) {
	c := opts.Collector
	workers := parallel.Workers(opts.Workers)
	out := make([]byte, 0, headerBytesV3+len(raw)/2+(len(ebSyms)+len(quantSyms))/4)
	out = append(out, streamMagic...)
	out = append(out, formatVersion, byte(f.Dim()), byte(opts.Mode))
	pb := byte(opts.Predictor)
	if opts.Reference != nil {
		pb |= temporalFlag
	}
	out = append(out, pb)
	nx, ny, nz := f.Grid.Dims()
	for _, v := range []uint32{uint32(nx), uint32(ny), uint32(nz)} {
		out = binary.LittleEndian.AppendUint32(out, v)
	}
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(opts.ErrBound))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out[:headerBytes], crcTable))
	c.Add(obs.CtrBytesStreamHeader, int64(len(out)))
	var err error
	for si, syms := range [][]uint32{ebSyms, quantSyms} {
		mark := len(out)
		if out, err = appendSymbolSection(ctx, out, syms, workers, c); err != nil {
			return nil, err
		}
		ctr := obs.CtrBytesSectionEb
		if si == 1 {
			ctr = obs.CtrBytesSectionQuant
		}
		c.Add(ctr, int64(len(out)-mark))
	}
	mark := len(out)
	if out, err = appendRawSection(ctx, out, raw, workers, c); err != nil {
		return nil, err
	}
	c.Add(obs.CtrBytesSectionRaw, int64(len(out)-mark))
	out = appendTrailer(out)
	c.Add(obs.CtrBytesStreamTrailer, trailerBytes)
	c.Add(obs.CtrBytesOut, int64(len(out)))
	return out, nil
}

// appendTrailer seals the stream: u64 length of everything before the
// trailer, then the CRC32C of all preceding bytes (payload + length field,
// so a tampered length field fails the checksum too).
func appendTrailer(out []byte) []byte {
	out = binary.LittleEndian.AppendUint64(out, uint64(len(out)))
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
}

// chunkCount returns how many fixed-extent chunks a section of n units
// splits into; it depends only on n, never on the worker count.
func chunkCount(n, extent int) int {
	c := (n + extent - 1) / extent
	if c < 1 {
		c = 1
	}
	return c
}

// chunkBound returns chunk i's unit extent under the same n-into-cc
// partition parallel.Ranges produces (cc <= n, so no range is empty).
func chunkBound(n, cc, i int) (lo, hi int) {
	return i * n / cc, (i + 1) * n / cc
}

// encChunk is one encoded chunk awaiting the serialize merge: its payload
// (a chunkBufPool buffer whose ownership transfers to the merge), the
// uncompressed size and mode for the directory entry, the payload CRC32C,
// and the extent offset the merge assigns.
type encChunk struct {
	payload []byte
	usize   int
	mode    byte
	crc     uint32
	off     int
}

// appendSymbolSection writes one v4 symbol section: uvarint symbol count,
// the shared canonical codebook, a uvarint chunk count, a directory of
// per-chunk (uncompressed size, compressed size, mode, payload CRC32C)
// entries, then the chunk payloads. Chunks are encoded and checksummed
// concurrently; per chunk the encoder picks Huffman+DEFLATE or fixed-width
// bit packing, a decision that depends only on the chunk contents and the
// shared table, so archives stay byte-identical at any worker count.
func appendSymbolSection(ctx context.Context, dst []byte, syms []uint32, workers int, c *obs.Collector) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(syms)))
	if len(syms) == 0 {
		return dst, nil
	}
	var table *huffman.Table
	if err := c.Do(obs.StageHistogram, workers, int64(len(syms)), func() error {
		var err error
		table, err = huffman.BuildTableCtx(ctx, syms, workers)
		return err
	}); err != nil {
		return nil, err
	}
	dst = table.AppendTable(dst)
	n := len(syms)
	cc := chunkCount(n, chunkSymbols)
	workers = parallel.SizedWorkers(workers, cc, 4*int64(n), entropyWorkerBytes)
	outs := make([]encChunk, cc)
	err := parallel.CtxForErr(ctx, cc, workers, 1, func(i int) error {
		lo, hi := chunkBound(n, cc, i)
		e, err := encodeSymChunk(table, syms[lo:hi])
		if err != nil {
			return err
		}
		outs[i] = e
		return nil
	})
	if err != nil {
		repoolChunks(outs)
		return nil, err
	}
	c.Add(obs.CtrChunksEncoded, int64(cc))
	return mergeChunks(dst, outs, workers), nil
}

// encodeSymChunk encodes one fixed-extent symbol chunk against the shared
// table into a pooled payload buffer (ownership of the returned payload
// transfers to the caller). The per-chunk mode decision depends only on
// the chunk contents and the table, never on scheduling, so the in-memory
// serialize path and the streaming writer produce identical bytes by
// construction.
func encodeSymChunk(table *huffman.Table, chunk []uint32) (encChunk, error) {
	slo, shi, hbits := table.ChunkBits(chunk)
	k := uint8(bits.Len32(shi - slo))
	//lint:allow poolguard ownership of the payload transfers to the caller, which re-pools it via repoolChunks
	payload := getChunkBuf()
	e := encChunk{mode: symChunkHuffman}
	// Huffman must beat raw k-bit packing by more than ~5% of the
	// packed size to earn its codebook walk on decode; otherwise the
	// chunk goes bit-packed. k == 0 (constant chunks) always packs.
	if packedBits := uint64(k) * uint64(len(chunk)); 20*hbits >= 19*packedBits {
		payload = binary.AppendUvarint(payload, uint64(slo))
		payload = append(payload, k)
		payload = huffman.AppendPacked(payload, chunk, slo, k)
		e.mode = symChunkPacked
		e.usize = len(payload)
	} else {
		s := getScratch()
		s.bits = table.EncodeChunk(s.bits[:0], chunk)
		var err error
		payload, err = s.deflate(payload, s.bits)
		e.usize = len(s.bits)
		if err == nil && len(payload) >= len(s.bits) {
			// Entropy-coded bits are near-incompressible, so DEFLATE
			// usually breaks even or expands; store the bits verbatim.
			// usize == csize marks the stored form for the reader, which
			// then skips inflate entirely on the hot path.
			payload = append(payload[:0], s.bits...)
		}
		putScratch(s)
		if err != nil {
			putChunkBuf(payload)
			return encChunk{}, err
		}
	}
	e.payload = payload
	e.crc = crc32.Checksum(payload, crcTable)
	return e, nil
}

// encodeRawChunk encodes one verbatim-float chunk into a pooled payload
// buffer (ownership transfers to the caller), choosing DEFLATE or stored
// mode from the chunk contents alone.
func encodeRawChunk(chunk []byte) (encChunk, error) {
	//lint:allow poolguard ownership of the payload transfers to the caller, which re-pools it via repoolChunks
	payload := getChunkBuf()
	s := getScratch()
	payload, err := s.deflate(payload, chunk)
	putScratch(s)
	if err != nil {
		putChunkBuf(payload)
		return encChunk{}, err
	}
	e := encChunk{usize: len(chunk), mode: rawChunkDeflate}
	if len(payload) >= len(chunk) {
		// DEFLATE expanded (or broke even): store the bytes verbatim.
		payload = append(payload[:0], chunk...)
		e.mode = rawChunkStored
	}
	e.payload = payload
	e.crc = crc32.Checksum(payload, crcTable)
	return e, nil
}

// appendRawSection writes the verbatim-float section with the same
// directory layout as the symbol sections; chunks that DEFLATE cannot
// shrink are stored verbatim (mode 1) so decode is a straight copy.
func appendRawSection(ctx context.Context, dst []byte, raw []byte, workers int, c *obs.Collector) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(raw)))
	if len(raw) == 0 {
		return dst, nil
	}
	n := len(raw)
	cc := chunkCount(n, chunkRawBytes)
	workers = parallel.SizedWorkers(workers, cc, int64(n), entropyWorkerBytes)
	outs := make([]encChunk, cc)
	err := parallel.CtxForErr(ctx, cc, workers, 1, func(i int) error {
		lo, hi := chunkBound(n, cc, i)
		e, err := encodeRawChunk(raw[lo:hi])
		if err != nil {
			return err
		}
		outs[i] = e
		return nil
	})
	if err != nil {
		repoolChunks(outs)
		return nil, err
	}
	c.Add(obs.CtrChunksEncoded, int64(cc))
	return mergeChunks(dst, outs, workers), nil
}

// repoolChunks returns every payload the encode workers deposited before a
// failure or cancellation ended the dispatch. All workers have joined by
// the time the dispatcher returns its error, so the deposited buffers have
// exactly one owner here; chunks that never ran hold nil.
func repoolChunks(outs []encChunk) {
	for i := range outs {
		if outs[i].payload != nil {
			putChunkBuf(outs[i].payload)
			outs[i].payload = nil
		}
	}
}

// mergeChunks appends the uvarint chunk count and the v4 directory to dst,
// then copies every chunk payload into its pre-computed disjoint extent of
// a single grown region — concurrently, since the extents are a prefix-sum
// partition — instead of appending payloads one by one. Payload buffers
// return to the pool once copied.
func mergeChunks(dst []byte, outs []encChunk, workers int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(outs)))
	total := 0
	for i := range outs {
		outs[i].off = total
		total += len(outs[i].payload)
		dst = binary.AppendUvarint(dst, uint64(outs[i].usize))
		dst = binary.AppendUvarint(dst, uint64(len(outs[i].payload)))
		dst = append(dst, outs[i].mode)
		dst = binary.LittleEndian.AppendUint32(dst, outs[i].crc)
	}
	dst = growBytes(dst, total)
	payload := dst[len(dst)-total:]
	_ = parallel.ForErr(len(outs), workers, 1, func(i int) error {
		copy(payload[outs[i].off:outs[i].off+len(outs[i].payload)], outs[i].payload)
		return nil
	})
	for i := range outs {
		putChunkBuf(outs[i].payload)
		outs[i].payload = nil
	}
	return dst
}

// growBytes extends b by n bytes (contents of the extension unspecified;
// the caller overwrites every byte) without the intermediate zeroed slice
// an append(b, make([]byte, n)...) would allocate.
func growBytes(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[: len(b)+n : cap(b)]
	}
	grown := make([]byte, len(b)+n, max(2*cap(b), len(b)+n))
	copy(grown, b)
	return grown[:len(b)+n]
}

// parse splits a stream back into its header and sections, dispatching on
// the format version byte. For v3+ streams the header CRC and whole-stream
// trailer are verified up front and the per-chunk checksums inside the
// parallel section readers.
func parse(ctx context.Context, data []byte, workers int, c *obs.Collector) (hdr header, ebSyms, quantSyms []uint32, raw []byte, err error) {
	hdr, off, end, err := parseHeader(data)
	if err != nil {
		return hdr, nil, nil, nil, err
	}
	version := data[4]
	if version == formatV1 {
		ebSyms, quantSyms, raw, err = parseSectionsV1(data, off)
	} else {
		ebSyms, quantSyms, raw, err = parseSectionsV2(ctx, data[:end], off, workers, version, c)
	}
	if err != nil {
		return hdr, nil, nil, nil, err
	}
	return hdr, ebSyms, quantSyms, raw, nil
}

// parseHeader validates the fixed header (and, for v3+, the header CRC and
// the whole-stream trailer), returning the decoded header, the offset of
// the first section, and the offset one past the last section byte.
func parseHeader(data []byte) (hdr header, off, end int, err error) {
	if len(data) < headerBytes {
		return hdr, 0, 0, streamerr.Truncated("cpsz header", "%d of %d fixed-header bytes", len(data), headerBytes)
	}
	if string(data[:4]) != streamMagic {
		return hdr, 0, 0, streamerr.Header("cpsz header", "bad magic, not a cpSZ stream")
	}
	version := data[4]
	if version < formatV1 || version > formatV4 {
		return hdr, 0, 0, streamerr.Version("cpsz header", version)
	}
	end = len(data)
	off = headerBytes
	if version >= formatV3 {
		if len(data) < headerBytesV3+trailerBytes {
			return hdr, 0, 0, streamerr.Truncated("cpsz header", "%d bytes, v%d needs at least %d", len(data), version, headerBytesV3+trailerBytes)
		}
		stored := binary.LittleEndian.Uint32(data[headerBytes:])
		if got := crc32.Checksum(data[:headerBytes], crcTable); got != stored {
			return hdr, 0, 0, streamerr.Corrupt("cpsz header", "header CRC32C %08x, stored %08x", got, stored)
		}
		off = headerBytesV3
		end, err = verifyTrailer(data)
		if err != nil {
			return hdr, 0, 0, err
		}
	}
	hdr.dim = int(data[5])
	hdr.mode = ebound.Mode(data[6])
	hdr.temporal = data[7]&temporalFlag != 0
	hdr.predictor = Predictor(data[7] &^ temporalFlag)
	if hdr.predictor != PredictorLorenzo && hdr.predictor != PredictorInterpolation {
		return hdr, 0, 0, streamerr.Header("cpsz header", "unknown predictor %d", hdr.predictor)
	}
	hdr.nx = int(binary.LittleEndian.Uint32(data[8:]))
	hdr.ny = int(binary.LittleEndian.Uint32(data[12:]))
	hdr.nz = int(binary.LittleEndian.Uint32(data[16:]))
	hdr.errBound = float64frombits(binary.LittleEndian.Uint64(data[20:]))
	if hdr.dim != 2 && hdr.dim != 3 {
		return hdr, 0, 0, streamerr.Header("cpsz header", "invalid dimension %d", hdr.dim)
	}
	return hdr, off, end, nil
}

// verifyTrailer checks the whole-stream trailer and returns the offset
// of the trailer (one past the last section byte). The declared payload
// length must match the stream exactly — a lying trailer is corruption,
// a missing one truncation.
func verifyTrailer(data []byte) (int, error) {
	plen := binary.LittleEndian.Uint64(data[len(data)-trailerBytes:])
	if plen != uint64(len(data)-trailerBytes) {
		if plen > uint64(len(data)-trailerBytes) {
			return 0, streamerr.Truncated("cpsz trailer", "trailer declares %d payload bytes, stream carries %d", plen, len(data)-trailerBytes)
		}
		return 0, streamerr.Corrupt("cpsz trailer", "trailer declares %d payload bytes, stream carries %d", plen, len(data)-trailerBytes)
	}
	stored := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(data[:len(data)-4], crcTable); got != stored {
		return 0, streamerr.Corrupt("cpsz trailer", "stream CRC32C %08x, stored %08x", got, stored)
	}
	return len(data) - trailerBytes, nil
}

// parseSectionsV1 reads the legacy layout: three length-prefixed DEFLATE
// payloads, the first two wrapping whole-section Huffman streams. Kept so
// pre-v2 archives and the fuzz corpus still decode.
func parseSectionsV1(data []byte, off int) (ebSyms, quantSyms []uint32, raw []byte, err error) {
	sections := make([][]byte, 3)
	names := [3]string{"eb-symbols", "quant-symbols", "raw"}
	for i := range sections {
		if off+8 > len(data) {
			return nil, nil, nil, streamerr.Truncated(names[i], "section length cut off").WithOffset(int64(off))
		}
		n := binary.LittleEndian.Uint64(data[off:])
		off += 8
		if uint64(off)+n > uint64(len(data)) {
			return nil, nil, nil, streamerr.Truncated(names[i], "section claims %d bytes, %d remain", n, len(data)-off).WithOffset(int64(off))
		}
		packed := data[off : off+int(n)]
		off += int(n)
		// v1 carries no uncompressed sizes; cap the inflation at the
		// maximum a DEFLATE payload of this size can legitimately
		// produce, so a corrupt stream cannot drive an unbounded
		// allocation.
		sections[i], err = inflateCap(packed, maxDeflateRatio*uint64(len(packed))+64)
		if err != nil {
			return nil, nil, nil, streamerr.Wrap(streamerr.ErrCorrupt, names[i], err)
		}
	}
	if ebSyms, err = huffman.Decode(sections[0]); err != nil {
		return nil, nil, nil, streamerr.Wrap(streamerr.ErrCorrupt, "eb-symbols", err)
	}
	if quantSyms, err = huffman.Decode(sections[1]); err != nil {
		return nil, nil, nil, streamerr.Wrap(streamerr.ErrCorrupt, "quant-symbols", err)
	}
	return ebSyms, quantSyms, sections[2], nil
}

// parseSectionsV2 reads the chunked layout shared by v2 through v4,
// inflating and entropy-decoding the chunks of each section concurrently.
// The version selects the directory layout: v3 adds the per-chunk CRC32C
// column, v4 the per-chunk mode byte.
func parseSectionsV2(ctx context.Context, data []byte, off, workers int, version byte, c *obs.Collector) (ebSyms, quantSyms []uint32, raw []byte, err error) {
	if ebSyms, off, err = parseSymbolSection(ctx, data, off, workers, version, "eb-symbols", c); err != nil {
		return nil, nil, nil, err
	}
	if quantSyms, off, err = parseSymbolSection(ctx, data, off, workers, version, "quant-symbols", c); err != nil {
		return nil, nil, nil, err
	}
	if raw, off, err = parseRawSection(ctx, data, off, workers, version, c); err != nil {
		return nil, nil, nil, err
	}
	if off != len(data) {
		return nil, nil, nil, streamerr.Corrupt("cpsz stream", "%d trailing bytes after final section", len(data)-off).WithOffset(int64(off))
	}
	return ebSyms, quantSyms, raw, nil
}

// chunkDirectory holds the validated per-chunk extents of one section. The
// unit bounds of chunk i derive from (n, cc) alone via chunkBound, so the
// directory allocates nothing per chunk beyond its arena-backed arrays.
type chunkDirectory struct {
	n, cc   int      // section units and chunk count
	usizes  []int    // uncompressed payload bytes per chunk (arena-backed)
	offsets []int    // payload start offsets relative to the payload base
	crcs    []uint32 // CRC32C per compressed payload (v3+ only, else nil)
	modes   []byte   // per-chunk mode (v4 only, else nil = all mode 0)
	total   int      // total payload bytes
}

// bound returns chunk i's unit extent.
func (d *chunkDirectory) bound(i int) (lo, hi int) { return chunkBound(d.n, d.cc, i) }

// mode returns chunk i's mode tag; pre-v4 directories are all mode 0.
func (d *chunkDirectory) mode(i int) byte {
	if d.modes == nil {
		return 0
	}
	return d.modes[i]
}

// payloadAt returns chunk i's compressed payload within the section
// payload base.
func (d *chunkDirectory) payloadAt(payload []byte, i int) []byte {
	end := d.total
	if i+1 < len(d.offsets) {
		end = d.offsets[i+1]
	}
	return payload[d.offsets[i]:end]
}

// parseChunkDirectory reads and validates a chunk directory at data[off:]
// into arrays borrowed from s's arena (the caller keeps s checked out for
// the directory's lifetime). n is the section length in units; kind
// selects the per-mode entry validation. Every violation is a hard error:
// chunk-count lies, extent overflows, oversize claims, and unknown or
// inconsistent mode tags are rejected before any allocation proportional
// to them. The walk is two passes in effect: this single serial scan
// computes the offset prefix-sums, and the per-chunk work (CRC, inflate,
// decode) then runs in parallel against the finished offsets.
func parseChunkDirectory(s *scratch, data []byte, off, n int, version byte, kind int, section string) (chunkDirectory, int, error) {
	withCRC := version >= formatV3
	withMode := version >= formatV4
	var dir chunkDirectory
	cc, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return dir, 0, streamerr.Truncated(section, "chunk count cut off").WithOffset(int64(off))
	}
	off += sz
	if cc == 0 || cc > uint64(n) {
		return dir, 0, streamerr.Corrupt(section, "invalid chunk count %d for %d units", cc, n)
	}
	// Every directory entry takes at least 2 bytes (plus the CRC column and
	// the mode byte).
	entryMin := uint64(2)
	if withCRC {
		entryMin += 4
	}
	if withMode {
		entryMin++
	}
	if cc > uint64(len(data)-off)/entryMin+1 {
		return dir, 0, streamerr.Corrupt(section, "chunk count %d exceeds stream capacity", cc)
	}
	dir.n, dir.cc = n, int(cc)
	usizes, offsets, crcs, modes := s.dirArrays(int(cc))
	dir.usizes, dir.offsets = usizes, offsets
	if withCRC {
		dir.crcs = crcs
	}
	if withMode {
		dir.modes = modes
	}
	for i := 0; i < int(cc); i++ {
		usize, sz := binary.Uvarint(data[off:])
		if sz <= 0 {
			return dir, 0, streamerr.Truncated(section, "directory entry cut off").WithChunk(i).WithOffset(int64(off))
		}
		off += sz
		csize, sz := binary.Uvarint(data[off:])
		if sz <= 0 {
			return dir, 0, streamerr.Truncated(section, "directory entry cut off").WithChunk(i).WithOffset(int64(off))
		}
		off += sz
		mode := byte(0)
		if withMode {
			if off >= len(data) {
				return dir, 0, streamerr.Truncated(section, "directory mode cut off").WithChunk(i).WithOffset(int64(off))
			}
			mode = data[off]
			off++
			if mode > maxChunkMode {
				return dir, 0, streamerr.Corrupt(section, "unknown chunk mode %d", mode).WithChunk(i)
			}
			modes[i] = mode
		}
		if withCRC {
			if off+4 > len(data) {
				return dir, 0, streamerr.Truncated(section, "directory CRC cut off").WithChunk(i).WithOffset(int64(off))
			}
			crcs[i] = binary.LittleEndian.Uint32(data[off:])
			off += 4
		}
		lo, hi := dir.bound(i)
		extent := hi - lo
		if err := checkChunkEntry(kind, mode, extent, usize, csize, section, i); err != nil {
			return dir, 0, err
		}
		if csize > uint64(len(data)-off) {
			return dir, 0, streamerr.Truncated(section, "chunk claims %d compressed bytes, %d remain", csize, len(data)-off).WithChunk(i)
		}
		usizes[i] = int(usize)
		offsets[i] = dir.total
		dir.total += int(csize)
		if dir.total > len(data)-off {
			return dir, 0, streamerr.Truncated(section, "chunk payloads exceed stream length").WithChunk(i)
		}
	}
	return dir, off, nil
}

// checkChunkEntry validates one directory entry's (usize, csize) claim
// against its extent, per section kind and chunk mode.
func checkChunkEntry(kind int, mode byte, extent int, usize, csize uint64, section string, i int) error {
	switch {
	case kind == kindSymbols && mode == symChunkHuffman:
		// A chunk of extent symbols packs between extent and
		// extent*MaxCodeLen bits.
		if usize > uint64(extent*huffman.MaxCodeLen/8+8) || usize < uint64((extent+7)/8) {
			return streamerr.Corrupt(section, "chunk claims %d uncompressed bytes for %d units", usize, extent).WithChunk(i)
		}
		// DEFLATE cannot legitimately expand beyond maxDeflateRatio, so an
		// uncompressed size far above the payload marks a decompression
		// bomb; rejecting it here bounds every allocation below by what
		// the stream could actually inflate to.
		if usize > maxDeflateRatio*csize+64 {
			return streamerr.Corrupt(section, "chunk claims %d uncompressed bytes from a %d-byte payload", usize, csize).WithChunk(i)
		}
	case kind == kindSymbols && mode == symChunkPacked:
		// Bit-packed payloads are stored uncompressed: base uvarint (1-5
		// bytes) + width byte + at most 32 bits per symbol.
		if usize != csize {
			return streamerr.Corrupt(section, "packed chunk sizes disagree (%d uncompressed, %d stored)", usize, csize).WithChunk(i)
		}
		if usize < 2 || usize > uint64(4*extent+6) {
			return streamerr.Corrupt(section, "packed chunk claims %d bytes for %d units", usize, extent).WithChunk(i)
		}
	case kind == kindRaw && mode == rawChunkDeflate:
		// Raw chunk extents are byte counts, so the entry must match
		// exactly.
		if usize != uint64(extent) {
			return streamerr.Corrupt(section, "chunk claims %d uncompressed bytes for %d units", usize, extent).WithChunk(i)
		}
		if usize > maxDeflateRatio*csize+64 {
			return streamerr.Corrupt(section, "chunk claims %d uncompressed bytes from a %d-byte payload", usize, csize).WithChunk(i)
		}
	case kind == kindRaw && mode == rawChunkStored:
		if usize != uint64(extent) || csize != uint64(extent) {
			return streamerr.Corrupt(section, "stored chunk sizes (%d, %d) disagree with %d-byte extent", usize, csize, extent).WithChunk(i)
		}
	}
	return nil
}

// verifyChunk checks a v3+ per-chunk checksum; it runs inside the parallel
// section workers so integrity verification costs no extra pass over the
// stream.
func (d *chunkDirectory) verifyChunk(payload []byte, i int, section string) error {
	if d.crcs == nil {
		return nil
	}
	if got := crc32.Checksum(d.payloadAt(payload, i), crcTable); got != d.crcs[i] {
		return streamerr.Corrupt(section, "chunk CRC32C %08x, directory says %08x", got, d.crcs[i]).WithChunk(i)
	}
	return nil
}

// decodePackedChunk decodes one bit-packed symbol chunk payload (uvarint
// base, width byte, packed fields) into out.
func decodePackedChunk(pl []byte, out []uint32, section string, i int) error {
	base, n := binary.Uvarint(pl)
	if n <= 0 || n >= len(pl) {
		return streamerr.Corrupt(section, "packed chunk header cut off").WithChunk(i)
	}
	if base > math.MaxUint32 {
		return streamerr.Corrupt(section, "packed chunk base %d exceeds symbol range", base).WithChunk(i)
	}
	k := pl[n]
	if err := huffman.UnpackChunk(pl[n+1:], uint32(base), k, out); err != nil {
		return streamerr.Wrap(streamerr.ErrCorrupt, section, err).WithChunk(i)
	}
	return nil
}

// parseSymbolSection reads one chunked symbol section, returning the
// decoded symbols and the offset past the section.
func parseSymbolSection(ctx context.Context, data []byte, off, workers int, version byte, section string, c *obs.Collector) ([]uint32, int, error) {
	// The cursor is maintained by validated returns up the call chain, but
	// it indexes the stream below, so enforce the bound locally.
	if off < 0 || off > len(data) {
		return nil, 0, streamerr.Corrupt(section, "section offset %d outside %d-byte stream", off, len(data))
	}
	count, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return nil, 0, streamerr.Truncated(section, "symbol count cut off").WithOffset(int64(off))
	}
	off += sz
	if count == 0 {
		return nil, off, nil
	}
	// Every symbol takes at least one bit of some chunk; reject counts the
	// stream cannot back before allocating the output.
	if count > 8*maxDeflateRatio*uint64(len(data)-off)+64 {
		return nil, 0, streamerr.Corrupt(section, "symbol count %d exceeds stream capacity", count)
	}
	table, consumed, err := huffman.ParseTable(data[off:], count)
	if err != nil {
		return nil, 0, streamerr.Wrap(streamerr.ErrCorrupt, section, err)
	}
	off += consumed
	s := getScratch()
	defer putScratch(s)
	dir, off, err := parseChunkDirectory(s, data, off, int(count), version, kindSymbols, section)
	if err != nil {
		return nil, 0, err
	}
	// parseChunkDirectory keeps dir.total within the remaining stream;
	// re-validate here because the slice below depends on it.
	if dir.total > len(data)-off {
		return nil, 0, streamerr.Truncated(section, "chunk payloads exceed stream length").WithOffset(int64(off))
	}
	payload := data[off : off+dir.total]
	out := make([]uint32, count)
	workers = parallel.SizedWorkers(workers, dir.cc, 4*int64(count), entropyWorkerBytes)
	err = parallel.CtxForErr(ctx, dir.cc, workers, 1, func(i int) error {
		if err := dir.verifyChunk(payload, i, section); err != nil {
			return err
		}
		lo, hi := dir.bound(i)
		pl := dir.payloadAt(payload, i)
		if dir.mode(i) == symChunkPacked {
			return decodePackedChunk(pl, out[lo:hi], section, i)
		}
		ws := getScratch()
		var err error
		bits := pl
		if version < formatV4 || len(pl) != dir.usizes[i] {
			// Pre-v4 Huffman chunks are always deflated; v4 writers deflate
			// only when it shrinks the bits, so usize == csize means the
			// payload is the entropy-coded bitstream itself.
			bits = ws.buf(dir.usizes[i])
			err = ws.inflateInto(pl, bits)
		}
		if err == nil {
			err = table.DecodeChunk(bits, out[lo:hi])
		}
		putScratch(ws)
		if err != nil {
			return streamerr.Wrap(streamerr.ErrCorrupt, section, err).WithChunk(i)
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	c.Add(obs.CtrChunksDecoded, int64(dir.cc))
	return out, off + dir.total, nil
}

// parseRawSection reads the verbatim-float section, inflating (or, for
// stored chunks, copying) chunks concurrently straight into their disjoint
// extents of the output.
func parseRawSection(ctx context.Context, data []byte, off, workers int, version byte, c *obs.Collector) ([]byte, int, error) {
	const section = "raw"
	if off < 0 || off > len(data) {
		return nil, 0, streamerr.Corrupt(section, "section offset %d outside %d-byte stream", off, len(data))
	}
	rawLen, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return nil, 0, streamerr.Truncated(section, "section length cut off").WithOffset(int64(off))
	}
	off += sz
	if rawLen == 0 {
		return nil, off, nil
	}
	if rawLen > maxDeflateRatio*uint64(len(data)-off)+64 {
		return nil, 0, streamerr.Corrupt(section, "raw length %d exceeds stream capacity", rawLen)
	}
	s := getScratch()
	defer putScratch(s)
	dir, off, err := parseChunkDirectory(s, data, off, int(rawLen), version, kindRaw, section)
	if err != nil {
		return nil, 0, err
	}
	if dir.total > len(data)-off {
		return nil, 0, streamerr.Truncated(section, "chunk payloads exceed stream length").WithOffset(int64(off))
	}
	payload := data[off : off+dir.total]
	raw := make([]byte, rawLen)
	workers = parallel.SizedWorkers(workers, dir.cc, int64(rawLen), entropyWorkerBytes)
	err = parallel.CtxForErr(ctx, dir.cc, workers, 1, func(i int) error {
		if err := dir.verifyChunk(payload, i, section); err != nil {
			return err
		}
		lo, hi := dir.bound(i)
		pl := dir.payloadAt(payload, i)
		if dir.mode(i) == rawChunkStored {
			// checkChunkEntry pinned csize == extent, so this is a
			// straight copy.
			copy(raw[lo:hi], pl)
			return nil
		}
		ws := getScratch()
		err := ws.inflateInto(pl, raw[lo:hi])
		putScratch(ws)
		if err != nil {
			return streamerr.Wrap(streamerr.ErrCorrupt, section, err).WithChunk(i)
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	c.Add(obs.CtrChunksDecoded, int64(dir.cc))
	return raw, off + dir.total, nil
}

// Verify checksum-scans a stream without decoding it: the header CRC, the
// whole-stream trailer, and every per-chunk checksum are verified, but no
// chunk is inflated and no symbol decoded, so scanning costs a small
// fraction of a full decompression. Streams older than v3 carry no
// checksums and are reported as ErrVersion.
func Verify(data []byte) (err error) {
	defer streamerr.Guard("cpsz", &err)
	hdr, off, end, err := parseHeader(data)
	if err != nil {
		return err
	}
	if data[4] < formatV3 {
		return streamerr.Version("cpsz", data[4]).WithOffset(4)
	}
	_ = hdr
	version := data[4]
	data = data[:end]
	for _, section := range []string{"eb-symbols", "quant-symbols"} {
		if off, err = scanSymbolSection(data, off, version, section); err != nil {
			return err
		}
	}
	if off, err = scanRawSection(data, off, version); err != nil {
		return err
	}
	if off != len(data) {
		return streamerr.Corrupt("cpsz stream", "%d trailing bytes after final section", len(data)-off).WithOffset(int64(off))
	}
	return nil
}

// scanSymbolSection walks one symbol section verifying chunk checksums
// without inflating or decoding.
func scanSymbolSection(data []byte, off int, version byte, section string) (int, error) {
	if off < 0 || off > len(data) {
		return 0, streamerr.Corrupt(section, "section offset %d outside %d-byte stream", off, len(data))
	}
	count, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return 0, streamerr.Truncated(section, "symbol count cut off").WithOffset(int64(off))
	}
	off += sz
	if count == 0 {
		return off, nil
	}
	if count > 8*maxDeflateRatio*uint64(len(data)-off)+64 {
		return 0, streamerr.Corrupt(section, "symbol count %d exceeds stream capacity", count)
	}
	_, consumed, err := huffman.ParseTable(data[off:], count)
	if err != nil {
		return 0, streamerr.Wrap(streamerr.ErrCorrupt, section, err)
	}
	off += consumed
	s := getScratch()
	defer putScratch(s)
	dir, off, err := parseChunkDirectory(s, data, off, int(count), version, kindSymbols, section)
	if err != nil {
		return 0, err
	}
	if dir.total > len(data)-off {
		return 0, streamerr.Truncated(section, "chunk payloads exceed stream length").WithOffset(int64(off))
	}
	if err := scanChunks(&dir, data[off:off+dir.total], section); err != nil {
		return 0, err
	}
	return off + dir.total, nil
}

// scanRawSection walks the raw section verifying chunk checksums without
// inflating.
func scanRawSection(data []byte, off int, version byte) (int, error) {
	const section = "raw"
	if off < 0 || off > len(data) {
		return 0, streamerr.Corrupt(section, "section offset %d outside %d-byte stream", off, len(data))
	}
	rawLen, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return 0, streamerr.Truncated(section, "section length cut off").WithOffset(int64(off))
	}
	off += sz
	if rawLen == 0 {
		return off, nil
	}
	if rawLen > maxDeflateRatio*uint64(len(data)-off)+64 {
		return 0, streamerr.Corrupt(section, "raw length %d exceeds stream capacity", rawLen)
	}
	s := getScratch()
	defer putScratch(s)
	dir, off, err := parseChunkDirectory(s, data, off, int(rawLen), version, kindRaw, section)
	if err != nil {
		return 0, err
	}
	if dir.total > len(data)-off {
		return 0, streamerr.Truncated(section, "chunk payloads exceed stream length").WithOffset(int64(off))
	}
	if err := scanChunks(&dir, data[off:off+dir.total], section); err != nil {
		return 0, err
	}
	return off + dir.total, nil
}

func scanChunks(dir *chunkDirectory, payload []byte, section string) error {
	return parallel.ForErr(dir.cc, 0, 1, func(i int) error {
		return dir.verifyChunk(payload, i, section)
	})
}

// deflate DEFLATE-compresses data into a fresh slice. Legacy test writers
// and one-shot callers use it; the hot path deflates through its scratch.
func deflate(data []byte) ([]byte, error) {
	s := getScratch()
	out, err := s.deflate(nil, data)
	putScratch(s)
	return out, err
}

// inflateCap inflates data, failing if the output exceeds max bytes; the
// cap turns decompression bombs into errors instead of allocations. Only
// the v1 path, which carries no uncompressed sizes, needs it.
func inflateCap(data []byte, max uint64) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, int64(max)+1))
	if err != nil {
		return nil, err
	}
	if uint64(len(out)) > max {
		return nil, streamerr.Corrupt("inflate", "payload exceeds %d-byte cap", max)
	}
	return out, nil
}

func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
