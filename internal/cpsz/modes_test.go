package cpsz

import (
	"math"
	"testing"

	"tspsz/internal/critical"
	"tspsz/internal/ebound"
	"tspsz/internal/field"
)

// SoS mode must preserve the sign pattern of every barycentric determinant
// in every cell (the cpSZ-sos invariant), which implies critical point
// existence per cell is unchanged even without lossless cp-cells.
func TestSoSPreservesSignPatterns2D(t *testing.T) {
	f := gyre2D(40, 32)
	res, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 0.05, Workers: 2, SoS: true})
	if err != nil {
		t.Fatal(err)
	}
	dec := res.Decompressed
	var vbuf [4]int
	for c := 0; c < f.Grid.NumCells(); c++ {
		vs := f.Grid.CellVertices(c, vbuf[:0])
		var vo, vd [3][2]float64
		for i, vi := range vs {
			vo[i][0], vo[i][1] = float64(f.U[vi]), float64(f.V[vi])
			vd[i][0], vd[i][1] = float64(dec.U[vi]), float64(dec.V[vi])
		}
		po := ebound.SignPattern2D(vo)
		pd := ebound.SignPattern2D(vd)
		if po != pd {
			t.Fatalf("cell %d sign pattern changed: %v -> %v", c, po, pd)
		}
	}
	// Critical point existence per cell must therefore be identical.
	oc := critical.Extract(f)
	dc := critical.Extract(dec)
	if len(oc) != len(dc) {
		t.Fatalf("cp count changed: %d -> %d", len(oc), len(dc))
	}
	for i := range oc {
		if oc[i].Cell != dc[i].Cell {
			t.Fatalf("cp %d moved cells: %d -> %d", i, oc[i].Cell, dc[i].Cell)
		}
	}
}

func TestSoSPreservesCPExistence3D(t *testing.T) {
	f := turb3D(14)
	res, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 0.02, Workers: 2, SoS: true})
	if err != nil {
		t.Fatal(err)
	}
	oc := critical.Extract(f)
	dc := critical.Extract(res.Decompressed)
	if len(oc) != len(dc) {
		t.Fatalf("3D cp count changed: %d -> %d", len(oc), len(dc))
	}
	for i := range oc {
		if oc[i].Cell != dc[i].Cell {
			t.Fatalf("3D cp %d moved cells", i)
		}
	}
}

// Unlike revised cpSZ, SoS mode does not pin critical point positions
// bit-exactly (it has no lossless cells); positions may drift within the
// cell. This is exactly why cpSZ-sos distorts separatrices in the paper.
func TestSoSDoesNotPinPositions(t *testing.T) {
	f := gyre2D(40, 32)
	res, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 0.05, Workers: 1, SoS: true})
	if err != nil {
		t.Fatal(err)
	}
	oc := critical.Extract(f)
	dc := critical.Extract(res.Decompressed)
	moved := false
	for i := range oc {
		if oc[i].Pos != dc[i].Pos {
			moved = true
		}
	}
	if !moved {
		t.Skip("positions happened to be exact; acceptable but unusual")
	}
}

// Plain mode is the vanilla SZ3 baseline: the bound must hold but critical
// points are free to appear or vanish.
func TestPlainModeRespectsBoundOnly(t *testing.T) {
	f := gyre2D(48, 40)
	const eb = 0.02
	res, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: eb, Workers: 2, Plain: true})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decompress(res.Bytes, 2)
	if err != nil {
		t.Fatal(err)
	}
	for c, comp := range dec.Components() {
		orig := f.Components()[c]
		for i := range comp {
			if d := math.Abs(float64(comp[i]) - float64(orig[i])); d > eb {
				t.Fatalf("component %d vertex %d: error %v exceeds bound", c, i, d)
			}
		}
	}
	// Plain mode must compress at least as well as coupled cpSZ.
	coupled, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: eb, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bytes) > len(coupled.Bytes) {
		t.Errorf("plain mode larger than coupled: %d > %d", len(res.Bytes), len(coupled.Bytes))
	}
}

func TestSoSPlainMutuallyExclusive(t *testing.T) {
	f := gyre2D(8, 8)
	if _, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 0.1, SoS: true, Plain: true}); err == nil {
		t.Fatal("SoS+Plain accepted")
	}
}

// SoS bounds are tighter than Theorem 1 bounds, so SoS streams should have
// better (or equal) PSNR at lower (or equal) ratios — the cpSZ-sos row
// shape of Tables IV-VII.
func TestSoSTighterThanCoupled(t *testing.T) {
	f := field.New2D(40, 40)
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		f.U[idx] = float32(math.Sin(p[0]/4) + 1.5)
		f.V[idx] = float32(math.Cos(p[1]/4) + 1.5)
	}
	sos, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 0.05, SoS: true})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := Compress(f, Options{Mode: ebound.Absolute, ErrBound: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(sos.Bytes) < len(reg.Bytes) {
		t.Errorf("SoS stream smaller than coupled (%d < %d); bounds should be tighter",
			len(sos.Bytes), len(reg.Bytes))
	}
}
