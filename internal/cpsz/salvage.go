package cpsz

// Salvage decode: best-effort recovery of damaged v3/v4 archives. The
// per-chunk CRC32C directory pinpoints exactly which chunks of each section
// are damaged, so instead of failing on the first ErrCorrupt the salvage
// path decodes every chunk that verifies, zero-fills the fixed extents of
// the ones that do not, and reports precisely what was lost. Reconstruction
// then replays the Lorenzo scan and taints (zeroes and marks damaged) the
// smallest suffix of regions whose stream offsets can no longer be trusted:
//
//   - The error-bound symbol stream consumes a fixed number of symbols per
//     vertex, so its alignment never depends on damaged values — but the
//     quant and raw cursors are driven by eb symbol *values*, so the first
//     damaged eb symbol taints every region from that vertex onward.
//   - The quant stream's own alignment depends only on eb values, but raw
//     consumption depends on quant values, so the first damaged quant
//     symbol equally taints everything after it.
//   - Damaged raw bytes never affect alignment at all: only the regions
//     whose raw windows overlap a damaged extent are lost; everything else
//     reconstructs bit-exactly.
//
// Vertices of tainted or raw-damaged regions stay zero and are marked in
// the report's Damaged bitmap; every other vertex is bit-identical to a
// clean decode.

import (
	"context"
	"encoding/binary"
	"hash/crc32"
	"math"

	"tspsz/internal/bitmap"
	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/huffman"
	"tspsz/internal/parallel"
	"tspsz/internal/quantizer"
	"tspsz/internal/streamerr"
)

// SectionSalvage reports the salvage outcome of one stream section.
type SectionSalvage struct {
	// Name is the section name: "eb-symbols", "quant-symbols", or "raw".
	Name string
	// Chunks is the chunk count the section directory declares (0 for an
	// empty or lost section).
	Chunks int
	// DamagedChunks lists the indexes of chunks whose checksum or decode
	// failed, ascending. DamagedOffsets holds the absolute stream offset of
	// each damaged chunk's payload, index-aligned with DamagedChunks.
	DamagedChunks  []int
	DamagedOffsets []int64
	// BytesRecovered sums the compressed payload bytes of every chunk that
	// verified and decoded.
	BytesRecovered int
	// Lost marks a section whose framing (symbol count, codebook, or chunk
	// directory) was unreadable, so no chunk of it — nor of any later
	// section — could be located. LostReason says why.
	Lost       bool
	LostReason string
}

// Damaged reports whether any chunk of the section failed, or the whole
// section was lost.
func (s *SectionSalvage) Damaged() bool { return s.Lost || len(s.DamagedChunks) > 0 }

// SalvageReport is the outcome of a salvage decode: what was recovered,
// what was lost, and exactly where the losses sit.
type SalvageReport struct {
	// Sections reports the three sections in stream order: eb-symbols,
	// quant-symbols, raw.
	Sections []SectionSalvage
	// SealBroken marks a whole-stream trailer that failed to verify (or
	// lied about the payload length). Chunk checksums still localize
	// damage, but damage outside the checksummed payloads cannot be
	// detected.
	SealBroken bool
	// TotalVertices and DamagedVertices count the field and the vertices
	// that could not be recovered (left zero). Damaged marks each of them.
	// Only Salvage fills these; SalvageParse leaves them zero.
	TotalVertices   int
	DamagedVertices int
	Damaged         *bitmap.Bitmap

	// extents holds, per section, the damaged unit ranges (symbol indexes
	// or raw byte offsets) the reconstruction taints against.
	extents [3][][2]int
}

// Clean reports a salvage that recovered everything: seal intact, no chunk
// damaged, no section lost, no vertex zero-filled.
func (r *SalvageReport) Clean() bool {
	if r.SealBroken || r.DamagedVertices > 0 {
		return false
	}
	for i := range r.Sections {
		if r.Sections[i].Damaged() {
			return false
		}
	}
	return true
}

// anyDamage reports whether any section lost a chunk or its framing.
func (r *SalvageReport) anyDamage() bool {
	for i := range r.Sections {
		if r.Sections[i].Damaged() {
			return true
		}
	}
	return false
}

// firstBad returns the first damaged unit index of section si, or maxInt
// when it is fully intact. A lost section is damaged from unit 0.
func (r *SalvageReport) firstBad(si int) int {
	if r.Sections[si].Lost {
		return 0
	}
	if len(r.extents[si]) == 0 {
		return math.MaxInt
	}
	return r.extents[si][0][0]
}

// overlapsDamage reports whether [lo, hi) intersects a damaged extent of
// section si.
func (r *SalvageReport) overlapsDamage(si, lo, hi int) bool {
	for _, e := range r.extents[si] {
		if lo < e[1] && e[0] < hi {
			return true
		}
	}
	return false
}

// sectionNames is the fixed section order of the stream format.
var sectionNames = [3]string{"eb-symbols", "quant-symbols", "raw"}

// Salvage is the best-effort counterpart of Decompress for v3+ streams:
// every chunk whose checksum verifies is decoded, damaged extents are
// zero-filled, and the returned report says exactly which chunks and which
// vertices were lost. Vertices not marked damaged are bit-identical to a
// clean decode. The report is non-nil whenever the fixed header was
// readable, even alongside a non-nil error; pre-v3 streams carry no
// per-chunk checksums and fail with ErrVersion.
func Salvage(data []byte, workers int) (*field.Field, *SalvageReport, error) {
	return SalvageCtx(nil, data, workers)
}

// SalvageCtx is Salvage with cancellation (see DecompressCtx). A nil ctx
// never cancels.
func SalvageCtx(ctx context.Context, data []byte, workers int) (f *field.Field, rep *SalvageReport, err error) {
	defer streamerr.Guard("cpsz", &err)
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
	}
	hdr, ebSyms, quantSyms, raw, rep, err := salvageParse(ctx, data, workers)
	if err != nil {
		return nil, rep, err
	}
	if hdr.temporal {
		return nil, rep, streamerr.Header("cpsz header", "stream is temporally predicted; salvage needs the reference frame")
	}
	// The eb section is the allocation bound: every vertex consumes at
	// least one eb symbol, so with it lost nothing bounds the field the
	// header claims — and nothing could be recovered anyway.
	if rep.Sections[0].Lost {
		return nil, rep, streamerr.Corrupt("eb-symbols", "section unreadable, nothing to salvage: %s", rep.Sections[0].LostReason)
	}
	if uint64(hdr.nx)*uint64(hdr.ny) > uint64(len(ebSyms)) {
		return nil, rep, streamerr.Corrupt("cpsz header", "header dims exceed symbol stream")
	}
	if hdr.dim == 2 {
		if hdr.nx < 2 || hdr.ny < 2 {
			return nil, rep, streamerr.Header("cpsz header", "invalid 2D dims %dx%d", hdr.nx, hdr.ny)
		}
		f = field.New2D(hdr.nx, hdr.ny)
	} else {
		if uint64(hdr.nx)*uint64(hdr.ny)*uint64(hdr.nz) > uint64(len(ebSyms)) {
			return nil, rep, streamerr.Corrupt("cpsz header", "header dims exceed symbol stream")
		}
		if hdr.nx < 2 || hdr.ny < 2 || hdr.nz < 2 {
			return nil, rep, streamerr.Header("cpsz header", "invalid 3D dims %dx%dx%d", hdr.nx, hdr.ny, hdr.nz)
		}
		f = field.New3D(hdr.nx, hdr.ny, hdr.nz)
	}
	rep.TotalVertices = f.NumVertices()
	rep.Damaged = bitmap.New(f.NumVertices())
	if err := salvageReconstruct(ctx, f, hdr, ebSyms, quantSyms, raw, workers, rep); err != nil {
		return nil, rep, err
	}
	rep.DamagedVertices = rep.Damaged.Count()
	return f, rep, nil
}

// SalvageParse is the parse-only stage of Salvage: it tolerantly decodes
// the three sections of a v3+ stream, zero-filling the extents of damaged
// chunks, and reports per-chunk damage without reconstructing a field (the
// report's vertex fields stay zero). Lost sections return nil streams.
func SalvageParse(data []byte, workers int) (ebSyms, quantSyms []uint32, raw []byte, rep *SalvageReport, err error) {
	defer streamerr.Guard("cpsz", &err)
	_, ebSyms, quantSyms, raw, rep, err = salvageParse(nil, data, workers)
	return ebSyms, quantSyms, raw, rep, err
}

// salvageParse walks the stream tolerantly: chunk-level failures zero-fill
// and record; a section whose framing is unreadable is marked Lost along
// with every later section (their offsets are unknowable). Only header
// damage, pre-v3 streams, and cancellation are hard errors.
func salvageParse(ctx context.Context, data []byte, workers int) (hdr header, ebSyms, quantSyms []uint32, raw []byte, rep *SalvageReport, err error) {
	hdr, off, end, sealBroken, err := salvageHeader(data)
	if err != nil {
		return hdr, nil, nil, nil, nil, err
	}
	rep = &SalvageReport{SealBroken: sealBroken, Sections: make([]SectionSalvage, 3)}
	version := data[4]
	body := data[:end]
	lostFrom := 3
	var lostErr error
	for si := 0; si < 3 && lostFrom == 3; si++ {
		var serr error
		var dmg SectionSalvage
		var extents [][2]int
		if si < 2 {
			var syms []uint32
			syms, off, dmg, extents, serr = salvageSymbolSection(ctx, body, off, workers, version, sectionNames[si])
			if si == 0 {
				ebSyms = syms
			} else {
				quantSyms = syms
			}
		} else {
			raw, off, dmg, extents, serr = salvageRawSection(ctx, body, off, workers, version)
		}
		if serr != nil {
			if streamerr.IsContextErr(serr) {
				return hdr, nil, nil, nil, rep, serr
			}
			lostFrom, lostErr = si, serr
			continue
		}
		rep.Sections[si] = dmg
		rep.extents[si] = extents
	}
	for si := lostFrom; si < 3; si++ {
		reason := "preceding section unreadable, offset unknown"
		if si == lostFrom {
			reason = lostErr.Error()
		}
		rep.Sections[si] = SectionSalvage{Name: sectionNames[si], Lost: true, LostReason: reason}
		rep.extents[si] = nil
	}
	return hdr, ebSyms, quantSyms, raw, rep, nil
}

// salvageHeader is parseHeader for the salvage path: the fixed header and
// its CRC must verify (damaged dims cannot be trusted), but a broken
// whole-stream trailer is tolerated — the trailer is fixed-size at the very
// end of the stream, so the section bytes are still located exactly and the
// chunk checksums still localize damage. Pre-v3 streams carry no checksums
// at all, so salvage cannot tell good chunks from bad and reports
// ErrVersion.
func salvageHeader(data []byte) (hdr header, off, end int, sealBroken bool, err error) {
	if len(data) < headerBytes {
		return hdr, 0, 0, false, streamerr.Truncated("cpsz header", "%d of %d fixed-header bytes", len(data), headerBytes)
	}
	if string(data[:4]) != streamMagic {
		return hdr, 0, 0, false, streamerr.Header("cpsz header", "bad magic, not a cpSZ stream")
	}
	version := data[4]
	if version < formatV1 || version > formatV4 {
		return hdr, 0, 0, false, streamerr.Version("cpsz header", version)
	}
	if version < formatV3 {
		return hdr, 0, 0, false, streamerr.Version("cpsz header", version).WithOffset(4)
	}
	if len(data) < headerBytesV3+trailerBytes {
		return hdr, 0, 0, false, streamerr.Truncated("cpsz header", "%d bytes, v%d needs at least %d", len(data), version, headerBytesV3+trailerBytes)
	}
	stored := binary.LittleEndian.Uint32(data[headerBytes:])
	if got := crc32.Checksum(data[:headerBytes], crcTable); got != stored {
		return hdr, 0, 0, false, streamerr.Corrupt("cpsz header", "header CRC32C %08x, stored %08x; a damaged fixed header cannot be salvaged", got, stored)
	}
	off = headerBytesV3
	end, err = verifyTrailer(data)
	if err != nil {
		sealBroken = true
		end = len(data) - trailerBytes
	}
	hdr.dim = int(data[5])
	hdr.mode = ebound.Mode(data[6])
	hdr.temporal = data[7]&temporalFlag != 0
	hdr.predictor = Predictor(data[7] &^ temporalFlag)
	if hdr.predictor != PredictorLorenzo && hdr.predictor != PredictorInterpolation {
		return hdr, 0, 0, sealBroken, streamerr.Header("cpsz header", "unknown predictor %d", hdr.predictor)
	}
	hdr.nx = int(binary.LittleEndian.Uint32(data[8:]))
	hdr.ny = int(binary.LittleEndian.Uint32(data[12:]))
	hdr.nz = int(binary.LittleEndian.Uint32(data[16:]))
	hdr.errBound = float64frombits(binary.LittleEndian.Uint64(data[20:]))
	if hdr.dim != 2 && hdr.dim != 3 {
		return hdr, 0, 0, sealBroken, streamerr.Header("cpsz header", "invalid dimension %d", hdr.dim)
	}
	return hdr, off, end, sealBroken, nil
}

// salvageSymbolSection mirrors parseSymbolSection but contains every
// per-chunk failure: a chunk whose checksum or decode fails leaves its
// extent zero and is recorded instead of aborting. Structural failures
// (count, codebook, directory) return an error — the caller marks the
// section lost. Only cancellation escapes the chunk loop.
func salvageSymbolSection(ctx context.Context, data []byte, off, workers int, version byte, section string) ([]uint32, int, SectionSalvage, [][2]int, error) {
	dmg := SectionSalvage{Name: section}
	if off < 0 || off > len(data) {
		return nil, 0, dmg, nil, streamerr.Corrupt(section, "section offset %d outside %d-byte stream", off, len(data))
	}
	count, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return nil, 0, dmg, nil, streamerr.Truncated(section, "symbol count cut off").WithOffset(int64(off))
	}
	off += sz
	if count == 0 {
		return nil, off, dmg, nil, nil
	}
	if count > 8*maxDeflateRatio*uint64(len(data)-off)+64 {
		return nil, 0, dmg, nil, streamerr.Corrupt(section, "symbol count %d exceeds stream capacity", count)
	}
	table, consumed, err := huffman.ParseTable(data[off:], count)
	if err != nil {
		return nil, 0, dmg, nil, streamerr.Wrap(streamerr.ErrCorrupt, section, err)
	}
	off += consumed
	s := getScratch()
	defer putScratch(s)
	dir, off, err := parseChunkDirectory(s, data, off, int(count), version, kindSymbols, section)
	if err != nil {
		return nil, 0, dmg, nil, err
	}
	if dir.total > len(data)-off {
		return nil, 0, dmg, nil, streamerr.Truncated(section, "chunk payloads exceed stream length").WithOffset(int64(off))
	}
	payload := data[off : off+dir.total]
	out := make([]uint32, count)
	damaged := make([]bool, dir.cc)
	workers = parallel.SizedWorkers(workers, dir.cc, 4*int64(count), entropyWorkerBytes)
	err = parallel.CtxForErr(ctx, dir.cc, workers, 1, func(i int) error {
		lo, hi := dir.bound(i)
		// A decode failure of any flavour — checksum, inflate, entropy,
		// even a contained panic from hostile-but-checksummed bytes — marks
		// this one chunk damaged and re-zeroes its extent; neighbours are
		// unaffected.
		defer func() {
			if recover() != nil {
				damaged[i] = true
			}
			if damaged[i] {
				clear(out[lo:hi])
			}
		}()
		if dir.verifyChunk(payload, i, section) != nil {
			damaged[i] = true
			return nil
		}
		pl := dir.payloadAt(payload, i)
		if dir.mode(i) == symChunkPacked {
			if decodePackedChunk(pl, out[lo:hi], section, i) != nil {
				damaged[i] = true
			}
			return nil
		}
		ws := getScratch()
		var derr error
		bits := pl
		if version < formatV4 || len(pl) != dir.usizes[i] {
			bits = ws.buf(dir.usizes[i])
			derr = ws.inflateInto(pl, bits)
		}
		if derr == nil {
			derr = table.DecodeChunk(bits, out[lo:hi])
		}
		putScratch(ws)
		if derr != nil {
			damaged[i] = true
		}
		return nil
	})
	if err != nil {
		return nil, 0, dmg, nil, err // only cancellation reaches here
	}
	extents := collectDamage(&dmg, &dir, int64(off), damaged)
	return out, off + dir.total, dmg, extents, nil
}

// salvageRawSection is salvageSymbolSection for the verbatim-float section;
// damaged extents are byte ranges of the raw stream.
func salvageRawSection(ctx context.Context, data []byte, off, workers int, version byte) ([]byte, int, SectionSalvage, [][2]int, error) {
	const section = "raw"
	dmg := SectionSalvage{Name: section}
	if off < 0 || off > len(data) {
		return nil, 0, dmg, nil, streamerr.Corrupt(section, "section offset %d outside %d-byte stream", off, len(data))
	}
	rawLen, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return nil, 0, dmg, nil, streamerr.Truncated(section, "section length cut off").WithOffset(int64(off))
	}
	off += sz
	if rawLen == 0 {
		return nil, off, dmg, nil, nil
	}
	if rawLen > maxDeflateRatio*uint64(len(data)-off)+64 {
		return nil, 0, dmg, nil, streamerr.Corrupt(section, "raw length %d exceeds stream capacity", rawLen)
	}
	s := getScratch()
	defer putScratch(s)
	dir, off, err := parseChunkDirectory(s, data, off, int(rawLen), version, kindRaw, section)
	if err != nil {
		return nil, 0, dmg, nil, err
	}
	if dir.total > len(data)-off {
		return nil, 0, dmg, nil, streamerr.Truncated(section, "chunk payloads exceed stream length").WithOffset(int64(off))
	}
	payload := data[off : off+dir.total]
	raw := make([]byte, rawLen)
	damaged := make([]bool, dir.cc)
	workers = parallel.SizedWorkers(workers, dir.cc, int64(rawLen), entropyWorkerBytes)
	err = parallel.CtxForErr(ctx, dir.cc, workers, 1, func(i int) error {
		lo, hi := dir.bound(i)
		defer func() {
			if recover() != nil {
				damaged[i] = true
			}
			if damaged[i] {
				clear(raw[lo:hi])
			}
		}()
		if dir.verifyChunk(payload, i, section) != nil {
			damaged[i] = true
			return nil
		}
		pl := dir.payloadAt(payload, i)
		if dir.mode(i) == rawChunkStored {
			copy(raw[lo:hi], pl)
			return nil
		}
		ws := getScratch()
		derr := ws.inflateInto(pl, raw[lo:hi])
		putScratch(ws)
		if derr != nil {
			damaged[i] = true
		}
		return nil
	})
	if err != nil {
		return nil, 0, dmg, nil, err
	}
	extents := collectDamage(&dmg, &dir, int64(off), damaged)
	return raw, off + dir.total, dmg, extents, nil
}

// collectDamage folds the per-chunk damage flags into the section report —
// indexes, absolute payload offsets, and the recovered-byte tally — and
// returns the damaged unit extents for reconstruction tainting.
func collectDamage(dmg *SectionSalvage, dir *chunkDirectory, payBase int64, damaged []bool) [][2]int {
	dmg.Chunks = dir.cc
	var extents [][2]int
	for i, bad := range damaged {
		csize := dir.total - dir.offsets[i]
		if i+1 < dir.cc {
			csize = dir.offsets[i+1] - dir.offsets[i]
		}
		if !bad {
			dmg.BytesRecovered += csize
			continue
		}
		lo, hi := dir.bound(i)
		dmg.DamagedChunks = append(dmg.DamagedChunks, i)
		dmg.DamagedOffsets = append(dmg.DamagedOffsets, payBase+int64(dir.offsets[i]))
		extents = append(extents, [2]int{lo, hi})
	}
	return extents
}

// salvageReconstruct rebuilds the field from the salvaged streams, marking
// every unrecoverable vertex in rep.Damaged. The interpolation predictor
// reconstructs strictly serially with global error feedback, so any damage
// at all loses the whole frame; the Lorenzo path recovers region by region.
func salvageReconstruct(ctx context.Context, f *field.Field, hdr header, ebSyms, quantSyms []uint32, raw []byte, workers int, rep *SalvageReport) error {
	if hdr.predictor == PredictorInterpolation {
		if !rep.anyDamage() {
			return reconstructInterp(f, hdr, ebSyms, quantSyms, raw)
		}
		markAllDamaged(rep.Damaged)
		return nil
	}
	return salvageLorenzo(ctx, f, hdr, ebSyms, quantSyms, raw, workers, rep)
}

// salvageLorenzo is reconstructLorenzo with taint tracking (see the package
// comment at the top of this file for the alignment argument).
func salvageLorenzo(ctx context.Context, f *field.Field, hdr header, ebSyms, quantSyms []uint32, raw []byte, workers int, rep *SalvageReport) error {
	firstBadEb := rep.firstBad(0)
	firstBadQuant := rep.firstBad(1)
	rawLost := rep.Sections[2].Lost

	interiors, boundaries := partition(f.Grid)
	regions := append(append([]region{}, interiors...), boundaries...)
	offsets := make([]regionOffsets, len(regions)+1)
	nComps := len(f.Components())
	cur := regionOffsets{}
	taintFrom := len(regions)
scan:
	for ri, r := range regions {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		offsets[ri] = cur
		nv := r.numVertices()
		for v := 0; v < nv; v++ {
			if hdr.mode == ebound.Absolute {
				if cur.eb >= firstBadEb || cur.eb >= len(ebSyms) {
					taintFrom = ri
					break scan
				}
				sym := ebSyms[cur.eb]
				cur.eb++
				if sym == absLosslessSym {
					cur.raw += 4 * nComps
					continue
				}
				if sym > absLosslessSym {
					taintFrom = ri
					break scan
				}
				for c := 0; c < nComps; c++ {
					if cur.quant >= firstBadQuant || cur.quant >= len(quantSyms) {
						taintFrom = ri
						break scan
					}
					if quantSyms[cur.quant] == quantizer.UnpredictableSym {
						cur.raw += 4
					}
					cur.quant++
				}
				continue
			}
			for c := 0; c < nComps; c++ {
				if cur.eb >= firstBadEb || cur.eb >= len(ebSyms) {
					taintFrom = ri
					break scan
				}
				sym := ebSyms[cur.eb]
				cur.eb++
				if sym == relExactSym {
					cur.raw += 4
					continue
				}
				if sym > relBias+relExpCap+1 {
					taintFrom = ri
					break scan
				}
				if cur.quant >= firstBadQuant || cur.quant >= len(quantSyms) {
					taintFrom = ri
					break scan
				}
				if quantSyms[cur.quant] == quantizer.UnpredictableSym {
					cur.raw += 4
				}
				cur.quant++
			}
		}
	}
	if taintFrom == len(regions) {
		offsets[len(regions)] = cur
		if cur.eb != len(ebSyms) || cur.quant != len(quantSyms) || (!rawLost && cur.raw != len(raw)) {
			if !rep.anyDamage() {
				// No chunk was damaged, yet the symbols disagree with the
				// field shape: that is stream-level corruption salvage
				// cannot localize — the same failure a clean decode
				// reports.
				return errBadSymbols
			}
			taintFrom = 0
		}
	}

	// Untainted regions have exact stream offsets; each reconstructs unless
	// its raw window touches a damaged raw extent (or runs past the raw
	// stream, which only an inconsistent-but-checksummed stream can cause).
	damagedRegion := make([]bool, len(regions))
	for ri := taintFrom; ri < len(regions); ri++ {
		damagedRegion[ri] = true
	}
	for ri := 0; ri < taintFrom; ri++ {
		lo, hi := offsets[ri].raw, offsets[ri+1].raw
		if hi > len(raw) || (rawLost && hi > lo) || rep.overlapsDamage(2, lo, hi) {
			damagedRegion[ri] = true
		}
	}
	err := parallel.CtxForErr(ctx, len(regions), workers, 1, func(ri int) error {
		if damagedRegion[ri] {
			return nil
		}
		return reconstructRegion(f, nil, regions[ri], hdr, ebSyms, quantSyms, raw, offsets[ri])
	})
	if err != nil {
		return err
	}
	nx, ny, _ := f.Grid.Dims()
	for ri, bad := range damagedRegion {
		if bad {
			markRegionDamaged(rep.Damaged, regions[ri], nx, nx*ny)
		}
	}
	return nil
}

// markRegionDamaged sets the bitmap bit of every vertex in r.
func markRegionDamaged(bm *bitmap.Bitmap, r region, nx, nxny int) {
	for k := r.lo[2]; k < r.hi[2]; k++ {
		for j := r.lo[1]; j < r.hi[1]; j++ {
			base := j*nx + k*nxny
			for i := r.lo[0]; i < r.hi[0]; i++ {
				bm.Set(i + base)
			}
		}
	}
}

// markAllDamaged sets every bit.
func markAllDamaged(bm *bitmap.Bitmap) {
	for i := 0; i < bm.Len(); i++ {
		bm.Set(i)
	}
}
