package metrics

import (
	"math"
	"testing"

	"tspsz/internal/field"
)

func TestMSEAndPSNR(t *testing.T) {
	a := field.New2D(2, 2)
	a.U = []float32{0, 1, 2, 3}
	a.V = []float32{0, 0, 0, 0}
	b := a.Clone()
	if got := MSE(a, b); got != 0 {
		t.Errorf("MSE identical = %v, want 0", got)
	}
	if !math.IsInf(PSNR(a, b), 1) {
		t.Error("PSNR of identical fields should be +Inf")
	}
	b.U[0] = 1 // squared error 1 over 8 samples
	if got, want := MSE(a, b), 1.0/8; math.Abs(got-want) > 1e-12 {
		t.Errorf("MSE = %v, want %v", got, want)
	}
	// range = 3 - 0 = 3
	want := 20*math.Log10(3) - 10*math.Log10(1.0/8)
	if got := PSNR(a, b); math.Abs(got-want) > 1e-9 {
		t.Errorf("PSNR = %v, want %v", got, want)
	}
}

func TestMSEPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MSE(field.New2D(2, 2), field.New2D(3, 3))
}

func TestCRAndBitrate(t *testing.T) {
	f := field.New2D(10, 10) // 100 verts × 2 comps × 4 bytes = 800
	if got := CR(f, 100); got != 8 {
		t.Errorf("CR = %v, want 8", got)
	}
	if got := Bitrate(8); got != 4 {
		t.Errorf("Bitrate(8) = %v, want 4 bits/value", got)
	}
}
