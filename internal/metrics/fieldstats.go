package metrics

import (
	"math"

	"tspsz/internal/field"
)

// Flow-field diagnostics used to sanity-check datasets and to quantify how
// much physical structure compression disturbs beyond raw point-wise
// error: central-difference divergence and vorticity (z-component of curl
// in 2D, magnitude in 3D).

// Divergence computes the central-difference divergence at every interior
// vertex; boundary vertices carry 0. Unit grid spacing is assumed, matching
// the mesh substrate.
func Divergence(f *field.Field) []float64 {
	nx, ny, nz := f.Grid.Dims()
	out := make([]float64, f.NumVertices())
	at := func(comp []float32, i, j, k int) float64 {
		return float64(comp[f.Grid.VertexIndex(i, j, k)])
	}
	kMax := nz
	if f.Dim() == 2 {
		kMax = 1
	}
	for k := 0; k < kMax; k++ {
		for j := 1; j < ny-1; j++ {
			for i := 1; i < nx-1; i++ {
				d := (at(f.U, i+1, j, k)-at(f.U, i-1, j, k))/2 +
					(at(f.V, i, j+1, k)-at(f.V, i, j-1, k))/2
				if f.Dim() == 3 && k >= 1 && k < nz-1 {
					d += (at(f.W, i, j, k+1) - at(f.W, i, j, k-1)) / 2
				} else if f.Dim() == 3 {
					continue // 3D boundary plane: leave 0
				}
				out[f.Grid.VertexIndex(i, j, k)] = d
			}
		}
	}
	return out
}

// Vorticity computes the central-difference vorticity at interior
// vertices: ∂v/∂x − ∂u/∂y in 2D; the curl magnitude in 3D.
func Vorticity(f *field.Field) []float64 {
	nx, ny, nz := f.Grid.Dims()
	out := make([]float64, f.NumVertices())
	at := func(comp []float32, i, j, k int) float64 {
		return float64(comp[f.Grid.VertexIndex(i, j, k)])
	}
	if f.Dim() == 2 {
		for j := 1; j < ny-1; j++ {
			for i := 1; i < nx-1; i++ {
				wz := (at(f.V, i+1, j, 0)-at(f.V, i-1, j, 0))/2 -
					(at(f.U, i, j+1, 0)-at(f.U, i, j-1, 0))/2
				out[f.Grid.VertexIndex(i, j, 0)] = wz
			}
		}
		return out
	}
	for k := 1; k < nz-1; k++ {
		for j := 1; j < ny-1; j++ {
			for i := 1; i < nx-1; i++ {
				cx := (at(f.W, i, j+1, k)-at(f.W, i, j-1, k))/2 -
					(at(f.V, i, j, k+1)-at(f.V, i, j, k-1))/2
				cy := (at(f.U, i, j, k+1)-at(f.U, i, j, k-1))/2 -
					(at(f.W, i+1, j, k)-at(f.W, i-1, j, k))/2
				cz := (at(f.V, i+1, j, k)-at(f.V, i-1, j, k))/2 -
					(at(f.U, i, j+1, k)-at(f.U, i, j-1, k))/2
				out[f.Grid.VertexIndex(i, j, k)] = math.Sqrt(cx*cx + cy*cy + cz*cz)
			}
		}
	}
	return out
}

// RMS returns the root mean square of xs (0 for empty input).
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x * x
	}
	return math.Sqrt(sum / float64(len(xs)))
}
