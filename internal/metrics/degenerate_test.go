package metrics

import (
	"math"
	"testing"

	"tspsz/internal/field"
)

// constant2D returns a 2×2 field with every component sample set to v.
func constant2D(v float32) *field.Field {
	f := field.New2D(2, 2)
	for _, comp := range f.Components() {
		for i := range comp {
			comp[i] = v
		}
	}
	return f
}

// Degenerate inputs must produce the documented explicit semantics, never
// NaN or an accidental ±Inf from log(0) or x/0.
func TestDegenerateMetrics(t *testing.T) {
	// Grid constructors refuse < 2×2, so the zero-sample degenerate is a
	// field whose component slices were never allocated: MSE used to
	// return 0/0 = NaN for it.
	empty := &field.Field{Grid: field.New2D(2, 2).Grid}
	constant := constant2D(7)
	perturbed := constant2D(7)
	perturbed.U[0] = 7.5 // squared error 0.25 over 8 samples

	cases := []struct {
		name       string
		orig, dec  *field.Field
		wantMSE    float64
		wantPSNR   float64 // NaN means "assert finite" instead
		wantPosInf bool
	}{
		{
			name: "empty field",
			orig: empty, dec: empty,
			wantMSE: 0, wantPosInf: true,
		},
		{
			name: "identical constant fields",
			orig: constant, dec: constant.Clone(),
			wantMSE: 0, wantPosInf: true,
		},
		{
			// Constant original with real error: range is 0, so the
			// unit-range convention applies and PSNR = -10·log10(MSE).
			name: "constant field with error",
			orig: constant, dec: perturbed,
			wantMSE:  0.25 / 8,
			wantPSNR: -10 * math.Log10(0.25/8),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mse := MSE(tc.orig, tc.dec)
			if math.IsNaN(mse) {
				t.Fatalf("MSE = NaN, want %v", tc.wantMSE)
			}
			if math.Abs(mse-tc.wantMSE) > 1e-12 {
				t.Fatalf("MSE = %v, want %v", mse, tc.wantMSE)
			}
			psnr := PSNR(tc.orig, tc.dec)
			if tc.wantPosInf {
				if !math.IsInf(psnr, 1) {
					t.Fatalf("PSNR = %v, want +Inf", psnr)
				}
				return
			}
			if math.IsNaN(psnr) || math.IsInf(psnr, 0) {
				t.Fatalf("PSNR = %v, want a finite value", psnr)
			}
			if math.Abs(psnr-tc.wantPSNR) > 1e-9 {
				t.Fatalf("PSNR = %v, want %v", psnr, tc.wantPSNR)
			}
		})
	}
}

func TestCRDegenerate(t *testing.T) {
	f := field.New2D(10, 10) // 800 raw bytes
	cases := []struct {
		name       string
		compressed int
		want       float64
	}{
		{"normal", 100, 8},
		{"zero compressed size", 0, 0},
		{"negative compressed size", -4, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := CR(f, tc.compressed)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("CR = %v, want finite", got)
			}
			if got != tc.want {
				t.Fatalf("CR(%d) = %v, want %v", tc.compressed, got, tc.want)
			}
		})
	}
	if got := CR(&field.Field{Grid: f.Grid}, 0); got != 0 {
		t.Fatalf("CR(empty, 0) = %v, want 0", got)
	}
}

func TestBitrateDegenerate(t *testing.T) {
	if got := Bitrate(0); got != 0 {
		t.Fatalf("Bitrate(0) = %v, want 0 (undefined sentinel)", got)
	}
	if got := Bitrate(-2); got != 0 {
		t.Fatalf("Bitrate(-2) = %v, want 0", got)
	}
	if got := Bitrate(math.NaN()); got != 0 {
		t.Fatalf("Bitrate(NaN) = %v, want 0", got)
	}
	if got := Bitrate(16); got != 2 {
		t.Fatalf("Bitrate(16) = %v, want 2", got)
	}
}
