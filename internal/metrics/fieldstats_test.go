package metrics

import (
	"math"
	"testing"

	"tspsz/internal/field"
)

func fill2D(f *field.Field, fn func(x, y float64) (float64, float64)) {
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		u, v := fn(p[0], p[1])
		f.U[idx] = float32(u)
		f.V[idx] = float32(v)
	}
}

// A radial field V = (x, y) has divergence 2 and zero vorticity.
func TestDivergenceRadialField(t *testing.T) {
	f := field.New2D(12, 12)
	fill2D(f, func(x, y float64) (float64, float64) { return x, y })
	div := Divergence(f)
	vor := Vorticity(f)
	for j := 2; j < 10; j++ {
		for i := 2; i < 10; i++ {
			idx := f.Grid.VertexIndex(i, j, 0)
			if math.Abs(div[idx]-2) > 1e-5 {
				t.Fatalf("div at (%d,%d) = %v, want 2", i, j, div[idx])
			}
			if math.Abs(vor[idx]) > 1e-5 {
				t.Fatalf("vorticity at (%d,%d) = %v, want 0", i, j, vor[idx])
			}
		}
	}
}

// A rotation field V = (-y, x) has vorticity 2 and zero divergence.
func TestVorticityRotationField(t *testing.T) {
	f := field.New2D(12, 12)
	fill2D(f, func(x, y float64) (float64, float64) { return -y, x })
	div := Divergence(f)
	vor := Vorticity(f)
	idx := f.Grid.VertexIndex(5, 6, 0)
	if math.Abs(vor[idx]-2) > 1e-5 {
		t.Errorf("vorticity = %v, want 2", vor[idx])
	}
	if math.Abs(div[idx]) > 1e-5 {
		t.Errorf("divergence = %v, want 0", div[idx])
	}
}

// 3D: V = (-y, x, 1) has curl (0, 0, 2) -> magnitude 2; divergence 0.
func TestVorticity3D(t *testing.T) {
	f := field.New3D(8, 8, 8)
	for idx := 0; idx < f.NumVertices(); idx++ {
		p := f.Grid.VertexPosition(idx)
		f.U[idx] = float32(-p[1])
		f.V[idx] = float32(p[0])
		f.W[idx] = 1
	}
	vor := Vorticity(f)
	div := Divergence(f)
	idx := f.Grid.VertexIndex(4, 4, 4)
	if math.Abs(vor[idx]-2) > 1e-5 {
		t.Errorf("3D vorticity = %v, want 2", vor[idx])
	}
	if math.Abs(div[idx]) > 1e-5 {
		t.Errorf("3D divergence = %v, want 0", div[idx])
	}
}

func TestRMS(t *testing.T) {
	if RMS(nil) != 0 {
		t.Error("RMS(nil) != 0")
	}
	if got := RMS([]float64{3, 4, 0, 0}); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("RMS = %v, want 2.5", got)
	}
}

// Solenoidal generators must stay near divergence-free after sampling.
func TestGeneratedFieldsNearSolenoidal(t *testing.T) {
	f := field.New2D(40, 40)
	fill2D(f, func(x, y float64) (float64, float64) {
		// Streamfunction ψ = sin(x/5)·sin(y/5): u = ∂ψ/∂y, v = -∂ψ/∂x.
		return math.Sin(x/5) * math.Cos(y/5) / 5, -math.Cos(x/5) * math.Sin(y/5) / 5
	})
	div := Divergence(f)
	vor := Vorticity(f)
	if RMS(div) > 0.02*RMS(vor)+1e-9 {
		t.Errorf("streamfunction flow: div RMS %v not well below vorticity RMS %v", RMS(div), RMS(vor))
	}
}
