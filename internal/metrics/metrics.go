// Package metrics implements the evaluation metrics of §VIII-B:
// compression ratio, bitrate, MSE, and PSNR.
package metrics

import (
	"fmt"
	"math"

	"tspsz/internal/field"
)

// MSE returns the mean squared error between original and decompressed
// fields over all components. It panics if shapes differ. A zero-vertex
// field has no error by definition: MSE is 0, not 0/0 = NaN.
func MSE(orig, dec *field.Field) float64 {
	oc, dc := orig.Components(), dec.Components()
	if len(oc) != len(dc) || orig.NumVertices() != dec.NumVertices() {
		panic(fmt.Sprintf("metrics: shape mismatch %d/%d comps, %d/%d vertices",
			len(oc), len(dc), orig.NumVertices(), dec.NumVertices()))
	}
	var sum float64
	n := 0
	for c := range oc {
		for i := range oc[c] {
			d := float64(oc[c][i]) - float64(dc[c][i])
			sum += d * d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PSNR returns 20·log10(range) − 10·log10(MSE), with range the global
// value range of the original data. Degenerate inputs are pinned to
// explicit semantics instead of log-of-zero artifacts: identical fields
// (MSE exactly 0) yield +Inf, and a constant original field — whose value
// range is 0, which would otherwise drive the result to −Inf/NaN
// regardless of the actual error — falls back to the unit-range
// convention (range = 1.0), making PSNR a pure −10·log10(MSE) there.
func PSNR(orig, dec *field.Field) float64 {
	mse := MSE(orig, dec)
	if mse == 0 { //lint:allow floatcmp exactly-zero MSE (bit-identical fields) is the documented +Inf PSNR case
		return math.Inf(1)
	}
	lo, hi := orig.Range()
	rng := hi - lo
	if !(rng > 0) {
		rng = 1 // constant (or empty) field: unit-range convention
	}
	return 20*math.Log10(rng) - 10*math.Log10(mse)
}

// CR returns the compression ratio size(original)/size(compressed), or 0 —
// an explicit "undefined" sentinel, never ±Inf/NaN — when compressedBytes
// is not positive.
func CR(orig *field.Field, compressedBytes int) float64 {
	if compressedBytes <= 0 {
		return 0
	}
	return float64(orig.SizeBytes()) / float64(compressedBytes)
}

// Bitrate converts a compression ratio on float32 data into bits per value
// (the x-axis of the paper's rate-distortion plots): 32 / CR. A
// non-positive ratio (CR's "undefined" sentinel included) yields 0 rather
// than ±Inf, mirroring CR's convention.
func Bitrate(cr float64) float64 {
	if !(cr > 0) {
		return 0
	}
	return 32 / cr
}
