// Package metrics implements the evaluation metrics of §VIII-B:
// compression ratio, bitrate, MSE, and PSNR.
package metrics

import (
	"fmt"
	"math"

	"tspsz/internal/field"
)

// MSE returns the mean squared error between original and decompressed
// fields over all components. It panics if shapes differ.
func MSE(orig, dec *field.Field) float64 {
	oc, dc := orig.Components(), dec.Components()
	if len(oc) != len(dc) || orig.NumVertices() != dec.NumVertices() {
		panic(fmt.Sprintf("metrics: shape mismatch %d/%d comps, %d/%d vertices",
			len(oc), len(dc), orig.NumVertices(), dec.NumVertices()))
	}
	var sum float64
	n := 0
	for c := range oc {
		for i := range oc[c] {
			d := float64(oc[c][i]) - float64(dc[c][i])
			sum += d * d
			n++
		}
	}
	return sum / float64(n)
}

// PSNR returns 20·log10(range) − 10·log10(MSE), with range the global
// value range of the original data. Identical fields yield +Inf.
func PSNR(orig, dec *field.Field) float64 {
	mse := MSE(orig, dec)
	lo, hi := orig.Range()
	if mse == 0 { //lint:allow floatcmp exactly-zero MSE (bit-identical fields) is the documented +Inf PSNR case
		return math.Inf(1)
	}
	return 20*math.Log10(hi-lo) - 10*math.Log10(mse)
}

// CR returns the compression ratio size(original)/size(compressed).
func CR(orig *field.Field, compressedBytes int) float64 {
	return float64(orig.SizeBytes()) / float64(compressedBytes)
}

// Bitrate converts a compression ratio on float32 data into bits per value
// (the x-axis of the paper's rate-distortion plots): 32 / CR.
func Bitrate(cr float64) float64 { return 32 / cr }
