package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNew2DPanicsOnTinyDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 1xN grid")
		}
	}()
	New2D(1, 5)
}

func TestNew3DPanicsOnTinyDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for NxNx1 grid")
		}
	}()
	New3D(4, 4, 1)
}

func TestVertexIndexRoundTrip2D(t *testing.T) {
	g := New2D(7, 5)
	for j := 0; j < 5; j++ {
		for i := 0; i < 7; i++ {
			idx := g.VertexIndex(i, j, 0)
			ri, rj, rk := g.VertexCoords(idx)
			if ri != i || rj != j || rk != 0 {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d,%d)", i, j, idx, ri, rj, rk)
			}
		}
	}
}

func TestVertexIndexRoundTrip3D(t *testing.T) {
	g := New3D(4, 5, 6)
	for k := 0; k < 6; k++ {
		for j := 0; j < 5; j++ {
			for i := 0; i < 4; i++ {
				idx := g.VertexIndex(i, j, k)
				ri, rj, rk := g.VertexCoords(idx)
				if ri != i || rj != j || rk != k {
					t.Fatalf("round trip (%d,%d,%d) -> %d -> (%d,%d,%d)", i, j, k, idx, ri, rj, rk)
				}
			}
		}
	}
}

func TestCounts(t *testing.T) {
	g2 := New2D(10, 8)
	if got, want := g2.NumVertices(), 80; got != want {
		t.Errorf("2D NumVertices = %d, want %d", got, want)
	}
	if got, want := g2.NumCells(), 9*7*2; got != want {
		t.Errorf("2D NumCells = %d, want %d", got, want)
	}
	g3 := New3D(4, 5, 6)
	if got, want := g3.NumVertices(), 120; got != want {
		t.Errorf("3D NumVertices = %d, want %d", got, want)
	}
	if got, want := g3.NumCells(), 3*4*5*6; got != want {
		t.Errorf("3D NumCells = %d, want %d", got, want)
	}
}

func TestCellVerticesDistinctAndInRange(t *testing.T) {
	for _, g := range []*Grid{New2D(5, 4), New3D(3, 4, 5)} {
		nv := g.NumVertices()
		want := g.Dim() + 1
		for c := 0; c < g.NumCells(); c++ {
			vs := g.CellVertices(c, nil)
			if len(vs) != want {
				t.Fatalf("dim %d cell %d: %d vertices, want %d", g.Dim(), c, len(vs), want)
			}
			seen := map[int]bool{}
			for _, v := range vs {
				if v < 0 || v >= nv {
					t.Fatalf("dim %d cell %d: vertex %d out of range", g.Dim(), c, v)
				}
				if seen[v] {
					t.Fatalf("dim %d cell %d: duplicate vertex %d", g.Dim(), c, v)
				}
				seen[v] = true
			}
		}
	}
}

// Every cell must appear in VertexCells of each of its vertices.
func TestVertexCellsConsistency(t *testing.T) {
	for _, g := range []*Grid{New2D(5, 4), New3D(3, 4, 4)} {
		for c := 0; c < g.NumCells(); c++ {
			for _, v := range g.CellVertices(c, nil) {
				found := false
				for _, vc := range g.VertexCells(v, nil) {
					if vc == c {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("dim %d: cell %d missing from VertexCells(%d)", g.Dim(), c, v)
				}
			}
		}
	}
}

func TestVertexCellsInteriorCounts(t *testing.T) {
	g2 := New2D(5, 5)
	v := g2.VertexIndex(2, 2, 0)
	if got := len(g2.VertexCells(v, nil)); got != 6 {
		t.Errorf("2D interior vertex touches %d cells, want 6", got)
	}
	g3 := New3D(5, 5, 5)
	v = g3.VertexIndex(2, 2, 2)
	if got := len(g3.VertexCells(v, nil)); got != 24 {
		t.Errorf("3D interior vertex touches %d cells, want 24", got)
	}
}

// Kuhn subdivision of a cube must partition it: the 6 tets cover all 8 cube
// corners and each tet contains the main diagonal endpoints.
func TestKuhnTetsShareDiagonal(t *testing.T) {
	g := New3D(2, 2, 2)
	base := g.VertexIndex(0, 0, 0)
	far := g.VertexIndex(1, 1, 1)
	for c := 0; c < g.NumCells(); c++ {
		vs := g.CellVertices(c, nil)
		hasBase, hasFar := false, false
		for _, v := range vs {
			if v == base {
				hasBase = true
			}
			if v == far {
				hasFar = true
			}
		}
		if !hasBase || !hasFar {
			t.Fatalf("tet %d %v misses cube diagonal", c, vs)
		}
	}
}

func barycentricReconstructs(g *Grid, p [3]float64) bool {
	cell, bc, ok := g.Locate(p)
	if !ok {
		return false
	}
	var pos [4][3]float64
	ps := g.CellVerticesPositions(cell, pos[:0])
	var rec [3]float64
	sum := 0.0
	for i, vp := range ps {
		if bc[i] < -1e-12 {
			return false
		}
		sum += bc[i]
		for d := 0; d < 3; d++ {
			rec[d] += bc[i] * vp[d]
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		return false
	}
	for d := 0; d < g.Dim(); d++ {
		if math.Abs(rec[d]-p[d]) > 1e-9 {
			return false
		}
	}
	return true
}

func TestLocateReconstructs2D(t *testing.T) {
	g := New2D(6, 4)
	f := func(a, b uint16) bool {
		x := float64(a) / 65535 * 5
		y := float64(b) / 65535 * 3
		return barycentricReconstructs(g, [3]float64{x, y, 0})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLocateReconstructs3D(t *testing.T) {
	g := New3D(4, 5, 3)
	f := func(a, b, c uint16) bool {
		x := float64(a) / 65535 * 3
		y := float64(b) / 65535 * 4
		z := float64(c) / 65535 * 2
		return barycentricReconstructs(g, [3]float64{x, y, z})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLocateOutside(t *testing.T) {
	g := New2D(4, 4)
	for _, p := range [][3]float64{{-0.1, 1, 0}, {1, -0.1, 0}, {3.01, 1, 0}, {1, 3.5, 0}} {
		if _, _, ok := g.Locate(p); ok {
			t.Errorf("Locate(%v) should be outside", p)
		}
	}
	g3 := New3D(4, 4, 4)
	for _, p := range [][3]float64{{1, 1, -0.2}, {1, 1, 3.2}} {
		if _, _, ok := g3.Locate(p); ok {
			t.Errorf("3D Locate(%v) should be outside", p)
		}
	}
}

func TestLocateBoundaryCorners(t *testing.T) {
	g := New2D(4, 4)
	for _, p := range [][3]float64{{0, 0, 0}, {3, 3, 0}, {3, 0, 0}, {0, 3, 0}} {
		if !barycentricReconstructs(g, p) {
			t.Errorf("corner %v not reconstructed", p)
		}
	}
	g3 := New3D(3, 3, 3)
	for _, p := range [][3]float64{{0, 0, 0}, {2, 2, 2}, {2, 0, 2}} {
		if !barycentricReconstructs(g3, p) {
			t.Errorf("3D corner %v not reconstructed", p)
		}
	}
}

// The located cell must actually contain the queried point's vertex span:
// every barycentric coordinate non-negative already checks containment; this
// test additionally confirms the cell id is stable for interior points.
func TestLocateDeterministic(t *testing.T) {
	g := New3D(5, 5, 5)
	rng := rand.New(rand.NewSource(7))
	for n := 0; n < 200; n++ {
		p := [3]float64{rng.Float64() * 4, rng.Float64() * 4, rng.Float64() * 4}
		c1, bc1, ok1 := g.Locate(p)
		c2, bc2, ok2 := g.Locate(p)
		if c1 != c2 || bc1 != bc2 || ok1 != ok2 {
			t.Fatalf("Locate not deterministic at %v", p)
		}
	}
}

func BenchmarkLocate3D(b *testing.B) {
	g := New3D(64, 64, 64)
	rng := rand.New(rand.NewSource(1))
	pts := make([][3]float64, 1024)
	for i := range pts {
		pts[i] = [3]float64{rng.Float64() * 63, rng.Float64() * 63, rng.Float64() * 63}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Locate(pts[i%len(pts)])
	}
}

func BenchmarkVertexCells3D(b *testing.B) {
	g := New3D(64, 64, 64)
	buf := make([]int, 0, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.VertexCells(i%g.NumVertices(), buf[:0])
	}
}
