// Package grid provides the simplicial mesh substrate used throughout TspSZ:
// regular rectilinear grids of unit spacing whose cells are split into
// simplices (triangles in 2D, Freudenthal/Kuhn tetrahedra in 3D). It offers
// vertex/cell indexing, adjacency queries, and point location with
// barycentric coordinates for piecewise-linear interpolation.
package grid

import "fmt"

// Grid is a regular rectilinear grid with unit spacing. Vertices sit on the
// integer lattice [0,nx)×[0,ny)(×[0,nz)). The grid is triangulated into
// simplices: 2 triangles per unit square in 2D, 6 tetrahedra per unit cube in
// 3D (Kuhn subdivision). The zero value is not usable; construct with New2D
// or New3D.
type Grid struct {
	dims [3]int // nx, ny, nz (nz == 1 for 2D)
	dim  int    // 2 or 3
}

// New2D returns a 2D grid with nx×ny vertices. It panics if either dimension
// is smaller than 2, since at least one cell is required.
func New2D(nx, ny int) *Grid {
	if nx < 2 || ny < 2 {
		panic(fmt.Sprintf("grid: 2D dimensions must be >= 2, got %d x %d", nx, ny))
	}
	return &Grid{dims: [3]int{nx, ny, 1}, dim: 2}
}

// New3D returns a 3D grid with nx×ny×nz vertices. It panics if any dimension
// is smaller than 2.
func New3D(nx, ny, nz int) *Grid {
	if nx < 2 || ny < 2 || nz < 2 {
		panic(fmt.Sprintf("grid: 3D dimensions must be >= 2, got %d x %d x %d", nx, ny, nz))
	}
	return &Grid{dims: [3]int{nx, ny, nz}, dim: 3}
}

// Dim reports the spatial dimension (2 or 3).
func (g *Grid) Dim() int { return g.dim }

// Dims returns the vertex counts along each axis. For 2D grids the third
// entry is 1.
func (g *Grid) Dims() (nx, ny, nz int) { return g.dims[0], g.dims[1], g.dims[2] }

// NumVertices reports the total number of vertices.
func (g *Grid) NumVertices() int { return g.dims[0] * g.dims[1] * g.dims[2] }

// CellsPerSquare is the number of simplices in one 2D unit square.
const CellsPerSquare = 2

// CellsPerCube is the number of simplices in one 3D unit cube.
const CellsPerCube = 6

// NumCells reports the total number of simplices.
func (g *Grid) NumCells() int {
	nx, ny, nz := g.dims[0], g.dims[1], g.dims[2]
	if g.dim == 2 {
		return (nx - 1) * (ny - 1) * CellsPerSquare
	}
	return (nx - 1) * (ny - 1) * (nz - 1) * CellsPerCube
}

// VertexIndex converts lattice coordinates to a linear vertex index.
// In 2D pass k == 0.
func (g *Grid) VertexIndex(i, j, k int) int {
	return i + g.dims[0]*(j+g.dims[1]*k)
}

// VertexCoords converts a linear vertex index back to lattice coordinates.
func (g *Grid) VertexCoords(idx int) (i, j, k int) {
	nx, ny := g.dims[0], g.dims[1]
	i = idx % nx
	j = (idx / nx) % ny
	k = idx / (nx * ny)
	return
}

// VertexPosition returns the spatial position of a vertex (unit spacing).
func (g *Grid) VertexPosition(idx int) [3]float64 {
	i, j, k := g.VertexCoords(idx)
	return [3]float64{float64(i), float64(j), float64(k)}
}

// kuhnPerms lists the 6 axis orderings of the Kuhn subdivision of a cube.
// Tetrahedron t of a cube at base b has vertices
//
//	b, b+e[p0], b+e[p0]+e[p1], b+e[p0]+e[p1]+e[p2]
//
// for permutation p = kuhnPerms[t].
var kuhnPerms = [6][3]int{
	{0, 1, 2}, {0, 2, 1},
	{1, 0, 2}, {1, 2, 0},
	{2, 0, 1}, {2, 1, 0},
}

// CellVertices appends the vertex indices of cell c to dst and returns the
// extended slice. Triangles have 3 vertices, tetrahedra 4. Vertex order is
// deterministic.
func (g *Grid) CellVertices(c int, dst []int) []int {
	nx, ny := g.dims[0], g.dims[1]
	if g.dim == 2 {
		t := c % CellsPerSquare
		sq := c / CellsPerSquare
		i := sq % (nx - 1)
		j := sq / (nx - 1)
		v00 := g.VertexIndex(i, j, 0)
		v10 := g.VertexIndex(i+1, j, 0)
		v11 := g.VertexIndex(i+1, j+1, 0)
		v01 := g.VertexIndex(i, j+1, 0)
		if t == 0 { // lower triangle: covers local x >= y
			return append(dst, v00, v10, v11)
		}
		return append(dst, v00, v11, v01)
	}
	t := c % CellsPerCube
	cube := c / CellsPerCube
	cx := cube % (nx - 1)
	cy := (cube / (nx - 1)) % (ny - 1)
	cz := cube / ((nx - 1) * (ny - 1))
	p := kuhnPerms[t]
	var off [3]int
	dst = append(dst, g.VertexIndex(cx, cy, cz))
	for s := 0; s < 3; s++ {
		off[p[s]] = 1
		dst = append(dst, g.VertexIndex(cx+off[0], cy+off[1], cz+off[2]))
	}
	return dst
}

// CellVerticesPositions appends the spatial positions of cell c's vertices
// to dst, in the same order as CellVertices.
func (g *Grid) CellVerticesPositions(c int, dst [][3]float64) [][3]float64 {
	var buf [4]int
	vs := g.CellVertices(c, buf[:0])
	for _, v := range vs {
		dst = append(dst, g.VertexPosition(v))
	}
	return dst
}

// VertexCells appends to dst the indices of all cells incident to vertex v
// and returns the extended slice. A 2D interior vertex touches 6 triangles;
// a 3D interior vertex touches 24 tetrahedra.
func (g *Grid) VertexCells(v int, dst []int) []int {
	i, j, k := g.VertexCoords(v)
	nx, ny, nz := g.dims[0], g.dims[1], g.dims[2]
	var vbuf [4]int
	if g.dim == 2 {
		for dj := -1; dj <= 0; dj++ {
			for di := -1; di <= 0; di++ {
				ci, cj := i+di, j+dj
				if ci < 0 || cj < 0 || ci >= nx-1 || cj >= ny-1 {
					continue
				}
				sq := ci + cj*(nx-1)
				for t := 0; t < CellsPerSquare; t++ {
					c := sq*CellsPerSquare + t
					if g.cellHasVertex(c, v, vbuf[:0]) {
						dst = append(dst, c)
					}
				}
			}
		}
		return dst
	}
	for dk := -1; dk <= 0; dk++ {
		for dj := -1; dj <= 0; dj++ {
			for di := -1; di <= 0; di++ {
				ci, cj, ck := i+di, j+dj, k+dk
				if ci < 0 || cj < 0 || ck < 0 || ci >= nx-1 || cj >= ny-1 || ck >= nz-1 {
					continue
				}
				cube := ci + (nx-1)*(cj+(ny-1)*ck)
				for t := 0; t < CellsPerCube; t++ {
					c := cube*CellsPerCube + t
					if g.cellHasVertex(c, v, vbuf[:0]) {
						dst = append(dst, c)
					}
				}
			}
		}
	}
	return dst
}

func (g *Grid) cellHasVertex(c, v int, buf []int) bool {
	for _, cv := range g.CellVertices(c, buf) {
		if cv == v {
			return true
		}
	}
	return false
}

// Locate finds the simplex containing point p and its barycentric
// coordinates. It returns ok == false when p lies outside the grid domain
// [0,nx-1]×[0,ny-1](×[0,nz-1]). The barycentric coordinates bc correspond
// one-to-one with CellVertices order and satisfy bc[i] >= 0, Σ bc[i] == 1
// (up to rounding).
func (g *Grid) Locate(p [3]float64) (cell int, bc [4]float64, ok bool) {
	nx, ny, nz := g.dims[0], g.dims[1], g.dims[2]
	x, y, z := p[0], p[1], p[2]
	if x < 0 || y < 0 || x > float64(nx-1) || y > float64(ny-1) {
		return 0, bc, false
	}
	if g.dim == 3 && (z < 0 || z > float64(nz-1)) {
		return 0, bc, false
	}
	ci := clampCell(x, nx-1)
	cj := clampCell(y, ny-1)
	lx := x - float64(ci)
	ly := y - float64(cj)
	if g.dim == 2 {
		sq := ci + cj*(nx-1)
		if lx >= ly { // lower triangle (v00, v10, v11)
			bc[0] = 1 - lx
			bc[1] = lx - ly
			bc[2] = ly
			return sq * CellsPerSquare, bc, true
		}
		// upper triangle (v00, v11, v01)
		bc[0] = 1 - ly
		bc[1] = lx
		bc[2] = ly - lx
		return sq*CellsPerSquare + 1, bc, true
	}
	ck := clampCell(z, nz-1)
	lz := z - float64(ck)
	l := [3]float64{lx, ly, lz}
	// Pick the Kuhn tetrahedron whose axis permutation sorts the local
	// coordinates in non-increasing order.
	perm := sortedAxes(l)
	t := permIndex(perm)
	cube := ci + (nx-1)*(cj+(ny-1)*ck)
	s0, s1, s2 := l[perm[0]], l[perm[1]], l[perm[2]]
	bc[0] = 1 - s0
	bc[1] = s0 - s1
	bc[2] = s1 - s2
	bc[3] = s2
	return cube*CellsPerCube + t, bc, true
}

// clampCell converts a continuous coordinate to a cell index in [0, n-1],
// mapping the right boundary into the last cell.
func clampCell(x float64, ncells int) int {
	c := int(x)
	if c >= ncells {
		c = ncells - 1
	}
	if c < 0 {
		c = 0
	}
	return c
}

// sortedAxes returns the axis permutation ordering l non-increasingly,
// breaking ties by axis index so location is deterministic.
func sortedAxes(l [3]float64) [3]int {
	p := [3]int{0, 1, 2}
	if l[p[0]] < l[p[1]] {
		p[0], p[1] = p[1], p[0]
	}
	if l[p[1]] < l[p[2]] {
		p[1], p[2] = p[2], p[1]
	}
	if l[p[0]] < l[p[1]] {
		p[0], p[1] = p[1], p[0]
	}
	return p
}

// permIndex maps an axis permutation to its kuhnPerms slot.
func permIndex(p [3]int) int {
	for i, kp := range kuhnPerms {
		if kp == p {
			return i
		}
	}
	panic("grid: invalid permutation")
}
