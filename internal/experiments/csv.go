package experiments

import (
	"encoding/csv"
	"io"
	"math"
	"strconv"
)

// CSV emitters so the regenerated tables and figure series can be fed
// straight into a plotting tool. Each writer emits a header row followed by
// one record per data point; lossless PSNR (+Inf) is written as "inf".

func fmtF(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return strconv.FormatFloat(v, 'g', 8, 64)
}

// WriteTableCSV emits Tables IV-VII rows.
func WriteTableCSV(w io.Writer, rows []TableRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"compressor", "setting", "cr", "psnr", "is", "frechet_max", "frechet_mean", "frechet_std", "tc_s", "td_s"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Compressor, r.Setting,
			fmtF(r.CR), fmtF(r.PSNR), strconv.Itoa(r.IS),
			fmtF(r.MaxF), fmtF(r.MeanF), fmtF(r.StdF),
			fmtF(r.Tc), fmtF(r.Td),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRDCSV emits Fig. 4 rate-distortion points.
func WriteRDCSV(w io.Writer, pts []RDPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"compressor", "err_bound", "bitrate", "psnr"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{p.Compressor, fmtF(p.ErrBound), fmtF(p.Bitrate), fmtF(p.PSNR)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScalabilityCSV emits Fig. 8 sweep points.
func WriteScalabilityCSV(w io.Writer, pts []ScalePoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"compressor", "workers", "tc_s", "td_s", "speedup_c", "speedup_d"}); err != nil {
		return err
	}
	for _, p := range pts {
		rec := []string{p.Compressor, strconv.Itoa(p.Workers), fmtF(p.Tc), fmtF(p.Td), fmtF(p.SpeedupC), fmtF(p.SpeedupD)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteParamStudyCSV emits Table VIII points.
func WriteParamStudyCSV(w io.Writer, pts []ParamPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"param", "value", "cr", "tc_s", "td_s"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{p.Param, fmtF(p.Value), fmtF(p.CR), fmtF(p.Tc), fmtF(p.Td)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteLosslessMapCSV emits Fig. 6 fractions.
func WriteLosslessMapCSV(w io.Writer, rows []LosslessMapResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"compressor", "lossless_count", "fraction"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{r.Compressor, strconv.Itoa(r.Count), fmtF(r.Fraction)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteErrMapCSV emits the Fig. 3 summary for both modes.
func WriteErrMapCSV(w io.Writer, rel, abs *ErrMapResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"mode", "cr", "psnr", "mean_err", "max_err"}); err != nil {
		return err
	}
	for _, r := range []*ErrMapResult{rel, abs} {
		if err := cw.Write([]string{r.Mode, fmtF(r.CR), fmtF(r.PSNR), fmtF(r.MeanErr), fmtF(r.MaxErr)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSegmentationCSV emits the basin-agreement rows.
func WriteSegmentationCSV(w io.Writer, rows []SegRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"compressor", "agreement", "assigned"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{r.Compressor, fmtF(r.Agreement), fmtF(r.Assigned)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
