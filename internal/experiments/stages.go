package experiments

// Stage breakdowns: one observed compress + decompress per variant, so
// tspbench can report where pipeline time and archive bytes go on the
// standard datasets — the observability companion to the BENCH_*.json
// perf-trajectory files.

import (
	"encoding/json"
	"fmt"
	"io"

	"tspsz/internal/core"
	"tspsz/internal/ebound"
	"tspsz/internal/obs"
	"tspsz/internal/parallel"
)

// StageBreakdown is one observed run: the compression and decompression
// snapshots for a dataset/variant pair under absolute error control.
type StageBreakdown struct {
	Dataset    string        `json:"dataset"`
	Variant    string        `json:"variant"`
	Bytes      int           `json:"bytes"`
	Compress   *obs.Snapshot `json:"compress"`
	Decompress *obs.Snapshot `json:"decompress"`
}

// RunStageBreakdown compresses and decompresses the configured dataset with
// both variants under an attached obs.Collector (dispatch hook included)
// and returns the per-stage snapshots. It must not run concurrently with
// other observed work: the dispatch hook is process-global.
func RunStageBreakdown(cfg DataConfig, workers int) ([]StageBreakdown, error) {
	f, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	var out []StageBreakdown
	for _, variant := range []core.Variant{core.TspSZ1, core.TspSZi} {
		cc := obs.New()
		parallel.SetHook(cc.Dispatch)
		res, err := core.Compress(f, core.Options{
			Variant: variant, Mode: ebound.Absolute, ErrBound: cfg.EpsAbs,
			Params: cfg.Params, Tau: cfg.Tau, Workers: workers, Collector: cc,
		})
		if err != nil {
			parallel.SetHook(nil)
			return nil, fmt.Errorf("%v compress: %w", variant, err)
		}
		dc := obs.New()
		parallel.SetHook(dc.Dispatch)
		if _, err := core.DecompressObserved(res.Bytes, workers, dc); err != nil {
			parallel.SetHook(nil)
			return nil, fmt.Errorf("%v decompress: %w", variant, err)
		}
		parallel.SetHook(nil)
		out = append(out, StageBreakdown{
			Dataset:    cfg.Name,
			Variant:    variant.String(),
			Bytes:      len(res.Bytes),
			Compress:   res.Stats.Obs,
			Decompress: dc.Snapshot(),
		})
	}
	return out, nil
}

// PrintStageBreakdown renders per-stage wall time and the byte partition.
func PrintStageBreakdown(w io.Writer, title string, rows []StageBreakdown) {
	fmt.Fprintf(w, "%s\n", title)
	for _, r := range rows {
		fmt.Fprintf(w, "%s (%d bytes)\n", r.Variant, r.Bytes)
		for _, side := range []struct {
			name string
			snap *obs.Snapshot
		}{{"compress", r.Compress}, {"decompress", r.Decompress}} {
			if side.snap == nil {
				continue
			}
			totals := make(map[string]int64)
			for _, sp := range side.snap.Spans {
				totals[sp.Stage] += sp.DurationNs
			}
			fmt.Fprintf(w, "  %s:", side.name)
			for _, stage := range side.snap.Stages() {
				fmt.Fprintf(w, " %s=%.1fms", stage, float64(totals[stage])/1e6)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "  bytes: header=%d eb=%d quant=%d raw=%d trailer=%d container=%d (patch=%d)\n",
			r.Compress.Counters["bytes_stream_header"],
			r.Compress.Counters["bytes_section_eb"],
			r.Compress.Counters["bytes_section_quant"],
			r.Compress.Counters["bytes_section_raw"],
			r.Compress.Counters["bytes_stream_trailer"],
			r.Compress.Counters["bytes_container"],
			r.Compress.Counters["bytes_patch"])
	}
}

// WriteStageBreakdownJSON appends rows to the JSON document tspbench emits
// alongside the BENCH_*.json perf trajectories.
func WriteStageBreakdownJSON(w io.Writer, rows []StageBreakdown) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
