package experiments

import (
	"fmt"
	"io"
	"math"

	"tspsz/internal/core"
	"tspsz/internal/cpsz"
	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/metrics"
)

// ErrMapResult backs Fig. 3: per-vertex error magnitudes of cpSZ under
// point-wise relative versus absolute control at comparable ratios.
type ErrMapResult struct {
	Mode       string
	CR         float64
	PSNR       float64
	MeanErr    float64
	MaxErr     float64
	Errors     []float64 // per-vertex error magnitude (max over components)
	Decoded    *field.Field
	Compressed int
}

// RunErrorMap compresses the dataset with both error-control modes "under
// similar compression ratios" (Fig. 3): the relative mode runs at the
// configured bound, then the absolute bound is bisected until its ratio
// lands within 10% of the relative one, so the error statistics compare
// like for like.
func RunErrorMap(cfg DataConfig, workers int) (rel, abs *ErrMapResult, err error) {
	f, err := cfg.Generate()
	if err != nil {
		return nil, nil, err
	}
	one := func(mode ebound.Mode, eb float64) (*ErrMapResult, error) {
		res, err := cpsz.Compress(f, cpsz.Options{Mode: mode, ErrBound: eb, Workers: workers})
		if err != nil {
			return nil, err
		}
		dec := res.Decompressed
		errs := make([]float64, f.NumVertices())
		var sum, maxE float64
		oc, dc := f.Components(), dec.Components()
		for i := range errs {
			e := 0.0
			for c := range oc {
				d := math.Abs(float64(oc[c][i]) - float64(dc[c][i]))
				if d > e {
					e = d
				}
			}
			errs[i] = e
			sum += e
			if e > maxE {
				maxE = e
			}
		}
		return &ErrMapResult{
			Mode:       mode.String(),
			CR:         metrics.CR(f, len(res.Bytes)),
			PSNR:       metrics.PSNR(f, dec),
			MeanErr:    sum / float64(len(errs)),
			MaxErr:     maxE,
			Errors:     errs,
			Decoded:    dec,
			Compressed: len(res.Bytes),
		}, nil
	}
	rel, err = one(ebound.Relative, cfg.EpsRel)
	if err != nil {
		return nil, nil, err
	}
	// Bisect the absolute bound to match the relative ratio within 10%.
	lo, hi := cfg.EpsAbs/1024, cfg.EpsAbs*1024
	eb := cfg.EpsAbs
	for iter := 0; iter < 12; iter++ {
		abs, err = one(ebound.Absolute, eb)
		if err != nil {
			return nil, nil, err
		}
		ratio := abs.CR / rel.CR
		switch {
		case ratio > 1.1:
			hi = eb // too much compression: tighten the bound
		case ratio < 0.9:
			lo = eb
		default:
			return rel, abs, nil
		}
		eb = math.Sqrt(lo * hi)
	}
	return rel, abs, nil
}

// LosslessMapResult backs Fig. 6: which vertices each compressor stores
// verbatim and what fraction of the data that is.
type LosslessMapResult struct {
	Compressor string
	Count      int
	Fraction   float64
	Marks      []bool
}

// RunLosslessMap reports lossless-vertex maps for cpSZ and TspSZ-i under
// both error-control modes.
func RunLosslessMap(cfg DataConfig, workers int) ([]LosslessMapResult, error) {
	f, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	var out []LosslessMapResult
	add := func(name string, marksOf func() (interface{ Get(int) bool }, error)) error {
		m, err := marksOf()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		marks := make([]bool, f.NumVertices())
		count := 0
		for i := range marks {
			if m.Get(i) {
				marks[i] = true
				count++
			}
		}
		out = append(out, LosslessMapResult{
			Compressor: name,
			Count:      count,
			Fraction:   float64(count) / float64(len(marks)),
			Marks:      marks,
		})
		return nil
	}
	for _, mode := range []ebound.Mode{ebound.Relative, ebound.Absolute} {
		mode := mode
		eb := cfg.EpsRel
		suffix := ""
		if mode == ebound.Absolute {
			eb = cfg.EpsAbs
			suffix = "-abs"
		}
		if err := add("cpSZ"+suffix, func() (interface{ Get(int) bool }, error) {
			res, err := cpsz.Compress(f, cpsz.Options{Mode: mode, ErrBound: eb, Workers: workers})
			if err != nil {
				return nil, err
			}
			return res.LosslessVertices, nil
		}); err != nil {
			return nil, err
		}
		if err := add("TspSZ-i"+suffix, func() (interface{ Get(int) bool }, error) {
			res, err := core.Compress(f, core.Options{Variant: core.TspSZi, Mode: mode,
				ErrBound: eb, Params: cfg.Params, Tau: cfg.Tau, Workers: workers})
			if err != nil {
				return nil, err
			}
			return res.LosslessVertices, nil
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// PrintErrMap renders the Fig. 3 summary statistics.
func PrintErrMap(w io.Writer, title string, rel, abs *ErrMapResult) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-6s %8s %8s %12s %12s\n", "Mode", "CR", "PSNR", "MeanErr", "MaxErr")
	for _, r := range []*ErrMapResult{rel, abs} {
		fmt.Fprintf(w, "%-6s %8.2f %8.2f %12.3e %12.3e\n", r.Mode, r.CR, r.PSNR, r.MeanErr, r.MaxErr)
	}
}

// PrintLosslessMap renders the Fig. 6 fractions.
func PrintLosslessMap(w io.Writer, title string, rows []LosslessMapResult) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-13s %10s %10s\n", "Compressor", "Lossless", "Fraction")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %10d %9.2f%%\n", r.Compressor, r.Count, 100*r.Fraction)
	}
}
