package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSegmentation(t *testing.T) {
	cfg := tinyConfig(t, "cba")
	rows, err := RunSegmentation(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	byName := map[string]SegRow{}
	for _, r := range rows {
		if r.Agreement < 0 || r.Agreement > 1 || r.Assigned < 0 || r.Assigned > 1 {
			t.Fatalf("row out of range: %+v", r)
		}
		byName[r.Compressor] = r
	}
	// Domain-level topology preservation: TspSZ-i basins must agree at
	// least as well as plain cpSZ's in each mode (small slack for tie).
	if byName["TspSZ-i"].Agreement < byName["cpSZ"].Agreement-0.02 {
		t.Errorf("TspSZ-i agreement %.3f below cpSZ %.3f",
			byName["TspSZ-i"].Agreement, byName["cpSZ"].Agreement)
	}
	if byName["TspSZ-i-abs"].Agreement < byName["cpSZ-abs"].Agreement-0.02 {
		t.Errorf("TspSZ-i-abs agreement %.3f below cpSZ-abs %.3f",
			byName["TspSZ-i-abs"].Agreement, byName["cpSZ-abs"].Agreement)
	}
	var buf bytes.Buffer
	PrintSegmentation(&buf, "seg", rows)
	if !strings.Contains(buf.String(), "Agreement") {
		t.Error("PrintSegmentation missing header")
	}
	buf.Reset()
	if err := WriteSegmentationCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "compressor,agreement,assigned") {
		t.Error("CSV header missing")
	}
}
