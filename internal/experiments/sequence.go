package experiments

import (
	"fmt"
	"io"
	"time"

	"tspsz/internal/core"
	"tspsz/internal/datagen"
	"tspsz/internal/ebound"
	"tspsz/internal/field"
)

// SequenceRow summarizes the temporal-compression extension on one frame
// budget: total bytes and the gain over standalone per-frame compression.
type SequenceRow struct {
	Frames          int
	TemporalBytes   int
	StandaloneBytes int
	// Saving is 1 − temporal/standalone.
	Saving float64
	Tc     float64
}

// RunSequence measures the time-varying extension on a drifting ocean
// sequence: CompressSequence (temporal prediction) against compressing
// every frame standalone, both with TspSZ-i-abs and per-frame skeleton
// guarantees.
func RunSequence(cfg DataConfig, nFrames, workers int) (*SequenceRow, error) {
	if cfg.Name != "ocean" {
		return nil, fmt.Errorf("experiments: sequence experiment is defined on the ocean dataset")
	}
	base, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	nx, ny, _ := base.Grid.Dims()
	frames := datagen.OceanSequence(nx, ny, nFrames)
	opts := core.Options{
		Variant: core.TspSZi, Mode: ebound.Absolute, ErrBound: cfg.EpsAbs,
		Params: cfg.Params, Tau: cfg.Tau, Workers: workers,
	}
	t0 := time.Now()
	seq, err := core.CompressSequence(frames, opts)
	if err != nil {
		return nil, err
	}
	tc := time.Since(t0).Seconds()
	standalone := 0
	for fi, f := range frames {
		res, err := core.Compress(f, opts)
		if err != nil {
			return nil, fmt.Errorf("standalone frame %d: %w", fi, err)
		}
		standalone += len(res.Bytes)
	}
	row := &SequenceRow{
		Frames:          nFrames,
		TemporalBytes:   len(seq.Bytes),
		StandaloneBytes: standalone,
		Saving:          1 - float64(len(seq.Bytes))/float64(standalone),
		Tc:              tc,
	}
	// Round-trip sanity.
	dec, err := core.DecompressSequence(seq.Bytes, workers)
	if err != nil {
		return nil, err
	}
	if len(dec) != nFrames {
		return nil, fmt.Errorf("sequence round trip produced %d frames, want %d", len(dec), nFrames)
	}
	var _ []*field.Field = dec
	return row, nil
}

// PrintSequence renders the sequence-extension measurement.
func PrintSequence(w io.Writer, title string, row *SequenceRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "  frames: %d\n", row.Frames)
	fmt.Fprintf(w, "  temporal:   %10d bytes\n", row.TemporalBytes)
	fmt.Fprintf(w, "  standalone: %10d bytes\n", row.StandaloneBytes)
	fmt.Fprintf(w, "  saving:     %9.1f%%  (Tc %.2fs)\n", 100*row.Saving, row.Tc)
}
