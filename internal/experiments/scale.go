package experiments

import (
	"fmt"
	"io"
	"time"

	"tspsz/internal/core"
	"tspsz/internal/cpsz"
	"tspsz/internal/ebound"
	"tspsz/internal/field"
)

// ScalePoint is one measurement of the Fig. 8 scalability sweep.
type ScalePoint struct {
	Compressor string
	Workers    int
	Tc, Td     float64 // seconds
	SpeedupC   float64 // relative to Workers == first entry
	SpeedupD   float64
}

// RunScalability reproduces Fig. 8: compression and decompression times of
// SZ3 (plain), cpSZ, cpSZ-abs, TspSZ-i, and TspSZ-i-abs across worker
// counts. On hosts with fewer cores than the largest count, the extra
// goroutines time-share — the harness still emits the full series and
// EXPERIMENTS.md documents the hardware gate.
func RunScalability(cfg DataConfig, workerCounts []int) ([]ScalePoint, error) {
	f, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	names := []string{"SZ3", "cpSZ", "cpSZ-abs", "TspSZ-i", "TspSZ-i-abs"}
	var out []ScalePoint
	for _, name := range names {
		var baseC, baseD float64
		for i, w := range workerCounts {
			tc, td, err := timeOne(name, f, cfg, w)
			if err != nil {
				return nil, fmt.Errorf("%s workers=%d: %w", name, w, err)
			}
			if i == 0 {
				baseC, baseD = tc, td
			}
			out = append(out, ScalePoint{
				Compressor: name, Workers: w, Tc: tc, Td: td,
				SpeedupC: baseC / tc, SpeedupD: baseD / td,
			})
		}
	}
	return out, nil
}

func timeOne(name string, f *field.Field, cfg DataConfig, workers int) (tc, td float64, err error) {
	switch name {
	case "SZ3", "cpSZ", "cpSZ-abs":
		opts := cpsz.Options{Workers: workers}
		switch name {
		case "SZ3":
			// Authentic SZ3 shape: interpolation predictor, no topology
			// coupling, serial compression path.
			opts.Mode, opts.ErrBound, opts.Plain = ebound.Absolute, cfg.EpsAbs, true
			opts.Predictor = cpsz.PredictorInterpolation
		case "cpSZ":
			opts.Mode, opts.ErrBound = ebound.Relative, cfg.EpsRel
		case "cpSZ-abs":
			opts.Mode, opts.ErrBound = ebound.Absolute, cfg.EpsAbs
		}
		t0 := time.Now()
		res, cerr := cpsz.Compress(f, opts)
		if cerr != nil {
			return 0, 0, cerr
		}
		tc = time.Since(t0).Seconds()
		t0 = time.Now()
		if _, derr := cpsz.Decompress(res.Bytes, workers); derr != nil {
			return 0, 0, derr
		}
		return tc, time.Since(t0).Seconds(), nil
	default:
		opts := core.Options{Variant: core.TspSZi, Params: cfg.Params, Tau: cfg.Tau, Workers: workers}
		if name == "TspSZ-i" {
			opts.Mode, opts.ErrBound = ebound.Relative, cfg.EpsRel
		} else {
			opts.Mode, opts.ErrBound = ebound.Absolute, cfg.EpsAbs
		}
		t0 := time.Now()
		res, cerr := core.Compress(f, opts)
		if cerr != nil {
			return 0, 0, cerr
		}
		tc = time.Since(t0).Seconds()
		t0 = time.Now()
		if _, derr := core.Decompress(res.Bytes, workers); derr != nil {
			return 0, 0, derr
		}
		return tc, time.Since(t0).Seconds(), nil
	}
}

// DefaultWorkerCounts is the Fig. 8 thread ladder.
func DefaultWorkerCounts() []int { return []int{1, 2, 4, 8, 16, 32, 64, 128} }

// PrintScalability renders the sweep.
func PrintScalability(w io.Writer, title string, pts []ScalePoint) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-13s %8s %10s %10s %10s %10s\n", "Compressor", "Workers", "Tc(s)", "Td(s)", "SpeedupC", "SpeedupD")
	for _, p := range pts {
		fmt.Fprintf(w, "%-13s %8d %10.4f %10.4f %10.2f %10.2f\n",
			p.Compressor, p.Workers, p.Tc, p.Td, p.SpeedupC, p.SpeedupD)
	}
}
