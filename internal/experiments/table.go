package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"tspsz/internal/baseline"
	"tspsz/internal/core"
	"tspsz/internal/cpsz"
	"tspsz/internal/ebound"
	"tspsz/internal/field"
	"tspsz/internal/metrics"
	"tspsz/internal/skeleton"
)

// TableRow is one compressor row of Tables IV–VII.
type TableRow struct {
	Compressor string
	Setting    string
	CR         float64
	PSNR       float64 // +Inf for lossless rows (printed "/")
	IS         int
	MaxF       float64
	MeanF      float64
	StdF       float64
	Tc, Td     float64 // seconds
}

// RunTable reproduces one of Tables IV–VII for the configured dataset:
// ZSTD-style LZ, GZIP, cpSZ-sos, then {cpSZ, TspSZ-1, TspSZ-i} under both
// relative and absolute error control.
func RunTable(cfg DataConfig, workers int) ([]TableRow, error) {
	f, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	orig := skeleton.ExtractParallel(f, cfg.Params, workers)

	rows := make([]TableRow, 0, 9)
	raw := baseline.FieldBytes(f)

	// ZSTD stand-in.
	t0 := time.Now()
	lz := baseline.LZ(raw)
	tc := time.Since(t0).Seconds()
	t0 = time.Now()
	if _, err := baseline.UnLZ(lz); err != nil {
		return nil, fmt.Errorf("lz round trip: %w", err)
	}
	rows = append(rows, TableRow{
		Compressor: "ZSTD", Setting: "/",
		CR: metrics.CR(f, len(lz)), PSNR: math.Inf(1),
		Tc: tc, Td: time.Since(t0).Seconds(),
	})

	// GZIP.
	t0 = time.Now()
	gz, err := baseline.Gzip(raw)
	if err != nil {
		return nil, err
	}
	tc = time.Since(t0).Seconds()
	t0 = time.Now()
	if _, err := baseline.Gunzip(gz); err != nil {
		return nil, err
	}
	rows = append(rows, TableRow{
		Compressor: "GZIP", Setting: "/",
		CR: metrics.CR(f, len(gz)), PSNR: math.Inf(1),
		Tc: tc, Td: time.Since(t0).Seconds(),
	})

	// cpSZ-sos (serial, per the paper).
	row, err := runCPSZ(f, orig, cfg, cpsz.Options{
		Mode: ebound.Absolute, ErrBound: cfg.EpsSoS, Workers: 1, SoS: true,
	}, "cpSZ-sos", fmt.Sprintf("eps=%.0e", cfg.EpsSoS))
	if err != nil {
		return nil, err
	}
	rows = append(rows, *row)

	for _, mode := range []ebound.Mode{ebound.Relative, ebound.Absolute} {
		eps := cfg.EpsRel
		suffix := ""
		if mode == ebound.Absolute {
			eps = cfg.EpsAbs
			suffix = "-abs"
		}
		setting := fmt.Sprintf("eps=%.0e h=%g t=%d tau=%.3g", eps, cfg.Params.H, cfg.Params.MaxSteps, cfg.Tau)

		row, err := runCPSZ(f, orig, cfg, cpsz.Options{Mode: mode, ErrBound: eps, Workers: workers},
			"cpSZ"+suffix, setting)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)

		for _, variant := range []core.Variant{core.TspSZ1, core.TspSZi} {
			name := "TspSZ-1" + suffix
			if variant == core.TspSZi {
				name = "TspSZ-i" + suffix
			}
			row, err := runTspSZ(f, orig, cfg, core.Options{
				Variant: variant, Mode: mode, ErrBound: eps,
				Params: cfg.Params, Tau: cfg.Tau, Workers: workers,
			}, name, setting)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

func runCPSZ(f *field.Field, orig *skeleton.Skeleton, cfg DataConfig, opts cpsz.Options, name, setting string) (*TableRow, error) {
	t0 := time.Now()
	res, err := cpsz.Compress(f, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	tc := time.Since(t0).Seconds()
	t0 = time.Now()
	dec, err := cpsz.Decompress(res.Bytes, opts.Workers)
	if err != nil {
		return nil, fmt.Errorf("%s decompress: %w", name, err)
	}
	td := time.Since(t0).Seconds()
	return evalRow(f, dec, orig, cfg, name, setting, len(res.Bytes), tc, td, opts.Workers), nil
}

func runTspSZ(f *field.Field, orig *skeleton.Skeleton, cfg DataConfig, opts core.Options, name, setting string) (*TableRow, error) {
	t0 := time.Now()
	res, err := core.Compress(f, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	tc := time.Since(t0).Seconds()
	t0 = time.Now()
	dec, err := core.Decompress(res.Bytes, opts.Workers)
	if err != nil {
		return nil, fmt.Errorf("%s decompress: %w", name, err)
	}
	td := time.Since(t0).Seconds()
	return evalRow(f, dec, orig, cfg, name, setting, len(res.Bytes), tc, td, opts.Workers), nil
}

func evalRow(f, dec *field.Field, orig *skeleton.Skeleton, cfg DataConfig, name, setting string, nbytes int, tc, td float64, workers int) *TableRow {
	got := skeleton.ExtractWithParallel(dec, orig.CPs, cfg.Params, workers)
	st := skeleton.CompareParallel(orig, got, cfg.Tau, workers)
	return &TableRow{
		Compressor: name,
		Setting:    setting,
		CR:         metrics.CR(f, nbytes),
		PSNR:       metrics.PSNR(f, dec),
		IS:         st.Incorrect,
		MaxF:       st.MaxF,
		MeanF:      st.MeanF,
		StdF:       st.StdF,
		Tc:         tc,
		Td:         td,
	}
}

// PrintTable renders rows in the layout of Tables IV–VII.
func PrintTable(w io.Writer, title string, rows []TableRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-13s %-34s %7s %8s %6s %9s %9s %9s %9s %9s\n",
		"Compressor", "Setting", "CR", "PSNR", "#IS", "FrMax", "FrMean", "FrStd", "Tc(s)", "Td(s)")
	for _, r := range rows {
		psnr := "/"
		if !math.IsInf(r.PSNR, 1) {
			psnr = fmt.Sprintf("%8.2f", r.PSNR)
		}
		fmt.Fprintf(w, "%-13s %-34s %7.2f %8s %6d %9.3f %9.3f %9.3f %9.3f %9.3f\n",
			r.Compressor, r.Setting, r.CR, psnr, r.IS, r.MaxF, r.MeanF, r.StdF, r.Tc, r.Td)
	}
}
