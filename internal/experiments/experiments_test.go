package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tinyConfig returns a configuration small enough for unit testing.
func tinyConfig(t *testing.T, name string) DataConfig {
	t.Helper()
	cfg, err := Config(name, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if name == "cba" {
		cfg.Scale = 0.3
	}
	cfg.Params.MaxSteps = 80
	return cfg
}

func TestConfigUnknown(t *testing.T) {
	if _, err := Config("bogus", 0.1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestStandardCoversAllDatasets(t *testing.T) {
	cfgs := Standard(0.1)
	if len(cfgs) != 4 {
		t.Fatalf("Standard returned %d configs, want 4", len(cfgs))
	}
	names := map[string]bool{}
	for _, c := range cfgs {
		names[c.Name] = true
		if c.EpsRel <= 0 || c.EpsAbs <= 0 || c.EpsSoS <= 0 {
			t.Errorf("%s: non-positive bounds", c.Name)
		}
	}
	for _, want := range []string{"cba", "ocean", "hurricane", "nek5000"} {
		if !names[want] {
			t.Errorf("missing dataset %s", want)
		}
	}
}

// RunTable must reproduce the paper's qualitative shape on every dataset:
// lossless baselines low, cpSZ distorts separatrices, TspSZ variants do not.
func TestRunTableShape(t *testing.T) {
	for _, name := range []string{"cba", "ocean"} {
		t.Run(name, func(t *testing.T) {
			cfg := tinyConfig(t, name)
			rows, err := RunTable(cfg, 2)
			if err != nil {
				t.Fatal(err)
			}
			byName := map[string]TableRow{}
			for _, r := range rows {
				byName[r.Compressor] = r
			}
			if len(rows) != 9 {
				t.Fatalf("%d rows, want 9", len(rows))
			}
			for _, lossless := range []string{"ZSTD", "GZIP"} {
				r := byName[lossless]
				if r.CR < 0.8 || r.CR > 3 {
					t.Errorf("%s CR %.2f outside lossless band", lossless, r.CR)
				}
				if !math.IsInf(r.PSNR, 1) || r.IS != 0 {
					t.Errorf("%s should be perfect: %+v", lossless, r)
				}
			}
			for _, tsp := range []string{"TspSZ-1", "TspSZ-1-abs", "TspSZ-i", "TspSZ-i-abs"} {
				r := byName[tsp]
				if r.IS != 0 {
					t.Errorf("%s has %d incorrect separatrices", tsp, r.IS)
				}
				if r.CR <= 1 {
					t.Errorf("%s CR %.2f not better than raw", tsp, r.CR)
				}
			}
			for _, exact := range []string{"TspSZ-1", "TspSZ-1-abs"} {
				if r := byName[exact]; r.MaxF != 0 {
					t.Errorf("%s max Fréchet %v, want 0 (bit-exact)", exact, r.MaxF)
				}
			}
		})
	}
}

func TestPrintTable(t *testing.T) {
	rows := []TableRow{{Compressor: "X", Setting: "s", CR: 2, PSNR: math.Inf(1)}}
	var buf bytes.Buffer
	PrintTable(&buf, "T", rows)
	out := buf.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "X") || !strings.Contains(out, "/") {
		t.Errorf("unexpected table output:\n%s", out)
	}
}

func TestRunRateDistortion(t *testing.T) {
	cfg := tinyConfig(t, "cba")
	pts, err := RunRateDistortion(cfg, []float64{1e-3, 1e-2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 2 modes × 2 bounds × 3 compressors, plus the extra ZFP* series.
	if len(pts) != 14 {
		t.Fatalf("%d points, want 14", len(pts))
	}
	for _, p := range pts {
		if p.Bitrate <= 0 || p.Bitrate > 32 {
			t.Errorf("%s: bitrate %v out of range", p.Compressor, p.Bitrate)
		}
		if p.PSNR < 10 {
			t.Errorf("%s: implausible PSNR %v", p.Compressor, p.PSNR)
		}
	}
	// Monotonicity within one series: larger bound -> lower bitrate.
	series := map[string][]RDPoint{}
	for _, p := range pts {
		series[p.Compressor] = append(series[p.Compressor], p)
	}
	for name, s := range series {
		for i := 1; i < len(s); i++ {
			if s[i].ErrBound > s[i-1].ErrBound && s[i].Bitrate >= s[i-1].Bitrate {
				t.Errorf("%s: bitrate not decreasing with bound: %+v", name, s)
			}
		}
	}
	var buf bytes.Buffer
	PrintRD(&buf, "rd", pts)
	if !strings.Contains(buf.String(), "Bitrate") {
		t.Error("PrintRD missing header")
	}
}

func TestRunScalability(t *testing.T) {
	cfg := tinyConfig(t, "cba")
	pts, err := RunScalability(cfg, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5*2 {
		t.Fatalf("%d points, want 10", len(pts))
	}
	for _, p := range pts {
		if p.Tc <= 0 || p.Td <= 0 || p.SpeedupC <= 0 {
			t.Errorf("%s workers=%d: bad timing %+v", p.Compressor, p.Workers, p)
		}
	}
	var buf bytes.Buffer
	PrintScalability(&buf, "sc", pts)
	if !strings.Contains(buf.String(), "SpeedupC") {
		t.Error("PrintScalability missing header")
	}
}

func TestRunParamStudy(t *testing.T) {
	cfg := tinyConfig(t, "cba")
	study := ParamStudy{MaxSteps: []int{40, 80}, StepSize: []float64{0.1}, Tau: []float64{1}}
	pts, err := RunParamStudy(cfg, study, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points, want 4", len(pts))
	}
	var buf bytes.Buffer
	PrintParamStudy(&buf, "ps", pts)
	if !strings.Contains(buf.String(), "Param") {
		t.Error("PrintParamStudy missing header")
	}
}

func TestRunErrorMap(t *testing.T) {
	cfg := tinyConfig(t, "cba")
	rel, abs, err := RunErrorMap(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Errors) == 0 || len(abs.Errors) != len(rel.Errors) {
		t.Fatal("error maps missing")
	}
	if rel.MaxErr < rel.MeanErr || abs.MaxErr < abs.MeanErr {
		t.Error("max error below mean error")
	}
	// The paper's §VI claim: at matched compression ratios, absolute error
	// control yields better data quality than point-wise relative control.
	if ratio := abs.CR / rel.CR; ratio > 0.85 && ratio < 1.15 {
		if abs.PSNR <= rel.PSNR {
			t.Errorf("at matched CR (%.2f vs %.2f), abs PSNR %.2f not above rel %.2f",
				abs.CR, rel.CR, abs.PSNR, rel.PSNR)
		}
	}
	var buf bytes.Buffer
	PrintErrMap(&buf, "em", rel, abs)
	if !strings.Contains(buf.String(), "MeanErr") {
		t.Error("PrintErrMap missing header")
	}
}

func TestRunLosslessMap(t *testing.T) {
	cfg := tinyConfig(t, "cba")
	rows, err := RunLosslessMap(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Fraction < 0 || r.Fraction > 1 {
			t.Errorf("%s: fraction %v", r.Compressor, r.Fraction)
		}
		count := 0
		for _, m := range r.Marks {
			if m {
				count++
			}
		}
		if count != r.Count {
			t.Errorf("%s: count %d != marks %d", r.Compressor, r.Count, count)
		}
	}
	var buf bytes.Buffer
	PrintLosslessMap(&buf, "lm", rows)
	if !strings.Contains(buf.String(), "Fraction") {
		t.Error("PrintLosslessMap missing header")
	}
}
