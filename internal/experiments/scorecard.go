package experiments

import (
	"fmt"
	"io"
	"math"
)

// Claim is one qualitative statement from the paper's evaluation, checked
// against regenerated results. Reproduction targets the *shape* of the
// results (who wins, roughly by how much, where trade-offs fall), not the
// absolute numbers, which depend on the substituted datasets and host.
type Claim struct {
	ID     string
	Text   string
	Pass   bool
	Detail string
}

// TableScorecard evaluates the per-dataset claims of Tables IV-VII against
// one regenerated table.
func TableScorecard(rows []TableRow) []Claim {
	byName := map[string]TableRow{}
	for _, r := range rows {
		byName[r.Compressor] = r
	}
	var claims []Claim
	add := func(id, text string, pass bool, detail string) {
		claims = append(claims, Claim{ID: id, Text: text, Pass: pass, Detail: detail})
	}

	// C1: lossless baselines land well under 2× (the paper's motivation).
	zs, gz := byName["ZSTD"], byName["GZIP"]
	add("C1", "lossless baselines compress under ~2x",
		zs.CR > 0 && zs.CR < 2.5 && gz.CR > 0 && gz.CR < 2.5,
		fmt.Sprintf("ZSTD %.2f, GZIP %.2f", zs.CR, gz.CR))

	// C2: every TspSZ variant preserves the skeleton (#IS == 0).
	pass := true
	detail := ""
	for _, n := range []string{"TspSZ-1", "TspSZ-i", "TspSZ-1-abs", "TspSZ-i-abs"} {
		r := byName[n]
		detail += fmt.Sprintf("%s:%d ", n, r.IS)
		if r.IS != 0 {
			pass = false
		}
	}
	add("C2", "TspSZ variants have zero incorrect separatrices", pass, detail)

	// C3: TspSZ-1 separatrices are exact (zero Fréchet).
	add("C3", "TspSZ-1 separatrices are bit-exact",
		//lint:allow floatcmp the lossless variant must reproduce trajectories bit-identically, so the Fréchet max is exactly 0
		byName["TspSZ-1"].MaxF == 0 && byName["TspSZ-1-abs"].MaxF == 0,
		fmt.Sprintf("maxF %.3g / %.3g", byName["TspSZ-1"].MaxF, byName["TspSZ-1-abs"].MaxF))

	// C4: TspSZ-i ratio comparable to or better than TspSZ-1 (the paper
	// reports "usually better"; on tiny grids the iterative patch can
	// occasionally exceed the selective-lossless set, hence the slack).
	add("C4", "TspSZ-i compresses comparably to or better than TspSZ-1",
		byName["TspSZ-i"].CR >= byName["TspSZ-1"].CR*0.85 &&
			byName["TspSZ-i-abs"].CR >= byName["TspSZ-1-abs"].CR*0.85,
		fmt.Sprintf("rel %.2f vs %.2f; abs %.2f vs %.2f",
			byName["TspSZ-i"].CR, byName["TspSZ-1"].CR,
			byName["TspSZ-i-abs"].CR, byName["TspSZ-1-abs"].CR))

	// C5: TspSZ beats lossless compression on ratio.
	best := math.Max(zs.CR, gz.CR)
	add("C5", "TspSZ ratios exceed lossless baselines",
		byName["TspSZ-i"].CR > best && byName["TspSZ-i-abs"].CR > best,
		fmt.Sprintf("TspSZ-i %.2f / TspSZ-i-abs %.2f vs lossless %.2f",
			byName["TspSZ-i"].CR, byName["TspSZ-i-abs"].CR, best))

	// C6: plain cpSZ (either mode) distorts separatrices on this dataset
	// family (nonzero #IS or nonzero Fréchet drift) — the paper's Fig. 1.
	cp, cpa := byName["cpSZ"], byName["cpSZ-abs"]
	add("C6", "cpSZ alone does not preserve separatrices",
		cp.IS > 0 || cpa.IS > 0 || cp.MaxF > 0 || cpa.MaxF > 0,
		fmt.Sprintf("cpSZ #IS=%d maxF=%.3g; cpSZ-abs #IS=%d maxF=%.3g", cp.IS, cp.MaxF, cpa.IS, cpa.MaxF))

	// C7: TspSZ-i keeps Fréchet drift within the tolerance while cpSZ's
	// drift is unbounded by τ.
	ti, tia := byName["TspSZ-i"], byName["TspSZ-i-abs"]
	add("C7", "TspSZ-i max Fréchet stays within tau",
		ti.MaxF <= 1.5*math.Sqrt2 && tia.MaxF <= 1.5*math.Sqrt2,
		fmt.Sprintf("%.3g / %.3g", ti.MaxF, tia.MaxF))

	// C8: decompression is much faster than compression for TspSZ
	// (the paper's "compressed once, decompressed many times" argument).
	add("C8", "TspSZ decompression much faster than compression",
		tia.Td < tia.Tc && ti.Td < ti.Tc,
		fmt.Sprintf("abs %.3fs vs %.3fs; rel %.3fs vs %.3fs", tia.Td, tia.Tc, ti.Td, ti.Tc))

	return claims
}

// ErrMapScorecard evaluates the §VI claim behind Fig. 3.
func ErrMapScorecard(rel, abs *ErrMapResult) []Claim {
	matched := abs.CR/rel.CR > 0.8 && abs.CR/rel.CR < 1.25
	pass := matched && abs.PSNR > rel.PSNR && abs.MeanErr < rel.MeanErr
	return []Claim{{
		ID:   "C9",
		Text: "absolute error control beats relative at matched CR (PSNR up, mean error down)",
		Pass: pass,
		Detail: fmt.Sprintf("CR %.2f vs %.2f; PSNR %.2f vs %.2f; meanErr %.3g vs %.3g",
			abs.CR, rel.CR, abs.PSNR, rel.PSNR, abs.MeanErr, rel.MeanErr),
	}}
}

// LosslessScorecard evaluates the Fig. 6 claim: TspSZ-i stores only a small
// fraction losslessly, and absolute control needs no more than relative.
func LosslessScorecard(rows []LosslessMapResult) []Claim {
	byName := map[string]LosslessMapResult{}
	for _, r := range rows {
		byName[r.Compressor] = r
	}
	ti, tia := byName["TspSZ-i"], byName["TspSZ-i-abs"]
	return []Claim{{
		ID:   "C10",
		Text: "TspSZ-i lossless fraction is small (single-digit percent)",
		Pass: ti.Fraction < 0.15 && tia.Fraction < 0.15,
		Detail: fmt.Sprintf("TspSZ-i %.2f%%, TspSZ-i-abs %.2f%%",
			100*ti.Fraction, 100*tia.Fraction),
	}}
}

// PrintScorecard renders claims with PASS/FAIL verdicts.
func PrintScorecard(w io.Writer, title string, claims []Claim) {
	fmt.Fprintf(w, "%s\n", title)
	for _, c := range claims {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "  [%s] %-4s %s (%s)\n", c.ID, verdict, c.Text, c.Detail)
	}
}
