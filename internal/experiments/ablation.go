package experiments

import (
	"fmt"
	"io"
	"time"

	"tspsz/internal/cpsz"
	"tspsz/internal/ebound"
	"tspsz/internal/metrics"
)

// AblationRow is one configuration of the design-choice ablations
// (DESIGN.md §4): predictor family and error-control mode, measured at the
// codec level on the configured dataset.
type AblationRow struct {
	Knob   string // "predictor" or "mode"
	Value  string
	CR     float64
	PSNR   float64
	Tc, Td float64
}

// RunAblation measures the impact of the codec-level design choices the
// repository isolates: Lorenzo vs SZ3-style interpolation prediction, and
// relative vs absolute error control, all on the revised cpSZ without
// separatrix machinery so the codec effect is unconfounded.
func RunAblation(cfg DataConfig, workers int) ([]AblationRow, error) {
	f, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	runOne := func(knob, value string, opts cpsz.Options) error {
		t0 := time.Now()
		res, err := cpsz.Compress(f, opts)
		if err != nil {
			return fmt.Errorf("%s=%s: %w", knob, value, err)
		}
		tc := time.Since(t0).Seconds()
		t0 = time.Now()
		var dec = res.Decompressed
		if _, err := cpsz.Decompress(res.Bytes, opts.Workers); err != nil {
			return err
		}
		rows = append(rows, AblationRow{
			Knob: knob, Value: value,
			CR:   metrics.CR(f, len(res.Bytes)),
			PSNR: metrics.PSNR(f, dec),
			Tc:   tc, Td: time.Since(t0).Seconds(),
		})
		return nil
	}
	for _, pred := range []cpsz.Predictor{cpsz.PredictorLorenzo, cpsz.PredictorInterpolation} {
		if err := runOne("predictor", pred.String(), cpsz.Options{
			Mode: ebound.Absolute, ErrBound: cfg.EpsAbs, Workers: workers, Predictor: pred,
		}); err != nil {
			return nil, err
		}
	}
	for _, mode := range []ebound.Mode{ebound.Relative, ebound.Absolute} {
		eps := cfg.EpsRel
		if mode == ebound.Absolute {
			eps = cfg.EpsAbs
		}
		if err := runOne("mode", mode.String(), cpsz.Options{
			Mode: mode, ErrBound: eps, Workers: workers,
		}); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// PrintAblation renders the ablation rows.
func PrintAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s %-14s %8s %8s %10s %10s\n", "Knob", "Value", "CR", "PSNR", "Tc(s)", "Td(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-14s %8.2f %8.2f %10.3f %10.3f\n", r.Knob, r.Value, r.CR, r.PSNR, r.Tc, r.Td)
	}
}

// WriteAblationCSV emits the ablation rows as CSV.
func WriteAblationCSV(w io.Writer, rows []AblationRow) error {
	_, err := fmt.Fprintln(w, "knob,value,cr,psnr,tc_s,td_s")
	if err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%s,%s,%s\n",
			r.Knob, r.Value, fmtF(r.CR), fmtF(r.PSNR), fmtF(r.Tc), fmtF(r.Td)); err != nil {
			return err
		}
	}
	return nil
}
