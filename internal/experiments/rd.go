package experiments

import (
	"fmt"
	"io"

	"tspsz/internal/core"
	"tspsz/internal/cpsz"
	"tspsz/internal/ebound"
	"tspsz/internal/metrics"
	"tspsz/internal/zfp"
)

// RDPoint is one point of a rate-distortion curve (Fig. 4): bitrate in
// bits per value against PSNR in dB.
type RDPoint struct {
	Compressor string
	ErrBound   float64
	Bitrate    float64
	PSNR       float64
}

// RunRateDistortion sweeps the error bound for each compressor variant and
// reports the rate-distortion series of Fig. 4. ebs are interpreted as
// absolute bounds for the -abs variants and relative factors otherwise.
func RunRateDistortion(cfg DataConfig, ebs []float64, workers int) ([]RDPoint, error) {
	f, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	var out []RDPoint
	// Extra series beyond the paper's figure: the ZFP-style transform
	// codec, the other major compressor family §II reviews.
	for _, eb := range ebs {
		data, err := zfp.Compress(f, eb)
		if err != nil {
			return nil, fmt.Errorf("zfp eb=%g: %w", eb, err)
		}
		dec, err := zfp.Decompress(data)
		if err != nil {
			return nil, err
		}
		out = append(out, RDPoint{
			Compressor: "ZFP*",
			ErrBound:   eb,
			Bitrate:    metrics.Bitrate(metrics.CR(f, len(data))),
			PSNR:       metrics.PSNR(f, dec),
		})
	}
	for _, mode := range []ebound.Mode{ebound.Relative, ebound.Absolute} {
		suffix := ""
		if mode == ebound.Absolute {
			suffix = "-abs"
		}
		for _, eb := range ebs {
			res, err := cpsz.Compress(f, cpsz.Options{Mode: mode, ErrBound: eb, Workers: workers})
			if err != nil {
				return nil, fmt.Errorf("cpSZ%s eb=%g: %w", suffix, eb, err)
			}
			out = append(out, RDPoint{
				Compressor: "cpSZ" + suffix,
				ErrBound:   eb,
				Bitrate:    metrics.Bitrate(metrics.CR(f, len(res.Bytes))),
				PSNR:       metrics.PSNR(f, res.Decompressed),
			})
			for _, variant := range []core.Variant{core.TspSZ1, core.TspSZi} {
				name := "TspSZ-1" + suffix
				if variant == core.TspSZi {
					name = "TspSZ-i" + suffix
				}
				tres, err := core.Compress(f, core.Options{
					Variant: variant, Mode: mode, ErrBound: eb,
					Params: cfg.Params, Tau: cfg.Tau, Workers: workers,
				})
				if err != nil {
					return nil, fmt.Errorf("%s eb=%g: %w", name, eb, err)
				}
				out = append(out, RDPoint{
					Compressor: name,
					ErrBound:   eb,
					Bitrate:    metrics.Bitrate(metrics.CR(f, len(tres.Bytes))),
					PSNR:       metrics.PSNR(f, tres.Decompressed),
				})
			}
		}
	}
	return out, nil
}

// DefaultRDBounds returns the bound sweep used for the shipped Fig. 4
// reproduction, one ladder per mode interpretation.
func DefaultRDBounds() []float64 { return []float64{1e-3, 5e-3, 1e-2, 5e-2} }

// PrintRD renders the rate-distortion series, one line per point, grouped
// by compressor so the series can be plotted directly.
func PrintRD(w io.Writer, title string, pts []RDPoint) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-13s %10s %10s %10s\n", "Compressor", "ErrBound", "Bitrate", "PSNR")
	for _, p := range pts {
		fmt.Fprintf(w, "%-13s %10.2g %10.3f %10.2f\n", p.Compressor, p.ErrBound, p.Bitrate, p.PSNR)
	}
}
