// Package experiments regenerates every table and figure of the paper's
// evaluation (§VIII): the quantitative Tables IV–VII, the rate-distortion
// curves of Fig. 4, the scalability sweep of Fig. 8, the parameter study of
// Table VIII, and the error/lossless maps behind Figs. 3 and 6. It is
// shared by cmd/tspbench and the root bench_test.go so the numbers printed
// by both come from exactly the same code.
package experiments

import (
	"fmt"
	"math"

	"tspsz/internal/datagen"
	"tspsz/internal/field"
	"tspsz/internal/integrate"
)

// DataConfig describes one dataset row of Table III plus the settings the
// paper uses for it in Tables IV–VII.
type DataConfig struct {
	// Name is the datagen dataset name.
	Name string
	// Scale is the fraction of the paper's full resolution to generate
	// (EXPERIMENTS.md records the scales used for the shipped results).
	Scale float64
	// Params are the RK4 parameters θ for this dataset (the h and t of
	// the tables' Setting column).
	Params integrate.Params
	// Tau is the Fréchet tolerance τ_t.
	Tau float64
	// EpsRel and EpsAbs are the error bounds for the relative-mode and
	// absolute-mode compressor rows; EpsSoS drives the cpSZ-sos row. As
	// in the paper, they are adjusted per dataset to land the compressors
	// at comparable ratios.
	EpsRel, EpsAbs, EpsSoS float64
}

// Standard returns the four paper datasets at the given scale with the
// Setting-column parameters of Tables IV–VII. Integration step budgets use
// the paper's absolute values: the generators keep critical point *density*
// fixed, so the ratio of trajectory length (t·h) to critical point spacing
// — which controls how much structure a separatrix crosses — matches the
// full-scale setting at any grid scale.
func Standard(scale float64) []DataConfig {
	return []DataConfig{
		{
			Name: "cba", Scale: 1, // full size: the CBA grid is tiny
			Params: integrate.Params{EpsP: 1e-2, MaxSteps: 3000, H: 1},
			Tau:    0.5,
			EpsRel: 5e-2, EpsAbs: 5e-4, EpsSoS: 6e-6,
		},
		{
			Name: "ocean", Scale: scale,
			Params: integrate.Params{EpsP: 1e-2, MaxSteps: 1000, H: 2.5e-2},
			Tau:    math.Sqrt2,
			EpsRel: 2e-1, EpsAbs: 2e-2, EpsSoS: 1e-5,
		},
		{
			Name: "hurricane", Scale: scale,
			Params: integrate.Params{EpsP: 1e-2, MaxSteps: 1000, H: 5e-2},
			Tau:    math.Sqrt2,
			EpsRel: 5e-2, EpsAbs: 5e-3, EpsSoS: 3e-5,
		},
		{
			Name: "nek5000", Scale: scale,
			Params: integrate.Params{EpsP: 1e-2, MaxSteps: 1000, H: 2.5e-2},
			Tau:    math.Sqrt2,
			EpsRel: 1e-1, EpsAbs: 1e-2, EpsSoS: 1e-5,
		},
	}
}

// Config returns the Standard config for one dataset name.
func Config(name string, scale float64) (DataConfig, error) {
	for _, c := range Standard(scale) {
		if c.Name == name {
			return c, nil
		}
	}
	return DataConfig{}, fmt.Errorf("experiments: unknown dataset %q (want one of %v)", name, datagen.Names())
}

// Generate builds the dataset for a config.
func (c DataConfig) Generate() (*field.Field, error) {
	return datagen.ByName(c.Name, c.Scale)
}

// DefaultScale is the resolution fraction the shipped experiment results
// use: large enough to exhibit the paper's trends, small enough for a
// laptop run (the paper's full Nek5000 alone is 1.5 GB).
const DefaultScale = 0.08
