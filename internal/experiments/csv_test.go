package experiments

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	recs, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("parse csv: %v", err)
	}
	return recs
}

func TestWriteTableCSV(t *testing.T) {
	rows := []TableRow{
		{Compressor: "GZIP", Setting: "/", CR: 1.1, PSNR: math.Inf(1)},
		{Compressor: "TspSZ-i", Setting: "eps=1e-2", CR: 7.7, PSNR: 81.9, IS: 0, MaxF: 1.41, Tc: 45.89, Td: 0.34},
	}
	var buf bytes.Buffer
	if err := WriteTableCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3", len(recs))
	}
	if recs[0][0] != "compressor" {
		t.Errorf("header %v", recs[0])
	}
	if recs[1][3] != "inf" {
		t.Errorf("lossless PSNR serialized as %q, want inf", recs[1][3])
	}
	if recs[2][0] != "TspSZ-i" || recs[2][4] != "0" {
		t.Errorf("row %v", recs[2])
	}
}

func TestWriteRDCSV(t *testing.T) {
	pts := []RDPoint{{Compressor: "cpSZ", ErrBound: 1e-2, Bitrate: 4.5, PSNR: 73.4}}
	var buf bytes.Buffer
	if err := WriteRDCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 2 || recs[1][0] != "cpSZ" {
		t.Fatalf("records %v", recs)
	}
}

func TestWriteScalabilityCSV(t *testing.T) {
	pts := []ScalePoint{{Compressor: "SZ3", Workers: 8, Tc: 1.5, Td: 0.2, SpeedupC: 6.1, SpeedupD: 2.0}}
	var buf bytes.Buffer
	if err := WriteScalabilityCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SZ3,8,") {
		t.Errorf("output %q", buf.String())
	}
}

func TestWriteParamStudyCSV(t *testing.T) {
	pts := []ParamPoint{{Param: "t", Value: 1000, CR: 5.03, Tc: 260.57, Td: 0.15}}
	var buf bytes.Buffer
	if err := WriteParamStudyCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "t,1000,") {
		t.Errorf("output %q", buf.String())
	}
}

func TestWriteLosslessMapCSV(t *testing.T) {
	rows := []LosslessMapResult{{Compressor: "TspSZ-i-abs", Count: 42, Fraction: 0.0074}}
	var buf bytes.Buffer
	if err := WriteLosslessMapCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TspSZ-i-abs,42,") {
		t.Errorf("output %q", buf.String())
	}
}

func TestWriteErrMapCSV(t *testing.T) {
	rel := &ErrMapResult{Mode: "rel", CR: 6.6, PSNR: 73.4, MeanErr: 1e-3, MaxErr: 0.2}
	abs := &ErrMapResult{Mode: "abs", CR: 7.0, PSNR: 93.6, MeanErr: 1e-4, MaxErr: 0.02}
	var buf bytes.Buffer
	if err := WriteErrMapCSV(&buf, rel, abs); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 3 || recs[1][0] != "rel" || recs[2][0] != "abs" {
		t.Fatalf("records %v", recs)
	}
}
