package experiments

import (
	"fmt"
	"io"

	"tspsz/internal/core"
	"tspsz/internal/cpsz"
	"tspsz/internal/ebound"
	"tspsz/internal/segment"
	"tspsz/internal/skeleton"
)

// SegRow is one compressor's basin-agreement measurement. This experiment
// extends the paper's evaluation: it quantifies domain-level topology
// preservation (the vector-field analogue of MSz's Morse-Smale
// segmentation metric [40]) instead of per-separatrix distances.
type SegRow struct {
	Compressor string
	// Agreement is the fraction of vertices whose attraction basin
	// (absorbing sink of the forward streamline) is unchanged.
	Agreement float64
	// Assigned is the fraction of vertices absorbed by any sink in the
	// original data (the rest exit the domain or hit the step budget).
	Assigned float64
}

// RunSegmentation labels every vertex with its attraction basin on the
// original data, then measures basin agreement after cpSZ and TspSZ-i
// under both error-control modes.
func RunSegmentation(cfg DataConfig, workers int) ([]SegRow, error) {
	f, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	cps := skeleton.ExtractCPsParallel(f, workers)
	// Basin labeling uses its own integration parameters: a capture
	// radius of ε_p would label almost nothing (separatrix tracing wants
	// tight absorption; basins want "which sink's neighbourhood do you
	// enter"), so the radius grows to most of a grid cell and the budget
	// covers several eddy diameters.
	par := cfg.Params
	par.EpsP = 0.9
	par.H = 0.1
	par.MaxSteps = 1500
	// Rotational (divergence-free) flows have no true attractors, so a
	// trajectory that spends its budget orbiting an eddy is labeled by the
	// nearest critical point to its final position.
	const capture = 6.0
	// Stride-2 seeding keeps the experiment tractable at larger scales;
	// agreement is measured over the same sublattice for every compressor.
	const stride = 2
	orig, seeds := segment.BasinsCapture(f, cps, 1, par, workers, stride, capture)
	assigned := 0
	for _, i := range seeds {
		if orig[i] != segment.Unassigned {
			assigned++
		}
	}
	assignedFrac := float64(assigned) / float64(len(seeds))

	var rows []SegRow
	for _, mode := range []ebound.Mode{ebound.Relative, ebound.Absolute} {
		eps := cfg.EpsRel
		suffix := ""
		if mode == ebound.Absolute {
			eps = cfg.EpsAbs
			suffix = "-abs"
		}
		res, err := cpsz.Compress(f, cpsz.Options{Mode: mode, ErrBound: eps, Workers: workers})
		if err != nil {
			return nil, err
		}
		dec, _ := segment.BasinsCapture(res.Decompressed, cps, 1, par, workers, stride, capture)
		rows = append(rows, SegRow{
			Compressor: "cpSZ" + suffix,
			Agreement:  segment.AgreementAt(orig, dec, seeds),
			Assigned:   assignedFrac,
		})

		tres, err := core.Compress(f, core.Options{
			Variant: core.TspSZi, Mode: mode, ErrBound: eps,
			Params: par, Tau: cfg.Tau, Workers: workers,
		})
		if err != nil {
			return nil, err
		}
		dec, _ = segment.BasinsCapture(tres.Decompressed, cps, 1, par, workers, stride, capture)
		rows = append(rows, SegRow{
			Compressor: "TspSZ-i" + suffix,
			Agreement:  segment.AgreementAt(orig, dec, seeds),
			Assigned:   assignedFrac,
		})
	}
	return rows, nil
}

// PrintSegmentation renders the basin-agreement rows.
func PrintSegmentation(w io.Writer, title string, rows []SegRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-13s %12s %12s\n", "Compressor", "Agreement", "Assigned")
	for _, r := range rows {
		fmt.Fprintf(w, "%-13s %11.2f%% %11.2f%%\n", r.Compressor, 100*r.Agreement, 100*r.Assigned)
	}
}
