package experiments

import (
	"fmt"
	"io"
	"time"

	"tspsz/internal/core"
	"tspsz/internal/ebound"
	"tspsz/internal/integrate"
	"tspsz/internal/metrics"
)

// ParamPoint is one column of Table VIII: the effect of one integration or
// tolerance parameter on TspSZ-i-abs.
type ParamPoint struct {
	Param  string // "t", "h", or "tau"
	Value  float64
	CR     float64
	Tc, Td float64
}

// ParamStudy configures the Table VIII sweeps. Zero-valued fields fall back
// to the paper's grids scaled to the configured dataset.
type ParamStudy struct {
	MaxSteps []int
	StepSize []float64
	Tau      []float64
}

// DefaultParamStudy returns the paper's Table VIII grids.
func DefaultParamStudy() ParamStudy {
	return ParamStudy{
		MaxSteps: []int{500, 1000, 1500, 2000},
		StepSize: []float64{0.1, 0.05, 0.025, 0.01},
		Tau:      []float64{5, 3, 1.4142135623730951, 1},
	}
}

// RunParamStudy reproduces Table VIII on the configured dataset using
// TspSZ-i with absolute error control (the paper's setting).
func RunParamStudy(cfg DataConfig, study ParamStudy, workers int) ([]ParamPoint, error) {
	f, err := cfg.Generate()
	if err != nil {
		return nil, err
	}
	var out []ParamPoint
	run := func(param string, value float64, ip integrate.Params, tau float64) error {
		t0 := time.Now()
		res, err := core.Compress(f, core.Options{
			Variant: core.TspSZi, Mode: ebound.Absolute, ErrBound: cfg.EpsAbs,
			Params: ip, Tau: tau, Workers: workers,
		})
		if err != nil {
			return fmt.Errorf("param %s=%v: %w", param, value, err)
		}
		tc := time.Since(t0).Seconds()
		t0 = time.Now()
		if _, err := core.Decompress(res.Bytes, workers); err != nil {
			return err
		}
		out = append(out, ParamPoint{
			Param: param, Value: value,
			CR: metrics.CR(f, len(res.Bytes)),
			Tc: tc, Td: time.Since(t0).Seconds(),
		})
		return nil
	}
	for _, t := range study.MaxSteps {
		ip := cfg.Params
		ip.MaxSteps = t
		if err := run("t", float64(t), ip, cfg.Tau); err != nil {
			return nil, err
		}
	}
	for _, h := range study.StepSize {
		ip := cfg.Params
		ip.H = h
		if err := run("h", h, ip, cfg.Tau); err != nil {
			return nil, err
		}
	}
	for _, tau := range study.Tau {
		if err := run("tau", tau, cfg.Params, tau); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// PrintParamStudy renders the Table VIII layout.
func PrintParamStudy(w io.Writer, title string, pts []ParamPoint) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-6s %10s %8s %10s %10s\n", "Param", "Value", "CR", "Tc(s)", "Td(s)")
	for _, p := range pts {
		fmt.Fprintf(w, "%-6s %10.4g %8.2f %10.3f %10.3f\n", p.Param, p.Value, p.CR, p.Tc, p.Td)
	}
}
