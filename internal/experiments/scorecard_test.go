package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableScorecardOnRealRun(t *testing.T) {
	cfg := tinyConfig(t, "cba")
	rows, err := RunTable(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	claims := TableScorecard(rows)
	if len(claims) != 8 {
		t.Fatalf("%d claims, want 8", len(claims))
	}
	for _, c := range claims {
		// C8 (timing) can flake on loaded CI hosts; everything else is a
		// structural property that must reproduce.
		if !c.Pass && c.ID != "C8" {
			t.Errorf("claim %s failed: %s (%s)", c.ID, c.Text, c.Detail)
		}
	}
}

func TestTableScorecardDetectsViolations(t *testing.T) {
	rows := []TableRow{
		{Compressor: "ZSTD", CR: 1.1, PSNR: math.Inf(1)},
		{Compressor: "GZIP", CR: 1.1, PSNR: math.Inf(1)},
		{Compressor: "cpSZ", CR: 5, IS: 3, MaxF: 10},
		{Compressor: "cpSZ-abs", CR: 5, IS: 2, MaxF: 8},
		{Compressor: "TspSZ-1", CR: 3, IS: 1, MaxF: 0.2}, // violates C2/C3
		{Compressor: "TspSZ-1-abs", CR: 3},
		{Compressor: "TspSZ-i", CR: 4, Tc: 1, Td: 0.1},
		{Compressor: "TspSZ-i-abs", CR: 4, Tc: 1, Td: 0.1},
	}
	claims := TableScorecard(rows)
	byID := map[string]Claim{}
	for _, c := range claims {
		byID[c.ID] = c
	}
	if byID["C2"].Pass {
		t.Error("C2 should fail with IS=1 on TspSZ-1")
	}
	if byID["C3"].Pass {
		t.Error("C3 should fail with nonzero Fréchet on TspSZ-1")
	}
	if !byID["C6"].Pass {
		t.Error("C6 should pass when cpSZ distorts")
	}
}

func TestErrMapScorecard(t *testing.T) {
	rel := &ErrMapResult{Mode: "rel", CR: 7, PSNR: 73, MeanErr: 1e-2}
	abs := &ErrMapResult{Mode: "abs", CR: 7, PSNR: 93, MeanErr: 1e-3}
	claims := ErrMapScorecard(rel, abs)
	if len(claims) != 1 || !claims[0].Pass {
		t.Errorf("expected pass: %+v", claims)
	}
	worse := &ErrMapResult{Mode: "abs", CR: 7, PSNR: 60, MeanErr: 1e-1}
	if ErrMapScorecard(rel, worse)[0].Pass {
		t.Error("should fail when abs is worse")
	}
}

func TestLosslessScorecard(t *testing.T) {
	rows := []LosslessMapResult{
		{Compressor: "TspSZ-i", Fraction: 0.01},
		{Compressor: "TspSZ-i-abs", Fraction: 0.005},
	}
	if !LosslessScorecard(rows)[0].Pass {
		t.Error("small fractions should pass")
	}
	rows[0].Fraction = 0.5
	if LosslessScorecard(rows)[0].Pass {
		t.Error("50% lossless should fail")
	}
}

func TestPrintScorecard(t *testing.T) {
	var buf bytes.Buffer
	PrintScorecard(&buf, "claims", []Claim{
		{ID: "X", Text: "t", Pass: true, Detail: "d"},
		{ID: "Y", Text: "u", Pass: false, Detail: "e"},
	})
	out := buf.String()
	if !strings.Contains(out, "PASS") || !strings.Contains(out, "FAIL") {
		t.Errorf("output %q", out)
	}
}
