package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunStageBreakdown(t *testing.T) {
	cfg, err := Config("cba", 1)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunStageBreakdown(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want one per variant", len(rows))
	}
	for _, r := range rows {
		if r.Compress == nil || r.Decompress == nil {
			t.Fatalf("%s: missing snapshot(s)", r.Variant)
		}
		if got := r.Compress.SectionSum(); got != int64(r.Bytes) {
			t.Errorf("%s: byte partition sums to %d, archive is %d bytes", r.Variant, got, r.Bytes)
		}
		for _, stage := range []string{"cp-extract", "predict-quantize", "entropy-encode"} {
			if !r.Compress.HasStage(stage) {
				t.Errorf("%s: compress snapshot missing %q", r.Variant, stage)
			}
		}
		if !r.Decompress.HasStage("entropy-decode") {
			t.Errorf("%s: decompress snapshot missing entropy-decode", r.Variant)
		}
	}
	var buf bytes.Buffer
	if err := WriteStageBreakdownJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var round []StageBreakdown
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("breakdown JSON does not parse: %v", err)
	}
	var text strings.Builder
	PrintStageBreakdown(&text, "test", rows)
	if !strings.Contains(text.String(), "TspSZ-i") {
		t.Fatalf("printed breakdown missing variant row:\n%s", text.String())
	}
}
