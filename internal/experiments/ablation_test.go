package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAblation(t *testing.T) {
	cfg := tinyConfig(t, "cba")
	rows, err := RunAblation(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (2 predictors + 2 modes)", len(rows))
	}
	knobs := map[string]int{}
	for _, r := range rows {
		knobs[r.Knob]++
		if r.CR <= 1 {
			t.Errorf("%s=%s: CR %.2f not compressing", r.Knob, r.Value, r.CR)
		}
		if r.PSNR < 20 {
			t.Errorf("%s=%s: implausible PSNR %.2f", r.Knob, r.Value, r.PSNR)
		}
	}
	if knobs["predictor"] != 2 || knobs["mode"] != 2 {
		t.Errorf("knob counts %v", knobs)
	}
	var buf bytes.Buffer
	PrintAblation(&buf, "ab", rows)
	if !strings.Contains(buf.String(), "Knob") {
		t.Error("PrintAblation missing header")
	}
	buf.Reset()
	if err := WriteAblationCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "knob,value,") {
		t.Error("CSV header missing")
	}
}
