package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSequence(t *testing.T) {
	cfg := tinyConfig(t, "ocean")
	row, err := RunSequence(cfg, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if row.Frames != 3 || row.TemporalBytes <= 0 || row.StandaloneBytes <= 0 {
		t.Fatalf("implausible row %+v", row)
	}
	// Temporal must not be dramatically worse than standalone; on slowly
	// drifting data it is normally smaller.
	if float64(row.TemporalBytes) > 1.1*float64(row.StandaloneBytes) {
		t.Errorf("temporal %d far above standalone %d", row.TemporalBytes, row.StandaloneBytes)
	}
	var buf bytes.Buffer
	PrintSequence(&buf, "seq", row)
	if !strings.Contains(buf.String(), "saving") {
		t.Error("PrintSequence missing saving line")
	}
}

func TestRunSequenceRejectsOtherDatasets(t *testing.T) {
	cfg := tinyConfig(t, "cba")
	if _, err := RunSequence(cfg, 2, 1); err == nil {
		t.Error("non-ocean dataset accepted")
	}
}
