package analysis

import (
	"strings"
	"testing"
)

// TestSuppressMultipleChecks: one //lint:allow comment may name several
// checks, comma-separated, and suppresses each of them on that line.
func TestSuppressMultipleChecks(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/multi.go": `package dec

import "encoding/binary"

func Pick(data []byte) byte {
	n := int(binary.LittleEndian.Uint16(data))
	//lint:allow indexguard,allocguard callers hand in exactly 2+n bytes
	return make([]byte, n)[0] + data[n]
}
`,
	})
	if got := runCheck(t, dir, "allocguard"); len(got) != 0 {
		t.Errorf("allocguard not suppressed: %v", got)
	}
	if got := runCheck(t, dir, "indexguard"); len(got) != 0 {
		t.Errorf("indexguard not suppressed: %v", got)
	}
}

// TestSuppressPlacement: a directive works trailing the flagged line or on
// the line directly above it, but not from two lines away.
func TestSuppressPlacement(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/place.go": `package dec

import "encoding/binary"

func Trailing(data []byte) []byte {
	n := binary.LittleEndian.Uint16(data)
	return make([]byte, n) //lint:allow allocguard uint16 bounds this to 64 KiB
}

func Above(data []byte) []byte {
	n := binary.LittleEndian.Uint16(data)
	//lint:allow allocguard uint16 bounds this to 64 KiB
	return make([]byte, n)
}

func TooFar(data []byte) []byte {
	n := binary.LittleEndian.Uint16(data)
	//lint:allow allocguard this comment is two lines above the sink

	return make([]byte, n)
}
`,
	})
	expectLines(t, runCheck(t, dir, "allocguard"), "internal/dec/place.go:20")
}

// TestSuppressUnknownCheck: a typoed check name must surface as a finding
// (check "allow"), not be silently accepted, and must not suppress
// anything.
func TestSuppressUnknownCheck(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/unknown.go": `package dec

import "encoding/binary"

func Oops(data []byte) []byte {
	n := binary.LittleEndian.Uint16(data)
	//lint:allow allocgaurd typo in the check name
	return make([]byte, n)
}
`,
	})
	got := runCheck(t, dir, "allocguard")
	if len(got) != 2 {
		t.Fatalf("got %d findings %v, want 2 (unknown-name report + unsuppressed allocguard)", len(got), got)
	}
	var sawAllow, sawAlloc bool
	for _, f := range got {
		switch f.Check {
		case "allow":
			sawAllow = true
			if !strings.Contains(f.Message, `"allocgaurd"`) {
				t.Errorf("allow finding does not name the bad check: %q", f.Message)
			}
		case "allocguard":
			sawAlloc = true
		}
	}
	if !sawAllow || !sawAlloc {
		t.Errorf("findings %v, want one allow and one allocguard", got)
	}
}

// TestSuppressMixedKnownUnknown: the known names of a directive still
// suppress even when an unknown name rides along (which is reported).
func TestSuppressMixedKnownUnknown(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/mixed.go": `package dec

import "encoding/binary"

func Mixed(data []byte) []byte {
	n := binary.LittleEndian.Uint16(data)
	//lint:allow allocguard,nosuchcheck bounded by uint16
	return make([]byte, n)
}
`,
	})
	got := runCheck(t, dir, "allocguard")
	if len(got) != 1 || got[0].Check != "allow" {
		t.Fatalf("got %v, want exactly the unknown-name report", got)
	}
}

// TestSuppressUnknownCheckListsAllNames: the unknown-name diagnostic must
// enumerate every valid check name (including raceguard, added in PR 6),
// so the fix for a typoed directive is always on screen.
func TestSuppressUnknownCheckListsAllNames(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/names.go": `package dec

import "encoding/binary"

func Oops(data []byte) []byte {
	n := binary.LittleEndian.Uint16(data)
	//lint:allow raceguardd typo
	return make([]byte, n)
}
`,
	})
	got := runCheck(t, dir, "allocguard")
	var msg string
	for _, f := range got {
		if f.Check == "allow" {
			msg = f.Message
		}
	}
	if msg == "" {
		t.Fatalf("no allow finding in %v", got)
	}
	for _, name := range CheckNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("diagnostic %q does not list check %q", msg, name)
		}
	}
	if len(CheckNames()) != 11 || CheckNames()[10] != "leakguard" {
		t.Errorf("CheckNames() = %v, want 11 names ending in leakguard", CheckNames())
	}
}
