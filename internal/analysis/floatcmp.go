package analysis

import (
	"go/ast"
	"go/token"
	"path"
	"strings"
)

// floatcmpAllowedFiles lists the designated robust-predicate locations that
// may compare floats exactly: the adaptive/exact predicates themselves and
// the SoS error-bound derivation built directly on them.
func floatcmpAllowedFile(relFile string) bool {
	if strings.HasPrefix(relFile, "internal/robust/") && path.Dir(relFile) == "internal/robust" {
		return true
	}
	return relFile == "internal/ebound/sos.go"
}

func floatcmpCheck() *Check {
	return &Check{
		Name: "floatcmp",
		Doc: `Flags == and != comparisons (and switch statements) where either
operand has floating-point or complex type. Near critical points the
compressor's sign decisions must survive rounding: a raw float equality
test that holds on one machine or optimization level can fail on another,
silently changing which cells are considered critical. Use the certified
predicates in internal/robust (DetSign2/DetSign3/SoS variants) instead.
Files exempt by design: internal/robust/*.go, internal/ebound/sos.go.
Comparisons against exact sentinel values (e.g. a zero written by the
encoder itself) may be annotated //lint:allow floatcmp with a reason.`,
		Run: runFloatcmp,
	}
}

func runFloatcmp(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		if floatcmpAllowedFile(p.relFile(p.Fset.Position(f.Pos()))) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isFloat(p.Info.TypeOf(n.X)) || isFloat(p.Info.TypeOf(n.Y)) {
					out = append(out, p.finding("floatcmp", n,
						"floating-point equality comparison; use a robust predicate from internal/robust, or annotate //lint:allow floatcmp if comparing an exact sentinel"))
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloat(p.Info.TypeOf(n.Tag)) {
					out = append(out, p.finding("floatcmp", n,
						"switch on a floating-point value compares with ==; use explicit robust sign logic instead"))
				}
			}
			return true
		})
	}
	return out
}
