package analysis

import "testing"

// These tests exercise the interprocedural half of the taint engine:
// call-graph summaries must carry taint across function boundaries in
// both directions (tainted arguments reaching callee sinks, tainted
// results reaching caller sinks), through transitive chains, and
// callee-side validation must sanitize caller-side values.

// TestInterprocHuffmanOOB reproduces the PR 1 over-subscribed-table bug
// split across a function boundary: the code lengths are read in the
// caller but index the count table inside a helper. The finding lands on
// the call site that hands untrusted lengths to the unguarded helper.
func TestInterprocHuffmanOOB(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/lens.go": `package dec

import (
	"fmt"
	"io"
)

const maxCodeLen = 58

func count(lens []byte, countAt []int) {
	for _, l := range lens {
		countAt[l]++
	}
}

func countChecked(lens []byte, countAt []int) error {
	for _, l := range lens {
		if int(l) > maxCodeLen {
			return fmt.Errorf("dec: code length %d out of range", l)
		}
		countAt[l]++
	}
	return nil
}

func Decode(r io.Reader, n int) ([]int, error) {
	lens := make([]byte, n)
	if _, err := io.ReadFull(r, lens); err != nil {
		return nil, err
	}
	countAt := make([]int, maxCodeLen+1)
	count(lens, countAt)
	return countAt, nil
}

func DecodeChecked(r io.Reader, n int) ([]int, error) {
	lens := make([]byte, n)
	if _, err := io.ReadFull(r, lens); err != nil {
		return nil, err
	}
	countAt := make([]int, maxCodeLen+1)
	if err := countChecked(lens, countAt); err != nil {
		return nil, err
	}
	return countAt, nil
}
`,
	})
	expectLines(t, runCheck(t, dir, "indexguard"), "internal/dec/lens.go:32")
}

// TestInterprocUnboundedInflate reproduces the PR 2 decompression-bomb
// bug split two ways: a helper that returns the flate reader (taint
// flows out through the result) and a helper that consumes a reader
// parameter (taint flows in through the argument). The LimitReader
// variant must stay clean.
func TestInterprocUnboundedInflate(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/inflate.go": `package dec

import (
	"bytes"
	"compress/flate"
	"io"
)

func newBody(data []byte) io.ReadCloser {
	return flate.NewReader(bytes.NewReader(data))
}

func Inflate(data []byte) ([]byte, error) {
	r := newBody(data)
	defer r.Close()
	return io.ReadAll(r)
}

func slurp(r io.Reader) ([]byte, error) {
	return io.ReadAll(r)
}

func InflateVia(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	return slurp(r)
}

func InflateCapped(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	return slurp(io.LimitReader(r, 1<<20))
}
`,
	})
	expectLines(t, runCheck(t, dir, "allocguard"),
		"internal/dec/inflate.go:16", "internal/dec/inflate.go:26")
}

// TestInterprocTransitiveAlloc: taint crosses two call hops before
// reaching the allocation, and a callee that validates its parameter
// (returning a non-nil error on out-of-range) sanitizes the caller's
// value on the err == nil path.
func TestInterprocTransitiveAlloc(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/chain.go": `package dec

import (
	"encoding/binary"
	"errors"
)

func alloc(n uint64) []byte {
	return make([]byte, n)
}

func table(n uint64) []byte {
	return alloc(n)
}

func Build(data []byte) []byte {
	n := binary.LittleEndian.Uint64(data)
	return table(n)
}

func checkCount(n uint64, limit int) error {
	if n > uint64(limit) {
		return errors.New("dec: count out of range")
	}
	return nil
}

func BuildChecked(data []byte) []byte {
	n := binary.LittleEndian.Uint64(data)
	if err := checkCount(n, len(data)); err != nil {
		return nil
	}
	return table(n)
}
`,
	})
	expectLines(t, runCheck(t, dir, "allocguard"), "internal/dec/chain.go:18")
}

// TestInterprocFills: a callee that decodes stream bytes into a struct
// through a pointer parameter taints the caller's struct field; bounding
// the field afterwards sanitizes it.
func TestInterprocFills(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/fill.go": `package dec

import "encoding/binary"

type header struct {
	n int
}

func parseHeader(h *header, data []byte) {
	h.n = int(binary.LittleEndian.Uint32(data))
}

func Expand(data []byte) []int {
	var h header
	parseHeader(&h, data)
	return make([]int, h.n)
}

func ExpandChecked(data []byte) []int {
	var h header
	parseHeader(&h, data)
	if h.n < 0 || h.n > len(data) {
		return nil
	}
	return make([]int, h.n)
}
`,
	})
	expectLines(t, runCheck(t, dir, "allocguard"), "internal/dec/fill.go:16")
}

// TestInterprocMethodDispatch: taint survives method calls on concrete
// receiver types, both into a method sink and out of a method result.
func TestInterprocMethodDispatch(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/method.go": `package dec

import "encoding/binary"

type cursor struct {
	data []byte
	off  int
}

func (c *cursor) u32() uint32 {
	v := binary.LittleEndian.Uint32(c.data[c.off:])
	c.off += 4
	return v
}

type arena struct {
	slabs [][]byte
}

func (a *arena) grow(n uint32) {
	a.slabs = append(a.slabs, make([]byte, n))
}

func Parse(data []byte) *arena {
	c := &cursor{data: data}
	a := &arena{}
	a.grow(c.u32())
	return a
}

func ParseChecked(data []byte) *arena {
	c := &cursor{data: data}
	a := &arena{}
	n := c.u32()
	if n > uint32(len(data)) {
		return nil
	}
	a.grow(n)
	return a
}
`,
	})
	expectLines(t, runCheck(t, dir, "allocguard"), "internal/dec/method.go:27")
}

// TestInterprocParamIndexPanicguardUnaffected: two findings of the same
// check at the same call site (both parameters flow to sinks) must come
// out in deterministic message order, byte-identical run to run.
func TestFindingsDeterministicOrder(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/two.go": `package dec

import "encoding/binary"

func allocBoth(a, b uint64) ([]byte, []byte) {
	x := make([]byte, a)
	y := make([]byte, b)
	return x, y
}

func Two(data []byte) ([]byte, []byte) {
	n := binary.LittleEndian.Uint64(data)
	m := binary.LittleEndian.Uint64(data[8:])
	return allocBoth(n, m)
}
`,
	})
	var prev []Finding
	for round := 0; round < 3; round++ {
		got := runCheck(t, dir, "allocguard")
		if len(got) != 2 {
			t.Fatalf("round %d: got %d findings %v, want 2", round, len(got), got)
		}
		if got[0].Line != got[1].Line || got[0].Check != got[1].Check {
			t.Fatalf("round %d: expected two findings at one call site, got %v", round, got)
		}
		if got[0].Message >= got[1].Message {
			t.Errorf("round %d: findings not in message order: %q then %q", round, got[0].Message, got[1].Message)
		}
		if round > 0 {
			for i := range got {
				if got[i] != prev[i] {
					t.Errorf("round %d: finding %d differs from round %d: %v vs %v", round, i, round-1, got[i], prev[i])
				}
			}
		}
		prev = got
	}
}

// TestInterprocPanicguardSites: panicguard findings stay anchored to the
// dispatch site no matter how deep in a helper chain the bare dispatcher
// sits — the interprocedural machinery must not relocate or duplicate
// them at call sites the way summary-attributed taint findings are.
func TestInterprocPanicguardSites(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/parallel/parallel.go": fixtureParallel,
		"internal/core/decode.go": `package core

import "fixture/internal/parallel"

func scatter(out []float64) {
	parallel.For(len(out), 4, 1, func(i int) {
		out[i] = float64(i)
	})
}

func Decode(data []byte, out []float64) {
	scatter(out)
}
`,
	})
	expectLines(t, runCheck(t, dir, "panicguard"), "internal/core/decode.go:6")
}
