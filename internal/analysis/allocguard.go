package analysis

// allocguard flags allocations whose size is controlled by the untrusted
// compressed stream without a dominating bound check. This is the bug
// class behind two shipped fixes: the unbounded DEFLATE inflate (a
// 100-byte stream could claim and allocate gigabytes) and the chunk
// directory lies (fabricated usize/count driving huge buffers). The
// dataflow engine in taint.go and cfg.go does the work; this file only
// packages its allocation-sink findings as a check.
//
// Sinks: make() sizes and capacities, bytes.Buffer.Grow / slices.Grow,
// io.ReadAll / io.Copy on a decompressor reader not wrapped in
// io.LimitReader, and the module's sized field allocators
// (field.New2D/New3D), whose allocation is proportional to the product
// of their arguments.
//
// The fix is a bound that dominates the allocation: compare the value
// against a constant or a quantity derived from the actual stream length
// (every DEFLATE byte inflates to at most ~1032 bytes, every symbol
// occupies at least a fixed number of stream bytes) and reject the
// stream before allocating.

func allocguardCheck() *Check {
	return &Check{
		Name: "allocguard",
		Doc: "allocation sizes read from the compressed stream must be bounded " +
			"by a dominating check before make/Grow/inflate (decompression-bomb defense)",
		Run: func(p *Package) []Finding {
			return p.taintFindings().alloc
		},
	}
}
