package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// suppressions records, per module-relative file and line, the set of check
// names allowed there by //lint:allow comments.
type suppressions map[string]map[int]map[string]bool

// collectSuppressions scans every comment of the package for
//
//	//lint:allow <check>[,<check>...] [reason]
//
// directives. A directive applies to the line it appears on (trailing
// comment) and to the line immediately after it (preceding comment), which
// covers both styles without any file-wide escape hatch.
//
// Directives naming a check that does not exist are returned as findings
// (check "allow") instead of being recorded: a typo in a suppression must
// surface as an error, not silently stop suppressing.
func collectSuppressions(p *Package) (suppressions, []Finding) {
	known := make(map[string]bool)
	for _, name := range CheckNames() {
		known[name] = true
	}
	sup := make(suppressions)
	var bad []Finding
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllowDirective(c.Text)
				if len(names) == 0 {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				file := p.relFile(pos)
				for _, n := range names {
					if !known[n] {
						bad = append(bad, Finding{
							Check: "allow",
							File:  file,
							Line:  pos.Line,
							Col:   pos.Column,
							Message: fmt.Sprintf("//lint:allow names unknown check %q (known: %s)",
								n, strings.Join(CheckNames(), ", ")),
						})
					}
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					byLine := sup[file]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						sup[file] = byLine
					}
					set := byLine[line]
					if set == nil {
						set = make(map[string]bool)
						byLine[line] = set
					}
					for _, n := range names {
						if known[n] {
							set[n] = true
						}
					}
				}
			}
		}
	}
	sort.Slice(bad, func(i, j int) bool {
		if bad[i].File != bad[j].File {
			return bad[i].File < bad[j].File
		}
		if bad[i].Line != bad[j].Line {
			return bad[i].Line < bad[j].Line
		}
		return bad[i].Message < bad[j].Message
	})
	return sup, bad
}

// parseAllowDirective extracts check names from one comment's text, or nil
// if it is not a lint:allow directive.
func parseAllowDirective(text string) []string {
	body, ok := strings.CutPrefix(text, "//lint:allow")
	if !ok {
		// Block comments and spaced forms are not directives: the
		// conventional Go directive shape is exact.
		return nil
	}
	if body == "" || (body[0] != ' ' && body[0] != '\t') {
		return nil
	}
	body = strings.TrimSpace(body)
	if body == "" {
		return nil
	}
	// First whitespace-separated field is the comma-separated check list;
	// everything after is free-text justification.
	list := strings.Fields(body)[0]
	var names []string
	for _, n := range strings.Split(list, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

func (s suppressions) allows(check, file string, line int) bool {
	return s[file][line][check]
}
