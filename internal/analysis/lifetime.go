package analysis

// lifetime.go is the path-sensitive resource-lifetime engine shared by
// the poolguard and leakguard checks. It runs a forward must-analysis
// over the per-function CFG of cfg.go: every acquisition site
// (sync.Pool.Get, a summarized acquirer like getScratch, os.Open, ...)
// becomes a tracked resource, and the dataflow proves that on every exit
// path the resource is released exactly once, never used after release,
// and never escapes except by transferring ownership to a callee whose
// resource effect (resource.go) is known to release it.
//
// State is a pair (bind, status): bind maps variables to the set of
// resources they may alias (a bitset — at most 64 acquisition sites per
// function body, far above anything real); status tracks each resource's
// lifecycle bits per path. The join is pointwise union, so after a
// branch merge a resource can be simultaneously live (one path) and
// released (the other) — exactly the information the exit check and the
// use-after-release check need.
//
// Aliasing is deliberately narrow, tuned to the arena idioms of
// internal/cpsz (the dst-first append-threading convention):
//
//   - a call result aliases a resource only when (a) the callee's first
//     parameter is a slice and the first argument carries the resource
//     (append, binary.AppendUvarint, scratch.deflate(dst, ...)), or
//     (b) the callee is a module method whose summary says its results
//     alias its receiver (scratch.buf, scratch.dirArrays) and the
//     receiver carries the resource;
//   - field reads, indexing, slicing, dereference, and address-of
//     propagate the base's resources.
//
// Acquisitions paired with an error (f, err := os.Create(p)) or a
// comma-ok (s, ok := pool.Get().(*T)) record the guard object; the edge
// refinement kills the resource on the err != nil / !ok branch, so the
// ubiquitous early-error-return idiom carries no false obligation.
//
// Known limits (DESIGN.md §7): a put on the success path after fallible
// code is accepted even though a panic would skip it — deferred releases
// are the panic-safe form and are credited; resources captured by a
// nested closure's *reads* are not tracked through the closure; an
// acquisition whose result is immediately discarded is not tracked.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Resource status bits. Unborn (never acquired on this path, or killed
// by an error guard) is the zero value.
const (
	rLive      uint8 = 1 << iota // acquired; release still owed on this path
	rReleased                    // released on this path
	rDeferred                    // release scheduled via defer; value still usable
	rDone                        // ownership transferred (return, releasing callee, deposit)
	rConfirmed                   // survived its own err/ok guard; later guard reuse no longer kills
)

// lifeRes is one acquisition site within the analyzed body.
type lifeRes struct {
	id      int
	call    *ast.CallExpr
	class   resClass
	what    string // diagnostic name of the acquiring call
	release string // expected release, for diagnostics
	anon    bool   // ambient resource with no bound value (pprof profile)
	typ     types.Type
	guard   types.Object // paired err/ok object; the failing edge kills the resource
	guardOK bool         // guard is a comma-ok bool (kill on false) not an error (kill on non-nil)

	aliases  map[types.Object]bool // every variable that ever carried this resource
	reported bool                  // at most one leak/escape finding per site
}

type lifeState struct {
	bind   map[types.Object]uint64
	status []uint8
}

func newLifeState() *lifeState {
	return &lifeState{bind: make(map[types.Object]uint64)}
}

func (s *lifeState) clone(nres int) *lifeState {
	out := &lifeState{
		bind:   make(map[types.Object]uint64, len(s.bind)),
		status: make([]uint8, nres),
	}
	for k, v := range s.bind {
		out.bind[k] = v
	}
	copy(out.status, s.status)
	return out
}

// joinLife unions src into in[b], growing status as needed; reports change.
func joinLife(in map[*cfgBlock]*lifeState, b *cfgBlock, src *lifeState, nres int) bool {
	cur, ok := in[b]
	if !ok {
		in[b] = src.clone(nres)
		return true
	}
	changed := false
	for k, v := range src.bind {
		if cur.bind[k]|v != cur.bind[k] {
			cur.bind[k] |= v
			changed = true
		}
	}
	for len(cur.status) < len(src.status) {
		cur.status = append(cur.status, 0)
	}
	for i, v := range src.status {
		if cur.status[i]|v != cur.status[i] {
			cur.status[i] |= v
			changed = true
		}
	}
	return changed
}

// lifeSpec parameterizes the engine per check.
type lifeSpec struct {
	check   string
	classes resClass
	// lenient is the leakguard policy: storing a resource anywhere
	// (container, field, global) transfers ownership, re-acquiring over a
	// parked resource is fine, and a resource referenced inside a nested
	// closure is assumed released there. poolguard keeps all three strict
	// and uses deposit obligations instead.
	lenient bool
}

// capKind classifies where an object lives relative to the analyzed body.
type capKind int

const (
	capLocal    capKind = iota // declared inside the body
	capParam                   // parameter/receiver of the analyzed function
	capCaptured                // declared in the enclosing function (closure capture)
	capGlobal                  // package-level
)

type lifeEngine struct {
	p    *Package
	ip   *interCtx
	spec *lifeSpec

	fnNode    ast.Node // *ast.FuncDecl or *ast.FuncLit being analyzed
	body      *ast.BlockStmt
	enclosing *ast.FuncDecl // top-level decl containing a FuncLit body, else nil

	emit      func(n ast.Node, format string, args ...any)
	onDeposit func(r *lifeRes, capt types.Object, site ast.Node)

	// ownRes is the analyzed FuncDecl's own resource summary (nil for
	// FuncLits): when the summary says result i is an acquisition,
	// returning the resource at that position transfers the obligation
	// to every caller regardless of the static type of the expression
	// (getChunkBuf returns (*p)[:0], a view by type but the owner by
	// contract).
	ownRes *resEffect

	res    []*lifeRes
	byCall map[*ast.CallExpr]*lifeRes

	litRefs        map[types.Object]bool // objects referenced inside nested FuncLits
	anonLitRelease bool                  // a nested FuncLit performs the ambient release
}

func (e *lifeEngine) objOf(id *ast.Ident) types.Object {
	if o := e.p.Info.Defs[id]; o != nil {
		return o
	}
	return e.p.Info.Uses[id]
}

func (e *lifeEngine) capKindOf(obj types.Object) capKind {
	if obj == nil {
		return capGlobal
	}
	if e.p.Types != nil && obj.Parent() == e.p.Types.Scope() {
		return capGlobal
	}
	pos := obj.Pos()
	var sigStart, sigEnd, start, end token.Pos
	switch fn := e.fnNode.(type) {
	case *ast.FuncDecl:
		sigStart, sigEnd = fn.Pos(), fn.Body.Pos()
		start, end = fn.Body.Pos(), fn.Body.End()
	case *ast.FuncLit:
		sigStart, sigEnd = fn.Pos(), fn.Body.Pos()
		start, end = fn.Body.Pos(), fn.Body.End()
	}
	switch {
	case pos >= start && pos < end:
		return capLocal
	case pos >= sigStart && pos < sigEnd:
		return capParam
	case e.enclosing != nil && pos >= e.enclosing.Pos() && pos < e.enclosing.End():
		return capCaptured
	}
	return capGlobal
}

// run drives the fixpoint and then replays the settled states emitting
// findings.
func (e *lifeEngine) run() {
	e.byCall = make(map[*ast.CallExpr]*lifeRes)
	e.collectLitFacts()

	g := buildCFG(e.body)
	in := map[*cfgBlock]*lifeState{g.entry: newLifeState()}
	work := []*cfgBlock{g.entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[b].clone(len(e.res))
		for _, n := range b.nodes {
			e.apply(out, n, false)
		}
		for _, edge := range b.succs {
			s := e.refineEdge(out, edge)
			if joinLife(in, edge.to, s, len(e.res)) {
				work = append(work, edge.to)
			}
		}
	}

	for _, b := range g.blocks {
		st, ok := in[b]
		if !ok {
			continue // unreachable: no obligations
		}
		st = st.clone(len(e.res))
		var last ast.Node
		for _, n := range b.nodes {
			e.apply(st, n, true)
			last = n
		}
		if len(b.succs) == 0 {
			if _, isRet := last.(*ast.ReturnStmt); !isRet {
				e.checkExit(st, nil, true)
			}
		}
	}
}

// collectLitFacts precomputes, for the lenient policy, which objects are
// referenced inside nested function literals of this body and whether
// any nested literal performs the ambient (pprof) release.
func (e *lifeEngine) collectLitFacts() {
	e.litRefs = make(map[types.Object]bool)
	ast.Inspect(e.body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.Ident:
				if obj := e.objOf(m); obj != nil {
					e.litRefs[obj] = true
				}
			case *ast.CallExpr:
				if _, ambient := releaseTargets(e.p.Info, e.ip, m); ambient&e.spec.classes != 0 {
					e.anonLitRelease = true
				}
			}
			return true
		})
		return false // inner lits were covered by the nested Inspect
	})
}

// ---------------------------------------------------------------------------
// Transfer function

func (e *lifeEngine) apply(st *lifeState, n ast.Node, report bool) {
	if report {
		e.scanUses(st, n)
	}
	e.applyReleases(st, n, report)
	switch n := n.(type) {
	case *ast.ExprStmt:
		// Ambient acquire with a discarded error: pprof.StartCPUProfile(f).
		if call, ok := unparen(n.X).(*ast.CallExpr); ok {
			if acq := e.acquireAt(call, -1); acq != nil {
				e.acquireRes(st, call, acq, nil, report)
			}
		}
	case *ast.AssignStmt:
		e.applyAssign(st, n, report)
	case *ast.DeclStmt:
		e.applyDecl(st, n, report)
	case *ast.DeferStmt:
		e.applyDefer(st, n, report)
	case *ast.GoStmt:
		e.applyGo(st, n, report)
	case *ast.SendStmt:
		e.applyEscape(st, e.aliasBits(st, n.Value), n, "sent over a channel", report)
	case *ast.RangeStmt:
		bits := e.aliasBits(st, n.X)
		if id, ok := unparen(n.Key).(*ast.Ident); ok && n.Key != nil {
			e.bindIdent(st, id, 0)
		}
		if id, ok := unparen(n.Value).(*ast.Ident); ok && n.Value != nil {
			e.bindIdent(st, id, bits)
		}
	case *ast.ReturnStmt:
		e.applyReturn(st, n, report)
	}
}

// scanUses flags reads of a resource that was released on some path.
// Identifiers inside release-call arguments and plain assignment targets
// are exempt (the release itself, and a rebind).
func (e *lifeEngine) scanUses(st *lifeState, n ast.Node) {
	skip := make(map[*ast.Ident]bool)
	mark := func(x ast.Expr) {
		if x == nil {
			return
		}
		ast.Inspect(x, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				skip[id] = true
			}
			return true
		})
	}
	for _, x := range nodeExprs(n) {
		inspectSkippingFuncLits(x, func(m ast.Node) {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return
			}
			targets, _ := releaseTargets(e.p.Info, e.ip, call)
			for _, tgt := range targets {
				if tgt.classes&e.spec.classes != 0 {
					mark(tgt.expr)
				}
			}
		})
	}
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				skip[id] = true
			}
		}
	}
	for _, x := range nodeExprs(n) {
		inspectSkippingFuncLits(x, func(m ast.Node) {
			id, ok := m.(*ast.Ident)
			if !ok || skip[id] {
				return
			}
			obj := e.objOf(id)
			if obj == nil {
				return
			}
			for _, r := range e.resIn(st.bind[obj]) {
				if st.status[r.id]&rReleased != 0 {
					e.emit(id, "%s from %s (line %d) used after %s",
						id.Name, r.what, e.line(r.call), r.release)
					// Quiet further uses on this path.
					st.status[r.id] &^= rReleased
					st.status[r.id] |= rDone
				}
			}
		})
	}
}

// applyReleases processes every release call the node evaluates.
func (e *lifeEngine) applyReleases(st *lifeState, n ast.Node, report bool) {
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return // applyDefer / applyGo give these their own semantics
	}
	for _, x := range nodeExprs(n) {
		inspectSkippingFuncLits(x, func(m ast.Node) {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return
			}
			e.release(st, call, false, report)
		})
	}
}

// release applies one releasing call (deferred or immediate).
func (e *lifeEngine) release(st *lifeState, call *ast.CallExpr, deferred bool, report bool) {
	targets, ambient := releaseTargets(e.p.Info, e.ip, call)
	newBit := uint8(rReleased)
	verb := "released"
	if deferred {
		newBit = rDeferred
		verb = "scheduled for release"
	}
	for _, tgt := range targets {
		cls := tgt.classes & e.spec.classes
		if cls == 0 {
			continue
		}
		for _, r := range e.resIn(e.aliasBits(st, tgt.expr)) {
			if r.class&cls == 0 {
				continue
			}
			if st.status[r.id]&(rReleased|rDeferred) != 0 {
				if report {
					e.emit(call, "value from %s (line %d) is %s twice",
						r.what, e.line(r.call), verb)
				}
			}
			st.status[r.id] = newBit
		}
	}
	if ambient&e.spec.classes != 0 {
		for _, r := range e.res {
			if r.anon && st.status[r.id]&rLive != 0 {
				st.status[r.id] = newBit
			}
		}
	}
}

func (e *lifeEngine) applyDefer(st *lifeState, n *ast.DeferStmt, report bool) {
	if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
		// defer func() { putScratch(s) }(): credit releases of captured
		// variables performed anywhere in the deferred closure.
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				e.release(st, call, true, report)
			}
			return true
		})
		return
	}
	e.release(st, n.Call, true, report)
}

func (e *lifeEngine) applyGo(st *lifeState, n *ast.GoStmt, report bool) {
	node, args := calleeArgs(e.p.Info, e.ip, n.Call)
	for _, a := range n.Call.Args {
		bits := e.aliasBits(st, a)
		if bits == 0 {
			continue
		}
		releasedByCallee := false
		if node != nil && node.res != nil {
			for _, ap := range args {
				if ap.expr == a && node.res.releases[ap.param]&e.spec.classes != 0 {
					releasedByCallee = true
				}
			}
		}
		if releasedByCallee || e.spec.lenient {
			e.markDone(st, bits)
			continue
		}
		e.applyEscape(st, bits, n, "handed to a goroutine whose callee does not release it", report)
	}
}

func (e *lifeEngine) applyEscape(st *lifeState, bits uint64, site ast.Node, how string, report bool) {
	if bits == 0 {
		return
	}
	if e.spec.lenient {
		e.markDone(st, bits)
		return
	}
	for _, r := range e.resIn(bits) {
		if st.status[r.id]&(rLive|rDeferred) == 0 {
			continue
		}
		if report && !r.reported {
			r.reported = true
			e.emit(site, "%s from %s (line %d) escapes: %s", r.what, r.what, e.line(r.call), how)
		}
		st.status[r.id] = rDone
	}
}

func (e *lifeEngine) markDone(st *lifeState, bits uint64) {
	for _, r := range e.resIn(bits) {
		if st.status[r.id]&rLive != 0 {
			st.status[r.id] = rDone
		}
	}
}

func (e *lifeEngine) applyDecl(st *lifeState, n *ast.DeclStmt, report bool) {
	gd, ok := n.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			var bits uint64
			if i < len(vs.Values) {
				bits = e.rhsBits(st, vs.Values[i], name, nil, report)
			}
			e.bindIdent(st, name, bits)
		}
	}
}

func (e *lifeEngine) applyAssign(st *lifeState, n *ast.AssignStmt, report bool) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		return // compound ops never move resource ownership
	}
	// Multi-value RHS: x, y := f() / v.(T) / m[k] / <-ch.
	if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
		e.applyMultiAssign(st, n, report)
		return
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		bits := e.rhsBits(st, n.Rhs[i], lhs, nil, report)
		e.bindLhs(st, lhs, bits, n, report)
	}
}

// rhsBits evaluates one single-value RHS, creating a resource when it is
// an acquisition. lhs (the binding target) supplies the acquired static
// type; guardLhs, when non-nil, is the error object paired with the
// acquire (multi-assign handles its own guards).
func (e *lifeEngine) rhsBits(st *lifeState, rhs ast.Expr, lhs ast.Expr, guard types.Object, report bool) uint64 {
	x := unparen(rhs)
	if ta, ok := x.(*ast.TypeAssertExpr); ok {
		if call, ok := unparen(ta.X).(*ast.CallExpr); ok {
			if acq := e.acquireAt(call, 0); acq != nil {
				r := e.acquireRes(st, call, acq, e.p.Info.TypeOf(ta.Type), report)
				r.guard = guard
				return e.resBit(r)
			}
		}
	}
	if call, ok := x.(*ast.CallExpr); ok {
		if acq := e.acquireAt(call, 0); acq != nil && !acq.anon {
			var t types.Type
			if lhs != nil {
				t = e.p.Info.TypeOf(lhs)
			}
			if t == nil {
				t = e.p.Info.TypeOf(call)
			}
			r := e.acquireRes(st, call, acq, t, report)
			r.guard = guard
			return e.resBit(r)
		}
		if acq := e.acquireAt(call, -1); acq != nil {
			// Ambient acquire (pprof.StartCPUProfile): the bound value is
			// its error, which doubles as the guard.
			r := e.acquireRes(st, call, acq, nil, report)
			if lhs != nil {
				if id, ok := unparen(lhs).(*ast.Ident); ok {
					if obj := e.objOf(id); obj != nil && isErrorType(obj.Type()) {
						r.guard = obj
					}
				}
			}
			return 0
		}
	}
	return e.aliasBits(st, rhs)
}

func (e *lifeEngine) applyMultiAssign(st *lifeState, n *ast.AssignStmt, report bool) {
	rhs := unparen(n.Rhs[0])
	// Comma-ok type assertion over an acquire: s, ok := pool.Get().(*T).
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		if call, ok2 := unparen(ta.X).(*ast.CallExpr); ok2 {
			if acq := e.acquireAt(call, 0); acq != nil {
				r := e.acquireRes(st, call, acq, e.p.Info.TypeOf(ta.Type), report)
				if len(n.Lhs) == 2 {
					if id, ok := unparen(n.Lhs[1]).(*ast.Ident); ok {
						if obj := e.objOf(id); obj != nil {
							r.guard, r.guardOK = obj, true
						}
					}
				}
				e.bindLhs(st, n.Lhs[0], e.resBit(r), n, report)
				return
			}
		}
		for i, lhs := range n.Lhs {
			bits := uint64(0)
			if i == 0 {
				bits = e.aliasBits(st, ta.X)
			}
			e.bindLhs(st, lhs, bits, n, report)
		}
		return
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		// v, ok := m[k] and v, ok := <-ch: the container's resources (if
		// any) flow to v.
		bits := e.aliasBits(st, rhs)
		for i, lhs := range n.Lhs {
			if i > 0 {
				bits = 0
			}
			e.bindLhs(st, lhs, bits, n, report)
		}
		return
	}
	// f, err := acquire(...): find the acquiring result and the error guard.
	acqIdx, acq := -1, (*resAcq)(nil)
	for i := range n.Lhs {
		if a := e.acquireAt(call, i); a != nil && !a.anon {
			acqIdx, acq = i, a
			break
		}
	}
	if acq != nil {
		r := e.acquireRes(st, call, acq, e.p.Info.TypeOf(n.Lhs[acqIdx]), report)
		for i, lhs := range n.Lhs {
			if i == acqIdx {
				continue
			}
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				if obj := e.objOf(id); obj != nil && isErrorType(obj.Type()) {
					r.guard = obj
				}
			}
		}
		for i, lhs := range n.Lhs {
			bits := uint64(0)
			if i == acqIdx {
				bits = e.resBit(r)
			}
			e.bindLhs(st, lhs, bits, n, report)
		}
		return
	}
	bits := e.callAliasBits(st, call)
	for _, lhs := range n.Lhs {
		lb := uint64(0)
		if isRefShaped(e.p.Info.TypeOf(lhs)) {
			lb = bits
		}
		e.bindLhs(st, lhs, lb, n, report)
	}
}

// bindLhs routes an assignment's resource bits to the target location.
func (e *lifeEngine) bindLhs(st *lifeState, lhs ast.Expr, bits uint64, site ast.Node, report bool) {
	switch lhs := unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := e.objOf(lhs)
		if obj == nil {
			return
		}
		switch e.capKindOf(obj) {
		case capLocal, capParam:
			// Parameters are local copies in Go; rebinding one never
			// leaks anything to the caller.
			e.bindIdent(st, lhs, bits)
		case capCaptured:
			if bits == 0 {
				e.bindIdent(st, lhs, bits)
				return
			}
			if e.spec.lenient {
				e.markDone(st, bits)
				return
			}
			for _, r := range e.resIn(bits) {
				if st.status[r.id]&rLive == 0 {
					continue
				}
				st.status[r.id] = rDone
				if report && e.onDeposit != nil {
					e.onDeposit(r, obj, site)
				}
			}
		case capGlobal:
			e.applyEscape(st, bits, site, fmt.Sprintf("stored into package-level %s", lhs.Name), report)
		}
	case *ast.SelectorExpr:
		e.bindThrough(st, rootObj(e.p.Info, lhs.X), bits, site, "a struct field", report)
	case *ast.IndexExpr:
		e.bindThrough(st, rootObj(e.p.Info, lhs.X), bits, site, "a container element", report)
	case *ast.StarExpr:
		e.bindThrough(st, rootObj(e.p.Info, lhs.X), bits, site, "pointed-to memory", report)
	}
}

func (e *lifeEngine) bindIdent(st *lifeState, id *ast.Ident, bits uint64) {
	if id.Name == "_" {
		return
	}
	obj := e.objOf(id)
	if obj == nil {
		return
	}
	if bits == 0 {
		delete(st.bind, obj)
	} else {
		st.bind[obj] = bits
		for _, r := range e.resIn(bits) {
			r.aliases[obj] = true
		}
	}
}

// bindThrough handles stores through a base object: a local carrier
// keeps tracking the resource; a captured container is a cross-goroutine
// deposit (poolguard) or a transfer (leakguard); parameter-reachable and
// package-level stores escape.
func (e *lifeEngine) bindThrough(st *lifeState, base types.Object, bits uint64, site ast.Node, into string, report bool) {
	if bits == 0 || base == nil {
		return
	}
	switch e.capKindOf(base) {
	case capLocal:
		if e.spec.lenient {
			// Lenient policy: parking a handle in any container or field
			// is a hand-off — the container's consumer closes it (the
			// files[i] = fh; ...; range files { fh.Close() } idiom defeats
			// a must-analysis, since a loop release can't be proven to
			// cover every element).
			e.markDone(st, bits)
			return
		}
		st.bind[base] |= bits
		for _, r := range e.resIn(bits) {
			r.aliases[base] = true
		}
	case capCaptured:
		if e.spec.lenient {
			e.markDone(st, bits)
			return
		}
		for _, r := range e.resIn(bits) {
			if st.status[r.id]&rLive == 0 {
				continue
			}
			st.status[r.id] = rDone
			if report && e.onDeposit != nil {
				e.onDeposit(r, base, site)
			}
		}
	case capParam:
		e.applyEscape(st, bits, site, fmt.Sprintf("stored into caller-visible memory through %s", base.Name()), report)
	case capGlobal:
		e.applyEscape(st, bits, site, fmt.Sprintf("stored into package-level %s", base.Name()), report)
	}
}

func (e *lifeEngine) applyReturn(st *lifeState, n *ast.ReturnStmt, report bool) {
	for i, x := range n.Results {
		bits := e.aliasBits(st, x)
		for _, r := range e.resIn(bits) {
			switch {
			case st.status[r.id]&rReleased != 0:
				if report && !r.reported {
					r.reported = true
					e.emit(x, "value aliasing %s (line %d) returned after %s", r.what, e.line(r.call), r.release)
				}
			case st.status[r.id]&rDeferred != 0:
				if report && !r.reported {
					r.reported = true
					e.emit(x, "value aliasing %s (line %d) returned while its %s is deferred — it escapes the release", r.what, e.line(r.call), r.release)
				}
			case st.status[r.id]&rLive != 0:
				summaryTransfer := e.ownRes != nil &&
					i < len(e.ownRes.acquires) && e.ownRes.acquires[i]&r.class != 0
				if summaryTransfer || (r.typ != nil && typesIdenticalSafe(e.p.Info.TypeOf(x), r.typ)) {
					// Returning the resource itself transfers ownership to
					// the caller (the acquire summary makes it responsible).
					st.status[r.id] = rDone
				}
				// A view returned while the root stays live leaves the
				// obligation in place; checkExit below reports the leak.
			}
		}
	}
	e.checkExit(st, n, report)
}

// checkExit reports resources still live (not deferred, transferred, or
// released) when control leaves the function.
func (e *lifeEngine) checkExit(st *lifeState, at ast.Node, report bool) {
	if !report {
		return
	}
	for _, r := range e.res {
		if r.id >= len(st.status) || st.status[r.id]&rLive == 0 {
			continue
		}
		if st.status[r.id]&(rDeferred|rDone) != 0 {
			continue
		}
		if e.spec.lenient && e.exemptByClosure(r) {
			continue
		}
		if r.reported {
			continue
		}
		r.reported = true
		where := "function exit"
		if at != nil {
			where = fmt.Sprintf("the return at line %d", e.line(at))
		}
		e.emit(r.call, "%s is not released on every path: %s misses its %s", r.what, where, r.release)
	}
}

// exemptByClosure implements the lenient discharge: a closer referenced
// inside a nested closure (the beginObs finish-func shape), or an
// ambient profile stopped inside one.
func (e *lifeEngine) exemptByClosure(r *lifeRes) bool {
	if r.anon && e.anonLitRelease {
		return true
	}
	for obj := range r.aliases {
		if e.litRefs[obj] {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Acquisition

// resAcq is one classified acquisition shape at a call site.
type resAcq struct {
	class   resClass
	what    string
	release string
	anon    bool
}

// acquireAt classifies call as an acquisition at result index i (or the
// ambient pseudo-result -1), filtered by the spec's classes.
func (e *lifeEngine) acquireAt(call *ast.CallExpr, i int) *resAcq {
	if e.spec.classes&classPool != 0 && i == 0 && isPoolMethod(e.p.Info, call, "Get") {
		return &resAcq{class: classPool, what: "(*sync.Pool).Get", release: "Put"}
	}
	if e.spec.classes&classCloser != 0 {
		if ca := closerAcquireOf(e.p.Info, call); ca != nil && ca.result == i {
			return &resAcq{class: classCloser, what: ca.what, release: ca.release, anon: ca.result < 0}
		}
	}
	if i < 0 {
		return nil
	}
	if node := e.ip.nodeFor(calleeOf(e.p.Info, call)); node != nil && node.res != nil {
		if i < len(node.res.acquires) {
			if cls := node.res.acquires[i] & e.spec.classes; cls != 0 {
				release := "release"
				if cls&classPool != 0 {
					release = "return to its pool"
				} else if cls&classCloser != 0 {
					release = "Close"
				}
				return &resAcq{class: cls, what: node.fn.Name() + "()", release: release}
			}
		}
	}
	return nil
}

// acquireRes creates (or revisits) the resource for an acquiring call.
// Re-acquiring while a previous acquisition from the same site is still
// live is a loop leak under the strict policy.
func (e *lifeEngine) acquireRes(st *lifeState, call *ast.CallExpr, acq *resAcq, t types.Type, report bool) *lifeRes {
	r := e.byCall[call]
	if r == nil {
		r = &lifeRes{
			id:      len(e.res),
			call:    call,
			class:   acq.class,
			what:    acq.what,
			release: acq.release,
			anon:    acq.anon,
			typ:     t,
			aliases: make(map[types.Object]bool),
		}
		e.res = append(e.res, r)
		e.byCall[call] = r
	}
	for len(st.status) < len(e.res) {
		st.status = append(st.status, 0)
	}
	if report && !e.spec.lenient && st.status[r.id]&rLive != 0 && !r.reported {
		r.reported = true
		e.emit(call, "%s re-acquired while a previous acquisition from this site is still unreleased (loop leak)", r.what)
	}
	st.status[r.id] = rLive
	return r
}

func (e *lifeEngine) resBit(r *lifeRes) uint64 {
	if r.id >= 64 {
		return 0 // beyond the bitset: untracked, never misreported
	}
	return 1 << uint(r.id)
}

func (e *lifeEngine) resIn(bits uint64) []*lifeRes {
	if bits == 0 {
		return nil
	}
	var out []*lifeRes
	for _, r := range e.res {
		if r.id < 64 && bits&(1<<uint(r.id)) != 0 {
			out = append(out, r)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Alias evaluation

// aliasBits computes which resources an expression's value may alias.
func (e *lifeEngine) aliasBits(st *lifeState, x ast.Expr) uint64 {
	switch x := x.(type) {
	case *ast.ParenExpr:
		return e.aliasBits(st, x.X)
	case *ast.Ident:
		if obj := e.objOf(x); obj != nil {
			return st.bind[obj]
		}
	case *ast.SelectorExpr:
		// Field reads propagate the base variable's resources: s.bits
		// aliases the scratch arena, outs[i].payload the deposited buffer.
		if obj := rootObj(e.p.Info, x); obj != nil {
			return st.bind[obj]
		}
	case *ast.IndexExpr:
		return e.aliasBits(st, x.X)
	case *ast.SliceExpr:
		return e.aliasBits(st, x.X)
	case *ast.StarExpr:
		return e.aliasBits(st, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return 0
		}
		return e.aliasBits(st, x.X)
	case *ast.TypeAssertExpr:
		return e.aliasBits(st, x.X)
	case *ast.CallExpr:
		return e.callAliasBits(st, x)
	case *ast.CompositeLit:
		var agg uint64
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			agg |= e.aliasBits(st, elt)
		}
		return agg
	}
	return 0
}

// callAliasBits implements the dst-first aliasing convention: a call
// result aliases a resource only through a slice-typed first argument
// (append threading) or through a module method summarized as returning
// receiver views.
func (e *lifeEngine) callAliasBits(st *lifeState, call *ast.CallExpr) uint64 {
	if tv, ok := e.p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return e.aliasBits(st, call.Args[0]) // conversion: []byte(x)
		}
		return 0
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if bi, ok := e.p.Info.Uses[id].(*types.Builtin); ok {
			if bi.Name() == "append" && len(call.Args) > 0 {
				return e.aliasBits(st, call.Args[0])
			}
			return 0
		}
	}
	if !hasRefResult(e.p.Info.TypeOf(call)) {
		return 0
	}
	sig, _ := e.p.Info.TypeOf(call.Fun).(*types.Signature)
	if sig != nil && sig.Params().Len() > 0 && len(call.Args) > 0 {
		if _, ok := sig.Params().At(0).Type().Underlying().(*types.Slice); ok {
			return e.aliasBits(st, call.Args[0])
		}
	}
	if node := e.ip.nodeFor(calleeOf(e.p.Info, call)); node != nil && node.res != nil && node.res.recvAlias {
		// recvAlias means the callee's results are views of its first
		// input — the receiver for methods (the selector's base: the
		// expression type drops the receiver, so consult the declared
		// signature), the first argument otherwise.
		if fsig, ok := node.fn.Type().(*types.Signature); ok && fsig.Recv() != nil {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				return e.aliasBits(st, sel.X)
			}
			return 0
		}
		if len(call.Args) > 0 {
			return e.aliasBits(st, call.Args[0])
		}
	}
	return 0
}

// hasRefResult reports whether any call result is slice- or pointer-shaped.
func hasRefResult(t types.Type) bool {
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isRefShaped(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isRefShaped(t)
}

func typesIdenticalSafe(a, b types.Type) bool {
	return a != nil && b != nil && types.Identical(a, b)
}

// ---------------------------------------------------------------------------
// Edge refinement: error guards kill unrealized acquisitions

func (e *lifeEngine) refineEdge(out *lifeState, edge cfgEdge) *lifeState {
	if edge.cond == nil {
		return out
	}
	return e.refineLifeCond(out, edge.cond, edge.neg)
}

func (e *lifeEngine) refineLifeCond(st *lifeState, cond ast.Expr, neg bool) *lifeState {
	switch c := unparen(cond).(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return e.refineLifeCond(st, c.X, !neg)
		}
	case *ast.BinaryExpr:
		switch {
		case c.Op == token.LAND && !neg:
			return e.refineLifeCond(e.refineLifeCond(st, c.X, false), c.Y, false)
		case c.Op == token.LOR && neg:
			return e.refineLifeCond(e.refineLifeCond(st, c.X, true), c.Y, true)
		case c.Op == token.NEQ || c.Op == token.EQL:
			var idExpr ast.Expr
			switch {
			case isNilIdent(c.Y):
				idExpr = c.X
			case isNilIdent(c.X):
				idExpr = c.Y
			default:
				return st
			}
			id, ok := unparen(idExpr).(*ast.Ident)
			if !ok {
				return st
			}
			obj := e.objOf(id)
			if obj == nil {
				return st
			}
			// The edge where the error is non-nil kills err-guarded
			// acquisitions: nothing was acquired on the failure path. The
			// nil edge instead confirms the acquisition, so later reuse of
			// the same err variable (n, err := f.Read(...)) cannot
			// retroactively un-acquire the handle.
			nonNil := (c.Op == token.NEQ) != neg
			if nonNil {
				return e.killGuarded(st, obj, false)
			}
			return e.confirmGuarded(st, obj, false)
		}
	case *ast.Ident:
		// Bare bool condition: the false edge of a comma-ok guard kills,
		// the true edge confirms.
		if obj := e.objOf(c); obj != nil {
			if neg {
				return e.killGuarded(st, obj, true)
			}
			return e.confirmGuarded(st, obj, true)
		}
	}
	return st
}

func (e *lifeEngine) killGuarded(st *lifeState, obj types.Object, okGuard bool) *lifeState {
	var kill []*lifeRes
	for _, r := range e.res {
		if r.guard == obj && r.guardOK == okGuard && r.id < len(st.status) &&
			st.status[r.id] != 0 && st.status[r.id]&rConfirmed == 0 {
			kill = append(kill, r)
		}
	}
	if len(kill) == 0 {
		return st
	}
	out := st.clone(len(e.res))
	for _, r := range kill {
		out.status[r.id] = 0
	}
	return out
}

func (e *lifeEngine) confirmGuarded(st *lifeState, obj types.Object, okGuard bool) *lifeState {
	var hit []*lifeRes
	for _, r := range e.res {
		if r.guard == obj && r.guardOK == okGuard && r.id < len(st.status) &&
			st.status[r.id]&rLive != 0 && st.status[r.id]&rConfirmed == 0 {
			hit = append(hit, r)
		}
	}
	if len(hit) == 0 {
		return st
	}
	out := st.clone(len(e.res))
	for _, r := range hit {
		out.status[r.id] |= rConfirmed
	}
	return out
}

// isNilIdent reports whether x is the predeclared nil identifier.
func isNilIdent(x ast.Expr) bool {
	id, ok := unparen(x).(*ast.Ident)
	return ok && id.Name == "nil"
}

func (e *lifeEngine) line(n ast.Node) int {
	return e.p.Fset.Position(n.Pos()).Line
}
