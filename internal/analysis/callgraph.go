package analysis

// callgraph.go builds the module-wide call graph that turns the
// per-function taint analysis of taint.go into an interprocedural one.
// Nodes are the function and method declarations of every loaded package
// (pointer identity on *types.Func works across packages because the
// loader shares one *types.Package per import path); edges are direct
// calls resolved through the type info, which covers package functions
// and method dispatch on concrete types. Interface method calls and
// calls through function values have no static callee and stay unknown —
// their results are treated trusted, exactly the pre-interprocedural
// behavior.
//
// Strongly connected components (Tarjan) give the evaluation order for
// the summary fixpoint in summary.go: Tarjan emits an SCC only after
// every SCC it calls into has been emitted, so summaries of callees are
// final (or, within one SCC, converging) when a caller is summarized.

import (
	"go/ast"
	"go/types"
	"sort"
)

// funcNode is one declared function or method of the module.
type funcNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package

	// params lists the taint-relevant inputs: the receiver first (when
	// the declaration is a method), then the declared parameters.
	params   []*types.Var
	variadic bool

	calls []*funcNode // deduplicated direct module-internal callees

	sum *funcSummary // nil until summary.go computes it
	res *resEffect   // nil until summary.go computes it (resource.go)

	// Tarjan bookkeeping.
	index, lowlink int
	onStack        bool
}

// name returns a diagnostic-friendly identifier such as
// "huffman.ParseTable" or "cpsz.(*reader).readChunk".
func (n *funcNode) name() string {
	base := n.fn.Name()
	if n.pkg.Types != nil {
		base = n.pkg.Types.Name() + "." + base
	}
	if recv := n.recvType(); recv != "" {
		if n.pkg.Types != nil {
			return n.pkg.Types.Name() + ".(" + recv + ")." + n.fn.Name()
		}
		return "(" + recv + ")." + n.fn.Name()
	}
	return base
}

func (n *funcNode) recvType() string {
	sig, ok := n.fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return types.TypeString(sig.Recv().Type(), func(p *types.Package) string { return p.Name() })
}

// buildCallGraph collects every FuncDecl with a body across pkgs and
// resolves its direct module-internal call edges. The returned slice is
// in deterministic source order (file name, then offset), which keeps
// the summary fixpoint — and therefore any diagnostics derived from it —
// independent of map iteration and loader wave order.
func buildCallGraph(pkgs []*Package) (map[*types.Func]*funcNode, []*funcNode) {
	byFunc := make(map[*types.Func]*funcNode)
	var nodes []*funcNode
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &funcNode{fn: fn, decl: fd, pkg: p}
				if sig, ok := fn.Type().(*types.Signature); ok {
					if sig.Recv() != nil {
						node.params = append(node.params, sig.Recv())
					}
					for i := 0; i < sig.Params().Len(); i++ {
						node.params = append(node.params, sig.Params().At(i))
					}
					node.variadic = sig.Variadic()
				}
				byFunc[fn] = node
				nodes = append(nodes, node)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		pi := nodes[i].pkg.Fset.Position(nodes[i].decl.Pos())
		pj := nodes[j].pkg.Fset.Position(nodes[j].decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})

	for _, node := range nodes {
		seen := make(map[*funcNode]bool)
		// Nested function literals are analyzed as their own functions
		// (with their own engine runs), so calls inside them do not feed
		// the enclosing declaration's summary and are skipped here.
		inspectSkippingFuncLits(node.decl.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := calleeOf(node.pkg.Info, call)
			if callee == nil {
				return
			}
			if target := byFunc[callee]; target != nil && !seen[target] {
				seen[target] = true
				node.calls = append(node.calls, target)
			}
		})
	}
	return byFunc, nodes
}

// inspectSkippingFuncLits walks n without descending into nested
// function literals.
func inspectSkippingFuncLits(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		fn(n)
		return true
	})
}

// sccOrder returns the strongly connected components of the call graph
// in reverse topological order of the condensation: every component a
// function calls into appears before the component containing the
// function. Within a component, nodes keep their deterministic source
// order.
func sccOrder(nodes []*funcNode) [][]*funcNode {
	for _, n := range nodes {
		n.index, n.lowlink, n.onStack = 0, 0, false
	}
	var (
		counter int
		stack   []*funcNode
		out     [][]*funcNode
	)
	// Iterative Tarjan: the recursion depth would otherwise scale with
	// the longest call chain in the module.
	type frame struct {
		node *funcNode
		next int
	}
	for _, root := range nodes {
		if root.index != 0 {
			continue
		}
		frames := []frame{{node: root}}
		counter++
		root.index, root.lowlink = counter, counter
		root.onStack = true
		stack = append(stack, root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(f.node.calls) {
				callee := f.node.calls[f.next]
				f.next++
				switch {
				case callee.index == 0:
					counter++
					callee.index, callee.lowlink = counter, counter
					callee.onStack = true
					stack = append(stack, callee)
					frames = append(frames, frame{node: callee})
				case callee.onStack:
					if callee.index < f.node.lowlink {
						f.node.lowlink = callee.index
					}
				}
				continue
			}
			n := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if n.lowlink < parent.lowlink {
					parent.lowlink = n.lowlink
				}
			}
			if n.lowlink == n.index {
				var comp []*funcNode
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					m.onStack = false
					comp = append(comp, m)
					if m == n {
						break
					}
				}
				// Restore deterministic source order within the component.
				sort.Slice(comp, func(i, j int) bool { return comp[i].index < comp[j].index })
				out = append(out, comp)
			}
		}
	}
	return out
}
