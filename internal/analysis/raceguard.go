package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// raceguard inspects every worker closure handed to one of the six
// internal/parallel dispatchers (For, ForErr, ForChunks, ForChunksErr,
// ReduceRanges, ReduceRangesErr) and flags writes to captured state that
// are not provably disjoint across workers.
//
// The analysis is a must-analysis over the closure body:
//
//   - The closure's own parameters (the worker index i, or the chunk
//     bounds lo/hi) are "derived". A local is derived when every
//     assignment reaching it is an arithmetic combination containing at
//     least one derived operand and no unknown variable (loop counters
//     initialised from lo and stepped by a constant stay derived; range
//     keys do not — `for k := range x` yields the same k in every worker).
//   - A local holds "private" memory when every assignment gives it fresh
//     storage (make, composite literal, append to private, a call result)
//     or a derived view of captured storage: captured[lo:hi] with both
//     bounds derived, or captured[i] with i derived. Writes through
//     private memory cannot race.
//
// A write is then flagged when its target resolves to captured (or
// package-level) state and disjointness cannot be proved: element writes
// need at least one derived index in the chain, map writes are never safe
// concurrently, and direct assignment to a captured scalar, error, or
// slice header (including x = append(x, ...)) is always a race. Method
// calls on captured values are permitted — that is how sync/atomic,
// mutex-guarded aggregation, and obs collectors are used from workers.
// Passing a whole captured slice to a function that writes it is outside
// the model; slice the argument to the worker's extent instead.

// dispatcherWorkers maps dispatcher name -> arity of the worker closure's
// range parameters (1 for the per-index forms, 2 for the chunked forms).
var dispatcherWorkers = map[string]int{
	"For":             1,
	"ForErr":          1,
	"ForChunks":       2,
	"ForChunksErr":    2,
	"ReduceRanges":    2,
	"ReduceRangesErr": 2,
}

func raceguardCheck() *Check {
	return &Check{
		Name: "raceguard",
		Doc: `Flags writes to captured variables inside worker closures passed to
parallel.For/ForErr/ForChunks/ForChunksErr/ReduceRanges/ReduceRangesErr
unless every write is provably disjoint across workers: element writes
must use an index derived from the worker's range parameters (or go
through a private view like buf[lo:hi]), map writes are never safe, and
captured scalar/error/slice-header mutation (counters, err = ...,
x = append(x, ...)) is always reported. Method calls on captured values
are allowed, so sync/atomic, mutexes, and obs collectors pass.`,
		Run: runRaceguard,
	}
}

func runRaceguard(p *Package) []Finding {
	var out []Finding
	// A write inside a nested worker that is unsafe along both dispatch
	// dimensions is found by both the outer and inner visits; keep one.
	seen := map[Finding]bool{}
	keep := func(fs []Finding) {
		for _, f := range fs {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	inspectFiles(p, func(f *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := dispatcherSelector(p.Info, call.Fun)
		if !ok {
			return true
		}
		if _, ok := dispatcherWorkers[name]; !ok {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
		if !ok {
			// Named worker functions are out of scope: their bodies are
			// covered when they contain dispatcher calls of their own.
			return true
		}
		keep(analyzeWorker(p, lit))
		return true
	})
	return out
}

// workerScan is the per-closure analysis state.
type workerScan struct {
	p   *Package
	lit *ast.FuncLit

	// derived: the variable's value is a function of the worker's range
	// parameters on every path (usable as a disjointness witness).
	derived map[types.Object]bool
	// private: the variable's memory is worker-private on every path
	// (fresh allocation or a derived view of captured storage).
	private map[types.Object]bool
	// neutral: range parameters of nested dispatcher workers. From this
	// worker's perspective they neither witness disjointness (every outer
	// worker runs the same inner index range) nor poison an expression
	// (they are not arbitrary unknowns): a nested write like
	// out[i*w+j] passes because i is derived here, and j's own dispatch
	// level is checked when the inner closure gets its own visit.
	neutral map[types.Object]bool

	findings []Finding
}

func analyzeWorker(p *Package, lit *ast.FuncLit) []Finding {
	w := &workerScan{
		p:       p,
		lit:     lit,
		derived: map[types.Object]bool{},
		private: map[types.Object]bool{},
		neutral: map[types.Object]bool{},
	}
	w.classifyLocals()
	w.scanWrites()
	return w.findings
}

// captured reports whether obj is declared outside the worker closure
// (an enclosing function's local, a parameter, or a package-level var).
func (w *workerScan) captured(obj types.Object) bool {
	if obj == nil {
		return false
	}
	return obj.Pos() < w.lit.Pos() || obj.Pos() > w.lit.End()
}

// innerWorkerLits returns the worker closures of dispatcher calls nested
// inside this worker's body.
func (w *workerScan) innerWorkerLits() map[*ast.FuncLit]bool {
	out := map[*ast.FuncLit]bool{}
	ast.Inspect(w.lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := dispatcherSelector(w.p.Info, call.Fun); !ok {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		if inner, ok := call.Args[len(call.Args)-1].(*ast.FuncLit); ok {
			out[inner] = true
		}
		return true
	})
	return out
}

// inspectBody walks the closure body, including nested closures: their
// writes still execute on this worker's goroutine, so a nested write must
// be disjoint along this dispatch dimension too (the nested dispatcher's
// own dimension is judged in the inner closure's separate visit).
func (w *workerScan) inspectBody(fn func(n ast.Node) bool) {
	ast.Inspect(w.lit.Body, fn)
}

// assignRec is one value-producing binding of a local observed in the body.
type assignRec struct {
	obj types.Object
	// Exactly one of the following shapes:
	rhs      ast.Expr // x = rhs, x := rhs, x op= rhs-part (self folded in)
	selfStep bool     // x++ / x-- / x op= c: derivedness is preserved
	rangeVal ast.Expr // for _, x := range rangeVal (element binding)
	rangeKey bool     // for x := range ...: same sequence in every worker
	opaque   bool     // multi-value / unmodeled binding: call results etc.
}

// classifyLocals runs the optimistic demotion fixpoint over every
// variable declared inside the closure.
func (w *workerScan) classifyLocals() {
	// Worker range parameters are the derivation roots.
	if w.lit.Type.Params != nil {
		for _, fld := range w.lit.Type.Params.List {
			for _, name := range fld.Names {
				if obj := w.p.Info.Defs[name]; obj != nil {
					w.derived[obj] = true
					w.private[obj] = true
				}
			}
		}
	}

	var recs []assignRec
	record := func(obj types.Object, r assignRec) {
		if obj == nil || w.captured(obj) {
			return
		}
		r.obj = obj
		recs = append(recs, r)
	}
	objOf := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := w.p.Info.Defs[id]; obj != nil {
			return obj
		}
		return w.p.Info.Uses[id]
	}

	innerWorkers := w.innerWorkerLits()
	for inner := range innerWorkers {
		if inner.Type.Params == nil {
			continue
		}
		for _, fld := range inner.Type.Params.List {
			for _, name := range fld.Names {
				if obj := w.p.Info.Defs[name]; obj != nil {
					w.neutral[obj] = true
				}
			}
		}
	}

	locals := map[types.Object]bool{}
	w.inspectBody(func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.Ident:
			if obj := w.p.Info.Defs[s]; obj != nil {
				if v, ok := obj.(*types.Var); ok && !w.derived[obj] && !w.neutral[obj] {
					locals[v] = true
				}
			}
		case *ast.FuncLit:
			if s != w.lit && !innerWorkers[s] {
				// Parameters of nested (non-dispatcher) closures carry
				// unknown values: a callback may be invoked with anything.
				if s.Type.Params != nil {
					for _, fld := range s.Type.Params.List {
						for _, name := range fld.Names {
							if obj := w.p.Info.Defs[name]; obj != nil {
								record(obj, assignRec{opaque: true})
							}
						}
					}
				}
			}
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i, lhs := range s.Lhs {
					obj := objOf(lhs)
					if obj == nil {
						continue
					}
					if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
						record(obj, assignRec{rhs: s.Rhs[i]})
					} else {
						// x op= e: derived survives iff e is free of
						// unknowns (mirrors the binary-expr rule).
						record(obj, assignRec{rhs: s.Rhs[i], selfStep: true})
					}
				}
			} else {
				// Multi-value: x, err := f(). Call results are fresh
				// memory by Go ownership convention, but not derived.
				for _, lhs := range s.Lhs {
					if obj := objOf(lhs); obj != nil {
						record(obj, assignRec{opaque: true})
					}
				}
			}
		case *ast.IncDecStmt:
			if obj := objOf(s.X); obj != nil {
				record(obj, assignRec{selfStep: true})
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				obj := w.p.Info.Defs[name]
				if obj == nil {
					continue
				}
				switch {
				case len(s.Values) == len(s.Names):
					record(obj, assignRec{rhs: s.Values[i]})
				case len(s.Values) == 0:
					// Zero value: identical in every worker, private.
					record(obj, assignRec{opaque: true})
				default:
					record(obj, assignRec{opaque: true})
				}
			}
		case *ast.RangeStmt:
			if s.Key != nil {
				if obj := objOf(s.Key); obj != nil {
					record(obj, assignRec{rangeKey: true})
				}
			}
			if s.Value != nil {
				if obj := objOf(s.Value); obj != nil {
					record(obj, assignRec{rangeVal: s.X})
				}
			}
		}
		return true
	})

	// Optimistic start: every local is derived and private until an
	// assignment proves otherwise.
	for obj := range locals {
		w.derived[obj] = true
		w.private[obj] = true
	}

	for round := 0; round < len(recs)+2; round++ {
		changed := false
		for _, r := range recs {
			d, priv := w.classifyRHS(r)
			if w.derived[r.obj] && !d {
				w.derived[r.obj] = false
				changed = true
			}
			if w.private[r.obj] && !priv {
				w.private[r.obj] = false
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func (w *workerScan) classifyRHS(r assignRec) (derived, private bool) {
	switch {
	case r.opaque:
		// Call results own their memory; their values are unknown.
		return false, true
	case r.rangeKey:
		return false, true
	case r.rangeVal != nil:
		// The element binding copies scalars but aliases element memory
		// for slice/map/pointer element types.
		return false, w.memPrivate(r.rangeVal)
	case r.selfStep && r.rhs == nil:
		// x++ / x--: both properties are preserved.
		return w.derived[r.obj], w.private[r.obj]
	case r.selfStep:
		d, poison := w.derivedParts(r.rhs)
		_ = d
		return w.derived[r.obj] && !poison, w.private[r.obj]
	default:
		return w.derivedIdx(r.rhs), w.memPrivate(r.rhs)
	}
}

// derivedIdx reports whether e is provably a function of the worker's
// range parameters: at least one derived leaf, and no unknown leaf.
func (w *workerScan) derivedIdx(e ast.Expr) bool {
	d, poison := w.derivedParts(e)
	return d && !poison
}

func (w *workerScan) derivedParts(e ast.Expr) (derived, poison bool) {
	switch x := e.(type) {
	case *ast.Ident:
		obj := w.p.Info.Uses[x]
		if obj == nil {
			obj = w.p.Info.Defs[x]
		}
		switch o := obj.(type) {
		case *types.Const, *types.Nil:
			return false, false
		case *types.Var:
			if w.derived[o] {
				return true, false
			}
			if w.captured(o) || w.neutral[o] {
				// A captured value is the same in every worker, and a
				// nested worker's range parameter is judged at its own
				// dispatch level: neither distinguishes this worker's
				// extents, and neither poisons.
				return false, false
			}
			return false, true
		default:
			return false, true
		}
	case *ast.BasicLit:
		return false, false
	case *ast.ParenExpr:
		return w.derivedParts(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND || x.Op == token.ADD || x.Op == token.SUB || x.Op == token.XOR {
			return w.derivedParts(x.X)
		}
		return false, true
	case *ast.BinaryExpr:
		ld, lp := w.derivedParts(x.X)
		rd, rp := w.derivedParts(x.Y)
		return ld || rd, lp || rp
	case *ast.IndexExpr:
		// captured[i] with i derived is a per-worker constant
		// (ranges[i][0] is the canonical shape).
		bd, bp := w.derivedParts(x.X)
		id, ip := w.derivedParts(x.Index)
		if bp || ip {
			return false, true
		}
		return bd || id, false
	case *ast.SelectorExpr:
		// Field read: inherits the base's derivedness (rg.lo where
		// rg := ranges[i]); a plain pkg.Const selector is neutral.
		if obj := w.p.Info.Uses[x.Sel]; obj != nil {
			if _, isConst := obj.(*types.Const); isConst {
				return false, false
			}
		}
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := w.p.Info.Uses[id].(*types.PkgName); isPkg {
				return false, true
			}
		}
		return w.derivedParts(x.X)
	case *ast.CallExpr:
		switch fn := calleeBuiltin(w.p.Info, x); fn {
		case "len", "cap":
			// Lengths are worker-independent facts about the operand.
			_, p := w.derivedParts(x.Args[0])
			return false, p
		case "min", "max":
			var anyD, anyP bool
			for _, a := range x.Args {
				d, p := w.derivedParts(a)
				anyD = anyD || d
				anyP = anyP || p
			}
			return anyD, anyP
		}
		// Type conversions are transparent.
		if tv, ok := w.p.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return w.derivedParts(x.Args[0])
		}
		return false, true
	default:
		return false, true
	}
}

// memPrivate reports whether e denotes worker-private memory: a fresh
// allocation, a call result, or a derived view of captured storage.
func (w *workerScan) memPrivate(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := w.p.Info.Uses[x]
		if obj == nil {
			obj = w.p.Info.Defs[x]
		}
		switch o := obj.(type) {
		case *types.Const, *types.Nil:
			return true
		case *types.Var:
			if w.captured(o) {
				return false
			}
			return w.private[o]
		default:
			return false
		}
	case *ast.BasicLit:
		return true
	case *ast.CompositeLit:
		return true
	case *ast.ParenExpr:
		return w.memPrivate(x.X)
	case *ast.StarExpr:
		return w.memPrivate(x.X)
	case *ast.UnaryExpr:
		return w.memPrivate(x.X)
	case *ast.SliceExpr:
		// captured[lo:hi] with both bounds derived is a disjoint view.
		if x.Low != nil && x.High != nil &&
			w.derivedIdx(x.Low) && w.derivedIdx(x.High) {
			return true
		}
		return w.memPrivate(x.X)
	case *ast.IndexExpr:
		// captured[i] with i derived selects a per-worker element
		// (a private row of a slice-of-slices).
		if w.derivedIdx(x.Index) {
			return true
		}
		return w.memPrivate(x.X)
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := w.p.Info.Uses[id].(*types.PkgName); isPkg {
				return false
			}
		}
		return w.memPrivate(x.X)
	case *ast.CallExpr:
		switch calleeBuiltin(w.p.Info, x) {
		case "append":
			return len(x.Args) > 0 && w.memPrivate(x.Args[0])
		case "make", "new":
			return true
		}
		if tv, ok := w.p.Info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return w.memPrivate(x.Args[0])
		}
		// Non-builtin call results own their memory by convention.
		return true
	case *ast.BinaryExpr:
		// Arithmetic yields scalar values, never shared storage.
		return true
	default:
		return false
	}
}

// calleeBuiltin returns the name of the universe builtin called by e,
// or "".
func calleeBuiltin(info *types.Info, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// scanWrites walks the body flagging every write whose target is shared.
func (w *workerScan) scanWrites() {
	w.inspectBody(func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				if len(s.Lhs) == len(s.Rhs) {
					rhs = s.Rhs[i]
				}
				w.checkWrite(lhs, rhs, s.Tok)
			}
		case *ast.IncDecStmt:
			w.checkWrite(s.X, nil, s.Tok)
		}
		return true
	})
}

func (w *workerScan) checkWrite(lhs, rhs ast.Expr, tok token.Token) {
	lhs = ast.Unparen(lhs)
	switch x := lhs.(type) {
	case *ast.Ident:
		obj, _ := w.p.Info.ObjectOf(x).(*types.Var)
		if obj == nil || !w.captured(obj) {
			return
		}
		w.flagVarWrite(x, obj, rhs, tok)
	case *ast.IndexExpr:
		w.checkIndexedWrite(x)
	case *ast.StarExpr:
		if !w.memPrivate(x.X) && !w.derivedIdx(x.X) {
			w.flag(lhs, "write through pointer %s to shared memory inside a parallel worker; derive the pointee from the worker's range (e.g. &buf[i]) or make it worker-private", exprText(x.X))
		}
	case *ast.SelectorExpr:
		if !w.memPrivate(x.X) {
			w.flag(lhs, "write to field %s of captured %s inside a parallel worker; all workers share this struct", x.Sel.Name, exprText(x.X))
		}
	}
}

// checkIndexedWrite handles x[i]... = v chains, including multi-dim
// chains and map writes.
func (w *workerScan) checkIndexedWrite(ix *ast.IndexExpr) {
	// Walk down the chain collecting index expressions; a map anywhere
	// in the chain makes the write unsafe regardless of key derivation.
	var indices []ast.Expr
	base := ast.Expr(ix)
	for {
		cur, ok := ast.Unparen(base).(*ast.IndexExpr)
		if !ok {
			break
		}
		if t := w.p.Info.TypeOf(cur.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				if w.memPrivate(cur.X) {
					return
				}
				w.flag(ix, "write to captured map %s inside a parallel worker; map access is not safe for concurrent use even with distinct keys", exprText(cur.X))
				return
			}
		}
		indices = append(indices, cur.Index)
		base = cur.X
	}
	if w.memPrivate(base) {
		return
	}
	for _, idx := range indices {
		if w.derivedIdx(idx) {
			return
		}
	}
	w.flag(ix, "write to shared %s at an index not derived from the worker's range parameters; extents may overlap across workers", exprText(base))
}

func (w *workerScan) flagVarWrite(id *ast.Ident, obj *types.Var, rhs ast.Expr, tok token.Token) {
	name := id.Name
	switch {
	case isAppendTo(w.p.Info, rhs, obj):
		w.flag(id, "append to captured slice %s inside a parallel worker mutates a shared slice header; give each worker a disjoint pre-sized extent instead", name)
	case isErrorVar(obj):
		w.flag(id, "write to captured error variable %s inside a parallel worker; return the error from a ForErr/ForChunksErr worker instead", name)
	case tok == token.INC || tok == token.DEC || isCompound(tok):
		w.flag(id, "non-atomic update of captured variable %s inside a parallel worker; use a per-range reduction (parallel.ReduceRanges) or sync/atomic", name)
	default:
		w.flag(id, "write to captured variable %s inside a parallel worker; workers race on the shared location", name)
	}
}

func isCompound(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN,
		token.REM_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN,
		token.SHL_ASSIGN, token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
		return true
	}
	return false
}

func isErrorVar(obj *types.Var) bool {
	return types.Identical(obj.Type(), types.Universe.Lookup("error").Type())
}

// isAppendTo reports whether rhs is append(obj, ...).
func isAppendTo(info *types.Info, rhs ast.Expr, obj types.Object) bool {
	if rhs == nil {
		return false
	}
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || calleeBuiltin(info, call) != "append" || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}

func (w *workerScan) flag(n ast.Node, format string, args ...any) {
	w.findings = append(w.findings, w.p.finding("raceguard", n, fmt.Sprintf(format, args...)))
}

// exprText renders a short display form of a write target's base.
func exprText(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	case *ast.CallExpr:
		return exprText(x.Fun) + "(...)"
	default:
		return "expression"
	}
}
