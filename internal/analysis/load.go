package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module under analysis.
// Test files (*_test.go) are excluded: the invariants target production
// code, and tests legitimately use goroutines, math/rand, and float
// comparisons against golden values.
type Package struct {
	ImportPath string
	RelDir     string // module-relative directory, "" for the module root
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error

	mod *Module
}

// Module holds the loader state for one Go module.
type Module struct {
	Root string // absolute path of the directory containing go.mod
	Path string // module path from go.mod

	fset    *token.FileSet
	pkgs    map[string]*Package // keyed by RelDir
	loading map[string]bool     // import-cycle guard
	std     types.Importer
}

// stdImporter lazily constructs the shared stdlib source importer. The
// source importer type-checks the standard library from $GOROOT/src, so it
// works without prebuilt export data (removed from Go distributions in
// 1.20) and adds no dependency beyond the standard library itself.
var (
	stdOnce sync.Once
	stdImp  types.Importer
)

func stdImporter() types.Importer {
	stdOnce.Do(func() {
		stdImp = importer.ForCompiler(token.NewFileSet(), "source", nil)
	})
	return stdImp
}

// LoadModule loads and type-checks the packages of the module rooted at or
// above dir that match the given patterns. Patterns follow the go tool's
// shape: "./..." (everything), "dir/..." (subtree), or a plain directory /
// import path. With no patterns, "./..." is assumed. Patterns are resolved
// relative to dir.
func LoadModule(dir string, patterns []string) ([]*Package, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:    root,
		Path:    modPath,
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		std:     stdImporter(),
	}
	dirs, err := m.packageDirs()
	if err != nil {
		return nil, err
	}
	rels, err := m.match(dir, dirs, patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, rel := range rels {
		p, err := m.load(rel)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", filepath.Join(m.Path, rel), err)
		}
		out = append(out, p)
	}
	return out, nil
}

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			mp := parseModulePath(string(data))
			if mp == "" {
				return "", "", fmt.Errorf("%s/go.mod: no module directive", d)
			}
			return d, mp, nil
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod found at or above %s", abs)
		}
	}
}

func parseModulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest
			}
		}
	}
	return ""
}

// packageDirs walks the module and returns the module-relative directories
// holding at least one non-test .go file, sorted.
func (m *Module) packageDirs() ([]string, error) {
	var out []string
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		// A nested module shadows its subtree.
		if path != m.Root {
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		names, err := goSourceFiles(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			out = append(out, m.rel(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// goSourceFiles lists the non-test .go files of dir, sorted.
func goSourceFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// rel converts an absolute path inside the module to a module-relative one.
func (m *Module) rel(path string) string {
	r, err := filepath.Rel(m.Root, path)
	if err != nil || r == "." {
		return ""
	}
	return filepath.ToSlash(r)
}

// match resolves patterns (relative to from) against the known package
// directories.
func (m *Module) match(from string, dirs, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	absFrom, err := filepath.Abs(from)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	add := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			out = append(out, rel)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if p, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = p
			if pat == "." || pat == "" {
				pat = "."
			}
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		// Accept import paths rooted at the module path as well as
		// filesystem paths.
		var base string
		if pat == m.Path {
			base = ""
		} else if rest, ok := strings.CutPrefix(pat, m.Path+"/"); ok {
			base = rest
		} else {
			abs := pat
			if !filepath.IsAbs(abs) {
				abs = filepath.Join(absFrom, pat)
			}
			base = m.rel(abs)
		}
		matched := false
		for _, d := range dirs {
			if d == base || (recursive && (base == "" || strings.HasPrefix(d, base+"/"))) {
				add(d)
				matched = true
			}
		}
		if !matched && !recursive {
			return nil, fmt.Errorf("pattern %q matches no packages", pat)
		}
	}
	sort.Strings(out)
	return out, nil
}

// load parses and type-checks the package in module-relative directory rel,
// memoized.
func (m *Module) load(rel string) (*Package, error) {
	if p, ok := m.pkgs[rel]; ok {
		return p, nil
	}
	if m.loading[rel] {
		return nil, fmt.Errorf("import cycle through %q", rel)
	}
	m.loading[rel] = true
	defer func() { delete(m.loading, rel) }()

	dir := filepath.Join(m.Root, filepath.FromSlash(rel))
	names, err := goSourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go source files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	importPath := m.Path
	if rel != "" {
		importPath = m.Path + "/" + rel
	}
	p := &Package{
		ImportPath: importPath,
		RelDir:     rel,
		Dir:        dir,
		Fset:       m.fset,
		Files:      files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
		mod: m,
	}
	conf := types.Config{
		Importer: (*moduleImporter)(m),
		Error: func(err error) {
			p.TypeErrors = append(p.TypeErrors, err)
		},
	}
	// Type errors are collected, not fatal: the syntactic checks and any
	// type-based check with partial info still run.
	p.Types, _ = conf.Check(importPath, m.fset, files, p.Info)
	m.pkgs[rel] = p
	return p, nil
}

// moduleImporter resolves module-internal imports by type-checking them
// from source and delegates everything else to the stdlib source importer.
type moduleImporter Module

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	m := (*Module)(mi)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.Path {
		p, err := m.load("")
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if rest, ok := strings.CutPrefix(path, m.Path+"/"); ok {
		p, err := m.load(rest)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return m.std.Import(path)
}
