package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"tspsz/internal/parallel"
)

// Package is one loaded, type-checked package of the module under analysis.
// Test files (*_test.go) are excluded: the invariants target production
// code, and tests legitimately use goroutines, math/rand, and float
// comparisons against golden values.
type Package struct {
	ImportPath string
	RelDir     string // module-relative directory, "" for the module root
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error

	mod *Module

	// Shared result of the taint engine (taint.go), computed on first
	// demand by either allocguard or indexguard.
	taintOnce sync.Once
	taintRes  *taintResults
}

// pkgSlot is the per-package loader cell. Slots for the whole dependency
// closure are created up front, so the waves of parallel type-checking
// only ever write their own slot and read slots completed in an earlier
// wave — no lock is needed beyond the barrier between waves.
type pkgSlot struct {
	rel     string
	imports []string // module-relative deps among known package dirs
	level   int      // 0 for leaves; max(dep levels)+1 otherwise
	pkg     *Package
	err     error
}

// Module holds the loader state for one Go module.
type Module struct {
	Root string // absolute path of the directory containing go.mod
	Path string // module path from go.mod

	fset  *token.FileSet
	slots map[string]*pkgSlot // keyed by RelDir; fixed before type-checking
	std   types.Importer
	stdMu sync.Mutex // the stdlib source importer is not safe for concurrent use

	// Interprocedural context (callgraph.go + summary.go), built once on
	// first demand over the full loaded closure.
	ipOnce sync.Once
	ip     *interCtx
}

// stdImporter lazily constructs the shared stdlib source importer. The
// source importer type-checks the standard library from $GOROOT/src, so it
// works without prebuilt export data (removed from Go distributions in
// 1.20) and adds no dependency beyond the standard library itself.
var (
	stdOnce sync.Once
	stdImp  types.Importer
)

func stdImporter() types.Importer {
	stdOnce.Do(func() {
		stdImp = importer.ForCompiler(token.NewFileSet(), "source", nil)
	})
	return stdImp
}

// LoadModule loads and type-checks the packages of the module rooted at or
// above dir that match the given patterns. Patterns follow the go tool's
// shape: "./..." (everything), "dir/..." (subtree), or a plain directory /
// import path. With no patterns, "./..." is assumed. Patterns are resolved
// relative to dir.
//
// Independent packages are type-checked in parallel: the loader first
// discovers the module-internal import graph syntactically (imports-only
// parses), rejects cycles, then parses and type-checks the packages level
// by level in topological order, so every import resolves to a package
// completed in an earlier wave.
func LoadModule(dir string, patterns []string) ([]*Package, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:  root,
		Path:  modPath,
		fset:  token.NewFileSet(),
		slots: make(map[string]*pkgSlot),
		std:   stdImporter(),
	}
	dirs, err := m.packageDirs()
	if err != nil {
		return nil, err
	}
	rels, err := m.match(dir, dirs, patterns)
	if err != nil {
		return nil, err
	}
	if err := m.loadAll(rels, dirs); err != nil {
		return nil, err
	}
	out := make([]*Package, len(rels))
	for i, rel := range rels {
		out[i] = m.slots[rel].pkg
	}
	return out, nil
}

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			mp := parseModulePath(string(data))
			if mp == "" {
				return "", "", fmt.Errorf("%s/go.mod: no module directive", d)
			}
			return d, mp, nil
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod found at or above %s", abs)
		}
	}
}

func parseModulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest
			}
		}
	}
	return ""
}

// packageDirs walks the module and returns the module-relative directories
// holding at least one non-test .go file, sorted.
func (m *Module) packageDirs() ([]string, error) {
	var out []string
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		// A nested module shadows its subtree.
		if path != m.Root {
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		names, err := goSourceFiles(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			out = append(out, m.rel(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// goSourceFiles lists the non-test .go files of dir, sorted.
func goSourceFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// rel converts an absolute path inside the module to a module-relative one.
func (m *Module) rel(path string) string {
	r, err := filepath.Rel(m.Root, path)
	if err != nil || r == "." {
		return ""
	}
	return filepath.ToSlash(r)
}

// match resolves patterns (relative to from) against the known package
// directories.
func (m *Module) match(from string, dirs, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	absFrom, err := filepath.Abs(from)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	add := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			out = append(out, rel)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if p, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = p
			if pat == "." || pat == "" {
				pat = "."
			}
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		// Accept import paths rooted at the module path as well as
		// filesystem paths.
		var base string
		if pat == m.Path {
			base = ""
		} else if rest, ok := strings.CutPrefix(pat, m.Path+"/"); ok {
			base = rest
		} else {
			abs := pat
			if !filepath.IsAbs(abs) {
				abs = filepath.Join(absFrom, pat)
			}
			base = m.rel(abs)
		}
		matched := false
		for _, d := range dirs {
			if d == base || (recursive && (base == "" || strings.HasPrefix(d, base+"/"))) {
				add(d)
				matched = true
			}
		}
		if !matched && !recursive {
			return nil, fmt.Errorf("pattern %q matches no packages", pat)
		}
	}
	sort.Strings(out)
	return out, nil
}

// loadAll populates m.slots for the dependency closure of rels and
// type-checks every package, parallelizing across independent packages.
func (m *Module) loadAll(rels, dirs []string) error {
	known := make(map[string]bool, len(dirs))
	for _, d := range dirs {
		known[d] = true
	}

	// Phase 1 — syntactic dependency discovery. Imports-only parses are
	// cheap; syntax errors here are ignored and resurface in the full
	// parse below.
	dfset := token.NewFileSet() // throwaway positions; token.FileSet is concurrency-safe
	frontier := append([]string(nil), rels...)
	sort.Strings(frontier)
	for len(frontier) > 0 {
		deps := make([][]string, len(frontier))
		batch := frontier
		parallel.For(len(batch), 0, 1, func(i int) {
			deps[i] = m.scanImports(batch[i], dfset, known)
		})
		// A fresh slice, not frontier[:0]: batch aliases the old backing
		// array, and appends below must not scribble over it while the
		// loops that follow still read batch.
		frontier = nil
		for i, rel := range batch {
			m.slots[rel] = &pkgSlot{rel: rel, imports: deps[i]}
		}
		for i := range batch {
			for _, dep := range deps[i] {
				if _, ok := m.slots[dep]; !ok && !containsStr(frontier, dep) {
					frontier = append(frontier, dep)
				}
			}
		}
		sort.Strings(frontier)
	}

	// Phase 2 — cycle guard. Go forbids import cycles, so hitting one
	// means the tree cannot type-check meaningfully; fail loudly and
	// deterministically instead of wedging the wave scheduler.
	if cyc := findImportCycle(m.slots); cyc != "" {
		return fmt.Errorf("import cycle through %q", cyc)
	}

	// Phase 3 — topological levels: level(p) = 1 + max level of its
	// module-internal imports. All packages of one level are mutually
	// independent and type-check concurrently; the barrier between waves
	// (inside parallel.For) gives each wave a happens-before edge on the
	// slots it reads.
	var level func(s *pkgSlot) int
	level = func(s *pkgSlot) int {
		if s.level > 0 {
			return s.level
		}
		lv := 1
		for _, dep := range s.imports {
			if d := m.slots[dep]; d != nil {
				if dl := level(d) + 1; dl > lv {
					lv = dl
				}
			}
		}
		s.level = lv
		return lv
	}
	maxLevel := 0
	for _, s := range m.slots {
		if lv := level(s); lv > maxLevel {
			maxLevel = lv
		}
	}
	waves := make([][]*pkgSlot, maxLevel+1)
	for _, s := range m.slots {
		waves[s.level] = append(waves[s.level], s)
	}

	// Phase 4 — parse and type-check, wave by wave.
	for _, wave := range waves {
		sort.Slice(wave, func(i, j int) bool { return wave[i].rel < wave[j].rel })
		parallel.For(len(wave), 0, 1, func(i int) {
			m.loadSlot(wave[i])
		})
	}

	// Surface the first failure in deterministic order. Type errors stay
	// soft (collected per package); only parse and filesystem failures
	// land here.
	ordered := make([]string, 0, len(m.slots))
	for rel := range m.slots {
		ordered = append(ordered, rel)
	}
	sort.Strings(ordered)
	for _, rel := range ordered {
		if s := m.slots[rel]; s.err != nil {
			ip := m.Path
			if rel != "" {
				ip = m.Path + "/" + rel
			}
			return fmt.Errorf("loading %s: %w", ip, s.err)
		}
	}
	return nil
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// scanImports parses only the import clauses of the package in rel and
// returns its module-internal dependencies among known package dirs.
func (m *Module) scanImports(rel string, dfset *token.FileSet, known map[string]bool) []string {
	dir := filepath.Join(m.Root, filepath.FromSlash(rel))
	names, err := goSourceFiles(dir)
	if err != nil {
		return nil
	}
	set := make(map[string]bool)
	for _, n := range names {
		f, err := parser.ParseFile(dfset, filepath.Join(dir, n), nil, parser.ImportsOnly)
		if err != nil || f == nil {
			continue
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			var dep string
			if p == m.Path {
				dep = ""
			} else if rest, ok := strings.CutPrefix(p, m.Path+"/"); ok {
				dep = rest
			} else {
				continue
			}
			if dep != rel && known[dep] {
				set[dep] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// findImportCycle returns a member of some module-internal import cycle,
// or "" if the graph is acyclic. Iteration order is sorted for a
// deterministic error message.
func findImportCycle(slots map[string]*pkgSlot) string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(slots))
	var visit func(rel string) string
	visit = func(rel string) string {
		color[rel] = gray
		for _, dep := range slots[rel].imports {
			switch color[dep] {
			case gray:
				return dep
			case white:
				if c := visit(dep); c != "" {
					return c
				}
			}
		}
		color[rel] = black
		return ""
	}
	ordered := make([]string, 0, len(slots))
	for rel := range slots {
		ordered = append(ordered, rel)
	}
	sort.Strings(ordered)
	for _, rel := range ordered {
		if color[rel] == white {
			if c := visit(rel); c != "" {
				return c
			}
		}
	}
	return ""
}

// loadSlot parses and type-checks one package. It runs concurrently with
// other slots of the same wave: it writes only its own slot, reads only
// slots of earlier waves (through moduleImporter), and serializes stdlib
// imports behind m.stdMu.
func (m *Module) loadSlot(s *pkgSlot) {
	dir := filepath.Join(m.Root, filepath.FromSlash(s.rel))
	names, err := goSourceFiles(dir)
	if err != nil {
		s.err = err
		return
	}
	if len(names) == 0 {
		s.err = fmt.Errorf("no Go source files in %s", dir)
		return
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			s.err = err
			return
		}
		files = append(files, f)
	}
	importPath := m.Path
	if s.rel != "" {
		importPath = m.Path + "/" + s.rel
	}
	p := &Package{
		ImportPath: importPath,
		RelDir:     s.rel,
		Dir:        dir,
		Fset:       m.fset,
		Files:      files,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
		mod: m,
	}
	conf := types.Config{
		Importer: (*moduleImporter)(m),
		Error: func(err error) {
			p.TypeErrors = append(p.TypeErrors, err)
		},
	}
	// Type errors are collected, not fatal: the syntactic checks and any
	// type-based check with partial info still run.
	p.Types, _ = conf.Check(importPath, m.fset, files, p.Info)
	s.pkg = p
}

// moduleImporter resolves module-internal imports from the slots completed
// in earlier waves and delegates everything else to the stdlib source
// importer (serialized: it is not safe for concurrent use).
type moduleImporter Module

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	m := (*Module)(mi)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	var rel string
	isModule := false
	if path == m.Path {
		rel, isModule = "", true
	} else if rest, ok := strings.CutPrefix(path, m.Path+"/"); ok {
		rel, isModule = rest, true
	}
	if isModule {
		s := m.slots[rel]
		if s == nil || s.pkg == nil {
			return nil, fmt.Errorf("package %q not loaded", path)
		}
		return s.pkg.Types, nil
	}
	m.stdMu.Lock()
	defer m.stdMu.Unlock()
	return m.std.Import(path)
}
