package analysis

import (
	"go/ast"
)

// parallelDir is the one package allowed to create goroutines and the
// synchronization structures that coordinate them.
const parallelDir = "internal/parallel"

func parallelismCheck() *Check {
	return &Check{
		Name: "parallelism",
		Doc: `Flags go statements, sync.WaitGroup usage, and channel construction
(make(chan ...)) outside internal/parallel. TspSZ's bit-deterministic
archives depend on every concurrent loop flowing through the audited
dispatcher (parallel.For / parallel.ForChunks), whose work decomposition
is deterministic for a given worker count; ad-hoc goroutine fan-out is
where nondeterminism and data races enter. Centralizing concurrency is
also what makes the -race CI job meaningful: the dispatcher's tests
exercise the only goroutine-spawning code paths.`,
		Run: runParallelism,
	}
}

func runParallelism(p *Package) []Finding {
	if p.RelDir == parallelDir {
		return nil
	}
	var out []Finding
	inspectFiles(p, func(f *ast.File, n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			out = append(out, p.finding("parallelism", n,
				"go statement outside internal/parallel; route concurrency through parallel.For or parallel.ForChunks"))
		case *ast.SelectorExpr:
			if pkgSelector(p.Info, n, "sync", "WaitGroup") {
				out = append(out, p.finding("parallelism", n,
					"sync.WaitGroup outside internal/parallel; the dispatcher owns goroutine lifecycle"))
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
				if _, isChan := n.Args[0].(*ast.ChanType); isChan {
					out = append(out, p.finding("parallelism", n,
						"channel construction outside internal/parallel; fan-out/fan-in belongs in the audited dispatcher"))
				}
			}
		}
		return true
	})
	return out
}
