package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// decodePathDirs are the packages whose code runs while parsing untrusted
// archive bytes. A panic inside a bare dispatcher worker (parallel.For and
// friends) crosses the goroutine boundary and kills the whole process, so
// these packages must dispatch through the panic-containing *Err variants,
// which convert a worker panic into an error the entry-point Guard can
// classify.
var decodePathDirs = []string{
	"internal/core",
	"internal/cpsz",
	"internal/zfp",
	"internal/huffman",
	"internal/field",
}

// bareDispatch maps each panic-unsafe dispatcher entry point to its
// containing replacement.
var bareDispatch = map[string]string{
	"For":          "ForErr",
	"ForChunks":    "ForChunksErr",
	"ReduceRanges": "ReduceRangesErr",
}

func panicguardCheck() *Check {
	return &Check{
		Name: "panicguard",
		Doc: `Flags calls to the bare parallel dispatchers (parallel.For,
parallel.ForChunks, parallel.ReduceRanges) inside the decode-path packages
(internal/core, cpsz, zfp, huffman, field). Decoders run on untrusted
bytes: a panic inside a bare dispatcher's worker goroutine cannot be
recovered by the decode entry point and takes down the whole process. The
*Err variants recover worker panics into errors, which streamerr.Guard
then classifies as ErrCorrupt, so tspsz.Decompress can never crash its
caller. Compression-side code in these packages is held to the same rule:
it shares the dispatcher call sites with decode paths, and a contained
panic with a stack beats a crash there too.`,
		Run: runPanicguard,
	}
}

func runPanicguard(p *Package) []Finding {
	if !inScope(p, decodePathDirs...) {
		return nil
	}
	var out []Finding
	inspectFiles(p, func(f *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := dispatcherSelector(p.Info, call.Fun)
		if !ok {
			return true
		}
		if repl, bare := bareDispatch[name]; bare {
			out = append(out, p.finding("panicguard", call,
				"parallel."+name+" in a decode-path package; use parallel."+repl+
					" so a worker panic is contained instead of killing the process"))
		}
		return true
	})
	return out
}

// dispatcherSelector reports whether e is a selector parallel.Name where
// parallel resolves to an import of the internal/parallel package (of any
// module), returning the selected name.
func dispatcherSelector(info *types.Info, e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	path := pn.Imported().Path()
	if path != "internal/parallel" && !strings.HasSuffix(path, "/internal/parallel") {
		return "", false
	}
	return sel.Sel.Name, true
}
