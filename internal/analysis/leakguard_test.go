package analysis

import "testing"

func TestLeakguardCloserLeakOnErrorPath(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/svc/io.go": `package svc

import "os"

func Bad(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 8)
	n, err := f.Read(buf)
	if err != nil {
		return 0, err
	}
	return n, f.Close()
}
`,
	})
	got := runCheck(t, dir, "leakguard")
	expectLines(t, got, "internal/svc/io.go:6")
}

func TestLeakguardCloserClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/svc/io.go": `package svc

import "os"

func Good(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 8)
	if _, err := f.Read(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func Transfer(path string) (*os.File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

type holder struct{ f *os.File }

func Stash(h *holder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	h.f = f
	return nil
}
`,
	})
	got := runCheck(t, dir, "leakguard")
	expectLines(t, got)
}

func TestLeakguardTicker(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/svc/tick.go": `package svc

import "time"

func Poll(d time.Duration, done chan struct{}, work func()) {
	t := time.NewTicker(d)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			work()
		case <-done:
			return
		}
	}
}

func Drip(d time.Duration) <-chan time.Time {
	t := time.NewTicker(d)
	return t.C
}
`,
	})
	got := runCheck(t, dir, "leakguard")
	expectLines(t, got, "internal/svc/tick.go:19")
}

func TestLeakguardPprof(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/svc/prof.go": `package svc

import (
	"os"
	"runtime/pprof"
)

func ProfiledRun(path string, work func()) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		return err
	}
	defer pprof.StopCPUProfile()
	work()
	return nil
}

func LeakyProfile(f *os.File, work func()) {
	if err := pprof.StartCPUProfile(f); err != nil {
		return
	}
	work()
}
`,
	})
	got := runCheck(t, dir, "leakguard")
	expectLines(t, got, "internal/svc/prof.go:23")
}

// TestLeakguardFinishClosure is the begin/finish idiom from cmd/tspsz's
// observability setup: the acquired file and the running profile are
// released by a returned closure, which the lenient policy credits.
func TestLeakguardFinishClosure(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/svc/begin.go": `package svc

import (
	"os"
	"runtime/pprof"
)

func Begin(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	finish := func() {
		pprof.StopCPUProfile()
		f.Close()
	}
	return finish, nil
}
`,
	})
	got := runCheck(t, dir, "leakguard")
	expectLines(t, got)
}

func TestLeakguardGoroutines(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/svc/go.go": `package svc

import "sync"

func BlockedSend(ch chan int, compute func() int) {
	go func() {
		ch <- compute()
	}()
}

func RecvLoop(ch chan int, sink func(int)) {
	go func() {
		for {
			sink(<-ch)
		}
	}()
}

func SelectDone(ch chan int, done chan struct{}, sink func(int)) {
	go func() {
		for {
			select {
			case v := <-ch:
				sink(v)
			case <-done:
				return
			}
		}
	}()
}

func RangeClose(ch chan int, sink func(int)) {
	go func() {
		for v := range ch {
			sink(v)
		}
	}()
}

func EarlyExit(ch chan int, ready bool) {
	go func() {
		if !ready {
			return
		}
		ch <- 1
	}()
}

func NoChannels(wg *sync.WaitGroup, work func()) {
	go func() {
		defer wg.Done()
		work()
	}()
}
`,
	})
	got := runCheck(t, dir, "leakguard")
	expectLines(t, got, "internal/svc/go.go:7", "internal/svc/go.go:14")
}

func TestLeakguardSuppression(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/svc/tick.go": `package svc

import "time"

func Drip(d time.Duration) <-chan time.Time {
	t := time.NewTicker(d) //lint:allow leakguard caller keeps ticking for process lifetime
	return t.C
}
`,
	})
	got := runCheck(t, dir, "leakguard")
	expectLines(t, got)
}
