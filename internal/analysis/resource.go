package analysis

// resource.go computes per-function resource-lifetime effects over the
// call graph of callgraph.go — the interprocedural half of the poolguard
// and leakguard checks (lifetime.go holds the intraprocedural engine).
//
// A resource effect answers three questions about a declared function:
//
//   - acquires: which results carry a freshly acquired resource the
//     caller now owns — getScratch() returning a pooled *scratch,
//     getChunkBuf() returning a pooled buffer, a wrapper returning an
//     os.Open'd file.
//   - releases: which parameters (receiver first, matching
//     funcNode.params) the function releases on some path — putScratch,
//     putChunkBuf (through &b), mergeChunks re-pooling every
//     outs[i].payload. A caller passing a resource to such a parameter
//     has transferred ownership.
//   - recvAlias: whether a method returns slice/pointer views into its
//     receiver's memory — the scratch.buf / scratch.dirArrays accessor
//     shape — so the caller's view inherits the receiver's lifetime.
//
// Effects are booleans that only ever switch on, so iterating each
// strongly connected component to a fixpoint (in the same reverse-
// topological order computeSummaries already walks) terminates. The
// computation is deliberately may-analysis shaped: "releases on some
// path" is credited as a release, which keeps callers quiet about
// helpers that re-pool conditionally; the per-path must-analysis lives
// in the caller's own engine run.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// resClass distinguishes the two resource families tsplint tracks.
type resClass uint8

const (
	classPool   resClass = 1 << iota // sync.Pool-backed arena values (poolguard)
	classCloser                      // io.Closer / time.Ticker / pprof (leakguard)
)

// resEffect is one function's resource-lifetime summary.
type resEffect struct {
	acquires  []resClass // per result: classes the result carries freshly acquired
	releases  []resClass // per param (receiver first): classes released on some path
	recvAlias bool       // a slice/pointer result aliases the receiver's memory
}

func (e *resEffect) equal(o *resEffect) bool {
	if o == nil || e.recvAlias != o.recvAlias ||
		len(e.acquires) != len(o.acquires) || len(e.releases) != len(o.releases) {
		return false
	}
	for i := range e.acquires {
		if e.acquires[i] != o.acquires[i] {
			return false
		}
	}
	for i := range e.releases {
		if e.releases[i] != o.releases[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Primitive classification

// isPoolMethod reports whether call invokes (*sync.Pool).<name>.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := calleeOf(info, call)
	if fn == nil || fn.Name() != name || calleePkgPath(fn) != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// closerAcq describes one external Closer-family acquisition.
type closerAcq struct {
	result  int    // result index carrying the resource; -1 for ambient (pprof)
	what    string // diagnostic name, e.g. "os.Open"
	release string // expected release method, e.g. "Close"
}

// closerAcquireOf classifies external acquisitions leakguard tracks:
// files, decompressor readers, tickers, and the ambient CPU profile.
// Writers (flate/gzip/bufio NewWriter) are deliberately excluded — their
// Close is a data-integrity obligation owned by the ioerrors check, not
// a leak.
func closerAcquireOf(info *types.Info, call *ast.CallExpr) *closerAcq {
	fn := calleeOf(info, call)
	if fn == nil {
		return nil
	}
	pkg, name := calleePkgPath(fn), fn.Name()
	switch pkg {
	case "os":
		switch name {
		case "Open", "Create", "OpenFile":
			return &closerAcq{result: 0, what: "os." + name, release: "Close"}
		}
	case "compress/flate":
		if name == "NewReader" || name == "NewReaderDict" {
			return &closerAcq{result: 0, what: "flate." + name, release: "Close"}
		}
	case "compress/gzip", "compress/zlib":
		if name == "NewReader" {
			return &closerAcq{result: 0, what: pkg[len("compress/"):] + ".NewReader", release: "Close"}
		}
	case "time":
		if name == "NewTicker" {
			return &closerAcq{result: 0, what: "time.NewTicker", release: "Stop"}
		}
	case "runtime/pprof":
		if name == "StartCPUProfile" {
			return &closerAcq{result: -1, what: "pprof.StartCPUProfile", release: "pprof.StopCPUProfile"}
		}
	case "net":
		if name == "Listen" || name == "Dial" {
			return &closerAcq{result: 0, what: "net." + name, release: "Close"}
		}
	}
	return nil
}

// argParam pairs a call argument expression with the callee parameter
// index it lands on (receiver first, matching funcNode.params).
type argParam struct {
	expr  ast.Expr
	param int
}

// calleeArgs resolves call to a module funcNode and maps its arguments
// (including a method receiver) onto parameter indices. The variadic
// tail collapses onto the last parameter.
func calleeArgs(info *types.Info, ip *interCtx, call *ast.CallExpr) (*funcNode, []argParam) {
	node := ip.nodeFor(calleeOf(info, call))
	if node == nil || len(node.params) == 0 {
		return nil, nil
	}
	var out []argParam
	off := 0
	if sig, ok := node.fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			out = append(out, argParam{sel.X, 0})
		}
		off = 1
	}
	for i, a := range call.Args {
		pi := i + off
		if pi >= len(node.params) {
			if !node.variadic {
				break
			}
			pi = len(node.params) - 1
		}
		out = append(out, argParam{a, pi})
	}
	return node, out
}

// releaseTarget is one expression a call releases.
type releaseTarget struct {
	expr    ast.Expr
	classes resClass
}

// releaseTargets lists the expressions call releases and, separately,
// any ambient class it releases (pprof.StopCPUProfile has no argument).
func releaseTargets(info *types.Info, ip *interCtx, call *ast.CallExpr) (targets []releaseTarget, ambient resClass) {
	if isPoolMethod(info, call, "Put") && len(call.Args) == 1 {
		return []releaseTarget{{call.Args[0], classPool}}, 0
	}
	fn := calleeOf(info, call)
	if fn == nil {
		return nil, 0
	}
	if calleePkgPath(fn) == "runtime/pprof" && fn.Name() == "StopCPUProfile" {
		return nil, classCloser
	}
	if (fn.Name() == "Close" || fn.Name() == "Stop") && len(call.Args) == 0 {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				return []releaseTarget{{sel.X, classCloser}}, 0
			}
		}
	}
	if node, args := calleeArgs(info, ip, call); node != nil && node.res != nil {
		for _, ap := range args {
			if cls := node.res.releases[ap.param]; cls != 0 {
				targets = append(targets, releaseTarget{ap.expr, cls})
			}
		}
	}
	return targets, 0
}

// rootObj walks an expression to its base identifier's object through
// selectors, indexing, slicing, dereference, and address-of —
// outs[i].payload roots at outs, (*p)[:0] at p. Nil when the expression
// has no simple variable root (a call, a literal).
func rootObj(info *types.Info, x ast.Expr) types.Object {
	for {
		switch t := x.(type) {
		case *ast.ParenExpr:
			x = t.X
		case *ast.SelectorExpr:
			x = t.X
		case *ast.IndexExpr:
			x = t.X
		case *ast.SliceExpr:
			x = t.X
		case *ast.StarExpr:
			x = t.X
		case *ast.TypeAssertExpr:
			x = t.X
		case *ast.UnaryExpr:
			if t.Op != token.AND {
				return nil
			}
			x = t.X
		case *ast.Ident:
			if o := info.Defs[t]; o != nil {
				return o
			}
			return info.Uses[t]
		default:
			return nil
		}
	}
}

// ---------------------------------------------------------------------------
// Per-function effect computation

// acquireClassesOf returns the per-result acquire classes of call under
// the current summaries: pool Get, the external closer table, or a
// module callee's computed effect.
func acquireClassesOf(info *types.Info, ip *interCtx, call *ast.CallExpr) []resClass {
	if isPoolMethod(info, call, "Get") {
		return []resClass{classPool}
	}
	if ca := closerAcquireOf(info, call); ca != nil && ca.result >= 0 {
		out := make([]resClass, ca.result+1)
		out[ca.result] = classCloser
		return out
	}
	if node := ip.nodeFor(calleeOf(info, call)); node != nil && node.res != nil {
		return node.res.acquires
	}
	return nil
}

// updateResEffect recomputes node's resource effect under the current
// effects of its callees and reports whether it changed.
func updateResEffect(node *funcNode, ip *interCtx) bool {
	info := node.pkg.Info
	sig, _ := node.fn.Type().(*types.Signature)
	nres := 0
	if sig != nil {
		nres = sig.Results().Len()
	}
	eff := &resEffect{
		acquires: make([]resClass, nres),
		releases: make([]resClass, len(node.params)),
	}

	paramIdx := make(map[types.Object]int, len(node.params))
	for i, pv := range node.params {
		paramIdx[pv] = i
	}

	// Flow-insensitive pass: locals holding a fresh acquisition, releases
	// of parameters, and the return statements.
	acqLocal := make(map[types.Object]resClass)
	var rets []*ast.ReturnStmt
	inspectSkippingFuncLits(node.decl.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				cls := acquiredClassOfRHS(info, ip, n, i)
				if cls != 0 {
					acqLocal[obj] |= cls
				}
			}
		case *ast.CallExpr:
			targets, _ := releaseTargets(info, ip, n)
			for _, tgt := range targets {
				if i, ok := paramIdx[rootObj(info, tgt.expr)]; ok {
					eff.releases[i] |= tgt.classes
				}
			}
		case *ast.ReturnStmt:
			rets = append(rets, n)
		}
	})

	for _, ret := range rets {
		switch {
		case len(ret.Results) == nres:
			for j, x := range ret.Results {
				cls := returnedAcquireClass(info, ip, x, acqLocal)
				// A closer obligation only propagates to callers when the
				// returned type still carries a release: returning a view
				// that cannot Close/Stop the resource (a ticker's C
				// channel) is an escape at this function, not a transfer.
				if cls&classCloser != 0 && !hasReleaseMethod(resultType(sig, j)) {
					cls &^= classCloser
				}
				eff.acquires[j] |= cls
			}
		case len(ret.Results) == 1 && nres > 1:
			// return f(): pass the callee's per-result acquisitions through.
			if call, ok := unparen(ret.Results[0]).(*ast.CallExpr); ok {
				for j, cls := range acquireClassesOf(info, ip, call) {
					if j < nres {
						eff.acquires[j] |= cls
					}
				}
			}
		}
		// recvAlias: a slice/pointer result rooted at the receiver.
		if node.decl.Recv != nil && len(node.params) > 0 && len(ret.Results) == nres {
			for j, x := range ret.Results {
				if !isRefShaped(resultType(sig, j)) {
					continue
				}
				if rootObj(info, x) == node.params[0] {
					eff.recvAlias = true
				}
			}
		}
	}

	if node.res != nil && eff.equal(node.res) {
		return false
	}
	node.res = eff
	return true
}

// acquiredClassOfRHS classifies what assignment n binds into Lhs[i]:
// the class of a fresh acquisition, or 0.
func acquiredClassOfRHS(info *types.Info, ip *interCtx, n *ast.AssignStmt, i int) resClass {
	var rhs ast.Expr
	switch {
	case len(n.Lhs) == len(n.Rhs):
		rhs = n.Rhs[i]
	case len(n.Rhs) == 1:
		rhs = n.Rhs[0]
	default:
		return 0
	}
	x := unparen(rhs)
	if ta, ok := x.(*ast.TypeAssertExpr); ok {
		// p, ok := pool.Get().(*T): the asserted value is Lhs[0].
		if len(n.Lhs) == len(n.Rhs) || i == 0 {
			x = unparen(ta.X)
		} else {
			return 0
		}
	}
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return 0
	}
	classes := acquireClassesOf(info, ip, call)
	ri := 0
	if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
		ri = i
	}
	if ri < len(classes) {
		return classes[ri]
	}
	return 0
}

// returnedAcquireClass classifies one returned expression: a direct
// acquiring call, or a view rooted at a local that holds an acquisition.
func returnedAcquireClass(info *types.Info, ip *interCtx, x ast.Expr, acqLocal map[types.Object]resClass) resClass {
	ex := unparen(x)
	if ta, ok := ex.(*ast.TypeAssertExpr); ok {
		ex = unparen(ta.X)
	}
	if call, ok := ex.(*ast.CallExpr); ok {
		if classes := acquireClassesOf(info, ip, call); len(classes) > 0 {
			return classes[0]
		}
		return 0
	}
	return acqLocal[rootObj(info, x)]
}

// hasReleaseMethod reports whether t (or its pointer form) has a Close
// or Stop method, i.e. whether a holder of a t can release it.
func hasReleaseMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	for _, name := range []string{"Close", "Stop"} {
		if m, _, _ := types.LookupFieldOrMethod(t, true, nil, name); m != nil {
			if _, ok := m.(*types.Func); ok {
				return true
			}
		}
	}
	return false
}

func resultType(sig *types.Signature, i int) types.Type {
	if sig == nil || i >= sig.Results().Len() {
		return nil
	}
	return sig.Results().At(i).Type()
}

// isRefShaped reports whether values of t can alias other memory in the
// sense the lifetime engine tracks: slices and pointers.
func isRefShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer:
		return true
	}
	return false
}

// computeResEffects iterates one SCC's resource effects to a fixpoint.
// Called from computeSummaries so the reverse-topological evaluation
// order (callees first) is shared with the taint summaries.
func computeResEffects(comp []*funcNode, ip *interCtx) {
	for round := 0; round < 2+2*len(comp); round++ {
		changed := false
		for _, n := range comp {
			if updateResEffect(n, ip) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}
