package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a synthetic module in a temp dir. Keys are
// module-relative paths; a go.mod is added unless the fixture provides one.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if _, ok := files["go.mod"]; !ok {
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for rel, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runCheck loads the fixture module and runs exactly one check.
func runCheck(t *testing.T, dir, check string) []Finding {
	t.Helper()
	pkgs, err := LoadModule(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			t.Fatalf("fixture %s does not type-check: %v", p.ImportPath, te)
		}
	}
	enabled := map[string]bool{}
	for _, c := range AllChecks() {
		enabled[c.Name] = c.Name == check
	}
	return Run(pkgs, Options{Enabled: enabled})
}

// lines extracts "file:line" keys from findings for compact assertions.
func lines(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.File+":"+itoa(f.Line))
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func expectLines(t *testing.T, got []Finding, want ...string) {
	t.Helper()
	gl := lines(got)
	if len(gl) != len(want) {
		t.Fatalf("got %d findings %v, want %d %v", len(gl), gl, len(want), want)
	}
	for i := range want {
		if gl[i] != want[i] {
			t.Errorf("finding %d at %s, want %s", i, gl[i], want[i])
		}
	}
}

func TestFloatcmpPositive(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/foo/a.go": `package foo

func Eq(a, b float64) bool { return a == b }

func Ne(a float32, b int) bool { return a != float32(b) }

func Sw(x float64) int {
	switch x {
	case 0:
		return 0
	}
	return 1
}

func Cx(c complex128) bool { return c == 0 }
`,
	})
	got := runCheck(t, dir, "floatcmp")
	expectLines(t, got,
		"internal/foo/a.go:3",
		"internal/foo/a.go:5",
		"internal/foo/a.go:8",
		"internal/foo/a.go:15",
	)
}

func TestFloatcmpNegative(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/foo/a.go": `package foo

func Ints(a, b int) bool { return a == b }

func Order(a, b float64) bool { return a < b || a >= b }

func Strs(a, b string) bool { return a != b }
`,
	})
	if got := runCheck(t, dir, "floatcmp"); len(got) != 0 {
		t.Fatalf("unexpected findings: %v", got)
	}
}

func TestFloatcmpAllowlistedFiles(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/robust/pred.go": `package robust

func Sign(x float64) int {
	if x == 0 {
		return 0
	}
	if x > 0 {
		return 1
	}
	return -1
}
`,
		"internal/ebound/sos.go": `package ebound

func Tie(x float64) bool { return x == 0 }
`,
		"internal/ebound/other.go": `package ebound

func Bad(x float64) bool { return x == 0 }
`,
	})
	got := runCheck(t, dir, "floatcmp")
	expectLines(t, got, "internal/ebound/other.go:3")
}

func TestFloatcmpSuppression(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/foo/a.go": `package foo

func Trailing(x float64) bool { return x == 0 } //lint:allow floatcmp exact sentinel

func Preceding(x float64) bool {
	//lint:allow floatcmp encoder writes literal zero
	return x == 0
}

func WrongCheck(x float64) bool { return x == 0 } //lint:allow narrowing

func Multi(x float64) bool { return x != 1 } //lint:allow narrowing,floatcmp both fine here
`,
	})
	got := runCheck(t, dir, "floatcmp")
	expectLines(t, got, "internal/foo/a.go:10")
}

func TestParallelismPositive(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/foo/a.go": `package foo

import "sync"

func Spawn(fn func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fn()
	}()
	wg.Wait()
	ch := make(chan int, 4)
	close(ch)
}
`,
	})
	got := runCheck(t, dir, "parallelism")
	// WaitGroup type use, go statement, channel construction.
	expectLines(t, got,
		"internal/foo/a.go:6",
		"internal/foo/a.go:8",
		"internal/foo/a.go:13",
	)
}

func TestParallelismAllowedInDispatcher(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/parallel/p.go": `package parallel

import "sync"

func For(n int, fn func(int)) {
	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
	close(done)
}
`,
	})
	if got := runCheck(t, dir, "parallelism"); len(got) != 0 {
		t.Fatalf("unexpected findings in internal/parallel: %v", got)
	}
}

func TestDeterminismPositive(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/cpsz/a.go": `package cpsz

import (
	"math/rand"
	"time"
)

func Stamp() int64 { return time.Now().UnixNano() }

func Jitter() float64 { return rand.Float64() }

func Emit(m map[uint32]int) []uint32 {
	var out []uint32
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
	})
	got := runCheck(t, dir, "determinism")
	// Import, time.Now, map range.
	expectLines(t, got,
		"internal/cpsz/a.go:4",
		"internal/cpsz/a.go:8",
		"internal/cpsz/a.go:14",
	)
}

func TestDeterminismScopedToKernels(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/render/a.go": `package render

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	if got := runCheck(t, dir, "determinism"); len(got) != 0 {
		t.Fatalf("unexpected findings outside kernel scope: %v", got)
	}
}

func TestDeterminismSliceRangeAllowed(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/huffman/a.go": `package huffman

func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
`,
	})
	if got := runCheck(t, dir, "determinism"); len(got) != 0 {
		t.Fatalf("slice range flagged: %v", got)
	}
}

func TestIOErrorsPositive(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/core/w.go": `package core

import (
	"encoding/binary"
	"io"
)

func Emit(w io.Writer, v uint64) {
	binary.Write(w, binary.LittleEndian, v)
	_ = binary.Write(w, binary.LittleEndian, v)
	w.Write([]byte{1})
	_, _ = w.Write([]byte{2})
}
`,
	})
	got := runCheck(t, dir, "ioerrors")
	expectLines(t, got,
		"internal/core/w.go:9",
		"internal/core/w.go:10",
		"internal/core/w.go:11",
		"internal/core/w.go:12",
	)
}

func TestIOErrorsNegative(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/core/w.go": `package core

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
)

func Checked(w io.Writer, v uint64) error {
	if err := binary.Write(w, binary.LittleEndian, v); err != nil {
		return err
	}
	n, err := w.Write([]byte{1})
	_ = n
	return err
}

func Buffers(b *bytes.Buffer, sb *strings.Builder) {
	b.Write([]byte{1})
	b.WriteByte(2)
	sb.Write([]byte{3})
}
`,
		// Same drops outside the codec scope are not this check's business.
		"internal/render/w.go": `package render

import (
	"encoding/binary"
	"io"
)

func Emit(w io.Writer, v uint64) {
	binary.Write(w, binary.LittleEndian, v)
}
`,
	})
	if got := runCheck(t, dir, "ioerrors"); len(got) != 0 {
		t.Fatalf("unexpected findings: %v", got)
	}
}

func TestNarrowingPositive(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/ebound/a.go": `package ebound

func Bound(x float64) float32 { return float32(x) }

func Indirect(x float64) float32 {
	y := x * 2
	return float32(y)
}
`,
	})
	got := runCheck(t, dir, "narrowing")
	expectLines(t, got,
		"internal/ebound/a.go:3",
		"internal/ebound/a.go:7",
	)
}

func TestNarrowingNegative(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/ebound/a.go": `package ebound

const third = 1.0 / 3.0

func Widen(x float32) float64 { return float64(x) }

func Constant() float32 { return float32(third) }

func Same(x float32) float32 { return float32(x) }
`,
		// float32 storage conversion outside ebound is the field layer's job.
		"internal/field/a.go": `package field

func Store(x float64) float32 { return float32(x) }
`,
	})
	if got := runCheck(t, dir, "narrowing"); len(got) != 0 {
		t.Fatalf("unexpected findings: %v", got)
	}
}

func TestTestFilesExcluded(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/cpsz/a.go": `package cpsz

func ID(x int) int { return x }
`,
		"internal/cpsz/a_test.go": `package cpsz

import (
	"math/rand"
	"testing"
)

func TestID(t *testing.T) {
	if v := rand.Int(); ID(v) != v {
		t.Fatal("broken")
	}
}
`,
	})
	for _, check := range CheckNames() {
		if got := runCheck(t, dir, check); len(got) != 0 {
			t.Fatalf("%s flagged a test file: %v", check, got)
		}
	}
}

func TestRunDisabledChecks(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/foo/a.go": `package foo

func Eq(a, b float64) bool { return a == b }
`,
	})
	pkgs, err := LoadModule(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := Run(pkgs, Options{Enabled: map[string]bool{"floatcmp": false}}); len(got) != 0 {
		t.Fatalf("disabled check still ran: %v", got)
	}
	if got := Run(pkgs, Options{}); len(got) != 1 {
		t.Fatalf("default-enabled run returned %v", got)
	}
}

func TestPatternMatching(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/a/a.go": "package a\n",
		"internal/b/b.go": "package b\n",
		"cmd/x/main.go":   "package main\n\nfunc main() {}\n",
	})
	cases := []struct {
		patterns []string
		want     int
	}{
		{nil, 3},
		{[]string{"./..."}, 3},
		{[]string{"./internal/..."}, 2},
		{[]string{"./internal/a"}, 1},
		{[]string{"fixture/internal/a", "fixture/cmd/..."}, 2},
	}
	for _, c := range cases {
		pkgs, err := LoadModule(dir, c.patterns)
		if err != nil {
			t.Fatalf("%v: %v", c.patterns, err)
		}
		if len(pkgs) != c.want {
			t.Errorf("%v matched %d packages, want %d", c.patterns, len(pkgs), c.want)
		}
	}
	if _, err := LoadModule(dir, []string{"./nonexistent"}); err == nil {
		t.Error("expected error for unmatched non-recursive pattern")
	}
}

func TestModuleInternalImports(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/base/base.go": `package base

type Mode int

func Eq(a, b float64) bool { return a == b }
`,
		"internal/user/user.go": `package user

import "fixture/internal/base"

func Use(m base.Mode, x float64) bool { return x != float64(m) }
`,
	})
	got := runCheck(t, dir, "floatcmp")
	expectLines(t, got,
		"internal/base/base.go:5",
		"internal/user/user.go:5",
	)
}

func TestParseAllowDirective(t *testing.T) {
	cases := []struct {
		text string
		want string
	}{
		{"//lint:allow floatcmp", "floatcmp"},
		{"//lint:allow floatcmp exact sentinel", "floatcmp"},
		{"//lint:allow floatcmp,narrowing reason here", "floatcmp narrowing"},
		{"// lint:allow floatcmp", ""},
		{"//lint:allow", ""},
		{"//lint:disallow floatcmp", ""},
		{"// regular comment", ""},
	}
	for _, c := range cases {
		got := strings.Join(parseAllowDirective(c.text), " ")
		if got != c.want {
			t.Errorf("parseAllowDirective(%q) = %q, want %q", c.text, got, c.want)
		}
	}
}
