// Package analysis implements tsplint, the repo-specific static analyzer
// that enforces TspSZ's numeric-robustness and parallelism invariants.
// It is built only on the standard library (go/parser, go/ast, go/types,
// go/importer) and walks every package of the module.
//
// Each invariant is a distinct, individually suppressible check:
//
//	floatcmp    — no ==/!= (or switch) on floating-point operands outside
//	              the designated robust-predicate files
//	parallelism — no go statements, sync.WaitGroup use, or channel
//	              construction outside internal/parallel
//	determinism — no time.Now, math/rand, or map-range iteration inside
//	              the encoder kernels
//	ioerrors    — no dropped error returns from io.Writer / binary.Write
//	              calls in the codec format paths
//	narrowing   — no float32(...) conversions of float64 expressions in
//	              the error-bound derivation
//	allocguard  — no allocation (make, Buffer.Grow, LimitReader-less
//	              inflate, sized field allocators) whose size derives
//	              from the untrusted stream without a dominating bound
//	indexguard  — no slice/array index or slice bound that derives from
//	              the untrusted stream without a dominating range check
//	panicguard  — no bare parallel.For/ForChunks/ReduceRanges in the
//	              decode-path packages; workers must dispatch through the
//	              panic-containing *Err variants
//	raceguard   — no write to captured state inside a parallel worker
//	              closure unless it is provably disjoint across workers
//	              (index derived from the worker's range parameters, or a
//	              worker-private view/allocation)
//	poolguard   — every sync.Pool / arena acquisition is released exactly
//	              once on every exit path, never used after release, and
//	              never escapes except by transfer to a callee whose
//	              summary releases or re-pools it
//	leakguard   — goroutines whose only exit is a naked channel operation
//	              with no close/cancel path, and io.Closer / time.Ticker /
//	              pprof acquisitions lacking release on all paths
//
// allocguard and indexguard are dataflow checks: a per-function CFG
// (cfg.go) plus a forward taint analysis (taint.go) tracks values
// decoded from the stream to allocation and indexing sinks, treating
// dominating comparisons against trusted quantities as sanitizers.
// Since PR6 the taint engine is interprocedural: a module-wide call
// graph (callgraph.go) and per-function taint summaries (summary.go),
// computed to a fixpoint over strongly connected components, let taint
// flow through calls, returns, and method dispatch on concrete types,
// and let in-callee validation sanitize caller-side values.
//
// poolguard and leakguard are built on a second dataflow engine
// (lifetime.go): a path-sensitive resource-lifetime must-analysis over
// the same CFG, fed by per-function acquire/release/alias effect
// summaries (resource.go) computed in the same SCC fixpoint, so
// ownership can transfer through calls (a callee that puts a buffer back
// in its pool discharges the caller's obligation).
//
// A finding on a specific line can be suppressed with a trailing or
// immediately preceding comment of the form
//
//	//lint:allow <check>[,<check>...] [reason]
//
// The reason is free text and should say why the flagged construct is
// sound; blanket (file- or package-level) suppression is intentionally
// not supported. A directive naming an unknown check is itself reported
// (as check "allow") rather than silently accepted, so typos cannot
// mask real findings.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Check   string `json:"check"`
	File    string `json:"file"` // module-relative path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Check is one independently toggleable invariant.
type Check struct {
	Name string
	Doc  string
	Run  func(p *Package) []Finding
}

// AllChecks returns the full check set in stable order.
func AllChecks() []*Check {
	return []*Check{
		floatcmpCheck(),
		parallelismCheck(),
		determinismCheck(),
		ioerrorsCheck(),
		narrowingCheck(),
		allocguardCheck(),
		indexguardCheck(),
		panicguardCheck(),
		raceguardCheck(),
		poolguardCheck(),
		leakguardCheck(),
	}
}

// CheckNames returns the names of all checks in stable order.
func CheckNames() []string {
	var names []string
	for _, c := range AllChecks() {
		names = append(names, c.Name)
	}
	return names
}

// Options selects which checks run.
type Options struct {
	// Enabled maps check name -> on/off. A nil map enables every check;
	// a missing key defaults to on.
	Enabled map[string]bool
}

func (o Options) enabled(name string) bool {
	if o.Enabled == nil {
		return true
	}
	on, ok := o.Enabled[name]
	return !ok || on
}

// Run executes the enabled checks over the loaded packages and returns
// the surviving (non-suppressed) findings sorted by position.
func Run(pkgs []*Package, opts Options) []Finding {
	var out []Finding
	for _, p := range pkgs {
		sup, bad := collectSuppressions(p)
		// Malformed directives are reported unconditionally: a typoed
		// check name silently masking findings is worse than any noise.
		out = append(out, bad...)
		for _, c := range AllChecks() {
			if !opts.enabled(c.Name) {
				continue
			}
			for _, f := range c.Run(p) {
				if !sup.allows(c.Name, f.File, f.Line) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Col != out[j].Col {
			return out[i].Col < out[j].Col
		}
		if out[i].Check != out[j].Check {
			return out[i].Check < out[j].Check
		}
		// Full tiebreak keeps text and -json output byte-identical run
		// to run even when one position carries two findings of one
		// check (e.g. two summary-attributed sinks at one call site).
		return out[i].Message < out[j].Message
	})
	return out
}

// finding builds a Finding for a node within a package.
func (p *Package) finding(check string, n ast.Node, msg string) Finding {
	pos := p.Fset.Position(n.Pos())
	return Finding{
		Check:   check,
		File:    p.relFile(pos),
		Line:    pos.Line,
		Col:     pos.Column,
		Message: msg,
	}
}

// relFile converts an absolute position filename to a module-relative path.
func (p *Package) relFile(pos token.Position) string {
	return p.mod.rel(pos.Filename)
}
