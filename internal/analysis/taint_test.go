package analysis

import "testing"

// TestAllocguardUnboundedInflate re-seeds the PR 2 decompression-bomb bug:
// io.ReadAll on a flate reader lets a ~100-byte stream allocate gigabytes.
// The io.LimitReader variant is the shipped fix shape and must stay clean.
func TestAllocguardUnboundedInflate(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/inflate.go": `package dec

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

func Inflate(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	return io.ReadAll(r)
}

func InflateCapped(data []byte) ([]byte, error) {
	capacity := uint64(len(data))*1032 + 64
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(io.LimitReader(r, int64(capacity)+1))
	if err != nil {
		return nil, err
	}
	if uint64(len(out)) > capacity {
		return nil, fmt.Errorf("dec: stream inflates beyond plausible ratio")
	}
	return out, nil
}
`,
	})
	expectLines(t, runCheck(t, dir, "allocguard"), "internal/dec/inflate.go:13")
}

// TestIndexguardHuffmanLens re-seeds the PR 1 over-subscribed-table bug:
// code lengths read from the stream index the per-length count table
// before any range check. The guarded variant mirrors the shipped fix.
func TestIndexguardHuffmanLens(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/lens.go": `package dec

import (
	"fmt"
	"io"
)

const maxCodeLen = 58

func CountLens(r io.Reader, n int) ([]int, error) {
	lens := make([]byte, n)
	if _, err := io.ReadFull(r, lens); err != nil {
		return nil, err
	}
	countAt := make([]int, maxCodeLen+1)
	for _, l := range lens {
		countAt[l]++
	}
	return countAt, nil
}

func CountLensChecked(r io.Reader, n int) ([]int, error) {
	lens := make([]byte, n)
	if _, err := io.ReadFull(r, lens); err != nil {
		return nil, err
	}
	countAt := make([]int, maxCodeLen+1)
	for _, l := range lens {
		if int(l) > maxCodeLen {
			return nil, fmt.Errorf("dec: code length %d out of range", l)
		}
		countAt[l]++
	}
	return countAt, nil
}
`,
	})
	expectLines(t, runCheck(t, dir, "indexguard"), "internal/dec/lens.go:17")
}

// TestAllocguardMakeFromStream: a count decoded with the binary package
// must be bounded before it sizes an allocation.
func TestAllocguardMakeFromStream(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/count.go": `package dec

import "encoding/binary"

func Alloc(data []byte) []uint32 {
	n := binary.LittleEndian.Uint64(data)
	return make([]uint32, n)
}

func AllocChecked(data []byte) []uint32 {
	n := binary.LittleEndian.Uint64(data)
	if n > uint64(len(data))/4 {
		return nil
	}
	return make([]uint32, n)
}

func AllocUvarint(data []byte) []byte {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil
	}
	return make([]byte, n)
}
`,
	})
	expectLines(t, runCheck(t, dir, "allocguard"),
		"internal/dec/count.go:7", "internal/dec/count.go:23")
}

// TestTaintSanitizerShapes: every guard idiom the decoders rely on must
// count as a dominating bound, and a guard on only one path must not.
func TestTaintSanitizerShapes(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/guards.go": `package dec

import "encoding/binary"

func SumBound(data []byte, off int) []byte {
	n := int(binary.LittleEndian.Uint32(data))
	if off+n > len(data) {
		return nil
	}
	return data[off : off+n]
}

func EqPin(data []byte) []byte {
	n := int(binary.LittleEndian.Uint16(data))
	if n != 8 {
		return nil
	}
	return make([]byte, n)
}

func SwitchPin(data []byte) []byte {
	n := int(binary.LittleEndian.Uint16(data))
	switch n {
	case 4, 8:
		return make([]byte, n)
	}
	return nil
}

func MinBound(data []byte) []byte {
	n := int(binary.LittleEndian.Uint32(data))
	return make([]byte, min(n, len(data)))
}

func OrChain(data []byte) []byte {
	nx := binary.LittleEndian.Uint32(data)
	ny := binary.LittleEndian.Uint32(data[4:])
	if nx > 1<<10 || ny > 1<<10 {
		return nil
	}
	return make([]byte, nx*ny)
}

func AndGuard(data []byte) []byte {
	n := int(binary.LittleEndian.Uint32(data))
	if n >= 0 && n <= len(data) {
		return make([]byte, n)
	}
	return nil
}

func OnePathOnly(data []byte) []byte {
	n := int(binary.LittleEndian.Uint32(data))
	if len(data) > 8 {
		if n > len(data) {
			return nil
		}
	}
	return make([]byte, n)
}

func SubtractionNoBound(data []byte) []byte {
	n := int(binary.LittleEndian.Uint32(data))
	k := len(data)
	if k-n > 0 {
		return make([]byte, n)
	}
	return nil
}
`,
	})
	// Only the one-path and subtraction cases survive: a bound under
	// subtraction does not bound n itself.
	expectLines(t, runCheck(t, dir, "allocguard"),
		"internal/dec/guards.go:59", "internal/dec/guards.go:66")
}

// TestTaintStructFields: fields filled by binary.Read are untrusted
// individually, and a bound on one field sanitizes exactly that field.
func TestTaintStructFields(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/hdr.go": `package dec

import (
	"encoding/binary"
	"io"
)

type header struct {
	Count uint32
	Extra uint32
}

func ReadHeader(r io.Reader) ([]byte, error) {
	var h header
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return nil, err
	}
	return make([]byte, h.Count), nil
}

func ReadHeaderChecked(r io.Reader) ([]byte, error) {
	var h header
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return nil, err
	}
	if h.Count > 1<<20 {
		return nil, io.ErrUnexpectedEOF
	}
	return make([]byte, h.Count), nil
}
`,
	})
	expectLines(t, runCheck(t, dir, "allocguard"), "internal/dec/hdr.go:18")
}

// TestIndexguardSliceBound: slice bounds from the stream need the same
// dominating checks as indices.
func TestIndexguardSliceBound(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/bounds.go": `package dec

import "encoding/binary"

func Payload(data []byte) []byte {
	n := int(binary.LittleEndian.Uint32(data))
	return data[4 : 4+n]
}

func PayloadChecked(data []byte) []byte {
	n := int(binary.LittleEndian.Uint32(data))
	if 4+n > len(data) || n < 0 {
		return nil
	}
	return data[4 : 4+n]
}
`,
	})
	// The unchecked slice reports both tainted bound expressions? No —
	// only High contains n; Low is the constant 4.
	expectLines(t, runCheck(t, dir, "indexguard"), "internal/dec/bounds.go:7")
}

// TestAllocguardSizedAllocator: the module's own field constructors
// allocate proportionally to their arguments and count as sinks.
func TestAllocguardSizedAllocator(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/field/field.go": `package field

type Field struct{ U []float32 }

func New2D(nx, ny int) *Field { return &Field{U: make([]float32, nx*ny)} }
`,
		"internal/dec/dims.go": `package dec

import (
	"encoding/binary"

	"fixture/internal/field"
)

func Decode(data []byte) *field.Field {
	nx := int(binary.LittleEndian.Uint32(data))
	ny := int(binary.LittleEndian.Uint32(data[4:]))
	return field.New2D(nx, ny)
}

func DecodeChecked(data []byte) *field.Field {
	nx := int(binary.LittleEndian.Uint32(data))
	ny := int(binary.LittleEndian.Uint32(data[4:]))
	if nx < 2 || ny < 2 || nx > 1<<20 || ny > 1<<20 {
		return nil
	}
	return field.New2D(nx, ny)
}
`,
	})
	expectLines(t, runCheck(t, dir, "allocguard"), "internal/dec/dims.go:12")
}

// TestTaintThroughLoop: taint must survive loop-carried assignments
// (fixpoint), and a Read inside a loop taints uses after the loop.
func TestTaintThroughLoop(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/loop.go": `package dec

import "encoding/binary"

func Accumulate(data []byte) []byte {
	total := 0
	for off := 0; off+4 <= len(data); off += 4 {
		total += int(binary.LittleEndian.Uint32(data[off:]))
	}
	return make([]byte, total)
}

func Reslice(data []byte) int {
	sum := 0
	for len(data) >= 4 {
		n := int(binary.LittleEndian.Uint16(data))
		data = data[:n]
		sum += len(data)
	}
	return sum
}
`,
	})
	got := runCheck(t, dir, "allocguard")
	expectLines(t, got, "internal/dec/loop.go:10")
	expectLines(t, runCheck(t, dir, "indexguard"), "internal/dec/loop.go:17")
}

// TestTaintSuppression: dataflow findings honor //lint:allow like every
// other check.
func TestTaintSuppression(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/dec/sup.go": `package dec

import "encoding/binary"

func Alloc(data []byte) []byte {
	n := binary.LittleEndian.Uint16(data)
	// The count is a uint16: at most 64 KiB, a harmless allocation.
	//lint:allow allocguard n <= 65535 bounds the allocation to 64 KiB
	return make([]byte, n)
}
`,
	})
	expectLines(t, runCheck(t, dir, "allocguard")) // none survive
}
