package analysis

import (
	"strings"
	"testing"
)

// TestImportCycleRejected: the wave scheduler depends on an acyclic
// module-internal import graph, so a cycle must fail loudly (Go itself
// rejects such trees) instead of wedging or deadlocking.
func TestImportCycleRejected(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/a/a.go": `package a

import "fixture/internal/b"

var X = b.Y
`,
		"internal/b/b.go": `package b

import "fixture/internal/a"

var Y = a.X
`,
	})
	_, err := LoadModule(dir, []string{"./..."})
	if err == nil || !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("LoadModule error = %v, want import cycle", err)
	}
}

// TestParallelLoadDeterministic: loading the same module twice yields the
// same packages in the same order with identical type-check health, so
// the parallel waves cannot leak scheduling nondeterminism into results.
func TestParallelLoadDeterministic(t *testing.T) {
	files := map[string]string{
		"internal/base/base.go": `package base

func Mix(a, b int) int { return a*31 + b }
`,
		"internal/mid/mid.go": `package mid

import "fixture/internal/base"

func Twice(x int) int { return base.Mix(x, x) }
`,
		"internal/top/top.go": `package top

import (
	"fixture/internal/base"
	"fixture/internal/mid"
)

func All(x int) int { return base.Mix(mid.Twice(x), 1) }
`,
		"leaf.go": `package main

import "fixture/internal/top"

func main() { _ = top.All(3) }
`,
	}
	dir := writeModule(t, files)
	var prev []string
	for round := 0; round < 3; round++ {
		pkgs, err := LoadModule(dir, []string{"./..."})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		var got []string
		for _, p := range pkgs {
			if len(p.TypeErrors) > 0 {
				t.Fatalf("round %d: %s has type errors: %v", round, p.ImportPath, p.TypeErrors)
			}
			got = append(got, p.ImportPath)
		}
		if prev != nil && strings.Join(prev, " ") != strings.Join(got, " ") {
			t.Fatalf("round %d order %v differs from %v", round, got, prev)
		}
		prev = got
	}
}

// TestLoadClosureOfPattern: a narrow pattern still type-checks its
// module-internal dependencies (loaded as part of the closure, not
// returned).
func TestLoadClosureOfPattern(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/base/base.go": `package base

const K = 7
`,
		"internal/use/use.go": `package use

import "fixture/internal/base"

func F() int { return base.K }
`,
	})
	pkgs, err := LoadModule(dir, []string{"./internal/use"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "fixture/internal/use" {
		t.Fatalf("got %d packages, want exactly fixture/internal/use", len(pkgs))
	}
	if len(pkgs[0].TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkgs[0].TypeErrors)
	}
}
