package analysis

import "testing"

// parallelFixture is a minimal dispatcher package shared by the panicguard
// fixtures; the check resolves it through the import, not by name, so it
// lives at internal/parallel like the real one.
const parallelFixture = `package parallel

func For(n, workers, grain int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func ForErr(n, workers, grain int, fn func(int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

func ReduceRanges(n, workers int, fn func(lo, hi int)) { fn(0, n) }

func ReduceRangesErr(n, workers int, fn func(lo, hi int) error) error { return fn(0, n) }
`

func TestPanicguardPositive(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/parallel/p.go": parallelFixture,
		"internal/cpsz/a.go": `package cpsz

import "fixture/internal/parallel"

func Decode(n int) error {
	parallel.For(n, 0, 1, func(i int) {})
	return parallel.ForErr(n, 0, 1, func(i int) error { return nil })
}

func Histogram(n int) {
	parallel.ReduceRanges(n, 0, func(lo, hi int) {})
}
`,
	})
	got := runCheck(t, dir, "panicguard")
	// The bare For and ReduceRanges; the ForErr call is the fix, not a finding.
	expectLines(t, got,
		"internal/cpsz/a.go:6",
		"internal/cpsz/a.go:11",
	)
}

func TestPanicguardScopedToDecodePaths(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/parallel/p.go": parallelFixture,
		// skeleton extraction runs on in-memory fields the caller built, not
		// on untrusted archive bytes — bare dispatch is fine there.
		"internal/skeleton/s.go": `package skeleton

import "fixture/internal/parallel"

func Extract(n int) {
	parallel.For(n, 0, 1, func(i int) {})
}
`,
	})
	if got := runCheck(t, dir, "panicguard"); len(got) != 0 {
		t.Fatalf("unexpected findings outside decode paths: %v", got)
	}
}

func TestPanicguardSuppression(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/parallel/p.go": parallelFixture,
		"internal/huffman/h.go": `package huffman

import "fixture/internal/parallel"

func Build(n int) {
	parallel.For(n, 0, 1, func(i int) {}) //lint:allow panicguard closure cannot panic: indexes a slice it sized
}
`,
	})
	if got := runCheck(t, dir, "panicguard"); len(got) != 0 {
		t.Fatalf("suppressed finding still reported: %v", got)
	}
}
