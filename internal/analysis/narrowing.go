package analysis

import (
	"go/ast"
	"go/types"
)

// eboundDir is the error-bound derivation package: the bounds it computes
// are proved over float64 arithmetic, so narrowing intermediate values to
// float32 silently invalidates them.
const eboundDir = "internal/ebound"

func narrowingCheck() *Check {
	return &Check{
		Name: "narrowing",
		Doc: `Flags float32(...) conversions of float64 expressions inside
internal/ebound. The derived per-vertex error bounds (Theorem 1 and the
SoS variant) are established in double precision; rounding a bound or an
intermediate through float32 can round it up, which breaks the
sign-preservation guarantee the whole compressor rests on. Quantizing to
float32 is only sound at the storage layer (internal/field), after the
bound has been applied. Annotate //lint:allow narrowing only where the
narrowed value provably does not feed a bound.`,
		Run: runNarrowing,
	}
}

func runNarrowing(p *Package) []Finding {
	if !inScope(p, eboundDir) {
		return nil
	}
	var out []Finding
	inspectFiles(p, func(f *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := p.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		dst, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || dst.Kind() != types.Float32 {
			return true
		}
		argType := p.Info.TypeOf(call.Args[0])
		if argType == nil || isUntypedConst(argType) {
			return true
		}
		src, ok := argType.Underlying().(*types.Basic)
		if ok && src.Kind() == types.Float64 {
			out = append(out, p.finding("narrowing", call,
				"float32 conversion of a float64 expression in the error-bound derivation; narrowing can round a bound upward and break sign preservation"))
		}
		return true
	})
	return out
}
