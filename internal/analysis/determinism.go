package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// kernelDirs are the encoder kernels whose output must be bit-identical
// across runs and thread counts: anything nondeterministic here changes
// the archive bytes.
var kernelDirs = []string{
	"internal/cpsz",
	"internal/core",
	"internal/huffman",
	"internal/quantizer",
}

func determinismCheck() *Check {
	return &Check{
		Name: "determinism",
		Doc: `Flags sources of run-to-run nondeterminism inside the encoder
kernels (internal/cpsz, internal/core, internal/huffman,
internal/quantizer): time.Now, math/rand imports (non-test files), and
range statements over maps, whose iteration order is randomized by the
runtime and therefore must never feed encoder output. Compressed archives
are required to be bit-identical for identical input regardless of wall
clock, seed, or worker count; sort map keys before iterating, or annotate
//lint:allow determinism when the iteration provably cannot affect
output bytes.`,
		Run: runDeterminism,
	}
}

func runDeterminism(p *Package) []Finding {
	if !inScope(p, kernelDirs...) {
		return nil
	}
	var out []Finding
	inspectFiles(p, func(f *ast.File, n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ImportSpec:
			if path, err := strconv.Unquote(n.Path.Value); err == nil {
				if path == "math/rand" || path == "math/rand/v2" {
					out = append(out, p.finding("determinism", n,
						"math/rand import in an encoder kernel; kernels must be deterministic (tests are exempt)"))
				}
			}
		case *ast.SelectorExpr:
			if pkgSelector(p.Info, n, "time", "Now") {
				out = append(out, p.finding("determinism", n,
					"time.Now in an encoder kernel; archive bytes must not depend on the wall clock"))
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					out = append(out, p.finding("determinism", n,
						"map iteration order is randomized and must not feed encoder output; iterate over sorted keys, or annotate //lint:allow determinism if order cannot reach the stream"))
				}
			}
		}
		return true
	})
	return out
}
