package analysis

// summary.go computes per-function taint summaries over the call graph
// of callgraph.go, giving the dataflow engine of taint.go an
// interprocedural view: taint survives calls, returns, and method
// dispatch on concrete types instead of being laundered at every
// function boundary.
//
// A summary answers four questions about a declared function:
//
//   - base: which results are tainted when every argument is clean —
//     i.e. the function is itself a source (readCount(r) returning a
//     stream-decoded value, a helper returning a flate.NewReader).
//   - params[i].effects: if argument i arrives tainted (value, element,
//     or unbounded-reader taint, chosen by the parameter's type), which
//     results become tainted and whether the argument reaches an
//     allocation or indexing sink inside the callee without a dominating
//     bound — in which case the *call site* owns the obligation and is
//     reported by allocguard/indexguard.
//   - fills: which reference-typed parameters (and which fields, one
//     level deep through pointer receivers) the callee writes untrusted
//     stream data into — the binary.Read/io.ReadFull shape, so
//     readInto(r, buf) taints the caller's buf.
//   - params[i].validates: whether a nil error return proves the
//     parameter was bounded on that path — the validateDims(nx, ny)
//     idiom. Callers checking `if err := f(n); err != nil { return }`
//     get n sanitized on the surviving edge.
//
// Summaries are computed by running the engine once per scenario: a base
// run with clean parameters, then one run per (parameter, seed-bit).
// Sinks that fire in a parameter scenario but not in the base run are
// attributed to that parameter. Summaries of callees are consulted
// during each run, so attribution is transitive: if f forwards its
// parameter to g and g allocates unguarded, f's parameter is a sink too.
//
// Evaluation order is reverse-topological over SCCs of the call graph;
// within an SCC (mutual recursion) the scenario runs iterate to a
// fixpoint. All facts except `validates` grow monotonically, so the
// iteration terminates; `validates` is non-monotone (more taint can
// un-validate) and is therefore computed in a final pass per SCC, after
// the taint facts have converged, with same-SCC callees conservatively
// treated as non-validating.
//
// Known limits, documented in DESIGN.md §7: calls through interfaces and
// function values stay unknown (results trusted), field sensitivity is
// one level deep, value-struct parameters do not propagate field writes
// back to callers, and the validator heuristic trusts that non-nil-
// literal error returns are in fact non-nil (the `return err` inside an
// `err != nil` branch idiom).

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// interCtx is the module-wide interprocedural context shared by every
// per-package taint run.
type interCtx struct {
	funcs map[*types.Func]*funcNode
	nodes []*funcNode

	cfgs map[*funcNode]*cfgGraph
}

// interContext builds (once) the call graph and function summaries over
// every package the loader has materialized — the full dependency
// closure, not just the matched patterns, so helpers in dependency
// packages carry summaries too.
func (m *Module) interContext() *interCtx {
	m.ipOnce.Do(func() {
		rels := make([]string, 0, len(m.slots))
		for rel := range m.slots {
			rels = append(rels, rel)
		}
		sort.Strings(rels)
		var pkgs []*Package
		for _, rel := range rels {
			if s := m.slots[rel]; s != nil && s.pkg != nil {
				pkgs = append(pkgs, s.pkg)
			}
		}
		m.ip = newInterContext(pkgs)
	})
	return m.ip
}

func newInterContext(pkgs []*Package) *interCtx {
	ip := &interCtx{cfgs: make(map[*funcNode]*cfgGraph)}
	ip.funcs, ip.nodes = buildCallGraph(pkgs)
	computeSummaries(ip)
	return ip
}

// nodeFor resolves a callee to its module funcNode, nil when the callee
// is unknown or external.
func (ip *interCtx) nodeFor(fn *types.Func) *funcNode {
	if ip == nil || fn == nil {
		return nil
	}
	return ip.funcs[fn]
}

func (ip *interCtx) cfgOf(n *funcNode) *cfgGraph {
	g := ip.cfgs[n]
	if g == nil {
		g = buildCFG(n.decl.Body)
		ip.cfgs[n] = g
	}
	return g
}

// ---------------------------------------------------------------------------
// Summary representation

// fillEffect records that the callee writes untrusted data into a
// parameter: the caller's argument gains bits after the call.
type fillEffect struct {
	param int
	field types.Object // nil: the argument's pointee/elements as a whole
	bits  taintBits
}

// paramEffect is the consequence of one taint bit arriving on one
// parameter.
type paramEffect struct {
	seed    taintBits   // the single bit seeded in the scenario run
	results []taintBits // per-result taint under that scenario
	alloc   bool        // the bit reaches an allocation sink unguarded
	index   bool        // the bit reaches an index/slice-bound sink unguarded
}

type paramSummary struct {
	effects   []paramEffect
	validates bool // nil error return implies this parameter was bounded
}

type funcSummary struct {
	base   []taintBits // per-result taint with all parameters clean
	fills  []fillEffect
	params []paramSummary
}

func bitsEqual(a, b []taintBits) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (s *funcSummary) equal(o *funcSummary) bool {
	if o == nil {
		return false
	}
	if !bitsEqual(s.base, o.base) || len(s.fills) != len(o.fills) || len(s.params) != len(o.params) {
		return false
	}
	for i := range s.fills {
		if s.fills[i] != o.fills[i] {
			return false
		}
	}
	for i := range s.params {
		a, b := s.params[i], o.params[i]
		if a.validates != b.validates || len(a.effects) != len(b.effects) {
			return false
		}
		for j := range a.effects {
			ea, eb := a.effects[j], b.effects[j]
			if ea.seed != eb.seed || ea.alloc != eb.alloc || ea.index != eb.index || !bitsEqual(ea.results, eb.results) {
				return false
			}
		}
	}
	return true
}

// seedBitsFor chooses which taint bits are worth testing on a parameter
// of the given type: scalars carry value taint, aggregates element
// taint, and io.Reader-shaped interfaces the unbounded-decompressor bit
// (so a helper that io.ReadAlls its reader argument flags call sites
// that hand it a raw flate reader).
func seedBitsFor(t types.Type) []taintBits {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&(types.IsInteger|types.IsFloat|types.IsComplex|types.IsString) != 0 {
			return []taintBits{taintVal}
		}
	case *types.Slice, *types.Array, *types.Map, *types.Struct:
		return []taintBits{taintElem}
	case *types.Pointer:
		if isAggregate(u.Elem()) {
			return []taintBits{taintElem}
		}
		return []taintBits{taintVal}
	case *types.Interface:
		if hasReaderReadMethod(t) {
			return []taintBits{taintReader}
		}
	}
	return nil
}

// seedStateFor builds the scenario entry state for one parameter. For
// (pointers to) structs the element taint is materialized as per-field
// refs, so a bound check inside the callee (`if d.n > max`) sanitizes
// exactly that field; the engine's field aggregation keeps the variable
// reading as elem-tainted when passed on whole.
func seedStateFor(pv *types.Var, seed taintBits) taintState {
	st := taintState{}
	if seed == taintElem {
		if stru, ok := structTypeOf(pv.Type()); ok {
			ref := taintRef{obj: pv}
			for i := 0; i < stru.NumFields(); i++ {
				f := stru.Field(i)
				bits := taintBits(taintVal)
				if isAggregate(f.Type()) {
					bits = taintElem
				}
				st[taintRef{obj: ref.obj, field: f}] = bits
			}
			if len(st) > 0 {
				return st
			}
		}
	}
	st[taintRef{obj: pv}] = seed
	return st
}

// hasReaderReadMethod reports whether t's method set contains
// Read([]byte) (int, error).
func hasReaderReadMethod(t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Read")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && isReaderReadSig(sig)
}

// ---------------------------------------------------------------------------
// Fixpoint driver

func computeSummaries(ip *interCtx) {
	for _, comp := range sccOrder(ip.nodes) {
		// Taint facts are monotone: each re-summarization can only add
		// result bits and sink flags, so iteration height is bounded by
		// the total number of facts; the cap is a defensive backstop.
		for round := 0; round < 2+4*len(comp); round++ {
			changed := false
			for _, n := range comp {
				ns := summarize(n, ip)
				if n.sum == nil || !ns.equal(n.sum) {
					n.sum = ns
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		for _, n := range comp {
			computeValidates(n, ip)
		}
		computeResEffects(comp, ip)
	}
}

type sinkHit struct {
	check string
	pos   token.Pos
}

// scenarioRun executes one engine pass over node's body with the given
// seed state, recording sink hits and per-result taint at returns. The
// returned union state aggregates every settled block-out state and
// feeds the fill extraction.
func scenarioRun(node *funcNode, ip *interCtx, seed taintState) (hits map[sinkHit]bool, results []taintBits, union taintState) {
	nres := 0
	sig, _ := node.fn.Type().(*types.Signature)
	if sig != nil {
		nres = sig.Results().Len()
	}
	hits = make(map[sinkHit]bool)
	results = make([]taintBits, nres)
	namedRes := namedResultVars(node)
	var e *taintEngine
	e = &taintEngine{
		p:         node.pkg,
		ip:        ip,
		validBind: make(map[types.Object][]taintRef),
		emit: func(check string, n ast.Node, msg string) {
			hits[sinkHit{check, n.Pos()}] = true
		},
		onReturn: func(st taintState, ret *ast.ReturnStmt) {
			collectReturnBits(e, st, ret, namedRes, results)
		},
	}
	union = e.runCFG(ip.cfgOf(node), seed)
	return hits, results, union
}

// namedResultVars returns the declared named result objects, index-
// aligned with the signature results, or nil when results are unnamed.
func namedResultVars(node *funcNode) []types.Object {
	ft := node.decl.Type
	if ft.Results == nil {
		return nil
	}
	var out []types.Object
	named := false
	for _, f := range ft.Results.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, id := range f.Names {
			named = true
			out = append(out, node.pkg.Info.Defs[id])
		}
	}
	if !named {
		return nil
	}
	return out
}

// collectReturnBits joins the taint of one return statement's results
// into the per-result accumulator.
func collectReturnBits(e *taintEngine, st taintState, ret *ast.ReturnStmt, namedRes []types.Object, results []taintBits) {
	switch {
	case len(ret.Results) == len(results):
		for i, x := range ret.Results {
			results[i] |= e.evalExpr(st, x)
		}
	case len(ret.Results) == 0 && namedRes != nil && len(namedRes) == len(results):
		for i, obj := range namedRes {
			if obj != nil {
				results[i] |= st[taintRef{obj: obj}]
			}
		}
	case len(ret.Results) == 1 && len(results) > 1:
		// return f(): pass each result of the inner call through.
		for i := range results {
			results[i] |= e.callResultBits(st, ret.Results[0], i)
		}
	}
}

// summarize computes one function's summary under the current (possibly
// still converging) summaries of its callees.
func summarize(node *funcNode, ip *interCtx) *funcSummary {
	sum := &funcSummary{params: make([]paramSummary, len(node.params))}
	if prev := node.sum; prev != nil {
		// Keep validates from the dedicated pass across re-summarization
		// (relevant only if a later SCC round re-enters; harmless otherwise).
		for i := range sum.params {
			sum.params[i].validates = prev.params[i].validates
		}
	}

	baseHits, baseRes, union := scenarioRun(node, ip, nil)
	sum.base = baseRes
	sum.fills = extractFills(node, union)

	for i, pv := range node.params {
		for _, seed := range seedBitsFor(pv.Type()) {
			hits, res, _ := scenarioRun(node, ip, seedStateFor(pv, seed))
			eff := paramEffect{seed: seed, results: res}
			for h := range hits {
				if baseHits[h] {
					continue
				}
				switch h.check {
				case "allocguard":
					eff.alloc = true
				case "indexguard":
					eff.index = true
				}
			}
			if eff.alloc || eff.index || !bitsEqual(res, baseRes) {
				sum.params[i].effects = append(sum.params[i].effects, eff)
			}
		}
	}
	return sum
}

// extractFills finds parameters whose pointee/elements the callee
// taints. Only reference-shaped parameters qualify: writes through a
// value struct or a rebound scalar stay local to the callee.
func extractFills(node *funcNode, union taintState) []fillEffect {
	paramIdx := make(map[types.Object]int, len(node.params))
	for i, pv := range node.params {
		paramIdx[pv] = i
	}
	var fills []fillEffect
	for ref, bits := range union {
		i, ok := paramIdx[ref.obj]
		if !ok || bits == 0 {
			continue
		}
		pt := node.params[i].Type()
		if ref.field != nil {
			// Field writes propagate to the caller only through a pointer.
			if _, ok := pt.Underlying().(*types.Pointer); ok {
				fills = append(fills, fillEffect{param: i, field: ref.field, bits: bits})
			}
			continue
		}
		switch pt.Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map:
			fills = append(fills, fillEffect{param: i, field: nil, bits: bits})
		}
	}
	sort.Slice(fills, func(a, b int) bool {
		fa, fb := fills[a], fills[b]
		if fa.param != fb.param {
			return fa.param < fb.param
		}
		pa, pb := token.NoPos, token.NoPos
		if fa.field != nil {
			pa = fa.field.Pos()
		}
		if fb.field != nil {
			pb = fb.field.Pos()
		}
		return pa < pb
	})
	return fills
}

// computeValidates fills in the validator flags of node.sum: parameter i
// validates when the function's last error result, returned as a nil
// literal (or via a naked return), proves on every such path that the
// parameter's value taint was removed by a dominating bound — and at
// least one such success return exists.
func computeValidates(node *funcNode, ip *interCtx) {
	if node.sum == nil {
		return
	}
	sig, _ := node.fn.Type().(*types.Signature)
	if sig == nil {
		return
	}
	errIdx := -1
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			errIdx = i
		}
	}
	if errIdx < 0 {
		return
	}
	nres := sig.Results().Len()
	namedRes := namedResultVars(node)
	for i, pv := range node.params {
		seeds := seedBitsFor(pv.Type())
		if len(seeds) != 1 || seeds[0] != taintVal {
			continue
		}
		ref := taintRef{obj: pv}
		sawNil, dirty := false, false
		var e *taintEngine
		e = &taintEngine{
			p:         node.pkg,
			ip:        ip,
			validBind: make(map[types.Object][]taintRef),
			emit:      func(string, ast.Node, string) {},
			onReturn: func(st taintState, ret *ast.ReturnStmt) {
				switch {
				case len(ret.Results) == nres:
					if e.isNilExpr(ret.Results[errIdx]) {
						sawNil = true
						if st[ref]&taintVal != 0 {
							dirty = true
						}
					}
				case len(ret.Results) == 0 && namedRes != nil:
					// Naked return: the named error may be its nil zero
					// value, so this counts as a potential success path.
					sawNil = true
					if st[ref]&taintVal != 0 {
						dirty = true
					}
				default:
					// return f(): the error's provenance is opaque.
					dirty = true
				}
			},
		}
		e.runCFG(ip.cfgOf(node), taintState{ref: taintVal})
		node.sum.params[i].validates = sawNil && !dirty
	}
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
