package analysis

import (
	"go/ast"
	"go/types"
)

// isFloat reports whether t is (or has underlying) floating-point or
// complex type. Complex equality inherits all the hazards of float
// equality through its components.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isUntypedConst reports whether t is an untyped constant type.
func isUntypedConst(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsUntyped != 0
}

// pkgSelector reports whether e is a selector pkg.Name where pkg resolves
// to an import of the package with the given path, e.g.
// pkgSelector(info, e, "time", "Now") for time.Now. It is robust to import
// renaming because it resolves the identifier through the type info.
func pkgSelector(info *types.Info, e ast.Expr, pkgPath, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// inspectFiles runs fn over every node of every file in the package.
func inspectFiles(p *Package, fn func(f *ast.File, n ast.Node) bool) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			return fn(file, n)
		})
	}
}

// inScope reports whether the package's module-relative directory is one of
// the given directories.
func inScope(p *Package, dirs ...string) bool {
	for _, d := range dirs {
		if p.RelDir == d {
			return true
		}
	}
	return false
}
