package analysis

// cfg.go builds a per-function control-flow graph from the AST, the
// substrate of the taint analysis in taint.go. The graph is deliberately
// lightweight (stdlib only — golang.org/x/tools/go/ssa is unavailable to
// this module): blocks hold straight-line statements and condition
// expressions in execution order, and edges carry the branch condition
// (with polarity) or the switch tag/case-value pair that guards them, so
// the dataflow can refine facts per edge without a separate dominator
// computation: a check dominates a sink iff every CFG path to the sink
// passes through a refining edge.
//
// Handled control flow: if/else chains, for (init/cond/post), range,
// switch (tag and tagless) with fallthrough, type switch, select,
// labeled break/continue, and goto. Short-circuit &&/|| is not expanded
// into blocks; the edge refinement in taint.go decomposes the condition
// expression analytically, which is equivalent for condition-only facts.
// Function literals are not inlined — each is analyzed as its own
// function.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one straight-line run of statements.
type cfgBlock struct {
	// nodes holds simple statements and evaluated condition expressions
	// in execution order. Entries are either ast.Stmt (assignment, call,
	// declaration, return, ...) or ast.Expr (an if/for/switch condition
	// or switch tag evaluated at the end of the block).
	nodes []ast.Node
	succs []cfgEdge
}

// cfgEdge is one control transfer. At most one of cond/tag is set.
type cfgEdge struct {
	to *cfgBlock
	// cond, when non-nil, is the branch condition of the source block;
	// the edge is taken when it evaluates to !neg.
	cond ast.Expr
	neg  bool
	// tag/vals, when set, mark a switch-case edge: the edge is taken
	// when tag equals one of vals.
	tag  ast.Expr
	vals []ast.Expr
}

// cfgGraph is the control-flow graph of one function body.
type cfgGraph struct {
	entry  *cfgBlock
	blocks []*cfgBlock
}

// loopFrame is one enclosing breakable construct during construction.
type loopFrame struct {
	breakTo    *cfgBlock
	continueTo *cfgBlock // nil for switch/select frames
}

type pendingGoto struct {
	from  *cfgBlock
	label string
}

type cfgBuilder struct {
	g            *cfgGraph
	cur          *cfgBlock
	frames       []*loopFrame          // innermost last
	labelFrames  map[string]*loopFrame // labeled loops/switches
	labelBlocks  map[string]*cfgBlock  // goto targets
	gotos        []pendingGoto
	pendingLabel string    // label awaiting the next loop/switch
	fallTarget   *cfgBlock // next case body, for fallthrough
}

// buildCFG constructs the control-flow graph of one function body.
func buildCFG(body *ast.BlockStmt) *cfgGraph {
	b := &cfgBuilder{
		g:           &cfgGraph{},
		labelFrames: make(map[string]*loopFrame),
		labelBlocks: make(map[string]*cfgBlock),
	}
	b.g.entry = b.newBlock()
	b.cur = b.g.entry
	b.stmt(body)
	for _, pg := range b.gotos {
		if tgt := b.labelBlocks[pg.label]; tgt != nil {
			pg.from.succs = append(pg.from.succs, cfgEdge{to: tgt})
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) emit(n ast.Node) {
	b.cur.nodes = append(b.cur.nodes, n)
}

// jump adds an unconditional edge from the current block and continues in
// to.
func (b *cfgBuilder) jump(to *cfgBlock) {
	b.cur.succs = append(b.cur.succs, cfgEdge{to: to})
	b.cur = to
}

// terminate ends the current path (return, break, ...): subsequent
// statements land in a fresh unreachable block.
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock()
}

// takeLabel consumes the label pending for the next loop/switch.
func (b *cfgBuilder) takeLabel(f *loopFrame) {
	if b.pendingLabel != "" {
		b.labelFrames[b.pendingLabel] = f
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, s2 := range s.List {
			b.stmt(s2)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s.Cond)
		condBlk := b.cur
		thenBlk := b.newBlock()
		after := b.newBlock()
		elseEntry := after
		if s.Else != nil {
			elseEntry = b.newBlock()
		}
		condBlk.succs = append(condBlk.succs,
			cfgEdge{to: thenBlk, cond: s.Cond},
			cfgEdge{to: elseEntry, cond: s.Cond, neg: true})
		b.cur = thenBlk
		b.stmt(s.Body)
		b.jumpIfLive(after)
		if s.Else != nil {
			b.cur = elseEntry
			b.stmt(s.Else)
			b.jumpIfLive(after)
		}
		b.cur = after
	case *ast.ForStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		head := b.newBlock()
		b.jump(head)
		body := b.newBlock()
		after := b.newBlock()
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
			head.succs = append(head.succs,
				cfgEdge{to: body, cond: s.Cond},
				cfgEdge{to: after, cond: s.Cond, neg: true})
		} else {
			head.succs = append(head.succs, cfgEdge{to: body})
		}
		contTo := head
		if s.Post != nil {
			post := b.newBlock()
			post.nodes = append(post.nodes, s.Post)
			post.succs = append(post.succs, cfgEdge{to: head})
			contTo = post
		}
		frame := &loopFrame{breakTo: after, continueTo: contTo}
		b.takeLabel(frame)
		b.frames = append(b.frames, frame)
		b.cur = body
		b.stmt(s.Body)
		b.jumpIfLive(contTo)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after
	case *ast.RangeStmt:
		head := b.newBlock()
		b.jump(head)
		head.nodes = append(head.nodes, s) // transfer taints key/value vars
		body := b.newBlock()
		after := b.newBlock()
		head.succs = append(head.succs, cfgEdge{to: body}, cfgEdge{to: after})
		frame := &loopFrame{breakTo: after, continueTo: head}
		b.takeLabel(frame)
		b.frames = append(b.frames, frame)
		b.cur = body
		b.stmt(s.Body)
		b.jumpIfLive(head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.buildSwitch(s.Body, func(condBlk, caseBlk *cfgBlock, cc *ast.CaseClause) {
			if cc.List == nil { // default
				condBlk.succs = append(condBlk.succs, cfgEdge{to: caseBlk})
				return
			}
			if s.Tag != nil {
				condBlk.succs = append(condBlk.succs,
					cfgEdge{to: caseBlk, tag: s.Tag, vals: cc.List})
				return
			}
			// Tagless switch: each case expression is a boolean condition.
			for _, e := range cc.List {
				condBlk.succs = append(condBlk.succs, cfgEdge{to: caseBlk, cond: e})
			}
		})
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.emit(s.Init)
		}
		b.emit(s) // transfer taints the per-clause implicit objects
		b.buildSwitch(s.Body, func(condBlk, caseBlk *cfgBlock, _ *ast.CaseClause) {
			condBlk.succs = append(condBlk.succs, cfgEdge{to: caseBlk})
		})
	case *ast.SelectStmt:
		condBlk := b.cur
		after := b.newBlock()
		frame := &loopFrame{breakTo: after}
		b.takeLabel(frame)
		b.frames = append(b.frames, frame)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			condBlk.succs = append(condBlk.succs, cfgEdge{to: blk})
			b.cur = blk
			if cc.Comm != nil {
				b.emit(cc.Comm)
			}
			for _, s2 := range cc.Body {
				b.stmt(s2)
			}
			b.jumpIfLive(after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after
	case *ast.LabeledStmt:
		lbl := b.newBlock()
		b.jump(lbl)
		b.labelBlocks[s.Label.Name] = lbl
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if f := b.findFrame(s.Label, false); f != nil {
				b.cur.succs = append(b.cur.succs, cfgEdge{to: f.breakTo})
			}
			b.terminate()
		case token.CONTINUE:
			if f := b.findFrame(s.Label, true); f != nil {
				b.cur.succs = append(b.cur.succs, cfgEdge{to: f.continueTo})
			}
			b.terminate()
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.terminate()
		case token.FALLTHROUGH:
			if b.fallTarget != nil {
				b.cur.succs = append(b.cur.succs, cfgEdge{to: b.fallTarget})
			}
			b.terminate()
		}
	case *ast.ReturnStmt:
		b.emit(s)
		b.terminate()
	case *ast.EmptyStmt:
		// nothing
	default:
		// AssignStmt, DeclStmt, ExprStmt, IncDecStmt, SendStmt,
		// DeferStmt, GoStmt: straight-line.
		b.emit(s)
	}
}

// buildSwitch shares the clause scaffolding of value and type switches:
// addEdge wires the dispatch edge from the condition block to one clause.
func (b *cfgBuilder) buildSwitch(body *ast.BlockStmt, addEdge func(condBlk, caseBlk *cfgBlock, cc *ast.CaseClause)) {
	condBlk := b.cur
	after := b.newBlock()
	frame := &loopFrame{breakTo: after}
	b.takeLabel(frame)
	b.frames = append(b.frames, frame)

	clauses := body.List
	caseBlks := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		caseBlks[i] = b.newBlock()
		if cc.List == nil {
			hasDefault = true
		}
		addEdge(condBlk, caseBlks[i], cc)
	}
	if !hasDefault {
		condBlk.succs = append(condBlk.succs, cfgEdge{to: after})
	}
	savedFall := b.fallTarget
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.fallTarget = nil
		if i+1 < len(clauses) {
			b.fallTarget = caseBlks[i+1]
		}
		b.cur = caseBlks[i]
		for _, s2 := range cc.Body {
			b.stmt(s2)
		}
		b.jumpIfLive(after)
	}
	b.fallTarget = savedFall
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// jumpIfLive adds an edge to `to` unless the current block already ended
// (it is an unreachable continuation created by terminate with no content
// and no predecessors — adding the edge is harmless either way, so this
// simply always links; unreachable blocks carry no dataflow state).
func (b *cfgBuilder) jumpIfLive(to *cfgBlock) {
	b.cur.succs = append(b.cur.succs, cfgEdge{to: to})
}

// findFrame resolves a break (wantContinue=false) or continue
// (wantContinue=true) target, honoring an optional label.
func (b *cfgBuilder) findFrame(label *ast.Ident, wantContinue bool) *loopFrame {
	if label != nil {
		f := b.labelFrames[label.Name]
		if f != nil && wantContinue && f.continueTo == nil {
			return nil
		}
		return f
	}
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if !wantContinue || f.continueTo != nil {
			return f
		}
	}
	return nil
}
