package analysis

import (
	"go/ast"
	"go/types"
)

// codecDirs are the packages forming the compress/decompress format paths,
// where a silently dropped write error yields a truncated or corrupt
// archive that only fails (at best) at decompression time.
var codecDirs = []string{
	"internal/cpsz",
	"internal/core",
	"internal/huffman",
	"internal/bitmap",
	"internal/zfp",
	"internal/field",
}

func ioerrorsCheck() *Check {
	return &Check{
		Name: "ioerrors",
		Doc: `Flags dropped error returns from codec I/O in the format paths
(internal/cpsz, internal/core, internal/huffman, internal/bitmap,
internal/zfp, internal/field): calls to binary.Write / binary.Read whose
error is discarded (statement position or assigned only to blanks), and
io.Writer-shaped Write([]byte) (int, error) method calls whose results
are discarded. bytes.Buffer and strings.Builder receivers are exempt:
their Write methods are documented to always return a nil error.`,
		Run: runIOErrors,
	}
}

func runIOErrors(p *Package) []Finding {
	if !inScope(p, codecDirs...) {
		return nil
	}
	var out []Finding
	inspectFiles(p, func(f *ast.File, n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				p.flagDroppedIO(call, &out)
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					return true
				}
			}
			p.flagDroppedIO(call, &out)
		}
		return true
	})
	return out
}

// flagDroppedIO appends a finding if call is a codec I/O call whose error
// result is being discarded by the caller.
func (p *Package) flagDroppedIO(call *ast.CallExpr, out *[]Finding) {
	if pkgSelector(p.Info, call.Fun, "encoding/binary", "Write") ||
		pkgSelector(p.Info, call.Fun, "encoding/binary", "Read") {
		*out = append(*out, p.finding("ioerrors",
			call, "error from binary.Write/binary.Read dropped; a short or failed write corrupts the stream"))
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection := p.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return
	}
	if !isWriterWrite(selection.Obj()) {
		return
	}
	if neverFailingWriter(selection.Recv()) {
		return
	}
	*out = append(*out, p.finding("ioerrors",
		call, "io.Writer Write error dropped; a short or failed write corrupts the stream"))
}

// isWriterWrite reports whether obj is a method Write([]byte) (int, error),
// i.e. the io.Writer contract.
func isWriterWrite(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != "Write" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	param, ok := sig.Params().At(0).Type().(*types.Slice)
	if !ok {
		return false
	}
	if b, ok := param.Elem().(*types.Basic); !ok || b.Kind() != types.Byte && b.Kind() != types.Uint8 {
		return false
	}
	res0, ok := sig.Results().At(0).Type().(*types.Basic)
	if !ok || res0.Kind() != types.Int {
		return false
	}
	named, ok := sig.Results().At(1).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// neverFailingWriter reports whether recv is bytes.Buffer or
// strings.Builder (possibly via pointer), whose Write methods are
// documented to always return a nil error.
func neverFailingWriter(recv types.Type) bool {
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	} else if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "bytes" && name == "Buffer") || (pkg == "strings" && name == "Builder")
}
